#!/bin/bash
# Run every figure/table-level bench sequentially, echoing each section
# header the assemble.sh extractor expects. Any bench failing or timing out
# fails the whole script (CI-safe); micro-benchmarks have their own runner
# (run_micro.sh) and are skipped here.
#
# Usage: bench_logs/run_suite.sh [timeout-seconds-per-bench]
set -euo pipefail
cd "$(dirname "$0")/.."

limit="${1:-2400}"
for b in build/bench/*; do
  [[ -x "$b" && -f "$b" ]] || continue
  n=$(basename "$b")
  case "$n" in micro_kernels | perf_smoke) continue ;; esac
  echo "=== $n ==="
  timeout "$limit" "./$b"
  echo
done
echo "SUITE DONE"
