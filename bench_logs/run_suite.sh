#!/bin/bash
cd /root/repo
for b in build/bench/*; do
  n=$(basename "$b")
  echo "=== $n ==="
  timeout 2400 "./$b" 2>/dev/null
  echo
done
echo "SUITE DONE"
