#!/bin/bash
# Run the kernel-layer perf probe and leave a BenchRecorder JSON record at
# bench_logs/micro_perf.json: per-phase wall/CPU time plus the headline
# throughput metrics (GEMM and fused-dense GFLOP/s, k-d tree build/query,
# feature extraction, streaming and whole-grid reconstruction points/s).
# This is the same "vf-bench-record" document the CI perf lane uploads and
# compares against bench_baselines/ci_baseline.json.
#
# Usage: bench_logs/run_micro.sh [output.json]
#   REPEAT=N   repeats per workload, best-of (default 3)
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-bench_logs/micro_perf.json}"
probe="./build/bench/perf_smoke"

if [[ ! -x "$probe" ]]; then
  echo "run_micro.sh: $probe not built (cmake --build build --target perf_smoke)" >&2
  exit 1
fi

"$probe" --repeat "${REPEAT:-3}" --out "$out"

# Refuse to leave a truncated/invalid record behind.
python3 -m json.tool "$out" >/dev/null
echo "wrote $out"
