#!/bin/bash
# Run the kernel-layer micro benchmarks and distil a compact JSON perf
# record (bench_logs/micro_perf.json): GFLOP/s for the trainer-shape GEMM
# (blocked and naive, plus their ratio) and reconstructed points/s for the
# whole-grid and streaming batch reconstruction paths.
#
# Usage: bench_logs/run_micro.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-bench_logs/micro_perf.json}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

./build/bench/micro_kernels \
  --benchmark_filter='BM_Gemm(Naive)?Shaped|BM_FusedDense|BM_FcnnReconstruct|BM_BatchReconstruct' \
  --benchmark_format=json >"$raw"

python3 - "$raw" "$out" <<'PY'
import json
import sys

raw_path, out_path = sys.argv[1], sys.argv[2]
with open(raw_path) as f:
    report = json.load(f)

per_second = {}
for b in report.get("benchmarks", []):
    ips = b.get("items_per_second")
    if ips is not None:
        per_second[b["name"]] = ips

gemm = per_second.get("BM_GemmShaped/4096/512/256")
naive = per_second.get("BM_GemmNaiveShaped/4096/512/256")
record = {
    "context": report.get("context", {}),
    "gemm_trainer_shape": {
        "shape": [4096, 512, 256],
        "blocked_gflops": gemm / 1e9 if gemm else None,
        "naive_gflops": naive / 1e9 if naive else None,
        "speedup": (gemm / naive) if gemm and naive else None,
    },
    "fused_dense_gflops": (per_second.get("BM_FusedDense/8192") or 0) / 1e9,
    "reconstruction_points_per_second": {
        "whole_grid": per_second.get("BM_FcnnReconstruct"),
        "streaming_tile_2048": per_second.get("BM_BatchReconstruct/2048"),
        "streaming_tile_8192": per_second.get("BM_BatchReconstruct/8192"),
    },
}
with open(out_path, "w") as f:
    json.dump(record, f, indent=2)
    f.write("\n")
print(json.dumps(record["gemm_trainer_shape"], indent=2))
print("wrote", out_path)
PY
