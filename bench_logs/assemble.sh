#!/bin/bash
# Assemble bench_output.txt from the newest run of each bench section,
# re-running benches whose section is missing from the recorded logs.
# Fails (CI-safe) if a re-run bench errors or times out.
set -euo pipefail
cd "$(dirname "$0")/.."

out=bench_output.txt
: > "$out"
extract() {  # extract <file> <section-name>
  awk -v sec="=== $2 ===" '
    $0 == sec {found=1; print; next}
    found && /^=== / {exit}
    found {print}' "$1"
}
for b in build/bench/*; do
  [[ -x "$b" && -f "$b" ]] || continue
  n=$(basename "$b")
  case "$n" in micro_kernels | perf_smoke) continue ;; esac
  case "$n" in
    ablation_cross_dataset) src=bench_logs/suite_gaps2.txt ;;
    fig02_renderings) src=bench_logs/suite_gaps.txt ;;
    fig09_quality) src=bench_logs/fig09_rerun.txt ;;
    fig08_gradient_ablation) src=bench_logs/suite_gaps.txt ;;
    *) src=bench_logs/suite_run2.txt ;;
  esac
  if grep -q "^=== $n ===" "$src" 2>/dev/null; then
    extract "$src" "$n" >> "$out"
  else
    echo "=== $n ===" >> "$out"
    timeout 2400 "./$b" >> "$out"
    echo >> "$out"
  fi
done
echo "ASSEMBLED"
