#!/bin/bash
# Re-run the benches that were missing from an earlier suite pass. A bench
# failing or timing out fails the script (CI-safe).
#
# Usage: bench_logs/run_gaps.sh [bench ...]   (default: the historical gap set)
set -euo pipefail
cd "$(dirname "$0")/.."

benches=("$@")
if [[ ${#benches[@]} -eq 0 ]]; then
  benches=(fig02_renderings ablation_cross_dataset fig08_gradient_ablation)
fi

for n in "${benches[@]}"; do
  if [[ ! -x "build/bench/$n" ]]; then
    echo "run_gaps.sh: build/bench/$n not built" >&2
    exit 1
  fi
  echo "=== $n ==="
  timeout 2400 "./build/bench/$n"
  echo
done
echo "GAPS DONE"
