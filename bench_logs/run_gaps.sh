#!/bin/bash
cd /root/repo
for n in fig02_renderings ablation_cross_dataset fig08_gradient_ablation; do
  echo "=== $n ==="
  timeout 2400 "./build/bench/$n" 2>/dev/null
  echo
done
echo "GAPS DONE"
