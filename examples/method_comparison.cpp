// Survey of every reconstruction method in the library (paper §III-B) on a
// chosen dataset and sampling rate: quality (SNR / PSNR / RMSE) and time.
// Includes the RBF variant the paper measured and then excluded for cost.
//
// Run:  ./method_comparison [--dataset combustion] [--fraction 0.01]

#include <cstdio>

#include "vf/api/reconstruct.hpp"
#include "vf/core/fcnn.hpp"
#include "vf/data/registry.hpp"
#include "vf/field/metrics.hpp"
#include "vf/interp/reconstructor.hpp"
#include "vf/sampling/samplers.hpp"
#include "vf/util/cli.hpp"
#include "vf/util/timer.hpp"

int main(int argc, char** argv) {
  using namespace vf;
  util::Cli cli(argc, argv);
  const std::string name = cli.get("dataset", "combustion");
  const double fraction = cli.get_double("fraction", 0.01);

  auto dataset = data::make_dataset(name);
  field::Dims dims = data::scaled_dims(*dataset, cli.get_int("divisor", 5));
  auto truth = dataset->generate(dims, dataset->timestep_count() / 2.0);
  std::printf("dataset %s %s, sampling %.2f%%\n", name.c_str(),
              truth.grid().describe().c_str(), fraction * 100);

  sampling::ImportanceSampler sampler;
  auto cloud = sampler.sample(truth, fraction, 11);

  core::FcnnConfig cfg;
  cfg.epochs = cli.get_int("epochs", 25);
  cfg.max_train_rows = 10000;
  util::Timer timer;
  auto pre = core::pretrain(truth, sampler, cfg);
  double train_s = timer.seconds();
  api::ReconstructOptions fcnn_opts;
  fcnn_opts.method = api::Method::Fcnn;
  fcnn_opts.model = &pre.model;
  api::Reconstructor fcnn(fcnn_opts);

  std::printf("\n%-14s %9s %9s %10s %9s\n", "method", "SNR[dB]", "PSNR[dB]",
              "RMSE", "time[s]");
  auto report = [&](const std::string& label,
                    const field::ScalarField& rec, double seconds) {
    std::printf("%-14s %9.2f %9.2f %10.4g %9.2f\n", label.c_str(),
                field::snr_db(truth, rec), field::psnr_db(truth, rec),
                field::rmse(truth, rec), seconds);
  };

  auto rec_fcnn = fcnn.reconstruct(cloud, truth.grid());
  report("fcnn", rec_fcnn.field, rec_fcnn.stats.seconds);

  for (const auto& method : {"linear", "linear_seq", "natural", "shepard",
                             "nearest", "rbf", "kriging"}) {
    auto r = interp::make_reconstructor(method);
    timer.restart();
    auto rec = r->reconstruct(cloud, truth.grid());
    report(method, rec, timer.seconds());
  }
  std::printf("\n(fcnn one-off training cost: %.1fs, amortised across "
              "timesteps and sampling rates)\n", train_s);
  return 0;
}
