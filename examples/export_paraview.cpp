// Export a full paper-style artefact set for inspection in ParaView:
//
//   truth.vti          — the ground-truth volume
//   sampled.vtp        — the importance-sampled point cloud
//   recon_fcnn.vti     — FCNN reconstruction
//   recon_linear.vti   — Delaunay linear reconstruction
//   error_fcnn.vti     — signed error volume (truth - fcnn)
//
// This mirrors the .vti -> .vtp -> .vti pipeline of §IV-A. Load truth and
// the reconstructions side by side with the same transfer function to see
// the Fig 2/3-style qualitative differences.
//
// Run:  ./export_paraview [--out /tmp/voidfill_out] [--fraction 0.01]

#include <cstdio>
#include <filesystem>

#include "vf/api/reconstruct.hpp"
#include "vf/core/fcnn.hpp"
#include "vf/data/registry.hpp"
#include "vf/field/metrics.hpp"
#include "vf/field/vtk_io.hpp"
#include "vf/interp/methods.hpp"
#include "vf/sampling/samplers.hpp"
#include "vf/util/cli.hpp"
#include "vf/vis/marching_cubes.hpp"
#include "vf/vis/raycast.hpp"

int main(int argc, char** argv) {
  using namespace vf;
  util::Cli cli(argc, argv);
  std::filesystem::path out = cli.get("out", "/tmp/voidfill_out");
  std::filesystem::create_directories(out);
  const double fraction = cli.get_double("fraction", 0.01);

  auto dataset = data::make_dataset(cli.get("dataset", "ionization"));
  auto dims = data::scaled_dims(*dataset, cli.get_int("divisor", 8));
  auto truth = dataset->generate(dims, dataset->timestep_count() * 0.6);
  field::write_vti(truth, (out / "truth.vti").string());

  sampling::ImportanceSampler sampler;
  auto cloud = sampler.sample(truth, fraction, 3);
  cloud.save_vtp((out / "sampled.vtp").string(), truth.name());

  core::FcnnConfig cfg;
  cfg.epochs = cli.get_int("epochs", 25);
  cfg.max_train_rows = 10000;
  auto pre = core::pretrain(truth, sampler, cfg);

  // One-shot facade call: request in, reconstructed field out.
  api::ReconstructRequest req;
  req.cloud = &cloud;
  req.grid = &truth.grid();
  req.options.method = api::Method::Fcnn;
  req.options.model = &pre.model;
  auto rec_fcnn = api::reconstruct(req).field;
  rec_fcnn.set_name(truth.name());
  field::write_vti(rec_fcnn, (out / "recon_fcnn.vti").string());

  auto rec_linear =
      interp::LinearDelaunayReconstructor().reconstruct(cloud, truth.grid());
  rec_linear.set_name(truth.name());
  field::write_vti(rec_linear, (out / "recon_linear.vti").string());

  field::ScalarField error(truth.grid(), "error");
  for (std::int64_t i = 0; i < truth.size(); ++i) {
    error[i] = truth[i] - rec_fcnn[i];
  }
  field::write_vti(error, (out / "error_fcnn.vti").string());

  // Bonus artefacts from the vis substrate: volume renders (PPM) and the
  // isosurface of truth vs reconstruction (OBJ).
  auto stats = truth.stats();
  auto tf = vis::TransferFunction::cool_warm(stats.min, stats.max,
                                             4.0 / truth.grid().spacing().x);
  vis::render(truth, tf).write_ppm((out / "render_truth.ppm").string());
  vis::render(rec_fcnn, tf).write_ppm((out / "render_fcnn.ppm").string());
  double iso = stats.min + 0.55 * (stats.max - stats.min);
  auto mesh_truth = vis::extract_isosurface(truth, iso);
  auto mesh_fcnn = vis::extract_isosurface(rec_fcnn, iso);
  if (!mesh_truth.empty()) {
    mesh_truth.write_obj((out / "iso_truth.obj").string());
  }
  if (!mesh_fcnn.empty()) {
    mesh_fcnn.write_obj((out / "iso_fcnn.obj").string());
  }

  std::printf("wrote %s/{truth.vti, sampled.vtp, recon_fcnn.vti, "
              "recon_linear.vti, error_fcnn.vti,\n  render_truth.ppm, "
              "render_fcnn.ppm, iso_truth.obj, iso_fcnn.obj}\n", out.c_str());
  std::printf("SNR: fcnn %.2f dB, linear %.2f dB (at %.1f%% sampling)\n",
              field::snr_db(truth, rec_fcnn),
              field::snr_db(truth, rec_linear), fraction * 100);
  return 0;
}
