// Quickstart: the complete voidfill workflow in ~40 lines.
//
//   1. Generate one timestep of the Hurricane Isabel stand-in.
//   2. Importance-sample it down to 1% of the grid points.
//   3. Pretrain the paper's FCNN on the 1%+5% void sets of that timestep.
//   4. Reconstruct the full volume from the 1% cloud.
//   5. Compare against Delaunay linear interpolation by SNR.
//
// Run:  ./quickstart [--dims 64x64x16] [--epochs 20]

#include <cstdio>

#include "vf/api/reconstruct.hpp"
#include "vf/core/fcnn.hpp"
#include "vf/data/registry.hpp"
#include "vf/field/metrics.hpp"
#include "vf/sampling/samplers.hpp"
#include "vf/util/cli.hpp"
#include "vf/util/timer.hpp"

int main(int argc, char** argv) {
  using namespace vf;
  util::Cli cli(argc, argv);

  // 1. One timestep of ground truth (in situ, this is the live sim output).
  auto dataset = data::make_dataset("hurricane");
  field::Dims dims{cli.get_int("nx", 64), cli.get_int("ny", 64),
                   cli.get_int("nz", 16)};
  auto truth = dataset->generate(dims, /*t=*/24.0);
  std::printf("ground truth: %s\n", truth.grid().describe().c_str());

  // 2. Data-driven sampling (Biswas-style importance sampling).
  sampling::ImportanceSampler sampler;
  auto cloud = sampler.sample(truth, /*fraction=*/0.01, /*seed=*/1);
  std::printf("sampled %zu points (%.2f%% of the grid)\n", cloud.size(),
              cloud.sampling_fraction() * 100.0);

  // 3. Pretrain the FCNN on this timestep (1%+5% training mix).
  core::FcnnConfig cfg;
  cfg.epochs = cli.get_int("epochs", 25);
  cfg.max_train_rows = 12000;  // keep the demo snappy on one core
  util::Timer timer;
  auto pretrained = core::pretrain(truth, sampler, cfg);
  std::printf("trained %zu-parameter FCNN on %zu rows in %.1fs "
              "(loss %.4f -> %.4f)\n",
              pretrained.model.net.parameter_count(), pretrained.train_rows,
              timer.seconds(), pretrained.history.train_loss.front(),
              pretrained.history.train_loss.back());

  // 4. Reconstruct the full grid from the sparse cloud, through the
  //    vf::api facade — the library's one front door for reconstruction.
  api::ReconstructOptions fcnn_opts;
  fcnn_opts.method = api::Method::Fcnn;
  fcnn_opts.model = &pretrained.model;
  auto recon = api::Reconstructor(fcnn_opts).reconstruct(cloud, truth.grid());

  // 5. Compare against the strongest classical baseline (same facade,
  //    different Method).
  api::ReconstructOptions linear_opts;
  linear_opts.method = api::Method::Linear;
  auto linear =
      api::Reconstructor(linear_opts).reconstruct(cloud, truth.grid());

  std::printf("\n%-10s %10s %10s\n", "method", "SNR [dB]", "time [s]");
  std::printf("%-10s %10.2f %10.2f\n", "fcnn",
              field::snr_db(truth, recon.field), recon.stats.seconds);
  std::printf("%-10s %10.2f %10.2f\n", "linear",
              field::snr_db(truth, linear.field), linear.stats.seconds);
  return 0;
}
