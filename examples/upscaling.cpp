// Volume upscaling across resolutions and spatial domains (Experiment 3).
//
// A model pretrained on a coarse Hurricane Isabel grid is applied to a 2x
// finer grid whose extent is shifted — partially covering terrain the model
// never saw. Ten epochs of fine-tuning transfer the learned structure; the
// result is compared against Delaunay linear interpolation and against a
// model trained on the fine grid from scratch.
//
// Run:  ./upscaling [--epochs 25] [--fraction 0.02]

#include <cstdio>

#include "vf/api/reconstruct.hpp"
#include "vf/core/fcnn.hpp"
#include "vf/data/registry.hpp"
#include "vf/field/metrics.hpp"
#include "vf/interp/methods.hpp"
#include "vf/sampling/samplers.hpp"
#include "vf/util/cli.hpp"
#include "vf/util/timer.hpp"

int main(int argc, char** argv) {
  using namespace vf;
  util::Cli cli(argc, argv);
  const double fraction = cli.get_double("fraction", 0.02);

  auto dataset = data::make_dataset("hurricane");
  sampling::ImportanceSampler sampler;

  core::FcnnConfig cfg;
  cfg.epochs = cli.get_int("epochs", 25);
  cfg.max_train_rows = 10000;

  // Coarse grid over the canonical domain.
  field::Dims lo_dims{56, 56, 14};
  auto lo_truth = dataset->generate(lo_dims, 24.0);

  // Fine grid: 2x per axis, shifted by 20% of the domain extent.
  auto box = dataset->domain();
  auto ext = box.extent();
  field::Dims hi_dims{lo_dims.nx * 2, lo_dims.ny * 2, lo_dims.nz * 2};
  field::UniformGrid3 hi_grid(
      hi_dims,
      {box.min.x + 0.2 * ext.x, box.min.y + 0.2 * ext.y, box.min.z},
      {ext.x / (hi_dims.nx - 1), ext.y / (hi_dims.ny - 1),
       ext.z / (hi_dims.nz - 1)});
  auto hi_truth = dataset->generate(hi_grid, 24.0);

  std::printf("coarse: %s   fine (shifted domain): %s\n",
              lo_truth.grid().describe().c_str(),
              hi_truth.grid().describe().c_str());

  // Pretrain coarse; fine-tune briefly on the fine grid's sampling.
  util::Timer timer;
  auto pre = core::pretrain(lo_truth, sampler, cfg);
  double pretrain_s = timer.seconds();
  timer.restart();
  core::fine_tune(pre.model, hi_truth, sampler, cfg,
                  core::FineTuneMode::FullNetwork, 10);
  double finetune_s = timer.seconds();
  api::ReconstructOptions transfer_opts;
  transfer_opts.method = api::Method::Fcnn;
  transfer_opts.model = &pre.model;
  api::Reconstructor transferred(transfer_opts);

  // Reference: full training at the fine resolution.
  timer.restart();
  auto pre_hi = core::pretrain(hi_truth, sampler, cfg);
  double full_hi_s = timer.seconds();
  api::ReconstructOptions scratch_opts;
  scratch_opts.method = api::Method::Fcnn;
  scratch_opts.model = &pre_hi.model;
  api::Reconstructor from_scratch(scratch_opts);

  auto cloud = sampler.sample(hi_truth, fraction, 7);
  auto rec_transfer = transferred.reconstruct(cloud, hi_grid).field;
  auto rec_scratch = from_scratch.reconstruct(cloud, hi_grid).field;
  auto rec_linear =
      interp::LinearDelaunayReconstructor().reconstruct(cloud, hi_grid);

  std::printf("\nreconstruction of the fine grid from a %.1f%% cloud:\n",
              fraction * 100);
  std::printf("%-22s %10s %14s\n", "method", "SNR [dB]", "train cost [s]");
  std::printf("%-22s %10.2f %14s\n", "linear (no training)",
              field::snr_db(hi_truth, rec_linear), "-");
  std::printf("%-22s %10.2f %14.1f\n", "fcnn (fine, scratch)",
              field::snr_db(hi_truth, rec_scratch), full_hi_s);
  std::printf("%-22s %10.2f %14.1f\n", "fcnn (coarse + 10ep)",
              field::snr_db(hi_truth, rec_transfer),
              pretrain_s + finetune_s);
  std::printf("\nfine-tuning recovers near-scratch quality at a fraction of "
              "the fine-grid training cost,\neven though the fine grid "
              "covers a shifted spatial domain.\n");
  return 0;
}
