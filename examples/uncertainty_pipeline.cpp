// Extensions demo: the in-situ TemporalPipeline facade, temporal-delta
// sampling, and deep-ensemble uncertainty.
//
//   1. Drive a TemporalPipeline over a few simulation steps (pretrain once,
//      Case-1 fine-tune afterwards) and reconstruct each archived cloud.
//   2. Compare archival samplers on the final step: importance vs
//      temporal-delta (which steers budget to the regions that changed).
//   3. Train a small deep ensemble and report where its uncertainty is
//      highest relative to the actual error.
//
// Run:  ./uncertainty_pipeline [--steps 3] [--members 3]

#include <algorithm>
#include <cstdio>

#include "vf/core/ensemble.hpp"
#include "vf/core/pipeline.hpp"
#include "vf/data/registry.hpp"
#include "vf/field/metrics.hpp"
#include "vf/sampling/temporal_sampler.hpp"
#include "vf/util/cli.hpp"

int main(int argc, char** argv) {
  using namespace vf;
  util::Cli cli(argc, argv);
  const int steps = cli.get_int("steps", 3);
  auto ds = data::make_dataset("hurricane");
  const field::Dims dims{48, 48, 12};

  // --- 1. in-situ pipeline over a few steps -------------------------------
  core::PipelineOptions popt;
  popt.archive_fraction = 0.03;
  popt.pretrain_config.hidden = {64, 32};
  popt.pretrain_config.epochs = cli.get_int("epochs", 25);
  popt.pretrain_config.max_train_rows = 8000;
  popt.finetune_epochs = 10;
  core::TemporalPipeline pipeline(popt);

  std::printf("in-situ pipeline (archive @%.0f%%):\n",
              popt.archive_fraction * 100);
  for (int s = 0; s < steps; ++s) {
    auto truth = ds->generate(dims, s * 8.0);
    auto art = pipeline.ingest(truth);
    auto rec = pipeline.reconstruct(art.cloud, truth.grid());
    std::printf("  t=%2d  train %5.1fs  loss %.4f  post-hoc SNR %.2f dB\n",
                art.timestep, art.train_seconds, art.final_loss,
                field::snr_db(truth, rec));
  }

  // --- 2. temporal-delta vs importance sampling ---------------------------
  auto prev = ds->generate(dims, (steps - 2) * 8.0);
  auto cur = ds->generate(dims, (steps - 1) * 8.0);
  sampling::ImportanceSampler imp;
  sampling::TemporalDeltaSampler tds;
  tds.set_previous(prev);
  auto cloud_imp = imp.sample(cur, 0.03, 7);
  auto cloud_tds = tds.sample(cur, 0.03, 7);
  auto rec_imp = pipeline.reconstruct(cloud_imp, cur.grid());
  auto rec_tds = pipeline.reconstruct(cloud_tds, cur.grid());
  std::printf("\narchival sampler comparison at t=%d (same model):\n"
              "  importance      SNR %.2f dB\n"
              "  temporal-delta  SNR %.2f dB\n",
              steps - 1, field::snr_db(cur, rec_imp),
              field::snr_db(cur, rec_tds));

  // --- 3. ensemble uncertainty --------------------------------------------
  auto cfg = popt.pretrain_config;
  cfg.epochs = std::max(10, cfg.epochs / 2);
  auto ens = core::EnsembleReconstructor::pretrain(
      cur, imp, cfg, cli.get_int("members", 3));
  auto res = ens.reconstruct(cloud_imp, cur.grid());
  std::printf("\nensemble of %zu: mean SNR %.2f dB\n", ens.size(),
              field::snr_db(cur, res.mean));

  // Error inside vs outside the top-decile-uncertainty voxels.
  std::vector<std::pair<double, double>> sd_err;
  for (std::int64_t i = 0; i < cur.size(); ++i) {
    sd_err.emplace_back(res.stddev[i], std::abs(cur[i] - res.mean[i]));
  }
  std::sort(sd_err.begin(), sd_err.end(),
            [](auto& a, auto& b) { return a.first > b.first; });
  std::size_t decile = sd_err.size() / 10;
  double err_top = 0, err_rest = 0;
  for (std::size_t i = 0; i < sd_err.size(); ++i) {
    (i < decile ? err_top : err_rest) += sd_err[i].second;
  }
  err_top /= static_cast<double>(decile);
  err_rest /= static_cast<double>(sd_err.size() - decile);
  std::printf("mean |error|: top-uncertainty decile %.4f vs rest %.4f "
              "(ratio %.2fx)\n", err_top, err_rest, err_top / err_rest);
  std::printf("-> the ensemble knows where it is unsure.\n");
  return 0;
}
