// Extensions demo: the vf::api::Pipeline in-situ facade, temporal-delta
// sampling, and deep-ensemble uncertainty.
//
//   1. Stream a few simulation steps through api::Pipeline (pretrain once,
//      Case-1 fine-tune afterwards in a background worker) and report each
//      step's reconstruction SNR from its archived cloud.
//   2. Compare archival samplers on the final step: importance vs
//      temporal-delta (which steers budget to the regions that changed),
//      reconstructed with the pipeline's current model.
//   3. Train a small deep ensemble and report where its uncertainty is
//      highest relative to the actual error.
//
// Run:  ./uncertainty_pipeline [--steps 3] [--members 3]

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "vf/api/pipeline.hpp"
#include "vf/api/reconstruct.hpp"
#include "vf/core/ensemble.hpp"
#include "vf/data/registry.hpp"
#include "vf/field/metrics.hpp"
#include "vf/sampling/temporal_sampler.hpp"
#include "vf/util/cli.hpp"

int main(int argc, char** argv) {
  using namespace vf;
  util::Cli cli(argc, argv);
  const int steps = cli.get_int("steps", 3);
  auto ds = data::make_dataset("hurricane");
  const field::Dims dims{48, 48, 12};
  auto workdir =
      std::filesystem::temp_directory_path() / "voidfill_uncertainty";

  // --- 1. in-situ pipeline over a few steps -------------------------------
  api::PipelineConfig cfg;
  cfg.with_dataset("hurricane")
      .with_dims(dims)
      .with_sample_fraction(0.03)
      .with_pretrain_epochs(cli.get_int("epochs", 25))
      .with_epochs_per_step(10)
      .with_max_steps(steps)
      .with_workdir(workdir.string());
  cfg.stride = 8.0;
  cfg.hidden = {64, 32};
  cfg.max_train_rows = 8000;
  cfg.on_step = [](const vf::pipeline::StepReport& r) {
    std::printf("  t=%2d  train %5.1fs  SNR %.2f dB  classical %.2f dB\n",
                r.step, r.train_seconds, r.model_snr_db,
                r.classical_snr_db);
  };

  std::printf("in-situ pipeline (archive @%.0f%%):\n",
              cfg.sample_fraction * 100);
  api::Pipeline pipe(cfg);
  while (pipe.step()) {
  }
  pipe.drain();

  // --- 2. temporal-delta vs importance sampling ---------------------------
  auto prev = ds->generate(dims, (steps - 2) * 8.0);
  auto cur = ds->generate(dims, (steps - 1) * 8.0);
  sampling::ImportanceSampler imp;
  sampling::TemporalDeltaSampler tds;
  tds.set_previous(prev);
  auto cloud_imp = imp.sample(cur, 0.03, 7);
  auto cloud_tds = tds.sample(cur, 0.03, 7);
  // Reconstruct both clouds with the pipeline's current (latest fine-tuned)
  // model through the reconstruction facade.
  auto model = pipe.model();
  api::ReconstructOptions ropt;
  ropt.method = api::Method::Fcnn;
  ropt.model = model.get();
  api::Reconstructor rec(ropt);
  auto rec_imp = rec.reconstruct(cloud_imp, cur.grid()).field;
  auto rec_tds = rec.reconstruct(cloud_tds, cur.grid()).field;
  std::printf("\narchival sampler comparison at t=%d (same model):\n"
              "  importance      SNR %.2f dB\n"
              "  temporal-delta  SNR %.2f dB\n",
              steps - 1, field::snr_db(cur, rec_imp),
              field::snr_db(cur, rec_tds));

  // --- 3. ensemble uncertainty --------------------------------------------
  core::FcnnConfig ecfg;
  ecfg.hidden = {64, 32};
  ecfg.epochs = std::max(10, cli.get_int("epochs", 25) / 2);
  ecfg.max_train_rows = 8000;
  auto ens = core::EnsembleReconstructor::pretrain(
      cur, imp, ecfg, cli.get_int("members", 3));
  auto res = ens.reconstruct(cloud_imp, cur.grid());
  std::printf("\nensemble of %zu: mean SNR %.2f dB\n", ens.size(),
              field::snr_db(cur, res.mean));

  // Error inside vs outside the top-decile-uncertainty voxels.
  std::vector<std::pair<double, double>> sd_err;
  for (std::int64_t i = 0; i < cur.size(); ++i) {
    sd_err.emplace_back(res.stddev[i], std::abs(cur[i] - res.mean[i]));
  }
  std::sort(sd_err.begin(), sd_err.end(),
            [](auto& a, auto& b) { return a.first > b.first; });
  std::size_t decile = sd_err.size() / 10;
  double err_top = 0, err_rest = 0;
  for (std::size_t i = 0; i < sd_err.size(); ++i) {
    (i < decile ? err_top : err_rest) += sd_err[i].second;
  }
  err_top /= static_cast<double>(decile);
  err_rest /= static_cast<double>(sd_err.size() - decile);
  std::printf("mean |error|: top-uncertainty decile %.4f vs rest %.4f "
              "(ratio %.2fx)\n", err_top, err_rest, err_top / err_rest);
  std::printf("-> the ensemble knows where it is unsure.\n");
  std::filesystem::remove_all(workdir);
  return 0;
}
