// In-situ temporal workflow (paper Experiment 2), driven through the
// vf::api::Pipeline facade.
//
// A simulated run emits one timestep at a time; the pipeline samples each
// step down to the archival fraction, pretrains on the first step, fine-
// tunes ~10 epochs (Case 1) on every later one in a background worker, and
// hot-swaps each fine-tuned model into its embedded serve tier. The
// per-step callback compares the streaming model against a frozen copy of
// the step-0 weights and a classical baseline, and archives the Case-2
// weight tail (last two dense layers) per step.
//
// Run:  ./insitu_temporal [--steps 6] [--stride 8] [--fraction 0.03]

#include <cstdio>
#include <filesystem>
#include <optional>

#include "vf/api/pipeline.hpp"
#include "vf/api/reconstruct.hpp"
#include "vf/field/metrics.hpp"
#include "vf/interp/methods.hpp"
#include "vf/nn/serialize.hpp"
#include "vf/util/cli.hpp"

int main(int argc, char** argv) {
  using namespace vf;
  util::Cli cli(argc, argv);
  const int steps = cli.get_int("steps", 6);
  const int stride = cli.get_int("stride", 8);
  const double fraction = cli.get_double("fraction", 0.03);

  auto archive = std::filesystem::temp_directory_path() / "voidfill_insitu";
  std::filesystem::create_directories(archive);

  interp::LinearDelaunayReconstructor linear;
  core::FcnnModel frozen;
  std::optional<api::Reconstructor> stale;  // bound to `frozen` after start

  api::PipelineConfig cfg;
  cfg.with_dataset("hurricane")
      .with_dims({64, 64, 16})
      .with_sample_fraction(fraction)
      .with_pretrain_epochs(cli.get_int("epochs", 25))
      .with_epochs_per_step(10)
      .with_max_steps(steps + 1)  // step 0 pretrains; `steps` fine-tune
      .with_workdir((archive / "pipeline").string());
  cfg.stride = stride;
  cfg.hidden = core::FcnnConfig{}.hidden;  // the paper architecture
  cfg.max_train_rows = 10000;
  cfg.on_step = [&](const vf::pipeline::StepReport& r) {
    if (r.step == 0) return;  // the pretrain line is printed below
    // Classical baseline reconstructs from scratch; the frozen step-0
    // model degrades as the storm evolves; the streamed model keeps up.
    const double snr_linear = field::snr_db(
        *r.truth, linear.reconstruct(*r.cloud, r.truth->grid()));
    const double snr_frozen = field::snr_db(
        *r.truth, stale->reconstruct(*r.cloud, r.truth->grid()).field);

    std::printf("%-6.0f %-12.2f %-12.2f %-12.2f gen %llu%s\n", r.t,
                snr_linear, snr_frozen, r.model_snr_db,
                static_cast<unsigned long long>(r.generation),
                r.classical ? "  (classical fallback)" : "");
  };

  api::Pipeline pipe(cfg);
  pipe.start();  // t = 0: synchronous pretrain + first publish
  frozen = pipe.model()->clone();
  api::ReconstructOptions frozen_opts;
  frozen_opts.method = api::Method::Fcnn;
  frozen_opts.model = &frozen;
  stale.emplace(frozen_opts);
  std::printf("t=0: pretrained, generation %llu published\n",
              static_cast<unsigned long long>(pipe.generation()));

  std::printf("\n%-6s %-12s %-12s %-12s\n", "t", "linear", "frozen",
              "fine-tuned");
  while (pipe.step()) {
  }
  pipe.drain();

  // Case-2 storage comparison on the final model: the per-step tail is a
  // small fraction of the full model.
  auto final_model = pipe.model();
  const auto tail_path = (archive / "tail_final.vfnt").string();
  nn::save_dense_tail(final_model->net, 2, tail_path);
  const auto full_path = (archive / "model_final.vfmd").string();
  final_model->save(full_path);
  std::printf("\nfull model: %zu bytes; the per-timestep Case-2 tail is "
              "%zu bytes (~%.1f%%).\n",
              static_cast<std::size_t>(std::filesystem::file_size(full_path)),
              static_cast<std::size_t>(std::filesystem::file_size(tail_path)),
              100.0 * static_cast<double>(std::filesystem::file_size(tail_path)) /
                  static_cast<double>(std::filesystem::file_size(full_path)));

  // The serve tier answered queries through every hot swap; ask it once.
  auto resp = pipe.query({{0.5, 0.5, 0.25}});
  std::printf("served query against generation %llu: value %.4f%s\n",
              static_cast<unsigned long long>(pipe.generation()),
              resp.values.empty() ? 0.0 : resp.values[0],
              resp.fallback.empty() ? "" : " (classical)");

  std::filesystem::remove_all(archive);
  return 0;
}
