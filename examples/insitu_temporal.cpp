// In-situ temporal workflow (paper Experiment 2).
//
// Simulates the deployment the paper targets: a running simulation emits one
// timestep at a time; only the sampled cloud is archived. The FCNN is
// pretrained on the first timestep, then at each subsequent step it is
// fine-tuned for ~10 epochs (Case 1) while the full data is still resident,
// and the model + cloud are "archived". Post hoc, every timestep can be
// reconstructed at full resolution from its 3% cloud.
//
// Also demonstrates Case 2 storage: only the last two dense layers are
// retrained and persisted per timestep, shrinking the per-step model cost.
//
// Run:  ./insitu_temporal [--steps 6] [--stride 8] [--fraction 0.03]

#include <cstdio>
#include <filesystem>

#include "vf/api/reconstruct.hpp"
#include "vf/core/fcnn.hpp"
#include "vf/data/registry.hpp"
#include "vf/field/metrics.hpp"
#include "vf/interp/methods.hpp"
#include "vf/nn/serialize.hpp"
#include "vf/sampling/samplers.hpp"
#include "vf/util/cli.hpp"

int main(int argc, char** argv) {
  using namespace vf;
  util::Cli cli(argc, argv);
  const int steps = cli.get_int("steps", 6);
  const int stride = cli.get_int("stride", 8);
  const double fraction = cli.get_double("fraction", 0.03);

  auto dataset = data::make_dataset("hurricane");
  field::Dims dims{64, 64, 16};
  sampling::ImportanceSampler sampler;

  core::FcnnConfig cfg;
  cfg.epochs = cli.get_int("epochs", 25);
  cfg.max_train_rows = 10000;

  auto archive = std::filesystem::temp_directory_path() / "voidfill_insitu";
  std::filesystem::create_directories(archive);

  // --- t = 0: pretrain and persist the full model --------------------------
  auto truth0 = dataset->generate(dims, 0.0);
  auto pre = core::pretrain(truth0, sampler, cfg);
  pre.model.save((archive / "model_t0.vfmd").string());
  std::printf("t=0: pretrained (%zu rows, %.1fs), model archived\n",
              pre.train_rows, pre.history.seconds);

  std::printf("\n%-6s %-12s %-12s %-12s %-14s\n", "t", "linear", "frozen",
              "fine-tuned", "case2_bytes");
  interp::LinearDelaunayReconstructor linear;
  auto frozen = pre.model.clone();
  // Stateful facade over the frozen model: the engine is cached across
  // timesteps because the model never changes.
  api::ReconstructOptions frozen_opts;
  frozen_opts.method = api::Method::Fcnn;
  frozen_opts.model = &frozen;
  api::Reconstructor stale(frozen_opts);

  for (int s = 1; s <= steps; ++s) {
    double t = s * stride;
    auto truth = dataset->generate(dims, t);
    auto cloud = sampler.sample(truth, fraction, 100 + s);

    // Classical baseline reconstructs from scratch at every step.
    double snr_linear =
        field::snr_db(truth, linear.reconstruct(cloud, truth.grid()));

    // Frozen pretrained model degrades as the storm evolves...
    double snr_frozen =
        field::snr_db(truth, stale.reconstruct(cloud, truth.grid()).field);

    // ...Case-1 fine-tuning (10 epochs, all layers) keeps up. The facade is
    // rebuilt each step because fine_tune just rewrote the weights.
    core::fine_tune(pre.model, truth, sampler, cfg,
                    core::FineTuneMode::FullNetwork, 10);
    api::ReconstructOptions tuned_opts;
    tuned_opts.method = api::Method::Fcnn;
    tuned_opts.model = &pre.model;
    double snr_tuned = field::snr_db(
        truth,
        api::Reconstructor(tuned_opts).reconstruct(cloud, truth.grid()).field);

    // Case-2 archival: persist only the last two dense layers per step.
    auto tail_path = archive / ("tail_t" + std::to_string(s) + ".vfnt");
    nn::save_dense_tail(pre.model.net, 2, tail_path.string());
    auto tail_bytes = std::filesystem::file_size(tail_path);

    std::printf("%-6.0f %-12.2f %-12.2f %-12.2f %-14zu\n", t, snr_linear,
                snr_frozen, snr_tuned, static_cast<std::size_t>(tail_bytes));
  }

  auto full_bytes =
      std::filesystem::file_size((archive / "model_t0.vfmd.net").string());
  std::printf("\nfull model: %zu bytes; per-timestep Case-2 tail is ~%.1f%% "
              "of that.\n",
              static_cast<std::size_t>(full_bytes),
              100.0 * static_cast<double>(std::filesystem::file_size(
                          archive / "tail_t1.vfnt")) /
                  static_cast<double>(full_bytes));
  std::filesystem::remove_all(archive);
  return 0;
}
