#include "vf/spatial/grid_hash.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include <omp.h>

#include "vf/obs/obs.hpp"
#include "vf/util/contract.hpp"

namespace vf::spatial {

using vf::field::Vec3;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

inline int clamp_cell(int c, int nc) {
  return c < 0 ? 0 : (c >= nc ? nc - 1 : c);
}

/// Insert (idx, d2) into `out` kept sorted by (dist2, index) ascending,
/// dropping the worst entry once `out` holds `cap`. Returns the new worst
/// distance (inf while not yet full).
inline double sorted_insert(std::vector<Neighbor>& out, std::size_t cap,
                            std::uint32_t idx, double d2) {
  const Neighbor nb{idx, d2};
  auto pos = std::lower_bound(out.begin(), out.end(), nb,
                              [](const Neighbor& a, const Neighbor& b) {
                                return a.dist2 != b.dist2
                                           ? a.dist2 < b.dist2
                                           : a.index < b.index;
                              });
  out.insert(pos, nb);
  if (out.size() > cap) out.pop_back();
  return out.size() == cap ? out.back().dist2 : kInf;
}

}  // namespace

GridHashIndex::GridHashIndex(std::vector<Vec3> points, double target_per_cell)
    : points_(std::move(points)) {
  cell_start_.assign(1, 0);
  const std::size_t n = points_.size();
  if (n == 0) return;
  VF_OBS_SPAN("grid_hash_build");
  VF_OBS_COUNT("spatial.grid_hash.builds", 1);

  Vec3 lo{kInf, kInf, kInf}, hi{-kInf, -kInf, -kInf};
  for (const Vec3& p : points_) {
    lo.x = std::min(lo.x, p.x); hi.x = std::max(hi.x, p.x);
    lo.y = std::min(lo.y, p.y); hi.y = std::max(hi.y, p.y);
    lo.z = std::min(lo.z, p.z); hi.z = std::max(hi.z, p.z);
  }
  origin_ = lo;
  const double ext[3] = {hi.x - lo.x, hi.y - lo.y, hi.z - lo.z};

  // Size the grid to ~target_per_cell points per cell, splitting cells
  // across the active (non-degenerate) axes in proportion to their extent
  // so cells stay roughly cubical. Capped at ~4 cells per point so the CSR
  // arrays stay O(n) even for tiny target_per_cell.
  const double target_cells =
      std::max(1.0, static_cast<double>(n) / std::max(target_per_cell, 0.25));
  double active_prod = 1.0;
  int active_axes = 0;
  for (double e : ext) {
    if (e > 0.0) {
      active_prod *= e;
      ++active_axes;
    }
  }
  int nc[3] = {1, 1, 1};
  if (active_axes > 0) {
    const double scale =
        std::pow(target_cells / active_prod, 1.0 / active_axes);
    for (int a = 0; a < 3; ++a) {
      if (ext[a] > 0.0) {
        nc[a] = static_cast<int>(
            std::clamp(std::ceil(ext[a] * scale), 1.0, 4096.0));
      }
    }
    const double cap = 4.0 * static_cast<double>(n) + 64.0;
    double total = static_cast<double>(nc[0]) * nc[1] * nc[2];
    if (total > cap) {
      const double shrink = std::cbrt(cap / total);
      for (int& c : nc) c = std::max(1, static_cast<int>(c * shrink));
    }
  }
  ncx_ = nc[0]; ncy_ = nc[1]; ncz_ = nc[2];
  h_ = {ext[0] > 0.0 ? ext[0] / ncx_ : 1.0,
        ext[1] > 0.0 ? ext[1] / ncy_ : 1.0,
        ext[2] > 0.0 ? ext[2] / ncz_ : 1.0};
  inv_h_ = {ext[0] > 0.0 ? ncx_ / ext[0] : 0.0,
            ext[1] > 0.0 ? ncy_ / ext[1] : 0.0,
            ext[2] > 0.0 ? ncz_ / ext[2] : 0.0};

  // Counting sort the points into CSR buckets with SoA coordinates.
  const std::size_t ncells = static_cast<std::size_t>(ncx_) * ncy_ * ncz_;
  std::vector<std::uint32_t> cell_of(n);
  cell_start_.assign(ncells + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    int cx = 0, cy = 0, cz = 0;
    home_cell(points_[i], cx, cy, cz);
    const auto c = static_cast<std::uint32_t>(
        (static_cast<std::size_t>(cz) * ncy_ + cy) * ncx_ + cx);
    cell_of[i] = c;
    ++cell_start_[c + 1];
  }
  for (std::size_t c = 0; c < ncells; ++c) cell_start_[c + 1] += cell_start_[c];
  xs_.resize(n); ys_.resize(n); zs_.resize(n);
  order_.resize(n);
  std::vector<std::uint32_t> cursor(cell_start_.begin(),
                                    cell_start_.end() - 1);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t pos = cursor[cell_of[i]]++;
    VF_BOUNDS_CHECK(pos, n);
    xs_[pos] = points_[i].x;
    ys_[pos] = points_[i].y;
    zs_[pos] = points_[i].z;
    order_[pos] = static_cast<std::uint32_t>(i);
  }
}

void GridHashIndex::home_cell(const Vec3& q, int& cx, int& cy,
                              int& cz) const {
  cx = clamp_cell(static_cast<int>((q.x - origin_.x) * inv_h_.x), ncx_);
  cy = clamp_cell(static_cast<int>((q.y - origin_.y) * inv_h_.y), ncy_);
  cz = clamp_cell(static_cast<int>((q.z - origin_.z) * inv_h_.z), ncz_);
}

template <typename CellFn>
void GridHashIndex::for_each_ring_cell(int cx, int cy, int cz, int r,
                                       CellFn&& fn) const {
  // Shell of Chebyshev radius r around the home cell, clipped to the grid.
  const int zlo = std::max(cz - r, 0), zhi = std::min(cz + r, ncz_ - 1);
  const int ylo = std::max(cy - r, 0), yhi = std::min(cy + r, ncy_ - 1);
  const int xlo = std::max(cx - r, 0), xhi = std::min(cx + r, ncx_ - 1);
  for (int z = zlo; z <= zhi; ++z) {
    const bool z_face = (z == cz - r || z == cz + r);
    for (int y = ylo; y <= yhi; ++y) {
      if (z_face || y == cy - r || y == cy + r) {
        for (int x = xlo; x <= xhi; ++x) fn(x, y, z);
      } else if (r > 0) {
        if (cx - r >= 0) fn(cx - r, y, z);
        if (cx + r <= ncx_ - 1) fn(cx + r, y, z);
      }
    }
  }
}

double GridHashIndex::ring_bound2(const Vec3& q, int cx, int cy, int cz,
                                  int r) const {
  // Nearest face of the scanned box that still has grid cells beyond it.
  // Directions where the box is clipped at the grid edge have no unscanned
  // cells and contribute no bound.
  double d = kInf;
  if (cx + r < ncx_ - 1) d = std::min(d, origin_.x + h_.x * (cx + r + 1) - q.x);
  if (cx - r > 0) d = std::min(d, q.x - (origin_.x + h_.x * (cx - r)));
  if (cy + r < ncy_ - 1) d = std::min(d, origin_.y + h_.y * (cy + r + 1) - q.y);
  if (cy - r > 0) d = std::min(d, q.y - (origin_.y + h_.y * (cy - r)));
  if (cz + r < ncz_ - 1) d = std::min(d, origin_.z + h_.z * (cz + r + 1) - q.z);
  if (cz - r > 0) d = std::min(d, q.z - (origin_.z + h_.z * (cz - r)));
  if (d == kInf) return kInf;
  d = std::max(d, 0.0);
  return d * d;
}

void GridHashIndex::knn(const Vec3& query, int k,
                        std::vector<Neighbor>& out) const {
  out.clear();
  if (points_.empty() || k <= 0) return;
  const auto cap = static_cast<std::size_t>(
      std::min<std::size_t>(static_cast<std::size_t>(k), points_.size()));
  int cx = 0, cy = 0, cz = 0;
  home_cell(query, cx, cy, cz);
  double worst = kInf;
  const int max_r = std::max({ncx_, ncy_, ncz_});
  for (int r = 0; r <= max_r; ++r) {
    for_each_ring_cell(cx, cy, cz, r, [&](int x, int y, int z) {
      const auto c = (static_cast<std::size_t>(z) * ncy_ + y) * ncx_ + x;
      const std::uint32_t b = cell_start_[c], e = cell_start_[c + 1];
      for (std::uint32_t i = b; i < e; ++i) {
        const double dx = xs_[i] - query.x;
        const double dy = ys_[i] - query.y;
        const double dz = zs_[i] - query.z;
        const double d2 = dx * dx + dy * dy + dz * dz;
        if (d2 <= worst) worst = sorted_insert(out, cap, order_[i], d2);
      }
    });
    if (out.size() == cap && worst <= ring_bound2(query, cx, cy, cz, r)) {
      break;
    }
  }
}

struct GridHashIndex::SweepCache {
  std::int64_t cell = -1;  // home cell id the candidates belong to
  int cx = 0, cy = 0, cz = 0;
  int ring_hi = -1;        // shells [0..ring_hi] gathered
  bool exhausted = false;  // gathered box covers the whole grid
  vf::util::AlignedVector<double> xs, ys, zs;  // candidate coordinates (SoA)
  std::vector<std::uint32_t> idx;              // candidate original indices
  vf::util::AlignedVector<double> d2;          // per-query distance scratch
};

void GridHashIndex::gather_ring(SweepCache& cache, int r) const {
  for_each_ring_cell(cache.cx, cache.cy, cache.cz, r, [&](int x, int y,
                                                          int z) {
    const auto c = (static_cast<std::size_t>(z) * ncy_ + y) * ncx_ + x;
    const std::uint32_t b = cell_start_[c], e = cell_start_[c + 1];
    cache.xs.insert(cache.xs.end(), xs_.begin() + b, xs_.begin() + e);
    cache.ys.insert(cache.ys.end(), ys_.begin() + b, ys_.begin() + e);
    cache.zs.insert(cache.zs.end(), zs_.begin() + b, zs_.begin() + e);
    cache.idx.insert(cache.idx.end(), order_.begin() + b, order_.begin() + e);
  });
  cache.ring_hi = r;
  cache.exhausted = cache.cx - r <= 0 && cache.cx + r >= ncx_ - 1 &&
                    cache.cy - r <= 0 && cache.cy + r >= ncy_ - 1 &&
                    cache.cz - r <= 0 && cache.cz + r >= ncz_ - 1;
}

void GridHashIndex::knn_batch(const Vec3* queries, std::size_t count, int k,
                              std::uint32_t* indices, double* dist2) const {
  if (count == 0) return;
  VF_REQUIRE(k >= 1, "knn_batch: k must be >= 1");
  VF_REQUIRE(points_.size() >= static_cast<std::size_t>(k),
             "knn_batch: cloud smaller than k");
  VF_OBS_COUNT("spatial.grid_hash.batch_queries", count);
  const auto uk = static_cast<std::size_t>(k);
  // vf-par: disjoint-writes — iteration i writes only rows i of the output
  // arrays; the sweep cache and selection buffer are thread-private. Static
  // scheduling keeps each thread's query range contiguous so the cell-order
  // sweep re-uses its gathered candidates.
#pragma omp parallel
  {
    SweepCache cache;
    std::vector<Neighbor> sel;
#pragma omp for schedule(static)
    for (std::int64_t qi = 0; qi < static_cast<std::int64_t>(count); ++qi) {
      const Vec3& q = queries[qi];
      int cx = 0, cy = 0, cz = 0;
      home_cell(q, cx, cy, cz);
      const auto cell = static_cast<std::int64_t>(
          (static_cast<std::size_t>(cz) * ncy_ + cy) * ncx_ + cx);
      if (cell != cache.cell) {
        cache.cell = cell;
        cache.cx = cx; cache.cy = cy; cache.cz = cz;
        cache.ring_hi = -1;
        cache.exhausted = false;
        cache.xs.clear(); cache.ys.clear(); cache.zs.clear();
        cache.idx.clear();
      }
      // Gather shells until at least k candidates are cached.
      while (!cache.exhausted && cache.idx.size() < uk) {
        gather_ring(cache, cache.ring_hi + 1);
      }
      for (;;) {
        const std::size_t m = cache.idx.size();
        cache.d2.resize(m);
        const double* cxs = cache.xs.data();
        const double* cys = cache.ys.data();
        const double* czs = cache.zs.data();
        double* cd2 = cache.d2.data();
#pragma omp simd
        for (std::size_t i = 0; i < m; ++i) {
          const double dx = cxs[i] - q.x;
          const double dy = cys[i] - q.y;
          const double dz = czs[i] - q.z;
          cd2[i] = dx * dx + dy * dy + dz * dz;
        }
        sel.clear();
        double worst = kInf;
        for (std::size_t i = 0; i < m; ++i) {
          if (cd2[i] <= worst) {
            worst = sorted_insert(sel, uk, cache.idx[i], cd2[i]);
          }
        }
        if (cache.exhausted ||
            (sel.size() == uk &&
             worst <= ring_bound2(q, cache.cx, cache.cy, cache.cz,
                                  cache.ring_hi))) {
          break;
        }
        gather_ring(cache, cache.ring_hi + 1);
      }
      VF_ASSERT(sel.size() == uk, "knn_batch: short row from full cloud");
      const auto row = static_cast<std::size_t>(qi) * uk;
      for (std::size_t j = 0; j < uk; ++j) {
        indices[row + j] = sel[j].index;
        dist2[row + j] = sel[j].dist2;
      }
    }
  }
}

}  // namespace vf::spatial
