#include "vf/spatial/neighbor_index.hpp"

#include <stdexcept>

#include <omp.h>

#include "vf/spatial/grid_hash.hpp"
#include "vf/spatial/kdtree.hpp"
#include "vf/util/contract.hpp"

namespace vf::spatial {

void NeighborIndex::knn_batch(const vf::field::Vec3* queries,
                              std::size_t count, int k,
                              std::uint32_t* indices, double* dist2) const {
  if (count == 0) return;
  VF_REQUIRE(k >= 1, "knn_batch: k must be >= 1");
  VF_REQUIRE(size() >= static_cast<std::size_t>(k),
             "knn_batch: cloud smaller than k");
  const auto uk = static_cast<std::size_t>(k);
  // vf-par: disjoint-writes — iteration i writes only rows i of the two
  // output arrays; the per-thread candidate buffer is thread-private.
#pragma omp parallel
  {
    std::vector<Neighbor> nbrs;
#pragma omp for schedule(static)
    for (std::int64_t i = 0; i < static_cast<std::int64_t>(count); ++i) {
      knn(queries[i], k, nbrs);
      VF_ASSERT(nbrs.size() == uk, "knn_batch: short row from full cloud");
      const auto row = static_cast<std::size_t>(i) * uk;
      for (std::size_t j = 0; j < uk; ++j) {
        indices[row + j] = nbrs[j].index;
        dist2[row + j] = nbrs[j].dist2;
      }
    }
  }
}

const char* to_string(IndexKind kind) {
  switch (kind) {
    case IndexKind::Auto: return "auto";
    case IndexKind::KdTree: return "kdtree";
    case IndexKind::GridHash: return "grid_hash";
  }
  return "auto";
}

IndexKind index_kind_from_name(const std::string& name) {
  if (name == "auto") return IndexKind::Auto;
  if (name == "kdtree") return IndexKind::KdTree;
  if (name == "grid_hash") return IndexKind::GridHash;
  throw std::invalid_argument("unknown neighbor index kind: " + name);
}

IndexKind select_index_kind(std::size_t point_count, std::size_t query_count) {
  // The grid hash's O(n) build is always cheaper than the k-d tree's
  // O(n log n), so the only reason to pay for the tree is a query workload
  // too small to amortise either build — where the tree's tighter pruning
  // wins per query. ablation_knn places the crossover well below one query
  // per four points for uniform clouds; stay conservative so sparse probe
  // workloads (resilient fallbacks, single-point api calls) keep the tree.
  if (query_count * 4 >= point_count) return IndexKind::GridHash;
  return IndexKind::KdTree;
}

std::unique_ptr<NeighborIndex> build_index(std::vector<vf::field::Vec3> points,
                                           IndexKind kind,
                                           std::size_t expected_queries) {
  if (kind == IndexKind::Auto) {
    kind = select_index_kind(points.size(), expected_queries);
  }
  if (kind == IndexKind::GridHash) {
    return std::make_unique<GridHashIndex>(std::move(points));
  }
  return std::make_unique<KdTree>(std::move(points));
}

}  // namespace vf::spatial
