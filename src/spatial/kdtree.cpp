#include "vf/spatial/kdtree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include <omp.h>

#include "vf/obs/obs.hpp"
#include "vf/util/contract.hpp"

namespace vf::spatial {

using vf::field::Vec3;

namespace {

inline double coord(const Vec3& p, int axis) {
  return axis == 0 ? p.x : (axis == 1 ? p.y : p.z);
}

inline double dist2(const Vec3& a, const Vec3& b) {
  double dx = a.x - b.x, dy = a.y - b.y, dz = a.z - b.z;
  return dx * dx + dy * dy + dz * dz;
}

/// Nodes a subtree over n points occupies. Must mirror the split in
/// build_at (left = n/2) so the DFS layout is computable up front.
std::uint32_t subtree_nodes(std::uint32_t n) {
  constexpr std::uint32_t kLeaf = 16;  // == KdTree::kLeafSize
  // total(n) = 1 + total(n/2) + total(n - n/2): recurse on the right child,
  // iterate down the left spine.
  std::uint32_t total = 1;  // the leaf this spine ends in
  while (n > kLeaf) {
    total += 1 + subtree_nodes(n - n / 2);
    n /= 2;
  }
  return total;
}

// Subtrees below this point count build serially; above it each half is an
// OpenMP task. Large enough that task overhead never dominates nth_element.
constexpr std::uint32_t kTaskGrain = 8192;

}  // namespace

// Points are kept in build order; the tree permutes an index array instead,
// so Neighbor::index always refers to the caller's original ordering.

KdTree::KdTree(std::vector<Vec3> points) : points_(std::move(points)) {
  if (points_.empty()) return;
  VF_OBS_SPAN("kdtree_build");
  VF_OBS_COUNT("spatial.kdtree.builds", 1);
  const auto n = static_cast<std::uint32_t>(points_.size());
  // DFS layout with precomputed subtree sizes: every recursive call owns a
  // disjoint [self, self + subtree_nodes) node range and a disjoint
  // [begin, end) permutation range, so subtrees build in parallel without
  // synchronisation on the node array.
  nodes_.resize(subtree_nodes(n));
  perm_.resize(n);
  std::iota(perm_.begin(), perm_.end(), 0u);
  root_ = 0;
  // vf-par: disjoint-writes — tasks recurse into non-overlapping node and
  // permutation ranges (see layout comment above); joined by the implicit
  // barrier at the end of the parallel region.
#pragma omp parallel
#pragma omp single nowait
  build_at(0, n, root_);
  // Reorder the point storage to match perm_ so leaf scans are sequential.
  std::vector<Vec3> reordered(points_.size());
  for (std::size_t i = 0; i < points_.size(); ++i) {
    VF_BOUNDS_CHECK(perm_[i], points_.size());
    reordered[i] = points_[perm_[i]];
  }
  points_storage_ = std::move(reordered);
}

void KdTree::build_at(std::uint32_t begin, std::uint32_t end,
                      std::uint32_t self) {
  VF_BOUNDS_CHECK(self, nodes_.size());
  Node node;
  if (end - begin <= kLeafSize) {
    node.first = begin;
    node.count = end - begin;
    nodes_[self] = node;
    return;
  }

  // Choose the axis with the widest extent over this range.
  Vec3 lo{std::numeric_limits<double>::infinity(),
          std::numeric_limits<double>::infinity(),
          std::numeric_limits<double>::infinity()};
  Vec3 hi{-std::numeric_limits<double>::infinity(),
          -std::numeric_limits<double>::infinity(),
          -std::numeric_limits<double>::infinity()};
  for (std::uint32_t i = begin; i < end; ++i) {
    const Vec3& p = points_[perm_[i]];
    lo.x = std::min(lo.x, p.x); hi.x = std::max(hi.x, p.x);
    lo.y = std::min(lo.y, p.y); hi.y = std::max(hi.y, p.y);
    lo.z = std::min(lo.z, p.z); hi.z = std::max(hi.z, p.z);
  }
  Vec3 ext = hi - lo;
  int axis = 0;
  if (ext.y >= ext.x && ext.y >= ext.z) axis = 1;
  else if (ext.z >= ext.x && ext.z >= ext.y) axis = 2;

  std::uint32_t mid = begin + (end - begin) / 2;
  std::nth_element(perm_.begin() + begin, perm_.begin() + mid,
                   perm_.begin() + end,
                   [&](std::uint32_t a, std::uint32_t b) {
                     return coord(points_[a], axis) < coord(points_[b], axis);
                   });

  node.axis = static_cast<std::uint8_t>(axis);
  node.split = static_cast<float>(coord(points_[perm_[mid]], axis));
  // Tight child bounds on the split axis for pruning.
  double left_max = -std::numeric_limits<double>::infinity();
  for (std::uint32_t i = begin; i < mid; ++i) {
    left_max = std::max(left_max, coord(points_[perm_[i]], axis));
  }
  double right_min = std::numeric_limits<double>::infinity();
  for (std::uint32_t i = mid; i < end; ++i) {
    right_min = std::min(right_min, coord(points_[perm_[i]], axis));
  }
  node.split_lo = left_max;
  node.split_hi = right_min;

  node.left = self + 1;
  node.right = self + 1 + subtree_nodes(mid - begin);
  nodes_[self] = node;
  if (end - begin >= kTaskGrain) {
    // Children touch disjoint ranges, so the left half runs as an
    // independent task while the right half continues on this thread; the
    // parallel region's barrier joins all tasks before storage reorder.
    const std::uint32_t left_idx = node.left;
#pragma omp task firstprivate(begin, mid, left_idx)
    build_at(begin, mid, left_idx);
    build_at(mid, end, node.right);
  } else {
    build_at(begin, mid, node.left);
    build_at(mid, end, node.right);
  }
}

template <typename Visitor>
void KdTree::search(std::uint32_t node_idx, const Vec3& q, double& worst,
                    Visitor&& visit) const {
  VF_BOUNDS_CHECK(node_idx, nodes_.size());
  const Node& node = nodes_[node_idx];
  if (node.count > 0) {
    VF_ASSERT(node.first + node.count <= points_storage_.size(),
              "KdTree: leaf range outside point storage");
    for (std::uint32_t i = node.first; i < node.first + node.count; ++i) {
      double d2 = dist2(points_storage_[i], q);
      if (d2 < worst) visit(perm_[i], d2, worst);
    }
    return;
  }
  double qc = coord(q, node.axis);
  // Distance lower bounds to each child's slab on the split axis.
  double d_left = qc > node.split_lo ? qc - node.split_lo : 0.0;
  double d_right = qc < node.split_hi ? node.split_hi - qc : 0.0;
  if (d_left <= d_right) {
    if (d_left * d_left < worst) search(node.left, q, worst, visit);
    if (d_right * d_right < worst) search(node.right, q, worst, visit);
  } else {
    if (d_right * d_right < worst) search(node.right, q, worst, visit);
    if (d_left * d_left < worst) search(node.left, q, worst, visit);
  }
}

void KdTree::knn(const Vec3& query, int k, std::vector<Neighbor>& out) const {
  out.clear();
  if (points_.empty() || k <= 0) return;
  k = std::min<int>(k, static_cast<int>(points_.size()));
  out.reserve(static_cast<std::size_t>(k));
  double worst = std::numeric_limits<double>::infinity();

  // Sorted-array candidate set: k is small (5 in the paper pipeline), so
  // insertion into a sorted vector beats a heap.
  auto visit = [&](std::uint32_t idx, double d2, double& w) {
    Neighbor nb{idx, d2};
    auto pos = std::lower_bound(
        out.begin(), out.end(), nb,
        [](const Neighbor& a, const Neighbor& b) { return a.dist2 < b.dist2; });
    out.insert(pos, nb);
    if (out.size() > static_cast<std::size_t>(k)) out.pop_back();
    if (out.size() == static_cast<std::size_t>(k)) w = out.back().dist2;
  };
  search(root_, query, worst, visit);
}

std::uint32_t KdTree::nearest(const Vec3& query) const {
  if (points_.empty()) {
    throw std::logic_error("KdTree::nearest on empty tree");
  }
  double worst = std::numeric_limits<double>::infinity();
  std::uint32_t best = 0;
  auto visit = [&](std::uint32_t idx, double d2, double& w) {
    best = idx;
    w = d2;
  };
  search(root_, query, worst, visit);
  return best;
}

std::vector<Neighbor> KdTree::radius_query(const Vec3& query,
                                           double radius) const {
  std::vector<Neighbor> out;
  if (points_.empty() || radius < 0) return out;
  double worst = radius * radius + 1e-300;
  auto visit = [&](std::uint32_t idx, double d2, double& /*w*/) {
    if (d2 <= radius * radius) out.push_back({idx, d2});
  };
  search(root_, query, worst, visit);
  return out;
}

}  // namespace vf::spatial
