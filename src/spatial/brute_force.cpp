#include "vf/spatial/brute_force.hpp"

#include <algorithm>

namespace vf::spatial {

using vf::field::Vec3;

namespace {
inline double dist2(const Vec3& a, const Vec3& b) {
  double dx = a.x - b.x, dy = a.y - b.y, dz = a.z - b.z;
  return dx * dx + dy * dy + dz * dz;
}

bool less(const Neighbor& a, const Neighbor& b) {
  if (a.dist2 != b.dist2) return a.dist2 < b.dist2;
  return a.index < b.index;
}
}  // namespace

std::vector<Neighbor> brute_force_knn(const std::vector<Vec3>& points,
                                      const Vec3& query, int k) {
  std::vector<Neighbor> all;
  all.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    all.push_back({static_cast<std::uint32_t>(i), dist2(points[i], query)});
  }
  auto kk = std::min<std::size_t>(static_cast<std::size_t>(std::max(k, 0)),
                                  all.size());
  std::partial_sort(all.begin(), all.begin() + kk, all.end(), less);
  all.resize(kk);
  return all;
}

std::vector<Neighbor> brute_force_radius(const std::vector<Vec3>& points,
                                         const Vec3& query, double radius) {
  std::vector<Neighbor> out;
  double r2 = radius * radius;
  for (std::size_t i = 0; i < points.size(); ++i) {
    double d2 = dist2(points[i], query);
    if (d2 <= r2) out.push_back({static_cast<std::uint32_t>(i), d2});
  }
  std::sort(out.begin(), out.end(), less);
  return out;
}

}  // namespace vf::spatial
