#pragma once
// O(n) reference nearest-neighbour search.
//
// Exists to validate the k-d tree (property tests compare the two on random
// clouds) and as a fallback for tiny point sets.

#include <vector>

#include "vf/spatial/kdtree.hpp"

namespace vf::spatial {

/// k nearest points by exhaustive scan, sorted by ascending distance.
/// Ties are broken by index for determinism.
std::vector<Neighbor> brute_force_knn(const std::vector<vf::field::Vec3>& points,
                                      const vf::field::Vec3& query, int k);

/// All points within `radius`, sorted by ascending distance.
std::vector<Neighbor> brute_force_radius(
    const std::vector<vf::field::Vec3>& points, const vf::field::Vec3& query,
    double radius);

}  // namespace vf::spatial
