#pragma once
// 3-D k-d tree for nearest-neighbour queries over sampled point clouds.
//
// This is the workhorse of the whole reconstruction pipeline: the FCNN's
// feature extraction needs the 5 nearest sampled points of every void grid
// point (paper §III-D), and the nearest-neighbour / Shepard baselines need
// 1-NN / k-NN at every grid point. Queries are thread-safe after build, so
// the per-voxel loops parallelise over OpenMP.
//
// Implementation: median-split balanced tree stored as an implicit array of
// nodes (no pointers), built with nth_element in O(n log n). Axis chosen as
// the widest extent of each subtree for robustness to anisotropic clouds.

#include <cstdint>
#include <vector>

#include "vf/field/grid.hpp"

namespace vf::spatial {

/// One k-NN result: index into the original point array + squared distance.
struct Neighbor {
  std::uint32_t index = 0;
  double dist2 = 0.0;
};

class KdTree {
 public:
  KdTree() = default;

  /// Build over a copy of `points`. Build is O(n log n).
  explicit KdTree(std::vector<vf::field::Vec3> points);

  [[nodiscard]] std::size_t size() const { return points_.size(); }
  [[nodiscard]] const std::vector<vf::field::Vec3>& points() const {
    return points_;
  }

  /// The k nearest points to `query`, sorted by ascending distance.
  /// Returns fewer than k when the cloud is smaller than k.
  [[nodiscard]] std::vector<Neighbor> knn(const vf::field::Vec3& query,
                                          int k) const;

  /// k-NN without allocation: fills `out` (resized to the result count).
  void knn(const vf::field::Vec3& query, int k,
           std::vector<Neighbor>& out) const;

  /// Index of the single nearest point (size() must be > 0).
  [[nodiscard]] std::uint32_t nearest(const vf::field::Vec3& query) const;

  /// All points within `radius` of `query`, unsorted.
  [[nodiscard]] std::vector<Neighbor> radius_query(
      const vf::field::Vec3& query, double radius) const;

 private:
  struct Node {
    // Leaf when count > 0: points_[first..first+count).
    // Internal when count == 0: children at 2*i+1 / 2*i+2 ... we instead
    // store explicit child indices for a compact array layout.
    std::uint32_t first = 0;
    std::uint32_t count = 0;
    std::uint32_t left = 0;
    std::uint32_t right = 0;
    float split = 0.0f;
    std::uint8_t axis = 0;
    double split_lo = 0.0;  // max coordinate of left subtree on axis
    double split_hi = 0.0;  // min coordinate of right subtree on axis
  };

  std::uint32_t build(std::uint32_t begin, std::uint32_t end);

  template <typename Visitor>
  void search(std::uint32_t node, const vf::field::Vec3& q, double& worst,
              Visitor&& visit) const;

  std::vector<vf::field::Vec3> points_;          // original order (API view)
  std::vector<vf::field::Vec3> points_storage_;  // leaf-contiguous order
  std::vector<std::uint32_t> perm_;  // storage position -> original index
  std::vector<Node> nodes_;
  std::uint32_t root_ = 0;
  static constexpr std::uint32_t kLeafSize = 16;
};

}  // namespace vf::spatial
