#pragma once
// 3-D k-d tree for nearest-neighbour queries over sampled point clouds.
//
// This is the exact workhorse index of the reconstruction pipeline: the
// FCNN's feature extraction needs the 5 nearest sampled points of every void
// grid point (paper §III-D), and the nearest-neighbour / Shepard baselines
// need 1-NN / k-NN at every grid point. Queries are thread-safe after build,
// so the per-voxel loops parallelise over OpenMP. For dense grid-sweep
// workloads the GridHashIndex sibling usually wins — see neighbor_index.hpp
// for the selection policy.
//
// Implementation: median-split balanced tree stored as an implicit array of
// nodes (no pointers), built with nth_element in O(n log n). Axis chosen as
// the widest extent of each subtree for robustness to anisotropic clouds.
// The node array is laid out in DFS order with 64-byte-aligned storage and
// the subtree sizes are computed up front, so subtrees build into disjoint
// node/permutation ranges and large builds parallelise over OpenMP tasks.

#include <cstdint>
#include <vector>

#include "vf/field/grid.hpp"
#include "vf/spatial/neighbor_index.hpp"
#include "vf/util/aligned.hpp"

namespace vf::spatial {

class KdTree final : public NeighborIndex {
 public:
  KdTree() = default;

  /// Build over a copy of `points`. Build is O(n log n) and parallelises
  /// across subtrees.
  explicit KdTree(std::vector<vf::field::Vec3> points);

  [[nodiscard]] const char* kind_name() const override { return "kdtree"; }
  [[nodiscard]] std::size_t size() const override { return points_.size(); }
  [[nodiscard]] const std::vector<vf::field::Vec3>& points() const override {
    return points_;
  }

  /// The k nearest points to `query`, sorted by ascending distance, without
  /// allocation: fills `out` (resized to the result count). Returns fewer
  /// than k when the cloud is smaller than k.
  void knn(const vf::field::Vec3& query, int k,
           std::vector<Neighbor>& out) const override;
  using NeighborIndex::knn;

  /// Index of the single nearest point (size() must be > 0).
  [[nodiscard]] std::uint32_t nearest(const vf::field::Vec3& query) const;

  /// All points within `radius` of `query`, unsorted.
  [[nodiscard]] std::vector<Neighbor> radius_query(
      const vf::field::Vec3& query, double radius) const;

 private:
  struct Node {
    // Leaf when count > 0: points_storage_[first..first+count).
    // Internal when count == 0: explicit child indices into the DFS-ordered
    // node array (left == self+1; right follows the left subtree).
    std::uint32_t first = 0;
    std::uint32_t count = 0;
    std::uint32_t left = 0;
    std::uint32_t right = 0;
    float split = 0.0f;
    std::uint8_t axis = 0;
    double split_lo = 0.0;  // max coordinate of left subtree on axis
    double split_hi = 0.0;  // min coordinate of right subtree on axis
  };

  void build_at(std::uint32_t begin, std::uint32_t end, std::uint32_t self);

  template <typename Visitor>
  void search(std::uint32_t node, const vf::field::Vec3& q, double& worst,
              Visitor&& visit) const;

  std::vector<vf::field::Vec3> points_;          // original order (API view)
  std::vector<vf::field::Vec3> points_storage_;  // leaf-contiguous order
  std::vector<std::uint32_t> perm_;  // storage position -> original index
  vf::util::AlignedVector<Node> nodes_;
  std::uint32_t root_ = 0;
  static constexpr std::uint32_t kLeafSize = 16;
};

}  // namespace vf::spatial
