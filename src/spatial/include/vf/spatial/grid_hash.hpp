#pragma once
// Uniform grid-hash (bucketed cell) neighbour index.
//
// The void points the FCNN reconstructs are a regular grid sweep over the
// volume, so the query stream has extreme spatial locality: consecutive
// queries land in the same or an adjacent cell. This index exploits that.
// Points are bucketed into a uniform grid sized at ~2 points per occupied
// volume cell and stored in CSR layout with SoA coordinates, so a k-NN
// query is: locate the home cell, scan outward in Chebyshev shells, and
// stop once the k-th best distance is closer than the nearest unscanned
// cell face. `knn_batch` sweeps queries in order and keeps the gathered
// candidate buckets of the current home cell cached, so adjacent void
// points re-use the gather instead of re-walking the grid — the amortised
// cost per query at grid density is a handful of SIMD distance evaluations.
//
// Results are exact (same distances as brute force); ties broken by
// ascending original index, matching brute_force_knn.

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "vf/field/grid.hpp"
#include "vf/spatial/neighbor_index.hpp"
#include "vf/util/aligned.hpp"

namespace vf::spatial {

class GridHashIndex final : public NeighborIndex {
 public:
  GridHashIndex() = default;

  /// Bucket a copy of `points` into a uniform grid sized at roughly
  /// `target_per_cell` points per cell. Build is O(n) (counting sort).
  explicit GridHashIndex(std::vector<vf::field::Vec3> points,
                         double target_per_cell = 2.0);

  [[nodiscard]] const char* kind_name() const override { return "grid_hash"; }
  [[nodiscard]] std::size_t size() const override { return points_.size(); }
  [[nodiscard]] const std::vector<vf::field::Vec3>& points() const override {
    return points_;
  }

  void knn(const vf::field::Vec3& query, int k,
           std::vector<Neighbor>& out) const override;
  using NeighborIndex::knn;

  /// Cell-order sweep: candidate buckets gathered for one home cell are
  /// re-used by every subsequent query in that cell.
  void knn_batch(const vf::field::Vec3* queries, std::size_t count, int k,
                 std::uint32_t* indices, double* dist2) const override;

  /// Grid resolution chosen at build (for tests and the ablation bench).
  [[nodiscard]] std::array<int, 3> cell_dims() const {
    return {ncx_, ncy_, ncz_};
  }

 private:
  struct SweepCache;

  void home_cell(const vf::field::Vec3& q, int& cx, int& cy, int& cz) const;
  template <typename CellFn>
  void for_each_ring_cell(int cx, int cy, int cz, int r, CellFn&& fn) const;
  /// Squared distance from `q` to the nearest cell face outside the
  /// already-scanned box of radius `r` around (cx,cy,cz); +inf when the box
  /// covers the whole grid. Any unscanned point is at least this far away.
  [[nodiscard]] double ring_bound2(const vf::field::Vec3& q, int cx, int cy,
                                   int cz, int r) const;
  void gather_ring(SweepCache& cache, int r) const;

  std::vector<vf::field::Vec3> points_;  // original order (API view)
  // Bucket-sorted SoA coordinates + CSR cell ranges. order_ maps bucket
  // position back to the caller's original index.
  vf::util::AlignedVector<double> xs_, ys_, zs_;
  std::vector<std::uint32_t> order_;
  std::vector<std::uint32_t> cell_start_;  // size ncells+1
  vf::field::Vec3 origin_{0, 0, 0};
  vf::field::Vec3 h_{1, 1, 1};      // cell widths (1 on degenerate axes)
  vf::field::Vec3 inv_h_{0, 0, 0};  // 1/width (0 on degenerate axes)
  int ncx_ = 0, ncy_ = 0, ncz_ = 0;
};

}  // namespace vf::spatial
