#pragma once
// Common interface over the spatial neighbour indexes (k-d tree, grid hash).
//
// The reconstruction pipeline asks one question of the spatial layer: "the k
// nearest sampled points of this query" (paper §III-D uses k = 5). Two
// implementations answer it with very different cost profiles:
//
//   KdTree        — exact, O(n log n) build, O(log n) per query. Wins when
//                   queries are sparse relative to the cloud (a handful of
//                   probe points against a large sample set).
//   GridHashIndex — exact, O(n) build into uniform cells, O(1) expected per
//                   query at grid density. Wins when the queries *are* a
//                   dense grid sweep (reconstructing every void point of a
//                   timestep), because candidate buckets are shared between
//                   adjacent queries and the batched sweep amortises them.
//
// `select_index_kind` encodes the crossover policy measured by
// bench/ablation_knn.cpp; engines pass IndexKind::Auto and get the right
// structure for their workload without callers caring which one answered.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "vf/field/grid.hpp"

namespace vf::spatial {

/// One k-NN result: index into the original point array + squared distance.
struct Neighbor {
  std::uint32_t index = 0;
  double dist2 = 0.0;
};

/// Abstract exact k-NN index over an immutable point cloud. Queries are
/// const and thread-safe after construction; `knn_batch` is the hot entry
/// used by feature extraction and may parallelise internally.
class NeighborIndex {
 public:
  NeighborIndex() = default;
  NeighborIndex(const NeighborIndex&) = default;
  NeighborIndex(NeighborIndex&&) = default;
  NeighborIndex& operator=(const NeighborIndex&) = default;
  NeighborIndex& operator=(NeighborIndex&&) = default;
  virtual ~NeighborIndex() = default;

  /// Implementation name ("kdtree" / "grid_hash") for obs and benches.
  [[nodiscard]] virtual const char* kind_name() const = 0;

  [[nodiscard]] virtual std::size_t size() const = 0;

  /// The indexed points in the caller's original order.
  [[nodiscard]] virtual const std::vector<vf::field::Vec3>& points() const = 0;

  /// k-NN without allocation: fills `out` sorted by ascending distance,
  /// resized to min(k, size()); cleared when k <= 0 or the index is empty.
  virtual void knn(const vf::field::Vec3& query, int k,
                   std::vector<Neighbor>& out) const = 0;

  /// Allocating convenience overload.
  [[nodiscard]] std::vector<Neighbor> knn(const vf::field::Vec3& query,
                                          int k) const {
    std::vector<Neighbor> out;
    knn(query, k, out);
    return out;
  }

  /// Batched k-NN into SoA output: row i of the k-wide `indices` / `dist2`
  /// arrays holds query i's neighbours sorted by ascending distance. Both
  /// outputs must hold count*k elements. Requires k >= 1 and size() >= k so
  /// every row is full — callers batch only after validating the cloud.
  /// Default implementation parallelises per-query `knn` with per-thread
  /// scratch; GridHashIndex overrides it with the cell-order sweep.
  virtual void knn_batch(const vf::field::Vec3* queries, std::size_t count,
                         int k, std::uint32_t* indices, double* dist2) const;
};

/// Which index implementation to build (Auto = pick by query density).
enum class IndexKind : std::uint8_t { Auto = 0, KdTree = 1, GridHash = 2 };

[[nodiscard]] const char* to_string(IndexKind kind);

/// Parse "auto" / "kdtree" / "grid_hash" (throws std::invalid_argument).
[[nodiscard]] IndexKind index_kind_from_name(const std::string& name);

/// Resolve Auto: grid hash when the query workload is dense relative to the
/// cloud (the void-grid sweep regime), k-d tree for sparse probing. The
/// crossover is recorded by bench/ablation_knn.cpp.
[[nodiscard]] IndexKind select_index_kind(std::size_t point_count,
                                          std::size_t query_count);

/// Build the requested index over a copy of `points`. Auto is resolved with
/// `select_index_kind(points.size(), expected_queries)`.
[[nodiscard]] std::unique_ptr<NeighborIndex> build_index(
    std::vector<vf::field::Vec3> points, IndexKind kind,
    std::size_t expected_queries = 0);

}  // namespace vf::spatial
