#pragma once
// Common interface for point-cloud -> regular-grid reconstruction.
//
// These are the classical methods the paper surveys in §III-B and benchmarks
// against the FCNN in Figs 9/10: piecewise-linear (Delaunay), natural
// neighbour (discrete Sibson), modified Shepard, nearest neighbour, and RBF.
// Every method consumes an unstructured SampleCloud and produces a
// ScalarField on an arbitrary target grid (which need not match the grid the
// cloud was sampled from — Experiment 3 reconstructs onto a finer grid).

#include <memory>
#include <string>
#include <vector>

#include "vf/field/scalar_field.hpp"
#include "vf/sampling/sample_cloud.hpp"

namespace vf::interp {

class Reconstructor {
 public:
  virtual ~Reconstructor() = default;

  /// Short identifier used in bench output ("linear", "nearest", ...).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Reconstruct the full field on `grid` from the sampled cloud.
  /// Thread policy is an implementation detail of each method.
  [[nodiscard]] virtual vf::field::ScalarField reconstruct(
      const vf::sampling::SampleCloud& cloud,
      const vf::field::UniformGrid3& grid) const = 0;
};

/// Construct a reconstructor by name: "nearest", "shepard", "linear",
/// "linear_seq" (single-threaded naive), "natural", "rbf".
/// Throws std::invalid_argument for unknown names.
std::unique_ptr<Reconstructor> make_reconstructor(const std::string& name);

/// Names of all registered reconstructors, in paper order.
std::vector<std::string> reconstructor_names();

}  // namespace vf::interp
