#pragma once
// Common interface for point-cloud -> regular-grid reconstruction.
//
// These are the classical methods the paper surveys in §III-B and benchmarks
// against the FCNN in Figs 9/10: piecewise-linear (Delaunay), natural
// neighbour (discrete Sibson), modified Shepard, nearest neighbour, and RBF.
// Every method consumes an unstructured SampleCloud and produces a
// ScalarField on an arbitrary target grid (which need not match the grid the
// cloud was sampled from — Experiment 3 reconstructs onto a finer grid).

#include <memory>
#include <string>
#include <vector>

#include "vf/field/scalar_field.hpp"
#include "vf/sampling/sample_cloud.hpp"

namespace vf::interp {

class Reconstructor {
 public:
  virtual ~Reconstructor() = default;

  /// Short identifier used in bench output ("linear", "nearest", ...).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Reconstruct the full field on `grid` from the sampled cloud.
  /// Thread policy is an implementation detail of each method.
  [[nodiscard]] virtual vf::field::ScalarField reconstruct(
      const vf::sampling::SampleCloud& cloud,
      const vf::field::UniformGrid3& grid) const = 0;
};

/// Every classical method, as a closed enum. The canonical factory input:
/// switch-style dispatch elsewhere in the repo (the resilient fallback, the
/// vf::api facade, the serving layer) routes through this instead of
/// hand-rolled name comparisons.
enum class Method {
  Nearest,
  Shepard,
  Linear,       // parallel Delaunay (the paper's strong baseline)
  LinearSeq,    // single-threaded Delaunay
  LinearNaive,  // cold point location per query (paper's "initial" impl)
  Natural,
  Rbf,
  Kriging,
};

/// Canonical name of `m` ("nearest", "shepard", "linear", "linear_seq",
/// "linear_naive", "natural", "rbf", "kriging").
[[nodiscard]] const char* to_string(Method m);

/// Parse a canonical name back to the enum (throws std::invalid_argument).
[[nodiscard]] Method method_from_name(const std::string& name);

/// Construct the interpolator for `method`, wrapped in the vf::obs
/// instrumentation decorator (per-method call counter + latency histogram).
std::unique_ptr<Reconstructor> make_interpolator(Method method);

/// Name-based convenience shim over method_from_name + make_interpolator.
std::unique_ptr<Reconstructor> make_reconstructor(const std::string& name);

/// Names of all registered reconstructors, in paper order.
std::vector<std::string> reconstructor_names();

}  // namespace vf::interp
