#pragma once
// Concrete classical reconstruction methods (paper §III-B).

#include "vf/interp/reconstructor.hpp"

namespace vf::interp {

/// Nearest neighbour: each grid point takes the value of the closest sample.
/// Fast but blocky (Voronoi-piecewise-constant).
class NearestNeighborReconstructor final : public Reconstructor {
 public:
  [[nodiscard]] std::string name() const override { return "nearest"; }
  [[nodiscard]] vf::field::ScalarField reconstruct(
      const vf::sampling::SampleCloud& cloud,
      const vf::field::UniformGrid3& grid) const override;
};

/// Modified Shepard (local inverse-distance weighting): uses the k nearest
/// samples with Franke-Nielson weights w_i = ((R - d_i) / (R d_i))^2 where
/// R is the distance to the k-th neighbour, giving compact support and
/// C0-continuity (unlike global Shepard).
class ShepardReconstructor final : public Reconstructor {
 public:
  explicit ShepardReconstructor(int k = 8) : k_(k) {}
  [[nodiscard]] std::string name() const override { return "shepard"; }
  [[nodiscard]] vf::field::ScalarField reconstruct(
      const vf::sampling::SampleCloud& cloud,
      const vf::field::UniformGrid3& grid) const override;

 private:
  int k_;
};

/// Piecewise-linear interpolation over the Delaunay tetrahedralization —
/// the paper's strongest classical baseline. Grid points outside the convex
/// hull fall back to nearest-neighbour. `Mode` reproduces the paper's two
/// implementations (Fig 10): Naive = sequential scan with cold point
/// location per query (the slow "initial sequential implementation");
/// Parallel = OpenMP over grid slabs with walk hints (the CGAL+OpenMP one).
class LinearDelaunayReconstructor final : public Reconstructor {
 public:
  enum class Mode { Naive, Sequential, Parallel };

  explicit LinearDelaunayReconstructor(Mode mode = Mode::Parallel)
      : mode_(mode) {}
  [[nodiscard]] std::string name() const override {
    switch (mode_) {
      case Mode::Naive: return "linear_naive";
      case Mode::Sequential: return "linear_seq";
      default: return "linear";
    }
  }
  [[nodiscard]] vf::field::ScalarField reconstruct(
      const vf::sampling::SampleCloud& cloud,
      const vf::field::UniformGrid3& grid) const override;

 private:
  Mode mode_;
};

/// Natural neighbour (discrete Sibson, after Park et al. 2006): the Sibson
/// weight of sample s at query q is the volume q's Voronoi cell would steal
/// from s's cell, approximated on the target grid itself. Implemented as the
/// scatter formulation: every voxel u with nearest sample distance r_u
/// contributes value(nn(u)) to all voxels within r_u of u.
class NaturalNeighborReconstructor final : public Reconstructor {
 public:
  [[nodiscard]] std::string name() const override { return "natural"; }
  [[nodiscard]] vf::field::ScalarField reconstruct(
      const vf::sampling::SampleCloud& cloud,
      const vf::field::UniformGrid3& grid) const override;
};

/// Local radial basis function interpolation (Gaussian kernel over the k
/// nearest samples, ridge-regularised). The paper measured RBFs as far
/// slower without quality gains and excluded them from the sweeps; included
/// here for completeness.
class RbfReconstructor final : public Reconstructor {
 public:
  explicit RbfReconstructor(int k = 16, double ridge = 1e-10)
      : k_(k), ridge_(ridge) {}
  [[nodiscard]] std::string name() const override { return "rbf"; }
  [[nodiscard]] vf::field::ScalarField reconstruct(
      const vf::sampling::SampleCloud& cloud,
      const vf::field::UniformGrid3& grid) const override;

 private:
  int k_;
  double ridge_;
};

}  // namespace vf::interp
