#pragma once
// Local ordinary kriging — the geostatistical interpolator, included as an
// extension beyond the paper's §III-B survey. For each grid point the k
// nearest samples form a local ordinary-kriging system under an exponential
// variogram whose range is tied to the local sample spacing; the Lagrange
// multiplier enforces unbiasedness. Produces smooth interpolations with
// exactness at sample locations, at a cost between Shepard and RBF.

#include "vf/interp/reconstructor.hpp"

namespace vf::interp {

class KrigingReconstructor final : public Reconstructor {
 public:
  /// `k`: local neighbourhood size. `range_scale`: variogram range as a
  /// multiple of the k-th neighbour distance. `nugget`: relative nugget
  /// (stabilises the system; 0 keeps exact interpolation).
  explicit KrigingReconstructor(int k = 12, double range_scale = 1.5,
                                double nugget = 1e-9)
      : k_(k), range_scale_(range_scale), nugget_(nugget) {}

  [[nodiscard]] std::string name() const override { return "kriging"; }
  [[nodiscard]] vf::field::ScalarField reconstruct(
      const vf::sampling::SampleCloud& cloud,
      const vf::field::UniformGrid3& grid) const override;

 private:
  int k_;
  double range_scale_;
  double nugget_;
};

}  // namespace vf::interp
