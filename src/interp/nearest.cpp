#include <stdexcept>

#include "vf/interp/methods.hpp"
#include "vf/spatial/kdtree.hpp"
#include "vf/util/parallel.hpp"

namespace vf::interp {

vf::field::ScalarField NearestNeighborReconstructor::reconstruct(
    const vf::sampling::SampleCloud& cloud,
    const vf::field::UniformGrid3& grid) const {
  if (cloud.size() == 0) {
    throw std::invalid_argument("nearest: empty sample cloud");
  }
  vf::spatial::KdTree tree(cloud.points());
  const auto& values = cloud.values();
  vf::field::ScalarField out(grid, "nearest");

  vf::util::parallel_for(0, grid.point_count(), [&](std::int64_t i) {
    out[i] = values[tree.nearest(grid.position(i))];
  });
  return out;
}

}  // namespace vf::interp
