#include <cmath>
#include <stdexcept>

#include "vf/interp/methods.hpp"
#include "vf/spatial/kdtree.hpp"

#include <omp.h>

namespace vf::interp {

vf::field::ScalarField ShepardReconstructor::reconstruct(
    const vf::sampling::SampleCloud& cloud,
    const vf::field::UniformGrid3& grid) const {
  if (cloud.size() == 0) {
    throw std::invalid_argument("shepard: empty sample cloud");
  }
  vf::spatial::KdTree tree(cloud.points());
  const auto& values = cloud.values();
  vf::field::ScalarField out(grid, "shepard");
  const std::int64_t n = grid.point_count();
  const int k = k_;

  // vf-par: per-thread-scratch — nbrs is thread-local; iteration i writes
  // only out[i]; tree/values are read-only.
#pragma omp parallel
  {
    std::vector<vf::spatial::Neighbor> nbrs;  // reused per thread
#pragma omp for schedule(static)
    for (std::int64_t i = 0; i < n; ++i) {
      tree.knn(grid.position(i), k, nbrs);
      // Franke-Nielson modified Shepard weights with support radius R just
      // beyond the k-th neighbour.
      double R = std::sqrt(nbrs.back().dist2) * 1.0000001;
      double wsum = 0.0, acc = 0.0;
      bool exact = false;
      for (const auto& nb : nbrs) {
        double d = std::sqrt(nb.dist2);
        if (d < 1e-12) {  // query coincides with a sample
          out[i] = values[nb.index];
          exact = true;
          break;
        }
        double w = (R - d) / (R * d);
        w *= w;
        wsum += w;
        acc += w * values[nb.index];
      }
      if (!exact) out[i] = wsum > 0.0 ? acc / wsum : values[nbrs[0].index];
    }
  }
  return out;
}

}  // namespace vf::interp
