#include <cmath>
#include <stdexcept>
#include <vector>

#include "vf/interp/methods.hpp"
#include "vf/spatial/kdtree.hpp"
#include "vf/util/parallel.hpp"

#include <omp.h>

namespace vf::interp {

vf::field::ScalarField NaturalNeighborReconstructor::reconstruct(
    const vf::sampling::SampleCloud& cloud,
    const vf::field::UniformGrid3& grid) const {
  if (cloud.size() == 0) {
    throw std::invalid_argument("natural: empty sample cloud");
  }
  vf::spatial::KdTree tree(cloud.points());
  const auto& values = cloud.values();
  const auto& d = grid.dims();
  const std::int64_t n = grid.point_count();

  // Pass 1: discrete Voronoi diagram of the samples on the target grid —
  // nearest sample id and distance for every voxel.
  std::vector<std::uint32_t> nn_id(static_cast<std::size_t>(n));
  std::vector<float> nn_dist(static_cast<std::size_t>(n));
  vf::util::parallel_for(0, n, [&](std::int64_t i) {
    auto nb = tree.knn(grid.position(i), 1);
    nn_id[static_cast<std::size_t>(i)] = nb[0].index;
    nn_dist[static_cast<std::size_t>(i)] =
        static_cast<float>(std::sqrt(nb[0].dist2));
  });

  // Pass 2: discrete Sibson scatter. Voxel u "would be stolen" by an
  // inserted query q iff |u - q| < |u - nn(u)|, so u contributes its
  // sample's value to every voxel strictly within nn_dist(u) of u.
  std::vector<double> acc(static_cast<std::size_t>(n), 0.0);
  std::vector<double> wgt(static_cast<std::size_t>(n), 0.0);
  const auto& h = grid.spacing();

  // vf-par: atomic-accumulate — the scatter into acc/wgt crosses voxel
  // ownership, so both increments are #pragma omp atomic below.
#pragma omp parallel for schedule(dynamic, 1)
  for (int ku = 0; ku < d.nz; ++ku) {
    for (int ju = 0; ju < d.ny; ++ju) {
      for (int iu = 0; iu < d.nx; ++iu) {
        std::int64_t u = grid.index(iu, ju, ku);
        double r = nn_dist[static_cast<std::size_t>(u)];
        double val = values[nn_id[static_cast<std::size_t>(u)]];
        int rj = static_cast<int>(r / h.y);
        int rk = static_cast<int>(r / h.z);
        double r2 = r * r;
        for (int kq = std::max(0, ku - rk); kq <= std::min(d.nz - 1, ku + rk);
             ++kq) {
          double dz = (kq - ku) * h.z;
          for (int jq = std::max(0, ju - rj);
               jq <= std::min(d.ny - 1, ju + rj); ++jq) {
            double dy = (jq - ju) * h.y;
            double dyz2 = dy * dy + dz * dz;
            if (dyz2 >= r2) continue;
            // widest |di| with di^2 h.x^2 + dyz2 < r2
            int di_max = static_cast<int>(std::sqrt(r2 - dyz2) / h.x);
            for (int iq = std::max(0, iu - di_max);
                 iq <= std::min(d.nx - 1, iu + di_max); ++iq) {
              double dx = (iq - iu) * h.x;
              if (dx * dx + dyz2 >= r2) continue;
              std::int64_t q = grid.index(iq, jq, kq);
#pragma omp atomic
              acc[static_cast<std::size_t>(q)] += val;
#pragma omp atomic
              wgt[static_cast<std::size_t>(q)] += 1.0;
            }
          }
        }
      }
    }
  }

  // Pass 3: normalise; voxels that received no contribution (isolated
  // regions with r_u = 0 neighbours) fall back to their nearest sample.
  vf::field::ScalarField out(grid, "natural");
  vf::util::parallel_for(0, n, [&](std::int64_t i) {
    auto ui = static_cast<std::size_t>(i);
    out[i] = wgt[ui] > 0.0 ? acc[ui] / wgt[ui] : values[nn_id[ui]];
  });
  return out;
}

}  // namespace vf::interp
