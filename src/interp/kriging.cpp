#include "vf/interp/kriging.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "vf/spatial/kdtree.hpp"

#include <omp.h>

namespace vf::interp {

namespace {

/// Solve the (k+1)x(k+1) symmetric kriging system in place with partial
/// pivoting; returns false on singularity.
bool solve(std::vector<double>& A, std::vector<double>& b, int n) {
  for (int col = 0; col < n; ++col) {
    int piv = col;
    double best = std::abs(A[static_cast<std::size_t>(col) * n + col]);
    for (int r = col + 1; r < n; ++r) {
      double v = std::abs(A[static_cast<std::size_t>(r) * n + col]);
      if (v > best) {
        best = v;
        piv = r;
      }
    }
    if (best < 1e-300) return false;
    if (piv != col) {
      for (int c = 0; c < n; ++c) {
        std::swap(A[static_cast<std::size_t>(col) * n + c],
                  A[static_cast<std::size_t>(piv) * n + c]);
      }
      std::swap(b[static_cast<std::size_t>(col)],
                b[static_cast<std::size_t>(piv)]);
    }
    double inv = 1.0 / A[static_cast<std::size_t>(col) * n + col];
    for (int r = col + 1; r < n; ++r) {
      double f = A[static_cast<std::size_t>(r) * n + col] * inv;
      if (f == 0.0) continue;
      for (int c = col; c < n; ++c) {
        A[static_cast<std::size_t>(r) * n + c] -=
            f * A[static_cast<std::size_t>(col) * n + c];
      }
      b[static_cast<std::size_t>(r)] -= f * b[static_cast<std::size_t>(col)];
    }
  }
  for (int r = n - 1; r >= 0; --r) {
    double acc = b[static_cast<std::size_t>(r)];
    for (int c = r + 1; c < n; ++c) {
      acc -= A[static_cast<std::size_t>(r) * n + c] *
             b[static_cast<std::size_t>(c)];
    }
    b[static_cast<std::size_t>(r)] = acc / A[static_cast<std::size_t>(r) * n + r];
  }
  return true;
}

}  // namespace

vf::field::ScalarField KrigingReconstructor::reconstruct(
    const vf::sampling::SampleCloud& cloud,
    const vf::field::UniformGrid3& grid) const {
  if (cloud.size() < 2) {
    throw std::invalid_argument("kriging: need at least 2 samples");
  }
  vf::spatial::KdTree tree(cloud.points());
  const auto& pts = cloud.points();
  const auto& values = cloud.values();
  vf::field::ScalarField out(grid, "kriging");
  const std::int64_t n = grid.point_count();
  const int k = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(k_), cloud.size()));
  const int sys = k + 1;  // + Lagrange multiplier row/column

  // vf-par: per-thread-scratch — nbrs/A/b are thread-local; iteration i
  // writes only out[i]; tree/values are read-only.
#pragma omp parallel
  {
    std::vector<vf::spatial::Neighbor> nbrs;
    std::vector<double> A(static_cast<std::size_t>(sys) * sys);
    std::vector<double> b(static_cast<std::size_t>(sys));
#pragma omp for schedule(dynamic, 4096)
    for (std::int64_t i = 0; i < n; ++i) {
      vf::field::Vec3 q = grid.position(i);
      tree.knn(q, k, nbrs);
      if (nbrs.front().dist2 < 1e-24) {
        out[i] = values[nbrs.front().index];
        continue;
      }
      // Exponential variogram gamma(h) = 1 - exp(-3h/range), range tied to
      // the local k-th neighbour distance.
      double range = range_scale_ * std::sqrt(nbrs.back().dist2);
      if (range <= 0.0) range = 1.0;
      auto gamma = [range](double h) {
        return 1.0 - std::exp(-3.0 * h / range);
      };

      for (int r = 0; r < k; ++r) {
        const auto& pr = pts[nbrs[static_cast<std::size_t>(r)].index];
        for (int c = 0; c < k; ++c) {
          const auto& pc = pts[nbrs[static_cast<std::size_t>(c)].index];
          double h = std::sqrt((pr - pc).norm2());
          A[static_cast<std::size_t>(r) * sys + c] =
              gamma(h) + (r == c ? nugget_ : 0.0);
        }
        A[static_cast<std::size_t>(r) * sys + k] = 1.0;  // unbiasedness
        A[static_cast<std::size_t>(k) * sys + r] = 1.0;
        b[static_cast<std::size_t>(r)] =
            gamma(std::sqrt(nbrs[static_cast<std::size_t>(r)].dist2));
      }
      A[static_cast<std::size_t>(k) * sys + k] = 0.0;
      b[static_cast<std::size_t>(k)] = 1.0;

      if (!solve(A, b, sys)) {
        out[i] = values[nbrs.front().index];
        continue;
      }
      double acc = 0.0;
      for (int r = 0; r < k; ++r) {
        acc += b[static_cast<std::size_t>(r)] *
               values[nbrs[static_cast<std::size_t>(r)].index];
      }
      out[i] = acc;
    }
  }
  return out;
}

}  // namespace vf::interp
