#include <cmath>
#include <stdexcept>
#include <vector>

#include "vf/interp/methods.hpp"
#include "vf/spatial/kdtree.hpp"

#include <omp.h>

namespace vf::interp {

namespace {

/// Solve the dense symmetric system A x = b in place (Gaussian elimination
/// with partial pivoting). A is k x k, tiny (k <= ~32), so no blocking.
bool solve_dense(std::vector<double>& A, std::vector<double>& b, int k) {
  for (int col = 0; col < k; ++col) {
    // pivot
    int piv = col;
    double best = std::abs(A[static_cast<std::size_t>(col) * k + col]);
    for (int r = col + 1; r < k; ++r) {
      double v = std::abs(A[static_cast<std::size_t>(r) * k + col]);
      if (v > best) {
        best = v;
        piv = r;
      }
    }
    if (best < 1e-300) return false;
    if (piv != col) {
      for (int c = 0; c < k; ++c) {
        std::swap(A[static_cast<std::size_t>(col) * k + c],
                  A[static_cast<std::size_t>(piv) * k + c]);
      }
      std::swap(b[static_cast<std::size_t>(col)], b[static_cast<std::size_t>(piv)]);
    }
    double inv = 1.0 / A[static_cast<std::size_t>(col) * k + col];
    for (int r = col + 1; r < k; ++r) {
      double f = A[static_cast<std::size_t>(r) * k + col] * inv;
      if (f == 0.0) continue;
      for (int c = col; c < k; ++c) {
        A[static_cast<std::size_t>(r) * k + c] -=
            f * A[static_cast<std::size_t>(col) * k + c];
      }
      b[static_cast<std::size_t>(r)] -= f * b[static_cast<std::size_t>(col)];
    }
  }
  for (int r = k - 1; r >= 0; --r) {
    double acc = b[static_cast<std::size_t>(r)];
    for (int c = r + 1; c < k; ++c) {
      acc -= A[static_cast<std::size_t>(r) * k + c] * b[static_cast<std::size_t>(c)];
    }
    b[static_cast<std::size_t>(r)] = acc / A[static_cast<std::size_t>(r) * k + r];
  }
  return true;
}

}  // namespace

vf::field::ScalarField RbfReconstructor::reconstruct(
    const vf::sampling::SampleCloud& cloud,
    const vf::field::UniformGrid3& grid) const {
  if (cloud.size() == 0) {
    throw std::invalid_argument("rbf: empty sample cloud");
  }
  vf::spatial::KdTree tree(cloud.points());
  const auto& pts = cloud.points();
  const auto& values = cloud.values();
  vf::field::ScalarField out(grid, "rbf");
  const std::int64_t n = grid.point_count();
  const int k = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(k_), cloud.size()));

  // vf-par: per-thread-scratch — nbrs/A/b are thread-local; iteration i
  // writes only out[i]; tree/values are read-only.
#pragma omp parallel
  {
    std::vector<vf::spatial::Neighbor> nbrs;
    std::vector<double> A(static_cast<std::size_t>(k) * k);
    std::vector<double> b(static_cast<std::size_t>(k));
#pragma omp for schedule(dynamic, 4096)
    for (std::int64_t i = 0; i < n; ++i) {
      vf::field::Vec3 q = grid.position(i);
      tree.knn(q, k, nbrs);
      if (nbrs.front().dist2 < 1e-24) {  // exact hit on a sample
        out[i] = values[nbrs.front().index];
        continue;
      }
      // Gaussian kernel with shape parameter tied to the local spacing.
      double scale2 = nbrs.back().dist2;
      if (scale2 <= 0.0) scale2 = 1.0;
      auto kernel = [scale2](double d2) { return std::exp(-3.0 * d2 / scale2); };

      for (int r = 0; r < k; ++r) {
        const auto& pr = pts[nbrs[static_cast<std::size_t>(r)].index];
        for (int c = 0; c < k; ++c) {
          const auto& pc = pts[nbrs[static_cast<std::size_t>(c)].index];
          double dx = pr.x - pc.x, dy = pr.y - pc.y, dz = pr.z - pc.z;
          A[static_cast<std::size_t>(r) * k + c] =
              kernel(dx * dx + dy * dy + dz * dz) + (r == c ? ridge_ : 0.0);
        }
        b[static_cast<std::size_t>(r)] =
            values[nbrs[static_cast<std::size_t>(r)].index];
      }
      if (!solve_dense(A, b, k)) {
        out[i] = values[nbrs.front().index];
        continue;
      }
      double acc = 0.0;
      for (int r = 0; r < k; ++r) {
        acc += b[static_cast<std::size_t>(r)] *
               kernel(nbrs[static_cast<std::size_t>(r)].dist2);
      }
      out[i] = acc;
    }
  }
  return out;
}

}  // namespace vf::interp
