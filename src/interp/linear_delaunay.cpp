#include <stdexcept>

#include "vf/geometry/delaunay.hpp"
#include "vf/interp/methods.hpp"
#include "vf/spatial/kdtree.hpp"

#include <omp.h>

namespace vf::interp {

namespace {

/// Interpolate one grid point given its located tetrahedron; out-of-hull
/// queries fall back to the nearest sample value (the paper fills hull
/// exterior the same way).
double interpolate_at(const vf::geometry::LocateResult& loc,
                      const std::vector<double>& values,
                      const vf::spatial::KdTree& tree,
                      const vf::field::Vec3& q) {
  if (loc.tet >= 0 && loc.in_hull) {
    double v = 0.0;
    for (int j = 0; j < 4; ++j) {
      v += loc.weights[j] * values[loc.points[j]];
    }
    return v;
  }
  return values[tree.nearest(q)];
}

}  // namespace

vf::field::ScalarField LinearDelaunayReconstructor::reconstruct(
    const vf::sampling::SampleCloud& cloud,
    const vf::field::UniformGrid3& grid) const {
  if (cloud.size() < 4) {
    throw std::invalid_argument("linear: need at least 4 samples");
  }
  vf::geometry::Delaunay3 dt(cloud.points());
  vf::spatial::KdTree tree(cloud.points());  // hull-exterior fallback
  const auto& values = cloud.values();
  vf::field::ScalarField out(grid, "linear");
  const std::int64_t n = grid.point_count();

  switch (mode_) {
    case Mode::Naive: {
      // Cold point location per query: no walk hint, mimicking the paper's
      // naive sequential implementation whose cost grows with sample count.
      for (std::int64_t i = 0; i < n; ++i) {
        vf::field::Vec3 q = grid.position(i);
        auto loc = dt.locate(q, /*hint=*/-1);
        out[i] = interpolate_at(loc, values, tree, q);
      }
      break;
    }
    case Mode::Sequential: {
      // Single thread but with walk hints along the x-fastest scan order.
      std::int64_t hint = -1;
      for (std::int64_t i = 0; i < n; ++i) {
        vf::field::Vec3 q = grid.position(i);
        auto loc = dt.locate(q, hint);
        if (loc.tet >= 0) hint = loc.tet;
        out[i] = interpolate_at(loc, values, tree, q);
      }
      break;
    }
    case Mode::Parallel: {
      // OpenMP over z-slabs; each thread keeps its own walk hint, which
      // stays coherent because consecutive queries are grid neighbours.
      // vf-par: per-thread-scratch — hint is thread-local; each z-slab
      // writes a disjoint out.at(i,j,k) range; dt/tree are read-only.
#pragma omp parallel
      {
        std::int64_t hint = -1;
#pragma omp for schedule(dynamic, 1)
        for (int k = 0; k < grid.dims().nz; ++k) {
          for (int j = 0; j < grid.dims().ny; ++j) {
            for (int i = 0; i < grid.dims().nx; ++i) {
              vf::field::Vec3 q = grid.position(i, j, k);
              auto loc = dt.locate(q, hint);
              if (loc.tet >= 0) hint = loc.tet;
              out.at(i, j, k) = interpolate_at(loc, values, tree, q);
            }
          }
        }
      }
      break;
    }
  }
  return out;
}

}  // namespace vf::interp
