#include "vf/interp/reconstructor.hpp"

#include <stdexcept>
#include <utility>

#include "vf/interp/kriging.hpp"
#include "vf/interp/methods.hpp"
#include "vf/obs/obs.hpp"

namespace vf::interp {

namespace {

std::unique_ptr<Reconstructor> make_raw(const std::string& name) {
  if (name == "nearest") return std::make_unique<NearestNeighborReconstructor>();
  if (name == "shepard") return std::make_unique<ShepardReconstructor>();
  if (name == "linear") {
    return std::make_unique<LinearDelaunayReconstructor>(
        LinearDelaunayReconstructor::Mode::Parallel);
  }
  if (name == "linear_seq") {
    return std::make_unique<LinearDelaunayReconstructor>(
        LinearDelaunayReconstructor::Mode::Sequential);
  }
  if (name == "linear_naive") {
    return std::make_unique<LinearDelaunayReconstructor>(
        LinearDelaunayReconstructor::Mode::Naive);
  }
  if (name == "natural") return std::make_unique<NaturalNeighborReconstructor>();
  if (name == "rbf") return std::make_unique<RbfReconstructor>();
  if (name == "kriging") return std::make_unique<KrigingReconstructor>();
  throw std::invalid_argument("make_reconstructor: unknown method '" + name +
                              "'");
}

/// Observability decorator around any classical method: one span plus a
/// call counter and a latency histogram per method, so the six method
/// classes stay untouched. Metric names are dynamic (per method), so this
/// calls the registry directly instead of using the static-caching macros.
class InstrumentedReconstructor final : public Reconstructor {
 public:
  explicit InstrumentedReconstructor(std::unique_ptr<Reconstructor> inner)
      : inner_(std::move(inner)),
        span_name_("interp/" + inner_->name()),
        counter_name_("interp." + inner_->name() + ".calls"),
        hist_name_("interp." + inner_->name() + ".seconds") {}

  [[nodiscard]] std::string name() const override { return inner_->name(); }

  [[nodiscard]] vf::field::ScalarField reconstruct(
      const vf::sampling::SampleCloud& cloud,
      const vf::field::UniformGrid3& grid) const override {
#if VF_OBS_ENABLED
    const vf::obs::Span span(span_name_.c_str());
    const vf::obs::ScopedHistTimer timer(hist_name_.c_str());
    if (vf::obs::enabled()) vf::obs::counter(counter_name_).add(1);
#endif
    return inner_->reconstruct(cloud, grid);
  }

 private:
  std::unique_ptr<Reconstructor> inner_;
  std::string span_name_;
  std::string counter_name_;
  std::string hist_name_;
};

}  // namespace

std::unique_ptr<Reconstructor> make_reconstructor(const std::string& name) {
  return std::make_unique<InstrumentedReconstructor>(make_raw(name));
}

std::vector<std::string> reconstructor_names() {
  return {"linear", "natural", "shepard", "nearest", "rbf", "kriging"};
}

}  // namespace vf::interp
