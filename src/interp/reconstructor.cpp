#include "vf/interp/reconstructor.hpp"

#include <stdexcept>
#include <utility>

#include "vf/interp/kriging.hpp"
#include "vf/interp/methods.hpp"
#include "vf/obs/obs.hpp"

namespace vf::interp {

namespace {

std::unique_ptr<Reconstructor> make_raw(Method method) {
  switch (method) {
    case Method::Nearest:
      return std::make_unique<NearestNeighborReconstructor>();
    case Method::Shepard:
      return std::make_unique<ShepardReconstructor>();
    case Method::Linear:
      return std::make_unique<LinearDelaunayReconstructor>(
          LinearDelaunayReconstructor::Mode::Parallel);
    case Method::LinearSeq:
      return std::make_unique<LinearDelaunayReconstructor>(
          LinearDelaunayReconstructor::Mode::Sequential);
    case Method::LinearNaive:
      return std::make_unique<LinearDelaunayReconstructor>(
          LinearDelaunayReconstructor::Mode::Naive);
    case Method::Natural:
      return std::make_unique<NaturalNeighborReconstructor>();
    case Method::Rbf:
      return std::make_unique<RbfReconstructor>();
    case Method::Kriging:
      return std::make_unique<KrigingReconstructor>();
  }
  throw std::invalid_argument("make_interpolator: bad Method enum value");
}

/// Observability decorator around any classical method: one span plus a
/// call counter and a latency histogram per method, so the six method
/// classes stay untouched. Metric names are dynamic (per method), so this
/// calls the registry directly instead of using the static-caching macros.
class InstrumentedReconstructor final : public Reconstructor {
 public:
  explicit InstrumentedReconstructor(std::unique_ptr<Reconstructor> inner)
      : inner_(std::move(inner)),
        span_name_("interp/" + inner_->name()),
        counter_name_("interp." + inner_->name() + ".calls"),
        hist_name_("interp." + inner_->name() + ".seconds") {}

  [[nodiscard]] std::string name() const override { return inner_->name(); }

  [[nodiscard]] vf::field::ScalarField reconstruct(
      const vf::sampling::SampleCloud& cloud,
      const vf::field::UniformGrid3& grid) const override {
#if VF_OBS_ENABLED
    const vf::obs::Span span(span_name_.c_str());
    const vf::obs::ScopedHistTimer timer(hist_name_.c_str());
    if (vf::obs::enabled()) vf::obs::counter(counter_name_).add(1);
#endif
    return inner_->reconstruct(cloud, grid);
  }

 private:
  std::unique_ptr<Reconstructor> inner_;
  std::string span_name_;
  std::string counter_name_;
  std::string hist_name_;
};

}  // namespace

const char* to_string(Method m) {
  switch (m) {
    case Method::Nearest: return "nearest";
    case Method::Shepard: return "shepard";
    case Method::Linear: return "linear";
    case Method::LinearSeq: return "linear_seq";
    case Method::LinearNaive: return "linear_naive";
    case Method::Natural: return "natural";
    case Method::Rbf: return "rbf";
    case Method::Kriging: return "kriging";
  }
  return "unknown";
}

Method method_from_name(const std::string& name) {
  for (Method m : {Method::Nearest, Method::Shepard, Method::Linear,
                   Method::LinearSeq, Method::LinearNaive, Method::Natural,
                   Method::Rbf, Method::Kriging}) {
    if (name == to_string(m)) return m;
  }
  throw std::invalid_argument("method_from_name: unknown method '" + name +
                              "'");
}

std::unique_ptr<Reconstructor> make_interpolator(Method method) {
  return std::make_unique<InstrumentedReconstructor>(make_raw(method));
}

std::unique_ptr<Reconstructor> make_reconstructor(const std::string& name) {
  return make_interpolator(method_from_name(name));
}

std::vector<std::string> reconstructor_names() {
  return {"linear", "natural", "shepard", "nearest", "rbf", "kriging"};
}

}  // namespace vf::interp
