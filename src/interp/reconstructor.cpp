#include "vf/interp/reconstructor.hpp"

#include <stdexcept>

#include "vf/interp/kriging.hpp"
#include "vf/interp/methods.hpp"

namespace vf::interp {

std::unique_ptr<Reconstructor> make_reconstructor(const std::string& name) {
  if (name == "nearest") return std::make_unique<NearestNeighborReconstructor>();
  if (name == "shepard") return std::make_unique<ShepardReconstructor>();
  if (name == "linear") {
    return std::make_unique<LinearDelaunayReconstructor>(
        LinearDelaunayReconstructor::Mode::Parallel);
  }
  if (name == "linear_seq") {
    return std::make_unique<LinearDelaunayReconstructor>(
        LinearDelaunayReconstructor::Mode::Sequential);
  }
  if (name == "linear_naive") {
    return std::make_unique<LinearDelaunayReconstructor>(
        LinearDelaunayReconstructor::Mode::Naive);
  }
  if (name == "natural") return std::make_unique<NaturalNeighborReconstructor>();
  if (name == "rbf") return std::make_unique<RbfReconstructor>();
  if (name == "kriging") return std::make_unique<KrigingReconstructor>();
  throw std::invalid_argument("make_reconstructor: unknown method '" + name +
                              "'");
}

std::vector<std::string> reconstructor_names() {
  return {"linear", "natural", "shepard", "nearest", "rbf", "kriging"};
}

}  // namespace vf::interp
