#include "vf/sampling/temporal_sampler.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "vf/util/rng.hpp"

namespace vf::sampling {

void TemporalDeltaSampler::set_previous(const vf::field::ScalarField& previous) {
  previous_ = previous;
}

SampleCloud TemporalDeltaSampler::sample(const vf::field::ScalarField& field,
                                         double fraction,
                                         std::uint64_t seed) const {
  const std::int64_t n = field.size();
  const std::int64_t budget = budget_for(field, fraction);
  vf::util::Rng rng(seed, 0x74656d70);

  if (!previous_ || previous_->size() != n) {
    // No (compatible) history: uniform random fallback.
    return RandomSampler().sample(field, fraction, seed);
  }

  // Normalised |change since the previous timestep|.
  std::vector<double> delta(static_cast<std::size_t>(n));
  double dmax = 1e-300;
  for (std::int64_t i = 0; i < n; ++i) {
    double d = std::abs(field[i] - (*previous_)[i]);
    delta[static_cast<std::size_t>(i)] = d;
    dmax = std::max(dmax, d);
  }
  for (auto& d : delta) d /= dmax;

  // Split the budget: a uniform share for coverage, the rest drawn by
  // weighted sampling without replacement on exp(w * delta).
  auto uniform_budget =
      static_cast<std::int64_t>(opts_.uniform_share * static_cast<double>(budget));
  std::int64_t delta_budget = budget - uniform_budget;

  std::vector<std::int64_t> kept;
  kept.reserve(static_cast<std::size_t>(budget));

  // Weighted draw (Efraimidis-Spirakis keys, top delta_budget).
  std::vector<std::pair<double, std::int64_t>> keys;
  keys.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    double w = std::exp(opts_.delta_weight * delta[static_cast<std::size_t>(i)]);
    double u = std::max(rng.uniform(), 1e-300);
    keys.emplace_back(std::pow(u, 1.0 / w), i);
  }
  if (delta_budget > 0) {
    std::nth_element(keys.begin(), keys.begin() + (delta_budget - 1),
                     keys.end(),
                     [](const auto& a, const auto& b) { return a.first > b.first; });
    for (std::int64_t i = 0; i < delta_budget; ++i) {
      kept.push_back(keys[static_cast<std::size_t>(i)].second);
    }
  }

  // Uniform top-up from the remaining points.
  if (uniform_budget > 0) {
    std::vector<bool> taken(static_cast<std::size_t>(n), false);
    for (std::int64_t idx : kept) taken[static_cast<std::size_t>(idx)] = true;
    std::vector<std::int64_t> rest;
    rest.reserve(static_cast<std::size_t>(n - delta_budget));
    for (std::int64_t i = 0; i < n; ++i) {
      if (!taken[static_cast<std::size_t>(i)]) rest.push_back(i);
    }
    uniform_budget = std::min<std::int64_t>(
        uniform_budget, static_cast<std::int64_t>(rest.size()));
    for (std::int64_t i = 0; i < uniform_budget; ++i) {
      auto j = static_cast<std::size_t>(i) +
               rng.below(static_cast<std::uint32_t>(rest.size() - i));
      std::swap(rest[static_cast<std::size_t>(i)], rest[j]);
      kept.push_back(rest[static_cast<std::size_t>(i)]);
    }
  }
  return SampleCloud(field, std::move(kept));
}

}  // namespace vf::sampling
