#include <algorithm>
#include <cmath>
#include <numeric>

#include "vf/field/gradient.hpp"
#include "vf/sampling/samplers.hpp"
#include "vf/util/parallel.hpp"
#include "vf/util/rng.hpp"

namespace vf::sampling {

namespace {

/// Find the per-bin quota T (possibly fractional) such that
/// sum_b min(count_b, T) == budget. Bins with count <= T keep everything.
double solve_bin_quota(const std::vector<std::int64_t>& counts,
                       std::int64_t budget) {
  // Sort counts ascending and walk: after the s smallest bins are fully
  // kept, the remaining (B - prefix) budget is split evenly among the rest.
  std::vector<std::int64_t> sorted = counts;
  std::sort(sorted.begin(), sorted.end());
  std::int64_t prefix = 0;
  const auto nbins = static_cast<std::int64_t>(sorted.size());
  for (std::int64_t s = 0; s < nbins; ++s) {
    std::int64_t rest_bins = nbins - s;
    double t = static_cast<double>(budget - prefix) /
               static_cast<double>(rest_bins);
    if (t <= static_cast<double>(sorted[static_cast<std::size_t>(s)])) {
      return t;
    }
    prefix += sorted[static_cast<std::size_t>(s)];
  }
  // Budget >= total points: keep everything.
  return sorted.empty() ? 0.0 : static_cast<double>(sorted.back());
}

}  // namespace

SampleCloud ImportanceSampler::sample(const vf::field::ScalarField& field,
                                      double fraction,
                                      std::uint64_t seed) const {
  const std::int64_t n = field.size();
  const std::int64_t budget = budget_for(field, fraction);
  vf::util::Rng rng(seed, 0x696d706f);

  // --- Criterion 1: value-histogram rarity --------------------------------
  auto stats = field.stats();
  const int nbins = std::max(opts_.histogram_bins, 1);
  const double lo = stats.min;
  const double range = std::max(stats.max - stats.min, 1e-300);

  auto bin_of = [&](double v) {
    int b = static_cast<int>((v - lo) / range * nbins);
    return std::clamp(b, 0, nbins - 1);
  };

  std::vector<std::int64_t> counts(static_cast<std::size_t>(nbins), 0);
  for (std::int64_t i = 0; i < n; ++i) ++counts[static_cast<std::size_t>(bin_of(field[i]))];

  const double quota = solve_bin_quota(counts, budget);

  // Group point indices by bin (counting sort layout).
  std::vector<std::int64_t> offsets(static_cast<std::size_t>(nbins) + 1, 0);
  for (int b = 0; b < nbins; ++b) {
    offsets[static_cast<std::size_t>(b) + 1] =
        offsets[static_cast<std::size_t>(b)] + counts[static_cast<std::size_t>(b)];
  }
  std::vector<std::int64_t> by_bin(static_cast<std::size_t>(n));
  {
    std::vector<std::int64_t> cursor(offsets.begin(), offsets.end() - 1);
    for (std::int64_t i = 0; i < n; ++i) {
      auto b = static_cast<std::size_t>(bin_of(field[i]));
      by_bin[static_cast<std::size_t>(cursor[b]++)] = i;
    }
  }

  // --- Criterion 2: gradient-magnitude weighting --------------------------
  // Only needed inside bins that get subsampled.
  std::vector<double> gmag;
  if (opts_.gradient_weight > 0.0) {
    auto grad = vf::field::compute_gradient(field);
    gmag.resize(static_cast<std::size_t>(n));
    double gmax = 1e-300;
    for (std::int64_t i = 0; i < n; ++i) {
      double g = std::sqrt(grad.dx[i] * grad.dx[i] + grad.dy[i] * grad.dy[i] +
                           grad.dz[i] * grad.dz[i]);
      gmag[static_cast<std::size_t>(i)] = g;
      gmax = std::max(gmax, g);
    }
    for (auto& g : gmag) g /= gmax;  // normalise to [0,1]
  }

  // --- Draw ---------------------------------------------------------------
  std::vector<std::int64_t> kept;
  kept.reserve(static_cast<std::size_t>(budget) + static_cast<std::size_t>(nbins));
  double carry = 0.0;  // fractional quotas accumulate across bins
  for (int b = 0; b < nbins; ++b) {
    auto begin = static_cast<std::size_t>(offsets[static_cast<std::size_t>(b)]);
    auto end = static_cast<std::size_t>(offsets[static_cast<std::size_t>(b) + 1]);
    auto avail = static_cast<std::int64_t>(end - begin);
    if (avail == 0) continue;

    double want_f = std::min(static_cast<double>(avail), quota) + carry;
    auto want = static_cast<std::int64_t>(want_f);
    carry = want_f - static_cast<double>(want);
    want = std::min(want, avail);
    if (want <= 0) continue;

    if (want >= avail) {
      // Rare bin: keep every point.
      for (std::size_t i = begin; i < end; ++i) kept.push_back(by_bin[i]);
      continue;
    }

    if (gmag.empty()) {
      // Uniform subsample within the bin (partial Fisher-Yates).
      for (std::int64_t i = 0; i < want; ++i) {
        auto j = static_cast<std::size_t>(i) +
                 rng.below(static_cast<std::uint32_t>(avail - i));
        std::swap(by_bin[begin + static_cast<std::size_t>(i)], by_bin[begin + j]);
        kept.push_back(by_bin[begin + static_cast<std::size_t>(i)]);
      }
    } else {
      // Weighted sampling without replacement (Efraimidis-Spirakis):
      // key = u^(1/w); keep the `want` largest keys. Weight grows with
      // normalised gradient magnitude so edges/features win the draw.
      std::vector<std::pair<double, std::int64_t>> keys;
      keys.reserve(static_cast<std::size_t>(avail));
      for (std::size_t i = begin; i < end; ++i) {
        std::int64_t pt = by_bin[i];
        double w = std::exp(opts_.gradient_weight *
                            gmag[static_cast<std::size_t>(pt)]);
        double u = std::max(rng.uniform(), 1e-300);
        keys.emplace_back(std::pow(u, 1.0 / w), pt);
      }
      std::nth_element(
          keys.begin(), keys.begin() + (want - 1), keys.end(),
          [](const auto& ka, const auto& kb) { return ka.first > kb.first; });
      for (std::int64_t i = 0; i < want; ++i) {
        kept.push_back(keys[static_cast<std::size_t>(i)].second);
      }
    }
  }
  return SampleCloud(field, std::move(kept));
}

}  // namespace vf::sampling
