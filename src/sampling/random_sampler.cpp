#include <numeric>
#include <stdexcept>

#include "vf/sampling/samplers.hpp"
#include "vf/util/rng.hpp"

namespace vf::sampling {

std::int64_t budget_for(const vf::field::ScalarField& field, double fraction) {
  if (fraction <= 0.0 || fraction > 1.0) {
    throw std::invalid_argument("sampler: fraction must be in (0, 1]");
  }
  auto budget =
      static_cast<std::int64_t>(fraction * static_cast<double>(field.size()));
  return std::max<std::int64_t>(budget, 1);
}

SampleCloud RandomSampler::sample(const vf::field::ScalarField& field,
                                  double fraction, std::uint64_t seed) const {
  const std::int64_t n = field.size();
  const std::int64_t budget = budget_for(field, fraction);
  vf::util::Rng rng(seed, 0x72616e64);

  // Partial Fisher-Yates: pick `budget` distinct indices uniformly.
  std::vector<std::int64_t> idx(static_cast<std::size_t>(n));
  std::iota(idx.begin(), idx.end(), 0);
  std::vector<std::int64_t> kept;
  kept.reserve(static_cast<std::size_t>(budget));
  for (std::int64_t i = 0; i < budget; ++i) {
    auto j = i + static_cast<std::int64_t>(
                     rng.below(static_cast<std::uint32_t>(n - i)));
    std::swap(idx[static_cast<std::size_t>(i)], idx[static_cast<std::size_t>(j)]);
    kept.push_back(idx[static_cast<std::size_t>(i)]);
  }
  return SampleCloud(field, std::move(kept));
}

}  // namespace vf::sampling
