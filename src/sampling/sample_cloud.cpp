#include "vf/sampling/sample_cloud.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <unordered_set>

#include "vf/field/vtk_io.hpp"

namespace vf::sampling {

SampleCloud::SampleCloud(const vf::field::ScalarField& source,
                         std::vector<std::int64_t> kept_indices)
    : kept_indices_(std::move(kept_indices)),
      grid_(source.grid()),
      has_grid_(true) {
  std::sort(kept_indices_.begin(), kept_indices_.end());
  kept_indices_.erase(
      std::unique(kept_indices_.begin(), kept_indices_.end()),
      kept_indices_.end());
  points_.reserve(kept_indices_.size());
  values_.reserve(kept_indices_.size());
  for (std::int64_t idx : kept_indices_) {
    if (idx < 0 || idx >= source.size()) {
      throw std::out_of_range("SampleCloud: kept index out of range");
    }
    points_.push_back(grid_.position(idx));
    values_.push_back(source[idx]);
  }
}

SampleCloud::SampleCloud(std::vector<vf::field::Vec3> points,
                         std::vector<double> values)
    : points_(std::move(points)), values_(std::move(values)) {
  if (points_.size() != values_.size()) {
    throw std::invalid_argument("SampleCloud: point/value count mismatch");
  }
}

std::vector<std::int64_t> SampleCloud::void_indices() const {
  if (!has_grid_) return {};
  std::vector<std::int64_t> voids;
  const std::int64_t n = grid_.point_count();
  voids.reserve(static_cast<std::size_t>(n) - kept_indices_.size());
  std::size_t k = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    if (k < kept_indices_.size() && kept_indices_[k] == i) {
      ++k;
    } else {
      voids.push_back(i);
    }
  }
  return voids;
}

namespace {

/// Exact bit-pattern identity of a position, for duplicate detection.
/// Collisions in the hash are resolved by the set's equality compare, so
/// distinct positions are never merged.
struct PointKey {
  std::uint64_t x, y, z;
  bool operator==(const PointKey&) const = default;
};

struct PointKeyHash {
  std::size_t operator()(const PointKey& k) const {
    std::uint64_t h = k.x * 0x9e3779b97f4a7c15ULL;
    h ^= k.y + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    h ^= k.z + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return static_cast<std::size_t>(h);
  }
};

PointKey key_of(const vf::field::Vec3& p) {
  PointKey k;
  std::memcpy(&k.x, &p.x, sizeof k.x);
  std::memcpy(&k.y, &p.y, sizeof k.y);
  std::memcpy(&k.z, &p.z, sizeof k.z);
  return k;
}

}  // namespace

SampleCloud SampleCloud::scrubbed(std::size_t& dropped_nonfinite,
                                  std::size_t& dropped_duplicates) const {
  dropped_nonfinite = 0;
  dropped_duplicates = 0;
  std::vector<char> keep(points_.size(), 1);
  std::unordered_set<PointKey, PointKeyHash> seen;
  seen.reserve(points_.size());
  for (std::size_t i = 0; i < points_.size(); ++i) {
    const auto& p = points_[i];
    if (!std::isfinite(values_[i]) || !std::isfinite(p.x) ||
        !std::isfinite(p.y) || !std::isfinite(p.z)) {
      keep[i] = 0;
      ++dropped_nonfinite;
    } else if (!seen.insert(key_of(p)).second) {
      keep[i] = 0;
      ++dropped_duplicates;
    }
  }
  if (dropped_nonfinite == 0 && dropped_duplicates == 0) return *this;

  SampleCloud out;
  out.grid_ = grid_;
  out.has_grid_ = has_grid_;
  const std::size_t survivors =
      points_.size() - dropped_nonfinite - dropped_duplicates;
  out.points_.reserve(survivors);
  out.values_.reserve(survivors);
  if (has_grid_) out.kept_indices_.reserve(survivors);
  for (std::size_t i = 0; i < points_.size(); ++i) {
    if (!keep[i]) continue;
    out.points_.push_back(points_[i]);
    out.values_.push_back(values_[i]);
    if (has_grid_) out.kept_indices_.push_back(kept_indices_[i]);
  }
  return out;
}

double SampleCloud::sampling_fraction() const {
  if (!has_grid_ || grid_.point_count() == 0) return 0.0;
  return static_cast<double>(kept_indices_.size()) /
         static_cast<double>(grid_.point_count());
}

void SampleCloud::save_vtp(const std::string& path,
                           const std::string& name) const {
  vf::field::write_vtp(points_, values_, name, path);
}

SampleCloud SampleCloud::load_vtp(const std::string& path) {
  auto pd = vf::field::read_vtp(path);
  return SampleCloud(std::move(pd.points), std::move(pd.values));
}

}  // namespace vf::sampling
