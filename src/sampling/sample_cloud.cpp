#include "vf/sampling/sample_cloud.hpp"

#include <algorithm>
#include <stdexcept>

#include "vf/field/vtk_io.hpp"

namespace vf::sampling {

SampleCloud::SampleCloud(const vf::field::ScalarField& source,
                         std::vector<std::int64_t> kept_indices)
    : kept_indices_(std::move(kept_indices)),
      grid_(source.grid()),
      has_grid_(true) {
  std::sort(kept_indices_.begin(), kept_indices_.end());
  kept_indices_.erase(
      std::unique(kept_indices_.begin(), kept_indices_.end()),
      kept_indices_.end());
  points_.reserve(kept_indices_.size());
  values_.reserve(kept_indices_.size());
  for (std::int64_t idx : kept_indices_) {
    if (idx < 0 || idx >= source.size()) {
      throw std::out_of_range("SampleCloud: kept index out of range");
    }
    points_.push_back(grid_.position(idx));
    values_.push_back(source[idx]);
  }
}

SampleCloud::SampleCloud(std::vector<vf::field::Vec3> points,
                         std::vector<double> values)
    : points_(std::move(points)), values_(std::move(values)) {
  if (points_.size() != values_.size()) {
    throw std::invalid_argument("SampleCloud: point/value count mismatch");
  }
}

std::vector<std::int64_t> SampleCloud::void_indices() const {
  if (!has_grid_) return {};
  std::vector<std::int64_t> voids;
  const std::int64_t n = grid_.point_count();
  voids.reserve(static_cast<std::size_t>(n) - kept_indices_.size());
  std::size_t k = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    if (k < kept_indices_.size() && kept_indices_[k] == i) {
      ++k;
    } else {
      voids.push_back(i);
    }
  }
  return voids;
}

double SampleCloud::sampling_fraction() const {
  if (!has_grid_ || grid_.point_count() == 0) return 0.0;
  return static_cast<double>(kept_indices_.size()) /
         static_cast<double>(grid_.point_count());
}

void SampleCloud::save_vtp(const std::string& path,
                           const std::string& name) const {
  vf::field::write_vtp(points_, values_, name, path);
}

SampleCloud SampleCloud::load_vtp(const std::string& path) {
  auto pd = vf::field::read_vtp(path);
  return SampleCloud(std::move(pd.points), std::move(pd.values));
}

}  // namespace vf::sampling
