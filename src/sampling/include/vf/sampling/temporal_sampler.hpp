#pragma once
// Temporal-delta importance sampling.
//
// An in-situ extension beyond the paper's per-timestep sampling: when the
// previous timestep is available, budget is steered toward the grid points
// whose values changed the most since then — the regions a temporal
// reconstruction pipeline is least able to carry forward. Importance is
// |delta| blended with the spatial gradient criterion; selection uses the
// same weighted-without-replacement draw as the Biswas-style sampler.

#include <optional>

#include "vf/sampling/samplers.hpp"

namespace vf::sampling {

class TemporalDeltaSampler final : public Sampler {
 public:
  struct Options {
    /// Exponential weight applied to the normalised |value change|.
    double delta_weight = 3.0;
    /// Fraction of the budget reserved for uniform coverage so static
    /// regions are never starved.
    double uniform_share = 0.25;
  };

  TemporalDeltaSampler() : opts_() {}
  explicit TemporalDeltaSampler(Options opts) : opts_(opts) {}

  [[nodiscard]] std::string name() const override { return "temporal_delta"; }

  /// Provide the previous timestep; until set (or after reset), sampling
  /// falls back to uniform random.
  void set_previous(const vf::field::ScalarField& previous);
  void reset() { previous_.reset(); }
  [[nodiscard]] bool has_previous() const { return previous_.has_value(); }

  [[nodiscard]] SampleCloud sample(const vf::field::ScalarField& field,
                                   double fraction,
                                   std::uint64_t seed) const override;

 private:
  Options opts_;
  std::optional<vf::field::ScalarField> previous_;
};

}  // namespace vf::sampling
