#pragma once
// The unstructured point cloud a sampler emits.
//
// This is the paper's .vtp payload: positions + scalar values for the kept
// grid points. We additionally carry the source grid and the kept linear
// indices so void locations (the rejected grid points, §III-D) can be
// enumerated without re-deriving them, and the cloud can round-trip to disk.

#include <cstdint>
#include <string>
#include <vector>

#include "vf/field/scalar_field.hpp"

namespace vf::sampling {

class SampleCloud {
 public:
  SampleCloud() = default;

  /// Build from a field and the linear indices of the kept grid points.
  /// Indices are sorted and deduplicated.
  SampleCloud(const vf::field::ScalarField& source,
              std::vector<std::int64_t> kept_indices);

  /// Build from raw points/values without grid association (e.g. read from
  /// a .vtp produced elsewhere).
  SampleCloud(std::vector<vf::field::Vec3> points, std::vector<double> values);

  [[nodiscard]] std::size_t size() const { return points_.size(); }
  [[nodiscard]] const std::vector<vf::field::Vec3>& points() const {
    return points_;
  }
  [[nodiscard]] const std::vector<double>& values() const { return values_; }

  /// True when the cloud knows the grid it was sampled from.
  [[nodiscard]] bool has_grid() const { return has_grid_; }
  [[nodiscard]] const vf::field::UniformGrid3& grid() const { return grid_; }

  /// Linear indices of kept grid points (empty when !has_grid()).
  [[nodiscard]] const std::vector<std::int64_t>& kept_indices() const {
    return kept_indices_;
  }

  /// Linear indices of the void locations: every grid point NOT kept.
  [[nodiscard]] std::vector<std::int64_t> void_indices() const;

  /// Fraction of grid points kept (0 when no grid).
  [[nodiscard]] double sampling_fraction() const;

  /// Copy with unusable samples removed: points whose value or any
  /// coordinate is non-finite (NaN/Inf), and exact positional duplicates
  /// (first occurrence wins). The dropped counts are reported through the
  /// out-parameters. Grid association and the kept-index mapping are
  /// preserved for the surviving points, so scrubbed grid locations simply
  /// become voids for reconstruction.
  [[nodiscard]] SampleCloud scrubbed(std::size_t& dropped_nonfinite,
                                     std::size_t& dropped_duplicates) const;

  /// Write as .vtp / read back.
  void save_vtp(const std::string& path, const std::string& name) const;
  static SampleCloud load_vtp(const std::string& path);

 private:
  std::vector<vf::field::Vec3> points_;
  std::vector<double> values_;
  std::vector<std::int64_t> kept_indices_;
  vf::field::UniformGrid3 grid_;
  bool has_grid_ = false;
};

/// Common sampler interface: keep ~`fraction` of the grid points of `field`.
class Sampler {
 public:
  virtual ~Sampler() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual SampleCloud sample(const vf::field::ScalarField& field,
                                           double fraction,
                                           std::uint64_t seed) const = 0;
};

}  // namespace vf::sampling
