#pragma once
// The three sampling strategies.
//
// The paper uses the Biswas et al. 2020 probabilistic multi-criteria
// importance sampler for every experiment (and notes the reconstruction is
// sampling-method agnostic). We implement that method plus simple random and
// stratified baselines so the agnosticism claim is testable.

#include <memory>
#include <string>

#include "vf/sampling/sample_cloud.hpp"

namespace vf::sampling {

/// Uniform random subset of grid points.
class RandomSampler final : public Sampler {
 public:
  [[nodiscard]] std::string name() const override { return "random"; }
  [[nodiscard]] SampleCloud sample(const vf::field::ScalarField& field,
                                   double fraction,
                                   std::uint64_t seed) const override;
};

/// Spatially stratified sampling: the grid is tiled into blocks of
/// `block`^3 points and the budget is spread evenly across blocks, so no
/// region is left completely unsampled.
class StratifiedSampler final : public Sampler {
 public:
  explicit StratifiedSampler(int block = 8) : block_(block) {}
  [[nodiscard]] std::string name() const override { return "stratified"; }
  [[nodiscard]] SampleCloud sample(const vf::field::ScalarField& field,
                                   double fraction,
                                   std::uint64_t seed) const override;

 private:
  int block_;
};

/// Biswas et al. 2020-style data-driven importance sampling.
///
/// Criterion 1 (value rarity): a global value histogram is equalised — a
/// per-bin quota T is found such that sum_b min(count_b, T) = budget, bins
/// rarer than T keep all their points, common bins are subsampled to T.
/// Criterion 2 (gradient): within subsampled bins, points are drawn with
/// probability proportional to exp(gradient_weight * normalised |grad|)
/// (weighted reservoir / Efraimidis-Spirakis keys), so high-gradient feature
/// regions survive aggressive budgets.
class ImportanceSampler final : public Sampler {
 public:
  struct Options {
    int histogram_bins = 128;
    /// 0 disables the gradient criterion (pure histogram equalisation).
    double gradient_weight = 2.0;
  };

  ImportanceSampler() : opts_() {}
  explicit ImportanceSampler(Options opts) : opts_(opts) {}
  [[nodiscard]] std::string name() const override { return "importance"; }
  [[nodiscard]] SampleCloud sample(const vf::field::ScalarField& field,
                                   double fraction,
                                   std::uint64_t seed) const override;

 private:
  Options opts_;
};

/// Clamp a requested fraction to (0, 1] and convert to a point budget.
std::int64_t budget_for(const vf::field::ScalarField& field, double fraction);

/// Factory over the stateless samplers: "importance", "random",
/// "stratified" (mirrors interp::make_interpolator, so CLI surfaces and
/// the in-situ pipeline resolve sampler names one way). The stateful
/// TemporalDeltaSampler is excluded — it needs set_previous() wiring the
/// factory cannot provide. Throws std::invalid_argument for unknown
/// names.
[[nodiscard]] std::unique_ptr<Sampler> make_sampler(const std::string& name);

}  // namespace vf::sampling
