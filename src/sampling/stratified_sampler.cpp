#include <algorithm>
#include <cmath>

#include "vf/sampling/samplers.hpp"
#include "vf/util/rng.hpp"

namespace vf::sampling {

SampleCloud StratifiedSampler::sample(const vf::field::ScalarField& field,
                                      double fraction,
                                      std::uint64_t seed) const {
  const auto& grid = field.grid();
  const auto& d = grid.dims();
  const std::int64_t budget = budget_for(field, fraction);
  vf::util::Rng rng(seed, 0x73747261);

  const int b = std::max(block_, 1);
  const int bx = (d.nx + b - 1) / b;
  const int by = (d.ny + b - 1) / b;
  const int bz = (d.nz + b - 1) / b;
  const std::int64_t blocks =
      static_cast<std::int64_t>(bx) * by * bz;

  std::vector<std::int64_t> kept;
  kept.reserve(static_cast<std::size_t>(budget));

  // Spread the budget across blocks; distribute the remainder to random
  // blocks so the expected total matches exactly.
  const std::int64_t per_block = budget / blocks;
  std::int64_t remainder = budget % blocks;

  std::vector<std::int64_t> cell;  // linear indices within the current block
  std::int64_t deficit = 0;  // budget a too-small block could not absorb
  for (int kb = 0; kb < bz; ++kb) {
    for (int jb = 0; jb < by; ++jb) {
      for (int ib = 0; ib < bx; ++ib) {
        cell.clear();
        for (int k = kb * b; k < std::min((kb + 1) * b, d.nz); ++k)
          for (int j = jb * b; j < std::min((jb + 1) * b, d.ny); ++j)
            for (int i = ib * b; i < std::min((ib + 1) * b, d.nx); ++i)
              cell.push_back(grid.index(i, j, k));

        std::int64_t want = per_block + deficit;
        if (remainder > 0) {
          // Bernoulli draw keeps the expected extra uniform over blocks.
          std::int64_t blocks_left =
              blocks - ((static_cast<std::int64_t>(kb) * by + jb) * bx + ib);
          if (rng.uniform() <
              static_cast<double>(remainder) / static_cast<double>(blocks_left)) {
            ++want;
            --remainder;
          }
        }
        // Boundary blocks may be smaller than the per-block quota; roll the
        // unplaceable share into the next block so the budget is still met.
        auto capped =
            std::min<std::int64_t>(want, static_cast<std::int64_t>(cell.size()));
        deficit = want - capped;
        want = capped;
        // Partial shuffle of the cell's points.
        for (std::int64_t i = 0; i < want; ++i) {
          auto j = i + static_cast<std::int64_t>(rng.below(
                           static_cast<std::uint32_t>(cell.size() - i)));
          std::swap(cell[static_cast<std::size_t>(i)],
                    cell[static_cast<std::size_t>(j)]);
          kept.push_back(cell[static_cast<std::size_t>(i)]);
        }
      }
    }
  }

  // Any deficit left after the sweep (small boundary blocks everywhere
  // late in the scan) is topped up uniformly from the unkept points so the
  // budget is always met.
  if (deficit > 0) {
    std::vector<bool> taken(static_cast<std::size_t>(field.size()), false);
    for (std::int64_t idx : kept) taken[static_cast<std::size_t>(idx)] = true;
    std::vector<std::int64_t> free;
    free.reserve(static_cast<std::size_t>(field.size()) - kept.size());
    for (std::int64_t i = 0; i < field.size(); ++i) {
      if (!taken[static_cast<std::size_t>(i)]) free.push_back(i);
    }
    deficit = std::min<std::int64_t>(deficit,
                                     static_cast<std::int64_t>(free.size()));
    for (std::int64_t i = 0; i < deficit; ++i) {
      auto j = static_cast<std::size_t>(i) +
               rng.below(static_cast<std::uint32_t>(free.size() - i));
      std::swap(free[static_cast<std::size_t>(i)], free[j]);
      kept.push_back(free[static_cast<std::size_t>(i)]);
    }
  }
  return SampleCloud(field, std::move(kept));
}

}  // namespace vf::sampling
