#include <memory>
#include <stdexcept>
#include <string>

#include "vf/sampling/samplers.hpp"

namespace vf::sampling {

std::unique_ptr<Sampler> make_sampler(const std::string& name) {
  if (name == "importance") return std::make_unique<ImportanceSampler>();
  if (name == "random") return std::make_unique<RandomSampler>();
  if (name == "stratified") return std::make_unique<StratifiedSampler>();
  throw std::invalid_argument("vf::sampling: unknown sampler '" + name +
                              "' (importance|random|stratified)");
}

}  // namespace vf::sampling
