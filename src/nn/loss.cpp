#include "vf/nn/loss.hpp"

#include <cmath>
#include <stdexcept>

namespace vf::nn {

namespace {
void check_shapes(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    throw std::invalid_argument("loss: prediction/target shape mismatch");
  }
  if (a.size() == 0) throw std::invalid_argument("loss: empty batch");
}
}  // namespace

double MseLoss::value(const Matrix& prediction, const Matrix& target) const {
  check_shapes(prediction, target);
  auto p = prediction.data();
  auto t = target.data();
  double acc = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    double d = p[i] - t[i];
    acc += d * d;
  }
  return acc / static_cast<double>(p.size());
}

void MseLoss::gradient(const Matrix& prediction, const Matrix& target,
                       Matrix& grad) const {
  check_shapes(prediction, target);
  grad.resize(prediction.rows(), prediction.cols());
  auto p = prediction.data();
  auto t = target.data();
  auto g = grad.data();
  double scale = 2.0 / static_cast<double>(p.size());
  for (std::size_t i = 0; i < p.size(); ++i) g[i] = scale * (p[i] - t[i]);
}

double MaeLoss::value(const Matrix& prediction, const Matrix& target) const {
  check_shapes(prediction, target);
  auto p = prediction.data();
  auto t = target.data();
  double acc = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) acc += std::abs(p[i] - t[i]);
  return acc / static_cast<double>(p.size());
}

void MaeLoss::gradient(const Matrix& prediction, const Matrix& target,
                       Matrix& grad) const {
  check_shapes(prediction, target);
  grad.resize(prediction.rows(), prediction.cols());
  auto p = prediction.data();
  auto t = target.data();
  auto g = grad.data();
  double scale = 1.0 / static_cast<double>(p.size());
  for (std::size_t i = 0; i < p.size(); ++i) {
    double d = p[i] - t[i];
    g[i] = d > 0.0 ? scale : (d < 0.0 ? -scale : 0.0);
  }
}

}  // namespace vf::nn
