#include "vf/nn/checkpoint.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "vf/nn/serialize.hpp"
#include "vf/util/atomic_io.hpp"
#include "vf/util/contract.hpp"
#include "vf/util/fault.hpp"

namespace vf::nn {

namespace {

namespace fs = std::filesystem;

constexpr char kMagic[4] = {'V', 'F', 'C', 'K'};
constexpr std::uint32_t kVersion = 1;

std::string checkpoint_name(int epoch) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "ckpt_%06d.vfck", epoch);
  return buf;
}

/// Parse the epoch out of "ckpt_NNNNNN.vfck"; -1 when the name is foreign.
int epoch_from_name(const std::string& name) {
  constexpr const char* kPrefix = "ckpt_";
  constexpr const char* kSuffix = ".vfck";
  if (name.size() <= std::strlen(kPrefix) + std::strlen(kSuffix)) return -1;
  if (name.rfind(kPrefix, 0) != 0) return -1;
  if (name.substr(name.size() - std::strlen(kSuffix)) != kSuffix) return -1;
  const std::string digits = name.substr(
      std::strlen(kPrefix),
      name.size() - std::strlen(kPrefix) - std::strlen(kSuffix));
  int epoch = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return -1;
    if (epoch > 214748363) return -1;  // would overflow int
    epoch = epoch * 10 + (c - '0');
  }
  return epoch;
}

void write_index_vector(vf::util::ByteWriter& out,
                        const std::vector<std::size_t>& v) {
  out.pod(static_cast<std::uint64_t>(v.size()));
  for (std::size_t x : v) out.pod(static_cast<std::uint64_t>(x));
}

std::vector<std::size_t> read_index_vector(vf::util::ByteReader& in) {
  const auto n = in.pod<std::uint64_t>();
  if (n > in.remaining() / sizeof(std::uint64_t)) {
    throw std::runtime_error("checkpoint: corrupt index vector length");
  }
  std::vector<std::size_t> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = static_cast<std::size_t>(in.pod<std::uint64_t>());
  return v;
}

void write_double_vector(vf::util::ByteWriter& out,
                         const std::vector<double>& v) {
  out.pod(static_cast<std::uint64_t>(v.size()));
  out.bytes(v.data(), v.size() * sizeof(double));
}

std::vector<double> read_double_vector(vf::util::ByteReader& in) {
  const auto n = in.pod<std::uint64_t>();
  if (n > in.remaining() / sizeof(double)) {
    throw std::runtime_error("checkpoint: corrupt loss history length");
  }
  std::vector<double> v(static_cast<std::size_t>(n));
  in.bytes(v.data(), v.size() * sizeof(double));
  return v;
}

std::string trainer_payload(const TrainerState& s) {
  vf::util::ByteWriter out;
  out.pod(static_cast<std::int32_t>(s.epoch));
  out.pod(s.best);
  out.pod(static_cast<std::int32_t>(s.stall));
  out.pod(s.rng.state);
  out.pod(s.rng.inc);
  out.pod(s.rng.cached_gaussian);
  out.pod(static_cast<std::uint8_t>(s.rng.has_cached_gaussian ? 1 : 0));
  write_index_vector(out, s.order);
  write_index_vector(out, s.val_order);
  write_double_vector(out, s.train_loss);
  write_double_vector(out, s.val_loss);
  return out.take();
}

void trainer_from_payload(const std::string& payload, TrainerState& s) {
  vf::util::ByteReader in(payload, "checkpoint trainer state");
  s.epoch = in.pod<std::int32_t>();
  s.best = in.pod<double>();
  s.stall = in.pod<std::int32_t>();
  s.rng.state = in.pod<std::uint64_t>();
  s.rng.inc = in.pod<std::uint64_t>();
  s.rng.cached_gaussian = in.pod<double>();
  s.rng.has_cached_gaussian = in.pod<std::uint8_t>() != 0;
  s.order = read_index_vector(in);
  s.val_order = read_index_vector(in);
  s.train_loss = read_double_vector(in);
  s.val_loss = read_double_vector(in);
  in.expect_end();
  if (s.epoch < 0) {
    throw std::runtime_error("checkpoint: negative epoch count");
  }
}

void write_moment_matrix(vf::util::ByteWriter& out, const Matrix& m) {
  out.pod(static_cast<std::uint64_t>(m.rows()));
  out.pod(static_cast<std::uint64_t>(m.cols()));
  out.bytes(m.data().data(), m.size() * sizeof(double));
}

Matrix read_moment_matrix(vf::util::ByteReader& in) {
  const auto rows = in.pod<std::uint64_t>();
  const auto cols = in.pod<std::uint64_t>();
  if (rows == 0 || cols == 0 ||
      cols > in.remaining() / sizeof(double) / rows) {
    throw std::runtime_error("checkpoint: corrupt moment matrix shape");
  }
  Matrix m(static_cast<std::size_t>(rows), static_cast<std::size_t>(cols));
  in.bytes(m.data().data(), m.size() * sizeof(double));
  return m;
}

std::string adam_payload(const AdamState& a) {
  VF_REQUIRE(a.m.size() == a.v.size(),
             "checkpoint: Adam m/v vectors must be parallel");
  vf::util::ByteWriter out;
  out.pod(static_cast<std::int64_t>(a.t));
  out.pod(static_cast<std::uint32_t>(a.m.size()));
  for (std::size_t i = 0; i < a.m.size(); ++i) {
    write_moment_matrix(out, a.m[i]);
    write_moment_matrix(out, a.v[i]);
  }
  return out.take();
}

void adam_from_payload(const std::string& payload, AdamState& a) {
  vf::util::ByteReader in(payload, "checkpoint adam state");
  a.t = static_cast<long>(in.pod<std::int64_t>());
  const auto n = in.pod<std::uint32_t>();
  a.m.clear();
  a.v.clear();
  a.m.reserve(n);
  a.v.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    a.m.push_back(read_moment_matrix(in));
    a.v.push_back(read_moment_matrix(in));
  }
  in.expect_end();
  if (a.t < 0) throw std::runtime_error("checkpoint: negative Adam step");
}

}  // namespace

Checkpointer::Checkpointer(Options options) : options_(std::move(options)) {
  VF_REQUIRE(!options_.dir.empty(), "Checkpointer: empty directory");
  VF_REQUIRE(options_.every >= 1, "Checkpointer: every must be >= 1");
  VF_REQUIRE(options_.keep_last >= 1, "Checkpointer: keep_last must be >= 1");
}

bool Checkpointer::due(int epoch) const {
  return epoch > 0 && epoch % options_.every == 0;
}

void Checkpointer::write(const Network& net, const TrainerState& state) const {
  std::error_code ec;
  fs::create_directories(options_.dir, ec);  // rename target must exist
  if (vf::util::fault::should_fail("checkpoint_write")) {
    throw std::runtime_error("Checkpointer::write: injected fault");
  }
  const std::string trainer_bytes = trainer_payload(state);
  const std::string net_bytes = network_to_bytes(net);
  const std::string adam_bytes = adam_payload(state.adam);
  const std::string path =
      (fs::path(options_.dir) / checkpoint_name(state.epoch)).string();
  vf::util::atomic_write_file(path, [&](std::ostream& out) {
    out.write(kMagic, 4);
    const std::uint32_t version = kVersion;
    out.write(reinterpret_cast<const char*>(&version), sizeof version);
    vf::util::write_crc_section(out, trainer_bytes);
    vf::util::write_crc_section(out, net_bytes);
    vf::util::write_crc_section(out, adam_bytes);
  });

  // Keep-last-K retention: drop the oldest surplus checkpoints. Best effort
  // — a failed unlink must not fail the training run.
  const auto existing = list(options_.dir);
  if (existing.size() > static_cast<std::size_t>(options_.keep_last)) {
    const std::size_t surplus =
        existing.size() - static_cast<std::size_t>(options_.keep_last);
    for (std::size_t i = 0; i < surplus; ++i) {
      fs::remove(existing[i], ec);
    }
  }
}

std::vector<std::string> Checkpointer::list(const std::string& dir) {
  std::vector<std::pair<int, std::string>> found;
  std::error_code ec;
  for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    const int epoch = epoch_from_name(it->path().filename().string());
    if (epoch >= 0) found.emplace_back(epoch, it->path().string());
  }
  std::sort(found.begin(), found.end());
  std::vector<std::string> paths;
  paths.reserve(found.size());
  for (auto& [epoch, path] : found) paths.push_back(std::move(path));
  return paths;
}

void Checkpointer::load(const std::string& path, Network& net,
                        TrainerState& state) {
  std::ifstream in(path, std::ios::binary);
  if (!in || vf::util::fault::should_fail("checkpoint_read")) {
    throw std::runtime_error("Checkpointer::load: cannot open " + path);
  }
  char magic[4];
  in.read(magic, 4);
  if (!in || std::memcmp(magic, kMagic, 4) != 0) {
    throw std::runtime_error("Checkpointer::load: bad magic in " + path);
  }
  std::uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof version);
  if (!in || version != kVersion) {
    throw std::runtime_error("Checkpointer::load: unsupported version in " +
                             path);
  }
  const std::string trainer_bytes = vf::util::read_crc_section(
      in, vf::util::bytes_remaining(in), "Checkpointer::load");
  const std::string net_bytes = vf::util::read_crc_section(
      in, vf::util::bytes_remaining(in), "Checkpointer::load");
  const std::string adam_bytes = vf::util::read_crc_section(
      in, vf::util::bytes_remaining(in), "Checkpointer::load");
  vf::util::expect_eof(in, "Checkpointer::load");

  // Parse everything before mutating the outputs so a corrupt checkpoint
  // cannot leave net/state half-restored.
  TrainerState parsed;
  trainer_from_payload(trainer_bytes, parsed);
  Network parsed_net = network_from_bytes(net_bytes, "Checkpointer::load");
  adam_from_payload(adam_bytes, parsed.adam);
  net = std::move(parsed_net);
  state = std::move(parsed);
}

bool Checkpointer::load_latest(const std::string& dir, Network& net,
                               TrainerState& state) {
  const auto paths = list(dir);
  // Newest first; fall back through older checkpoints when one is torn or
  // corrupt. That is the crash-recovery contract: the most recent *intact*
  // checkpoint wins.
  for (auto it = paths.rbegin(); it != paths.rend(); ++it) {
    try {
      load(*it, net, state);
      return true;
    } catch (const std::runtime_error&) {
      continue;
    }
  }
  return false;
}

}  // namespace vf::nn
