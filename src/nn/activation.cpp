#include "vf/nn/activation.hpp"

#include <cmath>

namespace vf::nn {

void ReluLayer::forward(const Matrix& input, Matrix& output) {
  input_ = input;
  output.resize(input.rows(), input.cols());
  auto in = input.data();
  auto out = output.data();
  for (std::size_t i = 0; i < in.size(); ++i) out[i] = in[i] > 0.0 ? in[i] : 0.0;
}

void ReluLayer::backward(const Matrix& grad_output, Matrix& grad_input) {
  grad_input.resize(grad_output.rows(), grad_output.cols());
  auto in = input_.data();
  auto go = grad_output.data();
  auto gi = grad_input.data();
  for (std::size_t i = 0; i < go.size(); ++i) gi[i] = in[i] > 0.0 ? go[i] : 0.0;
}

void LeakyReluLayer::forward(const Matrix& input, Matrix& output) {
  input_ = input;
  output.resize(input.rows(), input.cols());
  auto in = input.data();
  auto out = output.data();
  for (std::size_t i = 0; i < in.size(); ++i) {
    out[i] = in[i] > 0.0 ? in[i] : slope_ * in[i];
  }
}

void LeakyReluLayer::backward(const Matrix& grad_output, Matrix& grad_input) {
  grad_input.resize(grad_output.rows(), grad_output.cols());
  auto in = input_.data();
  auto go = grad_output.data();
  auto gi = grad_input.data();
  for (std::size_t i = 0; i < go.size(); ++i) {
    gi[i] = in[i] > 0.0 ? go[i] : slope_ * go[i];
  }
}

void TanhLayer::forward(const Matrix& input, Matrix& output) {
  output.resize(input.rows(), input.cols());
  auto in = input.data();
  auto out = output.data();
  for (std::size_t i = 0; i < in.size(); ++i) out[i] = std::tanh(in[i]);
  output_ = output;
}

void TanhLayer::backward(const Matrix& grad_output, Matrix& grad_input) {
  grad_input.resize(grad_output.rows(), grad_output.cols());
  auto out = output_.data();
  auto go = grad_output.data();
  auto gi = grad_input.data();
  for (std::size_t i = 0; i < go.size(); ++i) {
    gi[i] = go[i] * (1.0 - out[i] * out[i]);
  }
}

}  // namespace vf::nn
