#include "vf/nn/serialize.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "vf/util/atomic_io.hpp"
#include "vf/util/contract.hpp"
#include "vf/util/fault.hpp"

namespace vf::nn {

namespace {

using vf::util::ByteReader;
using vf::util::ByteWriter;

constexpr char kMagic[4] = {'V', 'F', 'N', 'N'};
constexpr char kTailMagic[4] = {'V', 'F', 'N', 'T'};
constexpr std::uint32_t kVersion = 2;
constexpr std::uint32_t kLegacyVersion = 1;
/// Upper bound on any matrix element count accepted at load: larger than
/// every real model, small enough that a corrupt header cannot OOM.
constexpr std::uint64_t kMaxMatrixElements = 1ull << 28;

void write_matrix(ByteWriter& out, const Matrix& m) {
  out.pod(static_cast<std::uint64_t>(m.rows()));
  out.pod(static_cast<std::uint64_t>(m.cols()));
  out.bytes(m.data().data(), m.size() * sizeof(double));
}

Matrix read_matrix(ByteReader& in) {
  const auto rows = in.pod<std::uint64_t>();
  const auto cols = in.pod<std::uint64_t>();
  if (rows == 0 || cols == 0 || rows * cols > kMaxMatrixElements ||
      rows * cols * sizeof(double) > in.remaining()) {
    throw std::runtime_error("nn serialize: corrupt matrix header");
  }
  Matrix m(static_cast<std::size_t>(rows), static_cast<std::size_t>(cols));
  in.bytes(m.data().data(), m.size() * sizeof(double));
  return m;
}

/// One layer's section payload: kind, trainability, parameters.
std::string layer_payload(const Layer& l) {
  ByteWriter out;
  out.str(l.kind());
  out.pod(static_cast<std::uint8_t>(l.trainable() ? 1 : 0));
  if (l.kind() == "dense") {
    const auto& d = static_cast<const DenseLayer&>(l);
    write_matrix(out, d.weights());
    write_matrix(out, d.bias());
  } else if (l.kind() == "leaky_relu") {
    out.pod(static_cast<const LeakyReluLayer&>(l).slope());
  }
  return out.take();
}

std::unique_ptr<Layer> layer_from_payload(const std::string& payload) {
  ByteReader in(payload, "load_network");
  const std::string kind = in.str(64);
  const auto trainable = in.pod<std::uint8_t>();
  std::unique_ptr<Layer> layer;
  if (kind == "dense") {
    Matrix w = read_matrix(in);
    Matrix b = read_matrix(in);
    if (b.rows() != 1 || b.cols() != w.cols()) {
      throw std::runtime_error("load_network: bias/weights shape mismatch");
    }
    auto d = std::make_unique<DenseLayer>(w.rows(), w.cols());
    d->weights() = std::move(w);
    d->bias() = std::move(b);
    layer = std::move(d);
  } else if (kind == "relu") {
    layer = std::make_unique<ReluLayer>();
  } else if (kind == "tanh") {
    layer = std::make_unique<TanhLayer>();
  } else if (kind == "leaky_relu") {
    layer = std::make_unique<LeakyReluLayer>(in.pod<double>());
  } else {
    throw std::runtime_error("load_network: unknown layer kind " + kind);
  }
  layer->set_trainable(trainable != 0);
  in.expect_end();
  return layer;
}

std::string slurp(const std::string& path, const char* what) {
  std::ifstream in(path, std::ios::binary);
  if (!in || vf::util::fault::should_fail("serialize_read")) {
    throw std::runtime_error(std::string(what) + ": cannot open " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (!in && !in.eof()) {
    throw std::runtime_error(std::string(what) + ": read failed for " + path);
  }
  return buf.str();
}

// ---- legacy (version 1, unchecksummed) parsing ---------------------------
// Kept so models archived before the crash-safe format still load. The
// ByteReader bounds every field against the real file size, and expect_end
// enforces exact consumption, so v1 files get the same trailing-garbage and
// giant-header protection even without CRCs.

Matrix read_matrix_v1(ByteReader& in, const char* what) {
  const auto rows = in.pod<std::uint64_t>();
  const auto cols = in.pod<std::uint64_t>();
  if (rows == 0 || cols == 0 || rows * cols > kMaxMatrixElements ||
      rows * cols * sizeof(double) > in.remaining()) {
    throw std::runtime_error(std::string(what) + ": corrupt matrix header");
  }
  Matrix m(static_cast<std::size_t>(rows), static_cast<std::size_t>(cols));
  in.bytes(m.data().data(), m.size() * sizeof(double));
  return m;
}

Network network_from_bytes_v1(ByteReader& in) {
  const auto layers = in.pod<std::uint32_t>();
  Network net;
  for (std::uint32_t i = 0; i < layers; ++i) {
    const std::string kind = in.str(64);
    const auto trainable = in.pod<std::uint8_t>();
    if (kind == "dense") {
      Matrix w = read_matrix_v1(in, "load_network");
      Matrix b = read_matrix_v1(in, "load_network");
      auto d = std::make_unique<DenseLayer>(w.rows(), w.cols());
      d->weights() = std::move(w);
      d->bias() = std::move(b);
      d->set_trainable(trainable != 0);
      net.add(std::move(d));
    } else if (kind == "relu") {
      auto l = std::make_unique<ReluLayer>();
      l->set_trainable(trainable != 0);
      net.add(std::move(l));
    } else if (kind == "tanh") {
      auto l = std::make_unique<TanhLayer>();
      l->set_trainable(trainable != 0);
      net.add(std::move(l));
    } else if (kind == "leaky_relu") {
      auto l = std::make_unique<LeakyReluLayer>(in.pod<double>());
      l->set_trainable(trainable != 0);
      net.add(std::move(l));
    } else {
      throw std::runtime_error("load_network: unknown layer kind " + kind);
    }
  }
  in.expect_end();
  return net;
}

}  // namespace

std::string network_to_bytes(const Network& net) {
  std::ostringstream out;
  out.write(kMagic, 4);
  const std::uint32_t version = kVersion;
  out.write(reinterpret_cast<const char*>(&version), sizeof version);
  ByteWriter header;
  header.pod(static_cast<std::uint32_t>(net.layer_count()));
  vf::util::write_crc_section(out, header.data());
  for (std::size_t i = 0; i < net.layer_count(); ++i) {
    vf::util::write_crc_section(out, layer_payload(net.layer(i)));
  }
  return out.str();
}

Network network_from_bytes(const std::string& bytes, const char* what) {
  std::istringstream in(bytes);
  char magic[4];
  in.read(magic, 4);
  std::uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof version);
  if (!in || std::memcmp(magic, kMagic, 4) != 0) {
    throw std::runtime_error(std::string(what) + ": bad magic");
  }
  if (version == kLegacyVersion) {
    ByteReader body(bytes, what);
    body.bytes(magic, 4);          // skip magic
    body.pod<std::uint32_t>();     // skip version
    return network_from_bytes_v1(body);
  }
  if (version != kVersion) {
    throw std::runtime_error(std::string(what) + ": unsupported version " +
                             std::to_string(version));
  }
  const std::string header =
      vf::util::read_crc_section(in, vf::util::bytes_remaining(in), what);
  ByteReader hdr(header, what);
  const auto layers = hdr.pod<std::uint32_t>();
  hdr.expect_end();
  Network net;
  for (std::uint32_t i = 0; i < layers; ++i) {
    net.add(layer_from_payload(
        vf::util::read_crc_section(in, vf::util::bytes_remaining(in), what)));
  }
  vf::util::expect_eof(in, what);
  return net;
}

void save_network(const Network& net, const std::string& path) {
  const std::string bytes = network_to_bytes(net);
  vf::util::atomic_write_file(path, [&](std::ostream& out) {
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  });
}

Network load_network(const std::string& path) {
  try {
    return network_from_bytes(slurp(path, "load_network"), "load_network");
  } catch (const std::runtime_error& e) {
    throw std::runtime_error(std::string(e.what()) + " in " + path);
  }
}

void save_dense_tail(const Network& net, int n, const std::string& path) {
  const int total = net.dense_count();
  VF_REQUIRE(n >= 0 && n <= total,
             "save_dense_tail: tail longer than dense stack");
  vf::util::atomic_write_file(path, [&](std::ostream& out) {
    out.write(kTailMagic, 4);
    const std::uint32_t version = kVersion;
    out.write(reinterpret_cast<const char*>(&version), sizeof version);
    ByteWriter header;
    header.pod(static_cast<std::uint32_t>(n));
    vf::util::write_crc_section(out, header.data());
    int seen = 0;
    for (std::size_t i = 0; i < net.layer_count(); ++i) {
      const Layer& l = net.layer(i);
      if (l.kind() != "dense") continue;
      ++seen;
      if (seen <= total - n) continue;
      const auto& d = static_cast<const DenseLayer&>(l);
      ByteWriter section;
      write_matrix(section, d.weights());
      write_matrix(section, d.bias());
      vf::util::write_crc_section(out, section.data());
    }
  });
}

void load_dense_tail(Network& net, int n, const std::string& path) {
  const std::string bytes = slurp(path, "load_dense_tail");
  std::istringstream in(bytes);
  char magic[4];
  in.read(magic, 4);
  if (!in || std::memcmp(magic, kTailMagic, 4) != 0) {
    throw std::runtime_error("load_dense_tail: bad magic in " + path);
  }
  std::uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof version);

  const int total = net.dense_count();
  VF_REQUIRE(n >= 0 && n <= total,
             "load_dense_tail: tail longer than dense stack");

  // Parse every tail matrix before touching `net`, so a corrupt later
  // section cannot leave the network half-overwritten.
  std::vector<std::pair<Matrix, Matrix>> tail;
  if (version == kLegacyVersion) {
    ByteReader body(bytes, "load_dense_tail");
    body.bytes(magic, 4);
    body.pod<std::uint32_t>();  // version
    const auto count = body.pod<std::uint32_t>();
    if (static_cast<int>(count) != n) {
      throw std::runtime_error("load_dense_tail: layer count mismatch");
    }
    for (std::uint32_t i = 0; i < count; ++i) {
      Matrix w = read_matrix_v1(body, "load_dense_tail");
      Matrix b = read_matrix_v1(body, "load_dense_tail");
      tail.emplace_back(std::move(w), std::move(b));
    }
    body.expect_end();
  } else if (version == kVersion) {
    const std::string header = vf::util::read_crc_section(
        in, vf::util::bytes_remaining(in), "load_dense_tail");
    ByteReader hdr(header, "load_dense_tail");
    const auto count = hdr.pod<std::uint32_t>();
    hdr.expect_end();
    if (static_cast<int>(count) != n) {
      throw std::runtime_error("load_dense_tail: layer count mismatch");
    }
    for (std::uint32_t i = 0; i < count; ++i) {
      const std::string payload = vf::util::read_crc_section(
          in, vf::util::bytes_remaining(in), "load_dense_tail");
      ByteReader section(payload, "load_dense_tail");
      Matrix w = read_matrix(section);
      Matrix b = read_matrix(section);
      section.expect_end();
      tail.emplace_back(std::move(w), std::move(b));
    }
    vf::util::expect_eof(in, "load_dense_tail");
  } else {
    throw std::runtime_error("load_dense_tail: unsupported version in " + path);
  }

  int seen = 0;
  std::size_t next = 0;
  for (std::size_t i = 0; i < net.layer_count(); ++i) {
    Layer& l = net.layer(i);
    if (l.kind() != "dense") continue;
    ++seen;
    if (seen <= total - n) continue;
    auto& d = static_cast<DenseLayer&>(l);
    auto& [w, b] = tail[next++];
    if (w.rows() != d.weights().rows() || w.cols() != d.weights().cols() ||
        b.cols() != d.bias().cols()) {
      throw std::runtime_error("load_dense_tail: shape mismatch");
    }
    d.weights() = std::move(w);
    d.bias() = std::move(b);
  }
}

}  // namespace vf::nn
