#include "vf/nn/serialize.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "vf/util/contract.hpp"

namespace vf::nn {

namespace {

constexpr char kMagic[4] = {'V', 'F', 'N', 'N'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
void read_pod(std::istream& in, T& v) {
  in.read(reinterpret_cast<char*>(&v), sizeof v);
}

void write_string(std::ostream& out, const std::string& s) {
  write_pod(out, static_cast<std::uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& in) {
  std::uint32_t len = 0;
  read_pod(in, len);
  if (!in || len > (1u << 20)) {
    throw std::runtime_error("nn serialize: corrupt string length");
  }
  std::string s(len, '\0');
  in.read(s.data(), len);
  return s;
}

void write_matrix(std::ostream& out, const Matrix& m) {
  write_pod(out, static_cast<std::uint64_t>(m.rows()));
  write_pod(out, static_cast<std::uint64_t>(m.cols()));
  out.write(reinterpret_cast<const char*>(m.data().data()),
            static_cast<std::streamsize>(m.size() * sizeof(double)));
}

Matrix read_matrix(std::istream& in) {
  std::uint64_t rows = 0, cols = 0;
  read_pod(in, rows);
  read_pod(in, cols);
  if (!in || rows * cols > (1ull << 32)) {
    throw std::runtime_error("nn serialize: corrupt matrix header");
  }
  Matrix m(static_cast<std::size_t>(rows), static_cast<std::size_t>(cols));
  in.read(reinterpret_cast<char*>(m.data().data()),
          static_cast<std::streamsize>(m.size() * sizeof(double)));
  if (!in) throw std::runtime_error("nn serialize: truncated matrix");
  return m;
}

}  // namespace

void save_network(const Network& net, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_network: cannot open " + path);
  out.write(kMagic, 4);
  write_pod(out, kVersion);
  write_pod(out, static_cast<std::uint32_t>(net.layer_count()));
  for (std::size_t i = 0; i < net.layer_count(); ++i) {
    const Layer& l = net.layer(i);
    write_string(out, l.kind());
    write_pod(out, static_cast<std::uint8_t>(l.trainable() ? 1 : 0));
    if (l.kind() == "dense") {
      const auto& d = static_cast<const DenseLayer&>(l);
      write_matrix(out, d.weights());
      write_matrix(out, d.bias());
    } else if (l.kind() == "leaky_relu") {
      write_pod(out, static_cast<const LeakyReluLayer&>(l).slope());
    }
  }
  if (!out) throw std::runtime_error("save_network: write failed " + path);
}

Network load_network(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_network: cannot open " + path);
  char magic[4];
  in.read(magic, 4);
  if (!in || std::memcmp(magic, kMagic, 4) != 0) {
    throw std::runtime_error("load_network: bad magic in " + path);
  }
  std::uint32_t version = 0, layers = 0;
  read_pod(in, version);
  read_pod(in, layers);
  if (version != kVersion) {
    throw std::runtime_error("load_network: unsupported version");
  }
  Network net;
  for (std::uint32_t i = 0; i < layers; ++i) {
    std::string kind = read_string(in);
    std::uint8_t trainable = 1;
    read_pod(in, trainable);
    if (kind == "dense") {
      Matrix w = read_matrix(in);
      Matrix b = read_matrix(in);
      auto d = std::make_unique<DenseLayer>(w.rows(), w.cols());
      d->weights() = std::move(w);
      d->bias() = std::move(b);
      d->set_trainable(trainable != 0);
      net.add(std::move(d));
    } else if (kind == "relu") {
      auto l = std::make_unique<ReluLayer>();
      l->set_trainable(trainable != 0);
      net.add(std::move(l));
    } else if (kind == "tanh") {
      auto l = std::make_unique<TanhLayer>();
      l->set_trainable(trainable != 0);
      net.add(std::move(l));
    } else if (kind == "leaky_relu") {
      double slope = 0.01;
      read_pod(in, slope);
      auto l = std::make_unique<LeakyReluLayer>(slope);
      l->set_trainable(trainable != 0);
      net.add(std::move(l));
    } else {
      throw std::runtime_error("load_network: unknown layer kind " + kind);
    }
  }
  return net;
}

void save_dense_tail(const Network& net, int n, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_dense_tail: cannot open " + path);
  const char tail_magic[4] = {'V', 'F', 'N', 'T'};
  out.write(tail_magic, 4);
  write_pod(out, kVersion);
  int total = net.dense_count();
  VF_REQUIRE(n >= 0 && n <= total,
             "save_dense_tail: tail longer than dense stack");
  write_pod(out, static_cast<std::uint32_t>(n));
  int seen = 0;
  for (std::size_t i = 0; i < net.layer_count(); ++i) {
    const Layer& l = net.layer(i);
    if (l.kind() != "dense") continue;
    ++seen;
    if (seen <= total - n) continue;
    const auto& d = static_cast<const DenseLayer&>(l);
    write_matrix(out, d.weights());
    write_matrix(out, d.bias());
  }
  if (!out) throw std::runtime_error("save_dense_tail: write failed " + path);
}

void load_dense_tail(Network& net, int n, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_dense_tail: cannot open " + path);
  char magic[4];
  in.read(magic, 4);
  if (!in || std::memcmp(magic, "VFNT", 4) != 0) {
    throw std::runtime_error("load_dense_tail: bad magic in " + path);
  }
  std::uint32_t version = 0, count = 0;
  read_pod(in, version);
  read_pod(in, count);
  if (version != kVersion || static_cast<int>(count) != n) {
    throw std::runtime_error("load_dense_tail: layer count mismatch");
  }
  int total = net.dense_count();
  VF_REQUIRE(n >= 0 && n <= total,
             "load_dense_tail: tail longer than dense stack");
  int seen = 0;
  for (std::size_t i = 0; i < net.layer_count(); ++i) {
    Layer& l = net.layer(i);
    if (l.kind() != "dense") continue;
    ++seen;
    if (seen <= total - n) continue;
    auto& d = static_cast<DenseLayer&>(l);
    Matrix w = read_matrix(in);
    Matrix b = read_matrix(in);
    if (w.rows() != d.weights().rows() || w.cols() != d.weights().cols()) {
      throw std::runtime_error("load_dense_tail: shape mismatch");
    }
    d.weights() = std::move(w);
    d.bias() = std::move(b);
  }
}

}  // namespace vf::nn
