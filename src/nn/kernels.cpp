#include "vf/nn/kernels.hpp"

#include <algorithm>
#include <cstdint>
#include <stdexcept>

#include "vf/obs/obs.hpp"
#include "vf/util/aligned.hpp"
#include "vf/util/contract.hpp"
#include "vf/util/parallel.hpp"

namespace vf::nn {

namespace {

void check(bool ok, const char* what) {
  if (!ok) throw std::invalid_argument(what);
}

// Below this many multiply-adds the fork/join cost dominates any speedup.
constexpr std::size_t kParallelWork = 1 << 14;

}  // namespace

namespace detail {
namespace {

// Register tile: an MR x NR accumulator block of doubles. NR = 16 is two
// AVX-512 vectors (four AVX2/NEON vectors) per row; with MR = 8 that is 16
// vector accumulators — enough independent FMA chains to hide FMA latency
// while keeping 16 FMAs per 10 load micro-ops in the inner step.
constexpr std::size_t MR = 8;
constexpr std::size_t NR = 16;
// Cache blocking: the packed A block (MC x KC doubles = 192 KiB) targets
// L2; one A micro-panel plus one B micro-panel (MR x KC + KC x NR = 36 KiB)
// cycle through L1 inside the micro-kernel loop.
constexpr std::size_t MC = 128;
constexpr std::size_t KC = 192;
constexpr std::size_t NC = 4096;
static_assert(MC % MR == 0);

/// Pack op(A) rows [i0, i0+mc) x cols [p0, p0+kc) into contiguous MR x kc
/// micro-panels (column-of-the-panel major), zero-padding the row
/// remainder so the micro-kernel never branches on edges. Packing absorbs
/// the transposed layout: when `trans`, A is stored (k x m).
void pack_a(const double* a, std::size_t lda, bool trans, std::size_t i0,
            std::size_t mc, std::size_t p0, std::size_t kc, double* dst) {
  for (std::size_t ir = 0; ir < mc; ir += MR) {
    const std::size_t mr = std::min(MR, mc - ir);
    if (trans) {
      for (std::size_t l = 0; l < kc; ++l) {
        const double* src = a + (p0 + l) * lda + i0 + ir;
        for (std::size_t i = 0; i < mr; ++i) dst[l * MR + i] = src[i];
        for (std::size_t i = mr; i < MR; ++i) dst[l * MR + i] = 0.0;
      }
    } else {
      for (std::size_t i = 0; i < mr; ++i) {
        const double* src = a + (i0 + ir + i) * lda + p0;
        for (std::size_t l = 0; l < kc; ++l) dst[l * MR + i] = src[l];
      }
      for (std::size_t i = mr; i < MR; ++i) {
        for (std::size_t l = 0; l < kc; ++l) dst[l * MR + i] = 0.0;
      }
    }
    dst += kc * MR;
  }
}

/// Pack op(B) rows [p0, p0+kc) x cols [j0, j0+nc) into contiguous kc x NR
/// micro-panels, zero-padding the column remainder. When `trans`, B is
/// stored (n x k).
void pack_b(const double* b, std::size_t ldb, bool trans, std::size_t p0,
            std::size_t kc, std::size_t j0, std::size_t nc, double* dst) {
  for (std::size_t jr = 0; jr < nc; jr += NR) {
    const std::size_t nr = std::min(NR, nc - jr);
    if (trans) {
      for (std::size_t j = 0; j < nr; ++j) {
        const double* src = b + (j0 + jr + j) * ldb + p0;
        for (std::size_t l = 0; l < kc; ++l) dst[l * NR + j] = src[l];
      }
      for (std::size_t j = nr; j < NR; ++j) {
        for (std::size_t l = 0; l < kc; ++l) dst[l * NR + j] = 0.0;
      }
    } else {
      for (std::size_t l = 0; l < kc; ++l) {
        const double* src = b + (p0 + l) * ldb + j0 + jr;
        for (std::size_t j = 0; j < nr; ++j) dst[l * NR + j] = src[j];
        for (std::size_t j = nr; j < NR; ++j) dst[l * NR + j] = 0.0;
      }
    }
    dst += kc * NR;
  }
}

/// MR x NR register-tile accumulation over one packed panel pair. The
/// per-element k order matches the naive kernels; partial sums are
/// re-associated only at Kc-panel boundaries (write_tile's accumulate),
/// keeping the blocked path within a few ulps of the reference.
void micro_kernel(std::size_t kc, const double* __restrict ap,
                  const double* __restrict bp, double* __restrict acc) {
  for (std::size_t l = 0; l < kc; ++l) {
    const double* a = ap + l * MR;
    const double* b = bp + l * NR;
#pragma GCC unroll 8
    for (std::size_t i = 0; i < MR; ++i) {
      const double av = a[i];
#pragma omp simd
      for (std::size_t j = 0; j < NR; ++j) acc[i * NR + j] += av * b[j];
    }
  }
}

/// Write an accumulated tile back to C, applying the optional epilogue.
/// `accumulate` adds to the partial sums from earlier Kc panels; `bias`
/// (pre-offset to this tile's first column) and `relu` fire only on the
/// final panel.
void write_tile(const double* acc, double* c, std::size_t ldc, std::size_t mr,
                std::size_t nr, bool accumulate, const double* bias,
                bool relu) {
  if (mr == MR && nr == NR && !accumulate && !bias && !relu) {
    // Full-tile overwrite fast path (the common case of a single Kc panel).
    for (std::size_t i = 0; i < MR; ++i) {
      double* crow = c + i * ldc;
#pragma omp simd
      for (std::size_t j = 0; j < NR; ++j) crow[j] = acc[i * NR + j];
    }
    return;
  }
  for (std::size_t i = 0; i < mr; ++i) {
    double* crow = c + i * ldc;
    for (std::size_t j = 0; j < nr; ++j) {
      double v = acc[i * NR + j];
      if (accumulate) v += crow[j];
      if (bias) v += bias[j];
      if (relu && v < 0.0) v = 0.0;
      crow[j] = v;
    }
  }
}

}  // namespace

void gemm_blocked(std::size_t m, std::size_t n, std::size_t k,
                  const double* a, std::size_t lda, bool a_trans,
                  const double* b, std::size_t ldb, bool b_trans, double* c,
                  std::size_t ldc, const double* bias, bool relu) {
  // Leading dimensions are row strides of the *stored* operands: op(A) is
  // (m x k) but A is stored (k x m) when transposed, and likewise for B.
  VF_REQUIRE(lda >= (a_trans ? m : k), "gemm_blocked: lda below logical row");
  VF_REQUIRE(ldb >= (b_trans ? k : n), "gemm_blocked: ldb below logical row");
  VF_REQUIRE(ldc >= n, "gemm_blocked: ldc below output row");
  // Every dense forward/backward funnels through here, so these two
  // counters cover the model's entire multiply-add volume.
  VF_OBS_COUNT("nn.gemm.calls", 1);
  VF_OBS_COUNT("nn.gemm.flops", 2 * m * n * k);
  if (m == 0 || n == 0) return;
  if (k == 0) {
    // Degenerate inner dimension: the product is all zeros + epilogue.
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        double v = bias ? bias[j] : 0.0;
        if (relu && v < 0.0) v = 0.0;
        c[i * ldc + j] = v;
      }
    }
    return;
  }

  const bool threads =
      vf::util::thread_count() > 1 && m * n * k >= kParallelWork;
  const std::size_t max_nc = std::min(NC, n);
  const std::size_t max_kc = std::min(KC, k);
  vf::util::AlignedVector<double> bpack(((max_nc + NR - 1) / NR) * NR *
                                        max_kc);

  for (std::size_t jc = 0; jc < n; jc += NC) {
    const std::size_t nc = std::min(NC, n - jc);
    for (std::size_t pc = 0; pc < k; pc += KC) {
      const std::size_t kc = std::min(KC, k - pc);
      const bool first = pc == 0;
      const bool last = pc + kc == k;
      pack_b(b, ldb, b_trans, pc, kc, jc, nc, bpack.data());

      const auto ic_blocks = static_cast<std::int64_t>((m + MC - 1) / MC);
      // vf-par: per-thread-scratch — apack is thread-local; each ic-block
      // writes a disjoint row band of C; bpack is read-only in the region.
#pragma omp parallel if (threads)
      {
        vf::util::AlignedVector<double> apack(MC * kc);
#pragma omp for schedule(static)
        for (std::int64_t icb = 0; icb < ic_blocks; ++icb) {
          const std::size_t ic = static_cast<std::size_t>(icb) * MC;
          const std::size_t mc = std::min(MC, m - ic);
          pack_a(a, lda, a_trans, ic, mc, pc, kc, apack.data());
          for (std::size_t jr = 0; jr < nc; jr += NR) {
            const std::size_t nr = std::min(NR, nc - jr);
            const double* bp = bpack.data() + (jr / NR) * kc * NR;
            for (std::size_t ir = 0; ir < mc; ir += MR) {
              const std::size_t mr = std::min(MR, mc - ir);
              const double* ap = apack.data() + (ir / MR) * kc * MR;
              alignas(64) double acc[MR * NR] = {};
              micro_kernel(kc, ap, bp, acc);
              write_tile(acc, c + (ic + ir) * ldc + jc + jr, ldc, mr, nr,
                         !first, last && bias ? bias + jc + jr : nullptr,
                         last && relu);
            }
          }
        }
      }
    }
  }
}

}  // namespace detail

void fused_dense_forward(const Matrix& input, const Matrix& weights,
                         const Matrix& bias, bool relu, Matrix& out) {
  check(input.cols() == weights.rows(),
        "fused_dense_forward: inner dims mismatch");
  check(bias.rows() == 1 && bias.cols() == weights.cols(),
        "fused_dense_forward: bias shape mismatch");
  check(&input != &out, "fused_dense_forward: out must not alias input");
  out.resize(input.rows(), weights.cols());
  detail::gemm_blocked(input.rows(), weights.cols(), input.cols(),
                       input.data().data(), input.cols(), false,
                       weights.data().data(), weights.cols(), false,
                       out.data().data(), out.cols(), bias.row(0), relu);
}

// ---------------------------------------------------------------------------
// Naive reference kernels: the pre-kernel-layer implementations, kept
// verbatim (plus the explicit zeroing the new resize() semantics require)
// so the equivalence tests always have an independent baseline.

void gemm_naive(const Matrix& a, const Matrix& b, Matrix& out) {
  check(a.cols() == b.rows(), "gemm: inner dims mismatch");
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  out.resize(m, n);
  out.set_zero();
  auto body = [&](std::int64_t ri) {
    auto r = static_cast<std::size_t>(ri);
    double* orow = out.row(r);
    const double* arow = a.row(r);
    for (std::size_t kk = 0; kk < k; ++kk) {
      double av = arow[kk];
      if (av == 0.0) continue;
      const double* brow = b.row(kk);
      for (std::size_t c = 0; c < n; ++c) orow[c] += av * brow[c];
    }
  };
  vf::util::parallel_for(
      0, static_cast<std::int64_t>(m), body,
      m * k * n < kParallelWork ? static_cast<std::int64_t>(m + 1) : 1);
}

void gemm_at_b_naive(const Matrix& a, const Matrix& b, Matrix& out) {
  check(a.rows() == b.rows(), "gemm_at_b: outer dims mismatch");
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  out.resize(m, n);
  out.set_zero();
  // out(m,n) = sum_k a(k,m) * b(k,n). Iterate k outermost so both inputs
  // are read row-contiguously; `out` (m*n, typically the weight-gradient
  // shape) stays cache-resident across the k accumulation.
  if (static_cast<std::size_t>(vf::util::thread_count()) > 1 &&
      m * k * n >= kParallelWork) {
    // Parallel: split output rows; each thread scans its slice of a's rows.
    // vf-par: disjoint-writes — iteration ri writes only out.row(ri).
#pragma omp parallel for schedule(static)
    for (std::int64_t ri = 0; ri < static_cast<std::int64_t>(m); ++ri) {
      auto r = static_cast<std::size_t>(ri);
      double* orow = out.row(r);
      for (std::size_t kk = 0; kk < k; ++kk) {
        double av = a(kk, r);
        if (av == 0.0) continue;
        const double* brow = b.row(kk);
        for (std::size_t c = 0; c < n; ++c) orow[c] += av * brow[c];
      }
    }
    return;
  }
  for (std::size_t kk = 0; kk < k; ++kk) {
    const double* arow = a.row(kk);
    const double* brow = b.row(kk);
    for (std::size_t r = 0; r < m; ++r) {
      double av = arow[r];
      if (av == 0.0) continue;
      double* orow = out.row(r);
      for (std::size_t c = 0; c < n; ++c) orow[c] += av * brow[c];
    }
  }
}

void gemm_a_bt_naive(const Matrix& a, const Matrix& b, Matrix& out) {
  check(a.cols() == b.cols(), "gemm_a_bt: inner dims mismatch");
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  out.resize(m, n);
  out.set_zero();
  // Process four output columns per pass: one read of a's row feeds four
  // independent accumulation chains (better ILP than a single dot product).
  auto body = [&](std::int64_t ri) {
    auto r = static_cast<std::size_t>(ri);
    double* orow = out.row(r);
    const double* arow = a.row(r);
    std::size_t c = 0;
    for (; c + 4 <= n; c += 4) {
      const double* b0 = b.row(c);
      const double* b1 = b.row(c + 1);
      const double* b2 = b.row(c + 2);
      const double* b3 = b.row(c + 3);
      double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) {
        double av = arow[kk];
        acc0 += av * b0[kk];
        acc1 += av * b1[kk];
        acc2 += av * b2[kk];
        acc3 += av * b3[kk];
      }
      orow[c] = acc0;
      orow[c + 1] = acc1;
      orow[c + 2] = acc2;
      orow[c + 3] = acc3;
    }
    for (; c < n; ++c) {
      const double* brow = b.row(c);
      double acc = 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      orow[c] = acc;
    }
  };
  vf::util::parallel_for(
      0, static_cast<std::int64_t>(m), body,
      m * k * n < kParallelWork ? static_cast<std::int64_t>(m + 1) : 1);
}

}  // namespace vf::nn
