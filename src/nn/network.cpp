#include "vf/nn/network.hpp"

#include <cmath>
#include <stdexcept>

#include "vf/nn/kernels.hpp"
#include "vf/util/contract.hpp"

namespace vf::nn {

namespace {

/// Elementwise map into a (possibly reused) output buffer.
template <typename F>
void map_elementwise(const Matrix& in, Matrix& out, const F& f) {
  out.resize(in.rows(), in.cols());
  auto src = in.data();
  auto dst = out.data();
  for (std::size_t i = 0; i < src.size(); ++i) dst[i] = f(src[i]);
}

}  // namespace

Network Network::mlp(std::size_t inputs, const std::vector<std::size_t>& hidden,
                     std::size_t outputs, std::uint64_t seed) {
  Network net;
  std::size_t prev = inputs;
  std::uint64_t layer_seed = seed;
  for (std::size_t h : hidden) {
    net.add(std::make_unique<DenseLayer>(prev, h, layer_seed++));
    net.add(std::make_unique<ReluLayer>());
    prev = h;
  }
  net.add(std::make_unique<DenseLayer>(prev, outputs, layer_seed++));
  return net;
}

void Network::add(std::unique_ptr<Layer> layer) {
  layers_.push_back(std::move(layer));
}

void Network::forward(const Matrix& input, Matrix& output) {
  if (layers_.empty()) {
    output = input;
    return;
  }
  acts_.resize(layers_.size());
  const Matrix* cur = &input;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    layers_[i]->forward(*cur, acts_[i]);
    cur = &acts_[i];
  }
  output = acts_.back();
}

void Network::infer(const Matrix& input, Matrix& output,
                    InferScratch& scratch) const {
  // The ping-pong buffers and the output are written while `input` is still
  // being read, so none of them may alias it.
  VF_REQUIRE(&output != &input, "Network::infer: output aliases input");
  VF_REQUIRE(&scratch.a != &input && &scratch.b != &input,
             "Network::infer: scratch aliases input");
  VF_REQUIRE(&scratch.a != &output && &scratch.b != &output,
             "Network::infer: scratch aliases output");
  if (layers_.empty()) {
    output = input;
    return;
  }
  Matrix* bufs[2] = {&scratch.a, &scratch.b};
  int which = 0;
  const Matrix* cur = &input;
  std::size_t i = 0;
  while (i < layers_.size()) {
    const Layer& l = *layers_[i];
    std::size_t consumed = 1;
    bool fuse_relu = false;
    if (l.kind() == "dense" && i + 1 < layers_.size() &&
        layers_[i + 1]->kind() == "relu") {
      fuse_relu = true;
      consumed = 2;
    }
    Matrix* dst = i + consumed == layers_.size() ? &output : bufs[which];
    if (l.kind() == "dense") {
      const auto& d = static_cast<const DenseLayer&>(l);
      fused_dense_forward(*cur, d.weights(), d.bias(), fuse_relu, *dst);
    } else if (l.kind() == "relu") {
      map_elementwise(*cur, *dst, [](double v) { return v > 0.0 ? v : 0.0; });
    } else if (l.kind() == "leaky_relu") {
      const double slope = static_cast<const LeakyReluLayer&>(l).slope();
      map_elementwise(*cur, *dst,
                      [slope](double v) { return v > 0.0 ? v : slope * v; });
    } else if (l.kind() == "tanh") {
      map_elementwise(*cur, *dst, [](double v) { return std::tanh(v); });
    } else {
      throw std::logic_error("Network::infer: unsupported layer kind " +
                             l.kind());
    }
    cur = dst;
    which ^= 1;
    i += consumed;
  }
}

void Network::backward(const Matrix& grad_output) {
  if (layers_.empty()) return;
  grads_.resize(layers_.size());
  const Matrix* cur = &grad_output;
  for (std::size_t i = layers_.size(); i-- > 0;) {
    layers_[i]->backward(*cur, grads_[i]);
    cur = &grads_[i];
  }
}

std::vector<Param> Network::params() {
  std::vector<Param> out;
  for (auto& l : layers_) {
    auto ps = l->params();
    out.insert(out.end(), ps.begin(), ps.end());
  }
  return out;
}

void Network::zero_grad() {
  for (auto& l : layers_) l->zero_grad();
}

std::size_t Network::parameter_count() const {
  std::size_t n = 0;
  for (const auto& l : layers_) {
    for (const auto& p : const_cast<Layer&>(*l).params()) n += p.value->size();
  }
  return n;
}

void Network::set_all_trainable(bool trainable) {
  for (auto& l : layers_) l->set_trainable(trainable);
}

int Network::dense_count() const {
  int n = 0;
  for (const auto& l : layers_) {
    if (l->kind() == "dense") ++n;
  }
  return n;
}

void Network::set_trainable_last_dense(int n) {
  int total = dense_count();
  int seen = 0;
  for (auto& l : layers_) {
    if (l->kind() != "dense") continue;
    ++seen;
    l->set_trainable(seen > total - n);
  }
}

Network Network::clone() const {
  Network copy;
  for (const auto& l : layers_) {
    if (l->kind() == "dense") {
      const auto& d = static_cast<const DenseLayer&>(*l);
      auto nd = std::make_unique<DenseLayer>(d.in_features(), d.out_features());
      nd->weights() = d.weights();
      nd->bias() = d.bias();
      nd->set_trainable(d.trainable());
      copy.add(std::move(nd));
    } else if (l->kind() == "relu") {
      copy.add(std::make_unique<ReluLayer>());
    } else if (l->kind() == "tanh") {
      copy.add(std::make_unique<TanhLayer>());
    } else if (l->kind() == "leaky_relu") {
      const auto& lr = static_cast<const LeakyReluLayer&>(*l);
      copy.add(std::make_unique<LeakyReluLayer>(lr.slope()));
    } else {
      throw std::logic_error("Network::clone: unknown layer kind " + l->kind());
    }
  }
  return copy;
}

}  // namespace vf::nn
