#pragma once
// Elementwise activation layers. The paper's FCNN uses ReLU throughout
// (§III-C); Tanh and LeakyReLU are provided for the architecture-sweep
// ablations.

#include "vf/nn/layer.hpp"

namespace vf::nn {

class ReluLayer final : public Layer {
 public:
  [[nodiscard]] std::string kind() const override { return "relu"; }
  void forward(const Matrix& input, Matrix& output) override;
  void backward(const Matrix& grad_output, Matrix& grad_input) override;

 private:
  Matrix input_;
};

class LeakyReluLayer final : public Layer {
 public:
  explicit LeakyReluLayer(double slope = 0.01) : slope_(slope) {}
  [[nodiscard]] std::string kind() const override { return "leaky_relu"; }
  void forward(const Matrix& input, Matrix& output) override;
  void backward(const Matrix& grad_output, Matrix& grad_input) override;
  [[nodiscard]] double slope() const { return slope_; }

 private:
  double slope_;
  Matrix input_;
};

class TanhLayer final : public Layer {
 public:
  [[nodiscard]] std::string kind() const override { return "tanh"; }
  void forward(const Matrix& input, Matrix& output) override;
  void backward(const Matrix& grad_output, Matrix& grad_input) override;

 private:
  Matrix output_;  // tanh' = 1 - tanh^2, so caching the output suffices
};

}  // namespace vf::nn
