#pragma once
// First-order optimizers. The paper trains with Adam at lr = 1e-3 (§III-C);
// plain SGD is kept for tests and ablations.
//
// An optimizer is attached to a parameter list once (allocating per-param
// state) and then stepped after each minibatch backward pass. Frozen params
// (Param::trainable == false) are skipped, which is how fine-tuning Case 2
// trains only the last two layers.

#include <vector>

#include "vf/nn/layer.hpp"

namespace vf::nn {

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Bind to a parameter set. Must be called before step(); re-attaching
  /// resets all optimizer state.
  virtual void attach(const std::vector<Param>& params) = 0;

  /// Apply one update using the gradients currently held by the params.
  virtual void step() = 0;
};

class SgdOptimizer final : public Optimizer {
 public:
  explicit SgdOptimizer(double lr = 0.01) : lr_(lr) {}
  void attach(const std::vector<Param>& params) override { params_ = params; }
  void step() override;

 private:
  double lr_;
  std::vector<Param> params_;
};

/// Complete Adam moment state. Exported into checkpoints so a resumed run
/// continues the exact bias-corrected update sequence — dropping m/v/t on
/// restart would perturb the first post-resume steps and break bit-identical
/// resume.
struct AdamState {
  long t = 0;              // step counter for bias correction
  std::vector<Matrix> m;   // first-moment estimates, parallel to params
  std::vector<Matrix> v;   // second-moment estimates
};

class AdamOptimizer final : public Optimizer {
 public:
  explicit AdamOptimizer(double lr = 1e-3, double beta1 = 0.9,
                         double beta2 = 0.999, double eps = 1e-8)
      : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}

  void attach(const std::vector<Param>& params) override;
  void step() override;

  /// Copy out the moment state for checkpointing. Requires attach().
  [[nodiscard]] AdamState export_state() const;

  /// Restore moment state exported from an identically-shaped parameter
  /// set. Must be called after attach(); throws std::runtime_error when the
  /// state's shapes do not match the attached params.
  void import_state(AdamState state);

  [[nodiscard]] double learning_rate() const { return lr_; }
  void set_learning_rate(double lr) { lr_ = lr; }

 private:
  double lr_, beta1_, beta2_, eps_;
  std::vector<Param> params_;
  std::vector<Matrix> m_;  // first-moment estimates, parallel to params_
  std::vector<Matrix> v_;  // second-moment estimates
  long t_ = 0;             // step counter for bias correction
};

}  // namespace vf::nn
