#pragma once
// Minibatch training loop.
//
// Implements the paper's regime: shuffled minibatches, MSE loss, Adam at
// lr = 1e-3, a fixed epoch budget (500 for full training, ~10 for Case-1
// fine-tuning, 300-500 for Case-2). Records the per-epoch loss history that
// Fig 12 plots.

#include <cstdint>
#include <functional>
#include <vector>

#include "vf/nn/loss.hpp"
#include "vf/nn/network.hpp"
#include "vf/nn/optimizer.hpp"

namespace vf::nn {

enum class LrSchedule {
  Constant,  // the paper's fixed Adam learning rate
  Cosine,    // cosine decay to lr_floor over the epoch budget
};

struct TrainOptions {
  int epochs = 500;
  std::size_t batch_size = 1024;
  double learning_rate = 1e-3;
  LrSchedule schedule = LrSchedule::Constant;
  /// Final learning-rate fraction for the cosine schedule.
  double lr_floor = 0.05;
  std::uint64_t shuffle_seed = 42;
  /// Fraction of rows held out for validation loss reporting (0 disables).
  double validation_fraction = 0.0;
  /// Stop early when training loss fails to improve by more than
  /// `min_improvement` for `patience` consecutive epochs (0 disables).
  int patience = 0;
  double min_improvement = 1e-7;
  /// Invoked after every epoch with (epoch, train_loss, val_loss);
  /// val_loss is NaN when no validation split is configured.
  std::function<void(int, double, double)> on_epoch;
  /// Directory for periodic crash-safe checkpoints (empty disables). See
  /// vf/nn/checkpoint.hpp for the VFCK format and retention policy.
  std::string checkpoint_dir;
  /// Write a checkpoint every this many completed epochs.
  int checkpoint_every = 1;
  /// Retain at most this many checkpoints (oldest pruned first).
  int checkpoint_keep = 3;
  /// Resume from the newest intact checkpoint in checkpoint_dir before
  /// training (fresh run when none exists). A resumed run continues
  /// bit-identically to an uninterrupted one: weights, Adam moments, the
  /// shuffle RNG, and the loss history are all restored.
  bool resume = false;
};

struct TrainHistory {
  std::vector<double> train_loss;  // one entry per completed epoch
  std::vector<double> val_loss;    // empty when validation_fraction == 0
  double seconds = 0.0;
  int epochs_run = 0;
  /// Completed-epoch count restored from a checkpoint; -1 for a fresh run.
  int resumed_from_epoch = -1;
};

class Trainer {
 public:
  explicit Trainer(TrainOptions options = TrainOptions{});

  /// Train `net` to map rows of X to rows of Y. X and Y must have equal row
  /// counts. Returns the loss history.
  TrainHistory fit(Network& net, const Matrix& X, const Matrix& Y) const;

  [[nodiscard]] const TrainOptions& options() const { return options_; }

 private:
  TrainOptions options_;
};

/// Single evaluation helper: mean MSE of net's predictions against Y.
double evaluate_mse(Network& net, const Matrix& X, const Matrix& Y,
                    std::size_t batch_size = 4096);

}  // namespace vf::nn
