#pragma once
// Fully connected (dense) layer: y = x W + b.

#include <cstdint>

#include "vf/nn/layer.hpp"

namespace vf::nn {

class DenseLayer final : public Layer {
 public:
  /// He-normal weight initialisation (suits the ReLU stack the paper uses);
  /// biases start at zero. `seed` makes initialisation reproducible.
  DenseLayer(std::size_t in, std::size_t out, std::uint64_t seed);

  /// Uninitialised layer for the deserializer.
  DenseLayer(std::size_t in, std::size_t out);

  [[nodiscard]] std::string kind() const override { return "dense"; }
  void forward(const Matrix& input, Matrix& output) override;
  void backward(const Matrix& grad_output, Matrix& grad_input) override;
  std::vector<Param> params() override;
  void zero_grad() override;
  [[nodiscard]] std::size_t output_size(std::size_t) const override {
    return weights_.cols();
  }

  [[nodiscard]] std::size_t in_features() const { return weights_.rows(); }
  [[nodiscard]] std::size_t out_features() const { return weights_.cols(); }

  [[nodiscard]] Matrix& weights() { return weights_; }
  [[nodiscard]] const Matrix& weights() const { return weights_; }
  [[nodiscard]] Matrix& bias() { return bias_; }
  [[nodiscard]] const Matrix& bias() const { return bias_; }

 private:
  Matrix weights_;   // (in x out)
  Matrix bias_;      // (1 x out)
  Matrix w_grad_;
  Matrix b_grad_;
  Matrix input_;     // cached forward input
};

}  // namespace vf::nn
