#pragma once
// Crash-safe training checkpoints ("VFCK").
//
// A checkpoint captures everything Trainer::fit needs to continue a run
// bit-identically after a crash: the network weights, the full Adam moment
// state (m, v, step counter), the shuffle RNG state, the current cumulative
// row permutations, the loss history, and the early-stopping counters.
// Checkpoints are written through the atomic-write helper (temp -> fsync ->
// rename) with per-section CRC32 framing, so a SIGKILL mid-write can never
// leave a checkpoint that loads as garbage — torn files throw at load and
// load_latest() falls back to the previous intact one.
//
// File layout (little-endian):
//   "VFCK" | u32 version | crc_section(trainer state) |
//   crc_section(network bytes, see serialize.hpp) | crc_section(adam state)
//
// Files are named ckpt_NNNNNN.vfck (NNNNNN = completed-epoch count) inside
// the checkpoint directory; keep_last bounds how many are retained.

#include <string>
#include <vector>

#include "vf/nn/network.hpp"
#include "vf/nn/optimizer.hpp"
#include "vf/util/rng.hpp"

namespace vf::nn {

/// Everything beyond the weights that Trainer::fit must restore to resume a
/// run exactly where it stopped.
struct TrainerState {
  int epoch = 0;  ///< completed-epoch count; resume re-enters at this index
  double best = 0.0;  ///< best train loss seen (early stopping)
  int stall = 0;      ///< consecutive epochs without improvement
  vf::util::RngState rng;
  std::vector<std::size_t> order;      ///< cumulative training permutation
  std::vector<std::size_t> val_order;  ///< fixed validation rows
  std::vector<double> train_loss;
  std::vector<double> val_loss;
  AdamState adam;
};

class Checkpointer {
 public:
  struct Options {
    std::string dir;    ///< checkpoint directory (created on first write)
    int every = 1;      ///< write every N completed epochs
    int keep_last = 3;  ///< retain at most this many checkpoints (>=1)
  };

  explicit Checkpointer(Options options);

  /// True when `epoch` completed epochs is a checkpoint boundary.
  [[nodiscard]] bool due(int epoch) const;

  /// Atomically write a checkpoint for `state.epoch` completed epochs and
  /// prune checkpoints beyond keep_last. Throws std::runtime_error on I/O
  /// failure (the previous checkpoints are left intact).
  void write(const Network& net, const TrainerState& state) const;

  [[nodiscard]] const Options& options() const { return options_; }

  /// Checkpoint paths in `dir`, sorted ascending by epoch. Missing or
  /// unreadable directories yield an empty list.
  static std::vector<std::string> list(const std::string& dir);

  /// Load one checkpoint file. Throws std::runtime_error on corruption.
  static void load(const std::string& path, Network& net,
                   TrainerState& state);

  /// Load the newest checkpoint that passes integrity checks, skipping
  /// corrupt ones. Returns false when no valid checkpoint exists.
  static bool load_latest(const std::string& dir, Network& net,
                          TrainerState& state);

 private:
  Options options_;
};

}  // namespace vf::nn
