#pragma once
// Compute-kernel layer under vf::nn: cache-blocked, packed-panel GEMM with a
// register-tiled SIMD micro-kernel, plus the fused dense-layer forward used
// by the streaming inference path.
//
// Layout (BLIS-style):
//   - the k dimension is split into Kc panels, the m dimension into Mc
//     blocks; for each (Kc, Nc) slice the B panel is packed once into
//     Kc x NR micro-panels and each thread packs its Mc x Kc block of A
//     into MR x Kc micro-panels (packing also absorbs the A^T / B^T
//     operand layouts, so all three GEMM variants share one micro-kernel);
//   - the micro-kernel accumulates an MR x NR register tile with
//     `#pragma omp simd` FMA chains over the packed panels, then writes the
//     tile back once — the naive kernels instead re-streamed the whole B
//     panel from L2/L3 for every output row;
//   - the k-summation order per output element matches the naive triple
//     loop; the only deviation is that partial sums are re-associated at
//     Kc-panel boundaries (and FMA contraction may differ), so results
//     agree with the reference kernels to a few ulps (~1e-13 relative),
//     not necessarily bit-for-bit.
//
// The fused forward applies `+ bias` and optionally ReLU inside the tile
// write-back of the last Kc panel, eliminating the separate full passes
// over the output that add_row_vector + ReluLayer::forward used to make.

#include "vf/nn/matrix.hpp"

namespace vf::nn {

/// Fused inference dense layer: out = act(input . weights + bias) with
/// act = ReLU when `relu`, identity otherwise. Equivalent to
/// gemm + add_row_vector + elementwise ReLU up to GEMM rounding (see the
/// header note). `out` must not alias `input`.
void fused_dense_forward(const Matrix& input, const Matrix& weights,
                         const Matrix& bias, bool relu, Matrix& out);

// Naive reference kernels (the pre-kernel-layer implementations), retained
// for the equivalence test suite and as the comparison baseline in
// bench/micro_kernels.
void gemm_naive(const Matrix& a, const Matrix& b, Matrix& out);
void gemm_at_b_naive(const Matrix& a, const Matrix& b, Matrix& out);
void gemm_a_bt_naive(const Matrix& a, const Matrix& b, Matrix& out);

namespace detail {

/// Blocked GEMM core: C(m x n, leading dim ldc) = op(A) . op(B), where
/// op(A) is A(m x k) row-major with leading dimension lda, or, when
/// `a_trans`, the transpose of A stored (k x m); likewise op(B) is
/// B(k x n) or, when `b_trans`, the transpose of B stored (n x k).
/// C is fully overwritten. When `bias` is non-null it is a length-n row
/// added to every output row; `relu` clamps negatives, both applied in the
/// final-panel write-back.
void gemm_blocked(std::size_t m, std::size_t n, std::size_t k,
                  const double* a, std::size_t lda, bool a_trans,
                  const double* b, std::size_t ldb, bool b_trans, double* c,
                  std::size_t ldc, const double* bias, bool relu);

}  // namespace detail

}  // namespace vf::nn
