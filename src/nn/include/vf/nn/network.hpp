#pragma once
// Sequential network container.
//
// Holds an ordered stack of layers, runs forward/backward through them, and
// exposes the helpers the reconstruction core needs: an MLP factory matching
// the paper's architecture, and trainability toggles implementing the two
// fine-tuning regimes of Fig 5.

#include <cstdint>
#include <memory>
#include <vector>

#include "vf/nn/activation.hpp"
#include "vf/nn/dense.hpp"
#include "vf/nn/layer.hpp"

namespace vf::nn {

/// Reusable ping-pong activation buffers for Network::infer. Thread-safe
/// streaming inference keeps one InferScratch per thread; the buffers grow
/// to (batch x widest-layer) once and are reused across calls.
struct InferScratch {
  Matrix a;
  Matrix b;
  /// Total doubles currently held (used by scratch-memory accounting).
  [[nodiscard]] std::size_t element_count() const {
    return a.size() + b.size();
  }
};

class Network {
 public:
  Network() = default;
  Network(Network&&) = default;
  Network& operator=(Network&&) = default;

  /// Build the paper-style MLP: dense(in->h1) relu dense(h1->h2) relu ...
  /// dense(h_last->out), i.e. ReLU after every hidden layer, linear output.
  static Network mlp(std::size_t inputs, const std::vector<std::size_t>& hidden,
                     std::size_t outputs, std::uint64_t seed);

  void add(std::unique_ptr<Layer> layer);

  [[nodiscard]] std::size_t layer_count() const { return layers_.size(); }
  [[nodiscard]] Layer& layer(std::size_t i) { return *layers_[i]; }
  [[nodiscard]] const Layer& layer(std::size_t i) const { return *layers_[i]; }

  /// Forward pass for a whole batch.
  void forward(const Matrix& input, Matrix& output);

  /// Inference-only forward pass: dense layers run the fused
  /// GEMM+bias(+ReLU) kernel — a dense layer immediately followed by a ReLU
  /// collapses into one pass over the output tile — and nothing is cached
  /// for backward. Const and thread-safe: all mutable state lives in the
  /// caller's `scratch`, so concurrent callers each bring their own.
  /// `output` must not alias `input`.
  void infer(const Matrix& input, Matrix& output, InferScratch& scratch) const;

  /// Backward pass for the most recent forward() batch; accumulates
  /// parameter gradients in the layers.
  void backward(const Matrix& grad_output);

  /// All parameter handles, in layer order.
  [[nodiscard]] std::vector<Param> params();

  void zero_grad();

  /// Number of scalar parameters.
  [[nodiscard]] std::size_t parameter_count() const;

  /// Mark every layer trainable / frozen (fine-tuning Case 1 uses all-true).
  void set_all_trainable(bool trainable);

  /// Fine-tuning Case 2: freeze everything except the last `n` dense
  /// layers. Activations carry no parameters and are unaffected.
  void set_trainable_last_dense(int n);

  /// Count of dense layers.
  [[nodiscard]] int dense_count() const;

  /// Deep copy (weights and trainability, not cached activations).
  [[nodiscard]] Network clone() const;

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
  // Ping-pong buffers reused across forward/backward calls.
  std::vector<Matrix> acts_;
  std::vector<Matrix> grads_;
};

}  // namespace vf::nn
