#pragma once
// Quantized inference path: reduced-precision packed-GEMM forward pass.
//
// The reconstruction MLP is inference-bound once trained: ~370k FLOPs per
// void point through the paper's 23-512-256-128-64-16-4 stack. This module
// trades weight/activation precision for arithmetic density. Weights are
// quantized ONCE into pre-packed micro-panels (fp32, fp16, or int8 + per-
// output-column scales) and the forward pass runs a single-precision
// register-tiled GEMM — twice the SIMD lanes of the fp64 path — with the
// bias+ReLU epilogue fused, converting back to double only at the output.
//
// Activations are staged in fp32 and, for the Fp16/Int8 policies, snapped
// onto the storage grid between layers (round-trip through the fp16 codec /
// per-tensor symmetric int8 grid), so results match what dedicated
// half/int8 hardware units would produce up to fp32 accumulation order.
// Accumulation is always fp32 (exact for int8 products at the model's layer
// widths: 512 * 127^2 < 2^24).
//
// Quality is enforced by the SNR-regression guardrail suite
// (tests/core_quant_snr_test.cpp): a quantized reconstruction must stay
// within a fixed delta of the fp64 path's paper-metric SNR on every
// dataset, so quantization can never silently degrade reconstruction.
//
// The fp16 codec is a portable bit-twiddling implementation (IEEE 754
// binary16, round-to-nearest-even) — no _Float16 dependency, so the path
// behaves identically on compilers/targets without native half support.

#include <cstdint>
#include <string>
#include <vector>

#include "vf/nn/matrix.hpp"
#include "vf/nn/network.hpp"
#include "vf/util/aligned.hpp"

namespace vf::nn {

/// Inference precision policy. None = the fp64 Network::infer path.
enum class QuantPolicy : std::uint8_t { None = 0, Fp32 = 1, Fp16 = 2,
                                        Int8 = 3 };

[[nodiscard]] const char* to_string(QuantPolicy policy);

/// Parse "none" / "fp32" / "fp16" / "int8" (throws std::invalid_argument).
[[nodiscard]] QuantPolicy quant_policy_from_name(const std::string& name);

/// IEEE 754 binary16 codec, round-to-nearest-even, with inf/NaN and
/// subnormal handling. Exposed for the unit tests.
[[nodiscard]] std::uint16_t fp16_encode(float value);
[[nodiscard]] float fp16_decode(std::uint16_t h);

/// Per-thread scratch for QuantizedNetwork::infer: fp32 activation
/// ping-pong buffers plus the per-layer fp32 decode of fp16/int8 weight
/// panels. The decode is cached across infer() calls keyed on the network's
/// generation id, so a long-lived scratch (streaming tiles, serve workers)
/// pays the decode once per quantized model, not once per chunk.
struct QuantScratch {
  vf::util::AlignedVector<float> act_a;
  vf::util::AlignedVector<float> act_b;
  std::vector<vf::util::AlignedVector<float>> wdec;
  std::uint64_t wdec_generation = 0;

  /// Scratch footprint in double-equivalents (peak-memory accounting).
  [[nodiscard]] std::size_t element_count() const {
    std::size_t floats = act_a.capacity() + act_b.capacity();
    for (const auto& w : wdec) floats += w.capacity();
    return (floats + 1) / 2;
  }
};

/// An immutable reduced-precision copy of a dense/ReLU Network, weights
/// pre-packed into the panel layout the fp32 micro-kernel consumes.
/// Queries are const and thread-safe; each caller brings a QuantScratch.
class QuantizedNetwork {
 public:
  QuantizedNetwork() = default;

  /// Quantize `net` (must be a dense/ReLU stack, e.g. Network::mlp).
  /// Throws std::invalid_argument on unsupported layers or policy None.
  QuantizedNetwork(const Network& net, QuantPolicy policy);

  [[nodiscard]] bool empty() const { return layers_.empty(); }
  [[nodiscard]] QuantPolicy policy() const { return policy_; }
  [[nodiscard]] std::size_t layer_count() const { return layers_.size(); }

  /// Resident bytes of the packed weights/biases (model-registry budget).
  [[nodiscard]] std::size_t memory_bytes() const;

  /// Process-unique id of this quantization (0 = default-constructed).
  /// QuantScratch keys its weight-decode cache on it; a pointer key would
  /// go stale when a network is rebuilt in place (serve model eviction).
  [[nodiscard]] std::uint64_t generation() const { return generation_; }

  /// Forward pass: `input` (n x in_features, double) -> `output` (n x
  /// out_features, double). Rows stream through in `row_batch` chunks so
  /// the fp32 staging stays cache-sized. `output` must not alias `input`.
  void infer(const Matrix& input, Matrix& output, QuantScratch& scratch,
             std::size_t row_batch = 8192) const;

 private:
  struct QLayer {
    std::size_t in = 0;
    std::size_t out = 0;
    std::size_t out_padded = 0;  // out rounded up to the panel width
    bool relu = false;
    // Exactly one of wf / wh / wq holds the packed panels per policy.
    vf::util::AlignedVector<float> wf;
    vf::util::AlignedVector<std::uint16_t> wh;
    vf::util::AlignedVector<std::int8_t> wq;
    vf::util::AlignedVector<float> scale;  // int8 per-output-column scales
    vf::util::AlignedVector<float> bias;
  };

  std::vector<QLayer> layers_;
  QuantPolicy policy_ = QuantPolicy::None;
  std::size_t max_width_ = 0;   // widest staged activation row
  std::uint64_t generation_ = 0;
};

}  // namespace vf::nn
