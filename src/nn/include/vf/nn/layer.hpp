#pragma once
// Layer abstraction for the sequential MLP.
//
// A layer maps a (batch x in) matrix to (batch x out) in forward(), and in
// backward() consumes dLoss/dOutput, accumulates its parameter gradients,
// and returns dLoss/dInput. Layers expose their parameters as Param handles
// so the optimizer and the serializer stay layer-agnostic.
//
// `trainable` implements the paper's fine-tuning Case 2 (§III, Fig 5):
// freezing all but the last two layers. Frozen layers still propagate input
// gradients (deeper layers may be trainable) but skip parameter-gradient
// accumulation and are skipped by the optimizer.

#include <memory>
#include <string>
#include <vector>

#include "vf/nn/matrix.hpp"

namespace vf::nn {

/// A view of one trainable tensor: value + gradient accumulator.
struct Param {
  Matrix* value = nullptr;
  Matrix* grad = nullptr;
  bool trainable = true;
};

class Layer {
 public:
  virtual ~Layer() = default;

  /// Layer type tag used by the serializer ("dense", "relu", ...).
  [[nodiscard]] virtual std::string kind() const = 0;

  /// Forward pass; must cache whatever backward needs.
  virtual void forward(const Matrix& input, Matrix& output) = 0;

  /// Backward pass for the most recent forward() batch.
  virtual void backward(const Matrix& grad_output, Matrix& grad_input) = 0;

  /// Parameter handles (empty for activations).
  virtual std::vector<Param> params() { return {}; }

  /// Reset accumulated parameter gradients to zero.
  virtual void zero_grad() {}

  [[nodiscard]] bool trainable() const { return trainable_; }
  void set_trainable(bool t) { trainable_ = t; }

  /// Output width given an input width (for shape validation / summaries).
  [[nodiscard]] virtual std::size_t output_size(std::size_t input) const {
    return input;
  }

 protected:
  bool trainable_ = true;
};

}  // namespace vf::nn
