#pragma once
// Dense row-major matrix with the handful of BLAS-like kernels the MLP
// engine needs. This replaces the GPU tensor library the paper trained on
// (see DESIGN.md substitutions): the model is a tiny 5-hidden-layer MLP, so
// a cache-blocked CPU GEMM is entirely adequate and keeps the maths
// identical to the paper's.
//
// The GEMM entry points below dispatch to the tiled/packed kernel layer in
// kernels.hpp (Mc/Kc blocked, 8x8 register-tiled SIMD micro-kernel).
// Storage is 64-byte aligned so the micro-kernel's vector accesses never
// straddle cache lines.

#include <cstddef>
#include <span>

#include "vf/util/aligned.hpp"
#include "vf/util/contract.hpp"

namespace vf::nn {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }

  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const {
    VF_BOUNDS_CHECK(r, rows_);
    VF_BOUNDS_CHECK(c, cols_);
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) {
    VF_BOUNDS_CHECK(r, rows_);
    VF_BOUNDS_CHECK(c, cols_);
    return data_[r * cols_ + c];
  }

  [[nodiscard]] std::span<const double> data() const { return data_; }
  [[nodiscard]] std::span<double> data() { return data_; }
  [[nodiscard]] const double* row(std::size_t r) const {
    VF_BOUNDS_CHECK(r, rows_);
    return data_.data() + r * cols_;
  }
  [[nodiscard]] double* row(std::size_t r) {
    VF_BOUNDS_CHECK(r, rows_);
    return data_.data() + r * cols_;
  }

  void fill(double v);
  /// Zero every element in place (shape unchanged).
  void set_zero() { fill(0.0); }

  /// Reshape to (rows x cols). When the shape is unchanged this is a no-op
  /// and the existing contents are KEPT — callers that previously relied on
  /// resize() zero-filling a same-shaped buffer must call set_zero()
  /// explicitly. A shape change reallocates and zero-fills as before. This
  /// removes the alloc + memset churn of the per-minibatch resizes on the
  /// training and inference hot paths.
  void resize(std::size_t rows, std::size_t cols);

  /// Frobenius-norm squared (used by tests and gradient clipping).
  [[nodiscard]] double squared_norm() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  vf::util::AlignedVector<double> data_;
};

// out = a * b              (m x k) . (k x n) -> (m x n)
void gemm(const Matrix& a, const Matrix& b, Matrix& out);
// out = a^T * b            (k x m)^T . (k x n) -> (m x n)
void gemm_at_b(const Matrix& a, const Matrix& b, Matrix& out);
// out = a * b^T            (m x k) . (n x k)^T -> (m x n)
void gemm_a_bt(const Matrix& a, const Matrix& b, Matrix& out);

/// out(r, :) += bias for every row r.
void add_row_vector(Matrix& out, const Matrix& bias);

/// bias(0, :) = sum over rows of grad (bias gradient reduction).
void sum_rows(const Matrix& grad, Matrix& bias);

/// y = alpha * x + y, elementwise over equal-shaped matrices.
void axpy(double alpha, const Matrix& x, Matrix& y);

}  // namespace vf::nn
