#pragma once
// Binary network persistence ("VFNN" format).
//
// The temporal workflow (paper Experiment 2) stores pretrained models and
// reloads them for fine-tuning on later timesteps; Case 2 additionally
// stores only the last two dense layers per timestep. save_network /
// load_network handle the full model; save_dense_tail / load_dense_tail
// handle the partial Case-2 payload.

#include <string>

#include "vf/nn/network.hpp"

namespace vf::nn {

/// Serialize the full network (architecture + weights + trainability).
void save_network(const Network& net, const std::string& path);

/// Load a network saved with save_network.
Network load_network(const std::string& path);

/// Save only the last `n` dense layers' weights (Case-2 per-timestep delta).
void save_dense_tail(const Network& net, int n, const std::string& path);

/// Overwrite the last `n` dense layers of `net` with weights from `path`.
/// Shapes must match; throws std::runtime_error otherwise.
void load_dense_tail(Network& net, int n, const std::string& path);

}  // namespace vf::nn
