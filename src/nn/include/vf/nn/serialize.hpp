#pragma once
// Binary network persistence ("VFNN" format).
//
// The temporal workflow (paper Experiment 2) stores pretrained models and
// reloads them for fine-tuning on later timesteps; Case 2 additionally
// stores only the last two dense layers per timestep. save_network /
// load_network handle the full model; save_dense_tail / load_dense_tail
// handle the partial Case-2 payload.
//
// Format version 2 is crash-safe: files are written atomically
// (write-temp -> fsync -> rename, see vf/util/atomic_io.hpp) and every
// variable-length section — one per layer — carries a CRC32, so a torn
// write or a bit flip is rejected at load with std::runtime_error instead
// of being silently deserialised. Loaders consume the file exactly:
// trailing bytes after the payload are an error. Version-1 files (no
// checksums) are still readable, with the same exact-size discipline.

#include <string>

#include "vf/nn/network.hpp"

namespace vf::nn {

/// Serialize the full network (architecture + weights + trainability).
/// The write is atomic: on any failure `path` keeps its previous content.
void save_network(const Network& net, const std::string& path);

/// Load a network saved with save_network.
Network load_network(const std::string& path);

/// The v2 on-disk byte layout, in memory. The checkpoint format embeds
/// networks through these instead of touching the filesystem twice.
std::string network_to_bytes(const Network& net);
Network network_from_bytes(const std::string& bytes, const char* what);

/// Save only the last `n` dense layers' weights (Case-2 per-timestep delta).
void save_dense_tail(const Network& net, int n, const std::string& path);

/// Overwrite the last `n` dense layers of `net` with weights from `path`.
/// Shapes must match; throws std::runtime_error otherwise.
void load_dense_tail(Network& net, int n, const std::string& path);

}  // namespace vf::nn
