#pragma once
// Regression losses. The paper trains with mean squared error (§III-C);
// MAE is provided as a diagnostic.

#include "vf/nn/matrix.hpp"

namespace vf::nn {

class Loss {
 public:
  virtual ~Loss() = default;

  /// Scalar loss averaged over all elements of the batch.
  [[nodiscard]] virtual double value(const Matrix& prediction,
                                     const Matrix& target) const = 0;

  /// dLoss/dPrediction for the same averaging convention as value().
  virtual void gradient(const Matrix& prediction, const Matrix& target,
                        Matrix& grad) const = 0;
};

/// E = (1/N) * sum (y - yhat)^2 with N = batch * outputs.
class MseLoss final : public Loss {
 public:
  [[nodiscard]] double value(const Matrix& prediction,
                             const Matrix& target) const override;
  void gradient(const Matrix& prediction, const Matrix& target,
                Matrix& grad) const override;
};

/// E = (1/N) * sum |y - yhat|.
class MaeLoss final : public Loss {
 public:
  [[nodiscard]] double value(const Matrix& prediction,
                             const Matrix& target) const override;
  void gradient(const Matrix& prediction, const Matrix& target,
                Matrix& grad) const override;
};

}  // namespace vf::nn
