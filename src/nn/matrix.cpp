#include "vf/nn/matrix.hpp"

#include <algorithm>
#include <cstdint>
#include <stdexcept>

#include "vf/nn/kernels.hpp"
#include "vf/util/contract.hpp"
#include "vf/util/parallel.hpp"

namespace vf::nn {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {
  VF_REQUIRE(cols == 0 || rows * cols / cols == rows,
             "Matrix: rows * cols overflows size_t");
}

void Matrix::fill(double v) { std::fill(data_.begin(), data_.end(), v); }

void Matrix::resize(std::size_t rows, std::size_t cols) {
  VF_REQUIRE(cols == 0 || rows * cols / cols == rows,
             "Matrix::resize: rows * cols overflows size_t");
  if (rows == rows_ && cols == cols_) return;  // shape-preserving: keep data
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, 0.0);
}

double Matrix::squared_norm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return acc;
}

namespace {

void check(bool ok, const char* what) {
  if (!ok) throw std::invalid_argument(what);
}

// Parallelise only when the work amortises the fork.
constexpr std::int64_t kParallelWork = 1 << 14;

/// Grain so parallel_for stays serial until ~kParallelWork elements of work.
std::int64_t row_grain(std::size_t cols) {
  return std::max<std::int64_t>(
      1, kParallelWork / static_cast<std::int64_t>(std::max<std::size_t>(
             cols, 1)));
}

}  // namespace

void gemm(const Matrix& a, const Matrix& b, Matrix& out) {
  check(a.cols() == b.rows(), "gemm: inner dims mismatch");
  out.resize(a.rows(), b.cols());
  detail::gemm_blocked(a.rows(), b.cols(), a.cols(), a.data().data(),
                       a.cols(), /*a_trans=*/false, b.data().data(), b.cols(),
                       /*b_trans=*/false, out.data().data(), out.cols(),
                       nullptr, false);
}

void gemm_at_b(const Matrix& a, const Matrix& b, Matrix& out) {
  check(a.rows() == b.rows(), "gemm_at_b: outer dims mismatch");
  // a is stored (k x m); op(A) = a^T.
  out.resize(a.cols(), b.cols());
  detail::gemm_blocked(a.cols(), b.cols(), a.rows(), a.data().data(),
                       a.cols(), /*a_trans=*/true, b.data().data(), b.cols(),
                       /*b_trans=*/false, out.data().data(), out.cols(),
                       nullptr, false);
}

void gemm_a_bt(const Matrix& a, const Matrix& b, Matrix& out) {
  check(a.cols() == b.cols(), "gemm_a_bt: inner dims mismatch");
  // b is stored (n x k); op(B) = b^T.
  out.resize(a.rows(), b.rows());
  detail::gemm_blocked(a.rows(), b.rows(), a.cols(), a.data().data(),
                       a.cols(), /*a_trans=*/false, b.data().data(), b.cols(),
                       /*b_trans=*/true, out.data().data(), out.cols(),
                       nullptr, false);
}

void add_row_vector(Matrix& out, const Matrix& bias) {
  check(bias.rows() == 1 && bias.cols() == out.cols(),
        "add_row_vector: bias shape mismatch");
  const double* b = bias.row(0);
  const std::size_t cols = out.cols();
  vf::util::parallel_for(
      0, static_cast<std::int64_t>(out.rows()),
      [&](std::int64_t r) {
        double* orow = out.row(static_cast<std::size_t>(r));
#pragma omp simd
        for (std::size_t c = 0; c < cols; ++c) orow[c] += b[c];
      },
      row_grain(cols));
}

void sum_rows(const Matrix& grad, Matrix& bias) {
  bias.resize(1, grad.cols());
  bias.set_zero();
  double* b = bias.row(0);
  const std::size_t rows = grad.rows(), cols = grad.cols();
  // Parallelise over disjoint column chunks: each thread owns a slice of
  // the output row and scans every input row's contiguous segment for it,
  // so no reduction combine step is needed.
  constexpr std::int64_t kChunk = 64;
  const auto nchunks =
      (static_cast<std::int64_t>(cols) + kChunk - 1) / kChunk;
  const std::int64_t grain =
      static_cast<std::int64_t>(rows * cols) < kParallelWork ? nchunks + 1
                                                             : 1;
  vf::util::parallel_for(
      0, nchunks,
      [&](std::int64_t ch) {
        const std::size_t c0 = static_cast<std::size_t>(ch) * kChunk;
        const std::size_t c1 =
            std::min(cols, c0 + static_cast<std::size_t>(kChunk));
        for (std::size_t r = 0; r < rows; ++r) {
          const double* grow = grad.row(r);
#pragma omp simd
          for (std::size_t c = c0; c < c1; ++c) b[c] += grow[c];
        }
      },
      grain);
}

void axpy(double alpha, const Matrix& x, Matrix& y) {
  check(x.rows() == y.rows() && x.cols() == y.cols(), "axpy: shape mismatch");
  const double* xd = x.data().data();
  double* yd = y.data().data();
  const auto n = static_cast<std::int64_t>(x.size());
  constexpr std::int64_t kChunk = 4096;
  const std::int64_t nchunks = (n + kChunk - 1) / kChunk;
  const std::int64_t grain = n < kParallelWork ? nchunks + 1 : 1;
  vf::util::parallel_for(
      0, nchunks,
      [&](std::int64_t ch) {
        const std::int64_t i0 = ch * kChunk;
        const std::int64_t i1 = std::min(n, i0 + kChunk);
#pragma omp simd
        for (std::int64_t i = i0; i < i1; ++i) yd[i] += alpha * xd[i];
      },
      grain);
}

}  // namespace vf::nn
