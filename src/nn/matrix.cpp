#include "vf/nn/matrix.hpp"

#include <cassert>
#include <stdexcept>

#include "vf/util/parallel.hpp"

namespace vf::nn {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

void Matrix::fill(double v) { std::fill(data_.begin(), data_.end(), v); }

void Matrix::resize(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, 0.0);
}

double Matrix::squared_norm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return acc;
}

namespace {
void check(bool ok, const char* what) {
  if (!ok) throw std::invalid_argument(what);
}
// Parallelise over rows only when the work amortises the fork.
constexpr std::size_t kParallelWork = 1 << 14;
}  // namespace

void gemm(const Matrix& a, const Matrix& b, Matrix& out) {
  check(a.cols() == b.rows(), "gemm: inner dims mismatch");
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  out.resize(m, n);
  auto body = [&](std::int64_t ri) {
    auto r = static_cast<std::size_t>(ri);
    double* orow = out.row(r);
    const double* arow = a.row(r);
    for (std::size_t kk = 0; kk < k; ++kk) {
      double av = arow[kk];
      if (av == 0.0) continue;
      const double* brow = b.row(kk);
      for (std::size_t c = 0; c < n; ++c) orow[c] += av * brow[c];
    }
  };
  vf::util::parallel_for(0, static_cast<std::int64_t>(m), body,
                         m * k * n < kParallelWork ? static_cast<std::int64_t>(m + 1) : 1);
}

void gemm_at_b(const Matrix& a, const Matrix& b, Matrix& out) {
  check(a.rows() == b.rows(), "gemm_at_b: outer dims mismatch");
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  out.resize(m, n);
  // out(m,n) = sum_k a(k,m) * b(k,n). Iterate k outermost so both inputs
  // are read row-contiguously; `out` (m*n, typically the weight-gradient
  // shape) stays cache-resident across the k accumulation.
  if (static_cast<std::size_t>(vf::util::thread_count()) > 1 &&
      m * k * n >= kParallelWork) {
    // Parallel: split output rows; each thread scans its slice of a's rows.
#pragma omp parallel for schedule(static)
    for (std::int64_t ri = 0; ri < static_cast<std::int64_t>(m); ++ri) {
      auto r = static_cast<std::size_t>(ri);
      double* orow = out.row(r);
      for (std::size_t kk = 0; kk < k; ++kk) {
        double av = a(kk, r);
        if (av == 0.0) continue;
        const double* brow = b.row(kk);
        for (std::size_t c = 0; c < n; ++c) orow[c] += av * brow[c];
      }
    }
    return;
  }
  for (std::size_t kk = 0; kk < k; ++kk) {
    const double* arow = a.row(kk);
    const double* brow = b.row(kk);
    for (std::size_t r = 0; r < m; ++r) {
      double av = arow[r];
      if (av == 0.0) continue;
      double* orow = out.row(r);
      for (std::size_t c = 0; c < n; ++c) orow[c] += av * brow[c];
    }
  }
}

void gemm_a_bt(const Matrix& a, const Matrix& b, Matrix& out) {
  check(a.cols() == b.cols(), "gemm_a_bt: inner dims mismatch");
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  out.resize(m, n);
  // Process four output columns per pass: one read of a's row feeds four
  // independent accumulation chains (better ILP than a single dot product).
  auto body = [&](std::int64_t ri) {
    auto r = static_cast<std::size_t>(ri);
    double* orow = out.row(r);
    const double* arow = a.row(r);
    std::size_t c = 0;
    for (; c + 4 <= n; c += 4) {
      const double* b0 = b.row(c);
      const double* b1 = b.row(c + 1);
      const double* b2 = b.row(c + 2);
      const double* b3 = b.row(c + 3);
      double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) {
        double av = arow[kk];
        acc0 += av * b0[kk];
        acc1 += av * b1[kk];
        acc2 += av * b2[kk];
        acc3 += av * b3[kk];
      }
      orow[c] = acc0;
      orow[c + 1] = acc1;
      orow[c + 2] = acc2;
      orow[c + 3] = acc3;
    }
    for (; c < n; ++c) {
      const double* brow = b.row(c);
      double acc = 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      orow[c] = acc;
    }
  };
  vf::util::parallel_for(0, static_cast<std::int64_t>(m), body,
                         m * k * n < kParallelWork ? static_cast<std::int64_t>(m + 1) : 1);
}

void add_row_vector(Matrix& out, const Matrix& bias) {
  check(bias.rows() == 1 && bias.cols() == out.cols(),
        "add_row_vector: bias shape mismatch");
  const double* b = bias.row(0);
  for (std::size_t r = 0; r < out.rows(); ++r) {
    double* orow = out.row(r);
    for (std::size_t c = 0; c < out.cols(); ++c) orow[c] += b[c];
  }
}

void sum_rows(const Matrix& grad, Matrix& bias) {
  bias.resize(1, grad.cols());
  double* b = bias.row(0);
  for (std::size_t r = 0; r < grad.rows(); ++r) {
    const double* grow = grad.row(r);
    for (std::size_t c = 0; c < grad.cols(); ++c) b[c] += grow[c];
  }
}

void axpy(double alpha, const Matrix& x, Matrix& y) {
  check(x.rows() == y.rows() && x.cols() == y.cols(), "axpy: shape mismatch");
  auto xd = x.data();
  auto yd = y.data();
  for (std::size_t i = 0; i < xd.size(); ++i) yd[i] += alpha * xd[i];
}

}  // namespace vf::nn
