#include "vf/nn/dense.hpp"

#include <cmath>

#include "vf/nn/kernels.hpp"
#include "vf/util/contract.hpp"
#include "vf/util/rng.hpp"

namespace vf::nn {

DenseLayer::DenseLayer(std::size_t in, std::size_t out, std::uint64_t seed)
    : DenseLayer(in, out) {
  vf::util::Rng rng(seed, 0x64656e73);
  double stddev = std::sqrt(2.0 / static_cast<double>(in));
  for (auto& w : weights_.data()) w = rng.gaussian(0.0, stddev);
}

DenseLayer::DenseLayer(std::size_t in, std::size_t out)
    : weights_(in, out), bias_(1, out), w_grad_(in, out), b_grad_(1, out) {}

void DenseLayer::forward(const Matrix& input, Matrix& output) {
  VF_REQUIRE(input.cols() == weights_.rows(),
             "DenseLayer::forward: input width != in_features");
  input_ = input;
  // Bias is fused into the GEMM tile write-back (no separate output pass);
  // the activation stays a distinct layer here because backward() needs the
  // pre-activation chain.
  fused_dense_forward(input, weights_, bias_, /*relu=*/false, output);
}

void DenseLayer::backward(const Matrix& grad_output, Matrix& grad_input) {
  VF_REQUIRE(grad_output.rows() == input_.rows() &&
                 grad_output.cols() == weights_.cols(),
             "DenseLayer::backward: grad shape != forward output shape");
  if (trainable_) {
    // dW = x^T . dy ; db = column sums of dy. Accumulate across the batch.
    Matrix wg, bg;
    gemm_at_b(input_, grad_output, wg);
    sum_rows(grad_output, bg);
    axpy(1.0, wg, w_grad_);
    axpy(1.0, bg, b_grad_);
  }
  // dx = dy . W^T — always needed so deeper (possibly trainable) layers
  // receive their gradients even when this layer is frozen.
  gemm_a_bt(grad_output, weights_, grad_input);
}

std::vector<Param> DenseLayer::params() {
  return {{&weights_, &w_grad_, trainable_}, {&bias_, &b_grad_, trainable_}};
}

void DenseLayer::zero_grad() {
  w_grad_.fill(0.0);
  b_grad_.fill(0.0);
}

}  // namespace vf::nn
