#include "vf/nn/trainer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <optional>
#include <stdexcept>
#include <utility>

#include "vf/nn/checkpoint.hpp"
#include "vf/obs/obs.hpp"
#include "vf/util/fault.hpp"
#include "vf/util/rng.hpp"
#include "vf/util/timer.hpp"

namespace vf::nn {

namespace {

/// Copy selected rows of `src` into a contiguous batch matrix.
void gather_rows(const Matrix& src, const std::vector<std::size_t>& order,
                 std::size_t begin, std::size_t end, Matrix& out) {
  out.resize(end - begin, src.cols());
  for (std::size_t r = begin; r < end; ++r) {
    const double* s = src.row(order[r]);
    double* d = out.row(r - begin);
    std::copy(s, s + src.cols(), d);
  }
}

}  // namespace

Trainer::Trainer(TrainOptions options) : options_(std::move(options)) {}

TrainHistory Trainer::fit(Network& net, const Matrix& X,
                          const Matrix& Y) const {
  if (X.rows() != Y.rows()) {
    throw std::invalid_argument("Trainer::fit: X/Y row mismatch");
  }
  if (X.rows() == 0) throw std::invalid_argument("Trainer::fit: empty data");

  VF_OBS_SPAN("fit");
  vf::util::Timer timer;  // vf-lint: allow(raw-timer) feeds TrainHistory
  vf::util::Rng rng(options_.shuffle_seed, 0x74726169);

  // Optional validation split off the tail of a fixed shuffle.
  std::vector<std::size_t> order(X.rows());
  std::iota(order.begin(), order.end(), 0u);
  rng.shuffle(order);
  auto val_rows = static_cast<std::size_t>(
      options_.validation_fraction * static_cast<double>(X.rows()));
  val_rows = std::min(val_rows, X.rows() - 1);
  std::vector<std::size_t> val_order(order.end() - static_cast<std::ptrdiff_t>(val_rows),
                                     order.end());
  order.resize(X.rows() - val_rows);

  AdamOptimizer opt(options_.learning_rate);
  MseLoss loss;

  TrainHistory hist;
  Matrix bx, by, pred, grad;
  double best = std::numeric_limits<double>::infinity();
  int stall = 0;
  int start_epoch = 0;

  std::optional<Checkpointer> ckpt;
  if (!options_.checkpoint_dir.empty()) {
    ckpt.emplace(Checkpointer::Options{options_.checkpoint_dir,
                                       options_.checkpoint_every,
                                       options_.checkpoint_keep});
  }

  // Resume replaces the freshly-initialised net and re-enters the epoch
  // loop with the exact shuffle/optimizer/loss state of the interrupted
  // run, so the continuation is bit-identical to never having stopped.
  std::optional<TrainerState> resumed;
  if (ckpt && options_.resume) {
    TrainerState st;
    if (Checkpointer::load_latest(options_.checkpoint_dir, net, st)) {
      resumed = std::move(st);
    }
  }
  if (resumed) {
    if (resumed->order.size() != order.size() ||
        resumed->val_order.size() != val_order.size()) {
      throw std::runtime_error(
          "Trainer::fit: checkpoint does not match this dataset/options");
    }
    for (std::size_t idx : resumed->order) {
      if (idx >= X.rows()) {
        throw std::runtime_error("Trainer::fit: checkpoint index out of range");
      }
    }
    rng.restore(resumed->rng);
    order = std::move(resumed->order);
    val_order = std::move(resumed->val_order);
    hist.train_loss = std::move(resumed->train_loss);
    hist.val_loss = std::move(resumed->val_loss);
    hist.epochs_run = resumed->epoch;
    hist.resumed_from_epoch = resumed->epoch;
    best = resumed->best;
    stall = resumed->stall;
    start_epoch = resumed->epoch;
  }
  opt.attach(net.params());
  if (resumed) opt.import_state(std::move(resumed->adam));

  const std::size_t bs = std::max<std::size_t>(options_.batch_size, 1);
  for (int epoch = start_epoch; epoch < options_.epochs; ++epoch) {
    VF_OBS_SPAN("epoch");
    VF_OBS_HIST_TIMER("nn.train.epoch_seconds");
    // Failpoint for kill-and-resume tests: dies between epochs, exactly
    // where a SIGKILL loses the least work.
    if (vf::util::fault::should_fail("trainer_epoch")) {
      throw std::runtime_error("Trainer::fit: injected epoch fault");
    }
    if (options_.schedule == LrSchedule::Cosine && options_.epochs > 1) {
      double u = static_cast<double>(epoch) / (options_.epochs - 1);
      double factor = options_.lr_floor +
                      (1.0 - options_.lr_floor) * 0.5 *
                          (1.0 + std::cos(M_PI * u));
      opt.set_learning_rate(options_.learning_rate * factor);
    }
    rng.shuffle(order);
    double epoch_loss = 0.0;
    std::size_t seen = 0;
    for (std::size_t begin = 0; begin < order.size(); begin += bs) {
      std::size_t end = std::min(begin + bs, order.size());
      gather_rows(X, order, begin, end, bx);
      gather_rows(Y, order, begin, end, by);
      net.zero_grad();
      net.forward(bx, pred);
      epoch_loss += loss.value(pred, by) * static_cast<double>(end - begin);
      seen += end - begin;
      loss.gradient(pred, by, grad);
      net.backward(grad);
      opt.step();
    }
    epoch_loss /= static_cast<double>(seen);
    hist.train_loss.push_back(epoch_loss);
    ++hist.epochs_run;
    VF_OBS_COUNT("nn.train.epochs", 1);
    VF_OBS_GAUGE("nn.train.last_loss", epoch_loss);

    double vloss = std::numeric_limits<double>::quiet_NaN();
    if (val_rows > 0) {
      Matrix vx, vy;
      gather_rows(X, val_order, 0, val_order.size(), vx);
      gather_rows(Y, val_order, 0, val_order.size(), vy);
      Matrix vpred;
      net.forward(vx, vpred);
      vloss = loss.value(vpred, vy);
      hist.val_loss.push_back(vloss);
    }
    if (options_.on_epoch) options_.on_epoch(epoch, epoch_loss, vloss);

    bool stop = false;
    if (options_.patience > 0) {
      if (epoch_loss < best - options_.min_improvement) {
        best = epoch_loss;
        stall = 0;
      } else if (++stall >= options_.patience) {
        stop = true;
      }
    }

    // Snapshot AFTER this epoch's rng/optimizer/history updates so a resumed
    // run re-enters the loop exactly where an uninterrupted one would be.
    // The final epoch (budget exhausted or early stop) is always persisted.
    if (ckpt && (ckpt->due(epoch + 1) || epoch + 1 == options_.epochs || stop)) {
      TrainerState st;
      st.epoch = epoch + 1;
      st.best = best;
      st.stall = stall;
      st.rng = rng.state();
      st.order = order;
      st.val_order = val_order;
      st.train_loss = hist.train_loss;
      st.val_loss = hist.val_loss;
      st.adam = opt.export_state();
      {
        VF_OBS_SPAN("checkpoint");
        VF_OBS_HIST_TIMER("nn.train.checkpoint_seconds");
        ckpt->write(net, st);
      }
      VF_OBS_COUNT("nn.train.checkpoints", 1);
    }
    if (stop) break;
  }
  hist.seconds = timer.seconds();
  return hist;
}

double evaluate_mse(Network& net, const Matrix& X, const Matrix& Y,
                    std::size_t batch_size) {
  if (X.rows() != Y.rows() || X.rows() == 0) {
    throw std::invalid_argument("evaluate_mse: bad shapes");
  }
  MseLoss loss;
  Matrix bx, by, pred;
  double acc = 0.0;
  for (std::size_t begin = 0; begin < X.rows(); begin += batch_size) {
    std::size_t end = std::min(begin + batch_size, X.rows());
    bx.resize(end - begin, X.cols());
    by.resize(end - begin, Y.cols());
    for (std::size_t r = begin; r < end; ++r) {
      std::copy(X.row(r), X.row(r) + X.cols(), bx.row(r - begin));
      std::copy(Y.row(r), Y.row(r) + Y.cols(), by.row(r - begin));
    }
    net.forward(bx, pred);
    acc += loss.value(pred, by) * static_cast<double>(end - begin);
  }
  return acc / static_cast<double>(X.rows());
}

}  // namespace vf::nn
