#include "vf/nn/quant.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include <omp.h>

#if defined(__F16C__)
#include <immintrin.h>
#endif

#include "vf/nn/dense.hpp"
#include "vf/obs/obs.hpp"
#include "vf/util/contract.hpp"
#include "vf/util/parallel.hpp"

namespace vf::nn {

const char* to_string(QuantPolicy policy) {
  switch (policy) {
    case QuantPolicy::None: return "none";
    case QuantPolicy::Fp32: return "fp32";
    case QuantPolicy::Fp16: return "fp16";
    case QuantPolicy::Int8: return "int8";
  }
  return "none";
}

QuantPolicy quant_policy_from_name(const std::string& name) {
  if (name == "none") return QuantPolicy::None;
  if (name == "fp32") return QuantPolicy::Fp32;
  if (name == "fp16") return QuantPolicy::Fp16;
  if (name == "int8") return QuantPolicy::Int8;
  throw std::invalid_argument("unknown quantization policy: " + name);
}

std::uint16_t fp16_encode(float value) {
  std::uint32_t x = 0;
  std::memcpy(&x, &value, sizeof(x));
  const auto sign = static_cast<std::uint16_t>((x >> 16) & 0x8000u);
  const std::uint32_t abs = x & 0x7fffffffu;
  if (abs >= 0x7f800000u) {  // inf / NaN (NaN keeps a quiet payload bit)
    return static_cast<std::uint16_t>(
        sign | 0x7c00u | (abs > 0x7f800000u ? 0x0200u : 0u));
  }
  const std::uint32_t exp32 = abs >> 23;
  if (exp32 >= 113) {  // normal half range: exponent >= 2^-14
    std::uint32_t out = ((exp32 - 112) << 10) | ((abs & 0x7fffffu) >> 13);
    const std::uint32_t rem = abs & 0x1fffu;
    // Round to nearest even; a mantissa carry correctly bumps the exponent
    // and saturates to inf at the top.
    if (rem > 0x1000u || (rem == 0x1000u && (out & 1u))) ++out;
    if (out >= 0x7c00u) out = 0x7c00u;
    return static_cast<std::uint16_t>(sign | out);
  }
  if (exp32 >= 102) {  // subnormal half: shift the implicit-1 mantissa down
    const std::uint32_t mant = (abs & 0x7fffffu) | 0x800000u;
    const std::uint32_t shift = 126 - exp32;  // in [14, 24]
    std::uint32_t out = mant >> shift;
    const std::uint32_t rem = mant & ((1u << shift) - 1u);
    const std::uint32_t half = 1u << (shift - 1u);
    if (rem > half || (rem == half && (out & 1u))) ++out;
    return static_cast<std::uint16_t>(sign | out);
  }
  return sign;  // underflow to signed zero
}

float fp16_decode(std::uint16_t h) {
  const std::uint32_t sign = static_cast<std::uint32_t>(h & 0x8000u) << 16;
  const std::uint32_t exp = (h >> 10) & 0x1fu;
  const std::uint32_t mant = h & 0x3ffu;
  std::uint32_t bits = 0;
  if (exp == 0) {
    if (mant == 0) {
      bits = sign;  // signed zero
    } else {
      // Subnormal: renormalise into the float format. After e shifts the
      // leading 1 sits at bit 10, so the value is 1.f x 2^(-14 - e) and
      // the float exponent field is 127 - 14 - e = 113 - e.
      std::uint32_t m = mant;
      std::uint32_t e = 0;
      while ((m & 0x400u) == 0) {
        m <<= 1;
        ++e;
      }
      bits = sign | ((113u - e) << 23) | ((m & 0x3ffu) << 13);
    }
  } else if (exp == 0x1fu) {
    bits = sign | 0x7f800000u | (mant << 13);
  } else {
    bits = sign | ((exp + 112u) << 23) | (mant << 13);
  }
  float out = 0.0f;
  std::memcpy(&out, &bits, sizeof(out));
  return out;
}

namespace {

// fp32 register tile: 8 x 32 floats = 16 full-width SIMD accumulators,
// mirroring the fp64 kernel's 8 x 16 geometry at twice the lanes. The MLP's
// inner dimensions (<= 512) fit one panel, so there is no Kc blocking: each
// tile accumulates the full dot product and fires the bias+ReLU epilogue in
// the same pass.
constexpr std::size_t QMR = 8;
constexpr std::size_t QNR = 32;
constexpr std::size_t QMC = 128;  // packed A row block (QMC x k floats)

// Below this many multiply-adds the fork/join cost dominates any speedup.
constexpr std::size_t kParallelWork = 1 << 15;

/// Pack rows [i0, i0+mc) of the row-major (m x k) activation block into
/// contiguous QMR x k micro-panels, zero-padding the row remainder.
void pack_a_f32(const float* a, std::size_t lda, std::size_t i0,
                std::size_t mc, std::size_t k, float* dst) {
  for (std::size_t ir = 0; ir < mc; ir += QMR) {
    const std::size_t mr = std::min(QMR, mc - ir);
    for (std::size_t i = 0; i < mr; ++i) {
      const float* src = a + (i0 + ir + i) * lda;
      for (std::size_t l = 0; l < k; ++l) dst[l * QMR + i] = src[l];
    }
    for (std::size_t i = mr; i < QMR; ++i) {
      for (std::size_t l = 0; l < k; ++l) dst[l * QMR + i] = 0.0f;
    }
    dst += k * QMR;
  }
}

void micro_kernel_f32(std::size_t k, const float* __restrict ap,
                      const float* __restrict bp, float* __restrict acc) {
  for (std::size_t l = 0; l < k; ++l) {
    const float* a = ap + l * QMR;
    const float* b = bp + l * QNR;
#pragma GCC unroll 8
    for (std::size_t i = 0; i < QMR; ++i) {
      const float av = a[i];
#pragma omp simd
      for (std::size_t j = 0; j < QNR; ++j) acc[i * QNR + j] += av * b[j];
    }
  }
}

void write_tile_f32(const float* acc, float* c, std::size_t ldc,
                    std::size_t mr, std::size_t nr, const float* bias,
                    bool relu) {
  if (mr == QMR && nr == QNR) {
    for (std::size_t i = 0; i < QMR; ++i) {
      float* crow = c + i * ldc;
#pragma omp simd
      for (std::size_t j = 0; j < QNR; ++j) {
        float v = acc[i * QNR + j] + bias[j];
        crow[j] = relu && v < 0.0f ? 0.0f : v;
      }
    }
    return;
  }
  for (std::size_t i = 0; i < mr; ++i) {
    float* crow = c + i * ldc;
    for (std::size_t j = 0; j < nr; ++j) {
      float v = acc[i * QNR + j] + bias[j];
      crow[j] = relu && v < 0.0f ? 0.0f : v;
    }
  }
}

/// C(m x n) = A(m x k, row-major) * Wpanels + bias, optional ReLU. Wpanels
/// is the pre-packed (k x QNR)-panel weight layout built at quantization.
void sgemm_panels(std::size_t m, std::size_t n, std::size_t k,
                  const float* a, const float* wpanels, const float* bias,
                  bool relu, float* c) {
  VF_OBS_COUNT("nn.quant.gemm_flops", 2 * m * n * k);
  const bool threads =
      vf::util::thread_count() > 1 && m * n * k >= kParallelWork;
  const auto ic_blocks = static_cast<std::int64_t>((m + QMC - 1) / QMC);
  // vf-par: per-thread-scratch — apack is thread-local; each ic-block
  // writes a disjoint row band of C; the packed weights are read-only.
#pragma omp parallel if (threads)
  {
    vf::util::AlignedVector<float> apack(QMC * k);
#pragma omp for schedule(static)
    for (std::int64_t icb = 0; icb < ic_blocks; ++icb) {
      const std::size_t ic = static_cast<std::size_t>(icb) * QMC;
      const std::size_t mc = std::min(QMC, m - ic);
      pack_a_f32(a, k, ic, mc, k, apack.data());
      for (std::size_t jr = 0; jr < n; jr += QNR) {
        const std::size_t nr = std::min(QNR, n - jr);
        const float* bp = wpanels + (jr / QNR) * k * QNR;
        for (std::size_t ir = 0; ir < mc; ir += QMR) {
          const std::size_t mr = std::min(QMR, mc - ir);
          const float* ap = apack.data() + (ir / QMR) * k * QMR;
          alignas(64) float acc[QMR * QNR] = {};
          micro_kernel_f32(k, ap, bp, acc);
          write_tile_f32(acc, c + (ic + ir) * n + jr, n, mr, nr, bias + jr,
                         relu);
        }
      }
    }
  }
}

/// Snap every value onto the fp16 grid (what a half-precision activation
/// buffer would hold). The hardware conversions (VCVTPS2PH/VCVTPH2PS with
/// round-to-nearest-even) are bit-identical to the portable codec; without
/// them the per-layer activation snap dominates the quantized forward pass.
void snap_fp16(float* v, std::size_t n) {
  std::size_t i = 0;
#if defined(__F16C__)
  for (; i + 8 <= n; i += 8) {
    const __m128i h =
        _mm256_cvtps_ph(_mm256_loadu_ps(v + i), _MM_FROUND_TO_NEAREST_INT);
    _mm256_storeu_ps(v + i, _mm256_cvtph_ps(h));
  }
#endif
  for (; i < n; ++i) v[i] = fp16_decode(fp16_encode(v[i]));
}

/// Decode a packed fp16 panel buffer to fp32.
void decode_fp16(const std::uint16_t* h, std::size_t n, float* out) {
  std::size_t i = 0;
#if defined(__F16C__)
  for (; i + 8 <= n; i += 8) {
    // vf-lint: allow(cast) unaligned SIMD load intrinsic takes __m128i*
    const auto* src = reinterpret_cast<const __m128i*>(h + i);
    _mm256_storeu_ps(out + i, _mm256_cvtph_ps(_mm_loadu_si128(src)));
  }
#endif
  for (; i < n; ++i) out[i] = fp16_decode(h[i]);
}

/// Snap every value onto a per-tensor symmetric int8 grid.
void snap_int8(float* v, std::size_t n) {
  float amax = 0.0f;
  for (std::size_t i = 0; i < n; ++i) amax = std::max(amax, std::fabs(v[i]));
  if (!(amax > 0.0f)) return;  // all-zero (or non-finite: leave for repair)
  const float step = amax / 127.0f;
  const float inv = 127.0f / amax;
#pragma omp simd
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = std::nearbyintf(v[i] * inv) * step;
  }
}

/// Monotone source for QuantizedNetwork::generation(); 0 stays reserved
/// for the default-constructed (empty) network.
std::atomic<std::uint64_t> g_quant_generation{0};

}  // namespace

QuantizedNetwork::QuantizedNetwork(const Network& net, QuantPolicy policy)
    : policy_(policy),
      generation_(g_quant_generation.fetch_add(1,
                                               std::memory_order_relaxed) +
                  1) {
  if (policy == QuantPolicy::None) {
    throw std::invalid_argument(
        "QuantizedNetwork: policy None means the fp64 path; nothing to build");
  }
  std::size_t i = 0;
  while (i < net.layer_count()) {
    const Layer& l = net.layer(i);
    if (l.kind() != "dense") {
      throw std::invalid_argument(
          "QuantizedNetwork: unsupported layer kind '" + l.kind() +
          "' (dense/relu stacks only)");
    }
    const auto& d = static_cast<const DenseLayer&>(l);
    QLayer q;
    q.in = d.in_features();
    q.out = d.out_features();
    q.out_padded = (q.out + QNR - 1) / QNR * QNR;
    if (i + 1 < net.layer_count() && net.layer(i + 1).kind() == "relu") {
      q.relu = true;
      ++i;
    }
    ++i;

    const Matrix& W = d.weights();
    q.bias.resize(q.out);
    for (std::size_t c = 0; c < q.out; ++c) {
      q.bias[c] = static_cast<float>(d.bias()(0, c));
    }
    const std::size_t panel_elems = q.in * q.out_padded;
    // Panel layout: jr-th panel holds columns [jr*QNR, (jr+1)*QNR) for all
    // k rows, row-major within the panel, zero-padded past `out`.
    auto panel_value = [&](std::size_t idx) -> double {
      const std::size_t panel = idx / (q.in * QNR);
      const std::size_t rem = idx % (q.in * QNR);
      const std::size_t krow = rem / QNR;
      const std::size_t col = panel * QNR + rem % QNR;
      return col < q.out ? W(krow, col) : 0.0;
    };
    switch (policy) {
      case QuantPolicy::Fp32: {
        q.wf.resize(panel_elems);
        for (std::size_t e = 0; e < panel_elems; ++e) {
          q.wf[e] = static_cast<float>(panel_value(e));
        }
        break;
      }
      case QuantPolicy::Fp16: {
        q.wh.resize(panel_elems);
        for (std::size_t e = 0; e < panel_elems; ++e) {
          q.wh[e] = fp16_encode(static_cast<float>(panel_value(e)));
        }
        break;
      }
      case QuantPolicy::Int8: {
        // Symmetric per-output-column scales preserve each neuron's dynamic
        // range independently (the standard weight-quantization granularity).
        q.scale.assign(q.out_padded, 1.0f);
        for (std::size_t c = 0; c < q.out; ++c) {
          double amax = 0.0;
          for (std::size_t krow = 0; krow < q.in; ++krow) {
            amax = std::max(amax, std::fabs(W(krow, c)));
          }
          q.scale[c] = amax > 0.0 ? static_cast<float>(amax / 127.0) : 1.0f;
        }
        q.wq.resize(panel_elems);
        for (std::size_t e = 0; e < panel_elems; ++e) {
          const std::size_t panel = e / (q.in * QNR);
          const std::size_t col = panel * QNR + e % QNR;
          const double s = q.scale[col];
          const double v = panel_value(e) / s;
          q.wq[e] = static_cast<std::int8_t>(
              std::clamp(std::lround(v), -127L, 127L));
        }
        break;
      }
      case QuantPolicy::None:
        break;  // unreachable (rejected above)
    }
    max_width_ = std::max({max_width_, q.in, q.out_padded});
    layers_.push_back(std::move(q));
  }
  if (layers_.empty()) {
    throw std::invalid_argument("QuantizedNetwork: empty network");
  }
}

std::size_t QuantizedNetwork::memory_bytes() const {
  std::size_t total = sizeof(*this);
  for (const auto& q : layers_) {
    total += q.wf.capacity() * sizeof(float) +
             q.wh.capacity() * sizeof(std::uint16_t) +
             q.wq.capacity() * sizeof(std::int8_t) +
             q.scale.capacity() * sizeof(float) +
             q.bias.capacity() * sizeof(float) + sizeof(QLayer);
  }
  return total;
}

void QuantizedNetwork::infer(const Matrix& input, Matrix& output,
                             QuantScratch& scratch,
                             std::size_t row_batch) const {
  VF_REQUIRE(&input != &output, "QuantizedNetwork::infer: output aliases");
  if (layers_.empty()) {
    throw std::logic_error("QuantizedNetwork::infer: empty network");
  }
  if (input.cols() != layers_.front().in) {
    throw std::invalid_argument(
        "QuantizedNetwork::infer: input width mismatch");
  }
  const std::size_t m_total = input.rows();
  const std::size_t out_cols = layers_.back().out;
  output.resize(m_total, out_cols);
  if (m_total == 0) return;
  VF_OBS_COUNT("nn.quant.infer_rows", m_total);
  row_batch = std::max<std::size_t>(1, row_batch);

  const std::size_t mb_cap = std::min(row_batch, m_total);
  scratch.act_a.resize(mb_cap * max_width_);
  scratch.act_b.resize(mb_cap * max_width_);

  // Decode the fp16/int8 weight panels to fp32 once per (scratch, network)
  // pairing — not once per row chunk. The cache is keyed on the network's
  // generation id, which survives in-place rebuilds (serve model eviction).
  if (policy_ != QuantPolicy::Fp32 &&
      scratch.wdec_generation != generation_) {
    scratch.wdec.resize(layers_.size());
    for (std::size_t li = 0; li < layers_.size(); ++li) {
      const QLayer& q = layers_[li];
      auto& dec = scratch.wdec[li];
      if (policy_ == QuantPolicy::Fp16) {
        dec.resize(q.wh.size());
        decode_fp16(q.wh.data(), q.wh.size(), dec.data());
      } else {
        dec.resize(q.wq.size());
        const std::size_t panel_stride = q.in * QNR;
        for (std::size_t e = 0; e < q.wq.size(); ++e) {
          const std::size_t col = e / panel_stride * QNR + e % QNR;
          dec[e] = static_cast<float>(q.wq[e]) * q.scale[col];
        }
      }
    }
    scratch.wdec_generation = generation_;
  }

  for (std::size_t b = 0; b < m_total; b += row_batch) {
    const std::size_t mb = std::min(row_batch, m_total - b);
    // Stage this chunk's rows to fp32 (and onto the policy's activation
    // grid — inputs are quantized exactly like hidden activations).
    float* cur = scratch.act_a.data();
    const std::size_t in0 = layers_.front().in;
    for (std::size_t r = 0; r < mb; ++r) {
      const double* src = input.row(b + r);
      float* dst = cur + r * in0;
#pragma omp simd
      for (std::size_t c = 0; c < in0; ++c) {
        dst[c] = static_cast<float>(src[c]);
      }
    }
    if (policy_ == QuantPolicy::Fp16) snap_fp16(cur, mb * in0);
    if (policy_ == QuantPolicy::Int8) snap_int8(cur, mb * in0);

    float* nxt = scratch.act_b.data();
    for (std::size_t li = 0; li < layers_.size(); ++li) {
      const QLayer& q = layers_[li];
      const float* wpanels = policy_ == QuantPolicy::Fp32
                                 ? q.wf.data()
                                 : scratch.wdec[li].data();
      sgemm_panels(mb, q.out, q.in, cur, wpanels, q.bias.data(), q.relu,
                   nxt);
      if (li + 1 < layers_.size()) {
        // Hidden activations live on the storage grid between layers.
        if (policy_ == QuantPolicy::Fp16) snap_fp16(nxt, mb * q.out);
        if (policy_ == QuantPolicy::Int8) snap_int8(nxt, mb * q.out);
        std::swap(cur, nxt);
      } else {
        for (std::size_t r = 0; r < mb; ++r) {
          const float* src = nxt + r * out_cols;
          double* dst = output.row(b + r);
#pragma omp simd
          for (std::size_t c = 0; c < out_cols; ++c) {
            dst[c] = static_cast<double>(src[c]);
          }
        }
      }
    }
  }
}

}  // namespace vf::nn
