#include "vf/nn/optimizer.hpp"

#include <cmath>
#include <stdexcept>

namespace vf::nn {

void SgdOptimizer::step() {
  for (auto& p : params_) {
    if (!p.trainable) continue;
    auto w = p.value->data();
    auto g = p.grad->data();
    for (std::size_t i = 0; i < w.size(); ++i) w[i] -= lr_ * g[i];
  }
}

void AdamOptimizer::attach(const std::vector<Param>& params) {
  params_ = params;
  m_.clear();
  v_.clear();
  m_.reserve(params.size());
  v_.reserve(params.size());
  for (const auto& p : params_) {
    m_.emplace_back(p.value->rows(), p.value->cols());
    v_.emplace_back(p.value->rows(), p.value->cols());
  }
  t_ = 0;
}

AdamState AdamOptimizer::export_state() const {
  if (params_.empty()) throw std::logic_error("AdamOptimizer: not attached");
  AdamState s;
  s.t = t_;
  s.m = m_;
  s.v = v_;
  return s;
}

void AdamOptimizer::import_state(AdamState state) {
  if (params_.empty()) throw std::logic_error("AdamOptimizer: not attached");
  if (state.m.size() != m_.size() || state.v.size() != v_.size()) {
    throw std::runtime_error(
        "AdamOptimizer::import_state: param count mismatch");
  }
  for (std::size_t i = 0; i < m_.size(); ++i) {
    if (state.m[i].rows() != m_[i].rows() ||
        state.m[i].cols() != m_[i].cols() ||
        state.v[i].rows() != v_[i].rows() ||
        state.v[i].cols() != v_[i].cols()) {
      throw std::runtime_error(
          "AdamOptimizer::import_state: moment shape mismatch");
    }
  }
  t_ = state.t;
  m_ = std::move(state.m);
  v_ = std::move(state.v);
}

void AdamOptimizer::step() {
  if (params_.empty()) throw std::logic_error("AdamOptimizer: not attached");
  ++t_;
  double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t pi = 0; pi < params_.size(); ++pi) {
    auto& p = params_[pi];
    if (!p.trainable) continue;
    auto w = p.value->data();
    auto g = p.grad->data();
    auto m = m_[pi].data();
    auto v = v_[pi].data();
    for (std::size_t i = 0; i < w.size(); ++i) {
      m[i] = beta1_ * m[i] + (1.0 - beta1_) * g[i];
      v[i] = beta2_ * v[i] + (1.0 - beta2_) * g[i] * g[i];
      double mhat = m[i] / bc1;
      double vhat = v[i] / bc2;
      w[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

}  // namespace vf::nn
