#pragma once
// Options structs for the reconstruction entry points.
//
// The reconstruction engines used to be configured through positional
// constructor arguments (tile sizes, repair ks) that drifted apart between
// FcnnReconstructor, BatchReconstructor, and the resilient path. Everything
// tunable now lives in one named-field struct consumed uniformly by the
// concrete engines and the vf::api facade; the old positional constructors
// remain as deprecated shims for one PR.

#include <cstddef>

#include "vf/nn/quant.hpp"
#include "vf/spatial/neighbor_index.hpp"

namespace vf::core {

struct ReconstructOptions {
  /// Rows per streaming inference tile (BatchReconstructor): per-thread
  /// scratch memory is O(tile_size), independent of the grid. Must match
  /// BatchReconstructor::kDefaultTile (static_assert'd there).
  std::size_t tile_size = 2048;

  /// Neighbour count for the per-point Shepard repair of non-finite
  /// network outputs (historically hard-wired to the feature stencil k).
  int repair_neighbors = 5;

  /// Inference precision. None runs the fp64 Network::infer path; Fp32 /
  /// Fp16 / Int8 run the packed single-precision GEMM over pre-quantized
  /// weights (see vf/nn/quant.hpp). Guarded by the SNR-regression suite.
  vf::nn::QuantPolicy quant = vf::nn::QuantPolicy::None;

  /// Neighbour index selection. Auto picks grid-hash for dense grid-sweep
  /// query workloads and the exact k-d tree for sparse probing (see
  /// vf/spatial/neighbor_index.hpp for the policy).
  vf::spatial::IndexKind index = vf::spatial::IndexKind::Auto;
};

}  // namespace vf::core
