#pragma once
// Options structs for the reconstruction entry points.
//
// The reconstruction engines used to be configured through positional
// constructor arguments (tile sizes, repair ks) that drifted apart between
// FcnnReconstructor, BatchReconstructor, and the resilient path. Everything
// tunable now lives in one named-field struct consumed uniformly by the
// concrete engines and the vf::api facade; the old positional constructors
// remain as deprecated shims for one PR.

#include <cstddef>

namespace vf::core {

struct ReconstructOptions {
  /// Rows per streaming inference tile (BatchReconstructor): per-thread
  /// scratch memory is O(tile_size), independent of the grid. Must match
  /// BatchReconstructor::kDefaultTile (static_assert'd there).
  std::size_t tile_size = 2048;

  /// Neighbour count for the per-point Shepard repair of non-finite
  /// network outputs (historically hard-wired to the feature stencil k).
  int repair_neighbors = 5;
};

}  // namespace vf::core
