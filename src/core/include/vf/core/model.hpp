#pragma once
// The trained reconstruction model: network + normalisation + metadata.
//
// An FcnnModel is what the in-situ workflow persists between timesteps
// (paper Experiment 2): the MLP weights plus the feature/target z-score
// constants fitted at pretraining time (applied identically forever after —
// fine-tuning updates weights only, keeping the model input/output space
// fixed).

#include <cstdint>
#include <string>

#include "vf/core/features.hpp"
#include "vf/nn/network.hpp"

namespace vf::core {

struct FcnnModel {
  vf::nn::Network net;
  Normalizer in_norm;
  Normalizer out_norm;
  /// True when the output layer includes the three gradient components.
  bool with_gradients = true;
  /// Provenance (dataset name, pretraining timestep) for logs.
  std::string dataset;
  double trained_timestep = 0.0;

  /// Predict de-normalised targets for raw (un-normalised) features.
  /// Returns an (n x 4) or (n x 1) matrix depending on with_gradients.
  vf::nn::Matrix predict(const vf::nn::Matrix& features,
                         std::size_t batch = 8192);

  /// Deep copy (Network is move-only, so copying must be explicit).
  [[nodiscard]] FcnnModel clone() const;

  /// Approximate resident size in bytes (weights + normaliser constants +
  /// metadata strings). The serve-layer ModelRegistry charges this against
  /// its byte budget when deciding LRU evictions.
  [[nodiscard]] std::size_t memory_bytes() const;

  /// Persist / restore the full model (network + normalisers + metadata).
  void save(const std::string& path) const;
  static FcnnModel load(const std::string& path);
};

}  // namespace vf::core
