#pragma once
// In-situ temporal pipeline: the deployment wrapper around pretrain /
// fine_tune / sample that a simulation code would link against.
//
// The workflow the paper targets (§III-D, Experiment 2):
//   while the simulation runs, each timestep's full data is briefly
//   resident. The pipeline (a) samples it down to the archival fraction,
//   (b) pretrains the FCNN on the first step and fine-tunes it on every
//   later one (Case 1, ~10 epochs — or Case 2, last two layers), and
//   (c) hands back the artefacts to archive: the sampled cloud plus either
//   the full model (first step) or the Case-2 weight delta.
//
// Post hoc, `reconstruct` rebuilds any archived step from its cloud.

#include <optional>
#include <vector>

#include "vf/core/fcnn.hpp"

namespace vf::core {

struct PipelineOptions {
  /// Archival sampling fraction per timestep.
  double archive_fraction = 0.03;
  /// Full-training configuration used at the first timestep.
  FcnnConfig pretrain_config;
  /// Fine-tuning mode + epochs for subsequent timesteps.
  FineTuneMode finetune_mode = FineTuneMode::FullNetwork;
  int finetune_epochs = 10;
  std::uint64_t seed = 1;
};

/// Per-timestep archive record.
struct TimestepArtifacts {
  int timestep = 0;
  vf::sampling::SampleCloud cloud;
  /// Training/fine-tuning seconds spent at this step.
  double train_seconds = 0.0;
  /// Final training loss at this step.
  double final_loss = 0.0;
};

class [[deprecated(
    "wire the in-situ loop through vf::api::Pipeline (vf/api/pipeline.hpp):"
    " it adds background fine-tune workers, crash-resumable checkpoints,"
    " hot-swap serving, and drift fallback on top of this synchronous"
    " wrapper")]] TemporalPipeline {
 public:
  explicit TemporalPipeline(PipelineOptions options);

  /// Ingest the next timestep's full-resolution data (in situ). Returns the
  /// artefacts to archive. The first call pretrains; later calls fine-tune.
  TimestepArtifacts ingest(const vf::field::ScalarField& truth);

  /// Number of timesteps ingested so far.
  [[nodiscard]] int steps() const { return steps_; }

  /// The current model (pretrained + all fine-tunes applied).
  [[nodiscard]] const FcnnModel& model() const;

  /// Post-hoc reconstruction of an archived cloud onto `grid` using the
  /// CURRENT model state. For bit-faithful per-step models, archive the
  /// model (or its Case-2 tail) alongside the cloud.
  [[nodiscard]] vf::field::ScalarField reconstruct(
      const vf::sampling::SampleCloud& cloud,
      const vf::field::UniformGrid3& grid);

  /// Degradation-accounting overload: scrubs unusable archived samples and
  /// repairs non-finite predictions per point, recording the decisions in
  /// `report` (see vf/core/report.hpp).
  [[nodiscard]] vf::field::ScalarField reconstruct(
      const vf::sampling::SampleCloud& cloud,
      const vf::field::UniformGrid3& grid, ReconstructReport& report);

 private:
  PipelineOptions options_;
  vf::sampling::ImportanceSampler sampler_;
  std::optional<FcnnModel> model_;
  int steps_ = 0;
};

}  // namespace vf::core
