#pragma once
// Feature engineering for the FCNN (paper §III-D, Fig 4).
//
// For every void location (grid point rejected by the sampler) we find the
// five nearest sampled points and assemble a 23-dimensional feature vector:
//
//   [ x1 y1 z1 v1  x2 y2 z2 v2  ...  x5 y5 z5 v5  xq yq zq ]
//
// i.e. coordinates + scalar value of each of the 5 nearest samples (20
// numbers) plus the void point's own coordinates (3 numbers). The training
// target is the 4-vector [scalar, d/dx, d/dy, d/dz] at the void location
// (gradients from central differences of the full-resolution timestep); the
// gradient outputs act as a regulariser (paper Fig 8) and can be disabled
// for the ablation.
//
// Features and targets are z-score normalised; the normalisation constants
// are part of the trained model and are applied identically at inference.

#include <cstdint>
#include <vector>

#include "vf/field/gradient.hpp"
#include "vf/field/scalar_field.hpp"
#include "vf/nn/matrix.hpp"
#include "vf/sampling/sample_cloud.hpp"
#include "vf/spatial/kdtree.hpp"
#include "vf/spatial/neighbor_index.hpp"
#include "vf/util/aligned.hpp"

namespace vf::core {

/// Number of nearest sampled points per feature vector (paper: 5).
inline constexpr int kNeighbors = 5;
/// Feature width: kNeighbors * (x,y,z,value) + void (x,y,z).
inline constexpr int kFeatureDim = kNeighbors * 4 + 3;
/// Target width with gradients: scalar + (dx, dy, dz).
inline constexpr int kTargetDimGrad = 4;
inline constexpr int kTargetDimScalar = 1;

/// Column-wise z-score normalisation constants.
struct Normalizer {
  std::vector<double> mean;
  std::vector<double> stddev;  // floored at a tiny epsilon

  /// Fit on the rows of `m`.
  static Normalizer fit(const vf::nn::Matrix& m);
  /// In-place (m - mean) / stddev.
  void apply(vf::nn::Matrix& m) const;
  /// In-place m * stddev + mean.
  void invert(vf::nn::Matrix& m) const;
};

/// Reusable SoA staging for batched neighbour queries: row i of the
/// kNeighbors-wide `indices` / `dist2` arrays holds query i's neighbours.
/// Owned per thread by the streaming engines so feature assembly performs
/// no per-point (or per-tile, after warm-up) heap allocation.
struct FeatureScratch {
  vf::util::AlignedVector<std::uint32_t> indices;
  vf::util::AlignedVector<double> dist2;

  /// Scratch footprint in double-equivalents (for peak-memory accounting).
  [[nodiscard]] std::size_t element_count() const {
    return dist2.capacity() + (indices.capacity() + 1) / 2;
  }
};

/// One request describing a feature-extraction job. Replaces the old
/// three-way overload family (cloud x positions, cloud x grid indices,
/// prebuilt tree x positions) with a single options-struct entry point.
///
/// Exactly one sample source and exactly one query shape must be set:
///   source:  `cloud`                         (an index is built per call)
///            `tree` + `values`               (prebuilt, the hot repeated-
///                                             query path: trainer loops,
///                                             streaming tiles, serving)
///   queries: `points`                        (arbitrary positions)
///            `grid` + `indices`              (grid points by linear index)
struct FeatureRequest {
  const vf::sampling::SampleCloud* cloud = nullptr;
  const vf::spatial::NeighborIndex* tree = nullptr;
  const std::vector<double>* values = nullptr;  // parallel to tree.points()

  const std::vector<vf::field::Vec3>* points = nullptr;
  const vf::field::UniformGrid3* grid = nullptr;
  const std::vector<std::int64_t>* indices = nullptr;
};

/// Assemble the (n x 23) feature matrix for `req` (see FeatureRequest).
/// Parallelised; throws std::invalid_argument on an over- or
/// under-specified request.
vf::nn::Matrix extract_features(const FeatureRequest& req);

/// Deprecated overload shims (one PR of grace): forward to the
/// FeatureRequest entry point above.
[[deprecated("use extract_features(FeatureRequest) instead")]]
vf::nn::Matrix extract_features(const vf::sampling::SampleCloud& cloud,
                                const std::vector<vf::field::Vec3>& queries);

[[deprecated("use extract_features(FeatureRequest) instead")]]
vf::nn::Matrix extract_features(const vf::sampling::SampleCloud& cloud,
                                const vf::field::UniformGrid3& grid,
                                const std::vector<std::int64_t>& indices);

[[deprecated("use extract_features(FeatureRequest) instead")]]
vf::nn::Matrix extract_features(const vf::spatial::KdTree& tree,
                                const std::vector<double>& values,
                                const std::vector<vf::field::Vec3>& queries);

/// Allocation-free core: fills `X` (resized to count x 23) from `count`
/// query positions. The batched neighbour query stages into `scratch` in
/// SoA layout, then rows are assembled in a second vectorisable pass — no
/// per-point allocation. Internally parallel, but safe to call from inside
/// an active OpenMP region (the nested region serialises), which is how the
/// per-tile streaming path uses it.
void extract_features_into(const vf::spatial::NeighborIndex& index,
                           const std::vector<double>& values,
                           const vf::field::Vec3* queries, std::size_t count,
                           vf::nn::Matrix& X, FeatureScratch& scratch);

/// Convenience overload that owns its scratch (one allocation per call).
void extract_features_into(const vf::spatial::NeighborIndex& index,
                           const std::vector<double>& values,
                           const vf::field::Vec3* queries, std::size_t count,
                           vf::nn::Matrix& X);

/// Targets for the same indices from the ground-truth field. When
/// `with_gradients` the result is (n x 4), otherwise (n x 1).
vf::nn::Matrix extract_targets(const vf::field::ScalarField& truth,
                               const std::vector<std::int64_t>& indices,
                               bool with_gradients);

}  // namespace vf::core
