#pragma once
// Uncertainty-aware reconstruction via deep ensembles.
//
// The paper's discussion (§V, limitation 3) singles out reconstruction
// uncertainty as the missing piece and names deep ensembles as a candidate
// solution; this module implements that extension. An ensemble trains N
// FCNNs that differ only in weight initialisation and shuffle order, and at
// reconstruction time reports the member mean (typically slightly better
// than any single member) together with the per-voxel member standard
// deviation — an epistemic-uncertainty proxy that is high exactly where the
// members disagree (sparsely sampled or structurally ambiguous regions).

#include <vector>

#include "vf/core/fcnn.hpp"

namespace vf::core {

struct EnsembleResult {
  /// Member-mean reconstruction.
  vf::field::ScalarField mean;
  /// Per-voxel standard deviation across members (0 at sampled points,
  /// which are pinned to their stored values).
  vf::field::ScalarField stddev;
};

class EnsembleReconstructor {
 public:
  /// Train `members` models on the same timestep, varying only the seed.
  static EnsembleReconstructor pretrain(const vf::field::ScalarField& truth,
                                        const vf::sampling::Sampler& sampler,
                                        FcnnConfig config, int members);

  /// Wrap already-trained models (e.g. loaded from disk).
  explicit EnsembleReconstructor(std::vector<FcnnModel> models);

  [[nodiscard]] std::size_t size() const { return members_.size(); }
  [[nodiscard]] FcnnModel& member(std::size_t i) { return members_[i]; }

  /// Fine-tune every member on a new timestep (Case 1).
  void fine_tune(const vf::field::ScalarField& truth,
                 const vf::sampling::Sampler& sampler,
                 const FcnnConfig& config, int epochs);

  /// Reconstruct with mean + uncertainty.
  [[nodiscard]] EnsembleResult reconstruct(
      const vf::sampling::SampleCloud& cloud,
      const vf::field::UniformGrid3& grid);

 private:
  std::vector<FcnnModel> members_;
};

}  // namespace vf::core
