#pragma once
// Streaming batch reconstruction with a trained FCNN model.
//
// FcnnReconstructor materialises the full (n_voids x 23) feature matrix,
// normalises a copy of it, and runs inference over the whole thing — three
// grid-sized dense buffers alive at once. Fine for one 128^3 field, hostile
// to the paper's in-situ setting where reconstruction shares a node with the
// running simulation.
//
// BatchReconstructor instead streams void points through fixed-size tiles:
// for each tile it extracts features, z-score normalises in place, runs the
// fused inference path (Network::infer — GEMM + bias + ReLU in one output
// pass), and de-normalises the scalar column directly into the output field.
// Peak scratch memory is O(tile_size), independent of the grid. Tiles are
// processed in parallel — each OpenMP thread owns one TileScratch (feature
// matrix, activation ping-pong buffers, query/neighbour staging), and
// Network::infer is const and thread-safe, so no state is shared but the
// read-only model and the cached k-d tree.
//
// The sample cloud's neighbour index is cached across calls (keyed on the
// identity of the cloud's points buffer): the common loop "reconstruct the
// same sampling at several grids / repeatedly over time" pays the build
// once. The index kind follows ReconstructOptions::index — Auto picks the
// grid-hash for the dense grid-sweep workload this engine runs (see
// vf/spatial/neighbor_index.hpp for the policy).
//
// ReconstructOptions::quant selects the reduced-precision inference path:
// the model is quantized once at construction (QuantizedNetwork) and tiles
// run the packed fp32 GEMM instead of Network::infer.

#include <cstdint>
#include <memory>
#include <vector>

#include "vf/core/model.hpp"
#include "vf/core/options.hpp"
#include "vf/core/report.hpp"
#include "vf/field/scalar_field.hpp"
#include "vf/nn/quant.hpp"
#include "vf/sampling/sample_cloud.hpp"
#include "vf/spatial/neighbor_index.hpp"

namespace vf::core {

class BatchReconstructor {
 public:
  /// Default tile: 2048 rows keeps the widest activation buffer
  /// (2048 x 512 doubles = 8 MB) within reach of the outer cache levels
  /// while still amortising per-tile setup; the BM_BatchReconstruct sweep
  /// in bench/micro_kernels picked it over 1024/4096/8192.
  static constexpr std::size_t kDefaultTile = 2048;
  static_assert(ReconstructOptions{}.tile_size == kDefaultTile,
                "ReconstructOptions::tile_size default must track "
                "BatchReconstructor::kDefaultTile");

  explicit BatchReconstructor(FcnnModel model,
                              const ReconstructOptions& opts = {});

  [[deprecated("use BatchReconstructor(model, ReconstructOptions) instead")]]
  BatchReconstructor(FcnnModel model, std::size_t tile_size);

  [[nodiscard]] std::string name() const { return "fcnn_stream"; }

  /// Reconstruct a full grid. Semantics match FcnnReconstructor: when the
  /// cloud was sampled from `grid`, sampled points keep their stored values
  /// and only voids are predicted; on a foreign grid every point is
  /// predicted. Results match the non-streaming path to rounding.
  [[nodiscard]] vf::field::ScalarField reconstruct(
      const vf::sampling::SampleCloud& cloud,
      const vf::field::UniformGrid3& grid);

  /// Degradation-accounting overload: scrubs unusable samples on ingest
  /// (cached with the tree) and replaces non-finite network outputs per
  /// point with a Shepard estimate from the scrubbed samples, recording
  /// every decision in `report`. The two-argument overload delegates here.
  [[nodiscard]] vf::field::ScalarField reconstruct(
      const vf::sampling::SampleCloud& cloud,
      const vf::field::UniformGrid3& grid, ReconstructReport& report);

  [[nodiscard]] std::size_t tile_size() const { return tile_; }

  /// High-water mark of per-thread scratch (doubles) across all reconstruct
  /// calls so far. Exposed so tests can assert the O(tile) memory bound.
  [[nodiscard]] std::size_t peak_scratch_elements() const {
    return peak_scratch_elements_;
  }

  /// Number of index builds performed (cache misses). A second reconstruct
  /// with the same cloud must not increment this.
  [[nodiscard]] std::size_t tree_builds() const { return tree_builds_; }

  /// Kind of the currently bound neighbour index ("kdtree" / "grid_hash"),
  /// or "none" before the first reconstruct. Exposed for tests/benches that
  /// assert the Auto selection policy.
  [[nodiscard]] const char* index_kind() const {
    return index_ ? index_->kind_name() : "none";
  }

  /// Active inference precision (None = the fp64 Network path).
  [[nodiscard]] vf::nn::QuantPolicy quant_policy() const { return quant_; }

  [[nodiscard]] FcnnModel& model() { return model_; }
  [[nodiscard]] const FcnnModel& model() const { return model_; }

 private:
  /// Rebuild the cached index iff `cloud` is not the one already bound or
  /// the selection policy picks a different index kind for this workload
  /// (`expected_queries` = number of points the coming reconstruct will
  /// predict).
  void bind_cloud(const vf::sampling::SampleCloud& cloud,
                  std::size_t expected_queries);

  FcnnModel model_;
  std::size_t tile_;
  int repair_neighbors_ = 5;
  vf::nn::QuantPolicy quant_ = vf::nn::QuantPolicy::None;
  vf::spatial::IndexKind index_kind_opt_ = vf::spatial::IndexKind::Auto;
  /// Quantized once at construction when quant_ != None.
  vf::nn::QuantizedNetwork qnet_;

  // Cached spatial index over the bound cloud. The key is the points
  // buffer's address + size: cheap, and stale hits would require the caller
  // to have freed the cloud and landed a new one at the same address with
  // the same size — reconstruct() takes the cloud by reference, so the
  // cached values_ copy keeps results well-defined regardless.
  std::unique_ptr<vf::spatial::NeighborIndex> index_;
  vf::spatial::IndexKind bound_kind_ = vf::spatial::IndexKind::Auto;
  /// Scrubbed copy of the bound cloud; values_ aliases its values.
  vf::sampling::SampleCloud bound_;
  std::vector<double> values_;
  std::size_t scrub_nonfinite_ = 0;
  std::size_t scrub_duplicates_ = 0;
  const void* cloud_key_ = nullptr;
  std::size_t cloud_count_ = 0;
  std::size_t tree_builds_ = 0;

  std::size_t peak_scratch_elements_ = 0;
};

}  // namespace vf::core
