#pragma once
// Never-throw reconstruction entry point plus the classical per-point
// estimators the degradation paths share.
//
// reconstruct_resilient() is the production face of the library: given a
// model path and an archived cloud it always produces a field on valid
// inputs, degrading stepwise instead of failing —
//   1. unusable samples (non-finite, duplicated) are scrubbed on ingest;
//   2. a missing/corrupt model file drops the whole reconstruction to the
//      classical interpolant (Shepard or nearest-neighbour);
//   3. individual non-finite network outputs are replaced per point by the
//      classical estimate.
// Every decision is accounted for in the ReconstructReport.

#include <string>
#include <vector>

#include "vf/core/options.hpp"
#include "vf/core/report.hpp"
#include "vf/field/scalar_field.hpp"
#include "vf/sampling/sample_cloud.hpp"
#include "vf/spatial/neighbor_index.hpp"

namespace vf::core {

/// Which classical estimator fills degraded points.
enum class FallbackMethod {
  Shepard,  ///< inverse-squared-distance weighting of the k nearest samples
  Nearest,  ///< value of the single nearest sample
};

/// Parse "shepard" / "nearest" (throws std::invalid_argument otherwise).
[[nodiscard]] FallbackMethod fallback_method_from(const std::string& name);

/// Classical estimate at `p` from the k nearest samples in `index` (values
/// parallel to the index's points). Finite whenever `values` are finite and
/// the index is non-empty. k = 1 degenerates to nearest-neighbour. Queries
/// reuse thread-local neighbour scratch, so repeated repair calls allocate
/// nothing.
[[nodiscard]] double shepard_estimate(const vf::spatial::NeighborIndex& index,
                                      const std::vector<double>& values,
                                      const vf::field::Vec3& p, int k);

/// Reconstruct `grid` from `cloud` with the model stored at `model_path`,
/// degrading gracefully per the module comment. Throws only on invalid
/// arguments (empty cloud, zero-point grid) — never on corrupt inputs.
/// `engine` tunes the FCNN path (tile size, quantization policy, neighbour
/// index kind); the classical fallback stays fp64 regardless.
[[nodiscard]] vf::field::ScalarField reconstruct_resilient(
    const std::string& model_path, const vf::sampling::SampleCloud& cloud,
    const vf::field::UniformGrid3& grid, ReconstructReport& report,
    FallbackMethod fallback = FallbackMethod::Shepard,
    const ReconstructOptions& engine = {});

}  // namespace vf::core
