#pragma once
// Degradation accounting for the resilient reconstruction paths.
//
// Production reconstruction must not fall over because a few archived
// samples rotted (NaN/Inf values from a failing simulation rank, duplicated
// points from a botched merge) or because the network produced a non-finite
// output for some query. The resilient paths scrub bad inputs, fall back to
// a classical estimate for individual bad predictions, and account for every
// such decision in a ReconstructReport instead of throwing — the caller
// decides whether a degraded result is acceptable.

#include <cstddef>
#include <string>

namespace vf::core {

/// Why (part of) a reconstruction did not come from the FCNN.
enum class FallbackReason {
  None,             ///< fully model-predicted
  ModelLoadFailed,  ///< model file missing/corrupt: classical method used
  NonFiniteOutput,  ///< some network outputs were NaN/Inf and were replaced
  NoUsableSamples,  ///< scrubbing left too few samples to query
};

[[nodiscard]] const char* to_string(FallbackReason reason);

struct ReconstructReport {
  /// Cloud size before scrubbing.
  std::size_t input_points = 0;
  /// Samples dropped for a non-finite value or coordinate.
  std::size_t scrubbed_nonfinite = 0;
  /// Samples dropped as exact positional duplicates.
  std::size_t scrubbed_duplicates = 0;
  /// Grid points filled by the network.
  std::size_t predicted_points = 0;
  /// Grid points filled by the classical fallback instead of the network.
  std::size_t degraded_points = 0;
  FallbackReason fallback = FallbackReason::None;
  /// Human-readable detail (e.g. the model-load error message).
  std::string detail;

  /// True when nothing was scrubbed and nothing fell back.
  [[nodiscard]] bool clean() const {
    return scrubbed_nonfinite == 0 && scrubbed_duplicates == 0 &&
           degraded_points == 0 && fallback == FallbackReason::None;
  }

  /// One-line description for logs / the CLI.
  [[nodiscard]] std::string summary() const;
};

}  // namespace vf::core
