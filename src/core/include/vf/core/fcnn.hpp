#pragma once
// The paper's contribution: FCNN-based reconstruction of sampled data.
//
// Pipeline (paper §III, Fig 1/4/5):
//   pretrain()   — sample the available timestep at the configured fractions
//                  (1% + 5% in the paper), build the void-location training
//                  set, and train the MLP (512-256-128-64-16 hidden, ReLU,
//                  MSE, Adam 1e-3).
//   fine_tune()  — adapt a pretrained model to a new timestep / resolution:
//                  Case 1 retrains every layer for ~10 epochs; Case 2
//                  retrains only the last two dense layers (~300-500 epochs)
//                  so later timesteps can be stored as small weight deltas.
//   FcnnReconstructor — once trained, reconstruction is a batched forward
//                  pass over all void locations: constant time in the
//                  sampling fraction (paper Fig 10).

#include <cstdint>
#include <memory>
#include <vector>

#include "vf/core/model.hpp"
#include "vf/core/options.hpp"
#include "vf/core/report.hpp"
#include "vf/nn/quant.hpp"
#include "vf/nn/trainer.hpp"
#include "vf/sampling/samplers.hpp"
#include "vf/spatial/neighbor_index.hpp"

namespace vf::core {

struct FcnnConfig {
  /// Hidden layer widths; the paper's final architecture.
  std::vector<std::size_t> hidden = {512, 256, 128, 64, 16};
  double learning_rate = 1e-3;
  int epochs = 500;
  /// Minibatch size. The paper does not specify one; 256 balances GEMM
  /// efficiency against Adam step count on CPU.
  std::size_t batch_size = 256;
  /// Learning-rate schedule (Constant = the paper's fixed Adam rate;
  /// Cosine helps at tight epoch budgets).
  vf::nn::LrSchedule lr_schedule = vf::nn::LrSchedule::Constant;
  /// Predict gradients alongside the scalar (Fig 8 ablation toggles this).
  bool with_gradients = true;
  /// Relative MSE weight of each gradient output against the scalar output
  /// (1.0 = the paper's plain equal-weight MSE). Implemented by scaling the
  /// gradient columns' target normalisation, so lower values let the
  /// gradient heads act as a mild regulariser instead of competing with
  /// the scalar head for capacity — useful at reduced training budgets.
  double gradient_loss_weight = 1.0;
  /// Sampling fractions whose void sets are concatenated into the training
  /// set (paper: the "1%+5% model", Fig 7).
  std::vector<double> train_fractions = {0.01, 0.05};
  /// Random fraction of the assembled training rows to keep (Fig 14 /
  /// Table II study training-set subsampling).
  double train_subset = 1.0;
  /// Hard cap on training rows after subsetting; 0 = unlimited. Used by the
  /// reduced-scale bench defaults.
  std::size_t max_train_rows = 0;
  std::uint64_t seed = 42;
  /// Crash-safe training checkpoints (empty dir disables): forwarded to
  /// TrainOptions, see vf/nn/checkpoint.hpp for format/retention/resume.
  std::string checkpoint_dir;
  int checkpoint_every = 1;
  int checkpoint_keep = 3;
  bool resume = false;

  /// Full paper settings (500 epochs, uncapped rows).
  static FcnnConfig paper();
  /// Reduced settings for the scaled-down bench runs; honours VF_QUICK.
  static FcnnConfig bench();

  /// Hidden widths used for the Fig-6 depth sweep: a halving pyramid from
  /// 512 floored at 16, truncated/extended to `layers` entries.
  static std::vector<std::size_t> pyramid(int layers);
};

struct PretrainResult {
  FcnnModel model;
  vf::nn::TrainHistory history;
  /// Wall-clock seconds spent on sampling + feature extraction (reported
  /// separately from history.seconds, the pure training time).
  double data_seconds = 0.0;
  std::size_t train_rows = 0;
};

/// Train a model from scratch on one timestep of ground truth, using
/// `sampler` to generate the training samplings.
PretrainResult pretrain(const vf::field::ScalarField& truth,
                        const vf::sampling::Sampler& sampler,
                        const FcnnConfig& config);

enum class FineTuneMode {
  FullNetwork,    // Case 1: all layers trainable, ~10 epochs
  LastTwoLayers,  // Case 2: only the last two dense layers, ~300-500 epochs
};

/// Fine-tune `model` in place on a new timestep. `epochs` overrides
/// config.epochs (the paper uses ~10 for Case 1, 300-500 for Case 2).
/// Normalisation constants are kept from pretraining by default (the
/// paper's same-simulation workflow); set `refit_normalization` when
/// transferring across simulations whose value/coordinate ranges differ —
/// the stale z-score constants are otherwise the dominant failure mode.
vf::nn::TrainHistory fine_tune(FcnnModel& model,
                               const vf::field::ScalarField& truth,
                               const vf::sampling::Sampler& sampler,
                               const FcnnConfig& config, FineTuneMode mode,
                               int epochs, bool refit_normalization = false);

/// Reconstruct a full grid from a sample cloud with a trained model.
/// When the cloud was sampled from the same grid, sampled points keep their
/// exact stored values and only void locations are predicted; otherwise
/// (e.g. upscaling onto a finer grid) every grid point is predicted.
class FcnnReconstructor {
 public:
  explicit FcnnReconstructor(FcnnModel model,
                             const ReconstructOptions& opts = {});

  [[nodiscard]] std::string name() const { return "fcnn"; }

  [[nodiscard]] vf::field::ScalarField reconstruct(
      const vf::sampling::SampleCloud& cloud,
      const vf::field::UniformGrid3& grid);

  /// Degradation-accounting overload. Unusable samples (non-finite values
  /// or coordinates, duplicated positions) are scrubbed on ingest, and any
  /// non-finite network output is replaced per point by a Shepard estimate
  /// from the scrubbed samples; `report` records every such decision. The
  /// two-argument overload delegates here and discards the report.
  [[nodiscard]] vf::field::ScalarField reconstruct(
      const vf::sampling::SampleCloud& cloud,
      const vf::field::UniformGrid3& grid, ReconstructReport& report);

  /// Scalar + predicted gradient components in one pass. Only valid for
  /// models trained with gradient outputs (throws otherwise). At sampled
  /// grid points the scalar is pinned to the stored value while gradients
  /// remain the network's prediction.
  struct FullReconstruction {
    vf::field::ScalarField scalar;
    vf::field::GradientField gradient;
  };
  [[nodiscard]] FullReconstruction reconstruct_with_gradients(
      const vf::sampling::SampleCloud& cloud,
      const vf::field::UniformGrid3& grid);

  [[nodiscard]] FcnnModel& model() { return model_; }
  [[nodiscard]] const FcnnModel& model() const { return model_; }

  /// Kind of the currently bound neighbour index ("kdtree" / "grid_hash"),
  /// or "none" before the first reconstruct.
  [[nodiscard]] const char* index_kind() const {
    return index_ ? index_->kind_name() : "none";
  }

 private:
  /// Neighbour index over `cloud`'s scrubbed points, rebuilt only when the
  /// cloud changes (keyed on the points buffer identity) or the selection
  /// policy picks a different kind for this workload. Repeated
  /// reconstructions of the same sampling — the Fig 10 timing loop,
  /// upscaling to several grids — skip the scrub and the build after the
  /// first call.
  const vf::spatial::NeighborIndex& bound_index(
      const vf::sampling::SampleCloud& cloud, std::size_t expected_queries);

  /// Forward pass honouring opts_.quant: the fp64 Network path for None,
  /// the packed single-precision GEMM otherwise. Consumes `X`.
  [[nodiscard]] vf::nn::Matrix predict(vf::nn::Matrix X);

  FcnnModel model_;
  ReconstructOptions opts_;
  /// Quantized once at construction when opts_.quant != None.
  vf::nn::QuantizedNetwork qnet_;
  std::unique_ptr<vf::spatial::NeighborIndex> index_;
  vf::spatial::IndexKind bound_kind_ = vf::spatial::IndexKind::Auto;
  /// Scrubbed copy of the bound cloud (the index/values the queries use).
  vf::sampling::SampleCloud bound_;
  std::size_t scrub_nonfinite_ = 0;
  std::size_t scrub_duplicates_ = 0;
  const void* tree_key_ = nullptr;
  std::size_t tree_count_ = 0;
};

/// Internal helper, exposed for tests and benches: assemble the (X, Y)
/// training matrices for one timestep under `config`.
struct TrainingSet {
  vf::nn::Matrix X;
  vf::nn::Matrix Y;
};
TrainingSet build_training_set(const vf::field::ScalarField& truth,
                               const vf::sampling::Sampler& sampler,
                               const FcnnConfig& config);

}  // namespace vf::core
