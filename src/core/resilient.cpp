#include "vf/core/resilient.hpp"

#include <cmath>
#include <exception>
#include <numeric>
#include <stdexcept>

#include "vf/core/batch_reconstruct.hpp"
#include "vf/core/features.hpp"
#include "vf/core/model.hpp"
#include "vf/interp/reconstructor.hpp"
#include "vf/obs/obs.hpp"

namespace vf::core {

using vf::field::ScalarField;
using vf::field::UniformGrid3;
using vf::field::Vec3;
using vf::sampling::SampleCloud;

const char* to_string(FallbackReason reason) {
  switch (reason) {
    case FallbackReason::None:
      return "none";
    case FallbackReason::ModelLoadFailed:
      return "model-load-failed";
    case FallbackReason::NonFiniteOutput:
      return "non-finite-output";
    case FallbackReason::NoUsableSamples:
      return "no-usable-samples";
  }
  return "unknown";
}

std::string ReconstructReport::summary() const {
  std::string s = "reconstruct: " + std::to_string(input_points) + " samples";
  if (scrubbed_nonfinite > 0) {
    s += ", scrubbed " + std::to_string(scrubbed_nonfinite) + " non-finite";
  }
  if (scrubbed_duplicates > 0) {
    s += ", scrubbed " + std::to_string(scrubbed_duplicates) + " duplicates";
  }
  s += ", " + std::to_string(predicted_points) + " predicted";
  if (degraded_points > 0) {
    s += ", " + std::to_string(degraded_points) + " degraded (" +
         to_string(fallback) + ")";
  }
  if (!detail.empty()) s += " [" + detail + "]";
  return s;
}

FallbackMethod fallback_method_from(const std::string& name) {
  if (name == "shepard") return FallbackMethod::Shepard;
  if (name == "nearest") return FallbackMethod::Nearest;
  throw std::invalid_argument("unknown fallback method: " + name);
}

double shepard_estimate(const vf::spatial::NeighborIndex& index,
                        const std::vector<double>& values, const Vec3& p,
                        int k) {
  thread_local std::vector<vf::spatial::Neighbor> nbrs;
  index.knn(p, k, nbrs);
  // Exact hit (or k == 1): the nearest sample's value verbatim.
  if (!nbrs.empty() && (nbrs.size() == 1 || nbrs.front().dist2 == 0.0)) {
    return values[nbrs.front().index];
  }
  double wsum = 0.0, vsum = 0.0;
  for (const auto& nb : nbrs) {
    const double w = 1.0 / nb.dist2;
    wsum += w;
    vsum += w * values[nb.index];
  }
  return vsum / wsum;
}

namespace {

/// The classical interpolant backing each fallback method.
vf::interp::Method interp_method(FallbackMethod method) {
  return method == FallbackMethod::Nearest ? vf::interp::Method::Nearest
                                           : vf::interp::Method::Shepard;
}

/// Fill `grid` classically from `clean` via the shared vf::interp factory;
/// kept samples are re-pinned to their stored values when the grids match
/// (the interpolator is free to smooth over them).
ScalarField classical_fill(const SampleCloud& clean, const UniformGrid3& grid,
                           FallbackMethod method, ReconstructReport& report) {
  VF_OBS_SPAN("classical_fill");
  VF_OBS_COUNT("core.resilient.fallbacks", 1);
  ScalarField out =
      vf::interp::make_interpolator(interp_method(method))
          ->reconstruct(clean, grid);
  out.set_name("fcnn");

  if (clean.has_grid() && clean.grid() == grid) {
    const auto& kept = clean.kept_indices();
    const auto& values = clean.values();
    for (std::size_t i = 0; i < kept.size(); ++i) out[kept[i]] = values[i];
    report.degraded_points +=
        static_cast<std::size_t>(grid.point_count()) - kept.size();
  } else {
    report.degraded_points += static_cast<std::size_t>(grid.point_count());
  }
  return out;
}

}  // namespace

ScalarField reconstruct_resilient(const std::string& model_path,
                                  const SampleCloud& cloud,
                                  const UniformGrid3& grid,
                                  ReconstructReport& report,
                                  FallbackMethod fallback,
                                  const ReconstructOptions& engine) {
  if (cloud.size() == 0) {
    throw std::invalid_argument("reconstruct_resilient: empty cloud");
  }
  if (grid.point_count() <= 0) {
    throw std::invalid_argument("reconstruct_resilient: empty grid");
  }
  report = ReconstructReport{};
  report.input_points = cloud.size();
  const SampleCloud clean =
      cloud.scrubbed(report.scrubbed_nonfinite, report.scrubbed_duplicates);

  if (clean.size() == 0) {
    // Nothing usable at all: a constant field is the only honest answer.
    report.fallback = FallbackReason::NoUsableSamples;
    report.detail = "every sample was scrubbed";
    report.degraded_points = static_cast<std::size_t>(grid.point_count());
    return ScalarField(grid, "fcnn");
  }

  const std::size_t nonfinite = report.scrubbed_nonfinite;
  const std::size_t duplicates = report.scrubbed_duplicates;
  if (clean.size() >= static_cast<std::size_t>(kNeighbors)) {
    try {
      BatchReconstructor rec(FcnnModel::load(model_path), engine);
      ScalarField out = rec.reconstruct(clean, grid, report);
      // The inner report re-ran scrubbing on the already-clean cloud;
      // restore the ingest-side accounting.
      report.input_points = cloud.size();
      report.scrubbed_nonfinite = nonfinite;
      report.scrubbed_duplicates = duplicates;
      return out;
    } catch (const std::exception& e) {
      report = ReconstructReport{};  // discard any partial inner accounting
      report.input_points = cloud.size();
      report.scrubbed_nonfinite = nonfinite;
      report.scrubbed_duplicates = duplicates;
      report.fallback = FallbackReason::ModelLoadFailed;
      report.detail = e.what();
    }
  } else {
    report.fallback = FallbackReason::NoUsableSamples;
    report.detail = "fewer usable samples than the feature stencil needs";
  }
  ScalarField out = classical_fill(clean, grid, fallback, report);
  VF_OBS_COUNT("core.resilient.degraded_points", report.degraded_points);
  return out;
}

}  // namespace vf::core
