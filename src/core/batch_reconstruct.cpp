#include "vf/core/batch_reconstruct.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "vf/core/features.hpp"
#include "vf/core/resilient.hpp"
#include "vf/obs/obs.hpp"

#include <omp.h>

namespace vf::core {

using vf::field::ScalarField;
using vf::field::UniformGrid3;
using vf::field::Vec3;
using vf::sampling::SampleCloud;

namespace {

/// Per-thread working set for one tile. Buffers grow to tile size on the
/// first tile a thread processes and are reused for every tile after.
struct TileScratch {
  std::vector<Vec3> queries;
  vf::nn::Matrix X;
  vf::nn::Matrix Y;
  vf::nn::InferScratch infer;
  FeatureScratch features;
  vf::nn::QuantScratch quant;

  [[nodiscard]] std::size_t element_count() const {
    // Vec3 counts as 3 doubles.
    return 3 * queries.capacity() + X.size() + Y.size() +
           infer.element_count() + features.element_count() +
           quant.element_count();
  }
};

}  // namespace

BatchReconstructor::BatchReconstructor(FcnnModel model,
                                       const ReconstructOptions& opts)
    : model_(std::move(model)),
      tile_(std::max<std::size_t>(1, opts.tile_size)),
      repair_neighbors_(std::max(1, opts.repair_neighbors)),
      quant_(opts.quant),
      index_kind_opt_(opts.index) {
  if (model_.out_norm.mean.empty() || model_.in_norm.mean.empty()) {
    throw std::invalid_argument(
        "BatchReconstructor: model is missing normalisation constants");
  }
  if (quant_ != vf::nn::QuantPolicy::None) {
    // Quantize once; tiles share the immutable packed weights.
    qnet_ = vf::nn::QuantizedNetwork(model_.net, quant_);
  }
}

// Deprecated positional-tile shim; body only touches the options ctor.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
BatchReconstructor::BatchReconstructor(FcnnModel model, std::size_t tile_size)
    : BatchReconstructor(std::move(model), ReconstructOptions{tile_size, 5}) {}
#pragma GCC diagnostic pop

void BatchReconstructor::bind_cloud(const SampleCloud& cloud,
                                    std::size_t expected_queries) {
  const void* key = static_cast<const void*>(cloud.points().data());
  const bool same_cloud = key == cloud_key_ && cloud.size() == cloud_count_;
  // Resolve Auto against this call's workload so the policy can flip the
  // index kind if the same cloud is suddenly probed sparsely (and rebuild
  // only then — the common repeated-grid loop keeps its cache hit).
  vf::spatial::IndexKind want = index_kind_opt_;
  if (want == vf::spatial::IndexKind::Auto) {
    want = vf::spatial::select_index_kind(
        same_cloud ? bound_.size() : cloud.size(), expected_queries);
  }
  if (same_cloud && want == bound_kind_) return;
  VF_OBS_SPAN("tree_build");
  VF_OBS_COUNT("core.batch.tree_builds", 1);
  if (!same_cloud) {
    // Scrub once per bound cloud; index, feature queries, and value pinning
    // all see the scrubbed copy.
    bound_ = cloud.scrubbed(scrub_nonfinite_, scrub_duplicates_);
    values_ = bound_.values();
  }
  index_ = vf::spatial::build_index(bound_.points(), want, expected_queries);
  bound_kind_ = want;
  cloud_key_ = key;
  cloud_count_ = cloud.size();
  ++tree_builds_;
}

ScalarField BatchReconstructor::reconstruct(const SampleCloud& cloud,
                                            const UniformGrid3& grid) {
  ReconstructReport report;
  return reconstruct(cloud, grid, report);
}

ScalarField BatchReconstructor::reconstruct(const SampleCloud& cloud,
                                            const UniformGrid3& grid,
                                            ReconstructReport& report) {
  VF_OBS_SPAN("batch_reconstruct");
  VF_OBS_COUNT("core.batch.calls", 1);
  // The engine sweeps (nearly) every grid point, so the grid size is the
  // query count the index selection policy sees.
  bind_cloud(cloud, static_cast<std::size_t>(grid.point_count()));
  if (bound_.size() < static_cast<std::size_t>(kNeighbors)) {
    throw std::invalid_argument("BatchReconstructor: cloud smaller than k");
  }
  report = ReconstructReport{};
  report.input_points = cloud.size();
  report.scrubbed_nonfinite = scrub_nonfinite_;
  report.scrubbed_duplicates = scrub_duplicates_;

  ScalarField out(grid, "fcnn");
  const bool same_grid = bound_.has_grid() && bound_.grid() == grid;

  // Prediction targets: a void-index list when the grids match (sampled
  // points are pinned to their stored values), every linear index otherwise.
  std::vector<std::int64_t> voids;
  const std::int64_t* idx = nullptr;
  std::int64_t n = 0;
  if (same_grid) {
    const auto& kept = bound_.kept_indices();
    const auto& vals = bound_.values();
    for (std::size_t i = 0; i < kept.size(); ++i) out[kept[i]] = vals[i];
    voids = bound_.void_indices();
    idx = voids.data();
    n = static_cast<std::int64_t>(voids.size());
  } else {
    n = grid.point_count();
  }
  if (n == 0) return out;

  const auto tile = static_cast<std::int64_t>(tile_);
  const std::int64_t tiles = (n + tile - 1) / tile;
  // De-normalisation of the scalar column, applied in the write-back loop.
  // Gradient-output models predict 4 columns; only column 0 is a field
  // value, so the gradient columns never touch memory outside Y.
  const double scale = model_.out_norm.stddev[0];
  const double shift = model_.out_norm.mean[0];

  std::size_t peak = 0;
  std::vector<std::int64_t> bad;  // grid indices with non-finite predictions
  // vf-par: per-thread-scratch — TileScratch and bad_local are
  // thread-local; tiles write disjoint out[] index ranges; the peak and
  // bad-index merges are inside omp critical.
#pragma omp parallel
  {
    TileScratch ts;
    std::size_t local_peak = 0;
    std::vector<std::int64_t> bad_local;
#pragma omp for schedule(dynamic)
    for (std::int64_t t = 0; t < tiles; ++t) {
      // Span buffers are thread-local, so instrumenting inside the omp
      // region is race-free; worker-thread spans aggregate by path.
      VF_OBS_HIST_TIMER("core.batch.tile_seconds");
      VF_OBS_COUNT("core.batch.tiles", 1);
      const std::int64_t b = t * tile;
      const std::int64_t e = std::min(n, b + tile);
      const auto count = static_cast<std::size_t>(e - b);

      ts.queries.resize(count);
      for (std::int64_t i = b; i < e; ++i) {
        ts.queries[static_cast<std::size_t>(i - b)] =
            grid.position(idx ? idx[i] : i);
      }
      // Inside this parallel region the helpers' own OpenMP regions
      // serialise (nested parallelism is off), so each tile is one
      // thread's sequential pipeline.
      {
        VF_OBS_SPAN("extract_features");
        extract_features_into(*index_, values_, ts.queries.data(), count,
                              ts.X, ts.features);
      }
      {
        VF_OBS_SPAN("inference");
        model_.in_norm.apply(ts.X);
        if (quant_ != vf::nn::QuantPolicy::None) {
          qnet_.infer(ts.X, ts.Y, ts.quant);
        } else {
          model_.net.infer(ts.X, ts.Y, ts.infer);
        }
      }
      for (std::int64_t i = b; i < e; ++i) {
        const double y = ts.Y(static_cast<std::size_t>(i - b), 0) * scale +
                         shift;
        const std::int64_t target = idx ? idx[i] : i;
        if (std::isfinite(y)) {
          out[target] = y;
        } else {
          bad_local.push_back(target);
        }
      }
      local_peak = std::max(local_peak, ts.element_count());
    }
#pragma omp critical
    {
      peak = std::max(peak, local_peak);
      bad.insert(bad.end(), bad_local.begin(), bad_local.end());
    }
  }
  peak_scratch_elements_ = std::max(peak_scratch_elements_, peak);

  // Per-point graceful degradation: a non-finite prediction is replaced by
  // the classical Shepard estimate from the scrubbed samples.
  for (std::int64_t target : bad) {
    out[target] = shepard_estimate(*index_, values_, grid.position(target),
                                   repair_neighbors_);
  }
  report.predicted_points = static_cast<std::size_t>(n) - bad.size();
  report.degraded_points = bad.size();
  if (!bad.empty()) {
    report.fallback = FallbackReason::NonFiniteOutput;
    report.detail = "network produced non-finite outputs";
  }
  VF_OBS_COUNT("core.batch.predicted_points", report.predicted_points);
  VF_OBS_COUNT("core.batch.repaired_points", report.degraded_points);
  return out;
}

}  // namespace vf::core
