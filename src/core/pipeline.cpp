#include "vf/core/pipeline.hpp"

#include <stdexcept>

#include "vf/util/timer.hpp"

// This translation unit implements the deprecated shim itself.
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif

namespace vf::core {

TemporalPipeline::TemporalPipeline(PipelineOptions options)
    : options_(std::move(options)) {
  if (options_.archive_fraction <= 0.0 || options_.archive_fraction > 1.0) {
    throw std::invalid_argument(
        "TemporalPipeline: archive_fraction must be in (0, 1]");
  }
  if (options_.finetune_epochs < 1) {
    throw std::invalid_argument(
        "TemporalPipeline: finetune_epochs must be positive");
  }
}

TimestepArtifacts TemporalPipeline::ingest(const vf::field::ScalarField& truth) {
  TimestepArtifacts art;
  art.timestep = steps_;

  vf::util::Timer timer;  // vf-lint: allow(raw-timer) feeds TimestepArtifacts
  if (!model_) {
    auto cfg = options_.pretrain_config;
    cfg.seed = options_.seed;
    auto pre = pretrain(truth, sampler_, cfg);
    model_ = std::move(pre.model);
    model_->trained_timestep = steps_;
    art.final_loss = pre.history.train_loss.back();
  } else {
    auto cfg = options_.pretrain_config;
    cfg.seed = options_.seed + static_cast<std::uint64_t>(steps_);
    auto hist = fine_tune(*model_, truth, sampler_, cfg,
                          options_.finetune_mode, options_.finetune_epochs);
    art.final_loss = hist.train_loss.back();
  }
  art.train_seconds = timer.seconds();

  art.cloud = sampler_.sample(truth, options_.archive_fraction,
                              options_.seed + 0x5eedull +
                                  static_cast<std::uint64_t>(steps_));
  ++steps_;
  return art;
}

const FcnnModel& TemporalPipeline::model() const {
  if (!model_) {
    throw std::logic_error("TemporalPipeline: no timestep ingested yet");
  }
  return *model_;
}

vf::field::ScalarField TemporalPipeline::reconstruct(
    const vf::sampling::SampleCloud& cloud,
    const vf::field::UniformGrid3& grid) {
  ReconstructReport report;
  return reconstruct(cloud, grid, report);
}

vf::field::ScalarField TemporalPipeline::reconstruct(
    const vf::sampling::SampleCloud& cloud,
    const vf::field::UniformGrid3& grid, ReconstructReport& report) {
  if (!model_) {
    throw std::logic_error("TemporalPipeline: no timestep ingested yet");
  }
  FcnnReconstructor rec(model_->clone());
  return rec.reconstruct(cloud, grid, report);
}

}  // namespace vf::core
