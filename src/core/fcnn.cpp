#include "vf/core/fcnn.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "vf/core/resilient.hpp"
#include "vf/obs/obs.hpp"
#include "vf/util/env.hpp"
#include "vf/util/parallel.hpp"
#include "vf/util/rng.hpp"
#include "vf/util/timer.hpp"

namespace vf::core {

using vf::field::ScalarField;
using vf::field::UniformGrid3;
using vf::nn::Matrix;
using vf::sampling::SampleCloud;
using vf::sampling::Sampler;

FcnnConfig FcnnConfig::paper() {
  FcnnConfig cfg;
  cfg.epochs = 500;
  cfg.max_train_rows = 0;
  return cfg;
}

FcnnConfig FcnnConfig::bench() {
  FcnnConfig cfg;
  if (vf::util::full_scale()) {
    return paper();
  }
  cfg.batch_size = 128;  // maximise Adam steps within the reduced budget
  if (vf::util::quick_mode()) {
    cfg.epochs = 8;
    cfg.max_train_rows = 3000;
  } else {
    cfg.epochs = 15;
    cfg.max_train_rows = 8000;
  }
  return cfg;
}

std::vector<std::size_t> FcnnConfig::pyramid(int layers) {
  std::vector<std::size_t> hidden;
  std::size_t width = 512;
  for (int i = 0; i < layers; ++i) {
    hidden.push_back(width);
    if (width > 16) width /= 2;
  }
  return hidden;
}

namespace {

/// Stack rows of `parts` vertically into one matrix.
Matrix vstack(const std::vector<Matrix>& parts) {
  std::size_t rows = 0;
  std::size_t cols = parts.empty() ? 0 : parts.front().cols();
  for (const auto& p : parts) rows += p.rows();
  Matrix out(rows, cols);
  std::size_t at = 0;
  for (const auto& p : parts) {
    for (std::size_t r = 0; r < p.rows(); ++r) {
      std::copy(p.row(r), p.row(r) + cols, out.row(at++));
    }
  }
  return out;
}

/// Feature matrix for grid points named by `indices` against a prebuilt
/// index (FeatureRequest assembly in one place for the four call sites).
Matrix grid_features(const vf::spatial::NeighborIndex& index,
                     const std::vector<double>& values,
                     const UniformGrid3& grid,
                     const std::vector<std::int64_t>& indices) {
  FeatureRequest req;
  req.tree = &index;
  req.values = &values;
  req.grid = &grid;
  req.indices = &indices;
  return extract_features(req);
}

/// Keep a random subset of rows (same permutation applied to X and Y).
void subset_rows(Matrix& X, Matrix& Y, std::size_t keep, std::uint64_t seed) {
  if (keep >= X.rows()) return;
  std::vector<std::size_t> order(X.rows());
  std::iota(order.begin(), order.end(), 0u);
  vf::util::Rng rng(seed, 0x726f7773);
  rng.shuffle(order);
  Matrix Xs(keep, X.cols()), Ys(keep, Y.cols());
  for (std::size_t r = 0; r < keep; ++r) {
    std::copy(X.row(order[r]), X.row(order[r]) + X.cols(), Xs.row(r));
    std::copy(Y.row(order[r]), Y.row(order[r]) + Y.cols(), Ys.row(r));
  }
  X = std::move(Xs);
  Y = std::move(Ys);
}

}  // namespace

TrainingSet build_training_set(const ScalarField& truth,
                               const Sampler& sampler,
                               const FcnnConfig& config) {
  if (config.train_fractions.empty()) {
    throw std::invalid_argument("build_training_set: no train fractions");
  }
  VF_OBS_SPAN("build_training_set");
  std::vector<Matrix> xs, ys;
  std::uint64_t seed = config.seed;
  for (double frac : config.train_fractions) {
    SampleCloud cloud = sampler.sample(truth, frac, seed++);
    auto voids = cloud.void_indices();
    // One explicit index per sampled cloud, shared by every feature query
    // of this fraction rather than rebuilt inside extract_features. The
    // void sweep is dense, so Auto resolves to the grid-hash.
    auto index = vf::spatial::build_index(
        cloud.points(), vf::spatial::IndexKind::Auto, voids.size());
    xs.push_back(grid_features(*index, cloud.values(), truth.grid(), voids));
    ys.push_back(extract_targets(truth, voids, config.with_gradients));
  }
  TrainingSet set{vstack(xs), vstack(ys)};

  std::size_t keep = set.X.rows();
  if (config.train_subset < 1.0) {
    keep = static_cast<std::size_t>(config.train_subset *
                                    static_cast<double>(keep));
  }
  if (config.max_train_rows > 0) {
    keep = std::min(keep, config.max_train_rows);
  }
  keep = std::max<std::size_t>(keep, 1);
  subset_rows(set.X, set.Y, keep, config.seed ^ 0xabcdu);
  return set;
}

PretrainResult pretrain(const ScalarField& truth, const Sampler& sampler,
                        const FcnnConfig& config) {
  VF_OBS_SPAN("pretrain");
  vf::util::Timer data_timer;  // vf-lint: allow(raw-timer) feeds PretrainResult
  TrainingSet set = build_training_set(truth, sampler, config);

  PretrainResult result;
  result.train_rows = set.X.rows();
  result.model.with_gradients = config.with_gradients;
  result.model.dataset = truth.name();
  result.model.in_norm = Normalizer::fit(set.X);
  result.model.out_norm = Normalizer::fit(set.Y);
  if (config.with_gradients && config.gradient_loss_weight != 1.0 &&
      config.gradient_loss_weight > 0.0) {
    // Inflating a column's stddev shrinks its normalised targets, scaling
    // that column's squared-error contribution by gradient_loss_weight.
    double inflate = 1.0 / std::sqrt(config.gradient_loss_weight);
    for (std::size_t c = 1; c < result.model.out_norm.stddev.size(); ++c) {
      result.model.out_norm.stddev[c] *= inflate;
    }
  }
  result.model.in_norm.apply(set.X);
  result.model.out_norm.apply(set.Y);
  result.data_seconds = data_timer.seconds();

  result.model.net = vf::nn::Network::mlp(
      static_cast<std::size_t>(kFeatureDim), config.hidden,
      config.with_gradients ? kTargetDimGrad : kTargetDimScalar, config.seed);

  vf::nn::TrainOptions topt;
  topt.epochs = config.epochs;
  topt.batch_size = config.batch_size;
  topt.learning_rate = config.learning_rate;
  topt.schedule = config.lr_schedule;
  topt.shuffle_seed = config.seed ^ 0x5a5a;
  topt.checkpoint_dir = config.checkpoint_dir;
  topt.checkpoint_every = config.checkpoint_every;
  topt.checkpoint_keep = config.checkpoint_keep;
  topt.resume = config.resume;
  vf::nn::Trainer trainer(topt);
  result.history = trainer.fit(result.model.net, set.X, set.Y);
  return result;
}

vf::nn::TrainHistory fine_tune(FcnnModel& model, const ScalarField& truth,
                               const Sampler& sampler,
                               const FcnnConfig& config, FineTuneMode mode,
                               int epochs, bool refit_normalization) {
  TrainingSet set = build_training_set(truth, sampler, config);
  if (refit_normalization) {
    // Cross-simulation transfer: rebind the model's I/O space to the new
    // data's statistics before adapting the weights.
    model.in_norm = Normalizer::fit(set.X);
    model.out_norm = Normalizer::fit(set.Y);
  }
  // Within one simulation the pretraining normalisation is kept so the
  // model's I/O space is stable across timesteps (weights adapt instead).
  model.in_norm.apply(set.X);
  model.out_norm.apply(set.Y);

  switch (mode) {
    case FineTuneMode::FullNetwork:
      model.net.set_all_trainable(true);
      break;
    case FineTuneMode::LastTwoLayers:
      model.net.set_trainable_last_dense(2);
      break;
  }

  vf::nn::TrainOptions topt;
  topt.epochs = epochs;
  topt.batch_size = config.batch_size;
  topt.learning_rate = config.learning_rate;
  topt.schedule = config.lr_schedule;
  topt.shuffle_seed = config.seed ^ 0x0f1e2d;
  // Forward the checkpoint wiring just like pretrain: the in-situ pipeline
  // fine-tunes every timestep and needs each step crash-resumable.
  topt.checkpoint_dir = config.checkpoint_dir;
  topt.checkpoint_every = config.checkpoint_every;
  topt.checkpoint_keep = config.checkpoint_keep;
  topt.resume = config.resume;
  vf::nn::Trainer trainer(topt);
  auto history = trainer.fit(model.net, set.X, set.Y);
  model.net.set_all_trainable(true);  // leave the model unrestricted
  return history;
}

FcnnReconstructor::FcnnReconstructor(FcnnModel model,
                                     const ReconstructOptions& opts)
    : model_(std::move(model)), opts_(opts) {
  if (opts_.quant != vf::nn::QuantPolicy::None) {
    // Quantize once; every reconstruct shares the immutable packed weights.
    qnet_ = vf::nn::QuantizedNetwork(model_.net, opts_.quant);
  }
}

const vf::spatial::NeighborIndex& FcnnReconstructor::bound_index(
    const SampleCloud& cloud, std::size_t expected_queries) {
  const void* key = static_cast<const void*>(cloud.points().data());
  const bool same_cloud = key == tree_key_ && cloud.size() == tree_count_;
  vf::spatial::IndexKind want = opts_.index;
  if (want == vf::spatial::IndexKind::Auto) {
    want = vf::spatial::select_index_kind(
        same_cloud ? bound_.size() : cloud.size(), expected_queries);
  }
  if (!same_cloud || want != bound_kind_ || !index_) {
    VF_OBS_SPAN("tree_build");
    VF_OBS_COUNT("core.reconstruct.tree_builds", 1);
    if (!same_cloud) {
      // Scrub once per bound cloud: the scrubbed copy is what the index,
      // the feature queries, and the value pinning all see.
      bound_ = cloud.scrubbed(scrub_nonfinite_, scrub_duplicates_);
    }
    index_ =
        vf::spatial::build_index(bound_.points(), want, expected_queries);
    bound_kind_ = want;
    tree_key_ = key;
    tree_count_ = cloud.size();
  }
  return *index_;
}

Matrix FcnnReconstructor::predict(Matrix X) {
  if (opts_.quant == vf::nn::QuantPolicy::None) return model_.predict(X);
  model_.in_norm.apply(X);
  Matrix Y;
  vf::nn::QuantScratch scratch;
  qnet_.infer(X, Y, scratch);  // streams rows in cache-sized chunks
  model_.out_norm.invert(Y);
  return Y;
}

FcnnReconstructor::FullReconstruction
FcnnReconstructor::reconstruct_with_gradients(const SampleCloud& cloud,
                                              const UniformGrid3& grid) {
  if (!model_.with_gradients) {
    throw std::logic_error(
        "reconstruct_with_gradients: model has scalar-only outputs");
  }
  VF_OBS_SPAN("fcnn_reconstruct");
  FullReconstruction out{
      ScalarField(grid, "fcnn"),
      {ScalarField(grid, "fcnn_dx"), ScalarField(grid, "fcnn_dy"),
       ScalarField(grid, "fcnn_dz")}};

  // Predict all four outputs at every grid point, then pin sampled points'
  // scalars to their stored values when the grids match.
  std::vector<std::int64_t> all(static_cast<std::size_t>(grid.point_count()));
  std::iota(all.begin(), all.end(), 0);
  const auto& index =
      bound_index(cloud, static_cast<std::size_t>(grid.point_count()));
  Matrix X, Y;
  {
    VF_OBS_SPAN("extract_features");
    X = grid_features(index, bound_.values(), grid, all);
  }
  {
    VF_OBS_SPAN("inference");
    Y = predict(std::move(X));
  }
  vf::util::parallel_for(0, grid.point_count(), [&](std::int64_t i) {
    auto r = static_cast<std::size_t>(i);
    out.scalar[i] = Y(r, 0);
    out.gradient.dx[i] = Y(r, 1);
    out.gradient.dy[i] = Y(r, 2);
    out.gradient.dz[i] = Y(r, 3);
  });
  if (bound_.has_grid() && bound_.grid() == grid) {
    const auto& kept = bound_.kept_indices();
    const auto& vals = bound_.values();
    for (std::size_t i = 0; i < kept.size(); ++i) {
      out.scalar[kept[i]] = vals[i];
    }
  }
  return out;
}

ScalarField FcnnReconstructor::reconstruct(const SampleCloud& cloud,
                                           const UniformGrid3& grid) {
  ReconstructReport report;
  return reconstruct(cloud, grid, report);
}

ScalarField FcnnReconstructor::reconstruct(const SampleCloud& cloud,
                                           const UniformGrid3& grid,
                                           ReconstructReport& report) {
  report = ReconstructReport{};
  report.input_points = cloud.size();
  VF_OBS_SPAN("fcnn_reconstruct");
  VF_OBS_COUNT("core.reconstruct.calls", 1);
  const auto& index =
      bound_index(cloud, static_cast<std::size_t>(grid.point_count()));
  report.scrubbed_nonfinite = scrub_nonfinite_;
  report.scrubbed_duplicates = scrub_duplicates_;

  ScalarField out(grid, "fcnn");
  const bool same_grid = bound_.has_grid() && bound_.grid() == grid;

  // Write Y's scalar column to the targeted indices, replacing any
  // non-finite prediction with a Shepard estimate from the scrubbed
  // samples; the repair is accounted as a degraded point.
  auto write_scalar = [&](const std::vector<std::int64_t>& targets,
                          const Matrix& Y) {
    vf::util::parallel_for(
        0, static_cast<std::int64_t>(targets.size()), [&](std::int64_t i) {
          out[targets[static_cast<std::size_t>(i)]] =
              Y(static_cast<std::size_t>(i), 0);
        });
    std::size_t degraded = 0;
    for (std::size_t i = 0; i < targets.size(); ++i) {
      if (std::isfinite(Y(i, 0))) continue;
      out[targets[i]] = shepard_estimate(index, bound_.values(),
                                         grid.position(targets[i]),
                                         opts_.repair_neighbors);
      ++degraded;
    }
    report.predicted_points += targets.size() - degraded;
    report.degraded_points += degraded;
  };

  if (same_grid) {
    // Sampled points keep their stored values; only voids are predicted.
    auto voids = bound_.void_indices();
    Matrix X, Y;
    {
      VF_OBS_SPAN("extract_features");
      X = grid_features(index, bound_.values(), grid, voids);
    }
    {
      VF_OBS_SPAN("inference");
      Y = predict(std::move(X));
    }
    const auto& kept = bound_.kept_indices();
    const auto& vals = bound_.values();
    for (std::size_t i = 0; i < kept.size(); ++i) out[kept[i]] = vals[i];
    write_scalar(voids, Y);
  } else {
    // Foreign grid (e.g. upscaling): predict everywhere.
    std::vector<std::int64_t> all(static_cast<std::size_t>(grid.point_count()));
    std::iota(all.begin(), all.end(), 0);
    Matrix X, Y;
    {
      VF_OBS_SPAN("extract_features");
      X = grid_features(index, bound_.values(), grid, all);
    }
    {
      VF_OBS_SPAN("inference");
      Y = predict(std::move(X));
    }
    write_scalar(all, Y);
  }
  if (report.degraded_points > 0) {
    report.fallback = FallbackReason::NonFiniteOutput;
    report.detail = "network produced non-finite outputs";
  }
  VF_OBS_COUNT("core.reconstruct.predicted_points", report.predicted_points);
  VF_OBS_COUNT("core.reconstruct.repaired_points", report.degraded_points);
  return out;
}

}  // namespace vf::core
