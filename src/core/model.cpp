#include "vf/core/model.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>

#include "vf/nn/serialize.hpp"
#include "vf/util/atomic_io.hpp"
#include "vf/util/fault.hpp"

namespace vf::core {

using vf::nn::Matrix;

Matrix FcnnModel::predict(const Matrix& features, std::size_t batch) {
  Matrix X = features;
  in_norm.apply(X);
  const std::size_t out_dim = out_norm.mean.size();
  Matrix out(X.rows(), out_dim);
  Matrix bx, pred;
  vf::nn::InferScratch scratch;
  for (std::size_t begin = 0; begin < X.rows(); begin += batch) {
    std::size_t end = std::min(begin + batch, X.rows());
    bx.resize(end - begin, X.cols());
    for (std::size_t r = begin; r < end; ++r) {
      std::copy(X.row(r), X.row(r) + X.cols(), bx.row(r - begin));
    }
    net.infer(bx, pred, scratch);
    if (pred.cols() != out_dim) {
      throw std::logic_error("FcnnModel::predict: output width mismatch");
    }
    for (std::size_t r = begin; r < end; ++r) {
      std::copy(pred.row(r - begin), pred.row(r - begin) + out_dim,
                out.row(r));
    }
  }
  out_norm.invert(out);
  return out;
}

FcnnModel FcnnModel::clone() const {
  FcnnModel copy;
  copy.net = net.clone();
  copy.in_norm = in_norm;
  copy.out_norm = out_norm;
  copy.with_gradients = with_gradients;
  copy.dataset = dataset;
  copy.trained_timestep = trained_timestep;
  return copy;
}

std::size_t FcnnModel::memory_bytes() const {
  std::size_t bytes = net.parameter_count() * sizeof(double);
  bytes += (in_norm.mean.size() + in_norm.stddev.size() +
            out_norm.mean.size() + out_norm.stddev.size()) *
           sizeof(double);
  bytes += dataset.size();
  bytes += sizeof(FcnnModel);
  return bytes;
}

namespace {

constexpr char kMagic[4] = {'V', 'F', 'M', 'D'};
constexpr std::uint32_t kVersion = 2;
/// Width bound for normaliser vectors at load (real models use 23/4).
constexpr std::uint32_t kMaxNormWidth = 4096;

void write_normalizer(vf::util::ByteWriter& out, const Normalizer& n) {
  out.pod(static_cast<std::uint32_t>(n.mean.size()));
  out.bytes(n.mean.data(), n.mean.size() * sizeof(double));
  out.bytes(n.stddev.data(), n.stddev.size() * sizeof(double));
}

Normalizer read_normalizer(vf::util::ByteReader& in) {
  const auto len = in.pod<std::uint32_t>();
  if (len > kMaxNormWidth || 2ull * len * sizeof(double) > in.remaining()) {
    throw std::runtime_error("FcnnModel::load: corrupt normalizer");
  }
  Normalizer n;
  n.mean.resize(len);
  n.stddev.resize(len);
  in.bytes(n.mean.data(), len * sizeof(double));
  in.bytes(n.stddev.data(), len * sizeof(double));
  return n;
}

std::string metadata_payload(const FcnnModel& m) {
  vf::util::ByteWriter out;
  out.pod(static_cast<std::uint8_t>(m.with_gradients ? 1 : 0));
  out.str(m.dataset);
  out.pod(m.trained_timestep);
  write_normalizer(out, m.in_norm);
  write_normalizer(out, m.out_norm);
  return out.take();
}

/// Legacy (pre-versioning) two-file layout: metadata in `path`, network in
/// `path`.net. No checksums; bounds come from the real byte counts.
FcnnModel load_v1(std::istream& in, const std::string& path) {
  FcnnModel m;
  std::uint8_t grad = 1;
  in.read(reinterpret_cast<char*>(&grad), 1);
  m.with_gradients = grad != 0;
  std::uint32_t nlen = 0;
  in.read(reinterpret_cast<char*>(&nlen), sizeof nlen);
  if (!in || nlen > kMaxNormWidth) {
    throw std::runtime_error("FcnnModel::load: corrupt metadata");
  }
  m.dataset.resize(nlen);
  in.read(m.dataset.data(), nlen);
  in.read(reinterpret_cast<char*>(&m.trained_timestep),
          sizeof m.trained_timestep);
  const std::uint64_t rest = vf::util::bytes_remaining(in);
  std::string body(static_cast<std::size_t>(rest), '\0');
  in.read(body.data(), static_cast<std::streamsize>(rest));
  vf::util::ByteReader tail(body, "FcnnModel::load");
  m.in_norm = read_normalizer(tail);
  m.out_norm = read_normalizer(tail);
  tail.expect_end();
  m.net = vf::nn::load_network(path + ".net");
  return m;
}

}  // namespace

void FcnnModel::save(const std::string& path) const {
  // One atomic file: versioned header, then CRC-framed metadata and network
  // sections. A crash mid-save leaves the previous model intact; a torn
  // file is rejected at load rather than half-parsed.
  const std::string net_bytes = vf::nn::network_to_bytes(net);
  const std::string meta = metadata_payload(*this);
  vf::util::atomic_write_file(path, [&](std::ostream& out) {
    out.write(kMagic, 4);
    const std::uint32_t version = kVersion;
    out.write(reinterpret_cast<const char*>(&version), sizeof version);
    vf::util::write_crc_section(out, meta);
    vf::util::write_crc_section(out, net_bytes);
  });
}

FcnnModel FcnnModel::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in || vf::util::fault::should_fail("model_read")) {
    throw std::runtime_error("FcnnModel::load: cannot open " + path);
  }
  char magic[4];
  in.read(magic, 4);
  if (!in || std::memcmp(magic, kMagic, 4) != 0) {
    throw std::runtime_error("FcnnModel::load: bad magic in " + path);
  }
  std::uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof version);
  if (!in) throw std::runtime_error("FcnnModel::load: truncated " + path);
  if (version != kVersion) {
    // Not a known version marker: assume the legacy layout, whose next
    // bytes are the grad flag + name length (never equal to a small
    // version integer — the flag byte is 0/1 and names are short).
    in.seekg(4);
    return load_v1(in, path);
  }
  FcnnModel m;
  const std::string meta = vf::util::read_crc_section(
      in, vf::util::bytes_remaining(in), "FcnnModel::load");
  vf::util::ByteReader meta_in(meta, "FcnnModel::load");
  m.with_gradients = meta_in.pod<std::uint8_t>() != 0;
  m.dataset = meta_in.str(kMaxNormWidth);
  m.trained_timestep = meta_in.pod<double>();
  m.in_norm = read_normalizer(meta_in);
  m.out_norm = read_normalizer(meta_in);
  meta_in.expect_end();
  const std::string net_bytes = vf::util::read_crc_section(
      in, vf::util::bytes_remaining(in), "FcnnModel::load");
  vf::util::expect_eof(in, "FcnnModel::load");
  m.net = vf::nn::network_from_bytes(net_bytes, "FcnnModel::load");
  return m;
}

}  // namespace vf::core
