#include "vf/core/model.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>

#include "vf/nn/serialize.hpp"

namespace vf::core {

using vf::nn::Matrix;

Matrix FcnnModel::predict(const Matrix& features, std::size_t batch) {
  Matrix X = features;
  in_norm.apply(X);
  const std::size_t out_dim = out_norm.mean.size();
  Matrix out(X.rows(), out_dim);
  Matrix bx, pred;
  vf::nn::InferScratch scratch;
  for (std::size_t begin = 0; begin < X.rows(); begin += batch) {
    std::size_t end = std::min(begin + batch, X.rows());
    bx.resize(end - begin, X.cols());
    for (std::size_t r = begin; r < end; ++r) {
      std::copy(X.row(r), X.row(r) + X.cols(), bx.row(r - begin));
    }
    net.infer(bx, pred, scratch);
    if (pred.cols() != out_dim) {
      throw std::logic_error("FcnnModel::predict: output width mismatch");
    }
    for (std::size_t r = begin; r < end; ++r) {
      std::copy(pred.row(r - begin), pred.row(r - begin) + out_dim,
                out.row(r));
    }
  }
  out_norm.invert(out);
  return out;
}

FcnnModel FcnnModel::clone() const {
  FcnnModel copy;
  copy.net = net.clone();
  copy.in_norm = in_norm;
  copy.out_norm = out_norm;
  copy.with_gradients = with_gradients;
  copy.dataset = dataset;
  copy.trained_timestep = trained_timestep;
  return copy;
}

namespace {

constexpr char kMagic[4] = {'V', 'F', 'M', 'D'};

void write_normalizer(std::ostream& out, const Normalizer& n) {
  auto len = static_cast<std::uint32_t>(n.mean.size());
  out.write(reinterpret_cast<const char*>(&len), sizeof len);
  out.write(reinterpret_cast<const char*>(n.mean.data()),
            static_cast<std::streamsize>(len * sizeof(double)));
  out.write(reinterpret_cast<const char*>(n.stddev.data()),
            static_cast<std::streamsize>(len * sizeof(double)));
}

Normalizer read_normalizer(std::istream& in) {
  std::uint32_t len = 0;
  in.read(reinterpret_cast<char*>(&len), sizeof len);
  if (!in || len > 4096) {
    throw std::runtime_error("FcnnModel: corrupt normalizer");
  }
  Normalizer n;
  n.mean.resize(len);
  n.stddev.resize(len);
  in.read(reinterpret_cast<char*>(n.mean.data()),
          static_cast<std::streamsize>(len * sizeof(double)));
  in.read(reinterpret_cast<char*>(n.stddev.data()),
          static_cast<std::streamsize>(len * sizeof(double)));
  return n;
}

}  // namespace

void FcnnModel::save(const std::string& path) const {
  // Header + metadata + normalisers in the .vfmd file; the network itself
  // reuses the VFNN serializer in a sibling stream appended to the file.
  {
    std::ofstream out(path, std::ios::binary);
    if (!out) throw std::runtime_error("FcnnModel::save: cannot open " + path);
    out.write(kMagic, 4);
    std::uint8_t grad = with_gradients ? 1 : 0;
    out.write(reinterpret_cast<const char*>(&grad), 1);
    auto nlen = static_cast<std::uint32_t>(dataset.size());
    out.write(reinterpret_cast<const char*>(&nlen), sizeof nlen);
    out.write(dataset.data(), nlen);
    out.write(reinterpret_cast<const char*>(&trained_timestep),
              sizeof trained_timestep);
    write_normalizer(out, in_norm);
    write_normalizer(out, out_norm);
    if (!out) throw std::runtime_error("FcnnModel::save: write failed");
  }
  vf::nn::save_network(net, path + ".net");
}

FcnnModel FcnnModel::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("FcnnModel::load: cannot open " + path);
  char magic[4];
  in.read(magic, 4);
  if (!in || std::memcmp(magic, kMagic, 4) != 0) {
    throw std::runtime_error("FcnnModel::load: bad magic in " + path);
  }
  FcnnModel m;
  std::uint8_t grad = 1;
  in.read(reinterpret_cast<char*>(&grad), 1);
  m.with_gradients = grad != 0;
  std::uint32_t nlen = 0;
  in.read(reinterpret_cast<char*>(&nlen), sizeof nlen);
  if (!in || nlen > 4096) {
    throw std::runtime_error("FcnnModel::load: corrupt metadata");
  }
  m.dataset.resize(nlen);
  in.read(m.dataset.data(), nlen);
  in.read(reinterpret_cast<char*>(&m.trained_timestep),
          sizeof m.trained_timestep);
  m.in_norm = read_normalizer(in);
  m.out_norm = read_normalizer(in);
  m.net = vf::nn::load_network(path + ".net");
  return m;
}

}  // namespace vf::core
