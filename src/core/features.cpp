#include "vf/core/features.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "vf/util/contract.hpp"
#include "vf/util/parallel.hpp"

#include <omp.h>

namespace vf::core {

using vf::field::Vec3;
using vf::nn::Matrix;

Normalizer Normalizer::fit(const Matrix& m) {
  Normalizer n;
  const std::size_t cols = m.cols(), rows = m.rows();
  if (rows == 0) throw std::invalid_argument("Normalizer::fit: empty matrix");
  n.mean.assign(cols, 0.0);
  n.stddev.assign(cols, 0.0);
  for (std::size_t r = 0; r < rows; ++r) {
    const double* row = m.row(r);
    for (std::size_t c = 0; c < cols; ++c) n.mean[c] += row[c];
  }
  for (auto& v : n.mean) v /= static_cast<double>(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    const double* row = m.row(r);
    for (std::size_t c = 0; c < cols; ++c) {
      double d = row[c] - n.mean[c];
      n.stddev[c] += d * d;
    }
  }
  for (auto& v : n.stddev) {
    v = std::sqrt(v / static_cast<double>(rows));
    if (v < 1e-12) v = 1.0;  // constant column: leave centred only
  }
  return n;
}

namespace {

/// Row grain so parallel_for only forks when there are ~16k elements.
std::int64_t row_grain(std::size_t cols) {
  return std::max<std::int64_t>(
      1, (std::int64_t{1} << 14) / static_cast<std::int64_t>(
                                       std::max<std::size_t>(1, cols)));
}

}  // namespace

void Normalizer::apply(Matrix& m) const {
  if (m.cols() != mean.size()) {
    throw std::invalid_argument("Normalizer::apply: column mismatch");
  }
  const std::size_t cols = m.cols();
  const double* mu = mean.data();
  const double* sd = stddev.data();
  vf::util::parallel_for(
      0, static_cast<std::int64_t>(m.rows()),
      [&](std::int64_t r) {
        double* row = m.row(static_cast<std::size_t>(r));
#pragma omp simd
        for (std::size_t c = 0; c < cols; ++c) {
          row[c] = (row[c] - mu[c]) / sd[c];
        }
      },
      row_grain(cols));
}

void Normalizer::invert(Matrix& m) const {
  if (m.cols() != mean.size()) {
    throw std::invalid_argument("Normalizer::invert: column mismatch");
  }
  const std::size_t cols = m.cols();
  const double* mu = mean.data();
  const double* sd = stddev.data();
  vf::util::parallel_for(
      0, static_cast<std::int64_t>(m.rows()),
      [&](std::int64_t r) {
        double* row = m.row(static_cast<std::size_t>(r));
#pragma omp simd
        for (std::size_t c = 0; c < cols; ++c) {
          row[c] = row[c] * sd[c] + mu[c];
        }
      },
      row_grain(cols));
}

void extract_features_into(const vf::spatial::NeighborIndex& index,
                           const std::vector<double>& values,
                           const Vec3* queries, std::size_t count, Matrix& X,
                           FeatureScratch& scratch) {
  if (index.size() < kNeighbors) {
    throw std::invalid_argument("extract_features: cloud smaller than k");
  }
  if (values.size() != index.size()) {
    throw std::invalid_argument("extract_features: values/tree size mismatch");
  }
  const auto& pts = index.points();
  X.resize(count, kFeatureDim);
  if (count == 0) return;

  // Stage 1 — batched k-NN into SoA scratch. GridHashIndex answers this
  // with the cell-order sweep; KdTree with per-thread query scratch.
  constexpr auto uk = static_cast<std::size_t>(kNeighbors);
  scratch.indices.resize(count * uk);
  scratch.dist2.resize(count * uk);
  index.knn_batch(queries, count, kNeighbors, scratch.indices.data(),
                  scratch.dist2.data());

  // Stage 2 — row assembly from the staged neighbour indices: pure gathers
  // with no search logic, so the loop body stays branch-free and the
  // compiler vectorises the stores.
  const std::uint32_t* nbr = scratch.indices.data();
  vf::util::parallel_for(
      0, static_cast<std::int64_t>(count),
      [&](std::int64_t qi) {
        const auto u = static_cast<std::size_t>(qi);
        const Vec3& q = queries[u];
        const std::uint32_t* ni = nbr + u * uk;
        double* row = X.row(u);
        for (std::size_t j = 0; j < uk; ++j) {
          VF_BOUNDS_CHECK(ni[j], pts.size());
          const Vec3& p = pts[ni[j]];
          row[4 * j + 0] = p.x;
          row[4 * j + 1] = p.y;
          row[4 * j + 2] = p.z;
          row[4 * j + 3] = values[ni[j]];
        }
        row[4 * uk + 0] = q.x;
        row[4 * uk + 1] = q.y;
        row[4 * uk + 2] = q.z;
      },
      /*grain=*/512);
}

void extract_features_into(const vf::spatial::NeighborIndex& index,
                           const std::vector<double>& values,
                           const Vec3* queries, std::size_t count, Matrix& X) {
  FeatureScratch scratch;
  extract_features_into(index, values, queries, count, X, scratch);
}

Matrix extract_features(const FeatureRequest& req) {
  const bool has_cloud = req.cloud != nullptr;
  const bool has_tree = req.tree != nullptr || req.values != nullptr;
  if (has_cloud == has_tree) {
    throw std::invalid_argument(
        "extract_features: set exactly one sample source (cloud, or "
        "tree+values)");
  }
  if (has_tree && (req.tree == nullptr || req.values == nullptr)) {
    throw std::invalid_argument(
        "extract_features: tree and values must be set together");
  }
  const bool has_points = req.points != nullptr;
  const bool has_grid = req.grid != nullptr || req.indices != nullptr;
  if (has_points == has_grid) {
    throw std::invalid_argument(
        "extract_features: set exactly one query shape (points, or "
        "grid+indices)");
  }
  if (has_grid && (req.grid == nullptr || req.indices == nullptr)) {
    throw std::invalid_argument(
        "extract_features: grid and indices must be set together");
  }

  const Vec3* queries = nullptr;
  std::size_t count = 0;
  std::vector<Vec3> scratch;
  if (has_points) {
    queries = req.points->data();
    count = req.points->size();
  } else {
    scratch.resize(req.indices->size());
    const auto& grid = *req.grid;
    const auto& indices = *req.indices;
    vf::util::parallel_for(
        0, static_cast<std::int64_t>(indices.size()), [&](std::int64_t i) {
          scratch[static_cast<std::size_t>(i)] =
              grid.position(indices[static_cast<std::size_t>(i)]);
        });
    queries = scratch.data();
    count = scratch.size();
  }

  Matrix X;
  if (has_cloud) {
    // One-shot source: pick the index by this call's query density.
    const auto index = vf::spatial::build_index(
        req.cloud->points(), vf::spatial::IndexKind::Auto, count);
    extract_features_into(*index, req.cloud->values(), queries, count, X);
  } else {
    extract_features_into(*req.tree, *req.values, queries, count, X);
  }
  return X;
}

// Deprecated shims: each forwards straight to the FeatureRequest entry.
// (Defining a deprecated function is not itself a use, so these compile
// clean under -Werror; only external callers get the warning.)

Matrix extract_features(const vf::spatial::KdTree& tree,
                        const std::vector<double>& values,
                        const std::vector<Vec3>& queries) {
  FeatureRequest req;
  req.tree = &tree;
  req.values = &values;
  req.points = &queries;
  return extract_features(req);
}

Matrix extract_features(const vf::sampling::SampleCloud& cloud,
                        const std::vector<Vec3>& queries) {
  FeatureRequest req;
  req.cloud = &cloud;
  req.points = &queries;
  return extract_features(req);
}

Matrix extract_features(const vf::sampling::SampleCloud& cloud,
                        const vf::field::UniformGrid3& grid,
                        const std::vector<std::int64_t>& indices) {
  FeatureRequest req;
  req.cloud = &cloud;
  req.grid = &grid;
  req.indices = &indices;
  return extract_features(req);
}

Matrix extract_targets(const vf::field::ScalarField& truth,
                       const std::vector<std::int64_t>& indices,
                       bool with_gradients) {
  const int width = with_gradients ? kTargetDimGrad : kTargetDimScalar;
  Matrix Y(indices.size(), static_cast<std::size_t>(width));
  const auto& grid = truth.grid();

  vf::util::parallel_for(
      0, static_cast<std::int64_t>(indices.size()), [&](std::int64_t i) {
        std::int64_t idx = indices[static_cast<std::size_t>(i)];
        double* row = Y.row(static_cast<std::size_t>(i));
        row[0] = truth[idx];
        if (with_gradients) {
          auto [gi, gj, gk] = grid.ijk(idx);
          auto g = vf::field::gradient_at(truth, gi, gj, gk);
          row[1] = g[0];
          row[2] = g[1];
          row[3] = g[2];
        }
      });
  return Y;
}

}  // namespace vf::core
