#include "vf/core/ensemble.hpp"

#include <cmath>
#include <stdexcept>

#include "vf/util/parallel.hpp"

namespace vf::core {

using vf::field::ScalarField;
using vf::field::UniformGrid3;
using vf::sampling::SampleCloud;
using vf::sampling::Sampler;

EnsembleReconstructor EnsembleReconstructor::pretrain(
    const ScalarField& truth, const Sampler& sampler, FcnnConfig config,
    int members) {
  if (members < 1) {
    throw std::invalid_argument("EnsembleReconstructor: members must be >= 1");
  }
  std::vector<FcnnModel> models;
  models.reserve(static_cast<std::size_t>(members));
  for (int m = 0; m < members; ++m) {
    auto cfg = config;
    // Independent weight init + shuffle order; the sampled training data
    // also re-draws, adding data diversity across members.
    cfg.seed = config.seed + 7919ull * static_cast<std::uint64_t>(m + 1);
    models.push_back(core::pretrain(truth, sampler, cfg).model);
  }
  return EnsembleReconstructor(std::move(models));
}

EnsembleReconstructor::EnsembleReconstructor(std::vector<FcnnModel> models)
    : members_(std::move(models)) {
  if (members_.empty()) {
    throw std::invalid_argument("EnsembleReconstructor: no members");
  }
}

void EnsembleReconstructor::fine_tune(const ScalarField& truth,
                                      const Sampler& sampler,
                                      const FcnnConfig& config, int epochs) {
  for (std::size_t m = 0; m < members_.size(); ++m) {
    auto cfg = config;
    cfg.seed = config.seed + 104729ull * (m + 1);
    core::fine_tune(members_[m], truth, sampler, cfg,
                    FineTuneMode::FullNetwork, epochs);
  }
}

EnsembleResult EnsembleReconstructor::reconstruct(const SampleCloud& cloud,
                                                  const UniformGrid3& grid) {
  EnsembleResult out{ScalarField(grid, "fcnn_ensemble_mean"),
                     ScalarField(grid, "fcnn_ensemble_stddev")};
  const auto n = grid.point_count();
  std::vector<double> sum(static_cast<std::size_t>(n), 0.0);
  std::vector<double> sumsq(static_cast<std::size_t>(n), 0.0);

  for (auto& model : members_) {
    FcnnReconstructor rec(model.clone());
    auto field = rec.reconstruct(cloud, grid);
    for (std::int64_t i = 0; i < n; ++i) {
      sum[static_cast<std::size_t>(i)] += field[i];
      sumsq[static_cast<std::size_t>(i)] += field[i] * field[i];
    }
  }
  const double inv = 1.0 / static_cast<double>(members_.size());
  vf::util::parallel_for(0, n, [&](std::int64_t i) {
    auto ui = static_cast<std::size_t>(i);
    double mean = sum[ui] * inv;
    double var = std::max(sumsq[ui] * inv - mean * mean, 0.0);
    out.mean[i] = mean;
    out.stddev[i] = std::sqrt(var);
  });
  return out;
}

}  // namespace vf::core
