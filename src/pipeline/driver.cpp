#include "vf/pipeline/driver.hpp"

#include <stdexcept>
#include <utility>

#include "vf/data/registry.hpp"

namespace vf::pipeline {

SimulationDriver::SimulationDriver(DriverOptions options)
    : SimulationDriver(
          vf::data::make_dataset(options.dataset, options.dataset_seed),
          options) {}

SimulationDriver::SimulationDriver(std::unique_ptr<vf::data::Dataset> dataset,
                                   DriverOptions options)
    : options_(std::move(options)),
      dataset_(std::move(dataset)),
      next_t_(options_.t0),
      stride_(options_.stride) {
  if (!dataset_) {
    throw std::invalid_argument("SimulationDriver: null dataset");
  }
  if (options_.dims.nx < 2 || options_.dims.ny < 2 || options_.dims.nz < 2) {
    throw std::invalid_argument(
        "SimulationDriver: dims must be at least 2 per axis");
  }
}

std::optional<Timestep> SimulationDriver::next() {
  if (options_.max_steps > 0 && emitted_ >= options_.max_steps) {
    return std::nullopt;
  }
  Timestep step;
  step.index = emitted_;
  step.t = next_t_;
  step.truth = dataset_->generate(options_.dims, next_t_);
  next_t_ += stride_;
  ++emitted_;
  return step;
}

}  // namespace vf::pipeline
