#include "vf/pipeline/insitu.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "vf/api/reconstruct.hpp"
#include "vf/field/metrics.hpp"
#include "vf/obs/obs.hpp"

namespace vf::pipeline {

namespace fs = std::filesystem;

InsituPipeline::InsituPipeline(InsituOptions options)
    : options_(std::move(options)),
      sampler_(vf::sampling::make_sampler(options_.sampler)),
      router_(options_.serve),
      monitor_(options_.drift) {
  if (options_.workdir.empty()) {
    throw std::invalid_argument("InsituPipeline: workdir is required");
  }
  if (options_.session_key.empty()) {
    throw std::invalid_argument("InsituPipeline: session_key is required");
  }
  options_.epochs_per_step = std::max(1, options_.epochs_per_step);
  options_.refinetune_epochs = std::max(1, options_.refinetune_epochs);
  options_.workers = std::max<std::size_t>(1, options_.workers);
  options_.queue_max = std::max<std::size_t>(1, options_.queue_max);
  fs::create_directories(fs::path(options_.workdir) / "steps");
  fs::create_directories(fs::path(options_.workdir) / "models");
  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

InsituPipeline::~InsituPipeline() { stop(); }

std::string InsituPipeline::step_dir(int step, const char* suffix) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "step_%06d%s", step, suffix);
  return (fs::path(options_.workdir) / "steps" / buf).string();
}

void InsituPipeline::ingest(Timestep step) {
  VF_OBS_SPAN("pipeline/ingest");
  Job job;
  job.step = step.index;
  job.t = step.t;
  {
    // The in-situ stage proper: the only code that sees the full-
    // resolution truth while it is resident.
    VF_OBS_SPAN("pipeline/sample");
    job.cloud = sampler_->sample(
        step.truth, options_.sample_fraction,
        options_.seed ^
            (static_cast<std::uint64_t>(step.index) * 0x9e3779b97f4a7c15ULL));
  }
  job.truth = std::move(step.truth);
  {
    const vf::util::MutexLock lock(jobs_mu_);
    ++ingested_;
  }
  VF_OBS_COUNT("pipeline.steps_ingested", 1);

  if (!started_) {
    // Step 0 trains synchronously: there is no model to warm-start from
    // and nothing serveable until the first publish lands. Throws on
    // failure — a pipeline that cannot pretrain has nothing to stream.
    started_ = true;
    process(std::move(job));
    return;
  }

  {
    const vf::util::MutexLock lock(jobs_mu_);
    while (jobs_.size() >= options_.queue_max) {
      // Full: the newest step matters most in situ, so the OLDEST pending
      // fine-tune is the one to drop.
      jobs_.pop_front();
      ++coalesced_;
      VF_OBS_COUNT("pipeline.steps_coalesced", 1);
    }
    jobs_.push_back(std::move(job));
  }
  jobs_cv_.notify_one();
}

void InsituPipeline::worker_loop() {
  for (;;) {
    Job job;
    {
      const vf::util::MutexLock lock(jobs_mu_);
      jobs_cv_.wait(jobs_mu_, [&]() VF_REQUIRES(jobs_mu_) {
        return stopping_ || !jobs_.empty();
      });
      if (jobs_.empty()) return;  // stopping and fully drained
      job = std::move(jobs_.front());
      jobs_.pop_front();
      ++in_flight_;
    }
    try {
      process(std::move(job));
    } catch (const std::exception&) {
      // A failed fine-tune skips this step's publish; the serve tier
      // keeps answering from the previous generation.
      const vf::util::MutexLock lock(state_mu_);
      ++train_failures_;
      VF_OBS_COUNT("pipeline.train_failures", 1);
    }
    {
      const vf::util::MutexLock lock(jobs_mu_);
      --in_flight_;
    }
    jobs_cv_.notify_all();  // drain() may be waiting
  }
}

double InsituPipeline::tune(vf::core::FcnnModel& model, const Job& job,
                            int epochs, const char* suffix) {
  VF_OBS_SPAN("pipeline/finetune");
  vf::core::FcnnConfig cfg = options_.train;
  // Distinct shuffle stream per (step, pass) so consecutive steps don't
  // replay one permutation; the step directory makes each pass
  // independently crash-resumable.
  cfg.seed = options_.train.seed ^
             (static_cast<std::uint64_t>(job.step) * 2654435761ULL) ^
             (suffix[0] != '\0' ? 0x5eedULL : 0ULL);
  cfg.checkpoint_dir = step_dir(job.step, suffix);
  cfg.checkpoint_every = std::max(1, cfg.checkpoint_every);
  cfg.resume = true;
  const auto t0 = std::chrono::steady_clock::now();
  (void)vf::core::fine_tune(model, job.truth, *sampler_, cfg,
                            vf::core::FineTuneMode::FullNetwork, epochs);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

double InsituPipeline::evaluate_snr(const vf::core::FcnnModel* model,
                                    const Job& job) const {
  VF_OBS_SPAN("pipeline/evaluate");
  vf::api::ReconstructOptions ro;
  if (model != nullptr) {
    ro.method = vf::api::Method::FcnnStream;
    ro.model = model;
  } else {
    ro.method = vf::api::Method::Shepard;
  }
  vf::api::Reconstructor rec(ro);
  const auto result = rec.reconstruct(job.cloud, job.truth.grid());
  return vf::field::snr_db(job.truth, result.field);
}

bool InsituPipeline::publish(const Job& job, const std::string& model_path,
                             double snr_db) {
  VF_OBS_SPAN("pipeline/publish");
  const vf::util::MutexLock lock(publish_mu_);
  if (job.step <= published_step_) {
    // A newer step's model already serves; swapping an older one in would
    // move the tier backwards in simulation time.
    ++skipped_stale_;
    VF_OBS_COUNT("pipeline.publish_skipped_stale", 1);
    return false;
  }
  // The hot swap: re-registering the session key bumps the registry
  // entry's generation — in-flight loads of the superseded model are
  // discarded on completion, in-flight queries finish safely against
  // whichever model they already resolved.
  router_.add_session(options_.session_key, job.cloud, model_path);
  published_step_ = job.step;
  serving_classical_ = model_path.empty();
  published_snr_ = snr_db;
  ++generation_;
  VF_OBS_COUNT("pipeline.publishes", 1);
  VF_OBS_GAUGE("pipeline.generation",
               static_cast<std::int64_t>(generation_));
  return true;
}

void InsituPipeline::process(Job job) {
  std::shared_ptr<const vf::core::FcnnModel> base;
  {
    const vf::util::MutexLock lock(state_mu_);
    base = latest_model_;
  }

  vf::core::FcnnModel model;
  double train_seconds = 0.0;
  if (!base) {
    // Step 0: full pretrain (also the crash-recovery path when the
    // process restarts — the step's checkpoint directory resumes it).
    VF_OBS_SPAN("pipeline/pretrain");
    vf::core::FcnnConfig cfg = options_.train;
    cfg.checkpoint_dir = step_dir(job.step, "");
    cfg.checkpoint_every = std::max(1, cfg.checkpoint_every);
    cfg.resume = true;
    const auto t0 = std::chrono::steady_clock::now();
    auto result = vf::core::pretrain(job.truth, *sampler_, cfg);
    train_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    model = std::move(result.model);
  } else {
    model = base->clone();
    train_seconds = tune(model, job, options_.epochs_per_step, "");
  }

  double snr = evaluate_snr(&model, job);
  const double classical = evaluate_snr(nullptr, job);
  DriftAction action;
  {
    const vf::util::MutexLock lock(state_mu_);
    action = monitor_.observe(job.step, snr, classical);
  }
  if (action == DriftAction::Refinetune) {
    // Below the floor: buy extra epochs before degrading the session.
    train_seconds += tune(model, job, options_.refinetune_epochs, "_refit");
    snr = evaluate_snr(&model, job);
    const vf::util::MutexLock lock(state_mu_);
    action = monitor_.observe(job.step, snr, classical);
  }
  bool degrade;
  {
    const vf::util::MutexLock lock(state_mu_);
    degrade = monitor_.fallen_back();
  }

  // The model is saved (and kept as the warm-start source) even when this
  // step publishes classically: recovery fine-tunes from the freshest
  // weights, not from the pre-drift past.
  char name[32];
  std::snprintf(name, sizeof(name), "step_%06d.vfmd", job.step);
  const std::string model_path =
      (fs::path(options_.workdir) / "models" / name).string();
  model.save(model_path);

  const bool published =
      publish(job, degrade ? std::string() : model_path, snr);

  {
    const vf::util::MutexLock lock(state_mu_);
    ++trained_;
    if (job.step > latest_model_step_) {
      latest_model_ =
          std::make_shared<const vf::core::FcnnModel>(std::move(model));
      latest_model_step_ = job.step;
    }
  }

  if (options_.on_step) {
    StepReport report;
    report.truth = &job.truth;
    report.cloud = &job.cloud;
    report.step = job.step;
    report.t = job.t;
    report.train_seconds = train_seconds;
    report.model_snr_db = snr;
    report.classical_snr_db = classical;
    report.action = action;
    report.published = published;
    report.classical = degrade;
    report.generation = generation();
    options_.on_step(report);
  }
}

void InsituPipeline::drain() {
  const vf::util::MutexLock lock(jobs_mu_);
  jobs_cv_.wait(jobs_mu_, [&]() VF_REQUIRES(jobs_mu_) {
    return jobs_.empty() && in_flight_ == 0;
  });
}

void InsituPipeline::stop() {
  {
    const vf::util::MutexLock lock(jobs_mu_);
    stopping_ = true;
  }
  jobs_cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

std::uint64_t InsituPipeline::generation() const {
  const vf::util::MutexLock lock(publish_mu_);
  return generation_;
}

void InsituPipeline::set_drift_floor(double floor_snr_db) {
  const vf::util::MutexLock lock(state_mu_);
  monitor_.set_floor_snr_db(floor_snr_db);
}

std::shared_ptr<const vf::core::FcnnModel> InsituPipeline::latest_model()
    const {
  const vf::util::MutexLock lock(state_mu_);
  return latest_model_;
}

InsituStats InsituPipeline::stats() const {
  InsituStats s;
  {
    const vf::util::MutexLock lock(jobs_mu_);
    s.steps_ingested = ingested_;
    s.steps_coalesced = coalesced_;
    s.pending_jobs = jobs_.size() + in_flight_;
  }
  {
    const vf::util::MutexLock lock(state_mu_);
    s.steps_trained = trained_;
    s.train_failures = train_failures_;
    s.last_snr_db = monitor_.last_model_snr_db();
    s.last_classical_snr_db = monitor_.last_classical_snr_db();
    s.refinetunes = monitor_.refinetunes();
    s.fallbacks = monitor_.fallbacks();
    s.recoveries = monitor_.recoveries();
  }
  {
    const vf::util::MutexLock lock(publish_mu_);
    s.publishes = generation_;
    s.publish_skipped_stale = skipped_stale_;
    s.last_published_step = published_step_;
    s.serving_classical = serving_classical_;
    s.published_snr_db = published_snr_;
  }
  s.serve = router_.stats();
  return s;
}

}  // namespace vf::pipeline
