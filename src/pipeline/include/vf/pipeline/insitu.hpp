#pragma once
// InsituPipeline — the live loop the paper demonstrates (DESIGN.md §14):
//
//   simulation step ──> importance sample (in situ, caller's thread)
//                          │
//                          ▼  bounded job queue (oldest pending dropped)
//                   fine-tune worker pool
//                     · warm-start from the latest published weights
//                     · ~10 epochs per step, checkpointed + resumable
//                     · score model vs classical SNR against the truth
//                     · DriftMonitor: re-finetune / fallback / recover
//                          │
//                          ▼
//                   hot-swap publish ──> ShardRouter / ModelRegistry
//                     · add_session() re-registration bumps the entry's
//                       generation; in-flight loads of the superseded
//                       model are discarded, in-flight queries complete
//                       against whichever model they resolved — every
//                       accepted query still gets exactly one answer.
//
// Step 0 pretrains synchronously (there is no model to warm-start from
// and no session to serve until it lands); every later step trains in the
// background while the simulation — and the serve tier — keep running.
//
// Failure domains: a fine-tune failure skips the step's publish (the tier
// keeps serving the previous generation); a drift fallback publishes the
// step's cloud as a *classical* session (empty model path) so queries
// degrade to Shepard estimates instead of a drifted model's predictions;
// a crash mid-fine-tune resumes from the step's checkpoint directory on
// re-ingest (core::fine_tune forwards FcnnConfig::checkpoint_*).

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "vf/core/fcnn.hpp"
#include "vf/pipeline/drift.hpp"
#include "vf/pipeline/driver.hpp"
#include "vf/sampling/samplers.hpp"
#include "vf/serve/router.hpp"
#include "vf/util/mutex.hpp"
#include "vf/util/thread_annotations.hpp"

namespace vf::pipeline {

/// Everything a finished step reports (the on_step callback's payload —
/// delivered from a worker thread; keep handlers cheap and thread-safe).
struct StepReport {
  int step = 0;
  double t = 0.0;
  double train_seconds = 0.0;
  double model_snr_db = 0.0;
  double classical_snr_db = 0.0;
  DriftAction action = DriftAction::None;
  bool published = false;   ///< false when a newer step already published
  bool classical = false;   ///< published as a classical (Shepard) session
  std::uint64_t generation = 0;  ///< publish count after this step
  /// Borrowed views of the step's data — valid ONLY inside the callback
  /// (the truth is released when the job completes).
  const vf::field::ScalarField* truth = nullptr;
  const vf::sampling::SampleCloud* cloud = nullptr;
};

struct InsituOptions {
  /// Sampler resolved through sampling::make_sampler.
  std::string sampler = "importance";
  /// Archival fraction the in-situ stage keeps per step.
  double sample_fraction = 0.05;
  /// Training configuration. `train.epochs` is the step-0 pretrain
  /// budget; later steps use epochs_per_step. checkpoint_* fields are
  /// overridden per step (each step gets its own directory under
  /// workdir/steps).
  vf::core::FcnnConfig train;
  /// Case-1 fine-tune budget per later step (the paper's ~10).
  int epochs_per_step = 10;
  /// Extra epochs a DriftAction::Refinetune buys before fallback.
  int refinetune_epochs = 10;
  DriftOptions drift;
  /// Background fine-tune workers. 1 (the default) chains steps strictly
  /// — each warm-starts from its predecessor; more workers overlap
  /// training at the cost of warm-starting from the latest *finished*
  /// step.
  std::size_t workers = 1;
  /// Bounded pending fine-tune jobs; when full, the OLDEST pending step
  /// is dropped (the newest data matters most in situ) and counted as
  /// coalesced.
  std::size_t queue_max = 2;
  /// Working directory for per-step checkpoints and published model
  /// files (required; created if missing).
  std::string workdir;
  /// Serve-tier session key every step publishes under.
  std::string session_key = "live";
  vf::serve::RouterOptions serve;
  std::uint64_t seed = 1;
  /// Optional per-step completion hook (worker thread!).
  std::function<void(const StepReport&)> on_step;
};

/// Monotonic pipeline counters, snapshot via InsituPipeline::stats().
struct InsituStats {
  int steps_ingested = 0;
  int steps_trained = 0;
  /// Pending jobs dropped because the queue was full when a newer step
  /// arrived.
  int steps_coalesced = 0;
  int train_failures = 0;
  std::uint64_t publishes = 0;  ///< hot-swaps pushed to the router
  std::uint64_t publish_skipped_stale = 0;
  int last_published_step = -1;
  bool serving_classical = false;
  /// SNR of the step currently being served (what `ready` reports).
  double published_snr_db = 0.0;
  double last_snr_db = 0.0;
  double last_classical_snr_db = 0.0;
  int refinetunes = 0;
  int fallbacks = 0;
  int recoveries = 0;
  std::size_t pending_jobs = 0;
  vf::serve::RouterStats serve;
};

class InsituPipeline {
 public:
  explicit InsituPipeline(InsituOptions options);
  ~InsituPipeline();
  InsituPipeline(const InsituPipeline&) = delete;
  InsituPipeline& operator=(const InsituPipeline&) = delete;

  /// Ingest one timestep: sample it down to the archival fraction on the
  /// calling thread (the in-situ stage — the truth is only briefly
  /// resident), then hand the fine-tune to the worker pool. The FIRST
  /// ingest pretrains and publishes synchronously, so a session is
  /// serveable before this returns. Throws on step-0 training failure;
  /// later steps report failures through stats().train_failures.
  void ingest(Timestep step);

  /// Block until every queued and in-flight fine-tune has finished (their
  /// publishes included). Workers stay alive for further ingests.
  void drain();

  /// drain() + join the workers. Idempotent; the destructor calls it.
  void stop();

  [[nodiscard]] InsituStats stats() const;

  /// The serve tier every step publishes into. Queries go through here
  /// (submit under options().session_key).
  [[nodiscard]] vf::serve::ShardRouter& router() { return router_; }
  [[nodiscard]] const vf::serve::ShardRouter& router() const {
    return router_;
  }

  /// Current published generation (number of hot-swaps, step 0 included).
  [[nodiscard]] std::uint64_t generation() const;

  /// Runtime drift-floor override (tests trip the ladder by raising the
  /// floor above a measured healthy SNR).
  void set_drift_floor(double floor_snr_db);

  /// The newest finished step's model — the warm-start source (null until
  /// the first step completes). The pointed-to model never mutates;
  /// later steps swap in a fresh instance.
  [[nodiscard]] std::shared_ptr<const vf::core::FcnnModel> latest_model()
      const;

  [[nodiscard]] const InsituOptions& options() const { return options_; }

 private:
  struct Job {
    int step = 0;
    double t = 0.0;
    vf::field::ScalarField truth;
    vf::sampling::SampleCloud cloud;
  };

  void worker_loop();
  /// Train + score + publish one step. Step 0 (no warm-start model yet)
  /// pretrains; later steps fine-tune. Throws on training failure.
  void process(Job job);
  /// Fine-tune `model` on `job` for `epochs` under the step's checkpoint
  /// directory (`suffix` distinguishes the re-finetune pass). Returns
  /// training seconds.
  double tune(vf::core::FcnnModel& model, const Job& job, int epochs,
              const char* suffix);
  [[nodiscard]] double evaluate_snr(const vf::core::FcnnModel* model,
                                    const Job& job) const;
  /// Serialised publish with a monotonic step guard; empty model_path
  /// publishes a classical session. Returns false when a newer step beat
  /// this one to the router.
  bool publish(const Job& job, const std::string& model_path,
               double snr_db);
  [[nodiscard]] std::string step_dir(int step, const char* suffix) const;

  InsituOptions options_;
  std::unique_ptr<vf::sampling::Sampler> sampler_;
  vf::serve::ShardRouter router_;

  // --- job queue (pipeline.jobs) ---
  mutable vf::util::Mutex jobs_mu_{"pipeline.jobs"};
  vf::util::CondVar jobs_cv_;
  std::deque<Job> jobs_ VF_GUARDED_BY(jobs_mu_);
  std::size_t in_flight_ VF_GUARDED_BY(jobs_mu_) = 0;
  bool stopping_ VF_GUARDED_BY(jobs_mu_) = false;
  int ingested_ VF_GUARDED_BY(jobs_mu_) = 0;
  int coalesced_ VF_GUARDED_BY(jobs_mu_) = 0;

  // --- model/drift state (pipeline.state) ---
  mutable vf::util::Mutex state_mu_{"pipeline.state"};
  std::shared_ptr<const vf::core::FcnnModel> latest_model_
      VF_GUARDED_BY(state_mu_);
  int latest_model_step_ VF_GUARDED_BY(state_mu_) = -1;
  DriftMonitor monitor_ VF_GUARDED_BY(state_mu_);
  int trained_ VF_GUARDED_BY(state_mu_) = 0;
  int train_failures_ VF_GUARDED_BY(state_mu_) = 0;

  // --- publish serialisation (pipeline.publish; the three pipeline
  // mutexes are only ever taken sequentially, never nested) ---
  mutable vf::util::Mutex publish_mu_{"pipeline.publish"};
  int published_step_ VF_GUARDED_BY(publish_mu_) = -1;
  std::uint64_t generation_ VF_GUARDED_BY(publish_mu_) = 0;
  std::uint64_t skipped_stale_ VF_GUARDED_BY(publish_mu_) = 0;
  bool serving_classical_ VF_GUARDED_BY(publish_mu_) = false;
  double published_snr_ VF_GUARDED_BY(publish_mu_) = 0.0;

  std::vector<std::thread> workers_;
  bool started_ = false;  // first ingest done (single ingester thread)
};

}  // namespace vf::pipeline
