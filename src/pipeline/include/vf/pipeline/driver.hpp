#pragma once
// SimulationDriver — the in-situ pipeline's stand-in for a running
// simulation (DESIGN.md §14).
//
// A real deployment links the pipeline into the simulation's timestep
// loop; here, the driver rasterises successive timesteps of a registered
// analytic dataset (IonizationDataset is the stress case: its ionisation
// front sweeps the domain, so the field a model was tuned on keeps moving
// out from under it). Each next() emits one full-resolution timestep —
// exactly what is briefly resident in situ before the sampler shrinks it
// to the archival fraction.
//
// The temporal stride is mutable mid-stream (set_stride): jumping it
// makes the front move faster than the fine-tune cadence can track,
// which is the injected-drift scenario the DriftMonitor tests and the
// `vfctl pipeline --inject-drift-at` demo use.

#include <memory>
#include <optional>
#include <string>

#include "vf/data/dataset.hpp"

namespace vf::pipeline {

struct DriverOptions {
  /// Registered dataset name ("hurricane", "combustion", "ionization").
  std::string dataset = "ionization";
  std::uint64_t dataset_seed = 0;
  /// Grid resolution each emitted timestep is rasterised at.
  vf::field::Dims dims{32, 32, 16};
  /// Simulation time of step 0 and the per-step advance.
  double t0 = 0.0;
  double stride = 1.0;
  /// Steps to emit before next() reports exhaustion (0 = unbounded).
  int max_steps = 8;
};

/// One emitted timestep: the step index, its simulation time, and the
/// full-resolution field (the only moment the truth exists in situ).
struct Timestep {
  int index = 0;
  double t = 0.0;
  vf::field::ScalarField truth;
};

class SimulationDriver {
 public:
  /// Resolve `options.dataset` through the registry (throws
  /// std::invalid_argument for unknown names, like data::make_dataset).
  explicit SimulationDriver(DriverOptions options);

  /// Injection constructor for tests / custom sources; `dataset` must be
  /// non-null.
  SimulationDriver(std::unique_ptr<vf::data::Dataset> dataset,
                   DriverOptions options);

  /// Emit the next timestep, or std::nullopt once max_steps have been
  /// emitted.
  [[nodiscard]] std::optional<Timestep> next();

  /// Change the per-step time advance for subsequent steps — the
  /// injected-drift hook. The current simulation time is preserved; only
  /// future advances change.
  void set_stride(double stride) { stride_ = stride; }
  [[nodiscard]] double stride() const { return stride_; }

  /// Steps emitted so far.
  [[nodiscard]] int emitted() const { return emitted_; }

  [[nodiscard]] const vf::data::Dataset& dataset() const { return *dataset_; }
  [[nodiscard]] const DriverOptions& options() const { return options_; }

 private:
  DriverOptions options_;
  std::unique_ptr<vf::data::Dataset> dataset_;
  double next_t_ = 0.0;
  double stride_ = 1.0;
  int emitted_ = 0;
};

}  // namespace vf::pipeline
