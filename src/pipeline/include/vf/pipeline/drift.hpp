#pragma once
// DriftMonitor — per-timestep reconstruction-quality tracking for the
// in-situ pipeline (DESIGN.md §14).
//
// Every fine-tuned step is scored twice against the resident truth before
// it is published: the model's reconstruction SNR and the classical
// (Shepard) reconstruction SNR from the same archival cloud. The monitor
// exports both as vf::obs gauges and decides what the pipeline does next:
//
//   Refinetune — the model dipped below the floor for the first time this
//                step; spend extra epochs and score again before giving up.
//   Fallback   — still below the floor after the re-finetune: publish the
//                session classically (empty model path — the serve tier's
//                degrade-to-classical state) until the model recovers.
//   Recover    — a fallen-back pipeline's model cleared the floor plus a
//                hysteresis margin; resume publishing the model.
//   None       — healthy (or already fallen back and still unhealthy).
//
// The monitor is deliberately a pure, lock-free decision table over the
// scores it is fed — all the threading lives in InsituPipeline — so the
// trip/recover ladder is unit-testable with synthetic SNR sequences.

#include <cstdint>

namespace vf::pipeline {

struct DriftOptions {
  /// Publishing floor: a step whose model SNR (dB) lands below this trips
  /// the re-finetune/fallback ladder. <= 0 disables drift handling
  /// entirely (every observe() returns None).
  double floor_snr_db = 0.0;
  /// A fallen-back pipeline resumes publishing the model only once its
  /// SNR clears floor + hysteresis, so a score oscillating around the
  /// floor doesn't flap between model and classical sessions.
  double hysteresis_db = 1.0;
};

enum class DriftAction : std::uint8_t {
  None = 0,
  Refinetune,  ///< below floor, first score this step: spend extra epochs
  Fallback,    ///< below floor after re-finetune: degrade to classical
  Recover,     ///< fallen back and now above floor + hysteresis
};

[[nodiscard]] const char* drift_action_name(DriftAction a);

class DriftMonitor {
 public:
  explicit DriftMonitor(DriftOptions options = {});

  /// Score one (re-)evaluation of `step` and decide. Feeding a second
  /// observation for the same step is how the pipeline reports its
  /// re-finetune result; the monitor answers Fallback instead of
  /// Refinetune for it. Also exports the pipeline.last_snr_db /
  /// pipeline.classical_snr_db gauges and the refinetune/fallback/recover
  /// counters.
  DriftAction observe(int step, double model_snr_db, double classical_snr_db);

  /// True while the monitor has degraded to classical publishing.
  [[nodiscard]] bool fallen_back() const { return fallen_back_; }

  [[nodiscard]] double floor_snr_db() const { return options_.floor_snr_db; }
  /// Runtime-adjustable floor (the facade's set_drift_floor): tests
  /// measure a healthy step's SNR, then raise the floor above it to trip
  /// the ladder deterministically.
  void set_floor_snr_db(double floor) { options_.floor_snr_db = floor; }

  [[nodiscard]] double last_model_snr_db() const { return last_model_snr_; }
  [[nodiscard]] double last_classical_snr_db() const {
    return last_classical_snr_;
  }
  [[nodiscard]] int refinetunes() const { return refinetunes_; }
  [[nodiscard]] int fallbacks() const { return fallbacks_; }
  [[nodiscard]] int recoveries() const { return recoveries_; }

 private:
  DriftOptions options_;
  bool fallen_back_ = false;
  int refinetuned_step_ = -1;  // step whose Refinetune was already spent
  double last_model_snr_ = 0.0;
  double last_classical_snr_ = 0.0;
  int refinetunes_ = 0;
  int fallbacks_ = 0;
  int recoveries_ = 0;
};

}  // namespace vf::pipeline
