#pragma once
// vf::api::Pipeline — the one front door to the in-situ streaming loop
// (sample → fine-tune → hot-swap → serve; DESIGN.md §14).
//
// Callers used to wire the loop by hand: pretrain + fine_tune per step,
// an api::Reconstructor per reconstruction, and (since the serve tier
// exists) a ShardRouter plus session re-registration. This facade owns
// all of it behind a builder-style config:
//
//   api::PipelineConfig cfg;
//   cfg.with_dataset("ionization")
//      .with_sample_fraction(0.05)
//      .with_epochs_per_step(10)
//      .with_drift_floor_snr(12.0)
//      .with_workers(1)
//      .with_workdir("/tmp/vf-pipeline");
//   api::Pipeline pipe(cfg);
//   pipe.start();                  // step 0: pretrain + first publish
//   while (pipe.step()) { ... }    // stream; fine-tunes run in background
//   pipe.drain();                  // wait for every queued fine-tune
//   auto resp = pipe.query({{0.5, 0.5, 0.5}});
//
// Queries are answered by the embedded serve tier the whole time — each
// step's publish is a hot swap under the registry's generation counter,
// so in-flight queries against the superseded model complete safely.
//
// The legacy core::TemporalPipeline (synchronous, no serving, no drift
// handling) is deprecated in favour of this facade.

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "vf/pipeline/insitu.hpp"

namespace vf::api {

/// Builder-style configuration. Plain aggregate fields remain assignable;
/// the with_* methods just make call sites read as a sentence.
struct PipelineConfig {
  /// Registered dataset streamed by the simulation driver.
  std::string dataset = "ionization";
  vf::field::Dims dims{32, 32, 16};
  double t0 = 0.0;
  /// Simulation-time advance per step.
  double stride = 1.0;
  /// Steps the driver emits before step() reports exhaustion (0 = run
  /// until stopped).
  int max_steps = 8;
  /// Archival sampling fraction per step.
  double sample_fraction = 0.05;
  /// Step-0 pretrain epochs; later steps use epochs_per_step.
  int pretrain_epochs = 30;
  int epochs_per_step = 10;
  /// Drift floor in dB (<= 0 disables drift handling).
  double drift_floor_snr = 0.0;
  /// Background fine-tune workers.
  std::size_t workers = 1;
  /// Checkpoint/model working directory (required).
  std::string workdir;
  /// Training knobs forwarded to FcnnConfig (hidden widths and the rest
  /// keep their FcnnConfig defaults).
  std::size_t max_train_rows = 8000;
  std::vector<std::size_t> hidden = {64, 32};
  std::uint64_t seed = 1;
  /// Serve-tier shape.
  std::size_t shards = 1;
  std::size_t serve_workers = 2;
  std::string session_key = "live";
  /// Per-step completion hook (runs on a fine-tune worker thread).
  std::function<void(const vf::pipeline::StepReport&)> on_step;

  PipelineConfig& with_dataset(std::string name) {
    dataset = std::move(name);
    return *this;
  }
  PipelineConfig& with_dims(vf::field::Dims d) {
    dims = d;
    return *this;
  }
  PipelineConfig& with_sample_fraction(double f) {
    sample_fraction = f;
    return *this;
  }
  PipelineConfig& with_epochs_per_step(int e) {
    epochs_per_step = e;
    return *this;
  }
  PipelineConfig& with_pretrain_epochs(int e) {
    pretrain_epochs = e;
    return *this;
  }
  PipelineConfig& with_drift_floor_snr(double db) {
    drift_floor_snr = db;
    return *this;
  }
  PipelineConfig& with_workers(std::size_t n) {
    workers = n;
    return *this;
  }
  PipelineConfig& with_workdir(std::string dir) {
    workdir = std::move(dir);
    return *this;
  }
  PipelineConfig& with_max_steps(int n) {
    max_steps = n;
    return *this;
  }
  PipelineConfig& with_seed(std::uint64_t s) {
    seed = s;
    return *this;
  }
};

/// Point-in-time pipeline snapshot (stats() — safe to call concurrently
/// with a running stream).
using PipelineStats = vf::pipeline::InsituStats;

class Pipeline {
 public:
  /// Validates the config and builds the serve tier; no training happens
  /// until start(). Throws std::invalid_argument for an empty workdir or
  /// an unknown dataset/sampler.
  explicit Pipeline(PipelineConfig config);
  ~Pipeline();
  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  /// Ingest step 0: pretrain synchronously and publish the first
  /// generation. Queries are serveable from here on. Idempotent.
  void start();

  /// Ingest the next timestep (starting if needed). Returns false once
  /// the driver has emitted max_steps — the fine-tune may still be
  /// running in the background (drain() to wait).
  bool step();

  /// Wait for every queued and in-flight fine-tune (and its publish).
  void drain();

  [[nodiscard]] PipelineStats stats() const;

  /// Current published generation / its SNR (the `ready` verb's fields).
  [[nodiscard]] std::uint64_t generation() const;
  [[nodiscard]] double last_snr_db() const;

  /// Point query against the currently-served generation (nullopt =
  /// shed; retry). The async form exposes the future for callers probing
  /// hot-swap liveness.
  [[nodiscard]] std::optional<std::future<vf::serve::PointResponse>> submit(
      std::vector<vf::field::Vec3> points);
  [[nodiscard]] vf::serve::PointResponse query(
      std::vector<vf::field::Vec3> points);

  /// Runtime drift-floor override (tests trip fallback deterministically
  /// by raising the floor above a measured healthy SNR).
  void set_drift_floor(double floor_snr_db);

  /// The newest finished step's (immutable) model, for archival flows
  /// that outlive the stream — null before start().
  [[nodiscard]] std::shared_ptr<const vf::core::FcnnModel> model() const;

  /// The underlying serve tier / engine, for operational surfaces (vfctl
  /// wires the TCP listener straight to the router).
  [[nodiscard]] vf::serve::ShardRouter& router();
  [[nodiscard]] vf::pipeline::InsituPipeline& engine();
  [[nodiscard]] vf::pipeline::SimulationDriver& driver();

  [[nodiscard]] const PipelineConfig& config() const { return config_; }

 private:
  PipelineConfig config_;
  std::unique_ptr<vf::pipeline::SimulationDriver> driver_;
  std::unique_ptr<vf::pipeline::InsituPipeline> engine_;
  bool started_ = false;
};

}  // namespace vf::api
