#include "vf/pipeline/drift.hpp"

#include "vf/obs/obs.hpp"

namespace vf::pipeline {

const char* drift_action_name(DriftAction a) {
  switch (a) {
    case DriftAction::None:
      return "none";
    case DriftAction::Refinetune:
      return "refinetune";
    case DriftAction::Fallback:
      return "fallback";
    case DriftAction::Recover:
      return "recover";
  }
  return "none";
}

DriftMonitor::DriftMonitor(DriftOptions options) : options_(options) {
  if (options_.hysteresis_db < 0.0) options_.hysteresis_db = 0.0;
}

DriftAction DriftMonitor::observe(int step, double model_snr_db,
                                  double classical_snr_db) {
  last_model_snr_ = model_snr_db;
  last_classical_snr_ = classical_snr_db;
  VF_OBS_GAUGE("pipeline.last_snr_db",
               static_cast<std::int64_t>(model_snr_db));
  VF_OBS_GAUGE("pipeline.classical_snr_db",
               static_cast<std::int64_t>(classical_snr_db));

  if (options_.floor_snr_db <= 0.0) return DriftAction::None;

  if (fallen_back_) {
    if (model_snr_db >= options_.floor_snr_db + options_.hysteresis_db) {
      fallen_back_ = false;
      ++recoveries_;
      VF_OBS_COUNT("pipeline.drift_recoveries", 1);
      return DriftAction::Recover;
    }
    return DriftAction::None;  // still degraded; keep publishing classical
  }

  if (model_snr_db >= options_.floor_snr_db) return DriftAction::None;

  if (refinetuned_step_ != step) {
    // First sub-floor score for this step: buy extra epochs before
    // degrading.
    refinetuned_step_ = step;
    ++refinetunes_;
    VF_OBS_COUNT("pipeline.drift_refinetunes", 1);
    return DriftAction::Refinetune;
  }
  // The re-finetuned model is still below the floor: degrade.
  fallen_back_ = true;
  ++fallbacks_;
  VF_OBS_COUNT("pipeline.drift_fallbacks", 1);
  return DriftAction::Fallback;
}

}  // namespace vf::pipeline
