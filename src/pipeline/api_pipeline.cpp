#include "vf/api/pipeline.hpp"

#include <stdexcept>
#include <utility>

namespace vf::api {

namespace {

vf::pipeline::InsituOptions engine_options(const PipelineConfig& cfg) {
  vf::pipeline::InsituOptions opt;
  opt.sample_fraction = cfg.sample_fraction;
  opt.train.hidden = cfg.hidden;
  opt.train.epochs = cfg.pretrain_epochs;
  opt.train.max_train_rows = cfg.max_train_rows;
  opt.train.seed = cfg.seed;
  opt.epochs_per_step = cfg.epochs_per_step;
  opt.refinetune_epochs = cfg.epochs_per_step;
  opt.drift.floor_snr_db = cfg.drift_floor_snr;
  opt.workers = cfg.workers;
  opt.workdir = cfg.workdir;
  opt.session_key = cfg.session_key;
  opt.seed = cfg.seed;
  opt.serve.shards = cfg.shards;
  opt.serve.shard.workers = cfg.serve_workers;
  opt.on_step = cfg.on_step;
  return opt;
}

vf::pipeline::DriverOptions driver_options(const PipelineConfig& cfg) {
  vf::pipeline::DriverOptions opt;
  opt.dataset = cfg.dataset;
  opt.dataset_seed = cfg.seed;
  opt.dims = cfg.dims;
  opt.t0 = cfg.t0;
  opt.stride = cfg.stride;
  opt.max_steps = cfg.max_steps;
  return opt;
}

}  // namespace

Pipeline::Pipeline(PipelineConfig config) : config_(std::move(config)) {
  driver_ = std::make_unique<vf::pipeline::SimulationDriver>(
      driver_options(config_));
  engine_ =
      std::make_unique<vf::pipeline::InsituPipeline>(engine_options(config_));
}

Pipeline::~Pipeline() = default;

void Pipeline::start() {
  if (started_) return;
  started_ = true;
  auto first = driver_->next();
  if (!first) {
    throw std::runtime_error("vf::api::Pipeline: driver emitted no steps");
  }
  engine_->ingest(std::move(*first));
}

bool Pipeline::step() {
  if (!started_) {
    start();
    return true;
  }
  auto next = driver_->next();
  if (!next) return false;
  engine_->ingest(std::move(*next));
  return true;
}

void Pipeline::drain() { engine_->drain(); }

PipelineStats Pipeline::stats() const { return engine_->stats(); }

std::uint64_t Pipeline::generation() const { return engine_->generation(); }

double Pipeline::last_snr_db() const {
  return engine_->stats().published_snr_db;
}

std::optional<std::future<vf::serve::PointResponse>> Pipeline::submit(
    std::vector<vf::field::Vec3> points) {
  return engine_->router().submit(config_.session_key, std::move(points));
}

vf::serve::PointResponse Pipeline::query(
    std::vector<vf::field::Vec3> points) {
  return engine_->router().query(config_.session_key, std::move(points));
}

void Pipeline::set_drift_floor(double floor_snr_db) {
  engine_->set_drift_floor(floor_snr_db);
}

std::shared_ptr<const vf::core::FcnnModel> Pipeline::model() const {
  return engine_->latest_model();
}

vf::serve::ShardRouter& Pipeline::router() { return engine_->router(); }

vf::pipeline::InsituPipeline& Pipeline::engine() { return *engine_; }

vf::pipeline::SimulationDriver& Pipeline::driver() { return *driver_; }

}  // namespace vf::api
