#include "vf/vis/image.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <stdexcept>

namespace vf::vis {

Image::Image(int width, int height, Rgb fill)
    : width_(width),
      height_(height),
      pixels_(static_cast<std::size_t>(width) * static_cast<std::size_t>(height),
              fill) {
  if (width < 1 || height < 1) {
    throw std::invalid_argument("Image: dimensions must be positive");
  }
}

void Image::write_ppm(const std::string& path) const {
  // vf-lint: allow(raw-ofstream) throwaway visualisation artifact, not archival state
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("write_ppm: cannot open " + path);
  out << "P6\n" << width_ << " " << height_ << "\n255\n";
  auto quantise = [](double v) {
    return static_cast<unsigned char>(
        std::lround(std::clamp(v, 0.0, 1.0) * 255.0));
  };
  for (const auto& p : pixels_) {
    unsigned char rgb[3] = {quantise(p.r), quantise(p.g), quantise(p.b)};
    out.write(reinterpret_cast<const char*>(rgb), 3);
  }
  if (!out) throw std::runtime_error("write_ppm: write failed " + path);
}

Image Image::read_ppm(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("read_ppm: cannot open " + path);
  std::string magic;
  int w = 0, h = 0, maxv = 0;
  in >> magic >> w >> h >> maxv;
  if (magic != "P6" || w < 1 || h < 1 || maxv != 255) {
    throw std::runtime_error("read_ppm: unsupported PPM " + path);
  }
  in.get();  // single whitespace after header
  Image img(w, h);
  std::vector<unsigned char> buf(static_cast<std::size_t>(w) * h * 3);
  in.read(reinterpret_cast<char*>(buf.data()),
          static_cast<std::streamsize>(buf.size()));
  if (!in) throw std::runtime_error("read_ppm: truncated " + path);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      std::size_t o = (static_cast<std::size_t>(y) * w + x) * 3;
      img.at(x, y) = {buf[o] / 255.0, buf[o + 1] / 255.0, buf[o + 2] / 255.0};
    }
  }
  return img;
}

namespace {
void check_same_shape(const Image& a, const Image& b) {
  if (a.width() != b.width() || a.height() != b.height()) {
    throw std::invalid_argument("image metrics: size mismatch");
  }
}

double luminance(const Rgb& p) {
  return 0.2126 * p.r + 0.7152 * p.g + 0.0722 * p.b;
}
}  // namespace

double image_mse(const Image& a, const Image& b) {
  check_same_shape(a, b);
  double acc = 0.0;
  for (int y = 0; y < a.height(); ++y) {
    for (int x = 0; x < a.width(); ++x) {
      const Rgb& pa = a.at(x, y);
      const Rgb& pb = b.at(x, y);
      acc += (pa.r - pb.r) * (pa.r - pb.r) + (pa.g - pb.g) * (pa.g - pb.g) +
             (pa.b - pb.b) * (pa.b - pb.b);
    }
  }
  return acc / (3.0 * a.width() * a.height());
}

double image_psnr_db(const Image& a, const Image& b) {
  double mse = image_mse(a, b);
  if (mse == 0.0) return std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(1.0 / mse);
}

double image_ssim(const Image& a, const Image& b) {
  check_same_shape(a, b);
  constexpr int kWin = 8;
  constexpr double c1 = 0.01 * 0.01;
  constexpr double c2 = 0.03 * 0.03;
  double ssim_sum = 0.0;
  int windows = 0;
  for (int y0 = 0; y0 + kWin <= a.height(); y0 += kWin) {
    for (int x0 = 0; x0 + kWin <= a.width(); x0 += kWin) {
      double ma = 0, mb = 0;
      for (int y = y0; y < y0 + kWin; ++y) {
        for (int x = x0; x < x0 + kWin; ++x) {
          ma += luminance(a.at(x, y));
          mb += luminance(b.at(x, y));
        }
      }
      const double n = kWin * kWin;
      ma /= n;
      mb /= n;
      double va = 0, vb = 0, cov = 0;
      for (int y = y0; y < y0 + kWin; ++y) {
        for (int x = x0; x < x0 + kWin; ++x) {
          double da = luminance(a.at(x, y)) - ma;
          double db = luminance(b.at(x, y)) - mb;
          va += da * da;
          vb += db * db;
          cov += da * db;
        }
      }
      va /= n - 1;
      vb /= n - 1;
      cov /= n - 1;
      ssim_sum += ((2 * ma * mb + c1) * (2 * cov + c2)) /
                  ((ma * ma + mb * mb + c1) * (va + vb + c2));
      ++windows;
    }
  }
  if (windows == 0) throw std::invalid_argument("image_ssim: image too small");
  return ssim_sum / windows;
}

}  // namespace vf::vis
