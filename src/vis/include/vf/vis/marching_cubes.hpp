#pragma once
// Isosurface extraction on ScalarFields via marching tetrahedra: every grid
// cell is decomposed into six tetrahedra sharing a main diagonal, and each
// tetrahedron emits 0-2 triangles from the sign pattern of its corners.
// Compared to classic marching cubes this needs no case tables, has no
// ambiguous configurations, and is watertight by construction; it emits
// somewhat more triangles, which is irrelevant for the area/distance
// comparisons the library uses it for.
//
// Vertices are placed by linear interpolation along tetrahedron edges and
// welded across cells via an edge-keyed map.

#include "vf/field/scalar_field.hpp"
#include "vf/vis/mesh.hpp"

namespace vf::vis {

/// Extract the isosurface of `field` at `isovalue`.
TriangleMesh extract_isosurface(const vf::field::ScalarField& field,
                                double isovalue);

}  // namespace vf::vis
