#pragma once
// RGB float images + PPM export + image-space error metrics.
//
// The paper judges reconstructions visually (Figs 2/3 are volume renderings
// of reconstructed combustion / ionization data). This module provides the
// image container the raycaster writes into, a portable PPM writer so the
// renders can be eyeballed, and image-space metrics (MSE / PSNR / mean
// structural similarity) so rendering fidelity can be asserted numerically.

#include <cstdint>
#include <string>
#include <vector>

namespace vf::vis {

struct Rgb {
  double r = 0.0;
  double g = 0.0;
  double b = 0.0;

  Rgb operator+(const Rgb& o) const { return {r + o.r, g + o.g, b + o.b}; }
  Rgb operator*(double s) const { return {r * s, g * s, b * s}; }
};

class Image {
 public:
  Image() = default;
  Image(int width, int height, Rgb fill = {});

  [[nodiscard]] int width() const { return width_; }
  [[nodiscard]] int height() const { return height_; }

  [[nodiscard]] Rgb& at(int x, int y) { return pixels_[idx(x, y)]; }
  [[nodiscard]] const Rgb& at(int x, int y) const { return pixels_[idx(x, y)]; }

  /// Write as binary PPM (P6), clamping channels to [0, 1].
  void write_ppm(const std::string& path) const;

  /// Read back a P6 PPM written by write_ppm (8-bit quantised).
  static Image read_ppm(const std::string& path);

 private:
  [[nodiscard]] std::size_t idx(int x, int y) const {
    return static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
           static_cast<std::size_t>(x);
  }
  int width_ = 0;
  int height_ = 0;
  std::vector<Rgb> pixels_;
};

/// Mean squared error over all pixels and channels.
double image_mse(const Image& a, const Image& b);

/// PSNR in dB against a unit dynamic range.
double image_psnr_db(const Image& a, const Image& b);

/// Mean SSIM over 8x8 luminance windows (structural similarity, 1 = equal).
double image_ssim(const Image& a, const Image& b);

}  // namespace vf::vis
