#pragma once
// Piecewise-linear transfer functions mapping scalar values to colour and
// opacity — the standard volume-rendering control the paper's figures use.

#include <vector>

#include "vf/vis/image.hpp"

namespace vf::vis {

struct TfPoint {
  double value = 0.0;  // scalar position of the control point
  Rgb color;
  double opacity = 0.0;  // per-unit-length extinction in [0, ~inf)
};

class TransferFunction {
 public:
  /// Control points; sorted by value internally. Needs at least one.
  explicit TransferFunction(std::vector<TfPoint> points);

  /// Piecewise-linear colour at a scalar value (clamped at the ends).
  [[nodiscard]] Rgb color(double value) const;
  /// Piecewise-linear opacity at a scalar value.
  [[nodiscard]] double opacity(double value) const;

  /// A perceptually-reasonable default: cool-to-warm diverging ramp over
  /// [lo, hi] with opacity rising toward both extremes (highlights lows and
  /// highs, de-emphasises the midrange).
  static TransferFunction cool_warm(double lo, double hi,
                                    double max_opacity = 8.0);

  /// Single-band isosurface-like TF: opaque shell around `value` with the
  /// given half-width, transparent elsewhere.
  static TransferFunction band(double value, double half_width, Rgb color,
                               double opacity = 40.0);

 private:
  std::vector<TfPoint> points_;
};

}  // namespace vf::vis
