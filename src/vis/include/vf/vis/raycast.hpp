#pragma once
// Orthographic volume raycaster with front-to-back emission-absorption
// compositing — enough renderer to reproduce the paper's Fig 2/3-style
// qualitative comparisons (truth vs reconstruction under one transfer
// function) and to quantify them with image metrics.

#include "vf/field/scalar_field.hpp"
#include "vf/vis/image.hpp"
#include "vf/vis/transfer_function.hpp"

namespace vf::vis {

enum class ViewAxis { X, Y, Z };

struct RenderOptions {
  int width = 256;
  int height = 256;
  /// Axis the orthographic rays travel along (image spans the other two).
  ViewAxis axis = ViewAxis::Z;
  /// Step length as a fraction of the voxel spacing along the view axis.
  double step_scale = 0.5;
  /// Background colour composited behind the volume.
  Rgb background{1.0, 1.0, 1.0};
  /// Simple headlight shading strength from the local gradient (0 = off).
  double shading = 0.35;
};

/// Render `field` with the given transfer function. Parallel over rows.
Image render(const vf::field::ScalarField& field, const TransferFunction& tf,
             const RenderOptions& options = {});

}  // namespace vf::vis
