#pragma once
// Triangle meshes produced by the isosurface extractor.
//
// Enough mesh machinery to compare the isosurfaces of a reconstruction and
// its ground truth (the paper's isosurface-contouring use case): surface
// area, OBJ export for inspection, and a sampled symmetric surface distance
// (Hausdorff-style) computed with exact point-triangle projections
// accelerated by the k-d tree.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "vf/field/grid.hpp"

namespace vf::vis {

struct TriangleMesh {
  std::vector<vf::field::Vec3> vertices;
  std::vector<std::array<std::uint32_t, 3>> triangles;

  [[nodiscard]] std::size_t triangle_count() const { return triangles.size(); }
  [[nodiscard]] bool empty() const { return triangles.empty(); }

  /// Total surface area.
  [[nodiscard]] double surface_area() const;

  /// Axis-aligned bounds of the vertices (undefined when empty).
  [[nodiscard]] vf::field::BoundingBox bounds() const;

  /// Write as Wavefront OBJ.
  void write_obj(const std::string& path) const;
};

/// Exact distance from a point to a triangle (p, a, b, c).
double point_triangle_distance(const vf::field::Vec3& p,
                               const vf::field::Vec3& a,
                               const vf::field::Vec3& b,
                               const vf::field::Vec3& c);

/// Symmetric mean surface distance between two meshes, estimated from
/// `samples` random surface points per direction (area-weighted), each
/// projected exactly onto the nearest triangles of the other mesh.
/// Returns {mean, max} over both directions.
struct SurfaceDistance {
  double mean = 0.0;
  double max = 0.0;
};
SurfaceDistance mesh_distance(const TriangleMesh& a, const TriangleMesh& b,
                              int samples = 2000, std::uint64_t seed = 1);

}  // namespace vf::vis
