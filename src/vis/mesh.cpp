#include "vf/vis/mesh.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <stdexcept>

#include "vf/spatial/kdtree.hpp"
#include "vf/util/rng.hpp"

namespace vf::vis {

using vf::field::BoundingBox;
using vf::field::Vec3;

namespace {
Vec3 cross(const Vec3& a, const Vec3& b) {
  return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z,
          a.x * b.y - a.y * b.x};
}

double triangle_area(const Vec3& a, const Vec3& b, const Vec3& c) {
  return 0.5 * std::sqrt(cross(b - a, c - a).norm2());
}
}  // namespace

double TriangleMesh::surface_area() const {
  double area = 0.0;
  for (const auto& t : triangles) {
    area += triangle_area(vertices[t[0]], vertices[t[1]], vertices[t[2]]);
  }
  return area;
}

BoundingBox TriangleMesh::bounds() const {
  BoundingBox box{{std::numeric_limits<double>::infinity(),
                   std::numeric_limits<double>::infinity(),
                   std::numeric_limits<double>::infinity()},
                  {-std::numeric_limits<double>::infinity(),
                   -std::numeric_limits<double>::infinity(),
                   -std::numeric_limits<double>::infinity()}};
  for (const auto& v : vertices) {
    box.min.x = std::min(box.min.x, v.x);
    box.min.y = std::min(box.min.y, v.y);
    box.min.z = std::min(box.min.z, v.z);
    box.max.x = std::max(box.max.x, v.x);
    box.max.y = std::max(box.max.y, v.y);
    box.max.z = std::max(box.max.z, v.z);
  }
  return box;
}

void TriangleMesh::write_obj(const std::string& path) const {
  // vf-lint: allow(raw-ofstream) throwaway visualisation artifact, not archival state
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_obj: cannot open " + path);
  out.precision(9);
  for (const auto& v : vertices) {
    out << "v " << v.x << " " << v.y << " " << v.z << "\n";
  }
  for (const auto& t : triangles) {
    out << "f " << t[0] + 1 << " " << t[1] + 1 << " " << t[2] + 1 << "\n";
  }
  if (!out) throw std::runtime_error("write_obj: write failed " + path);
}

double point_triangle_distance(const Vec3& p, const Vec3& a, const Vec3& b,
                               const Vec3& c) {
  // Ericson, "Real-Time Collision Detection": closest point via barycentric
  // region classification.
  Vec3 ab = b - a, ac = c - a, ap = p - a;
  double d1 = ab.dot(ap), d2 = ac.dot(ap);
  if (d1 <= 0.0 && d2 <= 0.0) return std::sqrt((p - a).norm2());

  Vec3 bp = p - b;
  double d3 = ab.dot(bp), d4 = ac.dot(bp);
  if (d3 >= 0.0 && d4 <= d3) return std::sqrt((p - b).norm2());

  double vc = d1 * d4 - d3 * d2;
  if (vc <= 0.0 && d1 >= 0.0 && d3 <= 0.0) {
    double t = d1 / (d1 - d3);
    return std::sqrt((p - (a + ab * t)).norm2());
  }

  Vec3 cp = p - c;
  double d5 = ab.dot(cp), d6 = ac.dot(cp);
  if (d6 >= 0.0 && d5 <= d6) return std::sqrt((p - c).norm2());

  double vb = d5 * d2 - d1 * d6;
  if (vb <= 0.0 && d2 >= 0.0 && d6 <= 0.0) {
    double t = d2 / (d2 - d6);
    return std::sqrt((p - (a + ac * t)).norm2());
  }

  double va = d3 * d6 - d5 * d4;
  if (va <= 0.0 && (d4 - d3) >= 0.0 && (d5 - d6) >= 0.0) {
    double t = (d4 - d3) / ((d4 - d3) + (d5 - d6));
    return std::sqrt((p - (b + (c - b) * t)).norm2());
  }

  double denom = 1.0 / (va + vb + vc);
  double v = vb * denom, w = vc * denom;
  Vec3 closest = a + ab * v + ac * w;
  return std::sqrt((p - closest).norm2());
}

namespace {

/// Area-weighted random surface samples.
std::vector<Vec3> sample_surface(const TriangleMesh& mesh, int samples,
                                 vf::util::Rng& rng) {
  std::vector<double> cdf(mesh.triangles.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < mesh.triangles.size(); ++i) {
    const auto& t = mesh.triangles[i];
    acc += triangle_area(mesh.vertices[t[0]], mesh.vertices[t[1]],
                         mesh.vertices[t[2]]);
    cdf[i] = acc;
  }
  std::vector<Vec3> out;
  out.reserve(static_cast<std::size_t>(samples));
  for (int s = 0; s < samples; ++s) {
    double u = rng.uniform() * acc;
    auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    std::size_t ti = static_cast<std::size_t>(it - cdf.begin());
    ti = std::min(ti, mesh.triangles.size() - 1);
    const auto& t = mesh.triangles[ti];
    double r1 = std::sqrt(rng.uniform());
    double r2 = rng.uniform();
    Vec3 p = mesh.vertices[t[0]] * (1 - r1) +
             mesh.vertices[t[1]] * (r1 * (1 - r2)) +
             mesh.vertices[t[2]] * (r1 * r2);
    out.push_back(p);
  }
  return out;
}

/// Mean/max distance from sampled points of `from` to the surface of `to`,
/// using a centroid k-d tree to narrow the candidate triangles.
void one_sided(const TriangleMesh& from, const TriangleMesh& to, int samples,
               vf::util::Rng& rng, double& mean, double& mx) {
  std::vector<Vec3> centroids;
  std::vector<double> radius;  // circumscribing radius per triangle
  centroids.reserve(to.triangles.size());
  radius.reserve(to.triangles.size());
  for (const auto& t : to.triangles) {
    const Vec3& a = to.vertices[t[0]];
    const Vec3& b = to.vertices[t[1]];
    const Vec3& c = to.vertices[t[2]];
    Vec3 centroid = (a + b + c) * (1.0 / 3.0);
    centroids.push_back(centroid);
    double r2 = std::max({(a - centroid).norm2(), (b - centroid).norm2(),
                          (c - centroid).norm2()});
    radius.push_back(std::sqrt(r2));
  }
  double r_max = 0.0;
  for (double r : radius) r_max = std::max(r_max, r);
  vf::spatial::KdTree tree(centroids);

  auto points = sample_surface(from, samples, rng);
  double acc = 0.0;
  mx = 0.0;
  std::vector<vf::spatial::Neighbor> nbrs;
  for (const auto& p : points) {
    // The nearest centroid bounds the true distance within +-2*r_max; all
    // triangles whose centroid lies within that bound are candidates.
    tree.knn(p, 1, nbrs);
    double bound = std::sqrt(nbrs[0].dist2) + 2.0 * r_max;
    auto candidates = tree.radius_query(p, bound);
    double best = std::numeric_limits<double>::infinity();
    for (const auto& cand : candidates) {
      const auto& t = to.triangles[cand.index];
      best = std::min(best, point_triangle_distance(p, to.vertices[t[0]],
                                                    to.vertices[t[1]],
                                                    to.vertices[t[2]]));
    }
    acc += best;
    mx = std::max(mx, best);
  }
  mean = acc / static_cast<double>(points.size());
}

}  // namespace

SurfaceDistance mesh_distance(const TriangleMesh& a, const TriangleMesh& b,
                              int samples, std::uint64_t seed) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("mesh_distance: empty mesh");
  }
  vf::util::Rng rng(seed, 0x6d657368);
  double mean_ab = 0, max_ab = 0, mean_ba = 0, max_ba = 0;
  one_sided(a, b, samples, rng, mean_ab, max_ab);
  one_sided(b, a, samples, rng, mean_ba, max_ba);
  return {0.5 * (mean_ab + mean_ba), std::max(max_ab, max_ba)};
}

}  // namespace vf::vis
