#include "vf/vis/raycast.hpp"

#include <algorithm>
#include <cmath>

#include "vf/util/parallel.hpp"

namespace vf::vis {

using vf::field::ScalarField;
using vf::field::Vec3;

namespace {

/// Map the view axis to (ray direction component, image u/v components).
struct AxisFrame {
  int ray;  // 0=x, 1=y, 2=z
  int u;
  int v;
};

AxisFrame frame_of(ViewAxis axis) {
  switch (axis) {
    case ViewAxis::X: return {0, 1, 2};
    case ViewAxis::Y: return {1, 0, 2};
    default: return {2, 0, 1};
  }
}

double component(const Vec3& p, int axis) {
  return axis == 0 ? p.x : (axis == 1 ? p.y : p.z);
}

void set_component(Vec3& p, int axis, double v) {
  if (axis == 0) p.x = v;
  else if (axis == 1) p.y = v;
  else p.z = v;
}

}  // namespace

Image render(const ScalarField& field, const TransferFunction& tf,
             const RenderOptions& options) {
  const auto& grid = field.grid();
  auto box = grid.bounds();
  AxisFrame fr = frame_of(options.axis);

  const double ray_lo = component(box.min, fr.ray);
  const double ray_hi = component(box.max, fr.ray);
  const double u_lo = component(box.min, fr.u);
  const double u_hi = component(box.max, fr.u);
  const double v_lo = component(box.min, fr.v);
  const double v_hi = component(box.max, fr.v);

  const double spacing = component(
      Vec3{grid.spacing().x, grid.spacing().y, grid.spacing().z}, fr.ray);
  const double step = std::max(spacing * options.step_scale, 1e-9);
  const double grad_h = step;

  Image img(options.width, options.height, options.background);

  vf::util::parallel_for(0, options.height, [&](std::int64_t yy) {
    int y = static_cast<int>(yy);
    for (int x = 0; x < options.width; ++x) {
      double u = u_lo + (u_hi - u_lo) * (x + 0.5) / options.width;
      // Image row 0 at the top (max v).
      double v = v_hi - (v_hi - v_lo) * (y + 0.5) / options.height;

      Rgb accum{};
      double transmittance = 1.0;
      Vec3 p{};
      set_component(p, fr.u, u);
      set_component(p, fr.v, v);
      for (double s = ray_lo; s <= ray_hi && transmittance > 1e-3;
           s += step) {
        set_component(p, fr.ray, s);
        double value = field.sample_trilinear(p);
        double sigma = tf.opacity(value);
        if (sigma <= 0.0) continue;
        Rgb color = tf.color(value);

        if (options.shading > 0.0) {
          // Headlight: darken where the scalar gradient faces away from
          // the viewer (cheap but effective depth cueing).
          Vec3 q = p;
          set_component(q, fr.ray, s + grad_h);
          double ahead = field.sample_trilinear(q);
          double slope = (ahead - value) / grad_h;
          double shade =
              1.0 - options.shading * std::tanh(std::abs(slope) * 0.5);
          color = color * std::clamp(shade, 0.3, 1.0);
        }

        double alpha = 1.0 - std::exp(-sigma * step);
        accum = accum + color * (transmittance * alpha);
        transmittance *= 1.0 - alpha;
      }
      accum = accum + options.background * transmittance;
      img.at(x, y) = accum;
    }
  }, /*grain=*/1);
  return img;
}

}  // namespace vf::vis
