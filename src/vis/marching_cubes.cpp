#include "vf/vis/marching_cubes.hpp"

#include <unordered_map>

namespace vf::vis {

using vf::field::ScalarField;
using vf::field::Vec3;

namespace {

/// The six tetrahedra of a cube, as corner ids 0..7 with bit 0 = +x,
/// bit 1 = +y, bit 2 = +z. All share the 0-7 main diagonal, so adjacent
/// cubes' decompositions agree on shared faces.
constexpr int kTets[6][4] = {
    {0, 5, 1, 7}, {0, 1, 3, 7}, {0, 3, 2, 7},
    {0, 2, 6, 7}, {0, 6, 4, 7}, {0, 4, 5, 7},
};

struct Extractor {
  const ScalarField& field;
  double iso;
  TriangleMesh mesh;
  // Welding map: an interpolated vertex is identified by its (sorted)
  // global corner-index pair.
  std::unordered_map<std::uint64_t, std::uint32_t> edge_vertex;

  explicit Extractor(const ScalarField& f, double isovalue)
      : field(f), iso(isovalue) {}

  std::uint32_t vertex_on_edge(std::int64_t ga, std::int64_t gb, double va,
                               double vb, Vec3 pa, Vec3 pb) {
    // Canonical edge orientation so both adjacent tets agree on the key
    // AND on the interpolated position bit-for-bit.
    if (ga > gb) {
      std::swap(ga, gb);
      std::swap(va, vb);
      std::swap(pa, pb);
    }
    std::uint64_t key = (static_cast<std::uint64_t>(ga) << 32) |
                        static_cast<std::uint64_t>(gb);
    auto it = edge_vertex.find(key);
    if (it != edge_vertex.end()) return it->second;
    double t = (iso - va) / (vb - va);
    Vec3 p = pa + (pb - pa) * t;
    auto id = static_cast<std::uint32_t>(mesh.vertices.size());
    mesh.vertices.push_back(p);
    edge_vertex.emplace(key, id);
    return id;
  }

  void tetra(const std::int64_t g[4], const double v[4], const Vec3 p[4]) {
    // Sign pattern: bit i set when corner i is above the isovalue.
    int pattern = 0;
    for (int i = 0; i < 4; ++i) {
      if (v[i] >= iso) pattern |= 1 << i;
    }
    if (pattern == 0 || pattern == 15) return;

    auto edge = [&](int a, int b) {
      return vertex_on_edge(g[a], g[b], v[a], v[b], p[a], p[b]);
    };
    auto tri = [&](std::uint32_t a, std::uint32_t b, std::uint32_t c) {
      if (a != b && b != c && a != c) mesh.triangles.push_back({a, b, c});
    };

    // One corner isolated (4 single-bit + 4 inverted) -> one triangle;
    // two-vs-two -> a quad split into two triangles.
    switch (pattern) {
      case 1: case 14: tri(edge(0, 1), edge(0, 2), edge(0, 3)); break;
      case 2: case 13: tri(edge(1, 0), edge(1, 3), edge(1, 2)); break;
      case 4: case 11: tri(edge(2, 0), edge(2, 1), edge(2, 3)); break;
      case 8: case 7:  tri(edge(3, 0), edge(3, 2), edge(3, 1)); break;
      case 3: case 12: {  // corners {0,1} vs {2,3}
        auto a = edge(0, 2), b = edge(0, 3), c = edge(1, 3), d = edge(1, 2);
        tri(a, b, c);
        tri(a, c, d);
        break;
      }
      case 5: case 10: {  // corners {0,2} vs {1,3}
        auto a = edge(0, 1), b = edge(0, 3), c = edge(2, 3), d = edge(2, 1);
        tri(a, b, c);
        tri(a, c, d);
        break;
      }
      case 6: case 9: {   // corners {1,2} vs {0,3}
        auto a = edge(1, 0), b = edge(1, 3), c = edge(2, 3), d = edge(2, 0);
        tri(a, b, c);
        tri(a, c, d);
        break;
      }
      default: break;
    }
  }

  void run() {
    const auto& grid = field.grid();
    const auto& d = grid.dims();
    for (int k = 0; k + 1 < d.nz; ++k) {
      for (int j = 0; j + 1 < d.ny; ++j) {
        for (int i = 0; i + 1 < d.nx; ++i) {
          std::int64_t g[8];
          double v[8];
          Vec3 p[8];
          for (int c = 0; c < 8; ++c) {
            int ci = i + (c & 1);
            int cj = j + ((c >> 1) & 1);
            int ck = k + ((c >> 2) & 1);
            g[c] = grid.index(ci, cj, ck);
            v[c] = field[g[c]];
            p[c] = grid.position(ci, cj, ck);
          }
          // Quick reject: cell entirely above or below the isovalue.
          bool any_lo = false, any_hi = false;
          for (double val : v) {
            (val >= iso ? any_hi : any_lo) = true;
          }
          if (!any_lo || !any_hi) continue;

          for (const auto& tet : kTets) {
            std::int64_t tg[4];
            double tv[4];
            Vec3 tp[4];
            for (int c = 0; c < 4; ++c) {
              tg[c] = g[tet[c]];
              tv[c] = v[tet[c]];
              tp[c] = p[tet[c]];
            }
            tetra(tg, tv, tp);
          }
        }
      }
    }
  }
};

}  // namespace

TriangleMesh extract_isosurface(const ScalarField& field, double isovalue) {
  Extractor ex(field, isovalue);
  ex.run();
  return std::move(ex.mesh);
}

}  // namespace vf::vis
