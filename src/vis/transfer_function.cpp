#include "vf/vis/transfer_function.hpp"

#include <algorithm>
#include <stdexcept>

namespace vf::vis {

TransferFunction::TransferFunction(std::vector<TfPoint> points)
    : points_(std::move(points)) {
  if (points_.empty()) {
    throw std::invalid_argument("TransferFunction: need control points");
  }
  std::sort(points_.begin(), points_.end(),
            [](const TfPoint& a, const TfPoint& b) { return a.value < b.value; });
}

namespace {
/// Find the bracketing control points and the interpolation weight.
struct Bracket {
  std::size_t lo;
  std::size_t hi;
  double t;
};

Bracket bracket_of(const std::vector<TfPoint>& pts, double value) {
  if (value <= pts.front().value) return {0, 0, 0.0};
  if (value >= pts.back().value) {
    return {pts.size() - 1, pts.size() - 1, 0.0};
  }
  std::size_t hi = 1;
  while (pts[hi].value < value) ++hi;
  std::size_t lo = hi - 1;
  double span = pts[hi].value - pts[lo].value;
  double t = span > 0 ? (value - pts[lo].value) / span : 0.0;
  return {lo, hi, t};
}
}  // namespace

Rgb TransferFunction::color(double value) const {
  auto [lo, hi, t] = bracket_of(points_, value);
  return points_[lo].color * (1.0 - t) + points_[hi].color * t;
}

double TransferFunction::opacity(double value) const {
  auto [lo, hi, t] = bracket_of(points_, value);
  return points_[lo].opacity * (1.0 - t) + points_[hi].opacity * t;
}

TransferFunction TransferFunction::cool_warm(double lo, double hi,
                                             double max_opacity) {
  double mid = 0.5 * (lo + hi);
  return TransferFunction({
      {lo, {0.23, 0.30, 0.75}, max_opacity},
      {mid, {0.87, 0.87, 0.87}, max_opacity * 0.05},
      {hi, {0.71, 0.02, 0.15}, max_opacity},
  });
}

TransferFunction TransferFunction::band(double value, double half_width,
                                        Rgb color, double opacity) {
  return TransferFunction({
      {value - 2 * half_width, color * 0.6, 0.0},
      {value - half_width, color * 0.8, opacity * 0.5},
      {value, color, opacity},
      {value + half_width, color * 0.8, opacity * 0.5},
      {value + 2 * half_width, color * 0.6, 0.0},
  });
}

}  // namespace vf::vis
