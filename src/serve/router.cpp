#include "vf/serve/router.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "vf/obs/obs.hpp"

namespace vf::serve {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Element-wise ServiceStats accumulation for the tier-level total.
void accumulate(ServiceStats& total, const ServiceStats& s) {
  total.accepted += s.accepted;
  total.shed += s.shed;
  total.batches += s.batches;
  total.served_points += s.served_points;
  total.degraded_points += s.degraded_points;
  total.fallback_batches += s.fallback_batches;
  total.expired += s.expired;
  total.drain_rejects += s.drain_rejects;
  total.registry.hits += s.registry.hits;
  total.registry.loads += s.registry.loads;
  total.registry.load_failures += s.registry.load_failures;
  total.registry.evictions += s.registry.evictions;
  total.registry.breaker_opens += s.registry.breaker_opens;
  total.registry.breaker_fast_fails += s.registry.breaker_fast_fails;
  total.registry.swaps += s.registry.swaps;
  total.registry.superseded_loads += s.registry.superseded_loads;
  total.registry.open_breakers += s.registry.open_breakers;
  total.registry.resident_models += s.registry.resident_models;
  total.registry.resident_bytes += s.registry.resident_bytes;
}

}  // namespace

HashRing::HashRing(std::size_t vnodes, std::uint64_t seed)
    : vnodes_(vnodes == 0 ? 1 : vnodes), seed_(seed) {}

void HashRing::add_shard(std::uint32_t shard) {
  ring_.reserve(ring_.size() + vnodes_);
  for (std::size_t v = 0; v < vnodes_; ++v) {
    // Ring points must not move when *other* shards come and go, so each
    // point depends only on (seed, shard, vnode) — that independence is
    // the whole bounded-remap property.
    const std::uint64_t point =
        splitmix64(seed_ ^ splitmix64((std::uint64_t{shard} << 24) ^ v));
    ring_.emplace_back(point, shard);
  }
  std::sort(ring_.begin(), ring_.end());
}

void HashRing::remove_shard(std::uint32_t shard) {
  ring_.erase(std::remove_if(
                  ring_.begin(), ring_.end(),
                  [shard](const auto& e) { return e.second == shard; }),
              ring_.end());
}

std::uint64_t HashRing::key_hash(const std::string& key) const {
  std::uint64_t h = 1469598103934665603ULL ^ seed_;  // FNV-1a 64
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return splitmix64(h);
}

std::uint32_t HashRing::owner(const std::string& key) const {
  const std::uint64_t h = key_hash(key);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const auto& e, std::uint64_t v) { return e.first < v; });
  if (it == ring_.end()) it = ring_.begin();
  return it->second;
}

std::vector<std::uint32_t> HashRing::walk(const std::string& key) const {
  std::vector<std::uint32_t> order;
  if (ring_.empty()) return order;
  const std::uint64_t h = key_hash(key);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const auto& e, std::uint64_t v) { return e.first < v; });
  const std::size_t start =
      it == ring_.end() ? 0 : static_cast<std::size_t>(it - ring_.begin());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    const std::uint32_t shard = ring_[(start + i) % ring_.size()].second;
    if (std::find(order.begin(), order.end(), shard) == order.end()) {
      order.push_back(shard);
    }
  }
  return order;
}

ShardRouter::ShardRouter(RouterOptions options)
    : options_(std::move(options)),
      ring_(options_.vnodes, options_.seed) {
  if (options_.shards == 0) options_.shards = 1;
  shards_.reserve(options_.shards);
  for (std::size_t i = 0; i < options_.shards; ++i) {
    ring_.add_shard(static_cast<std::uint32_t>(i));
    ServiceOptions so = options_.shard;
    so.shard_id = i;
    // Per-shard fault independence: distinct registry salts decorrelate
    // breaker open windows and load-retry backoff across shards (a
    // template that already set a salt keeps it — tests pin sequences).
    if (so.registry.shard_salt == 0) {
      so.registry.shard_salt = derive_shard_salt(options_.seed, i);
    }
    auto sh = std::make_unique<Shard>();
    sh->service = std::make_unique<Service>(so);
    shards_.push_back(std::move(sh));
  }
}

ShardRouter::~ShardRouter() { stop(); }

void ShardRouter::add_session(const std::string& key,
                              const vf::sampling::SampleCloud& cloud,
                              const std::string& model_path) {
  auto entry = std::make_shared<ManifestEntry>();
  entry->cloud = cloud;
  entry->model_path = model_path;
  {
    const vf::util::MutexLock lock(manifest_mu_);
    entry->version = ++next_version_;
  }
  // Bind eagerly on the home shard — this is where cloud validation
  // throws, before the manifest accepts the registration.
  Shard& home = *shards_[ring_.owner(key)];
  {
    const vf::util::MutexLock lock(home.mu);
    home.service->add_session(key, entry->cloud, entry->model_path);
    home.applied[key] = entry->version;
  }
  manifest_applies_.fetch_add(1, std::memory_order_relaxed);
  {
    const vf::util::MutexLock lock(manifest_mu_);
    auto it = manifest_.find(key);
    // Concurrent re-registrations resolve by version, not install order,
    // so a stale entry can never overwrite a newer one.
    if (it == manifest_.end() || it->second->version < entry->version) {
      manifest_[key] = std::move(entry);
    }
  }
}

bool ShardRouter::has_session(const std::string& key) const {
  const vf::util::MutexLock lock(manifest_mu_);
  return manifest_.count(key) > 0;
}

void ShardRouter::converge_session(
    Shard& s, const std::shared_ptr<const ManifestEntry>& entry,
    const std::string& key) {
  const vf::util::MutexLock lock(s.mu);
  auto it = s.applied.find(key);
  if (it != s.applied.end() && it->second >= entry->version) return;
  // Stale (or never-bound) replica: re-bind before delegating. Holding
  // the shard's bind mutex serialises concurrent convergers, so the
  // scrub + index build runs once per (shard, version).
  s.service->add_session(key, entry->cloud, entry->model_path);
  s.applied[key] = entry->version;
  manifest_applies_.fetch_add(1, std::memory_order_relaxed);
  VF_OBS_COUNT("serve.router.manifest_applies", 1);
}

std::optional<std::future<PointResponse>> ShardRouter::submit(
    const std::string& key, std::vector<vf::field::Vec3> points) {
  return submit(key, std::move(points), Service::kNoDeadline);
}

std::optional<std::future<PointResponse>> ShardRouter::submit(
    const std::string& key, std::vector<vf::field::Vec3> points,
    std::chrono::steady_clock::time_point deadline) {
  std::shared_ptr<const ManifestEntry> entry;
  {
    const vf::util::MutexLock lock(manifest_mu_);
    auto it = manifest_.find(key);
    if (it == manifest_.end()) {
      throw std::invalid_argument("ShardRouter: unknown session key '" + key +
                                  "'");
    }
    entry = it->second;
  }
  bool diverted = false;
  for (const std::uint32_t idx : ring_.walk(key)) {
    Shard& s = *shards_[idx];
    if (!routable(s)) {
      diverted = true;
      continue;
    }
    converge_session(s, entry, key);
    // Copy the points per attempt: a shard that flips to draining between
    // the routable() check and the enqueue refuses the submit, and the
    // next candidate still needs the payload.
    auto fut = s.service->submit(key, points, deadline);
    if (fut.has_value()) {
      routed_.fetch_add(1, std::memory_order_relaxed);
      if (diverted) {
        rerouted_.fetch_add(1, std::memory_order_relaxed);
        VF_OBS_COUNT("serve.router.rerouted", 1);
      }
      return fut;
    }
    if (!s.service->draining()) {
      // Queue-full shed, not a drain race: this is genuine backpressure.
      // Spilling it onto a neighbour would hide saturation from the
      // operator and melt the next shard too.
      return std::nullopt;
    }
    diverted = true;  // drain race: walk on
  }
  no_shard_.fetch_add(1, std::memory_order_relaxed);
  return std::nullopt;
}

PointResponse ShardRouter::query(const std::string& key,
                                 std::vector<vf::field::Vec3> points) {
  auto fut = submit(key, std::move(points));
  if (!fut.has_value()) throw OverloadedError();
  return fut->get();
}

std::size_t ShardRouter::shard_for(const std::string& key) const {
  return ring_.owner(key);
}

std::optional<std::size_t> ShardRouter::route(const std::string& key) const {
  for (const std::uint32_t idx : ring_.walk(key)) {
    if (routable(*shards_[idx])) return idx;
  }
  return std::nullopt;
}

const Service& ShardRouter::shard(std::size_t i) const {
  return *shards_.at(i)->service;
}

void ShardRouter::set_healthy(std::size_t i, bool healthy) {
  shards_.at(i)->healthy.store(healthy, std::memory_order_relaxed);
}

bool ShardRouter::healthy(std::size_t i) const {
  return shards_.at(i)->healthy.load(std::memory_order_relaxed);
}

void ShardRouter::begin_drain_shard(std::size_t i) {
  shards_.at(i)->service->begin_drain();
}

void ShardRouter::begin_drain() {
  for (auto& s : shards_) s->service->begin_drain();
}

bool ShardRouter::draining() const {
  for (const auto& s : shards_) {
    if (!s->service->draining()) return false;
  }
  return true;
}

bool ShardRouter::drain(std::chrono::milliseconds budget) {
  // Admission closes everywhere first so every shard flushes its backlog
  // concurrently; the sequential waits below then share one wall clock.
  begin_drain();
  const auto deadline = std::chrono::steady_clock::now() + budget;
  bool in_budget = true;
  for (auto& s : shards_) {
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (left < std::chrono::milliseconds(0)) {
      left = std::chrono::milliseconds(0);
    }
    in_budget = s->service->drain(left) && in_budget;
  }
  return in_budget;
}

void ShardRouter::stop() {
  for (auto& s : shards_) s->service->stop();
}

RouterStats ShardRouter::stats() const {
  RouterStats out;
  out.routed = routed_.load(std::memory_order_relaxed);
  out.rerouted = rerouted_.load(std::memory_order_relaxed);
  out.manifest_applies = manifest_applies_.load(std::memory_order_relaxed);
  out.no_shard = no_shard_.load(std::memory_order_relaxed);
  out.shards.reserve(shards_.size());
  for (const auto& s : shards_) {
    out.shards.push_back(s->service->stats());
    accumulate(out.total, out.shards.back());
  }
  return out;
}

std::size_t ShardRouter::queue_depth() const {
  std::size_t depth = 0;
  for (const auto& s : shards_) depth += s->service->queue_depth();
  return depth;
}

}  // namespace vf::serve
