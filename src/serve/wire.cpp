#include "vf/serve/wire.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace vf::serve::wire {

namespace {

/// Cursor over one request line. All helpers return false on malformed
/// input and leave a message in err.
struct Cursor {
  const char* p;
  const char* end;
  std::string err;

  void skip_ws() {
    while (p != end && std::isspace(static_cast<unsigned char>(*p)) != 0) ++p;
  }

  bool fail(const std::string& what) {
    if (err.empty()) err = what;
    return false;
  }

  bool expect(char c) {
    skip_ws();
    if (p == end || *p != c) {
      return fail(std::string("expected '") + c + "'");
    }
    ++p;
    return true;
  }

  bool peek_is(char c) {
    skip_ws();
    return p != end && *p == c;
  }

  bool parse_string(std::string& out) {
    skip_ws();
    if (p == end || *p != '"') return fail("expected string");
    ++p;
    out.clear();
    while (p != end && *p != '"') {
      char c = *p++;
      if (c == '\\') {
        if (p == end) return fail("bad escape");
        const char esc = *p++;
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          default: return fail("unsupported escape");
        }
      }
      out += c;
    }
    if (p == end) return fail("unterminated string");
    ++p;
    return true;
  }

  bool parse_number(double& out) {
    skip_ws();
    char* after = nullptr;
    out = std::strtod(p, &after);
    if (after == p) return fail("expected number");
    p = after;
    return true;
  }

  /// Skip any JSON value (for unknown keys).
  bool skip_value() {
    skip_ws();
    if (p == end) return fail("truncated value");
    const char c = *p;
    if (c == '"') {
      std::string ignored;
      return parse_string(ignored);
    }
    if (c == '{' || c == '[') {
      const char close = c == '{' ? '}' : ']';
      ++p;
      skip_ws();
      if (peek_is(close)) {
        ++p;
        return true;
      }
      while (true) {
        if (c == '{') {
          std::string ignored;
          if (!parse_string(ignored) || !expect(':')) return false;
        }
        if (!skip_value()) return false;
        skip_ws();
        if (peek_is(',')) {
          ++p;
          continue;
        }
        return expect(close);
      }
    }
    // number / true / false / null
    const char* start = p;
    while (p != end && (std::isalnum(static_cast<unsigned char>(*p)) != 0 ||
                        *p == '-' || *p == '+' || *p == '.')) {
      ++p;
    }
    if (p == start) return fail("unexpected token");
    return true;
  }

  bool parse_points(std::vector<vf::field::Vec3>& out) {
    if (!expect('[')) return false;
    out.clear();
    if (peek_is(']')) {
      ++p;
      return true;
    }
    while (true) {
      if (!expect('[')) return false;
      double xyz[3] = {0, 0, 0};
      for (int i = 0; i < 3; ++i) {
        if (!parse_number(xyz[i])) return fail("point needs 3 numbers");
        if (i < 2 && !expect(',')) return fail("point needs 3 numbers");
      }
      if (!expect(']')) return fail("point needs exactly 3 numbers");
      out.push_back({xyz[0], xyz[1], xyz[2]});
      if (peek_is(',')) {
        ++p;
        continue;
      }
      return expect(']');
    }
  }
};

std::string quoted(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return buf;
}

/// `"id": N, "status": S, "code": C` — the prefix every response shares.
std::string response_head(std::int64_t id, Status status) {
  return "{\"id\": " + std::to_string(id) +
         ", \"status\": " + quoted(status_name(status)) +
         ", \"code\": " + std::to_string(status_code(status));
}

}  // namespace

const char* status_name(Status s) {
  switch (s) {
    case Status::Ok:
      return "ok";
    case Status::BadRequest:
      return "bad_request";
    case Status::Overloaded:
      return "overloaded";
    case Status::DeadlineExceeded:
      return "deadline_exceeded";
    case Status::Draining:
      return "draining";
    case Status::Internal:
      return "internal";
  }
  return "internal";
}

int status_code(Status s) { return static_cast<int>(s); }

bool status_from_name(const std::string& name, Status& out) {
  for (const Status s :
       {Status::Ok, Status::BadRequest, Status::Overloaded,
        Status::DeadlineExceeded, Status::Draining, Status::Internal}) {
    if (name == status_name(s)) {
      out = s;
      return true;
    }
  }
  return false;
}

bool parse_request(const std::string& line, Request& out, std::string& error) {
  out = Request{};
  Cursor c{line.data(), line.data() + line.size(), {}};
  bool ok = c.expect('{');
  if (ok && c.peek_is('}')) {
    error = "empty request";
    return false;
  }
  while (ok) {
    std::string field;
    ok = c.parse_string(field) && c.expect(':');
    if (!ok) break;
    if (field == "id") {
      double v = 0;
      ok = c.parse_number(v);
      out.id = static_cast<std::int64_t>(v);
    } else if (field == "key") {
      ok = c.parse_string(out.key);
    } else if (field == "cmd") {
      ok = c.parse_string(out.cmd);
    } else if (field == "points") {
      ok = c.parse_points(out.points);
    } else if (field == "deadline_ms") {
      ok = c.parse_number(out.deadline_ms);
      if (ok && (!std::isfinite(out.deadline_ms) || out.deadline_ms < 0)) {
        ok = c.fail("deadline_ms must be a finite number >= 0");
      }
    } else {
      ok = c.skip_value();
    }
    if (!ok) break;
    if (c.peek_is(',')) {
      ++c.p;
      continue;
    }
    ok = c.expect('}');
    break;
  }
  if (!ok) {
    error = c.err.empty() ? "malformed request" : c.err;
    return false;
  }
  if (out.cmd.empty() && out.points.empty()) {
    error = "query needs a non-empty \"points\" array";
    return false;
  }
  return true;
}

std::string query_response(std::int64_t id, const PointResponse& resp) {
  if (resp.status != Status::Ok) return status_response(id, resp.status);
  std::string out = response_head(id, Status::Ok);
  out += ", \"values\": [";
  for (std::size_t i = 0; i < resp.values.size(); ++i) {
    if (i > 0) out += ", ";
    out += number(resp.values[i]);
  }
  out += "], \"degraded\": " + std::to_string(resp.degraded);
  out += ", \"batch\": " + std::to_string(resp.batch_points);
  if (!resp.fallback.empty()) {
    out += ", \"fallback\": " + quoted(resp.fallback);
  }
  out += "}";
  return out;
}

std::string stats_response(std::int64_t id, const ServiceStats& stats) {
  std::string out = response_head(id, Status::Ok);
  out += ", \"stats\": {";
  out += "\"accepted\": " + std::to_string(stats.accepted);
  out += ", \"shed\": " + std::to_string(stats.shed);
  out += ", \"batches\": " + std::to_string(stats.batches);
  out += ", \"served_points\": " + std::to_string(stats.served_points);
  out += ", \"degraded_points\": " + std::to_string(stats.degraded_points);
  out += ", \"fallback_batches\": " + std::to_string(stats.fallback_batches);
  out += ", \"expired\": " + std::to_string(stats.expired);
  out += ", \"drain_rejects\": " + std::to_string(stats.drain_rejects);
  out += ", \"registry\": {";
  out += "\"hits\": " + std::to_string(stats.registry.hits);
  out += ", \"loads\": " + std::to_string(stats.registry.loads);
  out += ", \"load_failures\": " + std::to_string(stats.registry.load_failures);
  out += ", \"evictions\": " + std::to_string(stats.registry.evictions);
  out += ", \"breaker_opens\": " + std::to_string(stats.registry.breaker_opens);
  out += ", \"breaker_fast_fails\": " +
         std::to_string(stats.registry.breaker_fast_fails);
  out += ", \"open_breakers\": " + std::to_string(stats.registry.open_breakers);
  out += ", \"resident_models\": " +
         std::to_string(stats.registry.resident_models);
  out += ", \"resident_bytes\": " +
         std::to_string(stats.registry.resident_bytes);
  out += "}}}";
  return out;
}

std::string status_response(std::int64_t id, Status status,
                            const std::string& message) {
  std::string out = response_head(id, status);
  if (!message.empty()) out += ", \"message\": " + quoted(message);
  out += "}";
  return out;
}

std::string ready_response(std::int64_t id, const ReadyInfo& info) {
  const Status status = info.draining ? Status::Draining : Status::Ok;
  std::string out = response_head(id, status);
  out += std::string(", \"ready\": ") + (info.draining ? "false" : "true");
  out += std::string(", \"degraded\": ") +
         (info.open_breakers > 0 ? "true" : "false");
  out += ", \"queue_depth\": " + std::to_string(info.queue_depth);
  out += ", \"queue_max\": " + std::to_string(info.queue_max);
  out += ", \"resident_models\": " + std::to_string(info.resident_models);
  out += ", \"open_breakers\": " + std::to_string(info.open_breakers);
  out += ", \"breakers\": {";
  bool first = true;
  for (const auto& [key, snap] : info.breakers) {
    if (!first) out += ", ";
    first = false;
    out += quoted(key) + ": {\"state\": " +
           quoted(breaker_state_name(snap.state)) +
           ", \"consecutive_failures\": " +
           std::to_string(snap.consecutive_failures) +
           ", \"backoff_ms\": " + std::to_string(snap.backoff.count()) + "}";
  }
  out += "}}";
  return out;
}

}  // namespace vf::serve::wire
