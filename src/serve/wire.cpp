#include "vf/serve/wire.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace vf::serve::wire {

namespace {

/// Cursor over one request line. All helpers return false on malformed
/// input and leave a message in err.
struct Cursor {
  const char* p;
  const char* end;
  std::string err;

  void skip_ws() {
    while (p != end && std::isspace(static_cast<unsigned char>(*p)) != 0) ++p;
  }

  bool fail(const std::string& what) {
    if (err.empty()) err = what;
    return false;
  }

  bool expect(char c) {
    skip_ws();
    if (p == end || *p != c) {
      return fail(std::string("expected '") + c + "'");
    }
    ++p;
    return true;
  }

  bool peek_is(char c) {
    skip_ws();
    return p != end && *p == c;
  }

  bool parse_string(std::string& out) {
    skip_ws();
    if (p == end || *p != '"') return fail("expected string");
    ++p;
    out.clear();
    while (p != end && *p != '"') {
      char c = *p++;
      if (c == '\\') {
        if (p == end) return fail("bad escape");
        const char esc = *p++;
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          default: return fail("unsupported escape");
        }
      }
      out += c;
    }
    if (p == end) return fail("unterminated string");
    ++p;
    return true;
  }

  bool parse_number(double& out) {
    skip_ws();
    char* after = nullptr;
    out = std::strtod(p, &after);
    if (after == p) return fail("expected number");
    p = after;
    return true;
  }

  /// Skip any JSON value (for unknown keys).
  bool skip_value() {
    skip_ws();
    if (p == end) return fail("truncated value");
    const char c = *p;
    if (c == '"') {
      std::string ignored;
      return parse_string(ignored);
    }
    if (c == '{' || c == '[') {
      const char close = c == '{' ? '}' : ']';
      ++p;
      skip_ws();
      if (peek_is(close)) {
        ++p;
        return true;
      }
      while (true) {
        if (c == '{') {
          std::string ignored;
          if (!parse_string(ignored) || !expect(':')) return false;
        }
        if (!skip_value()) return false;
        skip_ws();
        if (peek_is(',')) {
          ++p;
          continue;
        }
        return expect(close);
      }
    }
    // number / true / false / null
    const char* start = p;
    while (p != end && (std::isalnum(static_cast<unsigned char>(*p)) != 0 ||
                        *p == '-' || *p == '+' || *p == '.')) {
      ++p;
    }
    if (p == start) return fail("unexpected token");
    return true;
  }

  bool parse_points(std::vector<vf::field::Vec3>& out) {
    if (!expect('[')) return false;
    out.clear();
    if (peek_is(']')) {
      ++p;
      return true;
    }
    while (true) {
      if (!expect('[')) return false;
      double xyz[3] = {0, 0, 0};
      for (int i = 0; i < 3; ++i) {
        if (!parse_number(xyz[i])) return fail("point needs 3 numbers");
        if (i < 2 && !expect(',')) return fail("point needs 3 numbers");
      }
      if (!expect(']')) return fail("point needs exactly 3 numbers");
      out.push_back({xyz[0], xyz[1], xyz[2]});
      if (peek_is(',')) {
        ++p;
        continue;
      }
      return expect(']');
    }
  }
};

std::string quoted(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return buf;
}

}  // namespace

bool parse_request(const std::string& line, Request& out, std::string& error) {
  out = Request{};
  Cursor c{line.data(), line.data() + line.size(), {}};
  bool ok = c.expect('{');
  if (ok && c.peek_is('}')) {
    error = "empty request";
    return false;
  }
  while (ok) {
    std::string field;
    ok = c.parse_string(field) && c.expect(':');
    if (!ok) break;
    if (field == "id") {
      double v = 0;
      ok = c.parse_number(v);
      out.id = static_cast<std::int64_t>(v);
    } else if (field == "key") {
      ok = c.parse_string(out.key);
    } else if (field == "cmd") {
      ok = c.parse_string(out.cmd);
    } else if (field == "points") {
      ok = c.parse_points(out.points);
    } else {
      ok = c.skip_value();
    }
    if (!ok) break;
    if (c.peek_is(',')) {
      ++c.p;
      continue;
    }
    ok = c.expect('}');
    break;
  }
  if (!ok) {
    error = c.err.empty() ? "malformed request" : c.err;
    return false;
  }
  if (out.cmd.empty() && out.points.empty()) {
    error = "query needs a non-empty \"points\" array";
    return false;
  }
  return true;
}

std::string ok_response(std::int64_t id, const PointResponse& resp) {
  std::string out = "{\"id\": " + std::to_string(id) + ", \"status\": \"ok\"";
  out += ", \"values\": [";
  for (std::size_t i = 0; i < resp.values.size(); ++i) {
    if (i > 0) out += ", ";
    out += number(resp.values[i]);
  }
  out += "], \"degraded\": " + std::to_string(resp.degraded);
  out += ", \"batch\": " + std::to_string(resp.batch_points);
  if (!resp.fallback.empty()) {
    out += ", \"fallback\": " + quoted(resp.fallback);
  }
  out += "}";
  return out;
}

std::string stats_response(std::int64_t id, const ServiceStats& stats) {
  std::string out = "{\"id\": " + std::to_string(id) + ", \"status\": \"ok\"";
  out += ", \"stats\": {";
  out += "\"accepted\": " + std::to_string(stats.accepted);
  out += ", \"shed\": " + std::to_string(stats.shed);
  out += ", \"batches\": " + std::to_string(stats.batches);
  out += ", \"served_points\": " + std::to_string(stats.served_points);
  out += ", \"degraded_points\": " + std::to_string(stats.degraded_points);
  out += ", \"fallback_batches\": " + std::to_string(stats.fallback_batches);
  out += ", \"registry\": {";
  out += "\"hits\": " + std::to_string(stats.registry.hits);
  out += ", \"loads\": " + std::to_string(stats.registry.loads);
  out += ", \"load_failures\": " + std::to_string(stats.registry.load_failures);
  out += ", \"evictions\": " + std::to_string(stats.registry.evictions);
  out += ", \"resident_models\": " +
         std::to_string(stats.registry.resident_models);
  out += ", \"resident_bytes\": " +
         std::to_string(stats.registry.resident_bytes);
  out += "}}}";
  return out;
}

std::string status_response(std::int64_t id, const std::string& status,
                            const std::string& message) {
  std::string out =
      "{\"id\": " + std::to_string(id) + ", \"status\": " + quoted(status);
  if (!message.empty()) out += ", \"message\": " + quoted(message);
  out += "}";
  return out;
}

}  // namespace vf::serve::wire
