#include "vf/serve/wire.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "vf/util/atomic_io.hpp"

namespace vf::serve::wire {

namespace {

/// Cursor over one request line. All helpers return false on malformed
/// input and leave a message in err.
struct Cursor {
  const char* p;
  const char* end;
  std::string err;

  void skip_ws() {
    while (p != end && std::isspace(static_cast<unsigned char>(*p)) != 0) ++p;
  }

  bool fail(const std::string& what) {
    if (err.empty()) err = what;
    return false;
  }

  bool expect(char c) {
    skip_ws();
    if (p == end || *p != c) {
      return fail(std::string("expected '") + c + "'");
    }
    ++p;
    return true;
  }

  bool peek_is(char c) {
    skip_ws();
    return p != end && *p == c;
  }

  bool parse_string(std::string& out) {
    skip_ws();
    if (p == end || *p != '"') return fail("expected string");
    ++p;
    out.clear();
    while (p != end && *p != '"') {
      char c = *p++;
      if (c == '\\') {
        if (p == end) return fail("bad escape");
        const char esc = *p++;
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          default: return fail("unsupported escape");
        }
      }
      out += c;
    }
    if (p == end) return fail("unterminated string");
    ++p;
    return true;
  }

  bool parse_number(double& out) {
    skip_ws();
    char* after = nullptr;
    out = std::strtod(p, &after);
    if (after == p) return fail("expected number");
    p = after;
    return true;
  }

  /// Skip any JSON value (for unknown keys).
  bool skip_value() {
    skip_ws();
    if (p == end) return fail("truncated value");
    const char c = *p;
    if (c == '"') {
      std::string ignored;
      return parse_string(ignored);
    }
    if (c == '{' || c == '[') {
      const char close = c == '{' ? '}' : ']';
      ++p;
      skip_ws();
      if (peek_is(close)) {
        ++p;
        return true;
      }
      while (true) {
        if (c == '{') {
          std::string ignored;
          if (!parse_string(ignored) || !expect(':')) return false;
        }
        if (!skip_value()) return false;
        skip_ws();
        if (peek_is(',')) {
          ++p;
          continue;
        }
        return expect(close);
      }
    }
    // number / true / false / null
    const char* start = p;
    while (p != end && (std::isalnum(static_cast<unsigned char>(*p)) != 0 ||
                        *p == '-' || *p == '+' || *p == '.')) {
      ++p;
    }
    if (p == start) return fail("unexpected token");
    return true;
  }

  bool parse_points(std::vector<vf::field::Vec3>& out) {
    if (!expect('[')) return false;
    out.clear();
    if (peek_is(']')) {
      ++p;
      return true;
    }
    while (true) {
      if (!expect('[')) return false;
      double xyz[3] = {0, 0, 0};
      for (int i = 0; i < 3; ++i) {
        if (!parse_number(xyz[i])) return fail("point needs 3 numbers");
        if (i < 2 && !expect(',')) return fail("point needs 3 numbers");
      }
      if (!expect(']')) return fail("point needs exactly 3 numbers");
      out.push_back({xyz[0], xyz[1], xyz[2]});
      if (peek_is(',')) {
        ++p;
        continue;
      }
      return expect(']');
    }
  }
};

std::string quoted(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return buf;
}

/// `"id": N, "status": S, "code": C` — the prefix every response shares.
std::string response_head(std::int64_t id, Status status) {
  return "{\"id\": " + std::to_string(id) +
         ", \"status\": " + quoted(status_name(status)) +
         ", \"code\": " + std::to_string(status_code(status));
}

}  // namespace

const char* status_name(Status s) {
  switch (s) {
    case Status::Ok:
      return "ok";
    case Status::BadRequest:
      return "bad_request";
    case Status::Overloaded:
      return "overloaded";
    case Status::DeadlineExceeded:
      return "deadline_exceeded";
    case Status::Draining:
      return "draining";
    case Status::Internal:
      return "internal";
  }
  return "internal";
}

int status_code(Status s) { return static_cast<int>(s); }

bool status_from_name(const std::string& name, Status& out) {
  for (const Status s :
       {Status::Ok, Status::BadRequest, Status::Overloaded,
        Status::DeadlineExceeded, Status::Draining, Status::Internal}) {
    if (name == status_name(s)) {
      out = s;
      return true;
    }
  }
  return false;
}

bool parse_request(const std::string& line, Request& out, std::string& error) {
  out = Request{};
  Cursor c{line.data(), line.data() + line.size(), {}};
  bool ok = c.expect('{');
  if (ok && c.peek_is('}')) {
    error = "empty request";
    return false;
  }
  while (ok) {
    std::string field;
    ok = c.parse_string(field) && c.expect(':');
    if (!ok) break;
    if (field == "id") {
      double v = 0;
      ok = c.parse_number(v);
      out.id = static_cast<std::int64_t>(v);
    } else if (field == "key") {
      ok = c.parse_string(out.key);
    } else if (field == "cmd") {
      ok = c.parse_string(out.cmd);
    } else if (field == "points") {
      ok = c.parse_points(out.points);
    } else if (field == "deadline_ms") {
      ok = c.parse_number(out.deadline_ms);
      if (ok && (!std::isfinite(out.deadline_ms) || out.deadline_ms < 0)) {
        ok = c.fail("deadline_ms must be a finite number >= 0");
      }
    } else {
      ok = c.skip_value();
    }
    if (!ok) break;
    if (c.peek_is(',')) {
      ++c.p;
      continue;
    }
    ok = c.expect('}');
    break;
  }
  if (!ok) {
    error = c.err.empty() ? "malformed request" : c.err;
    return false;
  }
  if (out.cmd.empty() && out.points.empty()) {
    error = "query needs a non-empty \"points\" array";
    return false;
  }
  return true;
}

std::string query_response(std::int64_t id, const PointResponse& resp) {
  if (resp.status != Status::Ok) return status_response(id, resp.status);
  std::string out = response_head(id, Status::Ok);
  out += ", \"values\": [";
  for (std::size_t i = 0; i < resp.values.size(); ++i) {
    if (i > 0) out += ", ";
    out += number(resp.values[i]);
  }
  out += "], \"degraded\": " + std::to_string(resp.degraded);
  out += ", \"batch\": " + std::to_string(resp.batch_points);
  if (!resp.fallback.empty()) {
    out += ", \"fallback\": " + quoted(resp.fallback);
  }
  out += "}";
  return out;
}

std::string stats_response(std::int64_t id, const ServiceStats& stats) {
  std::string out = response_head(id, Status::Ok);
  out += ", \"stats\": {";
  out += "\"accepted\": " + std::to_string(stats.accepted);
  out += ", \"shed\": " + std::to_string(stats.shed);
  out += ", \"batches\": " + std::to_string(stats.batches);
  out += ", \"served_points\": " + std::to_string(stats.served_points);
  out += ", \"degraded_points\": " + std::to_string(stats.degraded_points);
  out += ", \"fallback_batches\": " + std::to_string(stats.fallback_batches);
  out += ", \"expired\": " + std::to_string(stats.expired);
  out += ", \"drain_rejects\": " + std::to_string(stats.drain_rejects);
  out += ", \"registry\": {";
  out += "\"hits\": " + std::to_string(stats.registry.hits);
  out += ", \"loads\": " + std::to_string(stats.registry.loads);
  out += ", \"load_failures\": " + std::to_string(stats.registry.load_failures);
  out += ", \"evictions\": " + std::to_string(stats.registry.evictions);
  out += ", \"breaker_opens\": " + std::to_string(stats.registry.breaker_opens);
  out += ", \"breaker_fast_fails\": " +
         std::to_string(stats.registry.breaker_fast_fails);
  out += ", \"open_breakers\": " + std::to_string(stats.registry.open_breakers);
  out += ", \"resident_models\": " +
         std::to_string(stats.registry.resident_models);
  out += ", \"resident_bytes\": " +
         std::to_string(stats.registry.resident_bytes);
  out += "}}}";
  return out;
}

std::string status_response(std::int64_t id, Status status,
                            const std::string& message) {
  std::string out = response_head(id, status);
  if (!message.empty()) out += ", \"message\": " + quoted(message);
  out += "}";
  return out;
}

namespace {

/// Bounds-checked sequential reader over a frame payload — the ByteReader
/// discipline from atomic_io, over a string_view so decode never copies
/// the payload before validating it. Overruns throw; the frame decoders
/// translate that into FrameStatus::Corrupt.
struct PayloadReader {
  std::string_view buf;
  std::size_t at = 0;

  template <typename T>
  T pod() {
    static_assert(std::is_trivially_copyable_v<T>);
    T v{};
    bytes(&v, sizeof v);
    return v;
  }
  void bytes(void* dst, std::size_t len) {
    if (len > buf.size() - at) {
      throw std::runtime_error("VFW1: truncated payload record");
    }
    if (len > 0) std::memcpy(dst, buf.data() + at, len);
    at += len;
  }
  std::string str(std::size_t max_len) {
    const auto len = pod<std::uint32_t>();
    if (len > max_len || len > buf.size() - at) {
      throw std::runtime_error("VFW1: oversized string field");
    }
    std::string s(buf.substr(at, len));
    at += len;
    return s;
  }
  void expect_end() const {
    if (at != buf.size()) {
      throw std::runtime_error("VFW1: trailing payload bytes");
    }
  }
};

/// Wrap a finished payload in the VFW1 frame: magic, length, payload, CRC.
std::string frame_payload(const std::string& payload) {
  std::string out;
  out.reserve(payload.size() + 12);
  out.append(kBinaryMagic, sizeof kBinaryMagic);
  const auto len = static_cast<std::uint32_t>(payload.size());
  out.append(reinterpret_cast<const char*>(&len), sizeof len);
  out += payload;
  const std::uint32_t crc = vf::util::crc32(payload.data(), payload.size());
  out.append(reinterpret_cast<const char*>(&crc), sizeof crc);
  return out;
}

/// Shared framing: validate magic/length/CRC at the head of `buf`. On Ok,
/// `payload` views into `buf` and `consumed` covers the whole frame.
FrameStatus open_frame(std::string_view buf, std::size_t& consumed,
                       std::string_view& payload, std::string& error) {
  consumed = 0;
  if (buf.size() < sizeof kBinaryMagic + sizeof(std::uint32_t)) {
    return FrameStatus::NeedMore;
  }
  if (std::memcmp(buf.data(), kBinaryMagic, sizeof kBinaryMagic) != 0) {
    error = "VFW1: bad magic";
    return FrameStatus::Corrupt;
  }
  std::uint32_t len = 0;
  std::memcpy(&len, buf.data() + sizeof kBinaryMagic, sizeof len);
  if (len > kBinaryMaxPayload) {
    error = "VFW1: payload length exceeds frame cap";
    return FrameStatus::Corrupt;
  }
  const std::size_t frame_size =
      sizeof kBinaryMagic + sizeof len + std::size_t{len} + sizeof(std::uint32_t);
  if (buf.size() < frame_size) return FrameStatus::NeedMore;
  payload = buf.substr(sizeof kBinaryMagic + sizeof len, len);
  std::uint32_t want = 0;
  std::memcpy(&want, buf.data() + frame_size - sizeof want, sizeof want);
  if (vf::util::crc32(payload.data(), payload.size()) != want) {
    error = "VFW1: payload CRC mismatch";
    return FrameStatus::Corrupt;
  }
  consumed = frame_size;
  return FrameStatus::Ok;
}

/// Longest key / message the binary codec accepts — far above anything
/// legitimate, far below the frame cap.
constexpr std::size_t kMaxStringField = std::size_t{1} << 20;

constexpr std::uint8_t kFlagFallbackClassical = 0x01;

}  // namespace

const char* verb_cmd(Verb v) {
  switch (v) {
    case Verb::Query:
      return "";
    case Verb::Stats:
      return "stats";
    case Verb::Health:
      return "health";
    case Verb::Ready:
      return "ready";
    case Verb::Shutdown:
      return "shutdown";
  }
  return "";
}

bool verb_from_cmd(const std::string& cmd, Verb& out) {
  for (const Verb v : {Verb::Query, Verb::Stats, Verb::Health, Verb::Ready,
                       Verb::Shutdown}) {
    if (cmd == verb_cmd(v)) {
      out = v;
      return true;
    }
  }
  return false;
}

Response make_query_response(std::int64_t id, const PointResponse& resp) {
  Response out;
  out.id = id;
  out.verb = Verb::Query;
  out.status = resp.status;
  if (resp.status == Status::Ok) {
    out.values = resp.values;
    out.degraded = static_cast<std::uint32_t>(resp.degraded);
    out.batch_points = static_cast<std::uint32_t>(resp.batch_points);
    out.fallback_classical = resp.fallback == "classical";
  }
  return out;
}

Response make_status_response(std::int64_t id, Verb verb, Status status,
                              const std::string& message) {
  Response out;
  out.id = id;
  out.verb = verb;
  out.status = status;
  out.message = message;
  return out;
}

std::string render_json(const Response& resp) {
  if (!resp.json_body.empty()) return resp.json_body;
  if (resp.verb == Verb::Query && resp.status == Status::Ok) {
    PointResponse pr;
    pr.status = resp.status;
    pr.values = resp.values;
    pr.degraded = resp.degraded;
    pr.batch_points = resp.batch_points;
    if (resp.fallback_classical) pr.fallback = "classical";
    return query_response(resp.id, pr);
  }
  return status_response(resp.id, resp.status, resp.message);
}

CodecKind sniff_codec(std::string_view head) {
  if (head.empty()) return CodecKind::Unknown;
  const std::size_t n = std::min(head.size(), sizeof kBinaryMagic);
  if (std::memcmp(head.data(), kBinaryMagic, n) != 0) return CodecKind::Ndjson;
  return n == sizeof kBinaryMagic ? CodecKind::Binary : CodecKind::Unknown;
}

std::string encode_request_frame(const Request& req) {
  Verb verb = Verb::Query;
  if (!verb_from_cmd(req.cmd, verb)) {
    throw std::invalid_argument("VFW1: no verb for cmd '" + req.cmd + "'");
  }
  vf::util::ByteWriter bw;
  bw.pod(static_cast<std::uint8_t>(verb));
  bw.pod(std::uint8_t{0});  // flags, reserved
  bw.pod(req.id);
  bw.pod(req.deadline_ms);
  bw.str(req.key);
  bw.pod(static_cast<std::uint32_t>(req.points.size()));
  // Zero-copy float payload: Vec3 is a plain struct of three doubles, so
  // the whole query travels as one bulk append instead of one formatted
  // number per coordinate.
  static_assert(std::is_trivially_copyable_v<vf::field::Vec3> &&
                sizeof(vf::field::Vec3) == 3 * sizeof(double));
  if (!req.points.empty()) {
    bw.bytes(req.points.data(), req.points.size() * sizeof(vf::field::Vec3));
  }
  return frame_payload(bw.take());
}

FrameStatus decode_request_frame(std::string_view buf, std::size_t& consumed,
                                 Request& out, std::string& error) {
  out = Request{};
  error.clear();
  std::string_view payload;
  const FrameStatus framed = open_frame(buf, consumed, payload, error);
  if (framed != FrameStatus::Ok) return framed;
  try {
    PayloadReader r{payload, 0};
    const auto verb_byte = r.pod<std::uint8_t>();
    (void)r.pod<std::uint8_t>();  // flags, reserved
    out.id = r.pod<std::int64_t>();
    out.deadline_ms = r.pod<double>();
    out.key = r.str(kMaxStringField);
    const auto n_points = r.pod<std::uint32_t>();
    if (std::size_t{n_points} * sizeof(vf::field::Vec3) >
        payload.size() - r.at) {
      throw std::runtime_error("VFW1: point count exceeds payload");
    }
    out.points.resize(n_points);
    r.bytes(out.points.data(), n_points * sizeof(vf::field::Vec3));
    r.expect_end();
    // Semantic validation mirrors parse_request: these frames are sound,
    // so the server answers bad_request instead of dropping the line.
    if (verb_byte > static_cast<std::uint8_t>(Verb::Shutdown)) {
      error = "unknown verb " + std::to_string(verb_byte);
      return FrameStatus::Bad;
    }
    out.cmd = verb_cmd(static_cast<Verb>(verb_byte));
    if (!std::isfinite(out.deadline_ms) || out.deadline_ms < 0) {
      error = "deadline_ms must be a finite number >= 0";
      return FrameStatus::Bad;
    }
    if (out.cmd.empty() && out.points.empty()) {
      error = "query needs a non-empty points payload";
      return FrameStatus::Bad;
    }
  } catch (const std::runtime_error& e) {
    // Structural violations inside a CRC-clean payload mean the sender's
    // framing is broken, not the request: connection-fatal.
    error = e.what();
    consumed = 0;
    return FrameStatus::Corrupt;
  }
  return FrameStatus::Ok;
}

std::string encode_response_frame(const Response& resp) {
  vf::util::ByteWriter bw;
  bw.pod(static_cast<std::uint8_t>(resp.verb));
  bw.pod(static_cast<std::uint8_t>(status_code(resp.status)));
  bw.pod(static_cast<std::uint8_t>(
      resp.fallback_classical ? kFlagFallbackClassical : 0));
  bw.pod(std::uint8_t{0});  // reserved
  bw.pod(resp.id);
  bw.pod(resp.degraded);
  bw.pod(resp.batch_points);
  bw.str(resp.message);
  bw.str(resp.json_body);
  bw.pod(static_cast<std::uint32_t>(resp.values.size()));
  if (!resp.values.empty()) {
    bw.bytes(resp.values.data(), resp.values.size() * sizeof(double));
  }
  return frame_payload(bw.take());
}

FrameStatus decode_response_frame(std::string_view buf, std::size_t& consumed,
                                  Response& out, std::string& error) {
  out = Response{};
  error.clear();
  std::string_view payload;
  const FrameStatus framed = open_frame(buf, consumed, payload, error);
  if (framed != FrameStatus::Ok) return framed;
  try {
    PayloadReader r{payload, 0};
    const auto verb_byte = r.pod<std::uint8_t>();
    const auto code = r.pod<std::uint8_t>();
    const auto flags = r.pod<std::uint8_t>();
    (void)r.pod<std::uint8_t>();  // reserved
    if (verb_byte > static_cast<std::uint8_t>(Verb::Shutdown) ||
        code > static_cast<std::uint8_t>(Status::Internal)) {
      throw std::runtime_error("VFW1: unknown verb/status in response");
    }
    out.verb = static_cast<Verb>(verb_byte);
    out.status = static_cast<Status>(code);
    out.fallback_classical = (flags & kFlagFallbackClassical) != 0;
    out.id = r.pod<std::int64_t>();
    out.degraded = r.pod<std::uint32_t>();
    out.batch_points = r.pod<std::uint32_t>();
    out.message = r.str(kMaxStringField);
    out.json_body = r.str(kMaxStringField);
    const auto n_values = r.pod<std::uint32_t>();
    if (std::size_t{n_values} * sizeof(double) > payload.size() - r.at) {
      throw std::runtime_error("VFW1: value count exceeds payload");
    }
    out.values.resize(n_values);
    r.bytes(out.values.data(), n_values * sizeof(double));
    r.expect_end();
  } catch (const std::runtime_error& e) {
    error = e.what();
    consumed = 0;
    return FrameStatus::Corrupt;
  }
  return FrameStatus::Ok;
}

std::string ready_response(std::int64_t id, const ReadyInfo& info) {
  const Status status = info.draining ? Status::Draining : Status::Ok;
  std::string out = response_head(id, status);
  out += std::string(", \"ready\": ") + (info.draining ? "false" : "true");
  out += std::string(", \"degraded\": ") +
         (info.open_breakers > 0 ? "true" : "false");
  out += ", \"queue_depth\": " + std::to_string(info.queue_depth);
  out += ", \"queue_max\": " + std::to_string(info.queue_max);
  out += ", \"resident_models\": " + std::to_string(info.resident_models);
  out += ", \"open_breakers\": " + std::to_string(info.open_breakers);
  if (info.has_pipeline) {
    // Front-ends embedding an in-situ pipeline report which fine-tune
    // generation is live and how well it scored on its own step.
    out += ", \"pipeline_generation\": " +
           std::to_string(info.pipeline_generation);
    out += ", \"pipeline_last_snr_db\": " + number(info.pipeline_last_snr_db);
  }
  out += ", \"breakers\": {";
  bool first = true;
  for (const auto& [key, snap] : info.breakers) {
    if (!first) out += ", ";
    first = false;
    out += quoted(key) + ": {\"state\": " +
           quoted(breaker_state_name(snap.state)) +
           ", \"consecutive_failures\": " +
           std::to_string(snap.consecutive_failures) +
           ", \"backoff_ms\": " + std::to_string(snap.backoff.count()) + "}";
  }
  out += "}}";
  return out;
}

}  // namespace vf::serve::wire
