#include "vf/serve/queue.hpp"

#include <utility>

#include "vf/obs/obs.hpp"

namespace vf::serve {

bool Reply::fulfill(PointResponse resp) {
  if (answered_) return false;
  answered_ = true;
  // vf-lint: allow(unbounded-wait) the answer-exactly-once helper itself
  promise_.set_value(std::move(resp));
  return true;
}

bool Reply::fulfill(Status status) {
  PointResponse resp;
  resp.status = status;
  return fulfill(std::move(resp));
}

bool Reply::fail(std::exception_ptr err) {
  if (answered_) return false;
  answered_ = true;
  // vf-lint: allow(unbounded-wait) the answer-exactly-once helper itself
  promise_.set_exception(std::move(err));
  return true;
}

RequestQueue::RequestQueue(std::size_t max_pending)
    : max_pending_(max_pending == 0 ? 1 : max_pending) {}

Admission RequestQueue::push(PointRequest& req) {
  {
    const vf::util::MutexLock lock(mu_);
    if (down_) return Admission::ShuttingDown;
    if (q_.size() >= max_pending_) {
      VF_OBS_COUNT("serve.queue.shed", 1);
      return Admission::QueueFull;
    }
    req.enqueued = std::chrono::steady_clock::now();
    q_.push_back(std::move(req));
    VF_OBS_GAUGE("serve.queue.depth", static_cast<std::int64_t>(q_.size()));
  }
  // Wake every waiter: a worker parked on a deadline wait for key A must
  // also notice a fresh key-B head that a second idle worker could miss.
  cv_.notify_all();
  return Admission::Accepted;
}

std::size_t RequestQueue::expire_sweep_locked(
    std::chrono::steady_clock::time_point now) {
  std::size_t swept = 0;
  for (auto it = q_.begin(); it != q_.end();) {
    if (it->expired(now)) {
      // Count before fulfilling: a client that wakes on the answer must
      // already see this expiry in the stats it reads next.
      expired_.fetch_add(1, std::memory_order_relaxed);
      it->reply.fulfill(Status::DeadlineExceeded);
      it = q_.erase(it);
      ++swept;
    } else {
      ++it;
    }
  }
  if (swept > 0) {
    VF_OBS_COUNT("serve.queue.expired", static_cast<std::int64_t>(swept));
    VF_OBS_GAUGE("serve.queue.depth", static_cast<std::int64_t>(q_.size()));
  }
  return swept;
}

std::size_t RequestQueue::expire_sweep() {
  const vf::util::MutexLock lock(mu_);
  return expire_sweep_locked(std::chrono::steady_clock::now());
}

std::size_t RequestQueue::shed_all(Status status) {
  std::deque<PointRequest> orphaned;
  {
    const vf::util::MutexLock lock(mu_);
    orphaned.swap(q_);
    VF_OBS_GAUGE("serve.queue.depth", 0);
  }
  for (auto& req : orphaned) req.reply.fulfill(status);
  return orphaned.size();
}

std::size_t RequestQueue::claim_locked(
    const std::string& key, std::vector<PointRequest>& out,
    std::size_t max_points, std::size_t claimed,
    std::chrono::steady_clock::time_point now,
    std::chrono::steady_clock::time_point& flush) {
  for (auto it = q_.begin(); it != q_.end() && claimed < max_points;) {
    if (it->key != key) {
      ++it;
      continue;
    }
    if (it->expired(now)) {
      // Dead on claim: answer it here so it neither pads the batch nor
      // waits for the next sweep (count first — see expire_sweep_locked).
      expired_.fetch_add(1, std::memory_order_relaxed);
      it->reply.fulfill(Status::DeadlineExceeded);
      VF_OBS_COUNT("serve.queue.expired", 1);
      it = q_.erase(it);
      continue;
    }
    // Never hold the batch open past the earliest member's own deadline.
    if (it->deadline < flush) flush = it->deadline;
    claimed += it->points.size();
    out.push_back(std::move(*it));
    it = q_.erase(it);
  }
  return claimed;
}

bool RequestQueue::pop_batch(std::vector<PointRequest>& out,
                             std::size_t max_points,
                             std::chrono::microseconds max_delay) {
  out.clear();
  if (max_points == 0) max_points = 1;
  const vf::util::MutexLock lock(mu_);

  std::chrono::steady_clock::time_point now;
  for (;;) {
    cv_.wait(mu_, [&]() VF_REQUIRES(mu_) { return down_ || !q_.empty(); });
    now = std::chrono::steady_clock::now();
    // Sweep before selecting a head: a backlog of expired requests must
    // never starve the live ones behind it (or pad their batch).
    expire_sweep_locked(now);
    if (!q_.empty()) break;
    if (down_) return false;  // shutdown with a drained backlog
  }

  const std::string key = q_.front().key;
  // Coalescing flush point: the head's age budget, clamped by every claimed
  // member's request deadline (claim_locked tightens it as it claims).
  auto flush = q_.front().enqueued + max_delay;
  std::size_t claimed = claim_locked(key, out, max_points, 0, now, flush);

  // Coalescing window: park until the flush point for more same-key
  // arrivals (each push notifies). A size-flush ends the wait early;
  // shutdown flushes whatever has been claimed.
  while (claimed < max_points && !down_) {
    // vf-lint: allow(unbounded-wait) bounded by flush; loop rechecks state
    if (cv_.wait_until(mu_, flush) == std::cv_status::timeout) break;
    claimed = claim_locked(key, out, max_points, claimed,
                           std::chrono::steady_clock::now(), flush);
  }
  claimed = claim_locked(key, out, max_points, claimed,
                         std::chrono::steady_clock::now(), flush);
  VF_OBS_GAUGE("serve.queue.depth", static_cast<std::int64_t>(q_.size()));
  // The pre-claim sweep guarantees at least the head was live, so `out` is
  // never empty here even if later claims expired everything they saw.
  return true;
}

void RequestQueue::shutdown() {
  {
    const vf::util::MutexLock lock(mu_);
    down_ = true;
  }
  cv_.notify_all();
}

std::size_t RequestQueue::depth() const {
  const vf::util::MutexLock lock(mu_);
  return q_.size();
}

}  // namespace vf::serve
