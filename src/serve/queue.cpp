#include "vf/serve/queue.hpp"

#include <utility>

#include "vf/obs/obs.hpp"

namespace vf::serve {

RequestQueue::RequestQueue(std::size_t max_pending)
    : max_pending_(max_pending == 0 ? 1 : max_pending) {}

Admission RequestQueue::push(PointRequest& req) {
  {
    const vf::util::MutexLock lock(mu_);
    if (down_) return Admission::ShuttingDown;
    if (q_.size() >= max_pending_) {
      VF_OBS_COUNT("serve.queue.shed", 1);
      return Admission::QueueFull;
    }
    req.enqueued = std::chrono::steady_clock::now();
    q_.push_back(std::move(req));
    VF_OBS_GAUGE("serve.queue.depth", static_cast<std::int64_t>(q_.size()));
  }
  // Wake every waiter: a worker parked on a deadline wait for key A must
  // also notice a fresh key-B head that a second idle worker could miss.
  cv_.notify_all();
  return Admission::Accepted;
}

std::size_t RequestQueue::claim_locked(const std::string& key,
                                       std::vector<PointRequest>& out,
                                       std::size_t max_points,
                                       std::size_t claimed) {
  for (auto it = q_.begin(); it != q_.end() && claimed < max_points;) {
    if (it->key == key) {
      claimed += it->points.size();
      out.push_back(std::move(*it));
      it = q_.erase(it);
    } else {
      ++it;
    }
  }
  return claimed;
}

bool RequestQueue::pop_batch(std::vector<PointRequest>& out,
                             std::size_t max_points,
                             std::chrono::microseconds max_delay) {
  out.clear();
  if (max_points == 0) max_points = 1;
  const vf::util::MutexLock lock(mu_);
  cv_.wait(mu_, [&]() VF_REQUIRES(mu_) { return down_ || !q_.empty(); });
  if (q_.empty()) return false;  // shutdown with a drained backlog

  const std::string key = q_.front().key;
  const auto deadline = q_.front().enqueued + max_delay;
  std::size_t claimed = claim_locked(key, out, max_points, 0);

  // Coalescing window: park until the head's deadline for more same-key
  // arrivals (each push notifies). A size-flush ends the wait early;
  // shutdown flushes whatever has been claimed.
  while (claimed < max_points && !down_) {
    if (cv_.wait_until(mu_, deadline) == std::cv_status::timeout) break;
    claimed = claim_locked(key, out, max_points, claimed);
  }
  claimed = claim_locked(key, out, max_points, claimed);
  VF_OBS_GAUGE("serve.queue.depth", static_cast<std::int64_t>(q_.size()));
  return true;
}

void RequestQueue::shutdown() {
  {
    const vf::util::MutexLock lock(mu_);
    down_ = true;
  }
  cv_.notify_all();
}

std::size_t RequestQueue::depth() const {
  const vf::util::MutexLock lock(mu_);
  return q_.size();
}

}  // namespace vf::serve
