#include "vf/serve/registry.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "vf/core/features.hpp"
#include "vf/obs/obs.hpp"
#include "vf/util/atomic_io.hpp"

namespace vf::serve {

const char* breaker_state_name(BreakerState s) {
  switch (s) {
    case BreakerState::Closed:
      return "closed";
    case BreakerState::Open:
      return "open";
    case BreakerState::HalfOpen:
      return "half_open";
  }
  return "closed";
}

std::uint64_t derive_shard_salt(std::uint64_t seed, std::size_t shard_id) {
  // splitmix64: a full-avalanche mix keeps salts for adjacent shard ids
  // statistically independent even for seed = 0.
  std::uint64_t x = seed + 0x9e3779b97f4a7c15ULL * (shard_id + 1);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x == 0 ? 1 : x;  // 0 means "unsalted"; never derive it
}

ModelRegistry::ModelRegistry(RegistryOptions options) : options_(options) {
  if (options_.max_models == 0) options_.max_models = 1;
  if (options_.breaker_backoff <= std::chrono::milliseconds::zero()) {
    options_.breaker_backoff = std::chrono::milliseconds(1);
  }
  if (options_.breaker_backoff_max < options_.breaker_backoff) {
    options_.breaker_backoff_max = options_.breaker_backoff;
  }
  if (options_.load_retry.attempts < 1) options_.load_retry.attempts = 1;
  if (options_.shard_salt != 0) {
    if (options_.load_retry.jitter_seed == 0) {
      options_.load_retry.jitter_seed = options_.shard_salt;
    }
    breaker_rng_.emplace(options_.shard_salt, /*stream=*/0x62726b7277696eULL);
  }
}

void ModelRegistry::add(const std::string& key, const std::string& path) {
  const vf::util::MutexLock lock(mu_);
  auto [it, inserted] = entries_.try_emplace(key);
  Entry& e = it->second;
  if (!inserted) {
    // Invalidate everything tied to the old registration: drop the
    // resident model, orphan any in-flight load (bumping the generation
    // makes its completion discard the stale result instead of installing
    // a model from the old path), and let new resolvers load fresh.
    if (e.model) {
      lru_.erase(e.lru);
      stats_.resident_bytes -= e.bytes;
      --stats_.resident_models;
      e.model.reset();
      e.bytes = 0;
    }
    e.loading = {};
    ++e.generation;
    ++stats_.swaps;
    VF_OBS_COUNT("serve.registry.pipeline_swaps_total", 1);
    // A fresh registration is a fresh fault domain: give the new file a
    // clean breaker instead of inheriting the old path's failure streak.
    e.breaker = BreakerState::Closed;
    e.consecutive_failures = 0;
    e.backoff = std::chrono::milliseconds(0);
    e.open_for = std::chrono::milliseconds(0);
  }
  e.path = path;
}

bool ModelRegistry::contains(const std::string& key) const {
  const vf::util::MutexLock lock(mu_);
  return entries_.count(key) > 0;
}

void ModelRegistry::evict_over_budget_locked() {
  const bool bounded = options_.max_bytes > 0;
  while (stats_.resident_models > 1 &&
         (stats_.resident_models > options_.max_models ||
          (bounded && stats_.resident_bytes > options_.max_bytes))) {
    const std::string victim = lru_.back();
    lru_.pop_back();
    Entry& e = entries_.at(victim);
    stats_.resident_bytes -= e.bytes;
    --stats_.resident_models;
    ++stats_.evictions;
    VF_OBS_COUNT("serve.registry.evictions", 1);
    // In-flight shared_ptr holders keep the storage alive; the registry
    // merely forgets it. The path stays registered for reload.
    e.model.reset();
    e.bytes = 0;
  }
  VF_OBS_GAUGE("serve.registry.resident_bytes",
               static_cast<std::int64_t>(stats_.resident_bytes));
  VF_OBS_GAUGE("serve.registry.resident_models",
               static_cast<std::int64_t>(stats_.resident_models));
}

void ModelRegistry::record_load_failure_locked(const std::string& key,
                                               Entry& e) {
  ++stats_.load_failures;
  if (options_.breaker_threshold == 0) return;  // breaker disabled
  ++e.consecutive_failures;
  if (e.consecutive_failures < options_.breaker_threshold) return;
  // Trip (or re-trip after a failed half-open probe) with exponential
  // backoff on the open window.
  e.backoff = (e.backoff == std::chrono::milliseconds(0))
                  ? options_.breaker_backoff
                  : std::min(e.backoff * 2, options_.breaker_backoff_max);
  // The armed window is the ladder value, jittered into [backoff/2,
  // backoff] under a shard salt so co-located shards tripped by one
  // shared-disk fault probe back spread out instead of in lockstep. The
  // ladder itself stays exact — doubling state is shared fleet-wide
  // semantics; only the sleep is per-shard.
  e.open_for = e.backoff;
  if (breaker_rng_.has_value()) {
    e.open_for = std::chrono::milliseconds(vf::util::detail::jittered_delay_ms(
        static_cast<int>(e.backoff.count()), &*breaker_rng_));
  }
  e.open_until = std::chrono::steady_clock::now() + e.open_for;
  e.breaker = BreakerState::Open;
  ++stats_.breaker_opens;
  VF_OBS_COUNT("serve.registry.breaker_opens", 1);
  VF_OBS_GAUGE("serve.registry.open_breakers",
               static_cast<std::int64_t>(std::count_if(
                   entries_.begin(), entries_.end(), [](const auto& kv) {
                     return kv.second.breaker != BreakerState::Closed;
                   })));
  (void)key;
}

std::shared_ptr<const vf::core::FcnnModel> ModelRegistry::resolve(
    const std::string& key) {
  VF_OBS_SPAN("serve/resolve_model");
  std::shared_future<ModelPtr> pending;
  std::promise<ModelPtr> mine;
  std::string path;
  std::uint64_t generation = 0;
  {
    const vf::util::MutexLock lock(mu_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      throw std::invalid_argument("ModelRegistry: unknown key '" + key + "'");
    }
    Entry& e = it->second;
    if (e.model) {  // resident: bump LRU and return
      ++stats_.hits;
      lru_.splice(lru_.begin(), lru_, e.lru);
      return e.model;
    }
    if (e.breaker != BreakerState::Closed) {
      // Open, or half-open with a probe already chosen: fast-fail without
      // touching disk. Only when the open window has elapsed and no probe
      // is in flight does this resolve become the probe.
      const auto now = std::chrono::steady_clock::now();
      const bool probe_slot_free = !e.loading.valid();
      if (e.breaker == BreakerState::Open && now >= e.open_until &&
          probe_slot_free) {
        e.breaker = BreakerState::HalfOpen;  // this thread probes below
      } else {
        ++stats_.breaker_fast_fails;
        VF_OBS_COUNT("serve.registry.breaker_fast_fails", 1);
        throw CircuitOpenError(key);
      }
    }
    if (e.loading.valid()) {  // someone else is loading: share their result
      pending = e.loading;
    } else {  // cold (or half-open probe): this thread loads outside the lock
      e.loading = mine.get_future().share();
      path = e.path;
      generation = e.generation;
    }
  }
  if (pending.valid()) {
    return pending.get();  // rethrows the loader's failure, if any
  }

  ModelPtr loaded;
  try {
    // Only the disk read retries (transient NFS hiccups, injected
    // model_read faults); a file that loads but fails validation below is
    // permanently bad and never worth a second read. attempts = 1 — the
    // default — is byte-for-byte the old single-try path.
    loaded = std::make_shared<const vf::core::FcnnModel>(
        options_.load_retry.attempts > 1
            ? vf::util::with_retries(
                  options_.load_retry,
                  [&path] { return vf::core::FcnnModel::load(path); })
            : vf::core::FcnnModel::load(path));
    // A loadable file whose normaliser shapes don't match the feature
    // pipeline would only blow up later, inside a worker's inference —
    // reject it here so callers degrade exactly as for a corrupt file.
    if (loaded->in_norm.mean.size() !=
            static_cast<std::size_t>(vf::core::kFeatureDim) ||
        loaded->out_norm.mean.empty() || loaded->out_norm.stddev.empty()) {
      throw std::runtime_error(
          "ModelRegistry: model '" + path + "' is incompatible with the " +
          std::to_string(vf::core::kFeatureDim) + "-dim feature pipeline");
    }
  } catch (...) {
    {
      const vf::util::MutexLock lock(mu_);
      auto it = entries_.find(key);
      // Only clear our own load; add() may have re-registered the key
      // (and a newer load may own e.loading now). A failure against a
      // superseded registration also doesn't count against the new
      // file's breaker.
      if (it != entries_.end() && it->second.generation == generation) {
        it->second.loading = {};
        record_load_failure_locked(key, it->second);
      } else {
        ++stats_.load_failures;
      }
    }
    // vf-lint: allow(unbounded-wait) single-flight handoff, not a request reply
    mine.set_exception(std::current_exception());
    throw;
  }

  {
    const vf::util::MutexLock lock(mu_);
    auto it = entries_.find(key);
    // Skip installation when add() re-registered the key mid-load: this
    // result came from the superseded path and must not be served as the
    // new registration's model. Our direct waiters still get it below.
    if (it != entries_.end() && it->second.generation == generation) {
      Entry& e = it->second;
      e.model = loaded;
      e.bytes = loaded->memory_bytes();
      lru_.push_front(key);
      e.lru = lru_.begin();
      e.loading = {};
      ++stats_.loads;
      stats_.resident_bytes += e.bytes;
      ++stats_.resident_models;
      VF_OBS_COUNT("serve.registry.loads", 1);
      // A successful load (including a half-open probe) heals the breaker.
      e.breaker = BreakerState::Closed;
      e.consecutive_failures = 0;
      e.backoff = std::chrono::milliseconds(0);
      e.open_for = std::chrono::milliseconds(0);
      VF_OBS_GAUGE("serve.registry.open_breakers",
                   static_cast<std::int64_t>(std::count_if(
                       entries_.begin(), entries_.end(), [](const auto& kv) {
                         return kv.second.breaker != BreakerState::Closed;
                       })));
      evict_over_budget_locked();
    } else if (it != entries_.end()) {
      // The load raced a hot-swap and lost; count it so the chaos harness
      // can assert swap liveness (superseded loads must never install).
      ++stats_.superseded_loads;
      VF_OBS_COUNT("serve.registry.pipeline_swap_superseded_loads", 1);
    }
  }
  // vf-lint: allow(unbounded-wait) single-flight handoff, not a request reply
  mine.set_value(loaded);
  return loaded;
}

RegistryStats ModelRegistry::stats() const {
  const vf::util::MutexLock lock(mu_);
  RegistryStats s = stats_;
  for (const auto& [key, e] : entries_) {
    (void)key;
    if (e.breaker != BreakerState::Closed) ++s.open_breakers;
  }
  return s;
}

BreakerSnapshot ModelRegistry::breaker(const std::string& key) const {
  const vf::util::MutexLock lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    throw std::invalid_argument("ModelRegistry: unknown key '" + key + "'");
  }
  BreakerSnapshot snap;
  snap.state = it->second.breaker;
  snap.consecutive_failures = it->second.consecutive_failures;
  snap.backoff = it->second.backoff;
  snap.open_for = it->second.open_for;
  return snap;
}

std::vector<std::pair<std::string, BreakerSnapshot>>
ModelRegistry::breaker_states() const {
  const vf::util::MutexLock lock(mu_);
  std::vector<std::pair<std::string, BreakerSnapshot>> out;
  out.reserve(entries_.size());
  for (const auto& [key, e] : entries_) {
    BreakerSnapshot snap;
    snap.state = e.breaker;
    snap.consecutive_failures = e.consecutive_failures;
    snap.backoff = e.backoff;
    snap.open_for = e.open_for;
    out.emplace_back(key, snap);
  }
  return out;
}

}  // namespace vf::serve
