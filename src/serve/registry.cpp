#include "vf/serve/registry.hpp"

#include <stdexcept>
#include <utility>

#include "vf/obs/obs.hpp"

namespace vf::serve {

ModelRegistry::ModelRegistry(RegistryOptions options) : options_(options) {
  if (options_.max_models == 0) options_.max_models = 1;
}

void ModelRegistry::add(const std::string& key, const std::string& path) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = entries_.try_emplace(key);
  Entry& e = it->second;
  if (!inserted && e.model) {
    // Drop the resident model: the path (and thus the bytes) may differ.
    lru_.erase(e.lru);
    stats_.resident_bytes -= e.bytes;
    --stats_.resident_models;
    e.model.reset();
    e.bytes = 0;
  }
  e.path = path;
}

bool ModelRegistry::contains(const std::string& key) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return entries_.count(key) > 0;
}

void ModelRegistry::evict_over_budget_locked() {
  const bool bounded = options_.max_bytes > 0;
  while (stats_.resident_models > 1 &&
         (stats_.resident_models > options_.max_models ||
          (bounded && stats_.resident_bytes > options_.max_bytes))) {
    const std::string victim = lru_.back();
    lru_.pop_back();
    Entry& e = entries_.at(victim);
    stats_.resident_bytes -= e.bytes;
    --stats_.resident_models;
    ++stats_.evictions;
    VF_OBS_COUNT("serve.registry.evictions", 1);
    // In-flight shared_ptr holders keep the storage alive; the registry
    // merely forgets it. The path stays registered for reload.
    e.model.reset();
    e.bytes = 0;
  }
  VF_OBS_GAUGE("serve.registry.resident_bytes",
               static_cast<std::int64_t>(stats_.resident_bytes));
  VF_OBS_GAUGE("serve.registry.resident_models",
               static_cast<std::int64_t>(stats_.resident_models));
}

std::shared_ptr<const vf::core::FcnnModel> ModelRegistry::resolve(
    const std::string& key) {
  VF_OBS_SPAN("serve/resolve_model");
  std::shared_future<ModelPtr> pending;
  std::promise<ModelPtr> mine;
  std::string path;
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      throw std::invalid_argument("ModelRegistry: unknown key '" + key + "'");
    }
    Entry& e = it->second;
    if (e.model) {  // resident: bump LRU and return
      ++stats_.hits;
      lru_.splice(lru_.begin(), lru_, e.lru);
      return e.model;
    }
    if (e.loading.valid()) {  // someone else is loading: share their result
      pending = e.loading;
    } else {  // cold: this thread loads outside the lock
      e.loading = mine.get_future().share();
      path = e.path;
    }
  }
  if (pending.valid()) {
    return pending.get();  // rethrows the loader's failure, if any
  }

  ModelPtr loaded;
  try {
    loaded = std::make_shared<const vf::core::FcnnModel>(
        vf::core::FcnnModel::load(path));
  } catch (...) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      auto it = entries_.find(key);
      if (it != entries_.end()) it->second.loading = {};
      ++stats_.load_failures;
    }
    mine.set_exception(std::current_exception());
    throw;
  }

  {
    const std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      Entry& e = it->second;
      e.model = loaded;
      e.bytes = loaded->memory_bytes();
      lru_.push_front(key);
      e.lru = lru_.begin();
      e.loading = {};
      ++stats_.loads;
      stats_.resident_bytes += e.bytes;
      ++stats_.resident_models;
      VF_OBS_COUNT("serve.registry.loads", 1);
      evict_over_budget_locked();
    }
  }
  mine.set_value(loaded);
  return loaded;
}

RegistryStats ModelRegistry::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace vf::serve
