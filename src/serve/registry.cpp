#include "vf/serve/registry.hpp"

#include <stdexcept>
#include <string>
#include <utility>

#include "vf/core/features.hpp"
#include "vf/obs/obs.hpp"

namespace vf::serve {

ModelRegistry::ModelRegistry(RegistryOptions options) : options_(options) {
  if (options_.max_models == 0) options_.max_models = 1;
}

void ModelRegistry::add(const std::string& key, const std::string& path) {
  const vf::util::MutexLock lock(mu_);
  auto [it, inserted] = entries_.try_emplace(key);
  Entry& e = it->second;
  if (!inserted) {
    // Invalidate everything tied to the old registration: drop the
    // resident model, orphan any in-flight load (bumping the generation
    // makes its completion discard the stale result instead of installing
    // a model from the old path), and let new resolvers load fresh.
    if (e.model) {
      lru_.erase(e.lru);
      stats_.resident_bytes -= e.bytes;
      --stats_.resident_models;
      e.model.reset();
      e.bytes = 0;
    }
    e.loading = {};
    ++e.generation;
  }
  e.path = path;
}

bool ModelRegistry::contains(const std::string& key) const {
  const vf::util::MutexLock lock(mu_);
  return entries_.count(key) > 0;
}

void ModelRegistry::evict_over_budget_locked() {
  const bool bounded = options_.max_bytes > 0;
  while (stats_.resident_models > 1 &&
         (stats_.resident_models > options_.max_models ||
          (bounded && stats_.resident_bytes > options_.max_bytes))) {
    const std::string victim = lru_.back();
    lru_.pop_back();
    Entry& e = entries_.at(victim);
    stats_.resident_bytes -= e.bytes;
    --stats_.resident_models;
    ++stats_.evictions;
    VF_OBS_COUNT("serve.registry.evictions", 1);
    // In-flight shared_ptr holders keep the storage alive; the registry
    // merely forgets it. The path stays registered for reload.
    e.model.reset();
    e.bytes = 0;
  }
  VF_OBS_GAUGE("serve.registry.resident_bytes",
               static_cast<std::int64_t>(stats_.resident_bytes));
  VF_OBS_GAUGE("serve.registry.resident_models",
               static_cast<std::int64_t>(stats_.resident_models));
}

std::shared_ptr<const vf::core::FcnnModel> ModelRegistry::resolve(
    const std::string& key) {
  VF_OBS_SPAN("serve/resolve_model");
  std::shared_future<ModelPtr> pending;
  std::promise<ModelPtr> mine;
  std::string path;
  std::uint64_t generation = 0;
  {
    const vf::util::MutexLock lock(mu_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      throw std::invalid_argument("ModelRegistry: unknown key '" + key + "'");
    }
    Entry& e = it->second;
    if (e.model) {  // resident: bump LRU and return
      ++stats_.hits;
      lru_.splice(lru_.begin(), lru_, e.lru);
      return e.model;
    }
    if (e.loading.valid()) {  // someone else is loading: share their result
      pending = e.loading;
    } else {  // cold: this thread loads outside the lock
      e.loading = mine.get_future().share();
      path = e.path;
      generation = e.generation;
    }
  }
  if (pending.valid()) {
    return pending.get();  // rethrows the loader's failure, if any
  }

  ModelPtr loaded;
  try {
    loaded = std::make_shared<const vf::core::FcnnModel>(
        vf::core::FcnnModel::load(path));
    // A loadable file whose normaliser shapes don't match the feature
    // pipeline would only blow up later, inside a worker's inference —
    // reject it here so callers degrade exactly as for a corrupt file.
    if (loaded->in_norm.mean.size() !=
            static_cast<std::size_t>(vf::core::kFeatureDim) ||
        loaded->out_norm.mean.empty() || loaded->out_norm.stddev.empty()) {
      throw std::runtime_error(
          "ModelRegistry: model '" + path + "' is incompatible with the " +
          std::to_string(vf::core::kFeatureDim) + "-dim feature pipeline");
    }
  } catch (...) {
    {
      const vf::util::MutexLock lock(mu_);
      auto it = entries_.find(key);
      // Only clear our own load; add() may have re-registered the key
      // (and a newer load may own e.loading now).
      if (it != entries_.end() && it->second.generation == generation) {
        it->second.loading = {};
      }
      ++stats_.load_failures;
    }
    mine.set_exception(std::current_exception());
    throw;
  }

  {
    const vf::util::MutexLock lock(mu_);
    auto it = entries_.find(key);
    // Skip installation when add() re-registered the key mid-load: this
    // result came from the superseded path and must not be served as the
    // new registration's model. Our direct waiters still get it below.
    if (it != entries_.end() && it->second.generation == generation) {
      Entry& e = it->second;
      e.model = loaded;
      e.bytes = loaded->memory_bytes();
      lru_.push_front(key);
      e.lru = lru_.begin();
      e.loading = {};
      ++stats_.loads;
      stats_.resident_bytes += e.bytes;
      ++stats_.resident_models;
      VF_OBS_COUNT("serve.registry.loads", 1);
      evict_over_budget_locked();
    }
  }
  mine.set_value(loaded);
  return loaded;
}

RegistryStats ModelRegistry::stats() const {
  const vf::util::MutexLock lock(mu_);
  return stats_;
}

}  // namespace vf::serve
