#pragma once
// Service — the embeddable concurrent reconstruction service (tentpole of
// the serving layer; see DESIGN.md §9).
//
//   clients ── submit() ──> RequestQueue ──> worker pool ──> promises
//                               │                 │
//                         admission control   ModelRegistry (LRU)
//                               │                 │
//                           shed (Overloaded)  vf::api::predict_points
//
// A session binds a sample cloud (scrubbed once, k-d tree built once) and
// a model key; clients then submit point queries against the session.
// Workers coalesce concurrent same-session requests into dynamic
// micro-batches that ride the fused Network::infer path — one feature
// extraction + one GEMM per batch instead of per request. Each worker
// pins its OpenMP ICV to one thread: parallelism comes from the worker
// pool (requests are many and small), not from data-parallel kernels, so
// the pool never oversubscribes the machine. A model-load failure (disk
// fault, VF_FAULT_MODEL_READ injection) degrades the affected batch to
// the classical Shepard estimator instead of failing the requests.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "vf/nn/quant.hpp"
#include "vf/sampling/sample_cloud.hpp"
#include "vf/serve/queue.hpp"
#include "vf/serve/registry.hpp"
#include "vf/spatial/neighbor_index.hpp"
#include "vf/util/mutex.hpp"
#include "vf/util/thread_annotations.hpp"

namespace vf::serve {

/// Thrown by the synchronous query() when admission control sheds the
/// request. submit() reports the same condition as std::nullopt so
/// closed-loop clients can back off without exception overhead.
struct OverloadedError : std::runtime_error {
  OverloadedError() : std::runtime_error("vf::serve: queue full, request shed") {}
};

struct ServiceOptions {
  /// Worker threads serving micro-batches.
  std::size_t workers = 2;
  /// Flush a micro-batch at this many query points...
  std::size_t batch_max_points = 512;
  /// ...or when the oldest member has waited this long.
  std::chrono::microseconds batch_deadline{200};
  /// Bounded backlog: pending requests beyond this are shed.
  std::size_t queue_max = 256;
  /// Neighbour count for classical estimates (repair + fallback).
  int repair_neighbors = 5;
  /// Inference precision for served batches. None runs the fp64 Network
  /// path; Fp32/Fp16/Int8 run the packed single-precision GEMM (each
  /// worker quantizes the resolved model once and caches it, keyed on the
  /// registry's model instance). Guarded by the SNR-regression suite.
  vf::nn::QuantPolicy quant = vf::nn::QuantPolicy::None;
  /// Session index kind. Auto resolves against batch_max_points — serve
  /// micro-batches are sparse probes, so Auto keeps the exact k-d tree
  /// for typical session sizes.
  vf::spatial::IndexKind index = vf::spatial::IndexKind::Auto;
  RegistryOptions registry;
};

/// Monotonic counters, snapshot via Service::stats().
struct ServiceStats {
  std::uint64_t accepted = 0;
  std::uint64_t shed = 0;
  std::uint64_t batches = 0;
  std::uint64_t served_points = 0;
  std::uint64_t degraded_points = 0;
  std::uint64_t fallback_batches = 0;  ///< batches served classically
  RegistryStats registry;
};

class Service {
 public:
  explicit Service(ServiceOptions options = {});
  ~Service();
  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Bind `cloud` under `key`: the cloud is scrubbed and indexed now
  /// (amortised across every later query), and `model_path` is registered
  /// with the model registry under the same key. Rebinding a key replaces
  /// the session for subsequent queries. Throws std::invalid_argument
  /// when fewer than kNeighbors usable samples survive scrubbing — a
  /// cloud too small for k-NN features must fail at bind time, not crash
  /// a worker on the first query.
  void add_session(const std::string& key,
                   const vf::sampling::SampleCloud& cloud,
                   const std::string& model_path);

  [[nodiscard]] bool has_session(const std::string& key) const;

  /// Asynchronous point query. Returns std::nullopt when the queue is
  /// full (backpressure) or the service is stopping; otherwise a future
  /// that resolves when a worker serves the containing micro-batch.
  /// Throws std::invalid_argument for unknown session keys.
  [[nodiscard]] std::optional<std::future<PointResponse>> submit(
      const std::string& key, std::vector<vf::field::Vec3> points);

  /// Synchronous convenience: submit + wait. Throws OverloadedError on
  /// shed.
  [[nodiscard]] PointResponse query(const std::string& key,
                                    std::vector<vf::field::Vec3> points);

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] std::size_t queue_depth() const { return queue_.depth(); }
  [[nodiscard]] const ServiceOptions& options() const { return options_; }

  /// Drain the backlog and join the workers (idempotent; the destructor
  /// calls it).
  void stop();

 private:
  struct Session {
    vf::sampling::SampleCloud cloud;  // scrubbed
    std::unique_ptr<vf::spatial::NeighborIndex> index;
    std::vector<double> values;
  };

  void worker_loop();
  void serve_batch(std::vector<PointRequest>& batch,
                   struct WorkerScratch& scratch);

  ServiceOptions options_;
  ModelRegistry registry_;
  RequestQueue queue_;

  mutable vf::util::Mutex sessions_mu_{"serve.sessions"};
  std::unordered_map<std::string, std::shared_ptr<const Session>> sessions_
      VF_GUARDED_BY(sessions_mu_);

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> served_points_{0};
  std::atomic<std::uint64_t> degraded_points_{0};
  std::atomic<std::uint64_t> fallback_batches_{0};

  std::vector<std::thread> workers_;
  vf::util::Mutex stop_mu_{"serve.stop"};
  bool stopped_ VF_GUARDED_BY(stop_mu_) = false;
};

}  // namespace vf::serve
