#pragma once
// Service — the embeddable concurrent reconstruction service (tentpole of
// the serving layer; see DESIGN.md §9, lifecycle in §12).
//
//   clients ── submit() ──> RequestQueue ──> worker pool ──> replies
//                               │                 │
//                         admission control   ModelRegistry (LRU + breaker)
//                               │                 │
//                           shed (Overloaded)  vf::api::predict_points
//
// A session binds a sample cloud (scrubbed once, k-d tree built once) and
// a model key; clients then submit point queries against the session.
// Workers coalesce concurrent same-session requests into dynamic
// micro-batches that ride the fused Network::infer path — one feature
// extraction + one GEMM per batch instead of per request. Each worker
// pins its OpenMP ICV to one thread: parallelism comes from the worker
// pool (requests are many and small), not from data-parallel kernels, so
// the pool never oversubscribes the machine. A model-load failure (disk
// fault, VF_FAULT_MODEL_READ injection, open circuit breaker) degrades
// the affected batch to the classical Shepard estimator instead of
// failing the requests.
//
// Request lifecycle guarantees (chaos-soak-tested, DESIGN.md §12): every
// accepted request gets exactly one terminal answer through its Reply —
// served, DeadlineExceeded (at submit, in the queue, or just before
// compute), Draining (drain-budget shed), or a failure exception; no
// promise is ever orphaned, including through stop()/drain() racing live
// producers.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "vf/nn/quant.hpp"
#include "vf/sampling/sample_cloud.hpp"
#include "vf/serve/queue.hpp"
#include "vf/serve/registry.hpp"
#include "vf/spatial/neighbor_index.hpp"
#include "vf/util/mutex.hpp"
#include "vf/util/thread_annotations.hpp"

namespace vf::serve {

/// Thrown by the synchronous query() when admission control sheds the
/// request. submit() reports the same condition as std::nullopt so
/// closed-loop clients can back off without exception overhead.
struct OverloadedError : std::runtime_error {
  OverloadedError() : std::runtime_error("vf::serve: queue full, request shed") {}
};

struct ServiceOptions {
  /// Worker threads serving micro-batches.
  std::size_t workers = 2;
  /// Flush a micro-batch at this many query points...
  std::size_t batch_max_points = 512;
  /// ...or when the oldest member has waited this long.
  std::chrono::microseconds batch_deadline{200};
  /// Bounded backlog: pending requests beyond this are shed.
  std::size_t queue_max = 256;
  /// Default per-request deadline applied by submit()/query() when the
  /// caller passes none (zero = requests never expire).
  std::chrono::milliseconds default_deadline{0};
  /// Neighbour count for classical estimates (repair + fallback).
  int repair_neighbors = 5;
  /// Inference precision for served batches. None runs the fp64 Network
  /// path; Fp32/Fp16/Int8 run the packed single-precision GEMM (each
  /// worker quantizes the resolved model once and caches it, keyed on the
  /// registry's model instance). Guarded by the SNR-regression suite.
  vf::nn::QuantPolicy quant = vf::nn::QuantPolicy::None;
  /// Session index kind. Auto resolves against batch_max_points — serve
  /// micro-batches are sparse probes, so Auto keeps the exact k-d tree
  /// for typical session sizes.
  vf::spatial::IndexKind index = vf::spatial::IndexKind::Auto;
  /// Identity of this instance inside a sharded tier (ShardRouter sets
  /// it). A nonzero shard_id with an unsalted registry derives a
  /// per-shard registry salt, so even hand-built co-located fleets get
  /// decorrelated retry jitter and breaker open windows (DESIGN.md §13).
  /// The 0 default is "not sharded": exact legacy behaviour.
  std::size_t shard_id = 0;
  RegistryOptions registry;
};

/// Monotonic counters, snapshot via Service::stats().
struct ServiceStats {
  std::uint64_t accepted = 0;
  std::uint64_t shed = 0;
  std::uint64_t batches = 0;
  std::uint64_t served_points = 0;
  std::uint64_t degraded_points = 0;
  std::uint64_t fallback_batches = 0;  ///< batches served classically
  std::uint64_t expired = 0;  ///< requests answered DeadlineExceeded
  std::uint64_t drain_rejects = 0;  ///< submits refused while draining
  RegistryStats registry;
};

class Service {
 public:
  /// "No deadline" sentinel for submit().
  static constexpr std::chrono::steady_clock::time_point kNoDeadline =
      std::chrono::steady_clock::time_point::max();

  explicit Service(ServiceOptions options = {});
  ~Service();
  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Bind `cloud` under `key`: the cloud is scrubbed and indexed now
  /// (amortised across every later query), and `model_path` is registered
  /// with the model registry under the same key. An *empty* model_path
  /// binds a classical session: queries are answered by the Shepard
  /// estimator directly (fallback:"classical"), no registry entry, no
  /// load path — the pipeline's degrade-to-classical state publishes
  /// exactly this. Rebinding a key replaces the session for subsequent
  /// queries. Throws std::invalid_argument when fewer than kNeighbors
  /// usable samples survive scrubbing — a cloud too small for k-NN
  /// features must fail at bind time, not crash a worker on the first
  /// query.
  void add_session(const std::string& key,
                   const vf::sampling::SampleCloud& cloud,
                   const std::string& model_path);

  [[nodiscard]] bool has_session(const std::string& key) const;

  /// Asynchronous point query with the service-default deadline. Returns
  /// std::nullopt when the queue is full (backpressure) or the service is
  /// draining/stopping; otherwise a future that resolves when a worker
  /// serves the containing micro-batch. Throws std::invalid_argument for
  /// unknown session keys.
  [[nodiscard]] std::optional<std::future<PointResponse>> submit(
      const std::string& key, std::vector<vf::field::Vec3> points);

  /// As above with an explicit absolute deadline (kNoDeadline = none). A
  /// deadline already in the past is answered DeadlineExceeded immediately
  /// — the returned future is resolved and the request never touches the
  /// queue, registry, or inference.
  [[nodiscard]] std::optional<std::future<PointResponse>> submit(
      const std::string& key, std::vector<vf::field::Vec3> points,
      std::chrono::steady_clock::time_point deadline);

  /// Synchronous convenience: submit + wait. Throws OverloadedError on
  /// shed.
  [[nodiscard]] PointResponse query(const std::string& key,
                                    std::vector<vf::field::Vec3> points);

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] std::size_t queue_depth() const { return queue_.depth(); }
  [[nodiscard]] const ServiceOptions& options() const { return options_; }
  /// Read-only registry access (breaker snapshots for the `ready` verb).
  [[nodiscard]] const ModelRegistry& registry() const { return registry_; }

  /// Close admission without stopping workers: subsequent submits return
  /// std::nullopt (counted as drain_rejects; the wire layer answers them
  /// `draining`) while the backlog keeps being served. Idempotent.
  void begin_drain() { draining_.store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool draining() const {
    return draining_.load(std::memory_order_relaxed);
  }

  /// Graceful shutdown: begin_drain, flush the backlog through the
  /// workers, and join them. Returns true when everything drained within
  /// `budget`; on budget exhaustion every still-queued request is answered
  /// Draining (never orphaned) before the workers are joined, and false is
  /// reported so the operator can see the budget was blown. Idempotent;
  /// concurrent callers may return before another caller's join completes.
  bool drain(std::chrono::milliseconds budget);

  /// drain() without a budget (blocks until workers exit; the destructor
  /// calls it).
  void stop();

 private:
  struct Session {
    vf::sampling::SampleCloud cloud;  // scrubbed
    std::unique_ptr<vf::spatial::NeighborIndex> index;
    std::vector<double> values;
    /// Classical session (empty model_path): never touches the registry;
    /// every query runs the Shepard path with fallback:"classical".
    bool classical = false;
  };

  void worker_loop();
  void serve_batch(std::vector<PointRequest>& batch,
                   struct WorkerScratch& scratch);
  bool drain_impl(bool bounded, std::chrono::milliseconds budget);

  ServiceOptions options_;
  ModelRegistry registry_;
  RequestQueue queue_;

  mutable vf::util::Mutex sessions_mu_{"serve.sessions"};
  std::unordered_map<std::string, std::shared_ptr<const Session>> sessions_
      VF_GUARDED_BY(sessions_mu_);

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> served_points_{0};
  std::atomic<std::uint64_t> degraded_points_{0};
  std::atomic<std::uint64_t> fallback_batches_{0};
  /// Submit-time + pre-compute expiries; queue-side expiries are counted
  /// by the queue itself (stats() sums both).
  std::atomic<std::uint64_t> expired_{0};
  std::atomic<std::uint64_t> drain_rejects_{0};
  std::atomic<bool> draining_{false};

  std::vector<std::thread> workers_;
  vf::util::Mutex stop_mu_{"serve.stop"};
  bool stopped_ VF_GUARDED_BY(stop_mu_) = false;
  /// Worker-exit signalling so drain() can wait with a budget instead of
  /// an unconditional join.
  mutable vf::util::Mutex workers_mu_{"serve.workers"};
  vf::util::CondVar workers_cv_;
  std::size_t live_workers_ VF_GUARDED_BY(workers_mu_) = 0;
};

}  // namespace vf::serve
