#pragma once
// Wire protocols for `vfctl serve`: line-delimited JSON (ndjson) and the
// compact VFW1 binary framing, negotiated per connection (see below).
//
// One request per line, one response line per request:
//   -> {"id": 7, "key": "t0", "points": [[0.1, 0.2, 0.3], [0.5, 0.5, 0.5]],
//       "deadline_ms": 250}
//   <- {"id": 7, "status": "ok", "code": 0, "values": [1.25, 0.98],
//       "degraded": 0, "batch": 128}
//   -> {"id": 8, "cmd": "stats"}
//   <- {"id": 8, "status": "ok", "code": 0, "stats": {...}}
//
// Error taxonomy (DESIGN.md §12): every response carries a `status` string
// and its stable machine-readable `code` int (the vf::serve::Status
// enumerator value — append-only, never renumbered):
//
//   status              code  meaning
//   ok                     0  served (inspect degraded/fallback for quality)
//   bad_request            1  malformed line or unserviceable request
//   overloaded             2  shed by admission control; retry with backoff
//   deadline_exceeded      3  expired before a worker could compute it
//   draining               4  server is shutting down; stop sending
//   internal               5  unexpected server-side failure
//
// `deadline_ms` is a per-request relative deadline (0/absent = the server
// default from --deadline-ms). The `health` and `ready` cmds report
// liveness and serving readiness (queue depth, registry residency, and
// per-model circuit-breaker state).
//
// The codec is a deliberately minimal hand-rolled parser for exactly this
// request shape (objects, arrays, numbers, strings — no external JSON
// dependency), shared by the stdin loop, the TCP handler, and the tests.
//
// VFW1 binary framing (DESIGN.md §13): small point queries are dominated
// by JSON parse/serialize cost, so the binary codec frames the same
// request/response shapes as length-prefixed, CRC-checked packets in the
// VFB2 idiom — float payloads travel as raw little-endian doubles moved
// with one bulk memcpy instead of being formatted and re-parsed per value.
//
//   offset  size  field
//   0       4     magic "VFW1"
//   4       4     u32 payload length (bounded by kBinaryMaxPayload)
//   8       n     payload (request or response record, layouts below)
//   8+n     4     u32 CRC-32 of the payload
//
// A connection's codec is sniffed from its first bytes (sniff_codec): a
// "VFW1" prefix selects binary, anything else falls back to ndjson, so
// mixed-codec clients can share one listener with zero configuration.
// Framing violations (bad magic, oversize length, CRC mismatch) are
// connection-fatal (`FrameStatus::Corrupt`); a well-framed but
// semantically invalid request is `FrameStatus::Bad` and answered
// bad_request like its ndjson twin, keeping the connection alive.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "vf/field/scalar_field.hpp"
#include "vf/serve/queue.hpp"
#include "vf/serve/registry.hpp"
#include "vf/serve/service.hpp"

namespace vf::serve::wire {

struct Request {
  std::int64_t id = 0;
  std::string key;  ///< session key; empty = the server's default session
  std::string cmd;  ///< "" (point query), "stats", "health", "ready", "shutdown"
  std::vector<vf::field::Vec3> points;
  /// Relative deadline in milliseconds; 0 = use the server default.
  double deadline_ms = 0;
};

/// Stable wire spelling of a Status ("ok", "deadline_exceeded", ...).
[[nodiscard]] const char* status_name(Status s);
/// Stable wire code int (the enumerator value).
[[nodiscard]] int status_code(Status s);
/// Inverse of status_name. Returns false for unknown spellings.
bool status_from_name(const std::string& name, Status& out);

/// Parse one protocol line. On failure returns false and fills `error`
/// (out may be partially filled; its id is kept when it parsed early
/// enough, so the bad_request response can still be correlated).
bool parse_request(const std::string& line, Request& out, std::string& error);

/// What the `ready` verb reports; filled by the server front-end so the
/// codec stays unit-testable without a live Service.
struct ReadyInfo {
  bool draining = false;
  std::size_t queue_depth = 0;
  std::size_t queue_max = 0;
  std::size_t resident_models = 0;
  std::size_t open_breakers = 0;
  /// Per-model breaker state, from ModelRegistry::breaker_states().
  std::vector<std::pair<std::string, BreakerSnapshot>> breakers;
  /// In-situ pipeline status (vfctl pipeline fills these; a plain serve
  /// front-end leaves has_pipeline false and the fields are omitted).
  bool has_pipeline = false;
  std::uint64_t pipeline_generation = 0;
  double pipeline_last_snr_db = 0.0;
};

/// Response lines (no trailing newline).
[[nodiscard]] std::string query_response(std::int64_t id,
                                         const PointResponse& resp);
[[nodiscard]] std::string stats_response(std::int64_t id,
                                         const ServiceStats& stats);
/// Bare terminal status (every non-ok answer; ok with a message is the
/// `health` liveness reply).
[[nodiscard]] std::string status_response(std::int64_t id, Status status,
                                          const std::string& message = "");
/// `ready` reply: ready = not draining (an open breaker keeps the server
/// ready — it serves classically — but is reported as "degraded": true
/// plus the per-model breaker list so operators can see why).
[[nodiscard]] std::string ready_response(std::int64_t id,
                                         const ReadyInfo& info);

// ---------------------------------------------------------------------------
// VFW1 binary codec (frame layout in the module comment).

inline constexpr char kBinaryMagic[4] = {'V', 'F', 'W', '1'};
/// Upper bound on one frame's payload; a corrupt length field is rejected
/// before any allocation (the ByteReader discipline from atomic_io).
inline constexpr std::size_t kBinaryMaxPayload = std::size_t{1} << 26;

/// Request verbs on the binary wire — the u8 twin of Request::cmd.
/// Append-only like Status; never renumber.
enum class Verb : std::uint8_t {
  Query = 0,
  Stats = 1,
  Health = 2,
  Ready = 3,
  Shutdown = 4,
};

/// Request::cmd spelling of a Verb ("" for Query).
[[nodiscard]] const char* verb_cmd(Verb v);
/// Inverse of verb_cmd. False for unknown spellings.
bool verb_from_cmd(const std::string& cmd, Verb& out);

/// Codec-neutral outcome of one request: the server front-end produces
/// one of these and the connection's codec renders it (render_json or
/// encode_response_frame), so handler logic is written once.
struct Response {
  std::int64_t id = 0;
  Verb verb = Verb::Query;
  Status status = Status::Ok;
  std::vector<double> values;           ///< query results (Ok queries only)
  std::uint32_t degraded = 0;
  std::uint32_t batch_points = 0;
  bool fallback_classical = false;
  std::string message;    ///< error / health text
  std::string json_body;  ///< prerendered stats/ready line (both codecs)
};

/// Lift a served PointResponse into the codec-neutral form.
[[nodiscard]] Response make_query_response(std::int64_t id,
                                           const PointResponse& resp);
/// Bare terminal status (the shape of every non-ok answer).
[[nodiscard]] Response make_status_response(std::int64_t id, Verb verb,
                                            Status status,
                                            const std::string& message = "");

/// Render as the ndjson response line (no trailing newline). Stats/ready
/// responses pass json_body through verbatim.
[[nodiscard]] std::string render_json(const Response& resp);

enum class CodecKind : std::uint8_t {
  Unknown,  ///< head is still a proper prefix of the magic; read more
  Ndjson,
  Binary,
};

/// Negotiate a connection's codec from its first bytes: "VFW1" selects
/// binary, any diverging byte decides ndjson, a short matching prefix
/// stays Unknown until more bytes arrive.
[[nodiscard]] CodecKind sniff_codec(std::string_view head);

enum class FrameStatus : std::uint8_t {
  Ok,        ///< one frame decoded; `consumed` bytes were used
  NeedMore,  ///< buffer holds a partial frame; read more and retry
  Bad,       ///< well-framed but invalid request: answer bad_request
  Corrupt,   ///< framing/CRC violation: drop the connection
};

/// Encode one request as a VFW1 frame. Throws std::invalid_argument for a
/// cmd with no Verb mapping.
[[nodiscard]] std::string encode_request_frame(const Request& req);

/// Decode one request frame from the head of `buf`. On Ok sets `consumed`
/// to the frame size (erase that many bytes); on Bad the frame is also
/// consumed, `error` explains, and out.id is preserved for correlation.
/// NeedMore/Corrupt consume nothing.
FrameStatus decode_request_frame(std::string_view buf, std::size_t& consumed,
                                 Request& out, std::string& error);

/// Encode one response as a VFW1 frame.
[[nodiscard]] std::string encode_response_frame(const Response& resp);

/// Decode one response frame (client side + round-trip tests). Same
/// contract as decode_request_frame, minus the Bad state.
FrameStatus decode_response_frame(std::string_view buf, std::size_t& consumed,
                                  Response& out, std::string& error);

}  // namespace vf::serve::wire
