#pragma once
// Line-delimited JSON wire protocol for `vfctl serve`.
//
// One request per line, one response line per request:
//   -> {"id": 7, "key": "t0", "points": [[0.1, 0.2, 0.3], [0.5, 0.5, 0.5]]}
//   <- {"id": 7, "status": "ok", "values": [1.25, 0.98], "degraded": 0,
//       "batch": 128}
//   -> {"id": 8, "cmd": "stats"}
//   <- {"id": 8, "status": "ok", "stats": {...}}
// Shed requests answer {"id": n, "status": "overloaded"}; malformed input
// answers {"id": n, "status": "error", "message": "..."}.
//
// The codec is a deliberately minimal hand-rolled parser for exactly this
// request shape (objects, arrays, numbers, strings — no external JSON
// dependency), shared by the stdin loop, the TCP handler, and the tests.

#include <cstdint>
#include <string>
#include <vector>

#include "vf/field/scalar_field.hpp"
#include "vf/serve/queue.hpp"
#include "vf/serve/service.hpp"

namespace vf::serve::wire {

struct Request {
  std::int64_t id = 0;
  std::string key;  ///< session key; empty = the server's default session
  std::string cmd;  ///< "" (point query), "stats", or "shutdown"
  std::vector<vf::field::Vec3> points;
};

/// Parse one protocol line. On failure returns false and fills `error`
/// (out may be partially filled; its id is kept when it parsed early
/// enough, so the error response can still be correlated).
bool parse_request(const std::string& line, Request& out, std::string& error);

/// Response lines (no trailing newline).
[[nodiscard]] std::string ok_response(std::int64_t id,
                                      const PointResponse& resp);
[[nodiscard]] std::string stats_response(std::int64_t id,
                                         const ServiceStats& stats);
[[nodiscard]] std::string status_response(std::int64_t id,
                                          const std::string& status,
                                          const std::string& message = "");

}  // namespace vf::serve::wire
