#pragma once
// Line-delimited JSON wire protocol for `vfctl serve`.
//
// One request per line, one response line per request:
//   -> {"id": 7, "key": "t0", "points": [[0.1, 0.2, 0.3], [0.5, 0.5, 0.5]],
//       "deadline_ms": 250}
//   <- {"id": 7, "status": "ok", "code": 0, "values": [1.25, 0.98],
//       "degraded": 0, "batch": 128}
//   -> {"id": 8, "cmd": "stats"}
//   <- {"id": 8, "status": "ok", "code": 0, "stats": {...}}
//
// Error taxonomy (DESIGN.md §12): every response carries a `status` string
// and its stable machine-readable `code` int (the vf::serve::Status
// enumerator value — append-only, never renumbered):
//
//   status              code  meaning
//   ok                     0  served (inspect degraded/fallback for quality)
//   bad_request            1  malformed line or unserviceable request
//   overloaded             2  shed by admission control; retry with backoff
//   deadline_exceeded      3  expired before a worker could compute it
//   draining               4  server is shutting down; stop sending
//   internal               5  unexpected server-side failure
//
// `deadline_ms` is a per-request relative deadline (0/absent = the server
// default from --deadline-ms). The `health` and `ready` cmds report
// liveness and serving readiness (queue depth, registry residency, and
// per-model circuit-breaker state).
//
// The codec is a deliberately minimal hand-rolled parser for exactly this
// request shape (objects, arrays, numbers, strings — no external JSON
// dependency), shared by the stdin loop, the TCP handler, and the tests.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "vf/field/scalar_field.hpp"
#include "vf/serve/queue.hpp"
#include "vf/serve/registry.hpp"
#include "vf/serve/service.hpp"

namespace vf::serve::wire {

struct Request {
  std::int64_t id = 0;
  std::string key;  ///< session key; empty = the server's default session
  std::string cmd;  ///< "" (point query), "stats", "health", "ready", "shutdown"
  std::vector<vf::field::Vec3> points;
  /// Relative deadline in milliseconds; 0 = use the server default.
  double deadline_ms = 0;
};

/// Stable wire spelling of a Status ("ok", "deadline_exceeded", ...).
[[nodiscard]] const char* status_name(Status s);
/// Stable wire code int (the enumerator value).
[[nodiscard]] int status_code(Status s);
/// Inverse of status_name. Returns false for unknown spellings.
bool status_from_name(const std::string& name, Status& out);

/// Parse one protocol line. On failure returns false and fills `error`
/// (out may be partially filled; its id is kept when it parsed early
/// enough, so the bad_request response can still be correlated).
bool parse_request(const std::string& line, Request& out, std::string& error);

/// What the `ready` verb reports; filled by the server front-end so the
/// codec stays unit-testable without a live Service.
struct ReadyInfo {
  bool draining = false;
  std::size_t queue_depth = 0;
  std::size_t queue_max = 0;
  std::size_t resident_models = 0;
  std::size_t open_breakers = 0;
  /// Per-model breaker state, from ModelRegistry::breaker_states().
  std::vector<std::pair<std::string, BreakerSnapshot>> breakers;
};

/// Response lines (no trailing newline).
[[nodiscard]] std::string query_response(std::int64_t id,
                                         const PointResponse& resp);
[[nodiscard]] std::string stats_response(std::int64_t id,
                                         const ServiceStats& stats);
/// Bare terminal status (every non-ok answer; ok with a message is the
/// `health` liveness reply).
[[nodiscard]] std::string status_response(std::int64_t id, Status status,
                                          const std::string& message = "");
/// `ready` reply: ready = not draining (an open breaker keeps the server
/// ready — it serves classically — but is reported as "degraded": true
/// plus the per-model breaker list so operators can see why).
[[nodiscard]] std::string ready_response(std::int64_t id,
                                         const ReadyInfo& info);

}  // namespace vf::serve::wire
