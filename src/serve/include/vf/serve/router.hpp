#pragma once
// ShardRouter — consistent-hash front-end over N Service shards (the
// scale-out tier; see DESIGN.md §13).
//
//   clients ── submit(key, …) ──> HashRing ──> shard 0  (Service)
//                                    │    └──> shard 1  (Service)
//                              health/drain └> shard …  (Service)
//
// Each shard is a full Service — its own ModelRegistry, RequestQueue, and
// worker pool — so shards share no locks, no breaker state, and no LRU:
// one slow disk or tripped breaker degrades one shard, not the tier. A
// (session, timestep) key maps to its home shard through a consistent
// hash ring with virtual nodes, so adding or removing a shard remaps only
// ~1/N of the key space (bounded-remap property, unit-tested) instead of
// reshuffling every resident model.
//
// Routing is health-aware: a draining shard (the `ready` verb's notion —
// Service::draining()) or one an operator marked unhealthy is skipped and
// the request walks clockwise to the next healthy shard. Sessions follow
// a *versioned manifest*: add_session records (cloud, model path, version)
// centrally and applies it eagerly to the home shard; when a request is
// re-routed, the failover shard converges lazily — the router compares
// the shard's applied version against the manifest and re-binds before
// delegating, so replica registries converge after re-registration
// instead of serving a superseded model.
//
// Per-shard fault independence (DESIGN.md §13): the router derives a
// distinct `shard_salt` for every shard, which seeds both the registry's
// load-retry jitter and its breaker open-window jitter — co-located
// shards that all failed on a shared-disk fault fan back in spread out
// instead of retrying in lockstep.

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "vf/sampling/sample_cloud.hpp"
#include "vf/serve/service.hpp"
#include "vf/util/mutex.hpp"
#include "vf/util/thread_annotations.hpp"

namespace vf::serve {

/// Consistent-hash ring with virtual nodes. Pure data structure (no
/// services, no locks — the owner synchronises mutation), so the
/// bounded-remap and stability properties are unit-testable in isolation.
/// `vnodes` points per shard keep the per-shard key share within a few
/// percent of 1/N.
class HashRing {
 public:
  explicit HashRing(std::size_t vnodes = 64,
                    std::uint64_t seed = 0x76666c6c72696e67ULL);

  void add_shard(std::uint32_t shard);
  void remove_shard(std::uint32_t shard);
  [[nodiscard]] bool empty() const { return ring_.empty(); }

  /// Home shard for `key` (first ring point clockwise of the key's hash).
  /// Precondition: !empty().
  [[nodiscard]] std::uint32_t owner(const std::string& key) const;

  /// Clockwise walk from `key`'s position: every distinct shard in
  /// failover order, starting with the home shard. Used by the router to
  /// skip draining/unhealthy shards without re-hashing.
  [[nodiscard]] std::vector<std::uint32_t> walk(const std::string& key) const;

 private:
  [[nodiscard]] std::uint64_t key_hash(const std::string& key) const;

  std::size_t vnodes_;
  std::uint64_t seed_;
  /// Sorted (point, shard) pairs; lookup is an upper_bound + wrap.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> ring_;
};

struct RouterOptions {
  /// Shard count; each shard is a full Service built from `shard` below.
  std::size_t shards = 1;
  /// Virtual nodes per shard on the hash ring.
  std::size_t vnodes = 64;
  /// Ring seed (also the base of the per-shard salts).
  std::uint64_t seed = 0x76666c6c72696e67ULL;
  /// Template for every shard's Service. The router overrides shard_id
  /// and derives a per-shard registry shard_salt from `seed` (unless the
  /// template already set a nonzero salt).
  ServiceOptions shard;
};

/// Aggregated router counters, snapshot via ShardRouter::stats().
struct RouterStats {
  std::uint64_t routed = 0;    ///< submits delegated to a shard
  std::uint64_t rerouted = 0;  ///< served off the home shard (drain/health)
  std::uint64_t manifest_applies = 0;  ///< session binds pushed to shards
  std::uint64_t no_shard = 0;  ///< submits refused: no routable shard
  ServiceStats total;          ///< element-wise sum across shards
  std::vector<ServiceStats> shards;
};

class ShardRouter {
 public:
  explicit ShardRouter(RouterOptions options = {});
  ~ShardRouter();
  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Register `key` in the versioned manifest (bumping its version) and
  /// bind it eagerly on the home shard. Re-registering replaces the
  /// entry; shards holding the old binding converge on their next routed
  /// request. Throws std::invalid_argument as Service::add_session does.
  void add_session(const std::string& key,
                   const vf::sampling::SampleCloud& cloud,
                   const std::string& model_path);

  [[nodiscard]] bool has_session(const std::string& key) const;

  /// Route + delegate. Returns std::nullopt when every routable shard
  /// refused (all draining/unhealthy, or the chosen shard's queue is
  /// full). Throws std::invalid_argument for unmanifested keys.
  [[nodiscard]] std::optional<std::future<PointResponse>> submit(
      const std::string& key, std::vector<vf::field::Vec3> points);
  [[nodiscard]] std::optional<std::future<PointResponse>> submit(
      const std::string& key, std::vector<vf::field::Vec3> points,
      std::chrono::steady_clock::time_point deadline);

  /// Synchronous convenience: submit + wait (OverloadedError on refusal).
  [[nodiscard]] PointResponse query(const std::string& key,
                                    std::vector<vf::field::Vec3> points);

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  /// Home shard for `key` (ignores health — ring position only).
  [[nodiscard]] std::size_t shard_for(const std::string& key) const;
  /// Shard a submit for `key` would reach right now (health-aware);
  /// std::nullopt when no shard is routable.
  [[nodiscard]] std::optional<std::size_t> route(const std::string& key) const;

  /// Read-only access to one shard (stats, registry, ready snapshots).
  [[nodiscard]] const Service& shard(std::size_t i) const;

  /// Operator health override: an unhealthy shard is skipped by routing
  /// but keeps serving its backlog.
  void set_healthy(std::size_t i, bool healthy);
  [[nodiscard]] bool healthy(std::size_t i) const;

  /// Close admission on one shard (requests re-route to its neighbours).
  void begin_drain_shard(std::size_t i);
  /// Close admission everywhere.
  void begin_drain();
  /// True once every shard is draining (the tier-level `ready` signal).
  [[nodiscard]] bool draining() const;

  /// Graceful tier shutdown: drain every shard, splitting `budget` across
  /// them. True when every shard drained within its slice.
  bool drain(std::chrono::milliseconds budget);
  void stop();

  [[nodiscard]] RouterStats stats() const;
  [[nodiscard]] std::size_t queue_depth() const;
  [[nodiscard]] const RouterOptions& options() const { return options_; }

 private:
  struct ManifestEntry {
    vf::sampling::SampleCloud cloud;
    std::string model_path;
    std::uint64_t version = 0;
  };
  struct Shard {
    std::unique_ptr<Service> service;
    std::atomic<bool> healthy{true};
    /// Manifest version last applied per key, for lazy convergence.
    mutable vf::util::Mutex mu{"serve.router.shard"};
    std::unordered_map<std::string, std::uint64_t> applied VF_GUARDED_BY(mu);
  };

  [[nodiscard]] bool routable(const Shard& s) const {
    return s.healthy.load(std::memory_order_relaxed) &&
           !s.service->draining();
  }
  /// Bind `key` on shard `s` iff its applied version is stale.
  void converge_session(Shard& s,
                        const std::shared_ptr<const ManifestEntry>& entry,
                        const std::string& key);

  RouterOptions options_;
  HashRing ring_;
  std::vector<std::unique_ptr<Shard>> shards_;

  mutable vf::util::Mutex manifest_mu_{"serve.router.manifest"};
  std::unordered_map<std::string, std::shared_ptr<const ManifestEntry>>
      manifest_ VF_GUARDED_BY(manifest_mu_);
  std::uint64_t next_version_ VF_GUARDED_BY(manifest_mu_) = 0;

  std::atomic<std::uint64_t> routed_{0};
  std::atomic<std::uint64_t> rerouted_{0};
  std::atomic<std::uint64_t> manifest_applies_{0};
  std::atomic<std::uint64_t> no_shard_{0};
};

}  // namespace vf::serve
