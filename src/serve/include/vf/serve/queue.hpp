#pragma once
// RequestQueue — bounded MPMC queue with dynamic micro-batch extraction
// and per-request deadline enforcement.
//
// Producers (client threads) push point-query requests; admission control
// rejects pushes once `max_pending` requests are queued, so a saturated
// service sheds load with a backpressure signal instead of growing an
// unbounded backlog. Consumers (worker threads) pop *micro-batches*: a
// worker takes the oldest request, claims every queued request with the
// same session key, and — if the batch is still under `max_points` —
// briefly waits for more same-key arrivals until the head request's age
// reaches `max_delay` (deadline flush) or the batch fills (size flush).
// Claimed requests leave the deque immediately, so two workers can never
// serve the same request; requests for other keys stay queued for other
// workers.
//
// Request lifecycle (DESIGN.md §12): every request carries an absolute
// deadline (time_point::max() = none). Expired requests are answered
// `Status::DeadlineExceeded` by the queue itself — pop_batch sweeps the
// backlog before selecting a batch so a pile-up of dead requests can
// never starve live ones, and the coalescing window never holds a batch
// open past the earliest member's request deadline. All terminal answers
// flow through the answer-exactly-once `Reply` wrapper; the vf_lint
// `unbounded-wait` rule keeps stray promise fulfilment paths out of
// src/serve.

#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <string>
#include <vector>

#include "vf/field/scalar_field.hpp"
#include "vf/util/mutex.hpp"
#include "vf/util/thread_annotations.hpp"

namespace vf::serve {

/// Terminal request statuses. The enumerator values are the stable
/// machine-readable wire codes (`"code"` in every response line) — append
/// new statuses, never renumber. String forms live in vf/serve/wire.hpp.
enum class Status : std::uint8_t {
  Ok = 0,                ///< served (possibly degraded; see fallback)
  BadRequest = 1,        ///< malformed or unserviceable request
  Overloaded = 2,        ///< shed by admission control (backpressure)
  DeadlineExceeded = 3,  ///< expired before a worker could compute it
  Draining = 4,          ///< service is draining; admission closed
  Internal = 5,          ///< unexpected server-side failure
};

/// Outcome of one served request.
struct PointResponse {
  Status status = Status::Ok;
  std::vector<double> values;   ///< one per query point (empty unless Ok)
  std::size_t degraded = 0;     ///< points repaired / classically estimated
  std::size_t batch_points = 0; ///< size of the micro-batch that carried it
  /// Empty on the FCNN fast path; "classical" when the model could not be
  /// loaded and the whole batch fell back to the Shepard estimator.
  std::string fallback;
};

/// Answer-exactly-once wrapper around the request promise. Exactly one
/// terminal call (`fulfill` or `fail`) wins; later calls are no-ops that
/// return false. Requests are owned by one thread at a time (producer →
/// queue → worker), so a plain flag suffices — the wrapper exists to make
/// "every submitted request gets exactly one terminal answer" a local
/// invariant instead of a property of every serve-path branch. The
/// vf_lint `unbounded-wait` rule flags raw set_value/set_exception in
/// src/serve so new paths cannot bypass it.
class Reply {
 public:
  Reply() = default;

  [[nodiscard]] std::future<PointResponse> get_future() {
    return promise_.get_future();
  }

  /// Deliver a full response. Returns false (and does nothing) when the
  /// request already has its terminal answer.
  bool fulfill(PointResponse resp);

  /// Deliver a bare terminal status (no values) — the shape of every
  /// non-Ok answer.
  bool fulfill(Status status);

  /// Fail with an exception (the honest channel for defects).
  bool fail(std::exception_ptr err);

  [[nodiscard]] bool answered() const { return answered_; }

 private:
  std::promise<PointResponse> promise_;
  bool answered_ = false;
};

struct PointRequest {
  std::string key;  ///< session / model key (batching groups by this)
  std::vector<vf::field::Vec3> points;
  Reply reply;
  std::chrono::steady_clock::time_point enqueued;
  /// Absolute deadline; answered DeadlineExceeded instead of computed once
  /// passed. max() = no deadline.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();

  [[nodiscard]] bool expired(std::chrono::steady_clock::time_point now) const {
    return deadline <= now;
  }
};

enum class Admission {
  Accepted,
  QueueFull,      ///< backpressure: shed this request
  ShuttingDown,
};

class RequestQueue {
 public:
  explicit RequestQueue(std::size_t max_pending);

  /// Admission-controlled enqueue. QueueFull leaves `req` untouched so the
  /// caller still owns the reply and can report the shed.
  Admission push(PointRequest& req) VF_EXCLUDES(mu_);

  /// Blocking micro-batch pop per the module comment. Returns false only
  /// at shutdown with an empty queue; otherwise fills `out` with >= 1
  /// same-key live requests totalling <= max_points query points (a single
  /// oversized request is always taken whole). Expired backlog entries are
  /// answered DeadlineExceeded and skipped, and the coalescing window is
  /// clamped to the earliest claimed member's request deadline.
  bool pop_batch(std::vector<PointRequest>& out, std::size_t max_points,
                 std::chrono::microseconds max_delay) VF_EXCLUDES(mu_);

  /// Answer every queued request whose deadline has passed with
  /// DeadlineExceeded and remove it. Returns how many were expired.
  /// pop_batch runs this sweep itself; the public entry point exists for
  /// idle-time housekeeping and the tests.
  std::size_t expire_sweep() VF_EXCLUDES(mu_);

  /// Answer *every* queued request with `status` and empty the queue —
  /// the drain-budget escape hatch that guarantees no queued promise is
  /// ever orphaned. Returns how many were answered.
  std::size_t shed_all(Status status) VF_EXCLUDES(mu_);

  /// Wake all waiters; subsequent pushes are refused, pops drain the
  /// remaining backlog then return false.
  void shutdown() VF_EXCLUDES(mu_);

  [[nodiscard]] std::size_t depth() const VF_EXCLUDES(mu_);

  /// Requests answered DeadlineExceeded by queue-side expiry so far.
  [[nodiscard]] std::uint64_t expired_count() const {
    return expired_.load(std::memory_order_relaxed);
  }

 private:
  /// Move every queued live `key` request into `out` until `max_points`,
  /// answering expired same-key entries along the way. Clamps `flush` to
  /// the earliest claimed member deadline. Returns total points claimed.
  std::size_t claim_locked(const std::string& key,
                           std::vector<PointRequest>& out,
                           std::size_t max_points, std::size_t claimed,
                           std::chrono::steady_clock::time_point now,
                           std::chrono::steady_clock::time_point& flush)
      VF_REQUIRES(mu_);

  /// Expiry sweep body; see expire_sweep().
  std::size_t expire_sweep_locked(std::chrono::steady_clock::time_point now)
      VF_REQUIRES(mu_);

  mutable vf::util::Mutex mu_{"serve.queue"};
  vf::util::CondVar cv_;
  std::deque<PointRequest> q_ VF_GUARDED_BY(mu_);
  std::size_t max_pending_;  // immutable after construction
  bool down_ VF_GUARDED_BY(mu_) = false;
  std::atomic<std::uint64_t> expired_{0};
};

}  // namespace vf::serve
