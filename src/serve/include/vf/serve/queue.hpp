#pragma once
// RequestQueue — bounded MPMC queue with dynamic micro-batch extraction.
//
// Producers (client threads) push point-query requests; admission control
// rejects pushes once `max_pending` requests are queued, so a saturated
// service sheds load with a backpressure signal instead of growing an
// unbounded backlog. Consumers (worker threads) pop *micro-batches*: a
// worker takes the oldest request, claims every queued request with the
// same session key, and — if the batch is still under `max_points` —
// briefly waits for more same-key arrivals until the head request's age
// reaches `max_delay` (deadline flush) or the batch fills (size flush).
// Claimed requests leave the deque immediately, so two workers can never
// serve the same request; requests for other keys stay queued for other
// workers.

#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <string>
#include <vector>

#include "vf/field/scalar_field.hpp"
#include "vf/util/mutex.hpp"
#include "vf/util/thread_annotations.hpp"

namespace vf::serve {

/// Outcome of one served request.
struct PointResponse {
  std::vector<double> values;   ///< one per query point
  std::size_t degraded = 0;     ///< points repaired / classically estimated
  std::size_t batch_points = 0; ///< size of the micro-batch that carried it
  /// Empty on the FCNN fast path; "classical" when the model could not be
  /// loaded and the whole batch fell back to the Shepard estimator.
  std::string fallback;
};

struct PointRequest {
  std::string key;  ///< session / model key (batching groups by this)
  std::vector<vf::field::Vec3> points;
  std::promise<PointResponse> promise;
  std::chrono::steady_clock::time_point enqueued;
};

enum class Admission {
  Accepted,
  QueueFull,      ///< backpressure: shed this request
  ShuttingDown,
};

class RequestQueue {
 public:
  explicit RequestQueue(std::size_t max_pending);

  /// Admission-controlled enqueue. QueueFull leaves `req` untouched so the
  /// caller still owns the promise and can report the shed.
  Admission push(PointRequest& req) VF_EXCLUDES(mu_);

  /// Blocking micro-batch pop per the module comment. Returns false only
  /// at shutdown with an empty queue; otherwise fills `out` with >= 1
  /// same-key requests totalling <= max_points query points (a single
  /// oversized request is always taken whole).
  bool pop_batch(std::vector<PointRequest>& out, std::size_t max_points,
                 std::chrono::microseconds max_delay) VF_EXCLUDES(mu_);

  /// Wake all waiters; subsequent pushes are refused, pops drain the
  /// remaining backlog then return false.
  void shutdown() VF_EXCLUDES(mu_);

  [[nodiscard]] std::size_t depth() const VF_EXCLUDES(mu_);

 private:
  /// Move every queued `key` request into `out` until `max_points`.
  /// Returns total points claimed so far.
  std::size_t claim_locked(const std::string& key,
                           std::vector<PointRequest>& out,
                           std::size_t max_points, std::size_t claimed)
      VF_REQUIRES(mu_);

  mutable vf::util::Mutex mu_{"serve.queue"};
  vf::util::CondVar cv_;
  std::deque<PointRequest> q_ VF_GUARDED_BY(mu_);
  std::size_t max_pending_;  // immutable after construction
  bool down_ VF_GUARDED_BY(mu_) = false;
};

}  // namespace vf::serve
