#pragma once
// ModelRegistry — thread-safe LRU cache of per-timestep FCNN models.
//
// The paper's Case 1/Case 2 workflow produces one fine-tuned model per
// timestep; a long-running service cannot keep them all resident. The
// registry maps a stable key ("t042") to a model file, loads lazily on
// first resolve, and evicts least-recently-used models when either the
// entry cap or the byte budget (FcnnModel::memory_bytes accounting) is
// exceeded. Concurrent resolvers of the same cold key share a single
// load via a shared_future instead of thundering-herding the disk; a
// failed load is propagated to every waiter and leaves the entry
// re-loadable. Evicted entries keep their path registration, so a later
// resolve simply reloads. In-flight shared_ptr handles keep an evicted
// model's storage alive until the last user drops it — eviction only
// drops the registry's reference, never memory a worker is reading.

#include <cstdint>
#include <future>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>

#include "vf/core/model.hpp"
#include "vf/util/mutex.hpp"
#include "vf/util/thread_annotations.hpp"

namespace vf::serve {

struct RegistryOptions {
  /// Maximum resident (loaded) models; at least 1 stays resident.
  std::size_t max_models = 4;
  /// Byte budget across resident models (0 = unlimited). The most
  /// recently used model is never evicted even when it alone exceeds
  /// the budget.
  std::size_t max_bytes = 0;
};

struct RegistryStats {
  std::uint64_t hits = 0;
  std::uint64_t loads = 0;
  std::uint64_t load_failures = 0;
  std::uint64_t evictions = 0;
  std::size_t resident_models = 0;
  std::size_t resident_bytes = 0;
};

class ModelRegistry {
 public:
  explicit ModelRegistry(RegistryOptions options = {});

  /// Register `key` -> model file. Does not load. Re-registering an
  /// existing key updates the path, drops any resident model, and
  /// invalidates in-flight loads of the old path (their results are
  /// discarded on completion, never installed under the new
  /// registration).
  void add(const std::string& key, const std::string& path)
      VF_EXCLUDES(mu_);

  /// True when `key` has been registered.
  [[nodiscard]] bool contains(const std::string& key) const
      VF_EXCLUDES(mu_);

  /// Resolve `key` to its model, loading it if not resident (blocking;
  /// concurrent cold resolves of one key share a single load). Bumps the
  /// LRU position and evicts over-budget models. Throws
  /// std::invalid_argument for unregistered keys and propagates load
  /// errors (missing/corrupt file, fault-injected "model_read" failures,
  /// or a loadable model whose normaliser shapes don't match the
  /// kFeatureDim feature pipeline).
  [[nodiscard]] std::shared_ptr<const vf::core::FcnnModel> resolve(
      const std::string& key) VF_EXCLUDES(mu_);

  [[nodiscard]] RegistryStats stats() const VF_EXCLUDES(mu_);

 private:
  using ModelPtr = std::shared_ptr<const vf::core::FcnnModel>;

  struct Entry {
    std::string path;
    ModelPtr model;  // null while not resident
    std::shared_future<ModelPtr> loading;  // valid while a load is in flight
    std::list<std::string>::iterator lru{};  // valid while resident
    std::size_t bytes = 0;
    /// Bumped by add() on re-registration; a load completing under a
    /// stale generation discards its result instead of installing it.
    std::uint64_t generation = 0;
  };

  /// Evict LRU tails until budgets hold.
  void evict_over_budget_locked() VF_REQUIRES(mu_);

  RegistryOptions options_;  // immutable after construction
  mutable vf::util::Mutex mu_{"serve.registry"};
  std::unordered_map<std::string, Entry> entries_ VF_GUARDED_BY(mu_);
  std::list<std::string> lru_ VF_GUARDED_BY(mu_);  // front = most recent
  RegistryStats stats_ VF_GUARDED_BY(mu_);
};

}  // namespace vf::serve
