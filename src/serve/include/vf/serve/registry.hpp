#pragma once
// ModelRegistry — thread-safe LRU cache of per-timestep FCNN models.
//
// The paper's Case 1/Case 2 workflow produces one fine-tuned model per
// timestep; a long-running service cannot keep them all resident. The
// registry maps a stable key ("t042") to a model file, loads lazily on
// first resolve, and evicts least-recently-used models when either the
// entry cap or the byte budget (FcnnModel::memory_bytes accounting) is
// exceeded. Concurrent resolvers of the same cold key share a single
// load via a shared_future instead of thundering-herding the disk; a
// failed load is propagated to every waiter and leaves the entry
// re-loadable. Evicted entries keep their path registration, so a later
// resolve simply reloads. In-flight shared_ptr handles keep an evicted
// model's storage alive until the last user drops it — eviction only
// drops the registry's reference, never memory a worker is reading.
//
// Loads sit behind a per-model circuit breaker (DESIGN.md §12): after
// `breaker_threshold` consecutive failures the breaker opens and resolve
// fast-fails with CircuitOpenError — no disk I/O — until an exponentially
// backed-off half-open window lets a single probe load through. A probe
// success closes the breaker; a failure re-opens it with doubled backoff.
// Callers already treat any resolve failure as "degrade to the classical
// estimator", so an open breaker turns a retry-hammered fault into an
// instant, bounded degradation.

#include <chrono>
#include <cstdint>
#include <future>
#include <list>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "vf/core/model.hpp"
#include "vf/util/atomic_io.hpp"
#include "vf/util/mutex.hpp"
#include "vf/util/rng.hpp"
#include "vf/util/thread_annotations.hpp"

namespace vf::serve {

/// Deterministic per-shard salt (splitmix64 of seed + shard id). Shard 0
/// maps to a nonzero salt too — "no salt" is expressed by leaving
/// RegistryOptions::shard_salt at 0, not by a magic shard id.
[[nodiscard]] std::uint64_t derive_shard_salt(std::uint64_t seed,
                                              std::size_t shard_id);

struct RegistryOptions {
  /// Maximum resident (loaded) models; at least 1 stays resident.
  std::size_t max_models = 4;
  /// Byte budget across resident models (0 = unlimited). The most
  /// recently used model is never evicted even when it alone exceeds
  /// the budget.
  std::size_t max_bytes = 0;
  /// Consecutive load failures before the per-model breaker opens
  /// (0 disables circuit breaking entirely).
  std::uint32_t breaker_threshold = 3;
  /// First open window; doubles on every failed half-open probe up to
  /// `breaker_backoff_max`.
  std::chrono::milliseconds breaker_backoff{100};
  std::chrono::milliseconds breaker_backoff_max{5000};
  /// Retry policy for the disk read inside resolve() (attempts = 1 means
  /// a single try, exactly the pre-retry behaviour). Only the file load
  /// is retried; compatibility validation failures are permanent and
  /// surface immediately. When `jitter_seed` is 0 and `shard_salt` is
  /// nonzero, the salt seeds the jitter so co-located shards spread out.
  vf::util::RetryPolicy load_retry{};
  /// Per-shard identity for fault *independence*: a nonzero salt gives
  /// this registry its own deterministic jitter stream for breaker open
  /// windows (uniform in [backoff/2, backoff]) and, by default, for
  /// load-retry backoff. 0 keeps the exact un-jittered windows — the
  /// single-instance default and what the backoff-ladder tests pin.
  /// ShardRouter derives a distinct salt per shard; a hand-built fleet
  /// can set ServiceOptions::shard_id to get the same effect.
  std::uint64_t shard_salt = 0;
};

/// Per-model load-path health (see module comment for transitions).
enum class BreakerState : std::uint8_t {
  Closed = 0,    ///< loads flow normally
  Open = 1,      ///< fast-failing; no disk I/O until the window elapses
  HalfOpen = 2,  ///< one probe load in flight; siblings still fast-fail
};

[[nodiscard]] const char* breaker_state_name(BreakerState s);

/// Thrown by resolve() when the key's breaker is open. Derives
/// runtime_error so existing "any load failure degrades classically"
/// handling applies unchanged.
class CircuitOpenError : public std::runtime_error {
 public:
  explicit CircuitOpenError(const std::string& key)
      : std::runtime_error("ModelRegistry: circuit open for key '" + key +
                           "'") {}
};

struct BreakerSnapshot {
  BreakerState state = BreakerState::Closed;
  std::uint32_t consecutive_failures = 0;
  std::chrono::milliseconds backoff{0};  ///< exponential ladder value (0 = never tripped)
  /// The open window actually armed: equal to `backoff` for an unsalted
  /// registry, jittered into [backoff/2, backoff] under a shard salt.
  std::chrono::milliseconds open_for{0};
};

struct RegistryStats {
  std::uint64_t hits = 0;
  std::uint64_t loads = 0;
  std::uint64_t load_failures = 0;
  std::uint64_t evictions = 0;
  std::uint64_t breaker_opens = 0;       ///< Closed/HalfOpen -> Open transitions
  std::uint64_t breaker_fast_fails = 0;  ///< resolves answered without disk I/O
  std::uint64_t swaps = 0;  ///< add() re-registrations (hot-swaps) of a live key
  /// Loads that completed under a superseded generation and were
  /// discarded instead of installed — the hot-swap safety path.
  std::uint64_t superseded_loads = 0;
  std::size_t resident_models = 0;
  std::size_t resident_bytes = 0;
  std::size_t open_breakers = 0;  ///< keys currently Open or HalfOpen
};

class ModelRegistry {
 public:
  explicit ModelRegistry(RegistryOptions options = {});

  /// Register `key` -> model file. Does not load. Re-registering an
  /// existing key updates the path, drops any resident model, resets the
  /// breaker (a new file is a new fault domain), and invalidates in-flight
  /// loads of the old path (their results are discarded on completion,
  /// never installed under the new registration).
  void add(const std::string& key, const std::string& path)
      VF_EXCLUDES(mu_);

  /// True when `key` has been registered.
  [[nodiscard]] bool contains(const std::string& key) const
      VF_EXCLUDES(mu_);

  /// Resolve `key` to its model, loading it if not resident (blocking;
  /// concurrent cold resolves of one key share a single load). Bumps the
  /// LRU position and evicts over-budget models. Throws
  /// std::invalid_argument for unregistered keys, CircuitOpenError when
  /// the key's breaker is open, and propagates load errors
  /// (missing/corrupt file, fault-injected "model_read" failures, or a
  /// loadable model whose normaliser shapes don't match the kFeatureDim
  /// feature pipeline).
  [[nodiscard]] std::shared_ptr<const vf::core::FcnnModel> resolve(
      const std::string& key) VF_EXCLUDES(mu_);

  [[nodiscard]] RegistryStats stats() const VF_EXCLUDES(mu_);

  /// Breaker state for one key (throws std::invalid_argument if
  /// unregistered).
  [[nodiscard]] BreakerSnapshot breaker(const std::string& key) const
      VF_EXCLUDES(mu_);

  /// Every registered key's breaker state, for the `ready` wire verb.
  [[nodiscard]] std::vector<std::pair<std::string, BreakerSnapshot>>
  breaker_states() const VF_EXCLUDES(mu_);

 private:
  using ModelPtr = std::shared_ptr<const vf::core::FcnnModel>;

  struct Entry {
    std::string path;
    ModelPtr model;  // null while not resident
    std::shared_future<ModelPtr> loading;  // valid while a load is in flight
    std::list<std::string>::iterator lru{};  // valid while resident
    std::size_t bytes = 0;
    /// Bumped by add() on re-registration; a load completing under a
    /// stale generation discards its result instead of installing it.
    std::uint64_t generation = 0;
    // --- circuit breaker (guarded by mu_ like the rest of the entry) ---
    BreakerState breaker = BreakerState::Closed;
    std::uint32_t consecutive_failures = 0;
    std::chrono::milliseconds backoff{0};  // exponential ladder value
    std::chrono::milliseconds open_for{0};  // armed window (jittered)
    std::chrono::steady_clock::time_point open_until{};
  };

  /// Evict LRU tails until budgets hold.
  void evict_over_budget_locked() VF_REQUIRES(mu_);

  /// Record a load failure against `e` and open/re-open the breaker when
  /// the consecutive-failure threshold is reached.
  void record_load_failure_locked(const std::string& key, Entry& e)
      VF_REQUIRES(mu_);

  RegistryOptions options_;  // immutable after construction
  mutable vf::util::Mutex mu_{"serve.registry"};
  /// Deterministic breaker-window jitter stream; engaged only when
  /// options_.shard_salt != 0 (constructed before the workers exist, so
  /// the un-locked ctor write is safe).
  std::optional<vf::util::Rng> breaker_rng_ VF_GUARDED_BY(mu_);
  std::unordered_map<std::string, Entry> entries_ VF_GUARDED_BY(mu_);
  std::list<std::string> lru_ VF_GUARDED_BY(mu_);  // front = most recent
  RegistryStats stats_ VF_GUARDED_BY(mu_);
};

}  // namespace vf::serve
