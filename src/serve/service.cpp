#include "vf/serve/service.hpp"

#include <algorithm>
#include <exception>
#include <stdexcept>
#include <utility>

#include "vf/api/reconstruct.hpp"
#include "vf/core/features.hpp"
#include "vf/core/resilient.hpp"
#include "vf/obs/obs.hpp"
#include "vf/util/fault.hpp"

#include <omp.h>

namespace vf::serve {

using vf::field::Vec3;

/// Per-worker working set, reused across batches.
struct WorkerScratch {
  std::vector<Vec3> points;
  std::vector<double> out;
  std::vector<std::size_t> repaired;
  vf::api::PointScratch infer;
  /// Quantized copy of the last resolved model (ServiceOptions::quant !=
  /// None), keyed on the registry's model instance so a registry reload /
  /// eviction triggers re-quantization.
  vf::nn::QuantizedNetwork qnet;
  const vf::core::FcnnModel* qnet_key = nullptr;
};

namespace {

/// ServiceOptions::shard_id contract: a sharded instance with an unsalted
/// registry gets a derived per-shard salt (decorrelated retry jitter +
/// breaker windows); shard 0 / explicit salts pass through untouched.
RegistryOptions shard_registry_options(const ServiceOptions& options) {
  RegistryOptions r = options.registry;
  if (r.shard_salt == 0 && options.shard_id != 0) {
    r.shard_salt = derive_shard_salt(0, options.shard_id);
  }
  return r;
}

}  // namespace

Service::Service(ServiceOptions options)
    : options_(options),
      registry_(shard_registry_options(options)),
      queue_(options.queue_max) {
  const std::size_t n = std::max<std::size_t>(1, options_.workers);
  workers_.reserve(n);
  {
    const vf::util::MutexLock lock(workers_mu_);
    live_workers_ = n;
  }
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Service::~Service() { stop(); }

bool Service::drain_impl(bool bounded, std::chrono::milliseconds budget) {
  begin_drain();
  {
    const vf::util::MutexLock lock(stop_mu_);
    if (stopped_) return true;  // another caller owns the shutdown
    stopped_ = true;
  }
  queue_.shutdown();  // wakes workers; they flush the backlog and exit

  bool in_budget = true;
  if (bounded) {
    const auto deadline = std::chrono::steady_clock::now() + budget;
    const vf::util::MutexLock lock(workers_mu_);
    in_budget = workers_cv_.wait_until(
        workers_mu_, deadline,
        [&]() VF_REQUIRES(workers_mu_) { return live_workers_ == 0; });
  }
  if (!in_budget) {
    // Budget blown: the workers are wedged in a slow batch. Answer every
    // still-queued request Draining so no promise is orphaned; the join
    // below then only waits on the batches already being computed.
    const std::size_t shed = queue_.shed_all(Status::Draining);
    VF_OBS_COUNT("serve.drain.budget_shed", static_cast<std::int64_t>(shed));
  }
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  return in_budget;
}

bool Service::drain(std::chrono::milliseconds budget) {
  return drain_impl(true, budget);
}

void Service::stop() { drain_impl(false, std::chrono::milliseconds(0)); }

void Service::add_session(const std::string& key,
                          const vf::sampling::SampleCloud& cloud,
                          const std::string& model_path) {
  auto session = std::make_shared<Session>();
  std::size_t nonfinite = 0, duplicates = 0;
  session->cloud = cloud.scrubbed(nonfinite, duplicates);
  if (session->cloud.size() < static_cast<std::size_t>(vf::core::kNeighbors)) {
    throw std::invalid_argument(
        "vf::serve: session '" + key + "' has " +
        std::to_string(session->cloud.size()) +
        " usable samples after scrubbing; need >= " +
        std::to_string(vf::core::kNeighbors) + " for k-NN features");
  }
  // Expected queries per lookup = one micro-batch; Auto typically keeps
  // the exact k-d tree for serve's sparse-probe workload.
  session->index = vf::spatial::build_index(
      session->cloud.points(), options_.index, options_.batch_max_points);
  session->values = session->cloud.values();
  if (model_path.empty()) {
    // Classical session: no model to register — the registry entry (and
    // its breaker) would only ever fail. serve_batch routes straight to
    // the Shepard estimator instead.
    session->classical = true;
  } else {
    registry_.add(key, model_path);
  }
  const vf::util::MutexLock lock(sessions_mu_);
  sessions_[key] = std::move(session);
}

bool Service::has_session(const std::string& key) const {
  const vf::util::MutexLock lock(sessions_mu_);
  return sessions_.count(key) > 0;
}

std::optional<std::future<PointResponse>> Service::submit(
    const std::string& key, std::vector<Vec3> points) {
  auto deadline = kNoDeadline;
  if (options_.default_deadline > std::chrono::milliseconds(0)) {
    deadline = std::chrono::steady_clock::now() + options_.default_deadline;
  }
  return submit(key, std::move(points), deadline);
}

std::optional<std::future<PointResponse>> Service::submit(
    const std::string& key, std::vector<Vec3> points,
    std::chrono::steady_clock::time_point deadline) {
  if (!has_session(key)) {
    throw std::invalid_argument("vf::serve: unknown session '" + key + "'");
  }
  if (draining()) {
    drain_rejects_.fetch_add(1, std::memory_order_relaxed);
    VF_OBS_COUNT("serve.drain.rejects", 1);
    return std::nullopt;
  }
  PointRequest req;
  req.key = key;
  req.points = std::move(points);
  req.deadline = deadline;
  auto future = req.reply.get_future();
  // A dead-on-arrival deadline never touches the queue (let alone the
  // registry or inference): answer it right here, resolved future and all.
  if (req.expired(std::chrono::steady_clock::now())) {
    expired_.fetch_add(1, std::memory_order_relaxed);
    VF_OBS_COUNT("serve.submit.expired", 1);
    req.reply.fulfill(Status::DeadlineExceeded);
    return future;
  }
  switch (queue_.push(req)) {
    case Admission::Accepted:
      accepted_.fetch_add(1, std::memory_order_relaxed);
      return future;
    case Admission::QueueFull:
    case Admission::ShuttingDown:
      shed_.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
  }
  return std::nullopt;
}

PointResponse Service::query(const std::string& key, std::vector<Vec3> points) {
  auto future = submit(key, std::move(points));
  if (!future) throw OverloadedError{};
  return future->get();
}

void Service::worker_loop() {
  // Worker-pool parallelism replaces data parallelism: each worker runs
  // its kernels (feature extraction, fused inference) on a single OpenMP
  // thread so `workers` batches in flight use `workers` cores, not
  // workers x omp_num_threads.
  omp_set_num_threads(1);
  WorkerScratch scratch;
  std::vector<PointRequest> batch;
  while (queue_.pop_batch(batch, options_.batch_max_points,
                          options_.batch_deadline)) {
    // serve_batch answers every request itself; this guard is the last
    // line of defence — an exception escaping a worker std::thread would
    // std::terminate the whole process. Reply::fail is a no-op for
    // already-answered members, so the exactly-once invariant holds even
    // here.
    try {
      serve_batch(batch, scratch);
    } catch (...) {
      const auto err = std::current_exception();
      for (auto& req : batch) req.reply.fail(err);
    }
  }
  {
    const vf::util::MutexLock lock(workers_mu_);
    --live_workers_;
  }
  workers_cv_.notify_all();  // drain() may be waiting on a budget
}

void Service::serve_batch(std::vector<PointRequest>& batch,
                          WorkerScratch& scratch) {
  VF_OBS_SPAN("serve/batch");
  // Last-chance deadline check: a request can expire between being claimed
  // into a batch (the queue only answers *queued* expiries) and the worker
  // getting to it. Answer those now and compute only the live remainder.
  {
    const auto now = std::chrono::steady_clock::now();
    std::size_t live = 0;
    for (auto& req : batch) {
      if (req.expired(now)) {
        // Count before fulfilling so a client woken by the answer already
        // sees this expiry in the stats it reads next.
        expired_.fetch_add(1, std::memory_order_relaxed);
        req.reply.fulfill(Status::DeadlineExceeded);
        VF_OBS_COUNT("serve.queue.expired", 1);
      } else {
        if (live != static_cast<std::size_t>(&req - batch.data())) {
          batch[live] = std::move(req);
        }
        ++live;
      }
    }
    batch.resize(live);
    if (batch.empty()) return;
  }

  std::shared_ptr<const Session> session;
  {
    const vf::util::MutexLock lock(sessions_mu_);
    auto it = sessions_.find(batch.front().key);
    if (it != sessions_.end()) session = it->second;
  }
  if (!session) {  // raced with a rebind/remove: fail the requests honestly
    auto err = std::make_exception_ptr(
        std::invalid_argument("vf::serve: session disappeared"));
    for (auto& req : batch) req.reply.fail(err);
    return;
  }

  std::size_t total = 0;
  for (const auto& req : batch) total += req.points.size();
  batches_.fetch_add(1, std::memory_order_relaxed);
  served_points_.fetch_add(total, std::memory_order_relaxed);
  VF_OBS_HIST("serve.batch.points", static_cast<double>(total));
  VF_OBS_HIST("serve.batch.requests", static_cast<double>(batch.size()));

  scratch.points.clear();
  scratch.points.reserve(total);
  for (const auto& req : batch) {
    scratch.points.insert(scratch.points.end(), req.points.begin(),
                          req.points.end());
  }
  scratch.out.resize(total);
  scratch.repaired.clear();

  // Resolve the model; a load failure (missing file, corrupt bytes, a
  // VF_FAULT_MODEL_READ injection inside FcnnModel::load, or an open
  // circuit breaker fast-failing the resolve) degrades the batch to the
  // classical estimator instead of failing the requests.
  std::shared_ptr<const vf::core::FcnnModel> model;
  if (!session->classical) {
    try {
      model = registry_.resolve(batch.front().key);
    } catch (const std::exception&) {
      model = nullptr;
    }
  }

  std::size_t degraded_total = 0;
  bool classical = false;
  if (model) {
    // Inference can throw even with a resolvable model (e.g. a scratch
    // allocation failure); degrade the batch like a load failure instead
    // of letting the exception escape the worker thread. The serve_infer
    // failpoint injects exactly that for the chaos soak.
    try {
      VF_OBS_SPAN("serve/infer");
      if (vf::util::fault::should_fail("serve_infer")) {
        throw std::runtime_error("vf::serve: injected inference fault");
      }
      const vf::nn::QuantizedNetwork* qnet = nullptr;
      if (options_.quant != vf::nn::QuantPolicy::None) {
        if (scratch.qnet_key != model.get()) {
          scratch.qnet = vf::nn::QuantizedNetwork(model->net, options_.quant);
          scratch.qnet_key = model.get();
        }
        qnet = &scratch.qnet;
      }
      degraded_total = vf::api::predict_points(
          *model, *session->index, session->values, scratch.points.data(),
          total, scratch.out.data(), scratch.infer,
          options_.repair_neighbors, &scratch.repaired, qnet);
    } catch (const std::exception&) {
      model = nullptr;
      scratch.repaired.clear();
    }
  }
  if (!model) {
    try {
      VF_OBS_SPAN("serve/classical_fallback");
      VF_OBS_COUNT("serve.fallback_batches", 1);
      classical = true;
      fallback_batches_.fetch_add(1, std::memory_order_relaxed);
      for (std::size_t i = 0; i < total; ++i) {
        scratch.out[i] =
            vf::core::shepard_estimate(*session->index, session->values,
                                       scratch.points[i],
                                       options_.repair_neighbors);
      }
      degraded_total = total;
    } catch (...) {
      // Even the fallback failed: fail the requests honestly.
      const auto err = std::current_exception();
      for (auto& req : batch) req.reply.fail(err);
      return;
    }
  }
  degraded_points_.fetch_add(degraded_total, std::memory_order_relaxed);

  // Slice the flat outputs back onto the individual requests.
  std::size_t offset = 0;
  auto repaired_it = scratch.repaired.begin();
  for (auto& req : batch) {
    const std::size_t n = req.points.size();
    PointResponse resp;
    resp.values.assign(scratch.out.begin() + static_cast<std::ptrdiff_t>(offset),
                       scratch.out.begin() +
                           static_cast<std::ptrdiff_t>(offset + n));
    if (classical) {
      resp.degraded = n;
      resp.fallback = "classical";
    } else {
      while (repaired_it != scratch.repaired.end() &&
             *repaired_it < offset + n) {
        ++resp.degraded;
        ++repaired_it;
      }
    }
    resp.batch_points = total;
    req.reply.fulfill(std::move(resp));
    offset += n;
  }
}

ServiceStats Service::stats() const {
  ServiceStats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.served_points = served_points_.load(std::memory_order_relaxed);
  s.degraded_points = degraded_points_.load(std::memory_order_relaxed);
  s.fallback_batches = fallback_batches_.load(std::memory_order_relaxed);
  s.expired = expired_.load(std::memory_order_relaxed) + queue_.expired_count();
  s.drain_rejects = drain_rejects_.load(std::memory_order_relaxed);
  s.registry = registry_.stats();
  return s;
}

}  // namespace vf::serve
