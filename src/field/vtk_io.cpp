#include "vf/field/vtk_io.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "vf/util/atomic_io.hpp"

namespace vf::field {

namespace {

/// Extract the value of `attr="..."` from an XML tag line.
std::string attr_value(const std::string& line, const std::string& attr) {
  auto key = attr + "=\"";
  auto pos = line.find(key);
  if (pos == std::string::npos) return {};
  pos += key.size();
  auto end = line.find('"', pos);
  if (end == std::string::npos) return {};
  return line.substr(pos, end - pos);
}

/// Read whitespace-separated doubles until `count` values are consumed.
std::vector<double> read_doubles(std::istream& in, std::size_t count,
                                 const char* what) {
  std::vector<double> out;
  out.reserve(count);
  double v = 0.0;
  while (out.size() < count && (in >> v)) out.push_back(v);
  if (out.size() != count) {
    throw std::runtime_error(std::string("vtk_io: truncated ") + what);
  }
  return out;
}

}  // namespace

void write_vti(const ScalarField& field, const std::string& path) {
  // Field archives go through the atomic writer: a crash mid-write must not
  // replace a good archived timestep with a torn one.
  vf::util::atomic_write_file(path, [&](std::ostream& out) {
  const auto& g = field.grid();
  const auto& d = g.dims();
  const auto& o = g.origin();
  const auto& s = g.spacing();

  out << "<?xml version=\"1.0\"?>\n"
      << "<VTKFile type=\"ImageData\" version=\"1.0\" "
         "byte_order=\"LittleEndian\">\n";
  out << "  <ImageData WholeExtent=\"0 " << d.nx - 1 << " 0 " << d.ny - 1
      << " 0 " << d.nz - 1 << "\" Origin=\"" << o.x << " " << o.y << " " << o.z
      << "\" Spacing=\"" << s.x << " " << s.y << " " << s.z << "\">\n";
  out << "    <Piece Extent=\"0 " << d.nx - 1 << " 0 " << d.ny - 1 << " 0 "
      << d.nz - 1 << "\">\n";
  out << "      <PointData Scalars=\"" << field.name() << "\">\n";
  out << "        <DataArray type=\"Float64\" Name=\"" << field.name()
      << "\" format=\"ascii\">\n";
  out.precision(17);
  const auto vals = field.values();
  for (std::int64_t i = 0; i < field.size(); ++i) {
    out << vals[i] << ((i + 1) % 6 == 0 ? "\n" : " ");
  }
  out << "\n        </DataArray>\n"
      << "      </PointData>\n"
      << "    </Piece>\n"
      << "  </ImageData>\n"
      << "</VTKFile>\n";
  if (!out) throw std::runtime_error("write_vti: write failed for " + path);
  });
}

ScalarField read_vti(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_vti: cannot open " + path);

  Dims dims;
  Vec3 origin, spacing{1, 1, 1};
  std::string name = "scalar";
  std::string line;
  bool have_extent = false;
  while (std::getline(in, line)) {
    if (line.find("<ImageData") != std::string::npos) {
      std::istringstream ext(attr_value(line, "WholeExtent"));
      int x0, x1, y0, y1, z0, z1;
      if (!(ext >> x0 >> x1 >> y0 >> y1 >> z0 >> z1)) {
        throw std::runtime_error("read_vti: bad WholeExtent in " + path);
      }
      dims = {x1 - x0 + 1, y1 - y0 + 1, z1 - z0 + 1};
      std::istringstream org(attr_value(line, "Origin"));
      org >> origin.x >> origin.y >> origin.z;
      std::istringstream spc(attr_value(line, "Spacing"));
      spc >> spacing.x >> spacing.y >> spacing.z;
      have_extent = true;
    }
    if (line.find("<DataArray") != std::string::npos) {
      auto n = attr_value(line, "Name");
      if (!n.empty()) name = n;
      break;  // values follow
    }
  }
  if (!have_extent) {
    throw std::runtime_error("read_vti: no ImageData element in " + path);
  }
  UniformGrid3 grid(dims, origin, spacing);
  auto values =
      read_doubles(in, static_cast<std::size_t>(grid.point_count()), "vti data");
  return ScalarField(grid, std::move(values), name);
}

void write_vtp(const std::vector<Vec3>& points,
               const std::vector<double>& values, const std::string& name,
               const std::string& path) {
  if (points.size() != values.size()) {
    throw std::invalid_argument("write_vtp: point/value count mismatch");
  }
  // Sample-cloud archives are as precious as field archives: atomic write.
  vf::util::atomic_write_file(path, [&](std::ostream& out) {
  const std::size_t n = points.size();
  out << "<?xml version=\"1.0\"?>\n"
      << "<VTKFile type=\"PolyData\" version=\"1.0\" "
         "byte_order=\"LittleEndian\">\n"
      << "  <PolyData>\n"
      << "    <Piece NumberOfPoints=\"" << n << "\" NumberOfVerts=\"" << n
      << "\">\n";
  out.precision(17);
  out << "      <PointData Scalars=\"" << name << "\">\n"
      << "        <DataArray type=\"Float64\" Name=\"" << name
      << "\" format=\"ascii\">\n";
  for (std::size_t i = 0; i < n; ++i) {
    out << values[i] << ((i + 1) % 6 == 0 ? "\n" : " ");
  }
  out << "\n        </DataArray>\n      </PointData>\n";
  out << "      <Points>\n"
      << "        <DataArray type=\"Float64\" NumberOfComponents=\"3\" "
         "format=\"ascii\">\n";
  for (const auto& p : points) {
    out << p.x << " " << p.y << " " << p.z << "\n";
  }
  out << "        </DataArray>\n      </Points>\n";
  out << "      <Verts>\n"
      << "        <DataArray type=\"Int64\" Name=\"connectivity\" "
         "format=\"ascii\">\n";
  for (std::size_t i = 0; i < n; ++i) out << i << ((i + 1) % 12 == 0 ? "\n" : " ");
  out << "\n        </DataArray>\n"
      << "        <DataArray type=\"Int64\" Name=\"offsets\" "
         "format=\"ascii\">\n";
  for (std::size_t i = 1; i <= n; ++i) out << i << (i % 12 == 0 ? "\n" : " ");
  out << "\n        </DataArray>\n      </Verts>\n";
  out << "    </Piece>\n  </PolyData>\n</VTKFile>\n";
  if (!out) throw std::runtime_error("write_vtp: write failed for " + path);
  });
}

PolyData read_vtp(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_vtp: cannot open " + path);
  PolyData pd;
  std::size_t n = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("<Piece") != std::string::npos) {
      n = static_cast<std::size_t>(
          std::stoll(attr_value(line, "NumberOfPoints")));
    }
    if (line.find("<PointData") != std::string::npos) {
      auto nm = attr_value(line, "Scalars");
      if (!nm.empty()) pd.name = nm;
    }
    if (line.find("<DataArray") != std::string::npos &&
        line.find("Float64") != std::string::npos &&
        line.find("NumberOfComponents") == std::string::npos) {
      pd.values = read_doubles(in, n, "vtp values");
    }
    if (line.find("<DataArray") != std::string::npos &&
        line.find("NumberOfComponents=\"3\"") != std::string::npos) {
      auto coords = read_doubles(in, n * 3, "vtp points");
      pd.points.resize(n);
      for (std::size_t i = 0; i < n; ++i) {
        pd.points[i] = {coords[3 * i], coords[3 * i + 1], coords[3 * i + 2]};
      }
      break;  // vertex topology not needed
    }
  }
  if (pd.points.size() != n || pd.values.size() != n) {
    throw std::runtime_error("read_vtp: incomplete file " + path);
  }
  return pd;
}

}  // namespace vf::field
