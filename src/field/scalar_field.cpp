#include "vf/field/scalar_field.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vf::field {

ScalarField::ScalarField(UniformGrid3 grid, std::string name)
    : grid_(grid), name_(std::move(name)), values_(grid.point_count(), 0.0) {}

ScalarField::ScalarField(UniformGrid3 grid, std::vector<double> values,
                         std::string name)
    : grid_(grid), name_(std::move(name)), values_(std::move(values)) {
  if (static_cast<std::int64_t>(values_.size()) != grid_.point_count()) {
    throw std::invalid_argument(
        "ScalarField: value count does not match grid point count");
  }
}

double ScalarField::sample_trilinear(const Vec3& p) const {
  const auto& d = grid_.dims();
  Vec3 g = grid_.to_grid_space(p);
  double gx = std::clamp(g.x, 0.0, static_cast<double>(d.nx - 1));
  double gy = std::clamp(g.y, 0.0, static_cast<double>(d.ny - 1));
  double gz = std::clamp(g.z, 0.0, static_cast<double>(d.nz - 1));
  int i0 = std::min(static_cast<int>(gx), d.nx - 2 >= 0 ? d.nx - 2 : 0);
  int j0 = std::min(static_cast<int>(gy), d.ny - 2 >= 0 ? d.ny - 2 : 0);
  int k0 = std::min(static_cast<int>(gz), d.nz - 2 >= 0 ? d.nz - 2 : 0);
  i0 = std::max(i0, 0);
  j0 = std::max(j0, 0);
  k0 = std::max(k0, 0);
  int i1 = std::min(i0 + 1, d.nx - 1);
  int j1 = std::min(j0 + 1, d.ny - 1);
  int k1 = std::min(k0 + 1, d.nz - 1);
  double fx = gx - i0, fy = gy - j0, fz = gz - k0;

  auto v = [&](int i, int j, int k) { return values_[grid_.index(i, j, k)]; };
  double c00 = v(i0, j0, k0) * (1 - fx) + v(i1, j0, k0) * fx;
  double c10 = v(i0, j1, k0) * (1 - fx) + v(i1, j1, k0) * fx;
  double c01 = v(i0, j0, k1) * (1 - fx) + v(i1, j0, k1) * fx;
  double c11 = v(i0, j1, k1) * (1 - fx) + v(i1, j1, k1) * fx;
  double c0 = c00 * (1 - fy) + c10 * fy;
  double c1 = c01 * (1 - fy) + c11 * fy;
  return c0 * (1 - fz) + c1 * fz;
}

FieldStats ScalarField::stats() const {
  FieldStats s;
  if (values_.empty()) return s;
  double mn = values_[0], mx = values_[0];
  double sum = 0.0;
  for (double v : values_) {
    mn = std::min(mn, v);
    mx = std::max(mx, v);
    sum += v;
  }
  double mean = sum / static_cast<double>(values_.size());
  double var = 0.0;
  for (double v : values_) var += (v - mean) * (v - mean);
  var /= static_cast<double>(values_.size());
  s.min = mn;
  s.max = mx;
  s.mean = mean;
  s.stddev = std::sqrt(var);
  return s;
}

}  // namespace vf::field
