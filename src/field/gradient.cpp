#include "vf/field/gradient.hpp"

#include "vf/util/parallel.hpp"

namespace vf::field {

namespace {

/// One-dimensional difference along one axis at index i (0..n-1):
/// central in the interior, first-order one-sided at the ends.
inline double axis_diff(double prev, double next, double self, int i, int n,
                        double h) {
  if (n == 1) return 0.0;
  if (i == 0) return (next - self) / h;
  if (i == n - 1) return (self - prev) / h;
  return (next - prev) / (2.0 * h);
}

}  // namespace

std::array<double, 3> gradient_at(const ScalarField& f, int i, int j, int k) {
  const auto& g = f.grid();
  const auto& d = g.dims();
  const auto& h = g.spacing();
  double self = f.at(i, j, k);

  double gx = axis_diff(i > 0 ? f.at(i - 1, j, k) : 0.0,
                        i < d.nx - 1 ? f.at(i + 1, j, k) : 0.0, self, i, d.nx,
                        h.x);
  double gy = axis_diff(j > 0 ? f.at(i, j - 1, k) : 0.0,
                        j < d.ny - 1 ? f.at(i, j + 1, k) : 0.0, self, j, d.ny,
                        h.y);
  double gz = axis_diff(k > 0 ? f.at(i, j, k - 1) : 0.0,
                        k < d.nz - 1 ? f.at(i, j, k + 1) : 0.0, self, k, d.nz,
                        h.z);
  return {gx, gy, gz};
}

GradientField compute_gradient(const ScalarField& f) {
  const auto& g = f.grid();
  const auto& d = g.dims();
  GradientField out{ScalarField(g, f.name() + "_dx"),
                    ScalarField(g, f.name() + "_dy"),
                    ScalarField(g, f.name() + "_dz")};

  vf::util::parallel_for(0, d.nz, [&](std::int64_t kk) {
    int k = static_cast<int>(kk);
    for (int j = 0; j < d.ny; ++j) {
      for (int i = 0; i < d.nx; ++i) {
        auto grad = gradient_at(f, i, j, k);
        std::int64_t idx = g.index(i, j, k);
        out.dx[idx] = grad[0];
        out.dy[idx] = grad[1];
        out.dz[idx] = grad[2];
      }
    }
  }, /*grain=*/1);
  return out;
}

}  // namespace vf::field
