#include "vf/field/grid.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace vf::field {

UniformGrid3::UniformGrid3(Dims dims, Vec3 origin, Vec3 spacing)
    : dims_(dims), origin_(origin), spacing_(spacing) {
  if (dims.nx < 1 || dims.ny < 1 || dims.nz < 1) {
    throw std::invalid_argument("UniformGrid3: dims must be >= 1");
  }
  if (spacing.x <= 0 || spacing.y <= 0 || spacing.z <= 0) {
    throw std::invalid_argument("UniformGrid3: spacing must be positive");
  }
}

UniformGrid3 UniformGrid3::unit(Dims dims, double longest_extent) {
  int longest = std::max({dims.nx, dims.ny, dims.nz});
  double h = longest > 1 ? longest_extent / (longest - 1) : longest_extent;
  return UniformGrid3(dims, {0, 0, 0}, {h, h, h});
}

BoundingBox UniformGrid3::bounds() const {
  return {origin_,
          {origin_.x + spacing_.x * (dims_.nx - 1),
           origin_.y + spacing_.y * (dims_.ny - 1),
           origin_.z + spacing_.z * (dims_.nz - 1)}};
}

std::array<int, 3> UniformGrid3::nearest_point(const Vec3& p) const {
  auto clamp_round = [](double v, int n) {
    int i = static_cast<int>(std::lround(v));
    return std::clamp(i, 0, n - 1);
  };
  Vec3 g = to_grid_space(p);
  return {clamp_round(g.x, dims_.nx), clamp_round(g.y, dims_.ny),
          clamp_round(g.z, dims_.nz)};
}

Vec3 UniformGrid3::to_grid_space(const Vec3& p) const {
  return {(p.x - origin_.x) / spacing_.x, (p.y - origin_.y) / spacing_.y,
          (p.z - origin_.z) / spacing_.z};
}

std::string UniformGrid3::describe() const {
  char buf[128];
  std::snprintf(buf, sizeof buf, "%dx%dx%d (%lld points)", dims_.nx, dims_.ny,
                dims_.nz, static_cast<long long>(point_count()));
  return buf;
}

}  // namespace vf::field
