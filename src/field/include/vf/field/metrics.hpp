#pragma once
// Reconstruction-quality metrics.
//
// The paper's headline metric is SNR = 20*log10(sigma_raw / sigma_noise)
// where noise = original - reconstruction (§IV). PSNR / RMSE / MAE are
// provided for cross-checking; all operate on same-grid field pairs.

#include "vf/field/scalar_field.hpp"

namespace vf::field {

/// Signal-to-noise ratio in dB, exactly as defined in the paper:
/// 20*log10(stddev(original) / stddev(original - reconstruction)).
/// Returns +infinity for a perfect reconstruction.
double snr_db(const ScalarField& original, const ScalarField& reconstruction);

/// Peak signal-to-noise ratio in dB using the original's value range.
double psnr_db(const ScalarField& original, const ScalarField& reconstruction);

/// Root mean squared error.
double rmse(const ScalarField& original, const ScalarField& reconstruction);

/// Mean absolute error.
double mae(const ScalarField& original, const ScalarField& reconstruction);

/// Maximum absolute error.
double max_abs_error(const ScalarField& original,
                     const ScalarField& reconstruction);

}  // namespace vf::field
