#pragma once
// Grid-to-grid field resampling.
//
// Trilinear resampling of a full low-resolution volume onto a finer grid is
// the classic super-resolution baseline (the "traditional trilinear" method
// the volume-upscaling literature in the paper's related work compares
// against); it complements the sparse-sample reconstructors in Experiment 3
// comparisons.

#include "vf/field/scalar_field.hpp"

namespace vf::field {

/// Evaluate `source` at every point of `target_grid` by trilinear
/// interpolation (positions outside the source domain clamp to its border).
ScalarField resample_trilinear(const ScalarField& source,
                               const UniformGrid3& target_grid);

/// Block-average downsampling by an integer factor per axis (each output
/// point is the mean of its factor^3 source block). Dims must divide.
ScalarField downsample_average(const ScalarField& source, int factor);

}  // namespace vf::field
