#pragma once
// Value histograms and distribution distances.
//
// The Biswas-style sampler's first criterion is value-histogram rarity;
// these utilities quantify how well a sample cloud (or a reconstruction)
// preserves the original value distribution: Shannon entropy, KL
// divergence, and the 1-D earth mover's distance between histograms.

#include <span>
#include <vector>

#include "vf/field/scalar_field.hpp"

namespace vf::field {

class Histogram {
 public:
  /// Histogram of `values` over [lo, hi] with `bins` equal-width bins.
  /// Values outside the range clamp into the end bins.
  Histogram(std::span<const double> values, int bins, double lo, double hi);

  /// Convenience: range taken from the field's min/max.
  static Histogram of(const ScalarField& field, int bins = 64);

  [[nodiscard]] int bins() const { return static_cast<int>(counts_.size()); }
  [[nodiscard]] std::int64_t count(int bin) const { return counts_[static_cast<std::size_t>(bin)]; }
  [[nodiscard]] std::int64_t total() const { return total_; }
  [[nodiscard]] double lo() const { return lo_; }
  [[nodiscard]] double hi() const { return hi_; }

  /// Normalised bin probability.
  [[nodiscard]] double probability(int bin) const;

  /// Shannon entropy in bits (0 for a single-bin distribution).
  [[nodiscard]] double entropy_bits() const;

 private:
  std::vector<std::int64_t> counts_;
  std::int64_t total_ = 0;
  double lo_ = 0.0;
  double hi_ = 1.0;
};

/// KL divergence D(p || q) in bits over two same-shape histograms; q is
/// smoothed with epsilon mass so the result stays finite.
double kl_divergence_bits(const Histogram& p, const Histogram& q,
                          double epsilon = 1e-9);

/// 1-D earth mover's distance between two same-shape histograms, in units
/// of the value range (0 = identical distributions, 1 = all mass moved
/// across the full range).
double emd(const Histogram& p, const Histogram& q);

}  // namespace vf::field
