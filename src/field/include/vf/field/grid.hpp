#pragma once
// Regular (uniform rectilinear) 3-D grids.
//
// Every dataset in the paper lives on a uniform grid: Hurricane Isabel
// 250x250x50, Combustion 240x360x60, Ionization Front 600x248x248. A grid is
// dims + physical origin + spacing; grid point (i,j,k) sits at
// origin + (i*dx, j*dy, k*dz). Linear indices are x-fastest (VTK order).

#include <array>
#include <cstdint>
#include <string>

namespace vf::field {

/// Integer grid dimensions (number of points along each axis).
struct Dims {
  int nx = 0;
  int ny = 0;
  int nz = 0;

  [[nodiscard]] std::int64_t count() const {
    return static_cast<std::int64_t>(nx) * ny * nz;
  }
  bool operator==(const Dims&) const = default;
};

/// Physical position.
struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  double dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }
  [[nodiscard]] double norm2() const { return dot(*this); }
  bool operator==(const Vec3&) const = default;
};

/// Axis-aligned bounding box in physical space.
struct BoundingBox {
  Vec3 min;
  Vec3 max;

  [[nodiscard]] bool contains(const Vec3& p) const {
    return p.x >= min.x && p.x <= max.x && p.y >= min.y && p.y <= max.y &&
           p.z >= min.z && p.z <= max.z;
  }
  [[nodiscard]] Vec3 extent() const { return max - min; }
};

/// Uniform rectilinear grid: dims, origin, and per-axis spacing.
class UniformGrid3 {
 public:
  UniformGrid3() = default;
  UniformGrid3(Dims dims, Vec3 origin, Vec3 spacing);

  /// Grid over [0,1]^3-style unit domain scaled so the longest axis spans
  /// `longest_extent` (convenience used by the synthetic datasets).
  static UniformGrid3 unit(Dims dims, double longest_extent = 1.0);

  [[nodiscard]] const Dims& dims() const { return dims_; }
  [[nodiscard]] const Vec3& origin() const { return origin_; }
  [[nodiscard]] const Vec3& spacing() const { return spacing_; }
  [[nodiscard]] std::int64_t point_count() const { return dims_.count(); }

  /// Linear index of grid point (i,j,k); x-fastest ordering.
  [[nodiscard]] std::int64_t index(int i, int j, int k) const {
    return (static_cast<std::int64_t>(k) * dims_.ny + j) * dims_.nx + i;
  }

  /// Inverse of index().
  [[nodiscard]] std::array<int, 3> ijk(std::int64_t linear) const {
    int i = static_cast<int>(linear % dims_.nx);
    std::int64_t rest = linear / dims_.nx;
    int j = static_cast<int>(rest % dims_.ny);
    int k = static_cast<int>(rest / dims_.ny);
    return {i, j, k};
  }

  /// Physical position of grid point (i,j,k).
  [[nodiscard]] Vec3 position(int i, int j, int k) const {
    return {origin_.x + spacing_.x * i, origin_.y + spacing_.y * j,
            origin_.z + spacing_.z * k};
  }
  [[nodiscard]] Vec3 position(std::int64_t linear) const {
    auto [i, j, k] = ijk(linear);
    return position(i, j, k);
  }

  /// Physical bounds of the grid.
  [[nodiscard]] BoundingBox bounds() const;

  /// Nearest grid point to a physical position, clamped to the grid.
  [[nodiscard]] std::array<int, 3> nearest_point(const Vec3& p) const;

  /// Continuous grid-space coordinate of a physical position (0..nx-1 etc.).
  [[nodiscard]] Vec3 to_grid_space(const Vec3& p) const;

  bool operator==(const UniformGrid3&) const = default;

  [[nodiscard]] std::string describe() const;

 private:
  Dims dims_;
  Vec3 origin_{0, 0, 0};
  Vec3 spacing_{1, 1, 1};
};

}  // namespace vf::field
