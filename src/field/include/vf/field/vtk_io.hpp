#pragma once
// Minimal VTK XML writers/readers.
//
// The paper's pipeline stores full grids as .vti (XML ImageData) and sampled
// point clouds as .vtp (XML PolyData). We implement the small subset of those
// formats the workflow needs — one double scalar array, ASCII encoding — so
// outputs open directly in ParaView and round-trip through our own reader.
// This is an I/O container, not a VTK reimplementation.

#include <string>
#include <vector>

#include "vf/field/scalar_field.hpp"

namespace vf::field {

/// Write a scalar field as an ASCII .vti (XML ImageData) file.
void write_vti(const ScalarField& field, const std::string& path);

/// Read a .vti file previously written by write_vti.
/// Throws std::runtime_error on malformed input.
ScalarField read_vti(const std::string& path);

/// Write a point cloud (positions + one scalar per point) as an ASCII .vtp
/// (XML PolyData) file with vertex cells so ParaView renders the points.
void write_vtp(const std::vector<Vec3>& points,
               const std::vector<double>& values, const std::string& name,
               const std::string& path);

/// Parsed .vtp content.
struct PolyData {
  std::vector<Vec3> points;
  std::vector<double> values;
  std::string name;
};

/// Read a .vtp file previously written by write_vtp.
PolyData read_vtp(const std::string& path);

}  // namespace vf::field
