#pragma once
// A scalar field sampled on a uniform grid — the basic data object the whole
// library moves around: simulation outputs, reconstructions, and error
// volumes are all ScalarFields.

#include <span>
#include <string>
#include <vector>

#include "vf/field/grid.hpp"

namespace vf::field {

/// Summary statistics of a value array.
struct FieldStats {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
};

class ScalarField {
 public:
  ScalarField() = default;

  /// Zero-initialised field over `grid`.
  explicit ScalarField(UniformGrid3 grid, std::string name = "scalar");

  /// Field adopting existing values (size must equal grid.point_count()).
  ScalarField(UniformGrid3 grid, std::vector<double> values,
              std::string name = "scalar");

  [[nodiscard]] const UniformGrid3& grid() const { return grid_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  [[nodiscard]] std::int64_t size() const {
    return static_cast<std::int64_t>(values_.size());
  }

  [[nodiscard]] double operator[](std::int64_t i) const { return values_[i]; }
  [[nodiscard]] double& operator[](std::int64_t i) { return values_[i]; }

  [[nodiscard]] double at(int i, int j, int k) const {
    return values_[grid_.index(i, j, k)];
  }
  [[nodiscard]] double& at(int i, int j, int k) {
    return values_[grid_.index(i, j, k)];
  }

  [[nodiscard]] std::span<const double> values() const { return values_; }
  [[nodiscard]] std::span<double> values() { return values_; }
  [[nodiscard]] const std::vector<double>& vector() const { return values_; }

  /// Trilinear interpolation at a physical position (clamped to the domain).
  [[nodiscard]] double sample_trilinear(const Vec3& p) const;

  /// Min / max / mean / population standard deviation.
  [[nodiscard]] FieldStats stats() const;

  /// Fill every point from `f(position)`.
  template <typename F>
  void fill(const F& f) {
    const auto& d = grid_.dims();
    for (int k = 0; k < d.nz; ++k)
      for (int j = 0; j < d.ny; ++j)
        for (int i = 0; i < d.nx; ++i)
          values_[grid_.index(i, j, k)] = f(grid_.position(i, j, k));
  }

 private:
  UniformGrid3 grid_;
  std::string name_ = "scalar";
  std::vector<double> values_;
};

}  // namespace vf::field
