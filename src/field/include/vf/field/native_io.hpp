#pragma once
// Native binary field format ("VFB1").
//
// ASCII .vti is convenient for interoperability but slow for the paper-scale
// Ionization grid (37M points). The native format is a raw little-endian
// dump with a small header: magic, dims, origin, spacing, name, values.

#include <string>

#include "vf/field/scalar_field.hpp"

namespace vf::field {

/// Write `field` in the native binary format.
void write_native(const ScalarField& field, const std::string& path);

/// Read a native binary field. Throws std::runtime_error on bad files.
ScalarField read_native(const std::string& path);

}  // namespace vf::field
