#pragma once
// Native binary field format ("VFB").
//
// ASCII .vti is convenient for interoperability but slow for the paper-scale
// Ionization grid (37M points). The native format is a raw little-endian
// dump with a small header: magic, dims, origin, spacing, name, values.
//
// Version 2 ("VFB2") is crash-safe: writes are atomic
// (write-temp -> fsync -> rename) and the header and value payload are
// CRC32-framed, so torn writes and bit flips throw std::runtime_error at
// load instead of materialising as corrupt fields. Legacy "VFB1" files
// remain readable; their headers are bound-checked against the actual file
// size before any allocation.

#include <string>

#include "vf/field/scalar_field.hpp"

namespace vf::field {

/// Write `field` in the native binary format.
void write_native(const ScalarField& field, const std::string& path);

/// Read a native binary field. Throws std::runtime_error on bad files.
ScalarField read_native(const std::string& path);

}  // namespace vf::field
