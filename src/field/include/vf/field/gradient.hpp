#pragma once
// Finite-difference gradients of grid fields.
//
// The FCNN's output layer predicts the scalar value plus the x/y/z gradient
// at each void location (paper §III-D); the training targets come from the
// central-difference gradient of the full-resolution timestep computed here.

#include <array>

#include "vf/field/scalar_field.hpp"

namespace vf::field {

/// Three gradient component fields (d/dx, d/dy, d/dz) of the input.
struct GradientField {
  ScalarField dx;
  ScalarField dy;
  ScalarField dz;
};

/// Central differences in the interior, one-sided at the boundary faces.
/// Spacing-aware: derivatives are with respect to physical coordinates.
GradientField compute_gradient(const ScalarField& f);

/// Gradient at a single grid point (same stencils as compute_gradient).
std::array<double, 3> gradient_at(const ScalarField& f, int i, int j, int k);

}  // namespace vf::field
