#include "vf/field/native_io.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "vf/util/atomic_io.hpp"
#include "vf/util/fault.hpp"

namespace vf::field {

namespace {
// Version 1 ("VFB1"): unchecksummed header + raw values, kept readable.
// Version 2 ("VFB2"): atomic write, CRC-framed header and data sections,
// exact-size files — a torn write or bit flip throws at load.
constexpr char kMagicV1[4] = {'V', 'F', 'B', '1'};
constexpr char kMagicV2[4] = {'V', 'F', 'B', '2'};
constexpr std::uint32_t kVersion = 2;
constexpr std::uint32_t kMaxNameLen = 4096;

template <typename T>
void read_pod(std::istream& in, T& v) {
  in.read(reinterpret_cast<char*>(&v), sizeof v);
}

/// Validate header dims before any allocation: positive, non-overflowing,
/// and small enough that the value payload fits in the bytes actually left
/// in the file. A corrupt header must never drive a multi-GB resize.
std::int64_t checked_point_count(std::int32_t nx, std::int32_t ny,
                                 std::int32_t nz, std::uint64_t bytes_left,
                                 const std::string& path) {
  if (nx <= 0 || ny <= 0 || nz <= 0) {
    throw std::runtime_error("read_native: non-positive dims in " + path);
  }
  const std::int64_t count =
      static_cast<std::int64_t>(nx) * ny * nz;  // nx,ny,nz <= 2^31: no overflow in i64
  if (static_cast<std::uint64_t>(count) > bytes_left / sizeof(double)) {
    throw std::runtime_error(
        "read_native: header dims exceed file size (torn or corrupt) in " +
        path);
  }
  return count;
}

ScalarField read_native_v1(std::istream& in, const std::string& path) {
  std::int32_t nx = 0, ny = 0, nz = 0;
  read_pod(in, nx);
  read_pod(in, ny);
  read_pod(in, nz);
  Vec3 origin, spacing;
  read_pod(in, origin.x);
  read_pod(in, origin.y);
  read_pod(in, origin.z);
  read_pod(in, spacing.x);
  read_pod(in, spacing.y);
  read_pod(in, spacing.z);
  std::uint32_t name_len = 0;
  read_pod(in, name_len);
  if (!in || name_len > kMaxNameLen) {
    throw std::runtime_error("read_native: corrupt header in " + path);
  }
  std::string name(name_len, '\0');
  in.read(name.data(), name_len);
  if (!in) throw std::runtime_error("read_native: corrupt header in " + path);
  const std::int64_t count = checked_point_count(
      nx, ny, nz, vf::util::bytes_remaining(in), path);
  UniformGrid3 grid({nx, ny, nz}, origin, spacing);
  std::vector<double> values(static_cast<std::size_t>(count));
  in.read(reinterpret_cast<char*>(values.data()),
          static_cast<std::streamsize>(values.size() * sizeof(double)));
  if (!in) throw std::runtime_error("read_native: truncated data in " + path);
  vf::util::expect_eof(in, "read_native");
  return ScalarField(grid, std::move(values), name);
}

}  // namespace

void write_native(const ScalarField& field, const std::string& path) {
  const auto& g = field.grid();
  vf::util::ByteWriter header;
  header.pod(static_cast<std::int32_t>(g.dims().nx));
  header.pod(static_cast<std::int32_t>(g.dims().ny));
  header.pod(static_cast<std::int32_t>(g.dims().nz));
  header.pod(g.origin().x);
  header.pod(g.origin().y);
  header.pod(g.origin().z);
  header.pod(g.spacing().x);
  header.pod(g.spacing().y);
  header.pod(g.spacing().z);
  header.str(field.name());

  vf::util::atomic_write_file(path, [&](std::ostream& out) {
    out.write(kMagicV2, 4);
    const std::uint32_t version = kVersion;
    out.write(reinterpret_cast<const char*>(&version), sizeof version);
    vf::util::write_crc_section(out, header.data());
    // The value payload streams directly from the field's buffer — no
    // staging copy of the (possibly multi-hundred-MB) data section.
    vf::util::write_crc_section(out, field.values().data(),
                                static_cast<std::size_t>(field.size()) *
                                    sizeof(double));
  });
}

ScalarField read_native(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in || vf::util::fault::should_fail("native_read")) {
    throw std::runtime_error("read_native: cannot open " + path);
  }
  char magic[4];
  in.read(magic, 4);
  if (!in) throw std::runtime_error("read_native: truncated " + path);
  if (std::memcmp(magic, kMagicV1, 4) == 0) return read_native_v1(in, path);
  if (std::memcmp(magic, kMagicV2, 4) != 0) {
    throw std::runtime_error("read_native: bad magic in " + path);
  }
  std::uint32_t version = 0;
  read_pod(in, version);
  if (!in || version != kVersion) {
    throw std::runtime_error("read_native: unsupported version in " + path);
  }
  const std::string header = vf::util::read_crc_section(
      in, vf::util::bytes_remaining(in), "read_native");
  vf::util::ByteReader hdr(header, "read_native");
  const auto nx = hdr.pod<std::int32_t>();
  const auto ny = hdr.pod<std::int32_t>();
  const auto nz = hdr.pod<std::int32_t>();
  Vec3 origin, spacing;
  origin.x = hdr.pod<double>();
  origin.y = hdr.pod<double>();
  origin.z = hdr.pod<double>();
  spacing.x = hdr.pod<double>();
  spacing.y = hdr.pod<double>();
  spacing.z = hdr.pod<double>();
  const std::string name = hdr.str(kMaxNameLen);
  hdr.expect_end();

  const std::int64_t count = checked_point_count(
      nx, ny, nz, vf::util::bytes_remaining(in), path);
  UniformGrid3 grid({nx, ny, nz}, origin, spacing);
  std::vector<double> values(static_cast<std::size_t>(count));
  vf::util::read_crc_section_into(in, values.data(),
                                  values.size() * sizeof(double),
                                  "read_native");
  vf::util::expect_eof(in, "read_native");
  return ScalarField(grid, std::move(values), name);
}

}  // namespace vf::field
