#include "vf/field/native_io.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace vf::field {

namespace {
constexpr char kMagic[4] = {'V', 'F', 'B', '1'};

template <typename T>
void write_pod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
void read_pod(std::istream& in, T& v) {
  in.read(reinterpret_cast<char*>(&v), sizeof v);
}
}  // namespace

void write_native(const ScalarField& field, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("write_native: cannot open " + path);
  out.write(kMagic, 4);
  const auto& g = field.grid();
  write_pod(out, static_cast<std::int32_t>(g.dims().nx));
  write_pod(out, static_cast<std::int32_t>(g.dims().ny));
  write_pod(out, static_cast<std::int32_t>(g.dims().nz));
  write_pod(out, g.origin().x);
  write_pod(out, g.origin().y);
  write_pod(out, g.origin().z);
  write_pod(out, g.spacing().x);
  write_pod(out, g.spacing().y);
  write_pod(out, g.spacing().z);
  auto name_len = static_cast<std::uint32_t>(field.name().size());
  write_pod(out, name_len);
  out.write(field.name().data(), name_len);
  out.write(reinterpret_cast<const char*>(field.values().data()),
            static_cast<std::streamsize>(field.size() * sizeof(double)));
  if (!out) throw std::runtime_error("write_native: write failed for " + path);
}

ScalarField read_native(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("read_native: cannot open " + path);
  char magic[4];
  in.read(magic, 4);
  if (!in || std::memcmp(magic, kMagic, 4) != 0) {
    throw std::runtime_error("read_native: bad magic in " + path);
  }
  std::int32_t nx, ny, nz;
  read_pod(in, nx);
  read_pod(in, ny);
  read_pod(in, nz);
  Vec3 origin, spacing;
  read_pod(in, origin.x);
  read_pod(in, origin.y);
  read_pod(in, origin.z);
  read_pod(in, spacing.x);
  read_pod(in, spacing.y);
  read_pod(in, spacing.z);
  std::uint32_t name_len = 0;
  read_pod(in, name_len);
  if (!in || name_len > 4096) {
    throw std::runtime_error("read_native: corrupt header in " + path);
  }
  std::string name(name_len, '\0');
  in.read(name.data(), name_len);
  UniformGrid3 grid({nx, ny, nz}, origin, spacing);
  std::vector<double> values(static_cast<std::size_t>(grid.point_count()));
  in.read(reinterpret_cast<char*>(values.data()),
          static_cast<std::streamsize>(values.size() * sizeof(double)));
  if (!in) throw std::runtime_error("read_native: truncated data in " + path);
  return ScalarField(grid, std::move(values), name);
}

}  // namespace vf::field
