#include "vf/field/resample.hpp"

#include <stdexcept>

#include "vf/util/parallel.hpp"

namespace vf::field {

ScalarField resample_trilinear(const ScalarField& source,
                               const UniformGrid3& target_grid) {
  ScalarField out(target_grid, source.name());
  vf::util::parallel_for(0, target_grid.point_count(), [&](std::int64_t i) {
    out[i] = source.sample_trilinear(target_grid.position(i));
  });
  return out;
}

ScalarField downsample_average(const ScalarField& source, int factor) {
  if (factor < 1) {
    throw std::invalid_argument("downsample_average: factor must be >= 1");
  }
  const auto& d = source.grid().dims();
  if (d.nx % factor != 0 || d.ny % factor != 0 || d.nz % factor != 0) {
    throw std::invalid_argument(
        "downsample_average: dims must be divisible by factor");
  }
  Dims od{d.nx / factor, d.ny / factor, d.nz / factor};
  const auto& s = source.grid().spacing();
  UniformGrid3 ogrid(od, source.grid().origin(),
                     {s.x * factor, s.y * factor, s.z * factor});
  ScalarField out(ogrid, source.name());
  const double inv = 1.0 / (static_cast<double>(factor) * factor * factor);
  vf::util::parallel_for(0, od.nz, [&](std::int64_t kk) {
    int k = static_cast<int>(kk);
    for (int j = 0; j < od.ny; ++j) {
      for (int i = 0; i < od.nx; ++i) {
        double acc = 0.0;
        for (int dz = 0; dz < factor; ++dz)
          for (int dy = 0; dy < factor; ++dy)
            for (int dx = 0; dx < factor; ++dx)
              acc += source.at(i * factor + dx, j * factor + dy,
                               k * factor + dz);
        out.at(i, j, k) = acc * inv;
      }
    }
  }, /*grain=*/1);
  return out;
}

}  // namespace vf::field
