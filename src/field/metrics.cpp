#include "vf/field/metrics.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace vf::field {

namespace {

void check_compatible(const ScalarField& a, const ScalarField& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("metrics: field sizes differ");
  }
  if (a.size() == 0) {
    throw std::invalid_argument("metrics: empty fields");
  }
}

/// Population standard deviation of (a - b).
double noise_stddev(const ScalarField& a, const ScalarField& b) {
  const std::int64_t n = a.size();
  double mean = 0.0;
  for (std::int64_t i = 0; i < n; ++i) mean += a[i] - b[i];
  mean /= static_cast<double>(n);
  double var = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    double d = (a[i] - b[i]) - mean;
    var += d * d;
  }
  return std::sqrt(var / static_cast<double>(n));
}

}  // namespace

double snr_db(const ScalarField& original, const ScalarField& reconstruction) {
  check_compatible(original, reconstruction);
  double sigma_raw = original.stats().stddev;
  double sigma_noise = noise_stddev(original, reconstruction);
  if (sigma_noise == 0.0) return std::numeric_limits<double>::infinity();
  return 20.0 * std::log10(sigma_raw / sigma_noise);
}

double psnr_db(const ScalarField& original,
               const ScalarField& reconstruction) {
  check_compatible(original, reconstruction);
  auto s = original.stats();
  double range = s.max - s.min;
  double r = rmse(original, reconstruction);
  if (r == 0.0) return std::numeric_limits<double>::infinity();
  return 20.0 * std::log10(range / r);
}

double rmse(const ScalarField& original, const ScalarField& reconstruction) {
  check_compatible(original, reconstruction);
  const std::int64_t n = original.size();
  double acc = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    double d = original[i] - reconstruction[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(n));
}

double mae(const ScalarField& original, const ScalarField& reconstruction) {
  check_compatible(original, reconstruction);
  const std::int64_t n = original.size();
  double acc = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    acc += std::abs(original[i] - reconstruction[i]);
  }
  return acc / static_cast<double>(n);
}

double max_abs_error(const ScalarField& original,
                     const ScalarField& reconstruction) {
  check_compatible(original, reconstruction);
  const std::int64_t n = original.size();
  double mx = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    mx = std::max(mx, std::abs(original[i] - reconstruction[i]));
  }
  return mx;
}

}  // namespace vf::field
