#include "vf/field/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vf::field {

Histogram::Histogram(std::span<const double> values, int bins, double lo,
                     double hi)
    : counts_(static_cast<std::size_t>(std::max(bins, 1)), 0),
      lo_(lo),
      hi_(hi) {
  if (bins < 1) throw std::invalid_argument("Histogram: bins must be >= 1");
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must be > lo");
  const double scale = static_cast<double>(bins) / (hi - lo);
  for (double v : values) {
    int b = static_cast<int>((v - lo) * scale);
    b = std::clamp(b, 0, bins - 1);
    ++counts_[static_cast<std::size_t>(b)];
    ++total_;
  }
}

Histogram Histogram::of(const ScalarField& field, int bins) {
  auto s = field.stats();
  double hi = s.max > s.min ? s.max : s.min + 1.0;
  return Histogram(field.values(), bins, s.min, hi);
}

double Histogram::probability(int bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_[static_cast<std::size_t>(bin)]) /
         static_cast<double>(total_);
}

double Histogram::entropy_bits() const {
  double h = 0.0;
  for (int b = 0; b < bins(); ++b) {
    double p = probability(b);
    if (p > 0.0) h -= p * std::log2(p);
  }
  return h;
}

namespace {
void check_same_shape(const Histogram& p, const Histogram& q) {
  if (p.bins() != q.bins()) {
    throw std::invalid_argument("histogram distance: bin count mismatch");
  }
}
}  // namespace

double kl_divergence_bits(const Histogram& p, const Histogram& q,
                          double epsilon) {
  check_same_shape(p, q);
  double d = 0.0;
  for (int b = 0; b < p.bins(); ++b) {
    double pp = p.probability(b);
    if (pp <= 0.0) continue;
    double qq = std::max(q.probability(b), epsilon);
    d += pp * std::log2(pp / qq);
  }
  return d;
}

double emd(const Histogram& p, const Histogram& q) {
  check_same_shape(p, q);
  // Prefix-sum formulation of 1-D EMD on normalised histograms; bin width
  // is 1/bins of the range, so the result is range-relative.
  double carry = 0.0;
  double total = 0.0;
  for (int b = 0; b < p.bins(); ++b) {
    carry += p.probability(b) - q.probability(b);
    total += std::abs(carry);
  }
  return total / static_cast<double>(p.bins());
}

}  // namespace vf::field
