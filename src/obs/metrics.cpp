#include "vf/obs/metrics.hpp"

#include <cmath>
#include <ctime>

#include "vf/util/env.hpp"

namespace vf::obs {

namespace {

std::atomic<bool>& enabled_flag() {
  // First touch reads the VF_OBS environment switch; default on.
  static std::atomic<bool> flag{vf::util::env_bool("VF_OBS", true)};
  return flag;
}

}  // namespace

bool enabled() { return enabled_flag().load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  enabled_flag().store(on, std::memory_order_relaxed);
}

namespace detail {

std::size_t thread_shard() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  static_assert((kShards & (kShards - 1)) == 0, "kShards must be 2^n");
  return slot & (kShards - 1);
}

}  // namespace detail

std::size_t Histogram::bucket_index(double v) {
  if (!(v > 0.0)) return 0;  // zero, negatives, NaN
  // ilogb is floor(log2 v) for normal doubles; denormals and huge values
  // land in the clamp arms either way.
  const int e = std::ilogb(v);
  if (e < -29) return 1;
  if (e >= 32) return kBuckets - 1;
  return static_cast<std::size_t>(e + 31);
}

double Histogram::bucket_lower_bound(std::size_t b) {
  if (b == 0) return -std::numeric_limits<double>::infinity();
  if (b == 1) return 0.0;
  return std::ldexp(1.0, static_cast<int>(b) - 31);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  for (const auto& shard : shards_) {
    const std::uint64_t n = shard.count.load(std::memory_order_relaxed);
    if (n == 0) continue;
    snap.count += n;
    snap.sum += shard.sum.load(std::memory_order_relaxed);
    snap.min = std::min(snap.min, shard.min.load(std::memory_order_relaxed));
    snap.max = std::max(snap.max, shard.max.load(std::memory_order_relaxed));
    for (std::size_t b = 0; b < kBuckets; ++b) {
      snap.buckets[b] += shard.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return snap;
}

void Histogram::reset() {
  for (auto& shard : shards_) {
    for (auto& b : shard.buckets) b.store(0, std::memory_order_relaxed);
    shard.count.store(0, std::memory_order_relaxed);
    shard.sum.store(0.0, std::memory_order_relaxed);
    shard.min.store(std::numeric_limits<double>::infinity(),
                    std::memory_order_relaxed);
    shard.max.store(-std::numeric_limits<double>::infinity(),
                    std::memory_order_relaxed);
  }
}

Registry& Registry::instance() {
  // Immortal singleton: never destroyed, so instrumentation in other
  // static destructors and in lingering OpenMP pool threads stays valid at
  // process exit (running the Registry destructor there is also a TSan
  // report — the pool's last relaxed shard writes have no visible
  // happens-before edge to exit-time teardown). Still reachable through
  // this pointer, so LeakSanitizer does not flag it.
  static Registry* reg =
      new Registry();  // vf-lint: allow(naked-new) immortal singleton
  return *reg;
}

Counter& Registry::counter(const std::string& name) {
  const vf::util::MutexLock lock(mu_);
  return counters_[name];
}

Gauge& Registry::gauge(const std::string& name) {
  const vf::util::MutexLock lock(mu_);
  return gauges_[name];
}

Histogram& Registry::histogram(const std::string& name) {
  const vf::util::MutexLock lock(mu_);
  return histograms_[name];
}

Registry::MetricsSnapshot Registry::snapshot() {
  const vf::util::MutexLock lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.push_back({name, c.value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back({name, g.value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    snap.histograms.push_back({name, h.snapshot()});
  }
  return snap;
}

void Registry::reset_values() {
  const vf::util::MutexLock lock(mu_);
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, g] : gauges_) g.reset();
  for (auto& [name, h] : histograms_) h.reset();
}

Counter& counter(const std::string& name) {
  return Registry::instance().counter(name);
}

Gauge& gauge(const std::string& name) {
  return Registry::instance().gauge(name);
}

Histogram& histogram(const std::string& name) {
  return Registry::instance().histogram(name);
}

double process_cpu_seconds() {
#if defined(CLOCK_PROCESS_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
  }
#endif
  return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
}

}  // namespace vf::obs
