#include "vf/obs/span.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>

#include "json_util.hpp"
#include "vf/obs/metrics.hpp"
#include "vf/util/atomic_io.hpp"
#include "vf/util/mutex.hpp"
#include "vf/util/thread_annotations.hpp"
#include "vf/util/timer.hpp"

namespace vf::obs {

namespace {

/// Completed span as recorded: full nesting path plus raw timing.
struct SpanRecord {
  std::string path;
  double start_us = 0.0;
  double dur_us = 0.0;
  int depth = 0;
  int tid = 0;
};

/// Hard cap per thread so long benchmark loops cannot grow telemetry
/// without bound; overflow is counted, not silently ignored.
constexpr std::size_t kMaxRecordsPerThread = std::size_t{1} << 16;

struct ThreadBuffer {
  vf::util::Mutex mu{"obs.span.buffer"};
  int tid = 0;  // written once before publication to the collector
  /// Names of the open spans, outermost first.
  std::vector<std::string> stack VF_GUARDED_BY(mu);
  std::vector<SpanRecord> done VF_GUARDED_BY(mu);
  std::uint64_t dropped VF_GUARDED_BY(mu) = 0;
};

struct Collector {
  vf::util::Mutex mu{"obs.span.collector"};
  std::vector<std::shared_ptr<ThreadBuffer>> buffers VF_GUARDED_BY(mu);
  int next_tid VF_GUARDED_BY(mu) = 0;
};

Collector& collector() {
  // Immortal for the same reason as Registry::instance(): spans may close
  // during static destruction, and exit-time teardown while OpenMP pool
  // threads linger trips TSan. Reachable via this pointer => LSan-clean.
  static Collector* c =
      new Collector();  // vf-lint: allow(naked-new) immortal singleton
  return *c;
}

ThreadBuffer& local_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buf = [] {
    auto b = std::make_shared<ThreadBuffer>();
    auto& c = collector();
    const vf::util::MutexLock lock(c.mu);
    b->tid = c.next_tid++;
    c.buffers.push_back(b);
    return b;
  }();
  return *buf;
}

double now_us() {
  static const auto t0 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

std::string join_stack(const std::vector<std::string>& stack) {
  std::string path;
  for (const auto& seg : stack) {
    if (!path.empty()) path += '/';
    path += seg;
  }
  return path;
}

/// Merged copy of every thread's completed records, ordered by (tid, start)
/// so exports are deterministic for a deterministic run.
std::vector<SpanRecord> merged_records() {
  std::vector<SpanRecord> all;
  auto& c = collector();
  const vf::util::MutexLock lock(c.mu);
  for (const auto& buf : c.buffers) {
    const vf::util::MutexLock buf_lock(buf->mu);
    all.insert(all.end(), buf->done.begin(), buf->done.end());
  }
  std::sort(all.begin(), all.end(), [](const SpanRecord& a, const SpanRecord& b) {
    if (a.tid != b.tid) return a.tid < b.tid;
    return a.start_us < b.start_us;
  });
  return all;
}

}  // namespace

Span::Span(const char* name) {
  if (!enabled()) return;
  auto& buf = local_buffer();
  const vf::util::MutexLock lock(buf.mu);
  buf.stack.emplace_back(name);
  start_us_ = now_us();
  active_ = true;
}

Span::~Span() {
  if (!active_) return;
  const double end_us = now_us();
  auto& buf = local_buffer();
  const vf::util::MutexLock lock(buf.mu);
  SpanRecord rec;
  rec.path = join_stack(buf.stack);
  rec.depth = static_cast<int>(buf.stack.size()) - 1;
  rec.start_us = start_us_;
  rec.dur_us = end_us - start_us_;
  rec.tid = buf.tid;
  buf.stack.pop_back();
  if (buf.done.size() < kMaxRecordsPerThread) {
    buf.done.push_back(std::move(rec));
  } else {
    ++buf.dropped;
  }
}

std::vector<SpanAggregate> span_aggregates() {
  std::map<std::string, SpanAggregate> by_path;
  for (const auto& rec : merged_records()) {
    auto& agg = by_path[rec.path];
    if (agg.count == 0) {
      agg.path = rec.path;
      agg.depth = rec.depth;
    }
    ++agg.count;
    agg.total_seconds += rec.dur_us * 1e-6;
  }
  std::vector<SpanAggregate> out;
  out.reserve(by_path.size());
  for (auto& [path, agg] : by_path) out.push_back(std::move(agg));
  return out;
}

std::string trace_summary() {
  const auto aggs = span_aggregates();
  if (aggs.empty()) return {};
  std::string out = "trace spans (wall clock):\n";
  for (const auto& agg : aggs) {
    const std::size_t cut = agg.path.rfind('/');
    const std::string leaf =
        cut == std::string::npos ? agg.path : agg.path.substr(cut + 1);
    out.append(2 + 2 * static_cast<std::size_t>(agg.depth), ' ');
    out += leaf;
    out += ": ";
    out += vf::util::format_duration(agg.total_seconds);
    if (agg.count > 1) {
      out += " (" + std::to_string(agg.count) + "x, avg " +
             vf::util::format_duration(agg.total_seconds /
                                       static_cast<double>(agg.count)) +
             ")";
    }
    out += '\n';
  }
  return out;
}

std::string chrome_trace_json() {
  std::string out = "{\"traceEvents\": [";
  bool first = true;
  for (const auto& rec : merged_records()) {
    if (!first) out += ',';
    first = false;
    const std::size_t cut = rec.path.rfind('/');
    const std::string leaf =
        cut == std::string::npos ? rec.path : rec.path.substr(cut + 1);
    out += "\n  {\"name\": " + detail::json_string(leaf) +
           ", \"cat\": \"vf\", \"ph\": \"X\", \"ts\": " +
           detail::json_number(rec.start_us) +
           ", \"dur\": " + detail::json_number(rec.dur_us) +
           ", \"pid\": 1, \"tid\": " +
           detail::json_number(static_cast<std::int64_t>(rec.tid)) +
           ", \"args\": {\"path\": " + detail::json_string(rec.path) + "}}";
  }
  out += "\n], \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

void write_chrome_trace(const std::string& path) {
  const std::string json = chrome_trace_json();
  vf::util::atomic_write_file(path,
                              [&](std::ostream& out) { out << json; });
}

std::uint64_t dropped_spans() {
  std::uint64_t total = 0;
  auto& c = collector();
  const vf::util::MutexLock lock(c.mu);
  for (const auto& buf : c.buffers) {
    const vf::util::MutexLock buf_lock(buf->mu);
    total += buf->dropped;
  }
  return total;
}

void reset_spans() {
  auto& c = collector();
  const vf::util::MutexLock lock(c.mu);
  for (const auto& buf : c.buffers) {
    const vf::util::MutexLock buf_lock(buf->mu);
    buf->done.clear();
    buf->dropped = 0;
  }
}

}  // namespace vf::obs
