#pragma once
// Process-wide metrics registry: counters, gauges, and histograms with
// fixed log-scale buckets.
//
// Thread safety is sharding, not locking: every counter/histogram holds a
// small array of cacheline-padded shards, a thread picks its shard by a
// stable thread-local slot, and writes are relaxed atomic adds into that
// shard. Readers merge the shards, so a snapshot taken mid-run is a
// consistent-enough view for telemetry (never torn, possibly a few
// increments stale) at zero cost to the writers.
//
// Naming convention (see DESIGN.md §8): dot-separated lowercase
// `subsystem.noun[.qualifier]`, e.g. `nn.gemm.flops`,
// `core.reconstruct.degraded_points`, `nn.train.epoch_seconds`.
// Instrument call sites through the VF_OBS_* macros in vf/obs/obs.hpp so
// the layer compiles out with -DVF_OBS=OFF.

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "vf/util/mutex.hpp"
#include "vf/util/thread_annotations.hpp"

namespace vf::obs {

/// Runtime master switch. Defaults to the VF_OBS environment variable
/// (enabled when unset). Disabled instrumentation costs one relaxed atomic
/// load and a branch per call site.
[[nodiscard]] bool enabled();
void set_enabled(bool on);

namespace detail {

constexpr std::size_t kShards = 16;  // power of two, indexed by thread slot

/// Stable per-thread shard index: threads grab the next slot on first use,
/// folded into the shard count. OpenMP pool threads keep their slot for the
/// process lifetime, so contention only appears past kShards live threads.
[[nodiscard]] std::size_t thread_shard();

/// Relaxed atomic add for doubles via compare-exchange (fetch_add on
/// atomic<double> is C++20-library-dependent; this is portable).
inline void atomic_add(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

inline void atomic_min(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

inline void atomic_max(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace detail

/// Monotonic event count. add() is wait-free (one relaxed fetch_add into
/// the caller's shard); value() merges the shards.
class Counter {
 public:
  void add(std::int64_t n) {
    shards_[detail::thread_shard()].v.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const {
    std::int64_t sum = 0;
    for (const auto& s : shards_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  friend class Registry;
  void reset() {
    for (auto& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

  struct alignas(64) Shard {
    std::atomic<std::int64_t> v{0};
  };
  std::array<Shard, detail::kShards> shards_{};
};

/// Last-write-wins scalar (e.g. `nn.train.last_loss`).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

  std::atomic<double> v_{0.0};
};

/// Distribution with fixed base-2 log-scale buckets.
///
/// Bucket layout (identical for every histogram, so records from different
/// runs line up):
///   bucket 0                 v <= 0 (and NaN)
///   bucket 1                 0 < v < 2^-29   (positive underflow, ~1.9e-9)
///   bucket b in [2, 62]      2^(b-31) <= v < 2^(b-30)
///   bucket 63                v >= 2^32
/// Seconds, bytes, and row counts all fit this range comfortably.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  [[nodiscard]] static std::size_t bucket_index(double v);
  /// Inclusive lower edge of bucket `b` (-inf for 0, 0 for 1).
  [[nodiscard]] static double bucket_lower_bound(std::size_t b);

  void record(double v) {
    auto& shard = shards_[detail::thread_shard()];
    shard.buckets[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    shard.count.fetch_add(1, std::memory_order_relaxed);
    detail::atomic_add(shard.sum, v);
    detail::atomic_min(shard.min, v);
    detail::atomic_max(shard.max, v);
  }

  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
    std::array<std::uint64_t, kBuckets> buckets{};

    [[nodiscard]] double mean() const {
      return count > 0 ? sum / static_cast<double>(count) : 0.0;
    }
  };
  [[nodiscard]] Snapshot snapshot() const;

 private:
  friend class Registry;
  void reset();

  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> min{std::numeric_limits<double>::infinity()};
    std::atomic<double> max{-std::numeric_limits<double>::infinity()};
  };
  std::array<Shard, detail::kShards> shards_{};
};

/// Process-wide name -> metric table. Lookup takes a mutex; handles are
/// stable for the process lifetime, so hot call sites resolve once (the
/// VF_OBS_* macros cache the reference in a function-local static).
class Registry {
 public:
  static Registry& instance();

  Counter& counter(const std::string& name) VF_EXCLUDES(mu_);
  Gauge& gauge(const std::string& name) VF_EXCLUDES(mu_);
  Histogram& histogram(const std::string& name) VF_EXCLUDES(mu_);

  struct CounterEntry {
    std::string name;
    std::int64_t value;
  };
  struct GaugeEntry {
    std::string name;
    double value;
  };
  struct HistogramEntry {
    std::string name;
    Histogram::Snapshot snapshot;
  };
  struct MetricsSnapshot {
    std::vector<CounterEntry> counters;    // sorted by name
    std::vector<GaugeEntry> gauges;        // sorted by name
    std::vector<HistogramEntry> histograms;  // sorted by name
  };
  [[nodiscard]] MetricsSnapshot snapshot() VF_EXCLUDES(mu_);

  /// Zero every metric's value (handles stay valid). Test isolation only.
  void reset_values() VF_EXCLUDES(mu_);

 private:
  Registry() = default;

  vf::util::Mutex mu_{"obs.metrics"};
  // node-based maps: addresses handed out stay stable across inserts.
  std::map<std::string, Counter> counters_ VF_GUARDED_BY(mu_);
  std::map<std::string, Gauge> gauges_ VF_GUARDED_BY(mu_);
  std::map<std::string, Histogram> histograms_ VF_GUARDED_BY(mu_);
};

/// Shorthands for Registry::instance().
Counter& counter(const std::string& name);
Gauge& gauge(const std::string& name);
Histogram& histogram(const std::string& name);

/// RAII wall-clock timer that records its scope's duration (seconds) into
/// a histogram on destruction. The preferred way to time hot paths — see
/// the vf_lint `raw-timer` rule.
class ScopedHistTimer {
 public:
  explicit ScopedHistTimer(const char* name)
      : hist_(enabled() ? &histogram(name) : nullptr),
        start_(std::chrono::steady_clock::now()) {}
  ~ScopedHistTimer() {
    if (hist_ == nullptr) return;
    hist_->record(std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start_)
                      .count());
  }
  ScopedHistTimer(const ScopedHistTimer&) = delete;
  ScopedHistTimer& operator=(const ScopedHistTimer&) = delete;

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

/// CPU time consumed by the whole process (all threads), in seconds.
[[nodiscard]] double process_cpu_seconds();

}  // namespace vf::obs
