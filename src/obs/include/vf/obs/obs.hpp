#pragma once
// vf::obs umbrella: instrumentation macros and the metrics JSON exporter.
//
// Instrument code through these macros, never by calling the registry
// directly from hot paths:
//
//   VF_OBS_SPAN("inference");                    // RAII trace span (names
//                                                // are single path segments;
//                                                // nesting adds the '/')
//   VF_OBS_COUNT("nn.gemm.calls", 1);            // counter += n
//   VF_OBS_GAUGE("nn.train.last_loss", loss);    // gauge = v
//   VF_OBS_HIST("core.batch.tile_seconds", s);   // histogram.record(v)
//   VF_OBS_HIST_TIMER("nn.train.epoch_seconds"); // RAII scope timer -> hist
//
// Two switches:
//   compile time — the VF_OBS CMake option (default ON) defines
//       VF_OBS_ENABLED; with -DVF_OBS=OFF every macro expands to nothing
//       and instrumented code carries zero overhead.
//   runtime     — vf::obs::set_enabled() / the VF_OBS environment variable;
//       when off, each macro costs one relaxed atomic load and a branch.

#include "vf/obs/bench_recorder.hpp"
#include "vf/obs/metrics.hpp"
#include "vf/obs/span.hpp"

namespace vf::obs {

/// The full metrics state — counters, gauges, histogram snapshots, and the
/// aggregated span tree — as one versioned JSON document ("vf-metrics").
[[nodiscard]] std::string metrics_json();

/// Atomically write metrics_json() to `path` (vfctl --metrics-out).
void write_metrics_json(const std::string& path);

}  // namespace vf::obs

#ifndef VF_OBS_ENABLED
#define VF_OBS_ENABLED 1
#endif

#if VF_OBS_ENABLED

#define VF_OBS_CONCAT_INNER(a, b) a##b
#define VF_OBS_CONCAT(a, b) VF_OBS_CONCAT_INNER(a, b)

#define VF_OBS_SPAN(name) \
  const ::vf::obs::Span VF_OBS_CONCAT(vf_obs_span_, __LINE__)(name)

#define VF_OBS_HIST_TIMER(name) \
  const ::vf::obs::ScopedHistTimer VF_OBS_CONCAT(vf_obs_ht_, __LINE__)(name)

// The function-local static resolves the registry lookup once per call
// site; afterwards a hit is one relaxed atomic op on a per-thread shard.
#define VF_OBS_COUNT(name, n)                                       \
  do {                                                              \
    if (::vf::obs::enabled()) {                                     \
      static ::vf::obs::Counter& vf_obs_counter_ref =               \
          ::vf::obs::counter(name);                                 \
      vf_obs_counter_ref.add(static_cast<std::int64_t>(n));         \
    }                                                               \
  } while (false)

#define VF_OBS_GAUGE(name, v)                                       \
  do {                                                              \
    if (::vf::obs::enabled()) {                                     \
      static ::vf::obs::Gauge& vf_obs_gauge_ref =                   \
          ::vf::obs::gauge(name);                                   \
      vf_obs_gauge_ref.set(static_cast<double>(v));                 \
    }                                                               \
  } while (false)

#define VF_OBS_HIST(name, v)                                        \
  do {                                                              \
    if (::vf::obs::enabled()) {                                     \
      static ::vf::obs::Histogram& vf_obs_hist_ref =                \
          ::vf::obs::histogram(name);                               \
      vf_obs_hist_ref.record(static_cast<double>(v));               \
    }                                                               \
  } while (false)

#else  // VF_OBS_ENABLED == 0: instrumentation compiles out entirely.

#define VF_OBS_SPAN(name) \
  do {                    \
  } while (false)
#define VF_OBS_HIST_TIMER(name) \
  do {                          \
  } while (false)
#define VF_OBS_COUNT(name, n) \
  do {                        \
  } while (false)
#define VF_OBS_GAUGE(name, v) \
  do {                        \
  } while (false)
#define VF_OBS_HIST(name, v) \
  do {                       \
  } while (false)

#endif  // VF_OBS_ENABLED
