#pragma once
// RAII trace spans with nesting.
//
// A Span marks the wall-clock extent of one phase on one thread. Spans nest
// lexically: a span opened while another is active on the same thread
// becomes its child, and the recorded path is the '/'-joined stack
// ("reconstruct/batch", "reconstruct/inference"). Completed spans collect
// into per-thread buffers merged on export, so instrumentation inside
// OpenMP regions is safe and contention-free.
//
// Two export shapes:
//   trace_summary()      — human-readable aggregated tree (count/total/mean
//                          per path), printed by vfctl on exit.
//   chrome_trace_json()  — chrome://tracing / Perfetto "traceEvents" JSON
//                          of every individual span, written by
//                          write_chrome_trace() for --trace-out.
//
// Span names are path segments: lowercase, '_' between words, '/' reserved
// for nesting (DESIGN.md §8). Create spans through VF_OBS_SPAN so the layer
// compiles out with -DVF_OBS=OFF.

#include <cstdint>
#include <string>
#include <vector>

namespace vf::obs {

class Span {
 public:
  /// Opens a span named `name` (copied; any lifetime is fine). No-op when
  /// runtime observability is disabled at construction time.
  explicit Span(const char* name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  bool active_ = false;
  double start_us_ = 0.0;
};

/// One aggregated row of the span tree.
struct SpanAggregate {
  std::string path;      // '/'-joined nesting path
  int depth = 0;         // path segments - 1
  std::uint64_t count = 0;
  double total_seconds = 0.0;
};

/// Completed spans aggregated by path, sorted by path (parents sort before
/// their children, so the result reads as a tree).
[[nodiscard]] std::vector<SpanAggregate> span_aggregates();

/// Human-readable indented tree of span_aggregates(); empty string when no
/// spans completed.
[[nodiscard]] std::string trace_summary();

/// chrome://tracing JSON ("traceEvents" array of X events, ts/dur in
/// microseconds since process start).
[[nodiscard]] std::string chrome_trace_json();

/// Atomically write chrome_trace_json() to `path`.
void write_chrome_trace(const std::string& path);

/// Spans dropped because a thread buffer hit its cap (telemetry must never
/// grow without bound).
[[nodiscard]] std::uint64_t dropped_spans();

/// Discard every recorded span. Test isolation only.
void reset_spans();

}  // namespace vf::obs
