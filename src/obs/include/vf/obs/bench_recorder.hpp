#pragma once
// Machine-readable benchmark run records.
//
// A BenchRecorder captures one benchmark run — who/where (git SHA, build
// flags, thread count), per-phase wall/CPU time with items and bytes
// processed, plus a flat map of named headline metrics — and emits it as
// versioned JSON ("vf-bench-record", schema_version below). The CI
// perf-regression lane compares the metrics map of a fresh run against
// bench_baselines/ci_baseline.json (tools/compare_perf.py); schema changes
// must bump kSchemaVersion and update that comparator.
//
// The git SHA is read from $VF_GIT_SHA, falling back to $GITHUB_SHA and
// then "unknown" — recorders never shell out.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace vf::obs {

/// One measured phase of a benchmark run. Rates are derived at write time
/// (items or bytes of 0 simply omit the rate).
struct BenchPhase {
  std::string name;
  double wall_seconds = 0.0;
  double cpu_seconds = 0.0;
  double items = 0.0;  // problem-specific unit: points, FLOPs, rows, ...
  double bytes = 0.0;
};

class BenchRecorder {
 public:
  static constexpr int kSchemaVersion = 1;

  explicit BenchRecorder(std::string run_name);

  void add_phase(const BenchPhase& phase);

  /// RAII phase: measures wall + process-CPU time from construction to
  /// destruction and appends the phase to the recorder.
  class ScopedPhase {
   public:
    ScopedPhase(BenchRecorder& rec, std::string name);
    ~ScopedPhase();
    ScopedPhase(const ScopedPhase&) = delete;
    ScopedPhase& operator=(const ScopedPhase&) = delete;

    void set_items(double items) { phase_.items = items; }
    void set_bytes(double bytes) { phase_.bytes = bytes; }

   private:
    BenchRecorder& rec_;
    BenchPhase phase_;
    double wall_start_us_;
    double cpu_start_;
  };
  [[nodiscard]] ScopedPhase phase(std::string name) {
    return {*this, std::move(name)};
  }

  /// Headline metric tracked by the CI comparator (higher is better:
  /// GFLOP/s, points/s, ...).
  void set_metric(const std::string& name, double value);

  [[nodiscard]] const std::vector<BenchPhase>& phases() const {
    return phases_;
  }
  [[nodiscard]] const std::map<std::string, double>& metrics() const {
    return metrics_;
  }

  /// The full versioned record as a JSON document (deterministic key
  /// order, trailing newline).
  [[nodiscard]] std::string to_json() const;

  /// Atomically write to_json() to `path`.
  void write(const std::string& path) const;

 private:
  std::string name_;
  std::string git_sha_;
  std::int64_t unix_time_ = 0;
  int threads_ = 1;
  std::vector<BenchPhase> phases_;
  std::map<std::string, double> metrics_;
};

}  // namespace vf::obs
