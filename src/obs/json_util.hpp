#pragma once
// Internal minimal JSON emission helpers shared by the vf::obs exporters
// (metrics JSON, chrome traces, bench records). Not installed; writers
// build documents by hand so key order is deterministic and schema tests
// can diff output byte-for-byte.

#include <cmath>
#include <cstdio>
#include <string>

namespace vf::obs::detail {

/// JSON string literal (quotes included) with the mandatory escapes.
inline std::string json_string(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

/// JSON number; non-finite doubles have no JSON spelling and become null.
inline std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return buf;
}

inline std::string json_number(std::int64_t v) {
  return std::to_string(v);
}

inline std::string json_number(std::uint64_t v) {
  return std::to_string(v);
}

inline std::string json_bool(bool v) { return v ? "true" : "false"; }

}  // namespace vf::obs::detail
