#include "vf/obs/obs.hpp"

#include "json_util.hpp"
#include "vf/util/atomic_io.hpp"

namespace vf::obs {

std::string metrics_json() {
  using detail::json_number;
  using detail::json_string;

  const auto metrics = Registry::instance().snapshot();
  const auto spans = span_aggregates();

  std::string out = "{\n";
  out += "  \"schema\": \"vf-metrics\",\n";
  out += "  \"schema_version\": 1,\n";

  out += "  \"counters\": {";
  bool first = true;
  for (const auto& c : metrics.counters) {
    if (!first) out += ',';
    first = false;
    out += "\n    " + json_string(c.name) + ": " + json_number(c.value);
  }
  out += metrics.counters.empty() ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  first = true;
  for (const auto& g : metrics.gauges) {
    if (!first) out += ',';
    first = false;
    out += "\n    " + json_string(g.name) + ": " + json_number(g.value);
  }
  out += metrics.gauges.empty() ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  first = true;
  for (const auto& h : metrics.histograms) {
    if (!first) out += ',';
    first = false;
    const auto& snap = h.snapshot;
    out += "\n    " + json_string(h.name) +
           ": {\"count\": " + json_number(snap.count) +
           ", \"sum\": " + json_number(snap.sum) +
           ", \"mean\": " + json_number(snap.mean()) +
           ", \"min\": " + json_number(snap.count > 0 ? snap.min : 0.0) +
           ", \"max\": " + json_number(snap.count > 0 ? snap.max : 0.0) +
           ", \"buckets\": [";
    // Sparse bucket encoding: only non-empty buckets, keyed by their
    // inclusive lower edge. Fixed edges mean records always line up.
    bool bfirst = true;
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      if (snap.buckets[b] == 0) continue;
      if (!bfirst) out += ", ";
      bfirst = false;
      out += "{\"ge\": " + json_number(Histogram::bucket_lower_bound(b)) +
             ", \"count\": " + json_number(snap.buckets[b]) + "}";
    }
    out += "]}";
  }
  out += metrics.histograms.empty() ? "},\n" : "\n  },\n";

  out += "  \"spans\": [";
  first = true;
  for (const auto& s : spans) {
    if (!first) out += ',';
    first = false;
    out += "\n    {\"path\": " + json_string(s.path) +
           ", \"depth\": " + json_number(static_cast<std::int64_t>(s.depth)) +
           ", \"count\": " + json_number(s.count) +
           ", \"total_seconds\": " + json_number(s.total_seconds) +
           ", \"mean_seconds\": " +
           json_number(s.count > 0
                           ? s.total_seconds / static_cast<double>(s.count)
                           : 0.0) +
           "}";
  }
  out += spans.empty() ? "],\n" : "\n  ],\n";

  out += "  \"dropped_spans\": " + json_number(dropped_spans()) + "\n";
  out += "}\n";
  return out;
}

void write_metrics_json(const std::string& path) {
  const std::string json = metrics_json();
  vf::util::atomic_write_file(path,
                              [&](std::ostream& out) { out << json; });
}

}  // namespace vf::obs
