#include "vf/obs/bench_recorder.hpp"

#include <chrono>

#include <omp.h>

#include "json_util.hpp"
#include "vf/obs/metrics.hpp"
#include "vf/util/atomic_io.hpp"
#include "vf/util/env.hpp"

// Build metadata stamped in by src/obs/CMakeLists.txt; fall back so
// non-CMake consumers of the sources still compile.
#ifndef VF_OBS_BUILD_TYPE
#define VF_OBS_BUILD_TYPE "unknown"
#endif
#ifndef VF_OBS_COMPILER
#define VF_OBS_COMPILER "unknown"
#endif
#ifndef VF_OBS_NATIVE_ARCH
#define VF_OBS_NATIVE_ARCH 0
#endif
#ifndef VF_OBS_ENABLED
#define VF_OBS_ENABLED 1
#endif

namespace vf::obs {

namespace {

double steady_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

BenchRecorder::BenchRecorder(std::string run_name)
    : name_(std::move(run_name)),
      git_sha_(vf::util::env_string(
          "VF_GIT_SHA", vf::util::env_string("GITHUB_SHA", "unknown"))),
      unix_time_(std::chrono::duration_cast<std::chrono::seconds>(
                     std::chrono::system_clock::now().time_since_epoch())
                     .count()),
      threads_(omp_get_max_threads()) {}

void BenchRecorder::add_phase(const BenchPhase& phase) {
  phases_.push_back(phase);
}

BenchRecorder::ScopedPhase::ScopedPhase(BenchRecorder& rec, std::string name)
    : rec_(rec),
      wall_start_us_(steady_us()),
      cpu_start_(process_cpu_seconds()) {
  phase_.name = std::move(name);
}

BenchRecorder::ScopedPhase::~ScopedPhase() {
  phase_.wall_seconds = (steady_us() - wall_start_us_) * 1e-6;
  phase_.cpu_seconds = process_cpu_seconds() - cpu_start_;
  rec_.add_phase(phase_);
}

void BenchRecorder::set_metric(const std::string& name, double value) {
  metrics_[name] = value;
}

std::string BenchRecorder::to_json() const {
  using detail::json_bool;
  using detail::json_number;
  using detail::json_string;

  std::string out = "{\n";
  out += "  \"schema\": \"vf-bench-record\",\n";
  out += "  \"schema_version\": " +
         json_number(static_cast<std::int64_t>(kSchemaVersion)) + ",\n";
  out += "  \"name\": " + json_string(name_) + ",\n";
  out += "  \"git_sha\": " + json_string(git_sha_) + ",\n";
  out += "  \"unix_time\": " + json_number(unix_time_) + ",\n";
  out += "  \"build\": {\"build_type\": " + json_string(VF_OBS_BUILD_TYPE) +
         ", \"compiler\": " + json_string(VF_OBS_COMPILER) +
         ", \"native_arch\": " + json_bool(VF_OBS_NATIVE_ARCH != 0) +
         ", \"obs_compiled\": " + json_bool(VF_OBS_ENABLED != 0) + "},\n";
  out += "  \"threads\": " + json_number(static_cast<std::int64_t>(threads_)) +
         ",\n";

  out += "  \"phases\": [";
  bool first = true;
  for (const auto& p : phases_) {
    if (!first) out += ',';
    first = false;
    out += "\n    {\"name\": " + json_string(p.name) +
           ", \"wall_seconds\": " + json_number(p.wall_seconds) +
           ", \"cpu_seconds\": " + json_number(p.cpu_seconds);
    if (p.items > 0.0) {
      out += ", \"items\": " + json_number(p.items);
      if (p.wall_seconds > 0.0) {
        out += ", \"items_per_second\": " +
               json_number(p.items / p.wall_seconds);
      }
    }
    if (p.bytes > 0.0) {
      out += ", \"bytes\": " + json_number(p.bytes);
      if (p.wall_seconds > 0.0) {
        out += ", \"bytes_per_second\": " +
               json_number(p.bytes / p.wall_seconds);
      }
    }
    out += "}";
  }
  out += phases_.empty() ? "],\n" : "\n  ],\n";

  out += "  \"metrics\": {";
  first = true;
  for (const auto& [name, value] : metrics_) {
    if (!first) out += ',';
    first = false;
    out += "\n    " + json_string(name) + ": " + json_number(value);
  }
  out += metrics_.empty() ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

void BenchRecorder::write(const std::string& path) const {
  const std::string json = to_json();
  vf::util::atomic_write_file(path,
                              [&](std::ostream& out) { out << json; });
}

}  // namespace vf::obs
