#include "vf/util/cli.hpp"

#include <cstdlib>

namespace vf::util {

Cli::Cli(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positionals_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    auto eq = arg.find('=');
    if (eq != std::string_view::npos) {
      options_.emplace(std::string(arg.substr(0, eq)),
                       std::string(arg.substr(eq + 1)));
      continue;
    }
    // `--name value` if the next token is not itself an option; otherwise a
    // bare flag.
    if (i + 1 < argc && std::string_view(argv[i + 1]).rfind("--", 0) != 0) {
      options_.emplace(std::string(arg), argv[i + 1]);
      ++i;
    } else {
      options_.emplace(std::string(arg), "");
    }
  }
}

bool Cli::has(std::string_view name) const {
  return options_.find(std::string(name)) != options_.end();
}

bool Cli::canonicalize(std::string_view old_name, std::string_view canonical) {
  auto it = options_.find(std::string(old_name));
  if (it == options_.end()) return false;
  options_.try_emplace(std::string(canonical), it->second);
  options_.erase(it);
  return true;
}

std::string Cli::get(std::string_view name, std::string fallback) const {
  auto it = options_.find(std::string(name));
  return it == options_.end() ? fallback : it->second;
}

int Cli::get_int(std::string_view name, int fallback) const {
  auto it = options_.find(std::string(name));
  if (it == options_.end() || it->second.empty()) return fallback;
  return std::atoi(it->second.c_str());
}

double Cli::get_double(std::string_view name, double fallback) const {
  auto it = options_.find(std::string(name));
  if (it == options_.end() || it->second.empty()) return fallback;
  return std::atof(it->second.c_str());
}

bool Cli::get_bool(std::string_view name, bool fallback) const {
  auto it = options_.find(std::string(name));
  if (it == options_.end()) return fallback;
  if (it->second.empty()) return true;  // bare flag
  return it->second == "1" || it->second == "true" || it->second == "yes" ||
         it->second == "on";
}

}  // namespace vf::util
