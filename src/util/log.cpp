#include "vf/util/log.hpp"

#include <atomic>
#include <cstdio>

namespace vf::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Info};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info ";
    case LogLevel::Warn: return "warn ";
    case LogLevel::Error: return "error";
    default: return "?";
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void logf(LogLevel level, const char* fmt, ...) {
  if (level < g_level.load()) return;
  std::va_list args;
  va_start(args, fmt);
  std::fprintf(stderr, "[vf %s] ", level_tag(level));
  std::vfprintf(stderr, fmt, args);
  std::fputc('\n', stderr);
  va_end(args);
}

}  // namespace vf::util
