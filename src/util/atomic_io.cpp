#include "vf/util/atomic_io.hpp"

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include <fcntl.h>
#include <unistd.h>

#include "vf/util/fault.hpp"

namespace vf::util {

namespace {

const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1u) : c >> 1u;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

/// fsync the file at `path` via a short-lived descriptor (ofstream cannot
/// fsync). Returns false on open/fsync failure.
bool fsync_path(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);  // NOLINT(cppcoreguidelines-pro-type-vararg,hicpp-vararg)
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

/// Best-effort fsync of the directory containing `path`, so the rename
/// itself is durable. Failure is ignored: the data file is already synced
/// and some filesystems reject directory fsync.
void fsync_parent_dir(const std::string& path) {
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  const std::string dir = parent.empty() ? "." : parent.string();
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);  // NOLINT(cppcoreguidelines-pro-type-vararg,hicpp-vararg)
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t len, std::uint32_t seed) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  const auto& table = crc_table();
  for (std::size_t i = 0; i < len; ++i) {
    c = table[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8u);
  }
  return c ^ 0xFFFFFFFFu;
}

void atomic_write_file(const std::string& path,
                       const std::function<void(std::ostream&)>& writer) {
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  // Remove the temp on every exit path; harmless when the rename won.
  struct TmpGuard {
    const std::string& tmp;
    ~TmpGuard() {
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
    }
  } guard{tmp};

  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);  // vf-lint: allow(raw-ofstream) the atomic-write implementation itself
    if (!out || fault::should_fail("atomic_open")) {
      throw std::runtime_error("atomic_write_file: cannot open temp for " +
                               path);
    }
    writer(out);
    out.flush();
    if (!out) {
      throw std::runtime_error("atomic_write_file: write failed for " + path);
    }
    if (fault::fire("atomic_write") == fault::Mode::ShortWrite) {
      // Injected torn write: truncate the temp to half and fail as a crash
      // mid-write would. The destination must remain untouched.
      out.close();
      std::error_code ec;
      const auto size = std::filesystem::file_size(tmp, ec);
      if (!ec) std::filesystem::resize_file(tmp, size / 2, ec);
      throw std::runtime_error("atomic_write_file: short write for " + path);
    }
  }
  if (!fsync_path(tmp) || fault::should_fail("atomic_fsync")) {
    throw std::runtime_error("atomic_write_file: fsync failed for " + path);
  }
  if (fault::should_fail("atomic_rename") ||
      std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("atomic_write_file: rename failed for " + path +
                             ": " + std::strerror(errno));
  }
  fsync_parent_dir(path);
}

void write_crc_section(std::ostream& out, const std::string& payload) {
  const auto size = static_cast<std::uint64_t>(payload.size());
  out.write(reinterpret_cast<const char*>(&size), sizeof size);
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  const std::uint32_t crc = crc32(payload.data(), payload.size());
  out.write(reinterpret_cast<const char*>(&crc), sizeof crc);
}

std::string read_crc_section(std::istream& in, std::uint64_t max_size,
                             const char* what) {
  std::uint64_t size = 0;
  in.read(reinterpret_cast<char*>(&size), sizeof size);
  if (!in || size > max_size) {
    throw std::runtime_error(std::string(what) +
                             ": corrupt section size (torn or tampered file)");
  }
  std::string payload(static_cast<std::size_t>(size), '\0');
  in.read(payload.data(), static_cast<std::streamsize>(size));
  std::uint32_t stored = 0;
  in.read(reinterpret_cast<char*>(&stored), sizeof stored);
  if (!in) {
    throw std::runtime_error(std::string(what) + ": truncated section");
  }
  if (crc32(payload.data(), payload.size()) != stored) {
    throw std::runtime_error(std::string(what) + ": section checksum mismatch");
  }
  return payload;
}

void write_crc_section(std::ostream& out, const void* data, std::size_t len) {
  const auto size = static_cast<std::uint64_t>(len);
  out.write(reinterpret_cast<const char*>(&size), sizeof size);
  out.write(static_cast<const char*>(data), static_cast<std::streamsize>(len));
  const std::uint32_t crc = crc32(data, len);
  out.write(reinterpret_cast<const char*>(&crc), sizeof crc);
}

void read_crc_section_into(std::istream& in, void* dst, std::uint64_t expected,
                           const char* what) {
  std::uint64_t size = 0;
  in.read(reinterpret_cast<char*>(&size), sizeof size);
  if (!in || size != expected) {
    throw std::runtime_error(std::string(what) +
                             ": section size mismatch (torn or tampered file)");
  }
  in.read(static_cast<char*>(dst), static_cast<std::streamsize>(size));
  std::uint32_t stored = 0;
  in.read(reinterpret_cast<char*>(&stored), sizeof stored);
  if (!in) {
    throw std::runtime_error(std::string(what) + ": truncated section");
  }
  if (crc32(dst, static_cast<std::size_t>(size)) != stored) {
    throw std::runtime_error(std::string(what) + ": section checksum mismatch");
  }
}

void ByteReader::overrun() const {
  throw std::runtime_error(std::string(what_) +
                           ": corrupt payload (field extends past section)");
}

void expect_eof(std::istream& in, const char* what) {
  if (in.peek() != std::istream::traits_type::eof()) {
    throw std::runtime_error(std::string(what) +
                             ": trailing bytes after payload");
  }
}

std::uint64_t bytes_remaining(std::istream& in) {
  const std::istream::pos_type at = in.tellg();
  if (at == std::istream::pos_type(-1)) return 0;
  in.seekg(0, std::ios::end);
  const std::istream::pos_type end = in.tellg();
  in.seekg(at);
  return end >= at ? static_cast<std::uint64_t>(end - at) : 0;
}

std::vector<int> retry_delays_ms(const RetryPolicy& policy) {
  std::vector<int> out;
  if (policy.attempts <= 1) return out;
  out.reserve(static_cast<std::size_t>(policy.attempts - 1));
  Rng rng(policy.jitter_seed);
  int delay_ms = policy.initial_delay_ms;
  for (int i = 1; i < policy.attempts; ++i) {
    out.push_back(detail::jittered_delay_ms(
        delay_ms, policy.jitter_seed != 0 ? &rng : nullptr));
    delay_ms *= 2;
  }
  return out;
}

}  // namespace vf::util
