#include "vf/util/rng.hpp"

#include <cmath>

namespace vf::util {

Rng::Rng(std::uint64_t seed, std::uint64_t stream)
    : state_(0), inc_((stream << 1u) | 1u) {
  operator()();
  state_ += seed;
  operator()();
}

Rng::result_type Rng::operator()() {
  std::uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  auto xorshifted =
      static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
  auto rot = static_cast<std::uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

double Rng::uniform() {
  // 53-bit mantissa from two draws for full double resolution.
  std::uint64_t hi = operator()();
  std::uint64_t lo = operator()();
  std::uint64_t bits = (hi << 21u) ^ lo;
  return static_cast<double>(bits & ((1ULL << 53) - 1)) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint32_t Rng::below(std::uint32_t n) {
  if (n == 0) return 0;
  // Lemire's method: multiply-shift with rejection to remove modulo bias.
  std::uint64_t m = static_cast<std::uint64_t>(operator()()) * n;
  auto l = static_cast<std::uint32_t>(m);
  if (l < n) {
    std::uint32_t t = -n % n;
    while (l < t) {
      m = static_cast<std::uint64_t>(operator()()) * n;
      l = static_cast<std::uint32_t>(m);
    }
  }
  return static_cast<std::uint32_t>(m >> 32u);
}

double Rng::gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  double u2 = uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::gaussian(double mean, double stddev) {
  return mean + stddev * gaussian();
}

Rng Rng::fork(std::uint64_t id) const {
  return Rng(state_ ^ (0x9e3779b97f4a7c15ULL * (id + 1)), inc_ ^ id);
}

}  // namespace vf::util
