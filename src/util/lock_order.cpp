#include "vf/util/lock_order.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <set>
#include <unordered_map>
#include <vector>

#include "vf/util/env.hpp"

namespace vf::util::lockorder {

namespace {

/// One recorded ordering edge a -> b ("a was held while b was acquired"),
/// with the acquiring thread's held stack captured at first sight so an
/// inversion report can show *both* sides.
struct EdgeInfo {
  std::string holder_stack;
  int tid = 0;
};

/// The process-wide acquisition graph. Guarded by its own raw std::mutex:
/// the detector cannot be built on the vf::util::Mutex it instruments.
struct State {
  std::mutex mu;  // vf-lint: allow(unannotated-guard) detector internals predate the annotated wrapper
  std::unordered_map<const void*, std::uint32_t> ids;  // live mutex -> node
  std::vector<const char*> names;                      // node -> report name
  std::vector<std::vector<std::uint32_t>> adj;         // node -> successors
  std::map<std::pair<std::uint32_t, std::uint32_t>, EdgeInfo> edges;
  std::set<std::pair<std::uint32_t, std::uint32_t>> reported;
  std::vector<std::string> reports;
  std::uint64_t cycles = 0;
};

State& state() {
  // Immortal singleton (same pattern as the obs registries): mutexes lock
  // during static destruction and from lingering pool threads, and the
  // graph must outlive all of them. Reachable via this pointer => LSan ok.
  static State* s = new State();  // vf-lint: allow(naked-new) immortal singleton
  return *s;
}

constexpr std::size_t kMaxReports = 64;

/// Per-thread held-lock stack. Deliberately a trivially-destructible POD
/// (fixed array, no heap) so the hooks stay valid during thread-local and
/// static destruction, when ordinary thread_local vectors may already be
/// gone. Depth beyond kMaxHeld is counted and ignored — no real code path
/// in this repo nests anywhere near 16 locks.
constexpr std::size_t kMaxHeld = 16;

struct HeldLock {
  const void* mu;
  std::uint32_t id;
  const char* name;
};

struct HeldStack {
  HeldLock slots[kMaxHeld];
  std::size_t n;
  std::size_t overflow;
};
thread_local HeldStack t_held;  // zero-initialised, trivially destructible

int thread_tag() {
  static std::atomic<int> next{1};
  thread_local const int tag = next.fetch_add(1, std::memory_order_relaxed);
  return tag;
}

struct Config {
  std::atomic<bool> enabled{false};
  std::atomic<std::uint8_t> action{static_cast<std::uint8_t>(Action::Abort)};
};

Config& config() {
  static Config* c = [] {
    auto* cfg = new Config();  // vf-lint: allow(naked-new) immortal singleton
    const std::string v = env_string("VF_LOCK_ORDER", "");
    if (v == "1" || v == "on" || v == "true" || v == "abort") {
      cfg->enabled.store(true, std::memory_order_relaxed);
    } else if (v == "log") {
      cfg->enabled.store(true, std::memory_order_relaxed);
      cfg->action.store(static_cast<std::uint8_t>(Action::Log),
                        std::memory_order_relaxed);
    }
    return cfg;
  }();
  return *c;
}

/// Node id for `mu`, interning it on first sight (requires s.mu held).
std::uint32_t intern_locked(State& s, const void* mu, const char* name) {
  auto [it, inserted] =
      s.ids.try_emplace(mu, static_cast<std::uint32_t>(s.names.size()));
  if (inserted) {
    s.names.push_back(name);
    s.adj.emplace_back();
  }
  return it->second;
}

/// True when `to` is reachable from `from` in the recorded graph, filling
/// `parent` for path reconstruction (requires s.mu held).
bool reachable_locked(const State& s, std::uint32_t from, std::uint32_t to,
                      std::vector<std::uint32_t>& parent) {
  parent.assign(s.names.size(), UINT32_MAX);
  std::vector<std::uint32_t> stack{from};
  parent[from] = from;
  while (!stack.empty()) {
    const std::uint32_t node = stack.back();
    stack.pop_back();
    if (node == to) return true;
    for (const std::uint32_t next : s.adj[node]) {
      if (parent[next] != UINT32_MAX) continue;
      parent[next] = node;
      stack.push_back(next);
    }
  }
  return false;
}

std::string held_names() {
  std::string out = "[";
  for (std::size_t i = 0; i < t_held.n; ++i) {
    if (i > 0) out += ", ";
    out += '"';
    out += t_held.slots[i].name;
    out += '"';
  }
  out += ']';
  return out;
}

/// Build the two-sided inversion report: this thread's held stack at the
/// violating acquire, plus the recorded context of every edge on the
/// conflicting path acquiring -> ... -> held (requires s.mu held).
std::string report_locked(const State& s, std::uint32_t acquiring,
                          std::uint32_t held,
                          const std::vector<std::uint32_t>& parent) {
  std::string out = "vf::util: lock-order inversion detected\n";
  out += "  thread " + std::to_string(thread_tag()) + " holds " +
         held_names() + " and is acquiring \"" +
         std::string(s.names[acquiring]) + "\"\n";
  out += "  conflicting order recorded earlier:\n";
  // Walk the path held <- ... <- acquiring backwards via parent[].
  std::vector<std::uint32_t> path{held};
  while (path.back() != acquiring) path.push_back(parent[path.back()]);
  for (std::size_t i = path.size(); i-- > 1;) {
    const auto key = std::make_pair(path[i], path[i - 1]);
    const auto it = s.edges.find(key);
    out += "    \"" + std::string(s.names[key.first]) + "\" -> \"" +
           std::string(s.names[key.second]) + "\"";
    if (it != s.edges.end()) {
      out += ": thread " + std::to_string(it->second.tid) +
             " acquired it while holding " + it->second.holder_stack;
    }
    out += '\n';
  }
  return out;
}

void push_held(const void* mu, std::uint32_t id, const char* name) {
  if (t_held.n < kMaxHeld) {
    t_held.slots[t_held.n] = HeldLock{mu, id, name};
    ++t_held.n;
  } else {
    ++t_held.overflow;
  }
}

}  // namespace

bool enabled() {
  return config().enabled.load(std::memory_order_relaxed);
}

void set_enabled(bool on) {
  config().enabled.store(on, std::memory_order_relaxed);
}

Action action() {
  return static_cast<Action>(config().action.load(std::memory_order_relaxed));
}

void set_action(Action a) {
  config().action.store(static_cast<std::uint8_t>(a),
                        std::memory_order_relaxed);
}

void on_acquire(const void* mu, const char* name) {
  if (!enabled()) return;
  State& s = state();
  std::string report;
  std::uint32_t id = 0;
  {
    const std::lock_guard<std::mutex> lock(s.mu);
    id = intern_locked(s, mu, name);
    std::vector<std::uint32_t> parent;
    for (std::size_t i = 0; i < t_held.n; ++i) {
      const std::uint32_t held = t_held.slots[i].id;
      if (held == id) continue;
      const auto key = std::make_pair(held, id);
      if (s.edges.count(key) > 0) continue;  // known edge, already checked
      if (reachable_locked(s, id, held, parent)) {
        // Adding held -> id would close a cycle. Report once per pair and
        // keep the graph acyclic so later checks stay meaningful.
        if (s.reported.insert(key).second) {
          ++s.cycles;
          report = report_locked(s, id, held, parent);
          if (s.reports.size() < kMaxReports) s.reports.push_back(report);
        }
      } else {
        s.adj[held].push_back(id);
        s.edges[key] = EdgeInfo{held_names(), thread_tag()};
      }
    }
  }
  push_held(mu, id, name);
  if (!report.empty()) {
    std::fprintf(stderr, "%s", report.c_str());
    if (action() == Action::Abort) {
      std::fprintf(stderr,
                   "vf::util: aborting (set VF_LOCK_ORDER=log to downgrade "
                   "for triage)\n");
      std::abort();
    }
  }
}

void on_try_acquire(const void* mu, const char* name) {
  if (!enabled()) return;
  State& s = state();
  std::uint32_t id = 0;
  {
    const std::lock_guard<std::mutex> lock(s.mu);
    id = intern_locked(s, mu, name);
  }
  push_held(mu, id, name);
}

void on_release(const void* mu) {
  // Locks are usually released LIFO, but a CondVar wait can release out of
  // order; search from the top.
  for (std::size_t i = t_held.n; i-- > 0;) {
    if (t_held.slots[i].mu != mu) continue;
    for (std::size_t j = i + 1; j < t_held.n; ++j) {
      t_held.slots[j - 1] = t_held.slots[j];
    }
    --t_held.n;
    return;
  }
  // Not tracked: either armed mid-hold or pushed past the depth cap.
  if (t_held.overflow > 0) --t_held.overflow;
}

void on_destroy(const void* mu) {
  if (!enabled()) return;
  State& s = state();
  const std::lock_guard<std::mutex> lock(s.mu);
  // Retire the pointer so a recycled address gets a fresh node; the old
  // node's edges stay behind as unreachable ghosts.
  s.ids.erase(mu);
}

std::uint64_t cycle_count() {
  State& s = state();
  const std::lock_guard<std::mutex> lock(s.mu);
  return s.cycles;
}

std::vector<std::string> cycle_reports() {
  State& s = state();
  const std::lock_guard<std::mutex> lock(s.mu);
  return s.reports;
}

void reset() {
  State& s = state();
  const std::lock_guard<std::mutex> lock(s.mu);
  for (auto& successors : s.adj) successors.clear();
  s.edges.clear();
  s.reported.clear();
  s.reports.clear();
  s.cycles = 0;
}

}  // namespace vf::util::lockorder
