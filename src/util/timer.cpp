#include "vf/util/timer.hpp"

#include <cmath>
#include <cstdio>

namespace vf::util {

Timer::Timer() : start_(std::chrono::steady_clock::now()) {}

void Timer::restart() { start_ = std::chrono::steady_clock::now(); }

double Timer::seconds() const {
  auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(now - start_).count();
}

double Timer::millis() const { return seconds() * 1000.0; }

std::string format_duration(double seconds) {
  char buf[64];
  if (seconds <= 0.0) {
    return "0ms";
  }
  if (seconds < 0.001) {
    std::snprintf(buf, sizeof buf, "%.0fus", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof buf, "%.0fms", seconds * 1000.0);
  } else if (seconds < 120.0) {
    std::snprintf(buf, sizeof buf, "%.1fs", seconds);
  } else {
    // Round the total once so 179.6s is "3m00s", never "2m60s".
    const long total = std::lround(seconds);
    if (total < 3600) {
      std::snprintf(buf, sizeof buf, "%ldm%02lds", total / 60, total % 60);
    } else {
      std::snprintf(buf, sizeof buf, "%ldh%02ldm", total / 3600,
                    (total % 3600) / 60);
    }
  }
  return buf;
}

}  // namespace vf::util
