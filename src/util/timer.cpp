#include "vf/util/timer.hpp"

#include <cmath>
#include <cstdio>

namespace vf::util {

Timer::Timer() : start_(std::chrono::steady_clock::now()) {}

void Timer::restart() { start_ = std::chrono::steady_clock::now(); }

double Timer::seconds() const {
  auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(now - start_).count();
}

double Timer::millis() const { return seconds() * 1000.0; }

std::string format_duration(double seconds) {
  char buf[64];
  if (seconds < 1.0) {
    std::snprintf(buf, sizeof buf, "%.0fms", seconds * 1000.0);
  } else if (seconds < 120.0) {
    std::snprintf(buf, sizeof buf, "%.1fs", seconds);
  } else {
    int mins = static_cast<int>(seconds / 60.0);
    int secs = static_cast<int>(std::lround(seconds - 60.0 * mins));
    std::snprintf(buf, sizeof buf, "%dm%02ds", mins, secs);
  }
  return buf;
}

}  // namespace vf::util
