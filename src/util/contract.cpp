#include "vf/util/contract.hpp"

#include <cstdio>
#include <cstdlib>

namespace vf::util {

[[noreturn]] void contract_fail(const char* kind, const char* expr,
                                const char* what, const char* file, int line) {
  // stderr + abort rather than an exception: a contract violation means the
  // process state is already outside the library's invariants, and abort()
  // gives the sanitizers and core dumps an exact trap site.
  std::fprintf(stderr, "vf contract %s failed: %s (%s) at %s:%d\n", kind,
               expr, what, file, line);
  std::fflush(stderr);
  std::abort();
}

}  // namespace vf::util
