#pragma once
// Runtime lock-order (deadlock-potential) detector for vf::util::Mutex.
//
// Clang's Thread Safety Analysis proves lock *scopes*; it cannot see
// acquisition *order* across translation units. This detector closes that
// gap at runtime, deterministically: every armed vf::util::Mutex acquire
// records directed edges `held -> acquiring` into a process-wide graph,
// checked *before* the thread blocks on the lock. The first edge that
// would close a cycle — the classic A->B vs B->A inversion — is reported
// with both offending held-lock stacks: the current thread's stack and the
// stack recorded when the conflicting edge was first seen. Unlike TSan's
// schedule-dependent deadlock reports, one run through both code paths is
// enough; the threads never have to interleave into the actual deadlock.
//
// Arming (off by default; disarmed cost is one relaxed atomic load per
// lock/unlock):
//   - environment:  VF_LOCK_ORDER=1|on|abort  arm, abort on a cycle
//                   VF_LOCK_ORDER=log         arm, log + keep running
//                   (the VF_FAULT-style downgrade for CI triage)
//   - programmatic: set_enabled(true) + set_action(Action::Log) — what the
//                   unit tests and `vfctl serve --lock-order` use.
//
// Armed, every acquire serialises on one internal mutex — debug/test/smoke
// tooling, never a production-hot-path default. The hooks compile out
// entirely with -DVF_LOCK_ORDER=OFF (VF_LOCK_ORDER_ENABLED=0).
//
// Node identity is the Mutex instance (pointer, retired on destruction);
// the name passed at construction is for reports only. Edges learned from
// destroyed mutexes linger as unreachable ghosts — conservative and cheap.

#include <cstdint>
#include <string>
#include <vector>

#ifndef VF_LOCK_ORDER_ENABLED
#define VF_LOCK_ORDER_ENABLED 1
#endif

namespace vf::util::lockorder {

enum class Action : std::uint8_t {
  Abort,  ///< print the report and std::abort() (default when armed)
  Log,    ///< print + record the report, keep running (CI triage / tests)
};

/// Master switch. First call reads the VF_LOCK_ORDER environment variable
/// (see above); set_enabled() overrides it for the process lifetime.
[[nodiscard]] bool enabled();
void set_enabled(bool on);

[[nodiscard]] Action action();
void set_action(Action a);

/// Hooks called by vf::util::Mutex. `on_acquire` runs BEFORE the thread
/// blocks, so an inversion is reported even on schedules that would
/// deadlock. `on_try_acquire` records the hold without edge/cycle checks:
/// a failed-or-successful try_lock can never deadlock by itself, but locks
/// it holds still constrain later blocking acquires.
void on_acquire(const void* mu, const char* name);
void on_try_acquire(const void* mu, const char* name);
void on_release(const void* mu);
void on_destroy(const void* mu);

/// Cycles detected since the last reset() (each distinct inverted edge
/// pair is reported once).
[[nodiscard]] std::uint64_t cycle_count();

/// Reports accumulated under Action::Log (capped; oldest kept).
[[nodiscard]] std::vector<std::string> cycle_reports();

/// Drop the recorded graph, reports, and counters; keeps the armed state
/// and live mutex registrations. Call with no locks held (test isolation).
void reset();

}  // namespace vf::util::lockorder
