#pragma once
// Deterministic fault injection ("failpoints") for the persistence and
// training paths.
//
// Production code marks the places where the outside world can fail —
// opening a file, writing bytes, fsync, rename, an epoch boundary — with a
// named site: `fault::fire("atomic_write")`. Unarmed sites cost one hash
// lookup on cold I/O paths and nothing is injected. Tests and CI arm a site
// either programmatically (`fault::arm`) or through the environment
// (`VF_FAULT_ATOMIC_WRITE=short:2`), and the site then reports a failure
// mode on the configured hit, letting crash/corruption handling be driven
// deterministically instead of hoping for real I/O errors.
//
// Env grammar (one variable per site, name = VF_FAULT_ + upper-cased site):
//
//   VF_FAULT_<SITE>=<mode>[:<after>[:<times>]]
//
//   mode   error | short | alloc | off
//   after  number of passing hits before the first failure (default 0)
//   times  how many hits fail once triggered; -1 = every later hit
//          (default 1)
//
// e.g. VF_FAULT_ATOMIC_FSYNC=error       fail the first fsync, once
//      VF_FAULT_TRAINER_EPOCH=error:12   fail the 13th epoch boundary
//      VF_FAULT_ATOMIC_WRITE=short:0:-1  every body write is torn
//
// Sites are process-global and thread-safe. The registry never throws by
// itself: the *call site* decides what a reported mode means (throw, torn
// file, nullptr).

#include <cstdint>
#include <string>
#include <vector>

namespace vf::util::fault {

enum class Mode : std::uint8_t {
  Off = 0,    // site passes
  Error,      // the operation should fail with an I/O error
  ShortWrite, // the write should be torn (partial payload)
  BadAlloc,   // the allocation should fail
};

struct Spec {
  Mode mode = Mode::Error;
  /// Passing hits before the first injected failure.
  int after = 0;
  /// Number of failing hits once triggered (-1 = all subsequent hits).
  int times = 1;
};

/// Arm `site` programmatically (replaces any previous spec; resets the hit
/// counter).
void arm(const std::string& site, Spec spec);

/// Disarm one site (its hit counter is kept).
void disarm(const std::string& site);

/// Disarm everything and reset all hit counters. Tests call this in
/// SetUp/TearDown so sites never leak across cases.
void clear();

/// Record a hit at `site` and report the failure mode for this hit
/// (Mode::Off = proceed normally). The one call production code makes.
Mode fire(const char* site);

/// Convenience: true when this hit should fail with Mode::Error.
bool should_fail(const char* site);

/// Hits recorded at `site` so far (armed or not).
std::uint64_t hits(const std::string& site);

/// Re-scan the environment for VF_FAULT_* variables (also done once
/// automatically on first use). Lets tests setenv() then reload.
void reload_env();

/// Parse the env grammar above. Returns false (and leaves `spec` untouched)
/// for malformed input; "off" parses as armed=false.
bool parse_spec(const std::string& text, Spec& spec, bool& armed);

/// Sites currently armed (for diagnostics).
std::vector<std::string> armed_sites();

}  // namespace vf::util::fault
