#pragma once
// Tiny command-line argument parser used by the bench harnesses and examples.
//
// Supports `--name value` and `--name=value` forms plus boolean flags
// (`--flag`). Unknown arguments are collected as positionals. This is
// intentionally minimal — the harnesses need a dozen numeric knobs, not a
// full CLI framework.

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace vf::util {

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  /// True if `--name` was passed (with or without a value).
  [[nodiscard]] bool has(std::string_view name) const;

  [[nodiscard]] std::string get(std::string_view name,
                                std::string fallback) const;
  [[nodiscard]] int get_int(std::string_view name, int fallback) const;
  [[nodiscard]] double get_double(std::string_view name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(std::string_view name, bool fallback) const;

  /// Flag-rename support: when `old_name` was passed, move its value to
  /// `canonical` (unless the canonical spelling was also given, which
  /// wins) and return true so the caller can print a deprecation note.
  bool canonicalize(std::string_view old_name, std::string_view canonical);

  [[nodiscard]] const std::vector<std::string>& positionals() const {
    return positionals_;
  }

  [[nodiscard]] const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::unordered_map<std::string, std::string> options_;
  std::vector<std::string> positionals_;
};

}  // namespace vf::util
