#pragma once
// Minimal leveled logging to stderr, printf-style.
//
// Benches and examples narrate progress through this; tests run with the
// level raised to Warn so ctest output stays clean.

#include <cstdarg>

namespace vf::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Globally set the minimum level that is emitted.
void set_log_level(LogLevel level);
LogLevel log_level();

/// printf-style logging; a newline is appended.
void logf(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

#define VF_DEBUG(...) ::vf::util::logf(::vf::util::LogLevel::Debug, __VA_ARGS__)
#define VF_INFO(...) ::vf::util::logf(::vf::util::LogLevel::Info, __VA_ARGS__)
#define VF_WARN(...) ::vf::util::logf(::vf::util::LogLevel::Warn, __VA_ARGS__)
#define VF_ERROR(...) ::vf::util::logf(::vf::util::LogLevel::Error, __VA_ARGS__)

}  // namespace vf::util
