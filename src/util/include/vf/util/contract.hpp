#pragma once
// Contract macros for internal invariants, preconditions, and bounds checks.
//
// The library's public entry points validate caller input with exceptions
// (std::invalid_argument) unconditionally — those stay. These macros cover
// the *internal* contracts underneath: index arithmetic inside Matrix, shape
// plumbing between layers, packed-panel geometry in the GEMM kernels,
// serializer field invariants. They compile to nothing in plain Release
// builds so the hot paths carry zero cost, and switch on in Debug and
// sanitizer builds (any -DVF_SANITIZE= preset defines VF_ENABLE_CONTRACTS)
// where the point is to fail loudly and early.
//
//   VF_ASSERT(cond, what)        — internal invariant ("this cannot happen")
//   VF_REQUIRE(cond, what)       — internal precondition at a module seam
//   VF_BOUNDS_CHECK(index, size) — 0 <= index < size, for raw buffer access
//
// A violation prints the failed expression, message, and location to stderr
// and aborts, which both GTest death tests and the sanitizers' abort hooks
// pick up cleanly. Contracts are statements, not expressions, and must not
// have side effects: the argument expression disappears entirely when
// contracts are off.

#include <cstddef>

// Contracts are active when the build opts in (VF_ENABLE_CONTRACTS, set by
// the sanitizer presets and -DVF_CONTRACTS=ON) or in any Debug build.
#if defined(VF_ENABLE_CONTRACTS) || !defined(NDEBUG)
#define VF_CONTRACTS_ACTIVE 1
#else
#define VF_CONTRACTS_ACTIVE 0
#endif

namespace vf::util {

/// Report a contract violation and abort. Out-of-line so the macro expansion
/// in hot loops is a single compare + predictable branch to a cold call.
[[noreturn]] void contract_fail(const char* kind, const char* expr,
                                const char* what, const char* file, int line);

}  // namespace vf::util

#if VF_CONTRACTS_ACTIVE

#define VF_CONTRACT_CHECK_(kind, cond, what)                              \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::vf::util::contract_fail(kind, #cond, what, __FILE__, __LINE__);   \
    }                                                                     \
  } while (false)

#define VF_ASSERT(cond, what) VF_CONTRACT_CHECK_("assert", cond, what)
#define VF_REQUIRE(cond, what) VF_CONTRACT_CHECK_("require", cond, what)
#define VF_BOUNDS_CHECK(index, size)                                      \
  VF_CONTRACT_CHECK_("bounds", static_cast<std::size_t>(index) <          \
                                   static_cast<std::size_t>(size),        \
                     "index out of range")

#else

#define VF_ASSERT(cond, what) static_cast<void>(0)
#define VF_REQUIRE(cond, what) static_cast<void>(0)
#define VF_BOUNDS_CHECK(index, size) static_cast<void>(0)

#endif
