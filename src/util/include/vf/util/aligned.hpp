#pragma once
// Cache-line-aligned allocation for hot numeric buffers.
//
// The GEMM kernel layer (vf::nn) packs operand panels and stores Matrix
// data 64-byte aligned so vector loads/stores never straddle cache lines
// and the compiler can emit aligned SIMD moves for the micro-kernel.

#include <cstddef>
#include <new>
#include <type_traits>
#include <vector>

namespace vf::util {

/// Minimal stateless allocator returning `Alignment`-byte aligned storage.
template <typename T, std::size_t Alignment = 64>
class AlignedAllocator {
  static_assert((Alignment & (Alignment - 1)) == 0,
                "Alignment must be a power of two");
  static_assert(Alignment >= alignof(T),
                "Alignment must not weaken the type's natural alignment");

 public:
  using value_type = T;
  using is_always_equal = std::true_type;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  [[nodiscard]] T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Alignment}));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    ::operator delete(p, n * sizeof(T), std::align_val_t{Alignment});
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
};

/// std::vector with 64-byte-aligned storage.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace vf::util
