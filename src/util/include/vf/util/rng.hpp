#pragma once
// Deterministic pseudo-random number generation for voidfill.
//
// All stochastic components in the library (samplers, weight init, synthetic
// turbulence) draw from vf::util::Rng so that every experiment is exactly
// reproducible from a single 64-bit seed. The generator is PCG32 (O'Neill,
// "PCG: A Family of Simple Fast Space-Efficient Statistically Good Algorithms
// for Random Number Generation"), which is small, fast, and has no measurable
// bias for our use cases.

#include <cstdint>
#include <limits>
#include <vector>

namespace vf::util {

/// Complete serialisable PCG32 state, including the Box-Muller gaussian
/// cache. Restoring a snapshot resumes the exact draw sequence, which is
/// what makes checkpointed training bit-identical to an uninterrupted run.
struct RngState {
  std::uint64_t state = 0;
  std::uint64_t inc = 0;
  double cached_gaussian = 0.0;
  bool has_cached_gaussian = false;
};

/// PCG32 pseudo-random generator. Satisfies UniformRandomBitGenerator so it
/// can be used with <random> distributions, but also ships the handful of
/// convenience draws the library needs (uniform doubles, gaussians, index
/// ranges, shuffles) to avoid libstdc++ distribution non-determinism across
/// platforms.
class Rng {
 public:
  using result_type = std::uint32_t;

  /// Construct from a seed and an optional stream id. Distinct stream ids
  /// yield statistically independent sequences for the same seed.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL,
               std::uint64_t stream = 0xda3e39cb94b95bdbULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 32 random bits.
  result_type operator()();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Uses Lemire's unbiased bounded reduction.
  std::uint32_t below(std::uint32_t n);

  /// Standard normal deviate (Box-Muller with caching).
  double gaussian();

  /// Normal deviate with the given mean and standard deviation.
  double gaussian(double mean, double stddev);

  /// Fisher-Yates shuffle of an index vector.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = below(static_cast<std::uint32_t>(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derive a child generator; children with distinct ids are independent.
  Rng fork(std::uint64_t id) const;

  /// Snapshot the full generator state for checkpointing.
  [[nodiscard]] RngState state() const {
    return {state_, inc_, cached_gaussian_, has_cached_gaussian_};
  }

  /// Restore a snapshot taken with state().
  void restore(const RngState& s) {
    state_ = s.state;
    inc_ = s.inc;
    cached_gaussian_ = s.cached_gaussian;
    has_cached_gaussian_ = s.has_cached_gaussian;
  }

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace vf::util
