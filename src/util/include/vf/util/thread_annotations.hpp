#pragma once
// Clang Thread Safety Analysis attribute macros (DESIGN.md §11).
//
// These make the repo's locking contracts *statically checkable*: a mutex
// declared as a capability (vf::util::Mutex), fields tagged with
// VF_GUARDED_BY(mu), and helpers tagged with VF_REQUIRES(mu) /
// VF_EXCLUDES(mu) let Clang prove at compile time that every access to a
// guarded field happens under its lock and that no helper is entered with
// the wrong locks held. The `thread-safety` CI lane builds the annotated
// layers with -Wthread-safety -Werror=thread-safety-analysis; under GCC
// (and any non-Clang compiler) every macro expands to nothing, so the
// annotations are pure documentation there.
//
// Conventions:
//   - Every mutex member gets at least one VF_GUARDED_BY sibling (enforced
//     by the vf_lint `unannotated-guard` rule).
//   - `*_locked()` helpers take VF_REQUIRES(mu_); public entry points that
//     acquire the lock themselves take VF_EXCLUDES(mu_) so a re-entrant
//     call is a compile error, not a deadlock.
//   - Lambdas touching guarded state under an already-held lock are
//     annotated in place: `[&]() VF_REQUIRES(mu_) { ... }`.

#if defined(__clang__)
#define VF_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define VF_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

/// Marks a class as a lockable capability (e.g. a mutex type).
#define VF_CAPABILITY(x) VF_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases.
#define VF_SCOPED_CAPABILITY VF_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding the given capability.
#define VF_GUARDED_BY(x) VF_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is protected by the given capability.
#define VF_PT_GUARDED_BY(x) VF_THREAD_ANNOTATION(pt_guarded_by(x))

/// Documents (and checks) static acquisition order between capabilities.
#define VF_ACQUIRED_BEFORE(...) \
  VF_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define VF_ACQUIRED_AFTER(...) \
  VF_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Function may only be called while holding the given capabilities.
#define VF_REQUIRES(...) \
  VF_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the capabilities (held on return, not on entry).
#define VF_ACQUIRE(...) VF_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capabilities (held on entry, not on return).
#define VF_RELEASE(...) VF_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability when it returns the given value.
#define VF_TRY_ACQUIRE(...) \
  VF_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function must NOT be called while holding the given capabilities —
/// the annotation that turns a self-deadlock into a compile error.
#define VF_EXCLUDES(...) VF_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Assert-at-runtime that the capability is held (fact injected into the
/// analysis, e.g. after an external synchronisation handshake).
#define VF_ASSERT_CAPABILITY(x) VF_THREAD_ANNOTATION(assert_capability(x))

/// Function returns a reference to the given capability.
#define VF_RETURN_CAPABILITY(x) VF_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: suppress the analysis for one deliberately unverifiable
/// function body (use sparingly; say why in a comment).
#define VF_NO_THREAD_SAFETY_ANALYSIS \
  VF_THREAD_ANNOTATION(no_thread_safety_analysis)
