#pragma once
// Crash-safe file persistence primitives.
//
// Every binary artifact the library persists (VFNN/VFNT networks, VFMD
// models, VFB fields, VFCK training checkpoints) goes through
// atomic_write_file: the payload is written to a sibling temp file, flushed
// and fsync'd, and only then renamed over the destination. A crash at any
// point leaves either the old file or the new file — never a torn hybrid.
// The write path carries failpoints (atomic_open / atomic_write /
// atomic_fsync / atomic_rename, see vf/util/fault.hpp) so tests can
// deterministically exercise every failure leg.
//
// The section helpers frame variable-length payloads as
// `u64 size | bytes | u32 crc32`, which is how the v2 serialization formats
// detect torn writes and bit flips: a loader rejects a section whose size
// exceeds the bytes actually left in the file (no multi-GB allocations from
// a corrupt header) and whose checksum does not match.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "vf/util/rng.hpp"

namespace vf::util {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of `len` bytes. Chainable:
/// pass the previous result as `seed` to extend a running checksum.
std::uint32_t crc32(const void* data, std::size_t len, std::uint32_t seed = 0);

/// Atomically replace `path` with the bytes `writer` produces: write-temp,
/// flush, fsync, rename. On any failure (including injected faults) the
/// destination is untouched, the temp file is removed best-effort, and
/// std::runtime_error is thrown.
void atomic_write_file(const std::string& path,
                       const std::function<void(std::ostream&)>& writer);

/// Write one checksummed section: u64 payload size, payload, u32 CRC.
void write_crc_section(std::ostream& out, const std::string& payload);

/// Same framing, streaming straight from a caller buffer (no staging copy —
/// used for multi-hundred-MB field payloads).
void write_crc_section(std::ostream& out, const void* data, std::size_t len);

/// Read a section whose payload size must equal `expected` bytes into `dst`
/// (caller allocated). Throws std::runtime_error on size mismatch,
/// truncation, or checksum failure.
void read_crc_section_into(std::istream& in, void* dst, std::uint64_t expected,
                           const char* what);

/// Read back one checksummed section. `max_size` bounds the allocation
/// (callers pass the bytes remaining in the file, so corrupt sizes are
/// rejected before any allocation). Throws std::runtime_error with `what`
/// in the message on truncation, oversize, or checksum mismatch.
std::string read_crc_section(std::istream& in, std::uint64_t max_size,
                             const char* what);

/// Throw std::runtime_error unless `in` is positioned exactly at EOF —
/// loaders call this last so trailing garbage is rejected, not ignored.
void expect_eof(std::istream& in, const char* what);

/// Bytes from the stream's current position to EOF (position restored).
std::uint64_t bytes_remaining(std::istream& in);

/// Append-only byte buffer for assembling section payloads in memory before
/// checksumming. POD values are written in native (little-endian on every
/// supported target) layout, matching the on-disk formats.
class ByteWriter {
 public:
  template <typename T>
  void pod(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    buf_.append(reinterpret_cast<const char*>(&v), sizeof v);
  }
  void bytes(const void* data, std::size_t len) {
    buf_.append(static_cast<const char*>(data), len);
  }
  /// Length-prefixed string: u32 size + bytes.
  void str(const std::string& s) {
    pod(static_cast<std::uint32_t>(s.size()));
    bytes(s.data(), s.size());
  }
  [[nodiscard]] const std::string& data() const { return buf_; }
  [[nodiscard]] std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Bounds-checked cursor over an in-memory payload. Every overrun throws
/// std::runtime_error tagged with `what`, so a corrupt length field can
/// never read past the buffer or trigger an oversized allocation.
class ByteReader {
 public:
  ByteReader(const std::string& buf, const char* what)
      : buf_(buf), what_(what) {}

  template <typename T>
  T pod() {
    static_assert(std::is_trivially_copyable_v<T>);
    T v{};
    bytes(&v, sizeof v);
    return v;
  }
  void bytes(void* dst, std::size_t len) {
    if (len > buf_.size() - at_) overrun();
    std::char_traits<char>::copy(static_cast<char*>(dst), buf_.data() + at_,
                                 len);
    at_ += len;
  }
  /// Length-prefixed string, rejecting lengths above `max_len`.
  std::string str(std::uint64_t max_len) {
    const auto len = pod<std::uint32_t>();
    if (len > max_len || len > remaining()) overrun();
    std::string s(len, '\0');
    bytes(s.data(), len);
    return s;
  }
  [[nodiscard]] std::uint64_t remaining() const { return buf_.size() - at_; }
  /// Throw unless the payload was consumed exactly (no trailing bytes).
  void expect_end() const {
    if (at_ != buf_.size()) overrun();
  }

 private:
  [[noreturn]] void overrun() const;

  const std::string& buf_;
  std::size_t at_ = 0;
  const char* what_;
};

/// Retry policy for with_retries. Two independent caps bound the loop:
/// `attempts` (total calls) and `max_elapsed_ms` (wall clock across calls
/// and backoff sleeps; 0 = attempts-only) — whichever trips first rethrows
/// the last error. A nonzero `jitter_seed` replaces exact exponential
/// doubling with a deterministic uniform draw in [delay/2, delay], so a
/// fleet of clients that all failed at the same instant (a burst fault, a
/// restarted file server) fans back in spread out instead of re-colliding
/// on every backoff step.
struct RetryPolicy {
  int attempts = 1;
  int initial_delay_ms = 0;
  int max_elapsed_ms = 0;
  std::uint64_t jitter_seed = 0;  ///< 0 = no jitter
};

namespace detail {
/// Jitter one backoff step: uniform in [delay/2, delay] (identity when
/// rng is null or the delay is <= 0). Shared by with_retries and the
/// retry_delays_ms test hook so the unit tests pin the exact sequence.
inline int jittered_delay_ms(int delay_ms, Rng* rng) {
  if (rng == nullptr || delay_ms <= 0) return delay_ms;
  const int half = delay_ms / 2;
  return half + static_cast<int>(
                    rng->below(static_cast<std::uint32_t>(delay_ms - half) + 1));
}
}  // namespace detail

/// The exact backoff sleeps (ms) a with_retries(policy, ...) call would
/// perform if every attempt failed — one entry per retry. Deterministic
/// for a given policy; exists so tests can assert the jitter sequence
/// without sleeping through it.
std::vector<int> retry_delays_ms(const RetryPolicy& policy);

/// Run `attempt`; on std::runtime_error retry under `policy` (exponential
/// backoff starting at initial_delay_ms, doubling each retry, jittered
/// when seeded). Rethrows the last error once either cap is exhausted.
/// This is the CLI's transient-I/O policy: NFS hiccups and injected
/// faults get retried, persistent corruption still surfaces. Logic errors
/// (std::logic_error et al.) are never retried.
template <typename Fn>
auto with_retries(const RetryPolicy& policy, Fn&& attempt)
    -> decltype(attempt()) {
  const auto start = std::chrono::steady_clock::now();
  Rng rng(policy.jitter_seed);
  int delay_ms = policy.initial_delay_ms;
  for (int i = 1;; ++i) {
    try {
      return attempt();
    } catch (const std::runtime_error&) {
      if (i >= policy.attempts) throw;
      if (policy.max_elapsed_ms > 0) {
        const auto elapsed =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - start)
                .count();
        // Give up before sleeping into a budget already blown: a retry we
        // would only start after the cap helps nobody.
        if (elapsed >= policy.max_elapsed_ms) throw;
      }
      const int sleep_ms = detail::jittered_delay_ms(
          delay_ms, policy.jitter_seed != 0 ? &rng : nullptr);
      if (sleep_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
      }
      delay_ms *= 2;
    }
  }
}

/// Attempts-only compatibility form (no elapsed cap, no jitter).
template <typename Fn>
auto with_retries(int attempts, int initial_delay_ms, Fn&& attempt)
    -> decltype(attempt()) {
  RetryPolicy policy;
  policy.attempts = attempts;
  policy.initial_delay_ms = initial_delay_ms;
  return with_retries(policy, std::forward<Fn>(attempt));
}

}  // namespace vf::util
