#pragma once
// Wall-clock timing for reconstruction and training benchmarks.

#include <chrono>
#include <string>

namespace vf::util {

/// Monotonic stopwatch. Started on construction; `seconds()` reads elapsed
/// time without stopping, `restart()` resets the origin.
class Timer {
 public:
  Timer();

  void restart();

  /// Elapsed wall-clock seconds since construction or last restart.
  [[nodiscard]] double seconds() const;

  /// Elapsed milliseconds.
  [[nodiscard]] double millis() const;

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Format a duration in seconds as a short human-readable string
/// (e.g. "500us", "532ms", "12.3s", "4m05s", "1h02m"). Non-positive
/// durations format as "0ms".
std::string format_duration(double seconds);

}  // namespace vf::util
