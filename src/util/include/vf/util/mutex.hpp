#pragma once
// Annotated mutex / condition-variable wrappers (DESIGN.md §11).
//
// vf::util::Mutex is the repo's one blessed lock type: a std::mutex
// declared as a Clang Thread Safety *capability*, so `VF_GUARDED_BY(mu_)`
// fields and `VF_REQUIRES(mu_)` helpers are verified at compile time by
// the thread-safety CI lane, plus runtime lock-order detector hooks
// (vf/util/lock_order.hpp) that turn acquisition-order inversions into
// deterministic reports in debug/smoke runs. The vf_lint `raw-mutex` rule
// bans std::mutex/std::shared_mutex and raw .lock()/.unlock() calls
// outside src/util, so every lock in the tree carries both layers.
//
// Name your mutexes: `Mutex mu_{"serve.registry"};`. The name (a string
// literal; the Mutex only stores the pointer) appears in lock-order
// inversion reports and follows the dot-separated `subsystem.noun` metric
// naming convention.
//
// Locking idiom:
//   const MutexLock lock(mu_);            // scoped, replaces lock_guard
//   cv_.wait(mu_, [&]() VF_REQUIRES(mu_) { return ready_; });
//
// CondVar waits take the held Mutex directly (the wait temporarily
// releases and reacquires it through the instrumented lock/unlock, so the
// detector's held-lock stack stays truthful across the park).

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "vf/util/lock_order.hpp"
#include "vf/util/thread_annotations.hpp"

namespace vf::util {

class VF_CAPABILITY("mutex") Mutex {
 public:
  Mutex() noexcept = default;
  /// `name` must outlive the Mutex (pass a string literal).
  explicit Mutex(const char* name) noexcept : name_(name) {}
  ~Mutex() {
#if VF_LOCK_ORDER_ENABLED
    lockorder::on_destroy(this);
#endif
  }
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() VF_ACQUIRE() {
#if VF_LOCK_ORDER_ENABLED
    // Hook runs before the block, so an inversion that would deadlock this
    // schedule is reported instead of hanging.
    lockorder::on_acquire(this, name_);
#endif
    m_.lock();
  }

  void unlock() VF_RELEASE() {
#if VF_LOCK_ORDER_ENABLED
    lockorder::on_release(this);
#endif
    m_.unlock();
  }

  [[nodiscard]] bool try_lock() VF_TRY_ACQUIRE(true) {
    if (!m_.try_lock()) return false;
#if VF_LOCK_ORDER_ENABLED
    lockorder::on_try_acquire(this, name_);
#endif
    return true;
  }

  [[nodiscard]] const char* name() const noexcept { return name_; }

 private:
  std::mutex m_;  // vf-lint: allow(unannotated-guard) the wrapper's own storage
  const char* name_ = "mutex";
};

/// Scoped acquire/release, the std::lock_guard replacement. Declared a
/// scoped capability so the analysis tracks the lock across the scope.
class VF_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) VF_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() VF_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

namespace detail {

/// BasicLockable adapter handing an already-held Mutex to
/// std::condition_variable_any, so the wait's internal release/reacquire
/// goes through the instrumented Mutex::unlock/lock.
class CvLock {
 public:
  explicit CvLock(Mutex& mu) noexcept : mu_(mu) {}
  void lock() VF_ACQUIRE(mu_) { mu_.lock(); }
  void unlock() VF_RELEASE(mu_) { mu_.unlock(); }

 private:
  Mutex& mu_;
};

}  // namespace detail

/// Condition variable paired with vf::util::Mutex. Waits are annotated
/// VF_REQUIRES(mu): the caller must hold the mutex, and still holds it on
/// return (the temporary release inside the wait is invisible to — and
/// sound for — the static analysis).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  void wait(Mutex& mu) VF_REQUIRES(mu) {
    detail::CvLock adapter(mu);
    cv_.wait(adapter);
  }

  template <typename Pred>
  void wait(Mutex& mu, Pred pred) VF_REQUIRES(mu) {
    detail::CvLock adapter(mu);
    cv_.wait(adapter, std::move(pred));
  }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(
      Mutex& mu,
      const std::chrono::time_point<Clock, Duration>& deadline)
      VF_REQUIRES(mu) {
    detail::CvLock adapter(mu);
    return cv_.wait_until(adapter, deadline);
  }

  /// Predicate form: returns pred()'s value at wake-up (false = timed out
  /// with the predicate still unsatisfied). Prefer this over the
  /// cv_status form for bounded waits — it is spurious-wakeup-proof and
  /// satisfies the vf_lint `unbounded-wait` rule in src/serve.
  template <typename Clock, typename Duration, typename Pred>
  bool wait_until(Mutex& mu,
                  const std::chrono::time_point<Clock, Duration>& deadline,
                  Pred pred) VF_REQUIRES(mu) {
    detail::CvLock adapter(mu);
    return cv_.wait_until(adapter, deadline, std::move(pred));
  }

  template <typename Rep, typename Period>
  std::cv_status wait_for(Mutex& mu,
                          const std::chrono::duration<Rep, Period>& rel)
      VF_REQUIRES(mu) {
    detail::CvLock adapter(mu);
    return cv_.wait_for(adapter, rel);
  }

 private:
  std::condition_variable_any cv_;
};

}  // namespace vf::util
