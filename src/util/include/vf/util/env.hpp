#pragma once
// Environment-variable helpers. The bench harnesses honour a few global
// switches (VF_FULL_SCALE, VF_THREADS, VF_QUICK) read through these.

#include <string>

namespace vf::util {

/// Value of environment variable `name`, or `fallback` when unset/empty.
std::string env_string(const char* name, const std::string& fallback);
int env_int(const char* name, int fallback);
double env_double(const char* name, double fallback);
bool env_bool(const char* name, bool fallback);

/// True when VF_FULL_SCALE is set: harnesses run at the paper's dataset
/// resolutions instead of the reduced defaults.
bool full_scale();

/// True when VF_QUICK is set: harnesses shrink sweeps further for smoke runs.
bool quick_mode();

}  // namespace vf::util
