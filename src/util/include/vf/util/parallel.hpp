#pragma once
// OpenMP-backed parallel loop helpers.
//
// All hot loops in the library (batch k-NN queries, GEMM, per-voxel
// reconstruction) parallelise through these wrappers so thread policy lives
// in one place. Loops fall back to serial execution below a grain threshold
// where fork/join overhead would dominate.

#include <cstddef>
#include <cstdint>

#include <omp.h>

namespace vf::util {

/// Number of worker threads OpenMP will use.
inline int thread_count() { return omp_get_max_threads(); }

/// Override the global thread count (used by benches to compare scaling).
inline void set_thread_count(int n) { omp_set_num_threads(n); }

/// Parallel for over [begin, end). `body` is invoked with each index.
/// Serial when the range is smaller than `grain`.
template <typename Body>
void parallel_for(std::int64_t begin, std::int64_t end, const Body& body,
                  std::int64_t grain = 1024) {
  if (end - begin < grain) {
    for (std::int64_t i = begin; i < end; ++i) body(i);
    return;
  }
  // vf-par: disjoint-writes — caller contract: body(i) may write only
  // index-i state (enforced by review + the TSan suite, see DESIGN.md).
#pragma omp parallel for schedule(static)
  for (std::int64_t i = begin; i < end; ++i) body(i);
}

/// Parallel for with dynamic scheduling for irregular per-item cost
/// (e.g. Delaunay point location where walk length varies).
template <typename Body>
void parallel_for_dynamic(std::int64_t begin, std::int64_t end,
                          const Body& body, std::int64_t grain = 256) {
  if (end - begin < grain) {
    for (std::int64_t i = begin; i < end; ++i) body(i);
    return;
  }
  // vf-par: disjoint-writes — caller contract: body(i) may write only
  // index-i state (enforced by review + the TSan suite, see DESIGN.md).
#pragma omp parallel for schedule(dynamic, 64)
  for (std::int64_t i = begin; i < end; ++i) body(i);
}

}  // namespace vf::util
