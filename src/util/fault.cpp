#include "vf/util/fault.hpp"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

#include "vf/util/mutex.hpp"
#include "vf/util/thread_annotations.hpp"

extern char** environ;  // POSIX: scanned once for VF_FAULT_* variables

namespace vf::util::fault {

namespace {

struct SiteState {
  Spec spec;
  bool armed = false;
  std::uint64_t hits = 0;
};

struct Registry {
  vf::util::Mutex mu{"util.fault"};
  std::unordered_map<std::string, SiteState> sites VF_GUARDED_BY(mu);
  bool env_loaded VF_GUARDED_BY(mu) = false;
};

Registry& registry() {
  static Registry r;
  return r;
}

std::string site_from_env_name(const std::string& name) {
  // VF_FAULT_ATOMIC_WRITE -> atomic_write
  std::string site;
  for (char c : name) {
    site += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return site;
}

/// Parse and apply every VF_FAULT_* environment variable.
void load_env_locked(Registry& r) VF_REQUIRES(r.mu) {
  constexpr const char* kPrefix = "VF_FAULT_";
  for (char** e = environ; e != nullptr && *e != nullptr; ++e) {
    const std::string entry(*e);
    if (entry.rfind(kPrefix, 0) != 0) continue;
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos) continue;
    const std::string site =
        site_from_env_name(entry.substr(std::char_traits<char>::length(kPrefix),
                                        eq - std::char_traits<char>::length(kPrefix)));
    Spec spec;
    bool armed = true;
    if (!parse_spec(entry.substr(eq + 1), spec, armed)) continue;
    SiteState& st = r.sites[site];
    st.spec = spec;
    st.armed = armed;
    st.hits = 0;
  }
  r.env_loaded = true;
}

void ensure_env_loaded(Registry& r) VF_REQUIRES(r.mu) {
  if (!r.env_loaded) load_env_locked(r);
}

}  // namespace

bool parse_spec(const std::string& text, Spec& spec, bool& armed) {
  // <mode>[:<after>[:<times>]]
  std::string mode = text;
  std::string rest;
  if (std::size_t colon = text.find(':'); colon != std::string::npos) {
    mode = text.substr(0, colon);
    rest = text.substr(colon + 1);
  }
  Spec out;
  armed = true;
  if (mode == "error") {
    out.mode = Mode::Error;
  } else if (mode == "short") {
    out.mode = Mode::ShortWrite;
  } else if (mode == "alloc") {
    out.mode = Mode::BadAlloc;
  } else if (mode == "off") {
    armed = false;
    spec = out;
    return true;
  } else {
    return false;
  }
  if (!rest.empty()) {
    char* end = nullptr;
    out.after = static_cast<int>(std::strtol(rest.c_str(), &end, 10));
    if (end == rest.c_str()) return false;
    if (*end == ':') {
      const char* times_begin = end + 1;
      out.times = static_cast<int>(std::strtol(times_begin, &end, 10));
      if (end == times_begin) return false;
    }
    if (*end != '\0') return false;
  }
  if (out.after < 0) return false;
  spec = out;
  return true;
}

void arm(const std::string& site, Spec spec) {
  Registry& r = registry();
  const vf::util::MutexLock lock(r.mu);
  ensure_env_loaded(r);
  SiteState& st = r.sites[site];
  st.spec = spec;
  st.armed = true;
  st.hits = 0;
}

void disarm(const std::string& site) {
  Registry& r = registry();
  const vf::util::MutexLock lock(r.mu);
  ensure_env_loaded(r);
  r.sites[site].armed = false;
}

void clear() {
  Registry& r = registry();
  const vf::util::MutexLock lock(r.mu);
  r.sites.clear();
  // Deliberately leave env_loaded true: clear() means "no faults", not
  // "re-arm whatever the environment says".
  r.env_loaded = true;
}

Mode fire(const char* site) {
  Registry& r = registry();
  const vf::util::MutexLock lock(r.mu);
  ensure_env_loaded(r);
  SiteState& st = r.sites[site];
  const std::uint64_t hit = st.hits++;
  if (!st.armed) return Mode::Off;
  const auto after = static_cast<std::uint64_t>(st.spec.after);
  if (hit < after) return Mode::Off;
  if (st.spec.times >= 0 &&
      hit >= after + static_cast<std::uint64_t>(st.spec.times)) {
    return Mode::Off;
  }
  return st.spec.mode;
}

bool should_fail(const char* site) { return fire(site) == Mode::Error; }

std::uint64_t hits(const std::string& site) {
  Registry& r = registry();
  const vf::util::MutexLock lock(r.mu);
  auto it = r.sites.find(site);
  return it == r.sites.end() ? 0 : it->second.hits;
}

void reload_env() {
  Registry& r = registry();
  const vf::util::MutexLock lock(r.mu);
  load_env_locked(r);
}

std::vector<std::string> armed_sites() {
  Registry& r = registry();
  const vf::util::MutexLock lock(r.mu);
  ensure_env_loaded(r);
  std::vector<std::string> out;
  for (const auto& [site, st] : r.sites) {
    if (st.armed) out.push_back(site);
  }
  return out;
}

}  // namespace vf::util::fault
