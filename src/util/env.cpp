#include "vf/util/env.hpp"

#include <cstdlib>

namespace vf::util {

std::string env_string(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return (v == nullptr || v[0] == '\0') ? fallback : std::string(v);
}

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return (v == nullptr || v[0] == '\0') ? fallback : std::atoi(v);
}

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return (v == nullptr || v[0] == '\0') ? fallback : std::atof(v);
}

bool env_bool(const char* name, bool fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return fallback;
  std::string s(v);
  return s == "1" || s == "true" || s == "yes" || s == "on";
}

bool full_scale() { return env_bool("VF_FULL_SCALE", false); }

bool quick_mode() { return env_bool("VF_QUICK", false); }

}  // namespace vf::util
