#include "vf/geometry/delaunay.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <unordered_map>

namespace vf::geometry {

using vf::field::Vec3;

namespace {

constexpr std::int64_t kSuperL = 1 << 17;  // super-tet scale

/// splitmix64 for jitter and walk tie-breaking.
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Pack non-negative lattice coordinates (< 2^20 each) into a key.
inline std::uint64_t pack_key(const IPoint& p) {
  return (static_cast<std::uint64_t>(p.x + kSuperL) << 42) |
         (static_cast<std::uint64_t>(p.y + kSuperL) << 21) |
         static_cast<std::uint64_t>(p.z + kSuperL);
}

/// Interleave the low 21 bits of x,y,z into a 63-bit Morton code.
inline std::uint64_t morton3(std::uint64_t x, std::uint64_t y,
                             std::uint64_t z) {
  auto spread = [](std::uint64_t v) {
    v &= 0x1fffff;
    v = (v | (v << 32)) & 0x1f00000000ffffULL;
    v = (v | (v << 16)) & 0x1f0000ff0000ffULL;
    v = (v | (v << 8)) & 0x100f00f00f00f00fULL;
    v = (v | (v << 4)) & 0x10c30c30c30c30c3ULL;
    v = (v | (v << 2)) & 0x1249249249249249ULL;
    return v;
  };
  return spread(x) | (spread(y) << 1) | (spread(z) << 2);
}

}  // namespace

IPoint Delaunay3::snap(const Vec3& p, std::uint64_t jitter_key) const {
  // Map into the lattice with a sub-cell dither that breaks the regular-grid
  // co-sphericity; clamp into the super-tet's guaranteed interior.
  double jx = 0.5, jy = 0.5, jz = 0.5;
  if (jitter_key != 0) {
    std::uint64_t h = mix64(jitter_key);
    jx = static_cast<double>(h & 0xffff) / 65536.0;
    jy = static_cast<double>((h >> 16) & 0xffff) / 65536.0;
    jz = static_cast<double>((h >> 32) & 0xffff) / 65536.0;
  }
  auto snap1 = [](double v, double o, double s, double j) {
    double u = (v - o) * s + j;
    double lim = static_cast<double>(kSuperL) - 2.0;
    u = std::clamp(u, -lim, lim + static_cast<double>(kLattice));
    return static_cast<std::int64_t>(std::floor(u));
  };
  return {snap1(p.x, map_origin_.x, map_scale_.x, jx),
          snap1(p.y, map_origin_.y, map_scale_.y, jy),
          snap1(p.z, map_origin_.z, map_scale_.z, jz)};
}

Delaunay3::Delaunay3(const std::vector<Vec3>& points) {
  if (points.empty()) {
    throw std::invalid_argument("Delaunay3: need at least one point");
  }
  n_points_ = points.size();

  // Affine map: bounding box -> [margin, kLattice - margin].
  Vec3 lo{std::numeric_limits<double>::infinity(),
          std::numeric_limits<double>::infinity(),
          std::numeric_limits<double>::infinity()};
  Vec3 hi{-lo.x, -lo.y, -lo.z};
  for (const auto& p : points) {
    lo.x = std::min(lo.x, p.x); hi.x = std::max(hi.x, p.x);
    lo.y = std::min(lo.y, p.y); hi.y = std::max(hi.y, p.y);
    lo.z = std::min(lo.z, p.z); hi.z = std::max(hi.z, p.z);
  }
  const double margin = 16.0;
  const double span = static_cast<double>(kLattice) - 2.0 * margin;
  map_origin_ = lo;
  auto scale1 = [&](double extent) {
    return extent > 1e-300 ? span / extent : 1.0;
  };
  map_scale_ = {scale1(hi.x - lo.x), scale1(hi.y - lo.y), scale1(hi.z - lo.z)};
  map_origin_.x -= margin / map_scale_.x;
  map_origin_.y -= margin / map_scale_.y;
  map_origin_.z -= margin / map_scale_.z;

  // Super-tetrahedron (vertices 0..3). Contains every lattice point in
  // [0, kLattice]^3: min coords > -L and x+y+z < 2L with L = 2^17.
  vcoord_.push_back({-kSuperL, -kSuperL, -kSuperL});
  vcoord_.push_back({4 * kSuperL, -kSuperL, -kSuperL});
  vcoord_.push_back({-kSuperL, 4 * kSuperL, -kSuperL});
  vcoord_.push_back({-kSuperL, -kSuperL, 4 * kSuperL});
  vpoint_.assign(4, LocateResult::kSuperVertex);
  if (orient3d(vcoord_[0], vcoord_[1], vcoord_[2], vcoord_[3]) < 0) {
    std::swap(vcoord_[2], vcoord_[3]);
  }
  Tet root;
  root.v = {0, 1, 2, 3};
  root.n = {-1, -1, -1, -1};
  tets_.push_back(root);
  mark_.push_back(0);

  // Snap all points, dedupe on lattice cells.
  point_vertex_.assign(points.size(), LocateResult::kSuperVertex);
  std::unordered_map<std::uint64_t, std::uint32_t> seen;
  seen.reserve(points.size() * 2);
  std::vector<std::pair<std::uint64_t, std::uint32_t>> order;  // morton, point
  order.reserve(points.size());
  for (std::uint32_t i = 0; i < points.size(); ++i) {
    IPoint ip = snap(points[i], 0x5eedULL + i);
    auto [it, inserted] = seen.emplace(pack_key(ip), i);
    if (!inserted) {
      point_vertex_[i] = point_vertex_[it->second];  // resolved below
      continue;
    }
    order.emplace_back(
        morton3(static_cast<std::uint64_t>(ip.x + kSuperL),
                static_cast<std::uint64_t>(ip.y + kSuperL),
                static_cast<std::uint64_t>(ip.z + kSuperL)),
        i);
    // Temporarily stash coords keyed by point; vertex ids assigned in
    // insertion order for locality.
  }
  std::sort(order.begin(), order.end());

  std::int64_t hint = 0;
  for (auto& [code, pi] : order) {
    (void)code;
    auto vid = static_cast<std::uint32_t>(vcoord_.size());
    vcoord_.push_back(snap(points[pi], 0x5eedULL + pi));
    vpoint_.push_back(pi);
    point_vertex_[pi] = vid;
    insert_point(vid, hint);
  }
  // Resolve duplicate points to their representative's vertex.
  for (std::uint32_t i = 0; i < points.size(); ++i) {
    if (point_vertex_[i] == LocateResult::kSuperVertex) {
      IPoint ip = snap(points[i], 0x5eedULL + i);
      point_vertex_[i] = point_vertex_[seen.at(pack_key(ip))];
    }
  }
}

std::size_t Delaunay3::tetrahedron_count() const {
  std::size_t n = 0;
  for (const auto& t : tets_) {
    if (t.alive) ++n;
  }
  return n;
}

IPoint Delaunay3::snapped(std::uint32_t i) const {
  return vcoord_[point_vertex_[i]];
}

int Delaunay3::orient_face(const Tet& t, int face, const IPoint& q) const {
  // Orientation of q substituted for vertex `face` of the tet: positive
  // when q is on the interior side of that face.
  const IPoint& a = face == 0 ? q : vcoord_[t.v[0]];
  const IPoint& b = face == 1 ? q : vcoord_[t.v[1]];
  const IPoint& c = face == 2 ? q : vcoord_[t.v[2]];
  const IPoint& d = face == 3 ? q : vcoord_[t.v[3]];
  return orient3d(a, b, c, d);
}

bool Delaunay3::in_conflict(const Tet& t, const IPoint& q) const {
  return insphere(vcoord_[t.v[0]], vcoord_[t.v[1]], vcoord_[t.v[2]],
                  vcoord_[t.v[3]], q) > 0;
}

std::int64_t Delaunay3::alloc_tet() {
  if (!free_list_.empty()) {
    std::int64_t id = free_list_.back();
    free_list_.pop_back();
    tets_[static_cast<std::size_t>(id)].alive = true;
    mark_[static_cast<std::size_t>(id)] = 0;  // reused slot is not in-cavity
    return id;
  }
  tets_.push_back(Tet{});
  mark_.push_back(0);
  return static_cast<std::int64_t>(tets_.size() - 1);
}

void Delaunay3::free_tet(std::int64_t id) {
  tets_[static_cast<std::size_t>(id)].alive = false;
  free_list_.push_back(id);
}

std::int64_t Delaunay3::walk_from(std::int64_t start, const IPoint& q,
                                  std::uint64_t salt) const {
  std::int64_t cur = start;
  if (cur < 0 || !tets_[static_cast<std::size_t>(cur)].alive) cur = -1;
  if (cur < 0) {
    // Find any live tet to start from.
    for (std::size_t i = tets_.size(); i-- > 0;) {
      if (tets_[i].alive) {
        cur = static_cast<std::int64_t>(i);
        break;
      }
    }
    if (cur < 0) return -1;
  }
  std::uint64_t rng = mix64(salt ^ 0xabcdef);
  // Visibility walk with random negative-face choice; terminates on
  // Delaunay triangulations. Bounded as a hard safety net.
  const std::size_t max_steps = tets_.size() * 4 + 64;
  for (std::size_t step = 0; step < max_steps; ++step) {
    const Tet& t = tets_[static_cast<std::size_t>(cur)];
    int neg[4];
    int nneg = 0;
    bool inside = true;
    for (int f = 0; f < 4; ++f) {
      if (orient_face(t, f, q) < 0) {
        neg[nneg++] = f;
        inside = false;
      }
    }
    if (inside) return cur;
    rng = mix64(rng);
    int f = neg[rng % static_cast<std::uint64_t>(nneg)];
    std::int64_t next = t.n[f];
    if (next < 0) return -1;  // walked out of the super-tet
    cur = next;
  }
  return cur;  // safety net: should be unreachable
}

void Delaunay3::insert_point(std::uint32_t vertex, std::int64_t& hint) {
  IPoint q = vcoord_[vertex];

  for (int attempt = 0; attempt < 8; ++attempt) {
    std::int64_t seed = walk_from(hint, q, vertex + attempt);
    if (seed < 0) {
      throw std::logic_error("Delaunay3: insertion point outside super-tet");
    }

    // Conflict cavity: BFS over strictly-conflicting tets, seeded with the
    // containing tet (forced in even if q lies exactly on its circumsphere).
    ++stamp_;
    cavity_.clear();
    cavity_.push_back(seed);
    mark_[static_cast<std::size_t>(seed)] = stamp_;
    for (std::size_t i = 0; i < cavity_.size(); ++i) {
      const Tet& t = tets_[static_cast<std::size_t>(cavity_[i])];
      for (int f = 0; f < 4; ++f) {
        std::int64_t nb = t.n[f];
        if (nb < 0 || mark_[static_cast<std::size_t>(nb)] == stamp_) continue;
        if (in_conflict(tets_[static_cast<std::size_t>(nb)], q)) {
          mark_[static_cast<std::size_t>(nb)] = stamp_;
          cavity_.push_back(nb);
        }
      }
    }

    // Boundary faces: (cavity tet, face) whose neighbour is outside.
    struct BFace {
      std::uint32_t a, b, c;   // face vertices; tet (vertex,a,b,c) positive
      std::int64_t outside;    // neighbour beyond the face (-1 at world edge)
      std::int64_t cavity_tet; // the cavity tet this face belonged to
    };
    std::vector<BFace> faces;
    faces.reserve(cavity_.size() * 2 + 8);
    bool degenerate = false;
    for (std::int64_t ct : cavity_) {
      const Tet& t = tets_[static_cast<std::size_t>(ct)];
      for (int f = 0; f < 4; ++f) {
        std::int64_t nb = t.n[f];
        if (nb >= 0 && mark_[static_cast<std::size_t>(nb)] == stamp_) continue;
        // Face opposite vertex f. Orient it so the fan tet (q, a, b, c) is
        // positively oriented: orient3d(q,a,b,c) = -orient3d(a,b,c,q), so we
        // need q on the NEGATIVE side of (a,b,c).
        std::uint32_t a = t.v[(f + 1) & 3];
        std::uint32_t b = t.v[(f + 2) & 3];
        std::uint32_t c = t.v[(f + 3) & 3];
        int o = orient3d(vcoord_[a], vcoord_[b], vcoord_[c], q);
        if (o > 0) std::swap(b, c);
        if (o == 0) {
          degenerate = true;
          break;
        }
        faces.push_back({a, b, c, nb, ct});
      }
      if (degenerate) break;
    }
    if (degenerate) {
      // q lies exactly on the plane of a cavity-boundary face (possible only
      // when the forced seed was cospherical). Nudge the vertex one lattice
      // step and retry; the displacement is ~2^-16 of the domain.
      vcoord_[vertex].x += (attempt & 1) ? -(attempt + 1) : (attempt + 1);
      vcoord_[vertex].y += (attempt & 2) ? 1 : 0;
      q = vcoord_[vertex];
      continue;
    }

    // Retriangulate: one new tet per boundary face, fanned from `vertex`.
    // Cavity slots are freed only after wiring completes so that tet ids
    // remain unambiguous while outside tets still reference them.
    std::unordered_map<std::uint64_t, std::pair<std::int64_t, int>> edge_map;
    edge_map.reserve(faces.size() * 3);
    std::int64_t first_new = -1;
    for (const BFace& bf : faces) {
      std::int64_t nt = alloc_tet();
      if (first_new < 0) first_new = nt;
      Tet& t = tets_[static_cast<std::size_t>(nt)];
      t.v = {vertex, bf.a, bf.b, bf.c};
      t.n = {bf.outside, -1, -1, -1};
      if (bf.outside >= 0) {
        // Wire the outside tet's face (the one that pointed at the cavity
        // tet this boundary face came from) back to the new tet.
        Tet& ot = tets_[static_cast<std::size_t>(bf.outside)];
        for (int f = 0; f < 4; ++f) {
          if (ot.n[f] == bf.cavity_tet) {
            ot.n[f] = nt;
            break;
          }
        }
      }
      // Internal faces: opposite bf.a is (vertex, bf.b, bf.c) — shared with
      // the new tet across edge (bf.b, bf.c), etc.
      const std::uint32_t fv[3] = {bf.a, bf.b, bf.c};
      for (int f = 0; f < 3; ++f) {
        std::uint32_t e1 = fv[(f + 1) % 3];
        std::uint32_t e2 = fv[(f + 2) % 3];
        std::uint64_t key =
            (static_cast<std::uint64_t>(std::min(e1, e2)) << 32) |
            std::max(e1, e2);
        auto it = edge_map.find(key);
        if (it == edge_map.end()) {
          edge_map.emplace(key, std::make_pair(nt, f + 1));
        } else {
          auto [other, oface] = it->second;
          t.n[f + 1] = other;
          tets_[static_cast<std::size_t>(other)].n[oface] = nt;
          edge_map.erase(it);
        }
      }
    }
    for (std::int64_t ct : cavity_) free_tet(ct);
    hint = first_new;
    return;
  }
  throw std::logic_error(
      "Delaunay3: unresolvable degeneracy during insertion");
}

LocateResult Delaunay3::locate(const Vec3& q, std::int64_t hint) const {
  LocateResult res;
  IPoint iq = snap(q, 0);
  std::uint64_t salt = pack_key(iq);
  std::int64_t tid = walk_from(hint, iq, salt);
  if (tid < 0) return res;  // outside the super-tetrahedron

  // Queries exactly on a hull face are contained in both the finite tet and
  // the super tet across it; different walk paths may settle on either.
  // Prefer the finite tet: it gives a proper barycentric interpolation and
  // makes locate() deterministic regardless of the walk.
  {
    auto has_super = [&](std::int64_t id) {
      const Tet& tt = tets_[static_cast<std::size_t>(id)];
      return tt.v[0] < 4 || tt.v[1] < 4 || tt.v[2] < 4 || tt.v[3] < 4;
    };
    if (has_super(tid)) {
      const Tet& t0 = tets_[static_cast<std::size_t>(tid)];
      for (int f = 0; f < 4; ++f) {
        std::int64_t nb = t0.n[f];
        if (nb < 0 || has_super(nb)) continue;
        if (orient_face(t0, f, iq) != 0) continue;  // not on this face
        const Tet& tn = tets_[static_cast<std::size_t>(nb)];
        bool inside = true;
        for (int g = 0; g < 4; ++g) {
          if (orient_face(tn, g, iq) < 0) {
            inside = false;
            break;
          }
        }
        if (inside) {
          tid = nb;
          break;
        }
      }
    }
  }

  const Tet& t = tets_[static_cast<std::size_t>(tid)];
  res.tet = tid;
  res.in_hull = true;
  for (int i = 0; i < 4; ++i) {
    std::uint32_t v = t.v[i];
    res.points[i] = v < 4 ? LocateResult::kSuperVertex : vpoint_[v];
    if (v < 4) res.in_hull = false;
  }
  // Barycentric weights from the orientation determinants. Exact integers
  // converted to double only for the final normalisation.
  double w[4];
  double total = 0.0;
  for (int i = 0; i < 4; ++i) {
    const IPoint& a = i == 0 ? iq : vcoord_[t.v[0]];
    const IPoint& b = i == 1 ? iq : vcoord_[t.v[1]];
    const IPoint& c = i == 2 ? iq : vcoord_[t.v[2]];
    const IPoint& d = i == 3 ? iq : vcoord_[t.v[3]];
    w[i] = orient3d_det(a, b, c, d);
    total += w[i];
  }
  if (total <= 0.0) total = 1.0;  // degenerate guard; weights become ~0
  for (int i = 0; i < 4; ++i) res.weights[i] = w[i] / total;
  return res;
}

bool Delaunay3::validate(int checks, int probes, std::uint64_t seed) const {
  if (tets_.empty()) return false;
  std::uint64_t rng = mix64(seed);
  std::vector<std::int64_t> live;
  live.reserve(tets_.size());
  for (std::size_t i = 0; i < tets_.size(); ++i) {
    if (tets_[i].alive) live.push_back(static_cast<std::int64_t>(i));
  }
  if (live.empty()) return false;

  for (int c = 0; c < checks; ++c) {
    rng = mix64(rng);
    const std::int64_t tid = live[rng % live.size()];
    const Tet& t = tets_[static_cast<std::size_t>(tid)];
    // (a) positive orientation
    if (orient3d(vcoord_[t.v[0]], vcoord_[t.v[1]], vcoord_[t.v[2]],
                 vcoord_[t.v[3]]) <= 0) {
      return false;
    }
    // (b) mutual neighbour links
    for (int f = 0; f < 4; ++f) {
      std::int64_t nb = t.n[f];
      if (nb < 0) continue;
      const Tet& o = tets_[static_cast<std::size_t>(nb)];
      if (!o.alive) return false;
      bool back = o.n[0] == tid || o.n[1] == tid || o.n[2] == tid ||
                  o.n[3] == tid;
      if (!back) return false;
    }
    // (c) empty circumsphere against random vertices (augmented point set)
    for (int p = 0; p < probes; ++p) {
      rng = mix64(rng);
      auto v = static_cast<std::uint32_t>(4 + rng % (vcoord_.size() - 4));
      if (v == t.v[0] || v == t.v[1] || v == t.v[2] || v == t.v[3]) continue;
      if (insphere(vcoord_[t.v[0]], vcoord_[t.v[1]], vcoord_[t.v[2]],
                   vcoord_[t.v[3]], vcoord_[v]) > 0) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace vf::geometry
