#pragma once
// Incremental 3-D Delaunay tetrahedralization (Bowyer-Watson).
//
// This is the substrate for the paper's strongest classical baseline:
// Delaunay-based piecewise-linear interpolation (§III-B), which the paper
// implements with CGAL + OpenMP. Our construction:
//
//   1. Input points are affinely mapped into a 2^16 integer lattice with a
//      deterministic hash jitter (< 1 lattice cell) that breaks the extreme
//      co-sphericity of points sampled from a regular grid. All predicates
//      are then EXACT (__int128 determinants, see predicates.hpp), so the
//      incremental algorithm is robust by construction.
//   2. Points are inserted in Morton (Z-curve) order; each insertion walks
//      from the previously created tetrahedron, finds the conflict cavity by
//      BFS over the "inside circumsphere" predicate, and retriangulates the
//      cavity boundary fan-style.
//   3. A large bounding super-tetrahedron (4 artificial vertices) keeps the
//      structure closed; tetrahedra incident to super vertices are flagged
//      so interpolation can fall back to nearest-neighbour outside the hull.
//
// The lattice snap displaces geometry by at most one cell (2^-16 of the
// domain), orders of magnitude below the inter-sample spacing at the
// sampling rates studied (0.1%-5%), so interpolation quality is unaffected.
// Queries return barycentric coordinates w.r.t. the containing tetrahedron.

#include <array>
#include <cstdint>
#include <vector>

#include "vf/field/grid.hpp"
#include "vf/geometry/predicates.hpp"

namespace vf::geometry {

/// Result of a point-location query.
struct LocateResult {
  /// Containing tetrahedron id, or -1 when the query fell outside the
  /// super-tetrahedron (cannot happen for queries inside the build bbox).
  std::int64_t tet = -1;
  /// Indices into the ORIGINAL input point array for the tet corners.
  /// Entries are kSuperVertex for corners of the bounding super-tet.
  std::array<std::uint32_t, 4> points{};
  /// Barycentric weights of the query w.r.t. the (possibly super) corners.
  std::array<double, 4> weights{};
  /// True when all four corners are real input points (inside the hull).
  bool in_hull = false;

  static constexpr std::uint32_t kSuperVertex = 0xffffffffu;
};

class Delaunay3 {
 public:
  /// Build the tetrahedralization of `points`. Duplicate points (after
  /// lattice snapping) are merged onto one representative vertex.
  /// Requires points.size() >= 1.
  explicit Delaunay3(const std::vector<vf::field::Vec3>& points);

  /// Number of input points.
  [[nodiscard]] std::size_t point_count() const { return n_points_; }

  /// Number of live tetrahedra (including those touching super vertices).
  [[nodiscard]] std::size_t tetrahedron_count() const;

  /// Locate the tetrahedron containing `q` and compute barycentric weights.
  /// Thread-safe after construction. `hint` accelerates coherent query
  /// sequences (pass the previous result's tet).
  [[nodiscard]] LocateResult locate(const vf::field::Vec3& q,
                                    std::int64_t hint = -1) const;

  /// Sampled structural validation for tests: checks `checks` random live
  /// tets for (a) positive orientation, (b) mutual neighbour links, and
  /// (c) the Delaunay empty-circumsphere property against `probes` random
  /// vertices. Returns true when every check passes.
  [[nodiscard]] bool validate(int checks, int probes,
                              std::uint64_t seed = 7) const;

  /// The lattice-snapped coordinate of input point i (for tests).
  [[nodiscard]] IPoint snapped(std::uint32_t i) const;

 private:
  struct Tet {
    std::array<std::uint32_t, 4> v;   // vertex ids (0..3 are super vertices)
    std::array<std::int64_t, 4> n;    // neighbour opposite v[i]; -1 = none
    bool alive = true;
  };

  // --- coordinate mapping ---
  [[nodiscard]] IPoint snap(const vf::field::Vec3& p,
                            std::uint64_t jitter_key) const;

  // --- construction helpers ---
  void insert_point(std::uint32_t vertex, std::int64_t& hint);
  [[nodiscard]] std::int64_t walk_from(std::int64_t start, const IPoint& q,
                                       std::uint64_t salt) const;
  [[nodiscard]] int orient_face(const Tet& t, int face, const IPoint& q) const;
  [[nodiscard]] bool in_conflict(const Tet& t, const IPoint& q) const;

  std::int64_t alloc_tet();
  void free_tet(std::int64_t id);

  // vertex id -> lattice coordinates (ids 0..3 are the super vertices).
  std::vector<IPoint> vcoord_;
  // vertex id (>= 4) -> original input point index.
  std::vector<std::uint32_t> vpoint_;
  // original input point index -> vertex id (duplicates share a vertex).
  std::vector<std::uint32_t> point_vertex_;

  std::vector<Tet> tets_;
  std::vector<std::int64_t> free_list_;
  std::size_t n_points_ = 0;

  // scratch reused across insertions (construction is single-threaded)
  mutable std::vector<std::int64_t> cavity_;
  std::vector<std::uint32_t> mark_;     // per-tet visit stamps
  std::uint32_t stamp_ = 0;

  // physical -> lattice affine map
  vf::field::Vec3 map_origin_;
  vf::field::Vec3 map_scale_;
};

}  // namespace vf::geometry
