#pragma once
// Exact geometric predicates on lattice-snapped integer coordinates.
//
// The Delaunay substrate replaces the paper's CGAL dependency. CGAL's
// robustness comes from exact predicates; we get the same guarantee a
// different way: input points are snapped to a 2^16 integer lattice (with a
// deterministic sub-cell jitter that breaks the massive co-sphericity of
// regular-grid samples), and orient3d / insphere are evaluated as exact
// __int128 determinants. With coordinates bounded by the lattice size the
// determinants provably fit in 128 bits, so every predicate decision is
// exact and the incremental construction can never be corrupted by
// floating-point inconsistency.

#include <cstdint>

namespace vf::geometry {

/// Integer lattice point. Coordinates must stay within +-kMaxCoord for the
/// exactness guarantees below to hold.
struct IPoint {
  std::int64_t x = 0;
  std::int64_t y = 0;
  std::int64_t z = 0;
  bool operator==(const IPoint&) const = default;
};

/// Data points are snapped into [0, kLattice); the bounding super-
/// tetrahedron may use coordinates up to kMaxCoord in magnitude.
inline constexpr std::int64_t kLattice = 1 << 16;
inline constexpr std::int64_t kMaxCoord = 1 << 19;

/// Sign of the orientation determinant:
///   > 0  when d lies on the positive side of plane (a, b, c)
///         (i.e. (b-a) x (c-a) . (d-a) > 0),
///   < 0  on the negative side, 0 when coplanar.
/// Exact for |coords| <= kMaxCoord.
int orient3d(const IPoint& a, const IPoint& b, const IPoint& c,
             const IPoint& d);

/// The orientation determinant itself, rounded to double (exact sign, value
/// accurate to ~1 ulp of the exact integer). Used for barycentric weights.
double orient3d_det(const IPoint& a, const IPoint& b, const IPoint& c,
                    const IPoint& d);

/// Sign of the insphere determinant for a POSITIVELY oriented tet (a,b,c,d)
/// (orient3d(a,b,c,d) > 0):
///   > 0  when e is strictly inside the circumsphere,
///   < 0  strictly outside, 0 on the sphere.
/// Exact for |coords| <= kMaxCoord.
int insphere(const IPoint& a, const IPoint& b, const IPoint& c,
             const IPoint& d, const IPoint& e);

}  // namespace vf::geometry
