#include "vf/geometry/predicates.hpp"

namespace vf::geometry {

namespace {

using i128 = __int128;

inline int sign_of(i128 v) { return v > 0 ? 1 : (v < 0 ? -1 : 0); }

}  // namespace

namespace {
i128 orient3d_i128(const IPoint& a, const IPoint& b, const IPoint& c,
                   const IPoint& d) {
  // Triple product (b-a) x (c-a) . (d-a): positive when d lies on the
  // right-hand-rule side of triangle (a, b, c). Diffs fit in 2^20, each
  // product of three diffs in 2^60, the six-term sum in 2^63 — i128 ample.
  i128 bax = b.x - a.x, bay = b.y - a.y, baz = b.z - a.z;
  i128 cax = c.x - a.x, cay = c.y - a.y, caz = c.z - a.z;
  i128 dax = d.x - a.x, day = d.y - a.y, daz = d.z - a.z;

  return bax * (cay * daz - caz * day) - bay * (cax * daz - caz * dax) +
         baz * (cax * day - cay * dax);
}
}  // namespace

int orient3d(const IPoint& a, const IPoint& b, const IPoint& c,
             const IPoint& d) {
  return sign_of(orient3d_i128(a, b, c, d));
}

double orient3d_det(const IPoint& a, const IPoint& b, const IPoint& c,
                    const IPoint& d) {
  return static_cast<double>(orient3d_i128(a, b, c, d));
}

int insphere(const IPoint& a, const IPoint& b, const IPoint& c,
             const IPoint& d, const IPoint& e) {
  // Shewchuk's insphere determinant evaluated in exact integer arithmetic.
  // With |coords| <= 2^19: diffs < 2^20, 2x2 minors < 2^41, 3x3 minors
  // < 2^62, lifts < 2^42, and the final four-term sum < 2^106 — exact in
  // i128. Positive => e strictly inside the circumsphere of the positively
  // oriented tet (a, b, c, d).
  i128 aex = a.x - e.x, aey = a.y - e.y, aez = a.z - e.z;
  i128 bex = b.x - e.x, bey = b.y - e.y, bez = b.z - e.z;
  i128 cex = c.x - e.x, cey = c.y - e.y, cez = c.z - e.z;
  i128 dex = d.x - e.x, dey = d.y - e.y, dez = d.z - e.z;

  i128 ab = aex * bey - bex * aey;
  i128 bc = bex * cey - cex * bey;
  i128 cd = cex * dey - dex * cey;
  i128 da = dex * aey - aex * dey;
  i128 ac = aex * cey - cex * aey;
  i128 bd = bex * dey - dex * bey;

  i128 abc = aez * bc - bez * ac + cez * ab;
  i128 bcd = bez * cd - cez * bd + dez * bc;
  i128 cda = cez * da + dez * ac + aez * cd;
  i128 dab = dez * ab + aez * bd + bez * da;

  i128 alift = aex * aex + aey * aey + aez * aez;
  i128 blift = bex * bex + bey * bey + bez * bez;
  i128 clift = cex * cex + cey * cey + cez * cez;
  i128 dlift = dex * dex + dey * dey + dez * dez;

  i128 det = (dlift * abc - clift * dab) + (blift * cda - alift * bcd);
  // Shewchuk's expansion pairs with his orient3d convention (the mirror of
  // ours); negate so that for tets positive under OUR orient3d, a positive
  // return still means "strictly inside the circumsphere".
  return -sign_of(det);
}

}  // namespace vf::geometry
