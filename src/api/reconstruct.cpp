#include "vf/api/reconstruct.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "vf/obs/obs.hpp"
#include "vf/util/timer.hpp"

namespace vf::api {

using vf::core::FcnnModel;
using vf::field::ScalarField;
using vf::field::UniformGrid3;
using vf::field::Vec3;
using vf::sampling::SampleCloud;

const char* to_string(Method m) {
  switch (m) {
    case Method::Auto: return "auto";
    case Method::Fcnn: return "fcnn";
    case Method::FcnnStream: return "fcnn_stream";
    case Method::Nearest: return "nearest";
    case Method::Shepard: return "shepard";
    case Method::Linear: return "linear";
    case Method::Natural: return "natural";
    case Method::Rbf: return "rbf";
    case Method::Kriging: return "kriging";
  }
  return "unknown";
}

Method method_from_name(const std::string& name) {
  for (Method m : {Method::Auto, Method::Fcnn, Method::FcnnStream,
                   Method::Nearest, Method::Shepard, Method::Linear,
                   Method::Natural, Method::Rbf, Method::Kriging}) {
    if (name == to_string(m)) return m;
  }
  throw std::invalid_argument("vf::api: unknown method '" + name + "'");
}

namespace {

vf::interp::Method interp_method(Method m) {
  switch (m) {
    case Method::Nearest: return vf::interp::Method::Nearest;
    case Method::Shepard: return vf::interp::Method::Shepard;
    case Method::Linear: return vf::interp::Method::Linear;
    case Method::Natural: return vf::interp::Method::Natural;
    case Method::Rbf: return vf::interp::Method::Rbf;
    case Method::Kriging: return vf::interp::Method::Kriging;
    default:
      throw std::logic_error("vf::api: not a classical method");
  }
}

bool is_fcnn(Method m) {
  return m == Method::Fcnn || m == Method::FcnnStream;
}

}  // namespace

std::size_t predict_points(const FcnnModel& model,
                           const vf::spatial::NeighborIndex& index,
                           const std::vector<double>& values,
                           const Vec3* points, std::size_t count, double* out,
                           PointScratch& scratch, int repair_neighbors,
                           std::vector<std::size_t>* repaired_rows,
                           const vf::nn::QuantizedNetwork* qnet) {
  if (count == 0) return 0;
  vf::core::extract_features_into(index, values, points, count, scratch.X,
                                  scratch.features);
  model.in_norm.apply(scratch.X);
  if (qnet != nullptr && !qnet->empty()) {
    qnet->infer(scratch.X, scratch.Y, scratch.quant);
  } else {
    model.net.infer(scratch.X, scratch.Y, scratch.infer);
  }
  const double scale = model.out_norm.stddev[0];
  const double shift = model.out_norm.mean[0];
  std::size_t degraded = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const double y = scratch.Y(i, 0) * scale + shift;
    if (std::isfinite(y)) {
      out[i] = y;
    } else {
      out[i] = vf::core::shepard_estimate(index, values, points[i],
                                          repair_neighbors);
      ++degraded;
      if (repaired_rows != nullptr) repaired_rows->push_back(i);
    }
  }
  return degraded;
}

struct Reconstructor::Impl {
  /// Owned copy of the model once resolved (loaded from disk, or cloned
  /// from the borrowed pointer so later engine construction can't dangle).
  FcnnModel model;
  bool model_ready = false;

  std::unique_ptr<vf::core::BatchReconstructor> stream;
  std::unique_ptr<vf::core::FcnnReconstructor> full;
  std::unique_ptr<vf::interp::Reconstructor> classical;
  vf::interp::Method classical_method{};

  /// Point-mode cache: scrubbed cloud + neighbour index, keyed like the
  /// core engines on the source cloud's buffer identity.
  SampleCloud bound;
  std::unique_ptr<vf::spatial::NeighborIndex> index;
  vf::spatial::IndexKind bound_kind = vf::spatial::IndexKind::Auto;
  const void* cloud_key = nullptr;
  const void* values_key = nullptr;
  std::size_t cloud_count = 0;
  std::size_t scrub_nonfinite = 0;
  std::size_t scrub_duplicates = 0;
  PointScratch scratch;

  /// Quantized copy of the resolved model for the point-mode fast path,
  /// built lazily on first use when engine options ask for it.
  vf::nn::QuantizedNetwork qnet;
};

Reconstructor::Reconstructor(ReconstructOptions options)
    : options_(std::move(options)), impl_(std::make_unique<Impl>()) {}

Reconstructor::~Reconstructor() = default;
Reconstructor::Reconstructor(Reconstructor&&) noexcept = default;
Reconstructor& Reconstructor::operator=(Reconstructor&&) noexcept = default;

const FcnnModel& Reconstructor::model() {
  if (!impl_->model_ready) {
    if (options_.model != nullptr) {
      impl_->model = options_.model->clone();
    } else if (!options_.model_path.empty()) {
      impl_->model = FcnnModel::load(options_.model_path);
    } else {
      throw std::invalid_argument(
          "vf::api::Reconstructor: FCNN method needs a model or model_path");
    }
    impl_->model_ready = true;
  }
  return impl_->model;
}

namespace {

/// Resolve Auto against the configured model source.
Method resolve(const ReconstructOptions& o) {
  if (o.method != Method::Auto) return o.method;
  return (o.model != nullptr || !o.model_path.empty()) ? Method::FcnnStream
                                                       : Method::Shepard;
}

}  // namespace

ReconstructResult Reconstructor::reconstruct(const SampleCloud& cloud,
                                             const UniformGrid3& grid) {
  VF_OBS_SPAN("api/reconstruct");
  vf::util::Timer timer;  // vf-lint: allow(raw-timer) feeds ReconstructStats
  ReconstructResult result;
  const Method method = resolve(options_);

  if (options_.resilient) {
    if (options_.model_path.empty()) {
      throw std::invalid_argument(
          "vf::api::Reconstructor: resilient mode needs model_path");
    }
    result.field = vf::core::reconstruct_resilient(
        options_.model_path, cloud, grid, result.report, options_.fallback,
        options_.engine);
    result.stats.method = "resilient";
  } else if (method == Method::Fcnn) {
    if (!impl_->full) {
      impl_->full = std::make_unique<vf::core::FcnnReconstructor>(
          model().clone(), options_.engine);
    }
    result.field = impl_->full->reconstruct(cloud, grid, result.report);
    result.stats.method = to_string(method);
  } else if (method == Method::FcnnStream) {
    if (!impl_->stream) {
      impl_->stream = std::make_unique<vf::core::BatchReconstructor>(
          model().clone(), options_.engine);
    }
    result.field = impl_->stream->reconstruct(cloud, grid, result.report);
    result.stats.method = to_string(method);
  } else {
    const auto im = interp_method(method);
    if (!impl_->classical || impl_->classical_method != im) {
      impl_->classical = vf::interp::make_interpolator(im);
      impl_->classical_method = im;
    }
    result.field = impl_->classical->reconstruct(cloud, grid);
    result.report.input_points = cloud.size();
    result.report.predicted_points =
        static_cast<std::size_t>(grid.point_count());
    result.stats.method = to_string(method);
  }

  result.stats.points = static_cast<std::size_t>(grid.point_count());
  result.stats.seconds = timer.seconds();
  return result;
}

ReconstructResult Reconstructor::reconstruct_points(
    const SampleCloud& cloud, const std::vector<Vec3>& points) {
  VF_OBS_SPAN("api/reconstruct_points");
  vf::util::Timer timer;  // vf-lint: allow(raw-timer) feeds ReconstructStats
  const Method method = resolve(options_);
  if (!is_fcnn(method) && method != Method::Shepard &&
      method != Method::Nearest) {
    throw std::invalid_argument(
        std::string("vf::api: point queries support fcnn/fcnn_stream/"
                    "shepard/nearest, not ") +
        to_string(method));
  }

  ReconstructResult result;
  result.report.input_points = cloud.size();

  // Bind the cloud: scrub once, build the index once, reuse across calls.
  // Keyed on both buffer addresses + size so a different cloud reusing
  // the points allocation still rebinds; in-place mutation of a bound
  // cloud stays undetected (documented on reconstruct_points). The index
  // kind follows engine options; Auto resolves against this call's query
  // count and rebinds only when the selection flips.
  const void* key = static_cast<const void*>(cloud.points().data());
  const void* vkey = static_cast<const void*>(cloud.values().data());
  const bool same_cloud = key == impl_->cloud_key &&
                          vkey == impl_->values_key &&
                          cloud.size() == impl_->cloud_count;
  vf::spatial::IndexKind want = options_.engine.index;
  if (want == vf::spatial::IndexKind::Auto) {
    want = vf::spatial::select_index_kind(
        same_cloud ? impl_->bound.size() : cloud.size(), points.size());
  }
  if (!same_cloud || want != impl_->bound_kind || !impl_->index) {
    VF_OBS_SPAN("tree_build");
    if (!same_cloud) {
      impl_->bound =
          cloud.scrubbed(impl_->scrub_nonfinite, impl_->scrub_duplicates);
    }
    impl_->index = vf::spatial::build_index(impl_->bound.points(), want,
                                            points.size());
    impl_->bound_kind = want;
    impl_->cloud_key = key;
    impl_->values_key = vkey;
    impl_->cloud_count = cloud.size();
  }
  result.report.scrubbed_nonfinite = impl_->scrub_nonfinite;
  result.report.scrubbed_duplicates = impl_->scrub_duplicates;
  const auto& values = impl_->bound.values();

  result.values.resize(points.size());
  if (is_fcnn(method)) {
    const vf::nn::QuantizedNetwork* qnet = nullptr;
    if (options_.engine.quant != vf::nn::QuantPolicy::None) {
      if (impl_->qnet.empty()) {
        impl_->qnet =
            vf::nn::QuantizedNetwork(model().net, options_.engine.quant);
      }
      qnet = &impl_->qnet;
    }
    const std::size_t degraded = predict_points(
        model(), *impl_->index, values, points.data(), points.size(),
        result.values.data(), impl_->scratch,
        options_.engine.repair_neighbors, nullptr, qnet);
    result.report.predicted_points = points.size() - degraded;
    result.report.degraded_points = degraded;
    if (degraded > 0) {
      result.report.fallback = vf::core::FallbackReason::NonFiniteOutput;
      result.report.detail = "network produced non-finite outputs";
    }
  } else {
    const int k = method == Method::Nearest ? 1 : vf::core::kNeighbors;
    for (std::size_t i = 0; i < points.size(); ++i) {
      result.values[i] =
          vf::core::shepard_estimate(*impl_->index, values, points[i], k);
    }
    result.report.predicted_points = points.size();
  }

  result.stats.method = to_string(method);
  result.stats.points = points.size();
  result.stats.seconds = timer.seconds();
  return result;
}

ReconstructResult reconstruct(const ReconstructRequest& request) {
  if (request.cloud == nullptr) {
    throw std::invalid_argument("vf::api::reconstruct: cloud is required");
  }
  const bool has_grid = request.grid != nullptr;
  const bool has_points = request.points != nullptr;
  if (has_grid == has_points) {
    throw std::invalid_argument(
        "vf::api::reconstruct: set exactly one of grid / points");
  }
  Reconstructor rec(request.options);
  return has_grid ? rec.reconstruct(*request.cloud, *request.grid)
                  : rec.reconstruct_points(*request.cloud, *request.points);
}

}  // namespace vf::api
