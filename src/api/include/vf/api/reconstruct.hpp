#pragma once
// vf::api — the unified reconstruction facade.
//
// Callers used to hand-wire four different engine families with four
// different signatures: FcnnReconstructor (full-matrix), BatchReconstructor
// (streaming tiles), six classical interpolators behind vf::interp, and
// reconstruct_resilient (never-throw degradation). This header is the one
// front door: pick a Method, fill ReconstructOptions, and call either the
// stateful Reconstructor (caches the loaded model, the scrubbed cloud's
// k-d tree, and the chosen engine across calls — the serving layer's usage)
// or the one-shot reconstruct(ReconstructRequest) convenience.
//
// Two query shapes are supported:
//   grid mode   — reconstruct a full ScalarField on a UniformGrid3
//                 (every Method);
//   point mode  — predict scalar values at arbitrary positions
//                 (Fcnn/FcnnStream/Auto plus the Shepard and Nearest
//                 estimators; the mesh-building interpolators are
//                 grid-only and throw).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "vf/core/batch_reconstruct.hpp"
#include "vf/core/fcnn.hpp"
#include "vf/core/model.hpp"
#include "vf/core/options.hpp"
#include "vf/core/report.hpp"
#include "vf/core/resilient.hpp"
#include "vf/core/features.hpp"
#include "vf/field/scalar_field.hpp"
#include "vf/interp/reconstructor.hpp"
#include "vf/nn/network.hpp"
#include "vf/nn/quant.hpp"
#include "vf/sampling/sample_cloud.hpp"
#include "vf/spatial/neighbor_index.hpp"

namespace vf::api {

/// Every reconstruction engine the repo offers, as one closed enum.
enum class Method {
  Auto,        ///< Fcnn stream when a model is configured, Shepard otherwise
  Fcnn,        ///< trained FCNN, full-matrix path (FcnnReconstructor)
  FcnnStream,  ///< trained FCNN, O(tile) streaming path (BatchReconstructor)
  Nearest,
  Shepard,
  Linear,
  Natural,
  Rbf,
  Kriging,
};

/// Canonical name ("auto", "fcnn", "fcnn_stream", or the classical names).
[[nodiscard]] const char* to_string(Method m);

/// Parse a canonical name back to the enum (throws std::invalid_argument).
[[nodiscard]] Method method_from_name(const std::string& name);

struct ReconstructOptions {
  Method method = Method::Auto;

  /// Model source for the FCNN methods: a borrowed, caller-owned model
  /// pointer wins over `model_path`; with only a path the model is loaded
  /// lazily on first use and cached. Classical methods ignore both.
  const vf::core::FcnnModel* model = nullptr;
  std::string model_path;

  /// Never-throw mode (grid queries only): route through
  /// reconstruct_resilient so a missing/corrupt model degrades to the
  /// classical `fallback` instead of throwing. Requires `model_path`.
  bool resilient = false;
  vf::core::FallbackMethod fallback = vf::core::FallbackMethod::Shepard;

  /// Engine tuning forwarded to the concrete FCNN reconstructors.
  vf::core::ReconstructOptions engine;
};

/// Wall-clock and volume accounting for one facade call.
struct ReconstructStats {
  double seconds = 0.0;
  std::size_t points = 0;       ///< outputs produced (grid points or queries)
  std::string method;           ///< resolved engine name ("fcnn_stream", ...)
};

struct ReconstructResult {
  /// Grid mode: the reconstructed field. Point mode: empty (0-point grid).
  vf::field::ScalarField field;
  /// Point mode: one value per query position. Grid mode: empty.
  std::vector<double> values;
  vf::core::ReconstructReport report;
  ReconstructStats stats;
};

/// One-shot request: sample source, exactly one query shape, options.
struct ReconstructRequest {
  const vf::sampling::SampleCloud* cloud = nullptr;       // required
  const vf::field::UniformGrid3* grid = nullptr;          // grid mode
  const std::vector<vf::field::Vec3>* points = nullptr;   // point mode
  ReconstructOptions options;
};

/// Reusable per-thread scratch for predict_points (feature matrix,
/// activation ping-pong, SoA neighbour staging, quantized staging). One per
/// worker thread.
struct PointScratch {
  vf::nn::Matrix X;
  vf::nn::Matrix Y;
  vf::nn::InferScratch infer;
  vf::core::FeatureScratch features;
  vf::nn::QuantScratch quant;
};

/// Low-level point-prediction kernel shared by the facade's point mode and
/// the vf::serve micro-batcher: features against a prebuilt neighbour index
/// over the (already scrubbed) samples, normalisation, fused inference,
/// scalar de-normalisation into `out`, and per-point Shepard repair of
/// non-finite outputs. Returns the number of repaired (degraded) points;
/// when `repaired_rows` is given the row index of every repair is appended
/// to it (the micro-batcher slices these back onto individual requests).
/// When `qnet` is non-null (and quantized), inference runs the packed
/// single-precision GEMM instead of the fp64 Network path.
/// Thread-safe for concurrent calls with distinct `scratch`/`out`;
/// respects the caller's OpenMP context (call with a 1-thread ICV for
/// serial serving).
std::size_t predict_points(const vf::core::FcnnModel& model,
                           const vf::spatial::NeighborIndex& index,
                           const std::vector<double>& values,
                           const vf::field::Vec3* points, std::size_t count,
                           double* out, PointScratch& scratch,
                           int repair_neighbors = 5,
                           std::vector<std::size_t>* repaired_rows = nullptr,
                           const vf::nn::QuantizedNetwork* qnet = nullptr);

/// The stateful facade. Construction is cheap; the model load, the
/// scrubbed-cloud k-d tree, and the concrete engine are created lazily and
/// cached across calls. Not thread-safe (vf::serve layers its own
/// synchronisation and per-worker scratch on top of predict_points).
class Reconstructor {
 public:
  explicit Reconstructor(ReconstructOptions options = {});
  ~Reconstructor();
  Reconstructor(Reconstructor&&) noexcept;
  Reconstructor& operator=(Reconstructor&&) noexcept;
  Reconstructor(const Reconstructor&) = delete;
  Reconstructor& operator=(const Reconstructor&) = delete;

  /// Grid mode: reconstruct a full field (any Method).
  [[nodiscard]] ReconstructResult reconstruct(
      const vf::sampling::SampleCloud& cloud,
      const vf::field::UniformGrid3& grid);

  /// Point mode: predict values at arbitrary positions
  /// (Auto/Fcnn/FcnnStream/Shepard/Nearest; mesh interpolators throw).
  /// The scrubbed cloud and its k-d tree are cached between calls, keyed
  /// on the cloud's points/values buffer addresses and size (the core
  /// engines' binding convention). Mutating a bound cloud's coordinates
  /// or values IN PLACE between calls is not detected — pass a freshly
  /// allocated cloud to rebind.
  [[nodiscard]] ReconstructResult reconstruct_points(
      const vf::sampling::SampleCloud& cloud,
      const std::vector<vf::field::Vec3>& points);

  [[nodiscard]] const ReconstructOptions& options() const { return options_; }

  /// The model this facade resolves to (borrowed or lazily loaded).
  /// Throws if no model source is configured.
  [[nodiscard]] const vf::core::FcnnModel& model();

 private:
  struct Impl;
  ReconstructOptions options_;
  std::unique_ptr<Impl> impl_;
};

/// One-shot convenience over a throwaway Reconstructor.
[[nodiscard]] ReconstructResult reconstruct(const ReconstructRequest& request);

}  // namespace vf::api
