#include "vf/data/registry.hpp"

#include <algorithm>
#include <stdexcept>

#include "vf/data/combustion.hpp"
#include "vf/data/hurricane.hpp"
#include "vf/data/ionization.hpp"
#include "vf/util/parallel.hpp"

namespace vf::data {

// Dataset::generate lives here (dataset.hpp has no own .cpp) to keep the
// rasterisation path next to the registry helpers.
vf::field::ScalarField Dataset::generate(const vf::field::UniformGrid3& grid,
                                         double t) const {
  vf::field::ScalarField out(grid, name());
  const auto& d = grid.dims();
  vf::util::parallel_for(0, d.nz, [&](std::int64_t kk) {
    int k = static_cast<int>(kk);
    for (int j = 0; j < d.ny; ++j) {
      for (int i = 0; i < d.nx; ++i) {
        out[grid.index(i, j, k)] = evaluate(grid.position(i, j, k), t);
      }
    }
  }, /*grain=*/1);
  return out;
}

vf::field::ScalarField Dataset::generate(vf::field::Dims dims, double t) const {
  return generate(grid_for(dims), t);
}

vf::field::UniformGrid3 Dataset::grid_for(vf::field::Dims dims) const {
  auto box = domain();
  auto ext = box.extent();
  vf::field::Vec3 spacing{
      dims.nx > 1 ? ext.x / (dims.nx - 1) : 1.0,
      dims.ny > 1 ? ext.y / (dims.ny - 1) : 1.0,
      dims.nz > 1 ? ext.z / (dims.nz - 1) : 1.0,
  };
  return vf::field::UniformGrid3(dims, box.min, spacing);
}

std::unique_ptr<Dataset> make_dataset(const std::string& name,
                                      std::uint64_t seed) {
  if (name == "hurricane") {
    return std::make_unique<HurricaneDataset>(seed ? seed : 1);
  }
  if (name == "combustion") {
    return std::make_unique<CombustionDataset>(seed ? seed : 2);
  }
  if (name == "ionization") {
    return std::make_unique<IonizationDataset>(seed ? seed : 3);
  }
  throw std::invalid_argument("make_dataset: unknown dataset '" + name + "'");
}

std::vector<std::string> dataset_names() {
  return {"hurricane", "combustion", "ionization"};
}

vf::field::Dims scaled_dims(const Dataset& ds, int divisor) {
  auto d = ds.paper_dims();
  divisor = std::max(divisor, 1);
  return {std::max(d.nx / divisor, 8), std::max(d.ny / divisor, 8),
          std::max(d.nz / divisor, 8)};
}

}  // namespace vf::data
