#include "vf/data/combustion.hpp"

#include <algorithm>
#include <cmath>

#include "vf/data/noise.hpp"

namespace vf::data {

using vf::field::BoundingBox;
using vf::field::Vec3;

CombustionDataset::CombustionDataset(std::uint64_t seed) : seed_(seed) {}

BoundingBox CombustionDataset::domain() const {
  // Nondimensional jet domain: y is streamwise (360 points in the paper).
  return {{0.0, 0.0, 0.0}, {4.0, 6.0, 1.0}};
}

double CombustionDataset::evaluate(const Vec3& p, double t) const {
  // Jet centreline along y at x = 2, z = 0.5; jet widens downstream.
  double s = p.y / 6.0;                       // streamwise fraction
  double cx = 2.0 + 0.25 * std::sin(2.0 * s * M_PI + 0.15 * t);
  double cz = 0.5 + 0.1 * std::sin(3.0 * s * M_PI - 0.11 * t);
  double rx = p.x - cx;
  double rz = p.z - cz;
  double radius = std::sqrt(rx * rx + 0.8 * rz * rz);

  // Jet core half-width grows downstream; core mixfrac decays downstream.
  double width = 0.35 + 0.55 * s;
  double core = 1.0 - 0.55 * s;

  // Turbulent wrinkling of the interface; amplitude grows downstream
  // (transition to turbulence) and the pattern advects with time.
  Vec3 q{p.x * 2.2, p.y * 2.2 - 1.4 * t * 0.25, p.z * 2.2};
  double wrinkle = (0.08 + 0.30 * s) * fbm_time(q, t * 0.3, seed_, 5);

  // Sharp sigmoid interface between fuel-rich core and oxidiser.
  double d = (radius + wrinkle - width) / 0.08;
  double mix = core / (1.0 + std::exp(std::clamp(d, -40.0, 40.0)));

  // Fine-grained in-core turbulence so the interior is not flat.
  Vec3 q2{p.x * 6.0, p.y * 6.0 - 2.0 * t * 0.25, p.z * 6.0};
  double inner = 0.06 * s * fbm_time(q2, t * 0.4, seed_ + 17, 4);
  mix += inner * mix;

  // Trace background mixing outside the jet.
  double bg = 0.015 * (1.0 + fbm_time(Vec3{p.x, p.y, p.z}, t * 0.2,
                                      seed_ + 99, 3));
  return std::clamp(mix + bg, 0.0, 1.0);
}

}  // namespace vf::data
