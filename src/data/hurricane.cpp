#include "vf/data/hurricane.hpp"

#include <cmath>

#include "vf/data/noise.hpp"

namespace vf::data {

using vf::field::BoundingBox;
using vf::field::Vec3;

HurricaneDataset::HurricaneDataset(std::uint64_t seed) : seed_(seed) {}

BoundingBox HurricaneDataset::domain() const {
  // Horizontal extent ~2000 km square, vertical ~20 km, in kilometres.
  return {{0.0, 0.0, 0.0}, {2000.0, 2000.0, 20.0}};
}

Vec3 HurricaneDataset::eye_position(double t) const {
  // Curved northwest track: starts southeast, accelerates, recurves north.
  double u = t / 47.0;  // 0..1 over the run
  double x = 1600.0 - 1100.0 * u - 150.0 * std::sin(2.2 * u);
  double y = 400.0 + 1200.0 * u * u + 250.0 * u;
  return {x, y, 0.0};
}

double HurricaneDataset::evaluate(const Vec3& p, double t) const {
  Vec3 eye = eye_position(t);
  double dx = p.x - eye.x;
  double dy = p.y - eye.y;
  double r = std::sqrt(dx * dx + dy * dy);

  // Intensity ramps up and then weakens near landfall.
  double u = t / 47.0;
  double intensity = 0.55 + 0.45 * std::sin(M_PI * std::min(u * 1.25, 1.0));

  // Holland-like radial pressure profile: deficit = dp * exp(-(R/r)^b).
  const double dp = 65.0 * intensity;  // hPa central deficit
  const double R = 90.0 + 25.0 * std::sin(3.0 * u);  // radius of max winds, km
  const double b = 1.6;
  double deficit =
      r > 1e-6 ? dp * std::exp(-std::pow(R / r, b)) : 0.0;
  // exp(-(R/r)^b) -> 1 far away; deficit should vanish far away and be
  // maximal in the centre, so invert:
  deficit = dp - deficit;

  // Vertical decay: the warm-core low fills with height.
  double zfrac = p.z / 20.0;
  double vertical = std::exp(-1.8 * zfrac);

  // Eyewall annulus: a small positive pressure ripple just outside R.
  double wall = 6.0 * intensity * std::exp(-0.5 * std::pow((r - 1.35 * R) / 30.0, 2.0));

  // Large-scale synoptic gradient plus a mild vertical trend. (The WRF
  // "Pressure" field the paper reconstructs is perturbation-like: the
  // hydrostatic column trend is removed, so weather structure dominates.)
  double background = 1012.0 - 0.004 * (p.y - 1000.0) - 9.0 * zfrac;

  // Drifting mesoscale turbulence (rain bands etc.), stronger at low z.
  // Kept small relative to the synoptic structure: the reconstructable
  // smooth field dominates the variance, as in the WRF pressure output.
  Vec3 q{p.x / 220.0 + 0.35 * t, p.y / 220.0, p.z / 8.0};
  double turb = 1.2 * (1.0 - 0.6 * zfrac) * fbm_time(q, t * 0.35, seed_, 4);

  // Spiral rain bands: pressure ripples along log-spiral arms around the eye.
  double theta = std::atan2(dy, dx);
  double band = 0.0;
  if (r > 1e-6 && r < 700.0) {
    double phase = theta - 0.02 * r - 0.8 * t * 0.2;
    band = 1.5 * intensity * std::cos(2.0 * phase) *
           std::exp(-std::pow((r - 260.0) / 220.0, 2.0));
  }

  return background - deficit * vertical + wall * vertical + turb + band;
}

}  // namespace vf::data
