#include "vf/data/noise.hpp"

#include <cmath>

namespace vf::data {

namespace {

/// splitmix64-style avalanche of lattice coordinates + seed.
std::uint64_t hash_coords(std::int64_t ix, std::int64_t iy, std::int64_t iz,
                          std::uint64_t seed) {
  std::uint64_t h = seed;
  h ^= static_cast<std::uint64_t>(ix) * 0x9e3779b97f4a7c15ULL;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h ^= static_cast<std::uint64_t>(iy) * 0xc2b2ae3d27d4eb4fULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  h ^= static_cast<std::uint64_t>(iz) * 0x165667b19e3779f9ULL;
  h = (h ^ (h >> 31)) * 0xd6e8feb86659fd93ULL;
  return h ^ (h >> 32);
}

/// Lattice corner value in [-1, 1].
double corner_value(std::int64_t ix, std::int64_t iy, std::int64_t iz,
                    std::uint64_t seed) {
  std::uint64_t h = hash_coords(ix, iy, iz, seed);
  return static_cast<double>(h >> 11) * 0x1.0p-53 * 2.0 - 1.0;
}

/// Quintic fade: 6t^5 - 15t^4 + 10t^3 (zero first & second derivative at
/// lattice points, so the noise is C2 along axes).
inline double fade(double t) { return t * t * t * (t * (t * 6 - 15) + 10); }

inline double lerp(double a, double b, double t) { return a + (b - a) * t; }

}  // namespace

double value_noise(const vf::field::Vec3& p, std::uint64_t seed) {
  double fx = std::floor(p.x), fy = std::floor(p.y), fz = std::floor(p.z);
  auto ix = static_cast<std::int64_t>(fx);
  auto iy = static_cast<std::int64_t>(fy);
  auto iz = static_cast<std::int64_t>(fz);
  double tx = fade(p.x - fx), ty = fade(p.y - fy), tz = fade(p.z - fz);

  double c000 = corner_value(ix, iy, iz, seed);
  double c100 = corner_value(ix + 1, iy, iz, seed);
  double c010 = corner_value(ix, iy + 1, iz, seed);
  double c110 = corner_value(ix + 1, iy + 1, iz, seed);
  double c001 = corner_value(ix, iy, iz + 1, seed);
  double c101 = corner_value(ix + 1, iy, iz + 1, seed);
  double c011 = corner_value(ix, iy + 1, iz + 1, seed);
  double c111 = corner_value(ix + 1, iy + 1, iz + 1, seed);

  double x00 = lerp(c000, c100, tx);
  double x10 = lerp(c010, c110, tx);
  double x01 = lerp(c001, c101, tx);
  double x11 = lerp(c011, c111, tx);
  double y0 = lerp(x00, x10, ty);
  double y1 = lerp(x01, x11, ty);
  return lerp(y0, y1, tz);
}

double fbm(const vf::field::Vec3& p, std::uint64_t seed, int octaves,
           double lacunarity, double gain) {
  double sum = 0.0;
  double amp = 1.0;
  double norm = 0.0;
  vf::field::Vec3 q = p;
  for (int o = 0; o < octaves; ++o) {
    sum += amp * value_noise(q, seed + 0x51ed270b * static_cast<std::uint64_t>(o));
    norm += amp;
    amp *= gain;
    q = q * lacunarity;
  }
  return norm > 0.0 ? sum / norm : 0.0;
}

double fbm_time(const vf::field::Vec3& p, double t, std::uint64_t seed,
                int octaves, double lacunarity, double gain) {
  // Blend between integer time slices of independent noise fields; each
  // slice is itself smooth in space, and the cosine ramp makes the blend
  // smooth in time.
  double ft = std::floor(t);
  auto it = static_cast<std::int64_t>(ft);
  double frac = t - ft;
  double w = 0.5 - 0.5 * std::cos(frac * M_PI);
  double a = fbm(p, seed + 0x9e3779b9ULL * static_cast<std::uint64_t>(it),
                 octaves, lacunarity, gain);
  double b = fbm(p, seed + 0x9e3779b9ULL * static_cast<std::uint64_t>(it + 1),
                 octaves, lacunarity, gain);
  return a * (1.0 - w) + b * w;
}

}  // namespace vf::data
