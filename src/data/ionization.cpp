#include "vf/data/ionization.hpp"

#include <algorithm>
#include <cmath>

#include "vf/data/noise.hpp"

namespace vf::data {

using vf::field::BoundingBox;
using vf::field::Vec3;

IonizationDataset::IonizationDataset(std::uint64_t seed) : seed_(seed) {}

BoundingBox IonizationDataset::domain() const {
  // Elongated box; the front propagates along x. Nondimensional units.
  return {{0.0, 0.0, 0.0}, {6.0, 2.5, 2.5}};
}

double IonizationDataset::front_position(double t) const {
  // Decelerating D-type front: fast early expansion, slowing later.
  double u = t / 199.0;
  return 0.4 + 5.0 * std::pow(u, 0.62);
}

double IonizationDataset::evaluate(const Vec3& p, double t) const {
  double u = t / 199.0;
  double xf = front_position(t);

  // Finger instabilities corrugate the front in (y, z); their amplitude
  // grows with time (shadowing instability) and they have both coherent
  // modes and a stochastic component.
  double amp = 0.05 + 0.45 * u;
  double coherent = std::sin(5.2 * p.y + 1.0) * std::sin(4.4 * p.z + 2.0);
  double stochastic =
      fbm_time(Vec3{p.y * 2.4, p.z * 2.4, 0.3 * t * 0.1}, t * 0.15,
               seed_ + 7, 4);
  double corrugation = amp * (0.45 * coherent + 0.8 * stochastic);
  double front_here = xf + corrugation;

  // Signed distance ahead (+) / behind (-) the corrugated front.
  double d = p.x - front_here;

  // Smooth step between ionized density (low) and neutral density (high).
  const double rho_ion = 0.05;
  const double rho_neutral = 1.0;
  double w = 1.0 / (1.0 + std::exp(std::clamp(-d / 0.05, -40.0, 40.0)));
  double rho = rho_ion + (rho_neutral - rho_ion) * w;

  // Swept-up dense shell just ahead of the front; thins as the front slows.
  double shell_amp = 1.6 * (1.0 - 0.45 * u);
  rho += shell_amp * std::exp(-0.5 * std::pow((d - 0.07) / 0.06, 2.0));

  // Ambient clumpy medium ahead, mild residual structure behind.
  double clumps =
      0.35 * std::max(0.0, fbm(Vec3{p.x * 2.0, p.y * 2.0, p.z * 2.0},
                               seed_ + 31, 5));
  rho += clumps * w;
  rho += 0.02 * (1.0 - w) *
         (1.0 + fbm_time(Vec3{p.x * 3.0, p.y * 3.0, p.z * 3.0}, t * 0.2,
                         seed_ + 63, 3));

  return std::max(rho, 0.0);
}

}  // namespace vf::data
