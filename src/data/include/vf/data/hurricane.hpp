#pragma once
// Hurricane Isabel stand-in: sea-level pressure of a translating cyclone.
//
// The real dataset (vis contest 2004) is a 250x250x50 x 48-timestep WRF run;
// the paper reconstructs its Pressure field, whose dominant feature is the
// deep low-pressure eye moving across the domain. This generator reproduces
// that structure analytically: a background pressure gradient, a radially
// symmetric pressure deficit (Holland-profile-like) centred on an eye that
// follows a curved track over the 48 steps, an eyewall annulus, vertical
// decay of the deficit with altitude, and drifting mesoscale turbulence.

#include <cstdint>

#include "vf/data/dataset.hpp"

namespace vf::data {

class HurricaneDataset final : public Dataset {
 public:
  explicit HurricaneDataset(std::uint64_t seed = 1);

  [[nodiscard]] std::string name() const override { return "hurricane"; }
  [[nodiscard]] vf::field::Dims paper_dims() const override {
    return {250, 250, 50};
  }
  [[nodiscard]] int timestep_count() const override { return 48; }
  [[nodiscard]] vf::field::BoundingBox domain() const override;
  [[nodiscard]] double evaluate(const vf::field::Vec3& p,
                                double t) const override;

  /// Eye centre (x, y) at timestep t — exposed for tests.
  [[nodiscard]] vf::field::Vec3 eye_position(double t) const;

 private:
  std::uint64_t seed_;
};

}  // namespace vf::data
