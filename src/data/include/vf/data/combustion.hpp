#pragma once
// Turbulent combustion stand-in: mixture-fraction (mixfrac) field.
//
// The paper uses the 240x360x60 x 122-step UC Davis turbulent-combustion
// benchmark and reconstructs "Mixfrac" — the fuel/oxidiser mass proportion,
// a [0,1] scalar with a thin, convoluted flame interface where it crosses
// the stoichiometric value. This generator builds a jet-like mixing layer:
// fuel-rich core decaying downstream, wrinkled by multi-octave turbulence
// that advects with time, producing the sharp high-gradient interface that
// makes linear interpolation struggle (paper Fig 2).

#include <cstdint>

#include "vf/data/dataset.hpp"

namespace vf::data {

class CombustionDataset final : public Dataset {
 public:
  explicit CombustionDataset(std::uint64_t seed = 2);

  [[nodiscard]] std::string name() const override { return "combustion"; }
  [[nodiscard]] vf::field::Dims paper_dims() const override {
    return {240, 360, 60};
  }
  [[nodiscard]] int timestep_count() const override { return 122; }
  [[nodiscard]] vf::field::BoundingBox domain() const override;
  [[nodiscard]] double evaluate(const vf::field::Vec3& p,
                                double t) const override;

 private:
  std::uint64_t seed_;
};

}  // namespace vf::data
