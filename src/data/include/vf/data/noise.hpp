#pragma once
// Deterministic procedural noise for the synthetic datasets.
//
// The paper evaluates on three archived simulation datasets we cannot ship.
// The stand-in generators (hurricane/combustion/ionization) synthesise fields
// with the same qualitative structure; their broadband "turbulence" comes
// from the lattice value noise + fractional Brownian motion implemented here.
// Everything is a pure function of (position, seed), so any grid resolution
// samples the same underlying continuous field — which is exactly what the
// upscaling experiment (paper Fig 13) requires.

#include <cstdint>

#include "vf/field/grid.hpp"

namespace vf::data {

/// Smooth lattice value noise in [-1, 1]. C1-continuous (quintic fade).
/// `seed` selects an independent noise field.
double value_noise(const vf::field::Vec3& p, std::uint64_t seed);

/// Fractional Brownian motion: `octaves` layers of value noise, each at
/// `lacunarity` times the previous frequency and `gain` times the previous
/// amplitude. Output is normalised to roughly [-1, 1].
double fbm(const vf::field::Vec3& p, std::uint64_t seed, int octaves,
           double lacunarity = 2.0, double gain = 0.5);

/// Time-coherent fBm: interpolates between two seeds so the field evolves
/// smoothly as `t` advances (used for temporally drifting turbulence).
double fbm_time(const vf::field::Vec3& p, double t, std::uint64_t seed,
                int octaves, double lacunarity = 2.0, double gain = 0.5);

}  // namespace vf::data
