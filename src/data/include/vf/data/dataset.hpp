#pragma once
// Synthetic spatiotemporal dataset interface.
//
// A Dataset is an analytic, seeded, time-parameterised continuous field
// f(position, t) that can be rasterised onto ANY uniform grid. This mirrors
// what the paper needs from its archived simulations:
//   - per-timestep full-resolution volumes (training / ground truth),
//   - many timesteps with coherent temporal evolution (Experiment 2),
//   - the same physics evaluated at a different resolution and a shifted
//     spatial domain (Experiment 3, volume upscaling).

#include <memory>
#include <string>

#include "vf/field/scalar_field.hpp"

namespace vf::data {

class Dataset {
 public:
  virtual ~Dataset() = default;

  /// Short identifier ("hurricane", "combustion", "ionization").
  [[nodiscard]] virtual std::string name() const = 0;

  /// Grid resolution used in the paper.
  [[nodiscard]] virtual vf::field::Dims paper_dims() const = 0;

  /// Number of timesteps in the paper's dataset.
  [[nodiscard]] virtual int timestep_count() const = 0;

  /// Physical domain the paper-resolution grid covers.
  [[nodiscard]] virtual vf::field::BoundingBox domain() const = 0;

  /// Continuous field value at physical position `p`, timestep `t`
  /// (t may be fractional; integer t correspond to stored steps).
  [[nodiscard]] virtual double evaluate(const vf::field::Vec3& p,
                                        double t) const = 0;

  /// Rasterise timestep `t` onto `grid` (parallelised).
  [[nodiscard]] vf::field::ScalarField generate(const vf::field::UniformGrid3& grid,
                                                double t) const;

  /// Rasterise onto the default grid for `dims` spanning domain().
  [[nodiscard]] vf::field::ScalarField generate(vf::field::Dims dims,
                                                double t) const;

  /// Grid with `dims` points spanning domain().
  [[nodiscard]] vf::field::UniformGrid3 grid_for(vf::field::Dims dims) const;
};

}  // namespace vf::data
