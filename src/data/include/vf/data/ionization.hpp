#pragma once
// Ionization Front Instabilities stand-in: gas density around a propagating
// ionization front (Whalen & Norman 2008).
//
// The real dataset is 600x248x248 x 200 steps; the paper reconstructs the
// density field: very low density in the ionized region behind the front,
// higher density in the neutral gas ahead, with a compressed shell at the
// front and finger-like instabilities corrugating it. The generator moves a
// front along +x over the run, grows sinusoidal+stochastic fingers with
// time, and superimposes the dense shell and ambient clumpiness.

#include <cstdint>

#include "vf/data/dataset.hpp"

namespace vf::data {

class IonizationDataset final : public Dataset {
 public:
  explicit IonizationDataset(std::uint64_t seed = 3);

  [[nodiscard]] std::string name() const override { return "ionization"; }
  [[nodiscard]] vf::field::Dims paper_dims() const override {
    return {600, 248, 248};
  }
  [[nodiscard]] int timestep_count() const override { return 200; }
  [[nodiscard]] vf::field::BoundingBox domain() const override;
  [[nodiscard]] double evaluate(const vf::field::Vec3& p,
                                double t) const override;

  /// Mean front x-position at timestep t — exposed for tests.
  [[nodiscard]] double front_position(double t) const;

 private:
  std::uint64_t seed_;
};

}  // namespace vf::data
