#pragma once
// Dataset registry: look up the three benchmark stand-ins by name, and map
// a global scale factor to per-dataset bench resolutions.

#include <memory>
#include <string>
#include <vector>

#include "vf/data/dataset.hpp"

namespace vf::data {

/// Construct a dataset by name ("hurricane", "combustion", "ionization").
/// Throws std::invalid_argument for unknown names.
std::unique_ptr<Dataset> make_dataset(const std::string& name,
                                      std::uint64_t seed = 0);

/// All registered dataset names, in paper order.
std::vector<std::string> dataset_names();

/// Bench resolution: the paper dims scaled down by `divisor` per axis
/// (minimum 8 points per axis). divisor=1 reproduces paper scale.
vf::field::Dims scaled_dims(const Dataset& ds, int divisor);

}  // namespace vf::data
