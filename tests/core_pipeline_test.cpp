// Tests for the legacy in-situ TemporalPipeline facade. The class is
// deprecated in favour of vf::api::Pipeline but stays covered until it is
// removed.

#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif

#include <gtest/gtest.h>

#include "vf/core/pipeline.hpp"
#include "vf/data/registry.hpp"
#include "vf/field/metrics.hpp"

namespace {

using namespace vf::core;

PipelineOptions small_options() {
  PipelineOptions opt;
  opt.archive_fraction = 0.04;
  opt.pretrain_config.hidden = {24, 12};
  opt.pretrain_config.epochs = 30;
  opt.pretrain_config.max_train_rows = 3000;
  opt.finetune_epochs = 8;
  return opt;
}

TEST(Pipeline, ValidatesOptions) {
  auto opt = small_options();
  opt.archive_fraction = 0.0;
  EXPECT_THROW(TemporalPipeline{opt}, std::invalid_argument);
  opt = small_options();
  opt.finetune_epochs = 0;
  EXPECT_THROW(TemporalPipeline{opt}, std::invalid_argument);
}

TEST(Pipeline, ThrowsBeforeFirstIngest) {
  TemporalPipeline pipe(small_options());
  EXPECT_THROW((void)pipe.model(), std::logic_error);
  auto ds = vf::data::make_dataset("hurricane");
  auto truth = ds->generate({12, 12, 6}, 0.0);
  vf::sampling::ImportanceSampler s;
  auto cloud = s.sample(truth, 0.05, 1);
  EXPECT_THROW((void)pipe.reconstruct(cloud, truth.grid()), std::logic_error);
}

TEST(Pipeline, IngestReconstructRoundTrip) {
  auto ds = vf::data::make_dataset("hurricane");
  TemporalPipeline pipe(small_options());

  double worst_snr = 1e9;
  for (int s = 0; s < 3; ++s) {
    auto truth = ds->generate({16, 16, 8}, s * 10.0);
    auto art = pipe.ingest(truth);
    EXPECT_EQ(art.timestep, s);
    EXPECT_GT(art.train_seconds, 0.0);
    EXPECT_GT(art.final_loss, 0.0);
    // The archived cloud respects the archival fraction.
    EXPECT_NEAR(art.cloud.sampling_fraction(), 0.04, 0.005);

    auto rec = pipe.reconstruct(art.cloud, truth.grid());
    worst_snr = std::min(worst_snr, vf::field::snr_db(truth, rec));
  }
  EXPECT_EQ(pipe.steps(), 3);
  EXPECT_GT(worst_snr, 0.0);  // every archived step reconstructable
}

TEST(Pipeline, FirstIngestTrainsLongerThanLaterOnes) {
  auto ds = vf::data::make_dataset("hurricane");
  TemporalPipeline pipe(small_options());
  auto t0 = pipe.ingest(ds->generate({16, 16, 8}, 0.0));
  auto t1 = pipe.ingest(ds->generate({16, 16, 8}, 4.0));
  // 30-epoch pretrain vs 8-epoch fine-tune.
  EXPECT_GT(t0.train_seconds, t1.train_seconds);
}

TEST(Pipeline, Case2ModeKeepsHeadFrozen) {
  auto ds = vf::data::make_dataset("hurricane");
  auto opt = small_options();
  opt.finetune_mode = FineTuneMode::LastTwoLayers;
  TemporalPipeline pipe(opt);
  pipe.ingest(ds->generate({14, 14, 6}, 0.0));

  auto& head = dynamic_cast<vf::nn::DenseLayer&>(
      const_cast<FcnnModel&>(pipe.model()).net.layer(0));
  auto snapshot = head.weights();
  pipe.ingest(ds->generate({14, 14, 6}, 8.0));
  auto& after = dynamic_cast<vf::nn::DenseLayer&>(
      const_cast<FcnnModel&>(pipe.model()).net.layer(0));
  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    ASSERT_EQ(after.weights().data()[i], snapshot.data()[i]);
  }
}

}  // namespace
