// Runtime lock-order detector (vf/util/lock_order.hpp): a seeded A->B /
// B->A inversion is reported exactly once with both lock names, abort mode
// dies with the report, and legitimate nesting patterns — consistent
// hierarchies, try_lock probes, CondVar waits — never false-positive.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "vf/util/lock_order.hpp"
#include "vf/util/mutex.hpp"
#include "vf/util/thread_annotations.hpp"

namespace {

using namespace std::chrono_literals;
using vf::util::CondVar;
using vf::util::Mutex;
using vf::util::MutexLock;
namespace lockorder = vf::util::lockorder;

/// Arms the detector in Log mode (no abort) with a clean graph, and
/// disarms + clears on the way out so other suites start fresh.
class LockOrderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    lockorder::reset();
    lockorder::set_action(lockorder::Action::Log);
    lockorder::set_enabled(true);
  }
  void TearDown() override {
    lockorder::set_enabled(false);
    lockorder::reset();
  }
};

TEST_F(LockOrderTest, SeededInversionIsDetectedWithBothNames) {
  Mutex a("test.a");
  Mutex b("test.b");
  {
    const MutexLock la(a);
    const MutexLock lb(b);  // records test.a -> test.b
  }
  EXPECT_EQ(lockorder::cycle_count(), 0u);
  {
    const MutexLock lb(b);
    const MutexLock la(a);  // closes the cycle: test.b -> test.a
  }
  EXPECT_EQ(lockorder::cycle_count(), 1u);

  const auto reports = lockorder::cycle_reports();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_NE(reports[0].find("lock-order inversion"), std::string::npos);
  EXPECT_NE(reports[0].find("test.a"), std::string::npos);
  EXPECT_NE(reports[0].find("test.b"), std::string::npos);
  // Both sides of the conflict are present: the acquiring thread's held
  // stack and the recorded context of the earlier conflicting edge.
  EXPECT_NE(reports[0].find("is acquiring"), std::string::npos);
  EXPECT_NE(reports[0].find("conflicting order recorded earlier"),
            std::string::npos);
}

TEST_F(LockOrderTest, InversionAcrossThreadsIsDetectedWithoutDeadlocking) {
  Mutex a("test.thr.a");
  Mutex b("test.thr.b");
  // Thread 1 records a -> b and fully releases before thread 2 starts, so
  // the schedule itself can never deadlock — the detector still flags the
  // order violation from the graph alone.
  std::thread t1([&] {
    const MutexLock la(a);
    const MutexLock lb(b);
  });
  t1.join();
  std::thread t2([&] {
    const MutexLock lb(b);
    const MutexLock la(a);
  });
  t2.join();
  EXPECT_EQ(lockorder::cycle_count(), 1u);
}

TEST_F(LockOrderTest, EachInvertedPairIsReportedOnce) {
  Mutex a("test.once.a");
  Mutex b("test.once.b");
  {
    const MutexLock la(a);
    const MutexLock lb(b);
  }
  for (int i = 0; i < 3; ++i) {
    const MutexLock lb(b);
    const MutexLock la(a);
  }
  EXPECT_EQ(lockorder::cycle_count(), 1u);
  EXPECT_EQ(lockorder::cycle_reports().size(), 1u);
}

TEST_F(LockOrderTest, TransitiveInversionIsDetected) {
  Mutex a("test.chain.a");
  Mutex b("test.chain.b");
  Mutex c("test.chain.c");
  {
    const MutexLock la(a);
    const MutexLock lb(b);  // a -> b
  }
  {
    const MutexLock lb(b);
    const MutexLock lc(c);  // b -> c
  }
  {
    const MutexLock lc(c);
    const MutexLock la(a);  // c -> a closes a three-lock cycle
  }
  EXPECT_EQ(lockorder::cycle_count(), 1u);
  const auto reports = lockorder::cycle_reports();
  ASSERT_EQ(reports.size(), 1u);
  // The report walks the conflicting path, so all three names appear.
  EXPECT_NE(reports[0].find("test.chain.a"), std::string::npos);
  EXPECT_NE(reports[0].find("test.chain.b"), std::string::npos);
  EXPECT_NE(reports[0].find("test.chain.c"), std::string::npos);
}

TEST_F(LockOrderTest, ConsistentNestingNeverFalsePositives) {
  Mutex outer("test.hier.outer");
  Mutex inner("test.hier.inner");
  std::vector<std::thread> threads;
  threads.reserve(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        {
          const MutexLock lo(outer);
          const MutexLock li(inner);  // always outer -> inner
        }
        {
          const MutexLock lo(outer);  // outer alone
        }
        {
          const MutexLock li(inner);  // inner alone is not an inversion
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(lockorder::cycle_count(), 0u);
  EXPECT_TRUE(lockorder::cycle_reports().empty());
}

TEST_F(LockOrderTest, DiamondHierarchyIsNotACycle) {
  // a -> b, a -> c, b -> d, c -> d: a classic diamond. Reachability
  // d -> nothing, so no edge closes a cycle.
  Mutex a("test.dia.a");
  Mutex b("test.dia.b");
  Mutex c("test.dia.c");
  Mutex d("test.dia.d");
  {
    const MutexLock la(a);
    const MutexLock lb(b);
    const MutexLock ld(d);
  }
  {
    const MutexLock la(a);
    const MutexLock lc(c);
    const MutexLock ld(d);
  }
  EXPECT_EQ(lockorder::cycle_count(), 0u);
}

TEST_F(LockOrderTest, TryLockRecordsTheHoldButNoOrderingEdge) {
  Mutex a("test.try.a");
  Mutex b("test.try.b");
  {
    const MutexLock la(a);
    ASSERT_TRUE(b.try_lock());  // cannot deadlock: records no a -> b edge
    b.unlock();
  }
  {
    const MutexLock lb(b);
    const MutexLock la(a);  // b -> a is the only recorded edge — no cycle
  }
  EXPECT_EQ(lockorder::cycle_count(), 0u);
}

TEST_F(LockOrderTest, LocksHeldViaTryLockStillConstrainBlockingAcquires) {
  Mutex a("test.tryhold.a");
  Mutex b("test.tryhold.b");
  {
    const MutexLock la(a);
    const MutexLock lb(b);  // a -> b
  }
  {
    ASSERT_TRUE(b.try_lock());  // held via try_lock...
    const MutexLock la(a);  // ...so this blocking acquire records b -> a
    b.unlock();
  }
  EXPECT_EQ(lockorder::cycle_count(), 1u);
}

TEST_F(LockOrderTest, CondVarWaitKeepsTheHeldStackTruthful) {
  Mutex m("test.cv.m");
  Mutex other("test.cv.other");
  CondVar cv;
  bool ready = false;  // protected by m (locals cannot carry VF_GUARDED_BY)

  std::thread waiter([&] {
    const MutexLock lock(m);
    cv.wait(m, [&]() VF_REQUIRES(m) { return ready; });
    // Still holding m after the wait; a nested acquire here must record
    // m -> other exactly as if no wait had happened.
    const MutexLock lo(other);
  });
  {
    // The signaller can take m while the waiter is parked — if the wait
    // left a stale hold on the detector stack this would look like a
    // self-deadlock or corrupt later bookkeeping.
    std::this_thread::sleep_for(10ms);
    const MutexLock lock(m);
    ready = true;
  }
  cv.notify_all();
  waiter.join();
  EXPECT_EQ(lockorder::cycle_count(), 0u);
}

TEST_F(LockOrderTest, ResetClearsTheGraphAndReports) {
  Mutex a("test.reset.a");
  Mutex b("test.reset.b");
  {
    const MutexLock la(a);
    const MutexLock lb(b);
  }
  {
    const MutexLock lb(b);
    const MutexLock la(a);
  }
  ASSERT_EQ(lockorder::cycle_count(), 1u);
  lockorder::reset();
  EXPECT_EQ(lockorder::cycle_count(), 0u);
  EXPECT_TRUE(lockorder::cycle_reports().empty());
  // The same inversion is re-learnable after a reset (fresh graph).
  {
    const MutexLock la(a);
    const MutexLock lb(b);
  }
  {
    const MutexLock lb(b);
    const MutexLock la(a);
  }
  EXPECT_EQ(lockorder::cycle_count(), 1u);
}

TEST_F(LockOrderTest, DisarmedDetectorRecordsNothing) {
  lockorder::set_enabled(false);
  Mutex a("test.off.a");
  Mutex b("test.off.b");
  {
    const MutexLock la(a);
    const MutexLock lb(b);
  }
  {
    const MutexLock lb(b);
    const MutexLock la(a);
  }
  EXPECT_EQ(lockorder::cycle_count(), 0u);
}

using LockOrderDeathTest = LockOrderTest;

TEST_F(LockOrderDeathTest, AbortModeDiesWithTheReport) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex a("test.die.a");
  Mutex b("test.die.b");
  {
    const MutexLock la(a);
    const MutexLock lb(b);
  }
  EXPECT_DEATH(
      {
        lockorder::set_action(lockorder::Action::Abort);
        const MutexLock lb(b);
        const MutexLock la(a);
      },
      "lock-order inversion");
}

}  // namespace
