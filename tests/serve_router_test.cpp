// ShardRouter: consistent-hash key stability (bounded remap under shard
// add/remove), health- and drain-aware re-routing with the answer-
// exactly-once guarantee intact, versioned-manifest convergence on
// failover shards after re-registration, per-shard fault salts, and
// tier-level drain (TSan via the sanitize label).

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <future>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "vf/core/fcnn.hpp"
#include "vf/core/model.hpp"
#include "vf/serve/router.hpp"

namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;
using vf::field::Vec3;
using vf::sampling::SampleCloud;
using vf::serve::HashRing;
using vf::serve::RouterOptions;
using vf::serve::ShardRouter;
using vf::serve::Status;

vf::core::FcnnModel tiny_model() {
  vf::core::FcnnModel model;
  model.net = vf::nn::Network::mlp(
      static_cast<std::size_t>(vf::core::kFeatureDim), {16, 8},
      static_cast<std::size_t>(vf::core::kTargetDimScalar), 7);
  model.in_norm.mean.assign(vf::core::kFeatureDim, 0.0);
  model.in_norm.stddev.assign(vf::core::kFeatureDim, 1.0);
  model.out_norm.mean.assign(vf::core::kTargetDimScalar, 0.0);
  model.out_norm.stddev.assign(vf::core::kTargetDimScalar, 1.0);
  model.with_gradients = false;
  model.dataset = "router-test";
  return model;
}

SampleCloud test_cloud() {
  std::vector<Vec3> points;
  std::vector<double> values;
  for (int i = 0; i < 6; ++i) {
    for (int j = 0; j < 6; ++j) {
      for (int k = 0; k < 3; ++k) {
        Vec3 p{static_cast<double>(i), static_cast<double>(j),
               static_cast<double>(k)};
        points.push_back(p);
        values.push_back(std::sin(0.3 * p.x) + 0.2 * p.y - 0.1 * p.z);
      }
    }
  }
  return SampleCloud(points, values);
}

std::vector<Vec3> probe_points() {
  return {{1.2, 2.3, 0.5}, {4.1, 0.7, 1.9}, {2.5, 5.0, 2.0}};
}

// --- HashRing (pure consistent-hashing properties) --------------------------

std::vector<std::string> ring_keys(int n) {
  std::vector<std::string> keys;
  keys.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) keys.push_back("session-" + std::to_string(i));
  return keys;
}

TEST(HashRingTest, AddingAShardRemapsOnlyABoundedFractionToTheNewShard) {
  HashRing ring;
  for (std::uint32_t s = 0; s < 4; ++s) ring.add_shard(s);
  const auto keys = ring_keys(2000);
  std::vector<std::uint32_t> before;
  before.reserve(keys.size());
  for (const auto& k : keys) before.push_back(ring.owner(k));

  ring.add_shard(4);
  std::size_t moved = 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const std::uint32_t after = ring.owner(keys[i]);
    if (after != before[i]) {
      // Strict consistent hashing: a key may only move TO the new shard.
      EXPECT_EQ(after, 4u) << keys[i];
      ++moved;
    }
  }
  // Ideal share is 1/5 = 0.20; vnode variance allows slack but a naive
  // modulo hash would remap ~0.80 and a broken ring 0.
  const double fraction =
      static_cast<double>(moved) / static_cast<double>(keys.size());
  EXPECT_GT(fraction, 0.05);
  EXPECT_LT(fraction, 0.40);
}

TEST(HashRingTest, RemovingAShardRemapsOnlyTheKeysItOwned) {
  HashRing ring;
  for (std::uint32_t s = 0; s < 4; ++s) ring.add_shard(s);
  const auto keys = ring_keys(2000);
  std::vector<std::uint32_t> before;
  before.reserve(keys.size());
  for (const auto& k : keys) before.push_back(ring.owner(k));

  ring.remove_shard(1);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const std::uint32_t after = ring.owner(keys[i]);
    if (before[i] == 1u) {
      EXPECT_NE(after, 1u) << keys[i];
    } else {
      // Survivor-owned keys must not reshuffle.
      EXPECT_EQ(after, before[i]) << keys[i];
    }
  }
}

TEST(HashRingTest, WalkStartsAtTheHomeShardAndCoversEveryShardOnce) {
  HashRing ring;
  for (std::uint32_t s = 0; s < 5; ++s) ring.add_shard(s);
  for (const auto& key : ring_keys(50)) {
    const auto walk = ring.walk(key);
    ASSERT_EQ(walk.size(), 5u);
    EXPECT_EQ(walk.front(), ring.owner(key));
    std::set<std::uint32_t> distinct(walk.begin(), walk.end());
    EXPECT_EQ(distinct.size(), 5u);
  }
}

TEST(HashRingTest, OwnerIsDeterministicAcrossIdenticallySeededRings) {
  HashRing a;
  HashRing b;
  for (std::uint32_t s = 0; s < 3; ++s) {
    a.add_shard(s);
    b.add_shard(s);
  }
  for (const auto& key : ring_keys(200)) {
    EXPECT_EQ(a.owner(key), b.owner(key));
  }
}

// --- ShardRouter ------------------------------------------------------------

class RouterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("vf_router_test_" + std::string(::testing::UnitTest::GetInstance()
                                                ->current_test_info()
                                                ->name()));
    fs::create_directories(dir_);
    model_path_ = (dir_ / "model.vfmd").string();
    tiny_model().save(model_path_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
  std::string model_path_;
};

TEST_F(RouterTest, ServesQueriesAndSpreadsSessionsAcrossShards) {
  RouterOptions ropts;
  ropts.shards = 3;
  ShardRouter router(ropts);
  std::set<std::size_t> homes;
  for (int i = 0; i < 16; ++i) {
    const std::string key = "t" + std::to_string(i);
    router.add_session(key, test_cloud(), model_path_);
    EXPECT_TRUE(router.has_session(key));
    homes.insert(router.shard_for(key));
    const auto resp = router.query(key, probe_points());
    EXPECT_EQ(resp.status, Status::Ok);
    EXPECT_EQ(resp.values.size(), probe_points().size());
    EXPECT_TRUE(resp.fallback.empty());
  }
  // 16 keys over 3 shards: the ring must not degenerate to one shard.
  EXPECT_GE(homes.size(), 2u);
  const auto stats = router.stats();
  EXPECT_EQ(stats.routed, 16u);
  EXPECT_EQ(stats.rerouted, 0u);
  EXPECT_EQ(stats.no_shard, 0u);
  EXPECT_EQ(stats.shards.size(), 3u);
}

TEST_F(RouterTest, UnknownSessionKeyThrows) {
  ShardRouter router;
  EXPECT_THROW((void)router.submit("nope", probe_points()),
               std::invalid_argument);
}

TEST_F(RouterTest, UnhealthyShardIsSkippedUntilItHealsAgain) {
  RouterOptions ropts;
  ropts.shards = 3;
  ShardRouter router(ropts);
  router.add_session("k", test_cloud(), model_path_);
  const std::size_t home = router.shard_for("k");
  ASSERT_EQ(router.route("k"), home);

  router.set_healthy(home, false);
  EXPECT_FALSE(router.healthy(home));
  const auto failover = router.route("k");
  ASSERT_TRUE(failover.has_value());
  EXPECT_NE(*failover, home);

  const auto resp = router.query("k", probe_points());
  EXPECT_EQ(resp.status, Status::Ok);
  EXPECT_GE(router.stats().rerouted, 1u);

  router.set_healthy(home, true);
  EXPECT_EQ(router.route("k"), home);
}

TEST_F(RouterTest, DrainingShardReroutesAndAnswersEveryRequestExactlyOnce) {
  RouterOptions ropts;
  ropts.shards = 3;
  ropts.shard.queue_max = 4096;
  ShardRouter router(ropts);
  router.add_session("k", test_cloud(), model_path_);
  const std::size_t home = router.shard_for("k");
  router.begin_drain_shard(home);
  EXPECT_FALSE(router.draining());  // one shard draining != tier draining

  // Producer storm against the draining home: every accepted submit must
  // land on a healthy neighbour and resolve exactly once.
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 40;
  std::vector<std::future<vf::serve::PointResponse>> futures;
  vf::util::Mutex futures_mu{
      "test.router.futures"};  // vf-lint: allow(unannotated-guard) local
  std::vector<std::thread> producers;
  std::atomic<int> refused{0};
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) {
        auto f = router.submit("k", probe_points());
        if (!f) {
          refused.fetch_add(1);
          continue;
        }
        vf::util::MutexLock lock(futures_mu);
        futures.push_back(std::move(*f));
      }
    });
  }
  for (auto& t : producers) t.join();

  EXPECT_EQ(refused.load(), 0);  // two healthy shards, deep queues
  ASSERT_EQ(futures.size(),
            static_cast<std::size_t>(kProducers * kPerProducer));
  std::size_t served = 0;
  for (auto& f : futures) {
    const auto resp = f.get();  // resolves exactly once, never hangs
    if (resp.status == Status::Ok) ++served;
  }
  EXPECT_EQ(served, futures.size());
  const auto stats = router.stats();
  EXPECT_EQ(stats.rerouted, futures.size());
  // The draining home shard never saw a storm request.
  EXPECT_EQ(stats.shards[home].accepted, 0u);
}

TEST_F(RouterTest, FailoverShardConvergesOnTheManifestAndTracksReRegistration) {
  RouterOptions ropts;
  ropts.shards = 2;
  // A missing model must fail fast (no retry ladder) and stay failed.
  ropts.shard.registry.breaker_threshold = 1;
  ropts.shard.registry.breaker_backoff = 60000ms;
  ShardRouter router(ropts);
  router.add_session("k", test_cloud(), model_path_);
  const std::size_t home = router.shard_for("k");

  // Only the home shard was bound eagerly.
  EXPECT_TRUE(router.shard(home).has_session("k"));
  EXPECT_FALSE(router.shard(1 - home).has_session("k"));

  // Drain the home: the failover shard converges lazily at routing time
  // and serves from the registered (good) model.
  router.begin_drain_shard(home);
  auto resp = router.query("k", probe_points());
  EXPECT_EQ(resp.status, Status::Ok);
  EXPECT_TRUE(resp.fallback.empty());
  EXPECT_TRUE(router.shard(1 - home).has_session("k"));
  EXPECT_GE(router.stats().manifest_applies, 2u);

  // Re-register "k" with a model path that cannot load: the manifest
  // version bumps, so the failover shard must re-bind (not serve its
  // stale binding) and the next query degrades to the classical path.
  router.add_session("k", test_cloud(), (dir_ / "gone.vfmd").string());
  const auto applies_before = router.stats().manifest_applies;
  resp = router.query("k", probe_points());
  EXPECT_EQ(resp.status, Status::Ok);
  EXPECT_EQ(resp.fallback, "classical");
  EXPECT_GT(router.stats().manifest_applies, applies_before);
}

TEST_F(RouterTest, AllShardsDrainingRefusesNewWork) {
  RouterOptions ropts;
  ropts.shards = 2;
  ShardRouter router(ropts);
  router.add_session("k", test_cloud(), model_path_);
  router.begin_drain();
  EXPECT_TRUE(router.draining());
  EXPECT_FALSE(router.route("k").has_value());
  EXPECT_FALSE(router.submit("k", probe_points()).has_value());
  EXPECT_GE(router.stats().no_shard, 1u);
}

TEST_F(RouterTest, PerShardRegistrySaltsAreDistinctAndNonZero) {
  RouterOptions ropts;
  ropts.shards = 4;
  ShardRouter router(ropts);
  std::set<std::uint64_t> salts;
  for (std::size_t i = 0; i < router.shard_count(); ++i) {
    const std::uint64_t salt = router.shard(i).options().registry.shard_salt;
    EXPECT_NE(salt, 0u) << "shard " << i;
    salts.insert(salt);
  }
  EXPECT_EQ(salts.size(), router.shard_count());
}

TEST_F(RouterTest, ExplicitTemplateSaltIsRespected) {
  RouterOptions ropts;
  ropts.shards = 2;
  ropts.shard.registry.shard_salt = 77;
  ShardRouter router(ropts);
  EXPECT_EQ(router.shard(0).options().registry.shard_salt, 77u);
  EXPECT_EQ(router.shard(1).options().registry.shard_salt, 77u);
}

TEST_F(RouterTest, TierDrainFlushesTheBacklogAndReportsTrue) {
  RouterOptions ropts;
  ropts.shards = 2;
  ropts.shard.queue_max = 1024;
  ShardRouter router(ropts);
  for (int i = 0; i < 4; ++i) {
    router.add_session("t" + std::to_string(i), test_cloud(), model_path_);
  }
  std::vector<std::future<vf::serve::PointResponse>> futures;
  for (int i = 0; i < 64; ++i) {
    auto f = router.submit("t" + std::to_string(i % 4), probe_points());
    ASSERT_TRUE(f.has_value());
    futures.push_back(std::move(*f));
  }
  EXPECT_TRUE(router.drain(10000ms));
  std::size_t terminal = 0;
  for (auto& f : futures) {
    const auto resp = f.get();
    EXPECT_TRUE(resp.status == Status::Ok || resp.status == Status::Draining);
    ++terminal;
  }
  EXPECT_EQ(terminal, futures.size());
  // Post-drain submits are refused tier-wide.
  EXPECT_FALSE(router.submit("t0", probe_points()).has_value());
}

TEST_F(RouterTest, StatsAggregateAcrossShards) {
  RouterOptions ropts;
  ropts.shards = 2;
  ShardRouter router(ropts);
  router.add_session("a", test_cloud(), model_path_);
  router.add_session("b", test_cloud(), model_path_);
  (void)router.query("a", probe_points());
  (void)router.query("b", probe_points());
  const auto stats = router.stats();
  std::uint64_t sum = 0;
  for (const auto& s : stats.shards) sum += s.accepted;
  EXPECT_EQ(stats.total.accepted, sum);
  EXPECT_EQ(stats.total.accepted, 2u);
  EXPECT_EQ(stats.total.served_points, 2 * probe_points().size());
}

}  // namespace
