// Tests for the temporal-delta sampler extension.

#include <gtest/gtest.h>

#include <cmath>

#include "vf/data/registry.hpp"
#include "vf/sampling/temporal_sampler.hpp"

namespace {

using namespace vf::sampling;
using vf::field::ScalarField;
using vf::field::UniformGrid3;
using vf::field::Vec3;

TEST(TemporalDelta, FallsBackToRandomWithoutHistory) {
  auto f = vf::data::make_dataset("hurricane")->generate({16, 16, 8}, 5.0);
  TemporalDeltaSampler ts;
  EXPECT_FALSE(ts.has_previous());
  auto a = ts.sample(f, 0.05, 7);
  auto b = RandomSampler().sample(f, 0.05, 7);
  EXPECT_EQ(a.kept_indices(), b.kept_indices());
}

TEST(TemporalDelta, RespectsBudgetAndUniqueness) {
  auto ds = vf::data::make_dataset("hurricane");
  auto prev = ds->generate({16, 16, 8}, 5.0);
  auto cur = ds->generate({16, 16, 8}, 6.0);
  TemporalDeltaSampler ts;
  ts.set_previous(prev);
  auto cloud = ts.sample(cur, 0.05, 3);
  auto budget = static_cast<double>(cur.size()) * 0.05;
  EXPECT_NEAR(static_cast<double>(cloud.size()), budget,
              std::max(3.0, budget * 0.02));
  std::set<std::int64_t> seen(cloud.kept_indices().begin(),
                              cloud.kept_indices().end());
  EXPECT_EQ(seen.size(), cloud.size());
}

TEST(TemporalDelta, ConcentratesBudgetOnChangedRegion) {
  // Two identical fields except a bump in one octant: the sampler must
  // put far more than a proportional share of samples inside that octant.
  UniformGrid3 grid({20, 20, 10}, {0, 0, 0}, {1, 1, 1});
  ScalarField prev(grid), cur(grid);
  prev.fill([](const Vec3&) { return 1.0; });
  cur.fill([](const Vec3& p) {
    bool in_octant = p.x < 10 && p.y < 10 && p.z < 5;
    return in_octant ? 2.0 : 1.0;
  });
  TemporalDeltaSampler ts;
  ts.set_previous(prev);
  auto cloud = ts.sample(cur, 0.05, 11);

  int inside = 0;
  for (const auto& p : cloud.points()) {
    if (p.x < 10 && p.y < 10 && p.z < 5) ++inside;
  }
  double share = static_cast<double>(inside) / static_cast<double>(cloud.size());
  // The changed octant holds 1/8 of the volume but should get >1/2 of the
  // budget with the default 25% uniform share.
  EXPECT_GT(share, 0.5);
}

TEST(TemporalDelta, UniformShareCoversStaticRegions) {
  UniformGrid3 grid({20, 20, 10}, {0, 0, 0}, {1, 1, 1});
  ScalarField prev(grid), cur(grid);
  prev.fill([](const Vec3&) { return 1.0; });
  cur.fill([](const Vec3& p) { return p.x < 2 ? 5.0 : 1.0; });
  TemporalDeltaSampler ts;
  ts.set_previous(prev);
  auto cloud = ts.sample(cur, 0.05, 13);
  // Some samples must land in the static region (x >= 2) thanks to the
  // uniform share.
  int in_static = 0;
  for (const auto& p : cloud.points()) {
    if (p.x >= 2) ++in_static;
  }
  EXPECT_GT(in_static, 10);
}

TEST(TemporalDelta, IncompatibleHistoryIgnored) {
  auto ds = vf::data::make_dataset("hurricane");
  auto prev = ds->generate({8, 8, 4}, 5.0);
  auto cur = ds->generate({16, 16, 8}, 6.0);
  TemporalDeltaSampler ts;
  ts.set_previous(prev);  // different size -> falls back to random
  auto a = ts.sample(cur, 0.03, 5);
  auto b = RandomSampler().sample(cur, 0.03, 5);
  EXPECT_EQ(a.kept_indices(), b.kept_indices());
}

TEST(TemporalDelta, ResetClearsHistory) {
  auto ds = vf::data::make_dataset("hurricane");
  auto prev = ds->generate({12, 12, 6}, 5.0);
  TemporalDeltaSampler ts;
  ts.set_previous(prev);
  EXPECT_TRUE(ts.has_previous());
  ts.reset();
  EXPECT_FALSE(ts.has_previous());
}

}  // namespace
