// Tests for the vf::obs observability layer: histogram bucket edges,
// counter correctness under concurrent (OpenMP) increments, span nesting
// and export round-trips, BenchRecorder JSON schema stability, and the
// runtime enable/disable toggle.
//
// The registry and span collector are process-wide singletons, so every
// fixture test starts from reset_values()/reset_spans() and restores the
// runtime toggle on exit.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "vf/obs/obs.hpp"

namespace {

using vf::obs::Histogram;

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    vf::obs::set_enabled(true);
    vf::obs::Registry::instance().reset_values();
    vf::obs::reset_spans();
  }
  void TearDown() override {
    vf::obs::set_enabled(true);
    vf::obs::Registry::instance().reset_values();
    vf::obs::reset_spans();
  }
};

// --- Histogram bucket layout ------------------------------------------------

TEST(ObsHistogramBuckets, NonPositiveAndNanLandInBucketZero) {
  EXPECT_EQ(Histogram::bucket_index(0.0), 0u);
  EXPECT_EQ(Histogram::bucket_index(-1.5), 0u);
  EXPECT_EQ(Histogram::bucket_index(-std::numeric_limits<double>::infinity()),
            0u);
  EXPECT_EQ(Histogram::bucket_index(std::numeric_limits<double>::quiet_NaN()),
            0u);
}

TEST(ObsHistogramBuckets, PositiveUnderflowLandsInBucketOne) {
  EXPECT_EQ(Histogram::bucket_index(std::numeric_limits<double>::denorm_min()),
            1u);
  EXPECT_EQ(Histogram::bucket_index(1e-10), 1u);
  // Just below the bucket-2 lower edge (2^-29).
  EXPECT_EQ(Histogram::bucket_index(std::nextafter(std::ldexp(1.0, -29), 0.0)),
            1u);
}

TEST(ObsHistogramBuckets, KnownValues) {
  EXPECT_EQ(Histogram::bucket_index(1.0), 31u);  // [1, 2)
  EXPECT_EQ(Histogram::bucket_index(1.999), 31u);
  EXPECT_EQ(Histogram::bucket_index(2.0), 32u);
  EXPECT_EQ(Histogram::bucket_index(0.5), 30u);  // [0.5, 1)
  EXPECT_EQ(Histogram::bucket_index(std::ldexp(1.0, 32)), 63u);
  EXPECT_EQ(Histogram::bucket_index(std::numeric_limits<double>::infinity()),
            63u);
}

TEST(ObsHistogramBuckets, EveryLowerEdgeIsInclusive) {
  // bucket_lower_bound(b) must itself fall in bucket b, and the next
  // representable value below it in bucket b-1: edges are [closed, open).
  for (std::size_t b = 2; b < Histogram::kBuckets; ++b) {
    const double edge = Histogram::bucket_lower_bound(b);
    EXPECT_EQ(Histogram::bucket_index(edge), b) << "bucket " << b;
    EXPECT_EQ(Histogram::bucket_index(std::nextafter(edge, 0.0)), b - 1)
        << "bucket " << b;
  }
  EXPECT_TRUE(std::isinf(Histogram::bucket_lower_bound(0)));
  EXPECT_LT(Histogram::bucket_lower_bound(0), 0.0);
  EXPECT_EQ(Histogram::bucket_lower_bound(1), 0.0);
  EXPECT_EQ(Histogram::bucket_lower_bound(31), 1.0);
}

TEST_F(ObsTest, HistogramSnapshotAggregates) {
  auto& h = vf::obs::histogram("test.hist.basic");
  h.record(0.5);
  h.record(1.0);
  h.record(3.0);
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_DOUBLE_EQ(snap.sum, 4.5);
  EXPECT_DOUBLE_EQ(snap.min, 0.5);
  EXPECT_DOUBLE_EQ(snap.max, 3.0);
  EXPECT_DOUBLE_EQ(snap.mean(), 1.5);
  EXPECT_EQ(snap.buckets[30], 1u);  // 0.5
  EXPECT_EQ(snap.buckets[31], 1u);  // 1.0
  EXPECT_EQ(snap.buckets[32], 1u);  // 3.0 in [2, 4)
}

// --- Spans ------------------------------------------------------------------

TEST_F(ObsTest, SpanNestingBuildsSlashJoinedPaths) {
  {
    const vf::obs::Span outer("outer");
    { const vf::obs::Span inner("inner"); }
    { const vf::obs::Span inner("inner"); }
  }
  const auto aggs = vf::obs::span_aggregates();
  ASSERT_EQ(aggs.size(), 2u);
  EXPECT_EQ(aggs[0].path, "outer");
  EXPECT_EQ(aggs[0].depth, 0);
  EXPECT_EQ(aggs[0].count, 1u);
  EXPECT_EQ(aggs[1].path, "outer/inner");
  EXPECT_EQ(aggs[1].depth, 1);
  EXPECT_EQ(aggs[1].count, 2u);
  // The parent's wall time covers both children.
  EXPECT_GE(aggs[0].total_seconds, aggs[1].total_seconds);
}

TEST_F(ObsTest, ChromeTraceExportRoundTrips) {
  {
    const vf::obs::Span outer("phase_a");
    const vf::obs::Span inner("phase_b");
  }
  const std::string path = ::testing::TempDir() + "vf_obs_trace.json";
  vf::obs::write_chrome_trace(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string written = ss.str();
  // The file is byte-identical to the in-memory export (atomic write, no
  // spans recorded in between)...
  EXPECT_EQ(written, vf::obs::chrome_trace_json());
  // ...and carries complete events with leaf names and full paths.
  EXPECT_NE(written.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(written.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(written.find("\"name\": \"phase_a\""), std::string::npos);
  EXPECT_NE(written.find("\"name\": \"phase_b\""), std::string::npos);
  EXPECT_NE(written.find("\"path\": \"phase_a/phase_b\""), std::string::npos);
}

TEST_F(ObsTest, TraceSummaryListsLeavesAndEmptiesOnReset) {
  {
    const vf::obs::Span outer("outer");
    const vf::obs::Span inner("inner");
  }
  const std::string summary = vf::obs::trace_summary();
  EXPECT_NE(summary.find("outer"), std::string::npos);
  EXPECT_NE(summary.find("inner"), std::string::npos);
  vf::obs::reset_spans();
  EXPECT_TRUE(vf::obs::trace_summary().empty());
  EXPECT_EQ(vf::obs::dropped_spans(), 0u);
}

TEST_F(ObsTest, DisabledSpansRecordNothing) {
  vf::obs::set_enabled(false);
  { const vf::obs::Span ghost("ghost"); }
  vf::obs::set_enabled(true);
  EXPECT_TRUE(vf::obs::span_aggregates().empty());
}

#if VF_OBS_ENABLED
TEST_F(ObsTest, MacrosRespectRuntimeToggle) {
  vf::obs::set_enabled(false);
  VF_OBS_COUNT("test.macro.counter", 5);
  vf::obs::set_enabled(true);
  VF_OBS_COUNT("test.macro.counter", 2);
  EXPECT_EQ(vf::obs::counter("test.macro.counter").value(), 2);
}
#endif

// --- Registry ---------------------------------------------------------------

TEST_F(ObsTest, ResetValuesKeepsHandlesValid) {
  auto& c = vf::obs::counter("test.reset.counter");
  c.add(3);
  vf::obs::Registry::instance().reset_values();
  EXPECT_EQ(c.value(), 0);
  c.add(1);
  EXPECT_EQ(c.value(), 1);
  // Same name resolves to the same handle across resets.
  EXPECT_EQ(&c, &vf::obs::counter("test.reset.counter"));
}

TEST_F(ObsTest, MetricsJsonCarriesEveryMetricKind) {
  vf::obs::counter("test.json.counter").add(7);
  vf::obs::gauge("test.json.gauge").set(2.5);
  vf::obs::histogram("test.json.hist").record(1.0);
  { const vf::obs::Span span("json_span"); }
  const std::string json = vf::obs::metrics_json();
  EXPECT_NE(json.find("\"schema\": \"vf-metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"test.json.counter\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"test.json.gauge\": 2.5"), std::string::npos);
  EXPECT_NE(json.find("\"test.json.hist\""), std::string::npos);
  EXPECT_NE(json.find("\"ge\": 1, \"count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"path\": \"json_span\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped_spans\": 0"), std::string::npos);
}

// --- BenchRecorder ----------------------------------------------------------

TEST(ObsBenchRecorder, JsonSchemaIsStable) {
  vf::obs::BenchRecorder rec("unit_test_run");
  vf::obs::BenchPhase phase;
  phase.name = "phase_one";
  phase.wall_seconds = 2.0;
  phase.cpu_seconds = 4.0;
  phase.items = 10.0;
  phase.bytes = 100.0;
  rec.add_phase(phase);
  rec.set_metric("alpha_rate", 5.0);
  rec.set_metric("beta_rate", 0.25);

  const std::string json = rec.to_json();
  // Versioned envelope: the CI comparator keys off these two fields, so
  // renaming them is a schema break and must bump kSchemaVersion.
  EXPECT_NE(json.find("\"schema\": \"vf-bench-record\""), std::string::npos);
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  for (const char* key :
       {"\"name\": \"unit_test_run\"", "\"git_sha\"", "\"unix_time\"",
        "\"build\"", "\"build_type\"", "\"compiler\"", "\"native_arch\"",
        "\"obs_compiled\"", "\"threads\"", "\"phases\"", "\"metrics\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  // Rates are derived at write time: items/wall and bytes/wall.
  EXPECT_NE(json.find("\"items_per_second\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"bytes_per_second\": 50"), std::string::npos);
  EXPECT_NE(json.find("\"alpha_rate\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"beta_rate\": 0.25"), std::string::npos);
}

TEST(ObsBenchRecorder, ScopedPhaseMeasuresAndAppends) {
  vf::obs::BenchRecorder rec("scoped");
  {
    auto phase = rec.phase("work");
    phase.set_items(42.0);
  }
  ASSERT_EQ(rec.phases().size(), 1u);
  EXPECT_EQ(rec.phases()[0].name, "work");
  EXPECT_GE(rec.phases()[0].wall_seconds, 0.0);
  EXPECT_GE(rec.phases()[0].cpu_seconds, 0.0);
  EXPECT_DOUBLE_EQ(rec.phases()[0].items, 42.0);
}

TEST(ObsBenchRecorder, WriteProducesParsableFile) {
  vf::obs::BenchRecorder rec("written");
  rec.set_metric("gamma", 1.5);
  const std::string path = ::testing::TempDir() + "vf_obs_bench.json";
  rec.write(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), rec.to_json());
}

// --- Concurrency ------------------------------------------------------------
// A separate suite, declared after every other one, so it runs last (gtest
// orders suites by first declaration): libgomp is not TSan-instrumented, so
// after an OpenMP region the pool threads' reads of the data-sharing struct
// on the main thread's stack have no TSan-visible happens-before edge, and
// any later test's instrumented writes to that reused stack memory would be
// a false positive in the sanitizer lane. Nothing runs after these.

TEST(ObsZConcurrency, CounterIsExactUnderConcurrentIncrements) {
  vf::obs::set_enabled(true);
  auto& c = vf::obs::counter("test.concurrent.counter");
  constexpr int kIters = 200000;
// vf-par: independent relaxed increments into cacheline-padded per-thread
// shards; value() merges the shards afterwards.
#pragma omp parallel for
  for (int i = 0; i < kIters; ++i) {
    c.add(1);
  }
  EXPECT_EQ(c.value(), static_cast<std::int64_t>(kIters));
}

TEST(ObsZConcurrency, HistogramIsExactUnderConcurrentRecords) {
  vf::obs::set_enabled(true);
  auto& h = vf::obs::histogram("test.concurrent.hist");
  constexpr int kIters = 20000;
// vf-par: record() only touches the calling thread's shard.
#pragma omp parallel for
  for (int i = 0; i < kIters; ++i) {
    h.record(1.0);
  }
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kIters));
  EXPECT_DOUBLE_EQ(snap.sum, static_cast<double>(kIters));
  EXPECT_EQ(snap.buckets[31], static_cast<std::uint64_t>(kIters));
}

}  // namespace
