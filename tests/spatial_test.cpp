// Tests for the k-d tree, validated against brute force on random clouds.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>

#include "vf/spatial/brute_force.hpp"
#include "vf/spatial/kdtree.hpp"
#include "vf/util/rng.hpp"

namespace {

using vf::field::Vec3;
using vf::spatial::brute_force_knn;
using vf::spatial::brute_force_radius;
using vf::spatial::KdTree;
using vf::spatial::Neighbor;

std::vector<Vec3> random_cloud(std::size_t n, std::uint64_t seed,
                               double aniso_z = 1.0) {
  vf::util::Rng rng(seed);
  std::vector<Vec3> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(0, 10), rng.uniform(0, 10),
                   rng.uniform(0, 10 * aniso_z)});
  }
  return pts;
}

// Property sweep: tree results must match brute force for every
// (cloud size, k) combination on random queries.
class KnnAgainstBruteForce
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(KnnAgainstBruteForce, MatchesReference) {
  auto [n, k] = GetParam();
  auto pts = random_cloud(static_cast<std::size_t>(n), 1000 + n * 7 + k);
  KdTree tree(pts);
  vf::util::Rng rng(55);
  for (int q = 0; q < 50; ++q) {
    Vec3 query{rng.uniform(-1, 11), rng.uniform(-1, 11), rng.uniform(-1, 11)};
    auto got = tree.knn(query, k);
    auto want = brute_force_knn(pts, query, k);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      // Distances must agree exactly; indices may differ only on exact ties.
      ASSERT_DOUBLE_EQ(got[i].dist2, want[i].dist2);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KnnAgainstBruteForce,
    ::testing::Combine(::testing::Values(1, 2, 5, 16, 17, 100, 1000),
                       ::testing::Values(1, 2, 5, 8, 32)));

TEST(KdTree, EmptyTree) {
  KdTree tree{std::vector<Vec3>{}};
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.knn({0, 0, 0}, 3).empty());
  EXPECT_TRUE(tree.radius_query({0, 0, 0}, 1.0).empty());
  EXPECT_THROW((void)tree.nearest({0, 0, 0}), std::logic_error);
}

TEST(KdTree, SinglePoint) {
  KdTree tree({{1, 2, 3}});
  EXPECT_EQ(tree.nearest({0, 0, 0}), 0u);
  auto nb = tree.knn({1, 2, 3}, 5);
  ASSERT_EQ(nb.size(), 1u);
  EXPECT_EQ(nb[0].dist2, 0.0);
}

TEST(KdTree, KLargerThanCloud) {
  auto pts = random_cloud(7, 3);
  KdTree tree(pts);
  auto nb = tree.knn({5, 5, 5}, 100);
  EXPECT_EQ(nb.size(), 7u);
}

TEST(KdTree, ResultsSortedAscending) {
  auto pts = random_cloud(500, 9);
  KdTree tree(pts);
  auto nb = tree.knn({5, 5, 5}, 20);
  for (std::size_t i = 1; i < nb.size(); ++i) {
    ASSERT_LE(nb[i - 1].dist2, nb[i].dist2);
  }
}

TEST(KdTree, NearestMatchesKnn1) {
  auto pts = random_cloud(800, 21);
  KdTree tree(pts);
  vf::util::Rng rng(2);
  for (int q = 0; q < 100; ++q) {
    Vec3 query{rng.uniform(0, 10), rng.uniform(0, 10), rng.uniform(0, 10)};
    auto nb = tree.knn(query, 1);
    auto nearest = tree.nearest(query);
    ASSERT_DOUBLE_EQ(
        nb[0].dist2,
        brute_force_knn(pts, query, 1)[0].dist2);
    // nearest() may pick a different index only on an exact tie
    Vec3 a = pts[nearest], b = pts[nb[0].index];
    double da = (a - query).norm2(), db = (b - query).norm2();
    ASSERT_DOUBLE_EQ(da, db);
  }
}

TEST(KdTree, RadiusQueryMatchesBruteForce) {
  auto pts = random_cloud(600, 31);
  KdTree tree(pts);
  vf::util::Rng rng(4);
  for (double radius : {0.0, 0.5, 1.5, 5.0, 20.0}) {
    Vec3 query{rng.uniform(0, 10), rng.uniform(0, 10), rng.uniform(0, 10)};
    auto got = tree.radius_query(query, radius);
    auto want = brute_force_radius(pts, query, radius);
    ASSERT_EQ(got.size(), want.size()) << "radius " << radius;
    std::sort(got.begin(), got.end(),
              [](const Neighbor& a, const Neighbor& b) {
                return a.index < b.index;
              });
    std::sort(want.begin(), want.end(),
              [](const Neighbor& a, const Neighbor& b) {
                return a.index < b.index;
              });
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i].index, want[i].index);
    }
  }
}

TEST(KdTree, HandlesDuplicatePoints) {
  std::vector<Vec3> pts(50, Vec3{1, 1, 1});
  pts.push_back({2, 2, 2});
  KdTree tree(pts);
  auto nb = tree.knn({1, 1, 1}, 3);
  ASSERT_EQ(nb.size(), 3u);
  for (const auto& n : nb) EXPECT_EQ(n.dist2, 0.0);
  EXPECT_EQ(tree.nearest({1.9, 1.9, 1.9}), 50u);
}

TEST(KdTree, HandlesCollinearPoints) {
  std::vector<Vec3> pts;
  for (int i = 0; i < 100; ++i) pts.push_back({static_cast<double>(i), 0, 0});
  KdTree tree(pts);
  auto nb = tree.knn({42.4, 0, 0}, 2);
  ASSERT_EQ(nb.size(), 2u);
  EXPECT_EQ(nb[0].index, 42u);
  EXPECT_EQ(nb[1].index, 43u);
}

TEST(KdTree, HandlesAnisotropicClouds) {
  // Thin-slab clouds (like a 250x250x50 grid's samples) stress the axis
  // selection; results must still match brute force.
  auto pts = random_cloud(400, 77, /*aniso_z=*/0.01);
  KdTree tree(pts);
  vf::util::Rng rng(6);
  for (int q = 0; q < 30; ++q) {
    Vec3 query{rng.uniform(0, 10), rng.uniform(0, 10), rng.uniform(0, 0.1)};
    auto got = tree.knn(query, 5);
    auto want = brute_force_knn(pts, query, 5);
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_DOUBLE_EQ(got[i].dist2, want[i].dist2);
    }
  }
}

TEST(KdTree, GridAlignedPoints) {
  // Regular grid points (many ties in every coordinate).
  std::vector<Vec3> pts;
  for (int k = 0; k < 8; ++k)
    for (int j = 0; j < 8; ++j)
      for (int i = 0; i < 8; ++i) pts.push_back({i * 1.0, j * 1.0, k * 1.0});
  KdTree tree(pts);
  vf::util::Rng rng(8);
  for (int q = 0; q < 50; ++q) {
    Vec3 query{rng.uniform(0, 7), rng.uniform(0, 7), rng.uniform(0, 7)};
    auto got = tree.knn(query, 8);
    auto want = brute_force_knn(pts, query, 8);
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_DOUBLE_EQ(got[i].dist2, want[i].dist2);
    }
  }
}

TEST(KdTree, NoAllocOverloadMatches) {
  auto pts = random_cloud(300, 91);
  KdTree tree(pts);
  std::vector<Neighbor> buf;
  for (int q = 0; q < 20; ++q) {
    Vec3 query{q * 0.5, q * 0.3, q * 0.1};
    tree.knn(query, 6, buf);
    auto fresh = tree.knn(query, 6);
    ASSERT_EQ(buf.size(), fresh.size());
    for (std::size_t i = 0; i < buf.size(); ++i) {
      ASSERT_EQ(buf[i].index, fresh[i].index);
      ASSERT_EQ(buf[i].dist2, fresh[i].dist2);
    }
  }
}

TEST(KdTree, PointsAccessorPreservesOrder) {
  auto pts = random_cloud(100, 13);
  KdTree tree(pts);
  ASSERT_EQ(tree.points().size(), pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    ASSERT_EQ(tree.points()[i], pts[i]);
  }
}

// --- Degenerate-input hardening (runs under asan/ubsan/tsan via the
// `sanitize` label; these shapes are where index arithmetic goes wrong) ---

TEST(KdTree, ZeroAndNegativeKReturnEmpty) {
  KdTree tree(random_cloud(50, 3));
  EXPECT_TRUE(tree.knn({1, 1, 1}, 0).empty());
  EXPECT_TRUE(tree.knn({1, 1, 1}, -4).empty());
  std::vector<Neighbor> out{{7u, 1.0}};  // stale content must be cleared
  tree.knn({1, 1, 1}, 0, out);
  EXPECT_TRUE(out.empty());
}

TEST(KdTree, EmptyTreeNoAllocOverloadClearsOutput) {
  KdTree tree{std::vector<Vec3>{}};
  std::vector<Neighbor> out{{3u, 2.0}};
  tree.knn({0, 0, 0}, 5, out);
  EXPECT_TRUE(out.empty());
}

TEST(KdTree, AllDuplicatePointsWithKAboveN) {
  // 40 identical points exercise the degenerate split (every coordinate
  // equal on every axis) plus the k > N clamp in one shape.
  std::vector<Vec3> pts(40, Vec3{2.5, -1.0, 0.25});
  KdTree tree(pts);
  auto nb = tree.knn({2.5, -1.0, 0.25}, 100);
  ASSERT_EQ(nb.size(), 40u);
  for (const auto& n : nb) ASSERT_EQ(n.dist2, 0.0);
  // Every original index must appear exactly once.
  std::vector<bool> seen(pts.size(), false);
  for (const auto& n : nb) {
    ASSERT_LT(n.index, pts.size());
    ASSERT_FALSE(seen[n.index]);
    seen[n.index] = true;
  }
  EXPECT_EQ(tree.radius_query({2.5, -1.0, 0.25}, 0.0).size(), 40u);
}

TEST(KdTree, DuplicateClusterBeatsOutlier) {
  std::vector<Vec3> pts(10, Vec3{0, 0, 0});
  pts.push_back({100, 100, 100});
  KdTree tree(pts);
  auto nb = tree.knn({0.1, 0, 0}, 10);
  ASSERT_EQ(nb.size(), 10u);
  for (const auto& n : nb) ASSERT_LT(n.index, 10u);  // never the outlier
}

TEST(KdTree, NegativeRadiusReturnsEmpty) {
  KdTree tree(random_cloud(30, 5));
  EXPECT_TRUE(tree.radius_query({5, 5, 5}, -1.0).empty());
}

TEST(BruteForce, TieBreaksByIndex) {
  std::vector<Vec3> pts{{1, 0, 0}, {-1, 0, 0}, {0, 1, 0}};
  auto nb = brute_force_knn(pts, {0, 0, 0}, 3);
  ASSERT_EQ(nb.size(), 3u);
  EXPECT_EQ(nb[0].index, 0u);
  EXPECT_EQ(nb[1].index, 1u);
  EXPECT_EQ(nb[2].index, 2u);
}

}  // namespace
