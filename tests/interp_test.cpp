// Tests for the classical reconstruction methods.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "vf/field/metrics.hpp"
#include "vf/interp/methods.hpp"
#include "vf/interp/reconstructor.hpp"
#include "vf/sampling/samplers.hpp"
#include "vf/util/rng.hpp"

namespace {

using namespace vf::interp;
using vf::field::ScalarField;
using vf::field::UniformGrid3;
using vf::field::Vec3;
using vf::sampling::RandomSampler;
using vf::sampling::SampleCloud;

ScalarField smooth_field(vf::field::Dims dims = {20, 20, 10}) {
  ScalarField f(UniformGrid3(dims, {0, 0, 0}, {1, 1, 1}), "smooth");
  f.fill([](const Vec3& p) {
    return std::sin(p.x * 0.3) * std::cos(p.y * 0.25) + 0.05 * p.z;
  });
  return f;
}

ScalarField linear_field(vf::field::Dims dims = {16, 16, 8}) {
  ScalarField f(UniformGrid3(dims, {0, 0, 0}, {1, 1, 1}), "linear");
  f.fill([](const Vec3& p) { return 2 * p.x - 0.5 * p.y + 3 * p.z + 10; });
  return f;
}

TEST(Registry, MakesEveryMethod) {
  for (const auto& name :
       {"nearest", "shepard", "linear", "linear_seq", "linear_naive",
        "natural", "rbf", "kriging"}) {
    auto r = make_reconstructor(name);
    EXPECT_EQ(r->name(), name);
  }
  EXPECT_THROW(make_reconstructor("bogus"), std::invalid_argument);
}

TEST(Registry, PaperOrderNames) {
  auto names = reconstructor_names();
  ASSERT_EQ(names.size(), 6u);
  EXPECT_EQ(names[0], "linear");
}

TEST(Methods, EmptyCloudThrows) {
  SampleCloud empty(std::vector<Vec3>{}, std::vector<double>{});
  auto grid = UniformGrid3({4, 4, 4}, {0, 0, 0}, {1, 1, 1});
  for (const auto& name : {"nearest", "shepard", "natural", "rbf"}) {
    EXPECT_THROW(make_reconstructor(name)->reconstruct(empty, grid),
                 std::invalid_argument)
        << name;
  }
  EXPECT_THROW(make_reconstructor("linear")->reconstruct(empty, grid),
               std::invalid_argument);
}

// Shared contract over all methods.
class MethodContract : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<Reconstructor> method() {
    return make_reconstructor(GetParam());
  }
};

TEST_P(MethodContract, OutputCoversGridAndIsFinite) {
  auto truth = smooth_field();
  RandomSampler sampler;
  auto cloud = sampler.sample(truth, 0.05, 3);
  auto rec = method()->reconstruct(cloud, truth.grid());
  ASSERT_EQ(rec.size(), truth.size());
  for (std::int64_t i = 0; i < rec.size(); ++i) {
    ASSERT_TRUE(std::isfinite(rec[i])) << GetParam();
  }
}

TEST_P(MethodContract, BetterThanMeanPredictor) {
  // Any sane interpolator beats predicting the global mean everywhere
  // (SNR = 0 dB by definition) on a smooth field at 5% sampling.
  auto truth = smooth_field();
  RandomSampler sampler;
  auto cloud = sampler.sample(truth, 0.05, 7);
  auto rec = method()->reconstruct(cloud, truth.grid());
  EXPECT_GT(vf::field::snr_db(truth, rec), 3.0) << GetParam();
}

TEST_P(MethodContract, QualityImprovesWithSampling) {
  auto truth = smooth_field();
  RandomSampler sampler;
  auto m = method();
  auto snr_at = [&](double frac) {
    auto cloud = sampler.sample(truth, frac, 11);
    return vf::field::snr_db(truth, m->reconstruct(cloud, truth.grid()));
  };
  double lo = snr_at(0.01);
  double hi = snr_at(0.20);
  EXPECT_GT(hi, lo) << GetParam();
}

TEST_P(MethodContract, DeterministicGivenSameCloud) {
  auto truth = smooth_field();
  RandomSampler sampler;
  auto cloud = sampler.sample(truth, 0.05, 13);
  auto m = method();
  auto a = m->reconstruct(cloud, truth.grid());
  auto b = m->reconstruct(cloud, truth.grid());
  for (std::int64_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(All, MethodContract,
                         ::testing::Values("nearest", "shepard", "linear",
                                           "natural", "rbf", "kriging"));

TEST(Nearest, ExactAtSamplePoints) {
  auto truth = smooth_field();
  RandomSampler sampler;
  auto cloud = sampler.sample(truth, 0.03, 17);
  auto rec = NearestNeighborReconstructor().reconstruct(cloud, truth.grid());
  for (std::int64_t idx : cloud.kept_indices()) {
    ASSERT_DOUBLE_EQ(rec[idx], truth[idx]);
  }
}

TEST(Nearest, PiecewiseConstantFromSamples) {
  // Every reconstructed value must equal SOME sample value.
  auto truth = smooth_field({10, 10, 6});
  RandomSampler sampler;
  auto cloud = sampler.sample(truth, 0.05, 19);
  auto rec = NearestNeighborReconstructor().reconstruct(cloud, truth.grid());
  std::set<double> sample_values(cloud.values().begin(), cloud.values().end());
  for (std::int64_t i = 0; i < rec.size(); ++i) {
    ASSERT_TRUE(sample_values.count(rec[i]));
  }
}

TEST(Shepard, ExactAtSamplePoints) {
  auto truth = smooth_field();
  RandomSampler sampler;
  auto cloud = sampler.sample(truth, 0.03, 23);
  auto rec = ShepardReconstructor().reconstruct(cloud, truth.grid());
  for (std::int64_t idx : cloud.kept_indices()) {
    ASSERT_NEAR(rec[idx], truth[idx], 1e-9);
  }
}

TEST(Shepard, StaysWithinSampleRange) {
  // IDW is a convex combination: output bounded by sample min/max.
  auto truth = smooth_field();
  RandomSampler sampler;
  auto cloud = sampler.sample(truth, 0.05, 29);
  auto rec = ShepardReconstructor().reconstruct(cloud, truth.grid());
  double lo = 1e300, hi = -1e300;
  for (double v : cloud.values()) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  for (std::int64_t i = 0; i < rec.size(); ++i) {
    ASSERT_GE(rec[i], lo - 1e-9);
    ASSERT_LE(rec[i], hi + 1e-9);
  }
}

TEST(Linear, ReproducesLinearFieldsInsideHull) {
  auto truth = linear_field();
  RandomSampler sampler;
  auto cloud = sampler.sample(truth, 0.15, 31);
  auto rec = LinearDelaunayReconstructor().reconstruct(cloud, truth.grid());
  // Interior points (hull covers them at 15% sampling): near-exact up to
  // the lattice snap. Check a central sub-block.
  for (int k = 2; k < 6; ++k)
    for (int j = 4; j < 12; ++j)
      for (int i = 4; i < 12; ++i)
        ASSERT_NEAR(rec.at(i, j, k), truth.at(i, j, k), 0.05);
}

TEST(Linear, AllModesAgree) {
  auto truth = smooth_field({12, 12, 6});
  RandomSampler sampler;
  auto cloud = sampler.sample(truth, 0.08, 37);
  auto a = LinearDelaunayReconstructor(LinearDelaunayReconstructor::Mode::Naive)
               .reconstruct(cloud, truth.grid());
  auto b = LinearDelaunayReconstructor(
               LinearDelaunayReconstructor::Mode::Sequential)
               .reconstruct(cloud, truth.grid());
  auto c = LinearDelaunayReconstructor(
               LinearDelaunayReconstructor::Mode::Parallel)
               .reconstruct(cloud, truth.grid());
  // Same triangulation, same interpolation — values agree except at the
  // handful of hull-boundary voxels where different walk paths may settle
  // on "just inside" vs "just outside" (nearest-sample fallback).
  std::int64_t mismatches = 0;
  for (std::int64_t i = 0; i < a.size(); ++i) {
    if (std::abs(a[i] - b[i]) > 1e-9 || std::abs(a[i] - c[i]) > 1e-9) {
      ++mismatches;
    }
  }
  EXPECT_LE(mismatches, a.size() / 100);
}

TEST(Linear, BeatsNearestOnSmoothField) {
  auto truth = smooth_field();
  RandomSampler sampler;
  auto cloud = sampler.sample(truth, 0.05, 41);
  double snr_lin = vf::field::snr_db(
      truth, LinearDelaunayReconstructor().reconstruct(cloud, truth.grid()));
  double snr_nn = vf::field::snr_db(
      truth,
      NearestNeighborReconstructor().reconstruct(cloud, truth.grid()));
  EXPECT_GT(snr_lin, snr_nn);
}

TEST(Linear, TooFewSamplesThrows) {
  auto truth = smooth_field({6, 6, 4});
  SampleCloud cloud(truth, {0, 1, 2});  // 3 points < 4
  EXPECT_THROW(
      LinearDelaunayReconstructor().reconstruct(cloud, truth.grid()),
      std::invalid_argument);
}

TEST(Natural, SmootherThanNearest) {
  // Discrete Sibson averages Voronoi neighbours, so its error on a smooth
  // field should be below nearest-neighbour's.
  auto truth = smooth_field();
  RandomSampler sampler;
  auto cloud = sampler.sample(truth, 0.03, 43);
  double rmse_nat = vf::field::rmse(
      truth, NaturalNeighborReconstructor().reconstruct(cloud, truth.grid()));
  double rmse_nn = vf::field::rmse(
      truth,
      NearestNeighborReconstructor().reconstruct(cloud, truth.grid()));
  EXPECT_LT(rmse_nat, rmse_nn);
}

TEST(Rbf, NearExactAtSamplePoints) {
  auto truth = smooth_field({12, 12, 6});
  RandomSampler sampler;
  auto cloud = sampler.sample(truth, 0.05, 47);
  auto rec = RbfReconstructor().reconstruct(cloud, truth.grid());
  for (std::int64_t idx : cloud.kept_indices()) {
    ASSERT_NEAR(rec[idx], truth[idx], 1e-6);
  }
}

TEST(Kriging, NearExactAtSamplePoints) {
  auto truth = smooth_field({12, 12, 6});
  RandomSampler sampler;
  auto cloud = sampler.sample(truth, 0.05, 59);
  auto rec = make_reconstructor("kriging")->reconstruct(cloud, truth.grid());
  for (std::int64_t idx : cloud.kept_indices()) {
    ASSERT_NEAR(rec[idx], truth[idx], 1e-6);
  }
}

TEST(Kriging, BeatsNearestOnSmoothField) {
  auto truth = smooth_field();
  RandomSampler sampler;
  auto cloud = sampler.sample(truth, 0.05, 61);
  double rmse_k = vf::field::rmse(
      truth, make_reconstructor("kriging")->reconstruct(cloud, truth.grid()));
  double rmse_nn = vf::field::rmse(
      truth,
      NearestNeighborReconstructor().reconstruct(cloud, truth.grid()));
  EXPECT_LT(rmse_k, rmse_nn);
}

TEST(Kriging, TooFewSamplesThrows) {
  auto truth = smooth_field({6, 6, 4});
  SampleCloud cloud(truth, {0});
  EXPECT_THROW(
      make_reconstructor("kriging")->reconstruct(cloud, truth.grid()),
      std::invalid_argument);
}

TEST(Upscaling, MethodsReconstructOntoFinerGrid) {
  // Sample a coarse field, reconstruct onto a 2x grid (Experiment 3 shape).
  auto truth = smooth_field({12, 12, 6});
  RandomSampler sampler;
  auto cloud = sampler.sample(truth, 0.2, 53);
  UniformGrid3 fine({23, 23, 11}, {0, 0, 0}, {0.5, 0.5, 0.5});
  for (const auto& name : {"nearest", "shepard", "linear", "natural"}) {
    auto rec = make_reconstructor(name)->reconstruct(cloud, fine);
    ASSERT_EQ(rec.size(), fine.point_count()) << name;
    for (std::int64_t i = 0; i < rec.size(); ++i) {
      ASSERT_TRUE(std::isfinite(rec[i])) << name;
    }
  }
}

}  // namespace
