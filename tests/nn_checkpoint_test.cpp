// VFCK checkpoint format, retention, corruption fallback, and the core
// crash-safety claim: a training run killed between epochs and resumed from
// its newest checkpoint finishes with bit-for-bit the weights and loss
// history of a run that was never interrupted.

#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>
#include <unistd.h>

#include "vf/nn/checkpoint.hpp"
#include "vf/nn/dense.hpp"
#include "vf/nn/trainer.hpp"
#include "vf/util/fault.hpp"
#include "vf/util/rng.hpp"

namespace {

namespace fault = vf::util::fault;
namespace fs = std::filesystem;
using vf::nn::Checkpointer;
using vf::nn::Matrix;
using vf::nn::Network;
using vf::nn::TrainerState;

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::clear();
    dir_ = fs::temp_directory_path() /
           ("vf_ckpt_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override {
    fault::clear();
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  [[nodiscard]] std::string subdir(const std::string& name) const {
    return (dir_ / name).string();
  }

  fs::path dir_;
};

std::string slurp(const std::string& p) {
  std::ifstream in(p, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void truncate_file(const std::string& p, std::uintmax_t size) {
  fs::resize_file(p, size);
}

Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Matrix m(rows, cols);
  vf::util::Rng rng(seed);
  for (double& v : m.data()) v = rng.gaussian();
  return m;
}

testing::AssertionResult networks_bit_equal(const Network& a,
                                            const Network& b) {
  if (a.layer_count() != b.layer_count()) {
    return testing::AssertionFailure() << "layer counts differ";
  }
  for (std::size_t i = 0; i < a.layer_count(); ++i) {
    const auto* da = dynamic_cast<const vf::nn::DenseLayer*>(&a.layer(i));
    const auto* db = dynamic_cast<const vf::nn::DenseLayer*>(&b.layer(i));
    if ((da == nullptr) != (db == nullptr)) {
      return testing::AssertionFailure() << "layer " << i << " kinds differ";
    }
    if (da == nullptr) continue;
    const auto wa = da->weights().data();
    const auto wb = db->weights().data();
    const auto ba = da->bias().data();
    const auto bb = db->bias().data();
    if (wa.size() != wb.size() || ba.size() != bb.size()) {
      return testing::AssertionFailure() << "layer " << i << " shapes differ";
    }
    if (std::memcmp(wa.data(), wb.data(), wa.size() * sizeof(double)) != 0) {
      return testing::AssertionFailure()
             << "layer " << i << " weights differ bitwise";
    }
    if (std::memcmp(ba.data(), bb.data(), ba.size() * sizeof(double)) != 0) {
      return testing::AssertionFailure()
             << "layer " << i << " biases differ bitwise";
    }
  }
  return testing::AssertionSuccess();
}

/// A populated state whose every field differs from the defaults, so a
/// round-trip that silently drops one is caught.
TrainerState sample_state(Network& net, int epoch) {
  TrainerState st;
  st.epoch = epoch;
  st.best = 0.125;
  st.stall = 2;
  vf::util::Rng rng(99);
  (void)rng.gaussian();  // populate the Box-Muller cache
  st.rng = rng.state();
  st.order = {3, 1, 4, 1, 5};
  st.val_order = {9, 2, 6};
  st.train_loss = {1.0, 0.5, 0.25};
  st.val_loss = {1.5, 0.75, 0.375};
  vf::nn::AdamOptimizer opt(1e-3);
  opt.attach(net.params());
  opt.step();  // non-trivial moments
  st.adam = opt.export_state();
  return st;
}

// ---- Checkpointer basics --------------------------------------------------

TEST_F(CheckpointTest, DueRespectsEvery) {
  const Checkpointer ck({subdir("due"), /*every=*/5, /*keep_last=*/3});
  EXPECT_FALSE(ck.due(0));
  EXPECT_FALSE(ck.due(4));
  EXPECT_TRUE(ck.due(5));
  EXPECT_FALSE(ck.due(6));
  EXPECT_TRUE(ck.due(10));
}

TEST_F(CheckpointTest, WriteLoadRoundTripIsBitExact) {
  auto net = Network::mlp(4, {6}, 2, /*seed=*/11);
  const TrainerState st = sample_state(net, 3);
  const Checkpointer ck({subdir("rt"), 1, 5});
  ck.write(net, st);

  const auto paths = Checkpointer::list(subdir("rt"));
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_NE(paths[0].find("ckpt_000003.vfck"), std::string::npos);

  Network loaded_net;
  TrainerState loaded;
  Checkpointer::load(paths[0], loaded_net, loaded);

  EXPECT_EQ(loaded.epoch, st.epoch);
  EXPECT_EQ(loaded.best, st.best);
  EXPECT_EQ(loaded.stall, st.stall);
  EXPECT_EQ(loaded.rng.state, st.rng.state);
  EXPECT_EQ(loaded.rng.inc, st.rng.inc);
  EXPECT_EQ(loaded.rng.cached_gaussian, st.rng.cached_gaussian);
  EXPECT_EQ(loaded.rng.has_cached_gaussian, st.rng.has_cached_gaussian);
  EXPECT_EQ(loaded.order, st.order);
  EXPECT_EQ(loaded.val_order, st.val_order);
  EXPECT_EQ(loaded.train_loss, st.train_loss);
  EXPECT_EQ(loaded.val_loss, st.val_loss);
  EXPECT_TRUE(networks_bit_equal(net, loaded_net));

  ASSERT_EQ(loaded.adam.m.size(), st.adam.m.size());
  ASSERT_EQ(loaded.adam.v.size(), st.adam.v.size());
  EXPECT_EQ(loaded.adam.t, st.adam.t);
  for (std::size_t i = 0; i < st.adam.m.size(); ++i) {
    const auto want = st.adam.m[i].data();
    const auto got = loaded.adam.m[i].data();
    ASSERT_EQ(want.size(), got.size());
    EXPECT_EQ(std::memcmp(want.data(), got.data(),
                          want.size() * sizeof(double)),
              0)
        << "adam m[" << i << "]";
  }
}

TEST_F(CheckpointTest, KeepLastPrunesOldest) {
  auto net = Network::mlp(3, {4}, 1, /*seed=*/1);
  const Checkpointer ck({subdir("keep"), 1, /*keep_last=*/2});
  for (int e = 1; e <= 5; ++e) ck.write(net, sample_state(net, e));

  const auto paths = Checkpointer::list(subdir("keep"));
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_NE(paths[0].find("ckpt_000004.vfck"), std::string::npos);
  EXPECT_NE(paths[1].find("ckpt_000005.vfck"), std::string::npos);
}

TEST_F(CheckpointTest, ListIgnoresForeignFiles) {
  auto net = Network::mlp(3, {4}, 1, /*seed=*/1);
  const Checkpointer ck({subdir("foreign"), 1, 5});
  ck.write(net, sample_state(net, 2));
  { std::ofstream(subdir("foreign") + "/notes.txt") << "hi"; }
  { std::ofstream(subdir("foreign") + "/ckpt_xyz.vfck") << "junk"; }

  const auto paths = Checkpointer::list(subdir("foreign"));
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_NE(paths[0].find("ckpt_000002.vfck"), std::string::npos);
}

TEST_F(CheckpointTest, MissingDirectoryListsEmptyAndLoadsNothing) {
  EXPECT_TRUE(Checkpointer::list(subdir("nope")).empty());
  Network net;
  TrainerState st;
  EXPECT_FALSE(Checkpointer::load_latest(subdir("nope"), net, st));
}

TEST_F(CheckpointTest, LoadLatestSkipsCorruptAndFallsBack) {
  auto net = Network::mlp(4, {5}, 2, /*seed=*/2);
  const auto d = subdir("fallback");
  const Checkpointer ck({d, 1, 5});
  ck.write(net, sample_state(net, 1));
  ck.write(net, sample_state(net, 2));

  auto paths = Checkpointer::list(d);
  ASSERT_EQ(paths.size(), 2u);
  // Tear the newest checkpoint in half: load() must reject it outright and
  // load_latest() must fall back to the older intact one.
  truncate_file(paths[1], fs::file_size(paths[1]) / 2);

  Network n1;
  TrainerState s1;
  EXPECT_THROW(Checkpointer::load(paths[1], n1, s1), std::runtime_error);

  Network n2;
  TrainerState s2;
  ASSERT_TRUE(Checkpointer::load_latest(d, n2, s2));
  EXPECT_EQ(s2.epoch, 1);
  EXPECT_TRUE(networks_bit_equal(net, n2));

  // Both corrupt: no checkpoint to resume from.
  truncate_file(paths[0], 3);
  Network n3;
  TrainerState s3;
  EXPECT_FALSE(Checkpointer::load_latest(d, n3, s3));
}

TEST_F(CheckpointTest, FailedWriteLeavesPreviousCheckpointsIntact) {
  auto net = Network::mlp(4, {5}, 2, /*seed=*/2);
  const auto d = subdir("wfault");
  const Checkpointer ck({d, 1, 5});
  ck.write(net, sample_state(net, 1));

  fault::arm("checkpoint_write", {fault::Mode::Error});
  EXPECT_THROW(ck.write(net, sample_state(net, 2)), std::runtime_error);
  fault::clear();

  fault::arm("atomic_rename", {fault::Mode::Error});
  EXPECT_THROW(ck.write(net, sample_state(net, 3)), std::runtime_error);
  fault::clear();

  Network n;
  TrainerState st;
  ASSERT_TRUE(Checkpointer::load_latest(d, n, st));
  EXPECT_EQ(st.epoch, 1);
}

// ---- Trainer integration --------------------------------------------------

struct TrainFixture {
  Matrix X = random_matrix(48, 4, 1001);
  Matrix Y = random_matrix(48, 2, 2002);

  [[nodiscard]] vf::nn::TrainOptions options(const std::string& dir) const {
    vf::nn::TrainOptions o;
    o.epochs = 12;
    o.batch_size = 16;
    o.learning_rate = 1e-3;
    o.shuffle_seed = 9;
    o.validation_fraction = 0.25;
    o.checkpoint_dir = dir;
    o.checkpoint_every = 3;
    o.checkpoint_keep = 10;
    return o;
  }
};

TEST_F(CheckpointTest, TrainerWritesDueAndFinalCheckpoints) {
  const TrainFixture fx;
  auto net = Network::mlp(4, {6}, 2, /*seed=*/5);
  auto opts = fx.options(subdir("train"));
  opts.epochs = 4;
  opts.checkpoint_every = 2;
  (void)vf::nn::Trainer(opts).fit(net, fx.X, fx.Y);

  const auto paths = Checkpointer::list(subdir("train"));
  ASSERT_EQ(paths.size(), 2u);  // epochs 2 and 4 (final is always written)
  EXPECT_NE(paths[0].find("ckpt_000002.vfck"), std::string::npos);
  EXPECT_NE(paths[1].find("ckpt_000004.vfck"), std::string::npos);
}

TEST_F(CheckpointTest, KillAndResumeIsBitIdentical) {
  const TrainFixture fx;

  // Reference: 12 epochs, never interrupted.
  auto net_a = Network::mlp(4, {6}, 2, /*seed=*/5);
  const auto hist_a =
      vf::nn::Trainer(fx.options(subdir("runA"))).fit(net_a, fx.X, fx.Y);
  ASSERT_EQ(hist_a.train_loss.size(), 12u);
  EXPECT_EQ(hist_a.resumed_from_epoch, -1);

  // Crash run: identical options, killed at the top of epoch 7 (after 6
  // completed epochs) by the trainer_epoch failpoint — exactly what a
  // SIGKILL between epochs loses.
  auto net_b = Network::mlp(4, {6}, 2, /*seed=*/5);
  auto opts_b = fx.options(subdir("runB"));
  fault::arm("trainer_epoch", {fault::Mode::Error, /*after=*/6, /*times=*/1});
  EXPECT_THROW((void)vf::nn::Trainer(opts_b).fit(net_b, fx.X, fx.Y),
               std::runtime_error);
  fault::clear();

  // The interrupted run checkpointed at epochs 3 and 6; the epoch-6 file
  // must match the reference run's bit for bit (same data, same seeds).
  EXPECT_EQ(slurp(subdir("runA") + "/ckpt_000006.vfck"),
            slurp(subdir("runB") + "/ckpt_000006.vfck"));

  // Resume into a DIFFERENTLY seeded fresh network: the checkpoint must
  // replace it wholesale.
  auto net_c = Network::mlp(4, {6}, 2, /*seed=*/999);
  opts_b.resume = true;
  const auto hist_b = vf::nn::Trainer(opts_b).fit(net_c, fx.X, fx.Y);

  EXPECT_EQ(hist_b.resumed_from_epoch, 6);
  EXPECT_EQ(hist_b.epochs_run, 12);
  ASSERT_EQ(hist_b.train_loss.size(), hist_a.train_loss.size());
  for (std::size_t i = 0; i < hist_a.train_loss.size(); ++i) {
    EXPECT_EQ(hist_b.train_loss[i], hist_a.train_loss[i]) << "epoch " << i;
  }
  ASSERT_EQ(hist_b.val_loss.size(), hist_a.val_loss.size());
  for (std::size_t i = 0; i < hist_a.val_loss.size(); ++i) {
    EXPECT_EQ(hist_b.val_loss[i], hist_a.val_loss[i]) << "epoch " << i;
  }
  EXPECT_TRUE(networks_bit_equal(net_a, net_c));
}

TEST_F(CheckpointTest, ResumeWithoutCheckpointIsAFreshRun) {
  const TrainFixture fx;
  auto net = Network::mlp(4, {6}, 2, /*seed=*/5);
  auto opts = fx.options(subdir("fresh"));
  opts.epochs = 2;
  opts.resume = true;  // nothing to resume from yet
  const auto hist = vf::nn::Trainer(opts).fit(net, fx.X, fx.Y);
  EXPECT_EQ(hist.resumed_from_epoch, -1);
  EXPECT_EQ(hist.epochs_run, 2);
}

TEST_F(CheckpointTest, ResumeRejectsMismatchedDataset) {
  const TrainFixture fx;
  auto net = Network::mlp(4, {6}, 2, /*seed=*/5);
  auto opts = fx.options(subdir("mismatch"));
  opts.epochs = 2;
  (void)vf::nn::Trainer(opts).fit(net, fx.X, fx.Y);

  // Same directory, different row count: the checkpointed permutation no
  // longer describes this dataset.
  const Matrix x2 = random_matrix(32, 4, 3003);
  const Matrix y2 = random_matrix(32, 2, 4004);
  auto net2 = Network::mlp(4, {6}, 2, /*seed=*/5);
  opts.resume = true;
  EXPECT_THROW((void)vf::nn::Trainer(opts).fit(net2, x2, y2),
               std::runtime_error);
}

TEST_F(CheckpointTest, ResumeSkipsTornNewestCheckpoint) {
  const TrainFixture fx;
  auto net = Network::mlp(4, {6}, 2, /*seed=*/5);
  const auto d = subdir("torn");
  (void)vf::nn::Trainer(fx.options(d)).fit(net, fx.X, fx.Y);

  auto paths = Checkpointer::list(d);
  ASSERT_GE(paths.size(), 2u);
  // Simulate a non-atomic filesystem leaving the newest file torn: resume
  // must fall back to the previous checkpoint, not die.
  truncate_file(paths.back(), fs::file_size(paths.back()) / 3);

  auto net2 = Network::mlp(4, {6}, 2, /*seed=*/5);
  auto opts = fx.options(d);
  opts.resume = true;
  const auto hist = vf::nn::Trainer(opts).fit(net2, fx.X, fx.Y);
  EXPECT_EQ(hist.resumed_from_epoch, 9);  // fell back from 12 to 9
  EXPECT_EQ(hist.epochs_run, 12);
}

}  // namespace
