// Tests for reconstruction-quality metrics, especially the paper's SNR.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "vf/field/metrics.hpp"
#include "vf/util/rng.hpp"

namespace {

using namespace vf::field;

ScalarField make_field(int n, double (*f)(double)) {
  ScalarField out(UniformGrid3({n, n, n}, {0, 0, 0}, {1, 1, 1}));
  for (std::int64_t i = 0; i < out.size(); ++i) {
    out[i] = f(static_cast<double>(i));
  }
  return out;
}

TEST(Metrics, PerfectReconstructionIsInfiniteSnr) {
  auto a = make_field(6, [](double i) { return std::sin(i * 0.1); });
  EXPECT_TRUE(std::isinf(snr_db(a, a)));
  EXPECT_TRUE(std::isinf(psnr_db(a, a)));
  EXPECT_EQ(rmse(a, a), 0.0);
  EXPECT_EQ(mae(a, a), 0.0);
  EXPECT_EQ(max_abs_error(a, a), 0.0);
}

TEST(Metrics, SnrMatchesDefinition) {
  // SNR = 20*log10(sigma_raw / sigma_noise) — verify against hand-built
  // fields with known standard deviations.
  auto a = make_field(8, [](double i) { return std::sin(i * 0.37); });
  auto b = a;
  vf::util::Rng rng(5);
  for (std::int64_t i = 0; i < b.size(); ++i) b[i] += 0.1 * rng.gaussian();

  double sig_raw = a.stats().stddev;
  // noise stddev computed directly
  double mean = 0;
  for (std::int64_t i = 0; i < a.size(); ++i) mean += a[i] - b[i];
  mean /= static_cast<double>(a.size());
  double var = 0;
  for (std::int64_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i] - mean;
    var += d * d;
  }
  double sig_noise = std::sqrt(var / static_cast<double>(a.size()));
  EXPECT_NEAR(snr_db(a, b), 20.0 * std::log10(sig_raw / sig_noise), 1e-9);
}

TEST(Metrics, SnrDecreasesWithNoise) {
  auto a = make_field(8, [](double i) { return std::cos(i * 0.2); });
  vf::util::Rng rng(7);
  std::vector<double> noise(static_cast<std::size_t>(a.size()));
  for (auto& n : noise) n = rng.gaussian();

  double prev = std::numeric_limits<double>::infinity();
  for (double amp : {0.01, 0.05, 0.2, 1.0}) {
    auto b = a;
    for (std::int64_t i = 0; i < b.size(); ++i) {
      b[i] += amp * noise[static_cast<std::size_t>(i)];
    }
    double s = snr_db(a, b);
    EXPECT_LT(s, prev);
    prev = s;
  }
}

TEST(Metrics, SnrTenXNoiseIsMinus20Db) {
  auto a = make_field(10, [](double i) { return std::sin(i * 0.11); });
  vf::util::Rng rng(11);
  std::vector<double> noise(static_cast<std::size_t>(a.size()));
  for (auto& n : noise) n = rng.gaussian();
  auto b1 = a, b10 = a;
  for (std::int64_t i = 0; i < a.size(); ++i) {
    b1[i] += 0.01 * noise[static_cast<std::size_t>(i)];
    b10[i] += 0.1 * noise[static_cast<std::size_t>(i)];
  }
  EXPECT_NEAR(snr_db(a, b1) - snr_db(a, b10), 20.0, 1e-6);
}

TEST(Metrics, RmseKnownValue) {
  ScalarField a(UniformGrid3({2, 2, 1}, {0, 0, 0}, {1, 1, 1}), std::vector<double>{0, 0, 0, 0});
  ScalarField b(UniformGrid3({2, 2, 1}, {0, 0, 0}, {1, 1, 1}), std::vector<double>{1, 1, 1, 1});
  EXPECT_DOUBLE_EQ(rmse(a, b), 1.0);
  ScalarField c(UniformGrid3({2, 2, 1}, {0, 0, 0}, {1, 1, 1}), std::vector<double>{3, 0, 0, 0});
  EXPECT_DOUBLE_EQ(rmse(a, c), 1.5);  // sqrt(9/4)
}

TEST(Metrics, MaeAndMaxKnownValues) {
  ScalarField a(UniformGrid3({4, 1, 1}, {0, 0, 0}, {1, 1, 1}), std::vector<double>{0, 0, 0, 0});
  ScalarField b(UniformGrid3({4, 1, 1}, {0, 0, 0}, {1, 1, 1}), std::vector<double>{1, -2, 3, 0});
  EXPECT_DOUBLE_EQ(mae(a, b), 1.5);
  EXPECT_DOUBLE_EQ(max_abs_error(a, b), 3.0);
}

TEST(Metrics, PsnrUsesRange) {
  ScalarField a(UniformGrid3({4, 1, 1}, {0, 0, 0}, {1, 1, 1}), std::vector<double>{0, 2, 6, 10});
  auto b = a;
  for (std::int64_t i = 0; i < b.size(); ++i) b[i] += 0.1;
  // range 10, rmse 0.1 -> 20*log10(100) = 40 dB
  EXPECT_NEAR(psnr_db(a, b), 40.0, 1e-9);
}

TEST(Metrics, ConstantBiasGivesInfiniteSnrButNonzeroRmse) {
  // SNR measures noise VARIANCE: a pure DC offset has zero noise stddev.
  auto a = make_field(5, [](double i) { return std::sin(i); });
  auto b = a;
  for (std::int64_t i = 0; i < b.size(); ++i) b[i] += 3.0;
  EXPECT_TRUE(std::isinf(snr_db(a, b)));
  EXPECT_NEAR(rmse(a, b), 3.0, 1e-12);
}

TEST(Metrics, MismatchedSizesThrow) {
  ScalarField a(UniformGrid3({2, 2, 2}, {0, 0, 0}, {1, 1, 1}));
  ScalarField b(UniformGrid3({3, 2, 2}, {0, 0, 0}, {1, 1, 1}));
  EXPECT_THROW(snr_db(a, b), std::invalid_argument);
  EXPECT_THROW(psnr_db(a, b), std::invalid_argument);
  EXPECT_THROW(rmse(a, b), std::invalid_argument);
  EXPECT_THROW(mae(a, b), std::invalid_argument);
  EXPECT_THROW(max_abs_error(a, b), std::invalid_argument);
}

TEST(Metrics, BetterReconstructionHigherSnr) {
  // Sanity: an interpolation 2x closer to the truth scores higher.
  auto truth = make_field(8, [](double i) { return std::sin(i * 0.05); });
  auto good = truth;
  auto bad = truth;
  vf::util::Rng rng(3);
  for (std::int64_t i = 0; i < truth.size(); ++i) {
    double n = rng.gaussian();
    good[i] += 0.01 * n;
    bad[i] += 0.02 * n;
  }
  EXPECT_GT(snr_db(truth, good), snr_db(truth, bad));
  EXPECT_LT(rmse(truth, good), rmse(truth, bad));
}

}  // namespace
