// Tests for UniformGrid3: indexing, positions, bounds, coordinate mapping.

#include <gtest/gtest.h>

#include <stdexcept>
#include <tuple>

#include "vf/field/grid.hpp"

namespace {

using vf::field::BoundingBox;
using vf::field::Dims;
using vf::field::UniformGrid3;
using vf::field::Vec3;

TEST(Dims, Count) {
  EXPECT_EQ((Dims{250, 250, 50}.count()), 3125000);
  EXPECT_EQ((Dims{1, 1, 1}.count()), 1);
  // The paper's largest grid must not overflow 32-bit arithmetic.
  EXPECT_EQ((Dims{600, 248, 248}.count()), 36902400);
}

TEST(Grid, RejectsInvalidConstruction) {
  EXPECT_THROW(UniformGrid3({0, 5, 5}, {}, {1, 1, 1}), std::invalid_argument);
  EXPECT_THROW(UniformGrid3({5, 5, 5}, {}, {0, 1, 1}), std::invalid_argument);
  EXPECT_THROW(UniformGrid3({5, 5, 5}, {}, {1, -1, 1}), std::invalid_argument);
}

TEST(Grid, IndexIsXFastest) {
  UniformGrid3 g({4, 3, 2}, {0, 0, 0}, {1, 1, 1});
  EXPECT_EQ(g.index(0, 0, 0), 0);
  EXPECT_EQ(g.index(1, 0, 0), 1);
  EXPECT_EQ(g.index(0, 1, 0), 4);
  EXPECT_EQ(g.index(0, 0, 1), 12);
  EXPECT_EQ(g.index(3, 2, 1), 23);
}

class GridRoundTrip : public ::testing::TestWithParam<Dims> {};

TEST_P(GridRoundTrip, IjkIndexInverse) {
  UniformGrid3 g(GetParam(), {1, 2, 3}, {0.5, 0.25, 2.0});
  for (std::int64_t idx = 0; idx < g.point_count(); ++idx) {
    auto [i, j, k] = g.ijk(idx);
    ASSERT_EQ(g.index(i, j, k), idx);
    ASSERT_GE(i, 0);
    ASSERT_LT(i, GetParam().nx);
    ASSERT_GE(j, 0);
    ASSERT_LT(j, GetParam().ny);
    ASSERT_GE(k, 0);
    ASSERT_LT(k, GetParam().nz);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, GridRoundTrip,
                         ::testing::Values(Dims{1, 1, 1}, Dims{5, 1, 1},
                                           Dims{1, 7, 1}, Dims{1, 1, 9},
                                           Dims{8, 4, 2}, Dims{13, 11, 7},
                                           Dims{2, 2, 2}));

TEST(Grid, PositionsUseOriginAndSpacing) {
  UniformGrid3 g({10, 10, 10}, {100, 200, 300}, {0.5, 2, 4});
  Vec3 p = g.position(2, 3, 4);
  EXPECT_DOUBLE_EQ(p.x, 101.0);
  EXPECT_DOUBLE_EQ(p.y, 206.0);
  EXPECT_DOUBLE_EQ(p.z, 316.0);
  // Linear-index overload agrees.
  Vec3 q = g.position(g.index(2, 3, 4));
  EXPECT_EQ(p, q);
}

TEST(Grid, BoundsSpanAllPoints) {
  UniformGrid3 g({5, 6, 7}, {-1, -2, -3}, {1, 0.5, 0.25});
  BoundingBox b = g.bounds();
  EXPECT_EQ(b.min, (Vec3{-1, -2, -3}));
  EXPECT_DOUBLE_EQ(b.max.x, -1 + 4 * 1.0);
  EXPECT_DOUBLE_EQ(b.max.y, -2 + 5 * 0.5);
  EXPECT_DOUBLE_EQ(b.max.z, -3 + 6 * 0.25);
  for (std::int64_t i = 0; i < g.point_count(); ++i) {
    ASSERT_TRUE(b.contains(g.position(i)));
  }
}

TEST(Grid, NearestPointExactAndClamped) {
  UniformGrid3 g({10, 10, 10}, {0, 0, 0}, {1, 1, 1});
  auto n = g.nearest_point({3.4, 5.6, 0.1});
  EXPECT_EQ(n[0], 3);
  EXPECT_EQ(n[1], 6);
  EXPECT_EQ(n[2], 0);
  // Outside the grid: clamped to the boundary.
  n = g.nearest_point({-5, 100, 4});
  EXPECT_EQ(n[0], 0);
  EXPECT_EQ(n[1], 9);
  EXPECT_EQ(n[2], 4);
}

TEST(Grid, ToGridSpaceInvertsPosition) {
  UniformGrid3 g({8, 8, 8}, {3, -1, 2}, {0.25, 0.5, 2});
  Vec3 gs = g.to_grid_space(g.position(5, 2, 7));
  EXPECT_NEAR(gs.x, 5.0, 1e-12);
  EXPECT_NEAR(gs.y, 2.0, 1e-12);
  EXPECT_NEAR(gs.z, 7.0, 1e-12);
}

TEST(Grid, UnitFactoryScalesLongestAxis) {
  auto g = UniformGrid3::unit({11, 5, 3}, 2.0);
  EXPECT_DOUBLE_EQ(g.bounds().max.x, 2.0);  // longest axis spans 2.0
  EXPECT_EQ(g.spacing().x, g.spacing().y);
  EXPECT_EQ(g.spacing().y, g.spacing().z);
}

TEST(Grid, EqualityComparesAllFields) {
  UniformGrid3 a({4, 4, 4}, {0, 0, 0}, {1, 1, 1});
  UniformGrid3 b({4, 4, 4}, {0, 0, 0}, {1, 1, 1});
  UniformGrid3 c({4, 4, 4}, {0, 0, 1}, {1, 1, 1});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Grid, DescribeMentionsDims) {
  UniformGrid3 g({250, 250, 50}, {0, 0, 0}, {1, 1, 1});
  EXPECT_NE(g.describe().find("250x250x50"), std::string::npos);
}

TEST(Vec3, Arithmetic) {
  Vec3 a{1, 2, 3}, b{4, 5, 6};
  EXPECT_EQ(a + b, (Vec3{5, 7, 9}));
  EXPECT_EQ(b - a, (Vec3{3, 3, 3}));
  EXPECT_EQ(a * 2.0, (Vec3{2, 4, 6}));
  EXPECT_DOUBLE_EQ(a.dot(b), 32.0);
  EXPECT_DOUBLE_EQ(a.norm2(), 14.0);
}

TEST(BoundingBox, ContainsAndExtent) {
  BoundingBox b{{0, 0, 0}, {2, 3, 4}};
  EXPECT_TRUE(b.contains({1, 1, 1}));
  EXPECT_TRUE(b.contains({0, 0, 0}));
  EXPECT_TRUE(b.contains({2, 3, 4}));
  EXPECT_FALSE(b.contains({2.01, 3, 4}));
  EXPECT_FALSE(b.contains({-0.01, 1, 1}));
  EXPECT_EQ(b.extent(), (Vec3{2, 3, 4}));
}

}  // namespace
