// Tests for vf_util: RNG, timer, CLI parsing, env helpers, parallel loops.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <numeric>
#include <set>
#include <vector>

#include "vf/util/cli.hpp"
#include "vf/util/env.hpp"
#include "vf/util/parallel.hpp"
#include "vf/util/rng.hpp"
#include "vf/util/timer.hpp"

namespace {

using vf::util::Cli;
using vf::util::Rng;

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, DifferentStreamsDiffer) {
  Rng a(7, 100), b(7, 200);
  int same = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(42);
  double lo = 1.0, hi = 0.0;
  for (int i = 0; i < 100000; ++i) {
    double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    lo = std::min(lo, u);
    hi = std::max(hi, u);
  }
  EXPECT_LT(lo, 0.01);
  EXPECT_GT(hi, 0.99);
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform(-3.0, 7.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 7.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(Rng, BelowStaysBelowBound) {
  Rng rng(11);
  for (std::uint32_t bound : {1u, 2u, 3u, 7u, 100u, 1000000u}) {
    for (int i = 0; i < 1000; ++i) {
      ASSERT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Rng, BelowZeroReturnsZero) {
  Rng rng(1);
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Rng, BelowCoversAllValues) {
  Rng rng(13);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, BelowApproximatelyUniform) {
  Rng rng(17);
  std::vector<int> counts(8, 0);
  const int n = 80000;
  for (int i = 0; i < n; ++i) ++counts[rng.below(8)];
  for (int c : counts) {
    EXPECT_NEAR(c, n / 8, n / 8 * 0.1);
  }
}

TEST(Rng, GaussianMoments) {
  Rng rng(23);
  const int n = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double g = rng.gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.02);
}

TEST(Rng, GaussianScaled) {
  Rng rng(29);
  const int n = 100000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double g = rng.gaussian(5.0, 2.0);
    sum += g;
    sq += (g - 5.0) * (g - 5.0);
  }
  EXPECT_NEAR(sum / n, 5.0, 0.05);
  EXPECT_NEAR(std::sqrt(sq / n), 2.0, 0.05);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(31);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto orig = v;
  rng.shuffle(v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, ForkIndependent) {
  Rng base(99);
  Rng a = base.fork(1);
  Rng b = base.fork(2);
  int same = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Timer, MeasuresElapsedTime) {
  vf::util::Timer t;
  volatile double x = 0.0;
  for (int i = 0; i < 2000000; ++i) x = x + 1.0;
  EXPECT_GT(t.seconds(), 0.0);
  EXPECT_GE(t.millis(), t.seconds() * 1000.0 * 0.5);  // consistent units
}

TEST(Timer, RestartResets) {
  vf::util::Timer t;
  volatile double x = 0.0;
  for (int i = 0; i < 2000000; ++i) x = x + 1.0;
  double before = t.seconds();
  t.restart();
  EXPECT_LT(t.seconds(), before + 1.0);
}

TEST(Timer, FormatDuration) {
  EXPECT_EQ(vf::util::format_duration(0.5), "500ms");
  EXPECT_EQ(vf::util::format_duration(12.34), "12.3s");
  EXPECT_EQ(vf::util::format_duration(125.0), "2m05s");
}

TEST(Timer, FormatDurationEdges) {
  EXPECT_EQ(vf::util::format_duration(0.0), "0ms");
  EXPECT_EQ(vf::util::format_duration(-1.0), "0ms");
  EXPECT_EQ(vf::util::format_duration(0.0005), "500us");
  EXPECT_EQ(vf::util::format_duration(1e-6), "1us");
  // Minute rounding must carry: 179.6s is 3m00s, never 2m60s.
  EXPECT_EQ(vf::util::format_duration(179.6), "3m00s");
  EXPECT_EQ(vf::util::format_duration(3599.9), "1h00m");
  EXPECT_EQ(vf::util::format_duration(3600.0), "1h00m");
  EXPECT_EQ(vf::util::format_duration(3725.0), "1h02m");
  EXPECT_EQ(vf::util::format_duration(7260.0), "2h01m");
}

TEST(Cli, ParsesSpaceSeparatedOptions) {
  const char* argv[] = {"prog", "--alpha", "3", "--name", "isabel"};
  Cli cli(5, argv);
  EXPECT_EQ(cli.get_int("alpha", 0), 3);
  EXPECT_EQ(cli.get("name", ""), "isabel");
}

TEST(Cli, ParsesEqualsForm) {
  const char* argv[] = {"prog", "--frac=0.05", "--mode=fast"};
  Cli cli(3, argv);
  EXPECT_DOUBLE_EQ(cli.get_double("frac", 0.0), 0.05);
  EXPECT_EQ(cli.get("mode", ""), "fast");
}

TEST(Cli, BareFlagIsTrue) {
  const char* argv[] = {"prog", "--verbose", "--count", "2"};
  Cli cli(4, argv);
  EXPECT_TRUE(cli.get_bool("verbose", false));
  EXPECT_EQ(cli.get_int("count", 0), 2);
}

TEST(Cli, FallbacksWhenMissing) {
  const char* argv[] = {"prog"};
  Cli cli(1, argv);
  EXPECT_FALSE(cli.has("missing"));
  EXPECT_EQ(cli.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(cli.get_double("missing", 1.5), 1.5);
  EXPECT_EQ(cli.get("missing", "dft"), "dft");
  EXPECT_TRUE(cli.get_bool("missing", true));
}

TEST(Cli, CollectsPositionals) {
  const char* argv[] = {"prog", "a.vti", "--k", "5", "b.vti"};
  Cli cli(5, argv);
  ASSERT_EQ(cli.positionals().size(), 2u);
  EXPECT_EQ(cli.positionals()[0], "a.vti");
  EXPECT_EQ(cli.positionals()[1], "b.vti");
}

TEST(Cli, BoolValueForms) {
  const char* argv[] = {"prog", "--a=1", "--b=false", "--c=on", "--d=no"};
  Cli cli(5, argv);
  EXPECT_TRUE(cli.get_bool("a", false));
  EXPECT_FALSE(cli.get_bool("b", true));
  EXPECT_TRUE(cli.get_bool("c", false));
  EXPECT_FALSE(cli.get_bool("d", true));
}

TEST(Env, StringFallback) {
  unsetenv("VF_TEST_VAR_X");
  EXPECT_EQ(vf::util::env_string("VF_TEST_VAR_X", "dflt"), "dflt");
  setenv("VF_TEST_VAR_X", "hello", 1);
  EXPECT_EQ(vf::util::env_string("VF_TEST_VAR_X", "dflt"), "hello");
  unsetenv("VF_TEST_VAR_X");
}

TEST(Env, IntAndDouble) {
  setenv("VF_TEST_VAR_Y", "42", 1);
  EXPECT_EQ(vf::util::env_int("VF_TEST_VAR_Y", 0), 42);
  setenv("VF_TEST_VAR_Y", "2.5", 1);
  EXPECT_DOUBLE_EQ(vf::util::env_double("VF_TEST_VAR_Y", 0.0), 2.5);
  unsetenv("VF_TEST_VAR_Y");
  EXPECT_EQ(vf::util::env_int("VF_TEST_VAR_Y", 3), 3);
}

TEST(Env, BoolParsing) {
  setenv("VF_TEST_VAR_Z", "true", 1);
  EXPECT_TRUE(vf::util::env_bool("VF_TEST_VAR_Z", false));
  setenv("VF_TEST_VAR_Z", "0", 1);
  EXPECT_FALSE(vf::util::env_bool("VF_TEST_VAR_Z", true));
  unsetenv("VF_TEST_VAR_Z");
  EXPECT_TRUE(vf::util::env_bool("VF_TEST_VAR_Z", true));
}

TEST(Parallel, ForCoversRange) {
  std::vector<std::atomic<int>> hits(1000);
  vf::util::parallel_for(0, 1000, [&](std::int64_t i) { ++hits[i]; },
                         /*grain=*/1);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, ForSerialBelowGrain) {
  std::vector<int> hits(10, 0);
  vf::util::parallel_for(0, 10, [&](std::int64_t i) { hits[i] += 1; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(Parallel, DynamicCoversRange) {
  std::vector<std::atomic<int>> hits(5000);
  vf::util::parallel_for_dynamic(0, 5000, [&](std::int64_t i) { ++hits[i]; },
                                 /*grain=*/1);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, EmptyRangeIsNoop) {
  int count = 0;
  vf::util::parallel_for(5, 5, [&](std::int64_t) { ++count; });
  EXPECT_EQ(count, 0);
}

}  // namespace
