// Tests for grid-to-grid resampling (trilinear upsampling, block-average
// downsampling).

#include <gtest/gtest.h>

#include <cmath>

#include "vf/data/registry.hpp"
#include "vf/field/metrics.hpp"
#include "vf/field/resample.hpp"

namespace {

using namespace vf::field;

TEST(Resample, TrilinearReproducesTrilinearFunctionsExactly) {
  ScalarField src(UniformGrid3({9, 9, 9}, {0, 0, 0}, {1, 1, 1}));
  auto f = [](const Vec3& p) {
    return 1 + 2 * p.x - p.y + 0.5 * p.z + 0.25 * p.x * p.y * p.z;
  };
  src.fill(f);
  UniformGrid3 fine({17, 17, 17}, {0, 0, 0}, {0.5, 0.5, 0.5});
  auto out = resample_trilinear(src, fine);
  for (std::int64_t i = 0; i < out.size(); ++i) {
    ASSERT_NEAR(out[i], f(fine.position(i)), 1e-9);
  }
}

TEST(Resample, IdentityWhenGridsMatch) {
  auto src = vf::data::make_dataset("hurricane")->generate({12, 12, 6}, 5.0);
  auto out = resample_trilinear(src, src.grid());
  for (std::int64_t i = 0; i < src.size(); ++i) {
    ASSERT_NEAR(out[i], src[i], 1e-12);
  }
}

TEST(Resample, ClampsOutsideSourceDomain) {
  ScalarField src(UniformGrid3({4, 4, 4}, {0, 0, 0}, {1, 1, 1}));
  src.fill([](const Vec3& p) { return p.x; });
  UniformGrid3 bigger({4, 4, 4}, {-2, 0, 0}, {2, 1, 1});
  auto out = resample_trilinear(src, bigger);
  EXPECT_DOUBLE_EQ(out.at(0, 0, 0), 0.0);  // clamped to x=0 border
  EXPECT_DOUBLE_EQ(out.at(3, 0, 0), 3.0);  // clamped to x=3 border
}

TEST(Resample, UpscalingQualityBeatsNearestBaseline) {
  // Trilinear upsampling of a coarse TRUTH volume is the classic
  // super-resolution baseline of Experiment 3; it should clearly
  // outperform predicting the mean on the smooth hurricane field.
  auto ds = vf::data::make_dataset("hurricane");
  auto coarse = ds->generate({16, 16, 8}, 20.0);
  auto fine_truth = ds->generate({31, 31, 15}, 20.0);
  auto upsampled = resample_trilinear(coarse, fine_truth.grid());
  EXPECT_GT(snr_db(fine_truth, upsampled), 10.0);
}

TEST(Downsample, AveragesBlocks) {
  ScalarField src(UniformGrid3({4, 4, 4}, {0, 0, 0}, {1, 1, 1}));
  src.fill([](const Vec3& p) { return p.x; });  // values 0,1,2,3 along x
  auto out = downsample_average(src, 2);
  EXPECT_EQ(out.grid().dims(), (Dims{2, 2, 2}));
  EXPECT_DOUBLE_EQ(out.at(0, 0, 0), 0.5);  // mean of x = 0 and 1
  EXPECT_DOUBLE_EQ(out.at(1, 0, 0), 2.5);
  EXPECT_DOUBLE_EQ(out.grid().spacing().x, 2.0);
}

TEST(Downsample, PreservesMean) {
  auto src = vf::data::make_dataset("combustion")->generate({12, 18, 6}, 30.0);
  auto out = downsample_average(src, 3);
  EXPECT_NEAR(out.stats().mean, src.stats().mean, 1e-9);
}

TEST(Downsample, ValidatesArguments) {
  ScalarField src(UniformGrid3({4, 4, 4}, {0, 0, 0}, {1, 1, 1}));
  EXPECT_THROW(downsample_average(src, 0), std::invalid_argument);
  EXPECT_THROW(downsample_average(src, 3), std::invalid_argument);  // 4 % 3
}

}  // namespace
