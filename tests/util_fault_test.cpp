// Fault-injection registry, atomic-write protocol, CRC section framing,
// byte cursors, and the retry policy — the primitives every crash-safe
// format builds on. Every failure leg of atomic_write_file is driven
// deterministically through the failpoints and must leave the destination
// exactly as it was.

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>
#include <unistd.h>

#include "vf/util/atomic_io.hpp"
#include "vf/util/fault.hpp"

namespace {

namespace fault = vf::util::fault;
namespace fs = std::filesystem;

class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::clear();
    dir_ = fs::temp_directory_path() /
           ("vf_fault_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override {
    fault::clear();
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  /// Files currently in the test directory (to assert no temp leftovers).
  [[nodiscard]] std::vector<std::string> dir_entries() const {
    std::vector<std::string> names;
    for (const auto& e : fs::directory_iterator(dir_)) {
      names.push_back(e.path().filename().string());
    }
    return names;
  }

  fs::path dir_;
};

std::string slurp(const std::string& p) {
  std::ifstream in(p, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

// ---- failpoint registry ---------------------------------------------------

TEST_F(FaultTest, UnarmedSitePassesAndCountsHits) {
  EXPECT_EQ(fault::fire("never_armed"), fault::Mode::Off);
  EXPECT_FALSE(fault::should_fail("never_armed"));
  EXPECT_EQ(fault::hits("never_armed"), 2u);
}

TEST_F(FaultTest, ArmedSiteFailsOnceByDefault) {
  fault::arm("once", {fault::Mode::Error});
  EXPECT_EQ(fault::fire("once"), fault::Mode::Error);
  EXPECT_EQ(fault::fire("once"), fault::Mode::Off);  // times=1 exhausted
  EXPECT_EQ(fault::fire("once"), fault::Mode::Off);
}

TEST_F(FaultTest, AfterSkipsLeadingHits) {
  fault::arm("late", {fault::Mode::Error, /*after=*/2, /*times=*/1});
  EXPECT_EQ(fault::fire("late"), fault::Mode::Off);
  EXPECT_EQ(fault::fire("late"), fault::Mode::Off);
  EXPECT_EQ(fault::fire("late"), fault::Mode::Error);
  EXPECT_EQ(fault::fire("late"), fault::Mode::Off);
}

TEST_F(FaultTest, TimesMinusOneFailsForever) {
  fault::arm("forever", {fault::Mode::ShortWrite, /*after=*/1, /*times=*/-1});
  EXPECT_EQ(fault::fire("forever"), fault::Mode::Off);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(fault::fire("forever"), fault::Mode::ShortWrite);
  }
}

TEST_F(FaultTest, RearmResetsHitCounter) {
  fault::arm("rearm", {fault::Mode::Error, /*after=*/0, /*times=*/1});
  EXPECT_EQ(fault::fire("rearm"), fault::Mode::Error);
  EXPECT_EQ(fault::fire("rearm"), fault::Mode::Off);
  fault::arm("rearm", {fault::Mode::Error, /*after=*/0, /*times=*/1});
  EXPECT_EQ(fault::fire("rearm"), fault::Mode::Error);
}

TEST_F(FaultTest, DisarmStopsInjection) {
  fault::arm("gone", {fault::Mode::Error, /*after=*/0, /*times=*/-1});
  EXPECT_EQ(fault::fire("gone"), fault::Mode::Error);
  fault::disarm("gone");
  EXPECT_EQ(fault::fire("gone"), fault::Mode::Off);
}

TEST_F(FaultTest, ClearResetsEverything) {
  fault::arm("a", {fault::Mode::Error});
  fault::fire("a");
  fault::clear();
  EXPECT_EQ(fault::fire("a"), fault::Mode::Off);
  EXPECT_EQ(fault::hits("a"), 1u);  // the post-clear hit only
  EXPECT_TRUE(fault::armed_sites().empty());
}

TEST_F(FaultTest, ArmedSitesListsArmedOnly) {
  fault::arm("alpha", {fault::Mode::Error});
  fault::arm("beta", {fault::Mode::BadAlloc});
  fault::fire("gamma");  // hit but never armed
  auto sites = fault::armed_sites();
  EXPECT_EQ(sites.size(), 2u);
  fault::disarm("alpha");
  sites = fault::armed_sites();
  ASSERT_EQ(sites.size(), 1u);
  EXPECT_EQ(sites[0], "beta");
}

TEST_F(FaultTest, ParseSpecGrammar) {
  fault::Spec s;
  bool armed = false;

  ASSERT_TRUE(fault::parse_spec("error", s, armed));
  EXPECT_TRUE(armed);
  EXPECT_EQ(s.mode, fault::Mode::Error);
  EXPECT_EQ(s.after, 0);
  EXPECT_EQ(s.times, 1);

  ASSERT_TRUE(fault::parse_spec("short:2", s, armed));
  EXPECT_TRUE(armed);
  EXPECT_EQ(s.mode, fault::Mode::ShortWrite);
  EXPECT_EQ(s.after, 2);
  EXPECT_EQ(s.times, 1);

  ASSERT_TRUE(fault::parse_spec("alloc:3:-1", s, armed));
  EXPECT_EQ(s.mode, fault::Mode::BadAlloc);
  EXPECT_EQ(s.after, 3);
  EXPECT_EQ(s.times, -1);

  armed = true;
  ASSERT_TRUE(fault::parse_spec("off", s, armed));
  EXPECT_FALSE(armed);

  EXPECT_FALSE(fault::parse_spec("", s, armed));
  EXPECT_FALSE(fault::parse_spec("banana", s, armed));
  EXPECT_FALSE(fault::parse_spec("error:x", s, armed));
  EXPECT_FALSE(fault::parse_spec("error:1:y", s, armed));
  EXPECT_FALSE(fault::parse_spec("error:1:2:3", s, armed));
  EXPECT_FALSE(fault::parse_spec("error:-1", s, armed));  // negative after
}

TEST_F(FaultTest, EnvArming) {
  ASSERT_EQ(::setenv("VF_FAULT_ENV_PROBE", "error:1", 1), 0);
  fault::reload_env();
  ::unsetenv("VF_FAULT_ENV_PROBE");
  EXPECT_EQ(fault::fire("env_probe"), fault::Mode::Off);
  EXPECT_EQ(fault::fire("env_probe"), fault::Mode::Error);
  EXPECT_EQ(fault::fire("env_probe"), fault::Mode::Off);
}

TEST_F(FaultTest, EnvOffDisarms) {
  fault::arm("env_off_probe", {fault::Mode::Error, /*after=*/0, /*times=*/-1});
  ASSERT_EQ(::setenv("VF_FAULT_ENV_OFF_PROBE", "off", 1), 0);
  fault::reload_env();
  ::unsetenv("VF_FAULT_ENV_OFF_PROBE");
  EXPECT_EQ(fault::fire("env_off_probe"), fault::Mode::Off);
}

TEST_F(FaultTest, MalformedEnvIgnored) {
  ASSERT_EQ(::setenv("VF_FAULT_ENV_BAD_PROBE", "nonsense:q", 1), 0);
  fault::reload_env();
  ::unsetenv("VF_FAULT_ENV_BAD_PROBE");
  EXPECT_EQ(fault::fire("env_bad_probe"), fault::Mode::Off);
}

// ---- atomic_write_file ----------------------------------------------------

TEST_F(FaultTest, AtomicWriteWritesAndLeavesNoTemp) {
  const auto p = path("out.bin");
  vf::util::atomic_write_file(p, [](std::ostream& o) { o << "hello"; });
  EXPECT_EQ(slurp(p), "hello");
  EXPECT_EQ(dir_entries().size(), 1u);  // no .tmp leftover
}

TEST_F(FaultTest, AtomicWriteReplacesExisting) {
  const auto p = path("out.bin");
  vf::util::atomic_write_file(p, [](std::ostream& o) { o << "old"; });
  vf::util::atomic_write_file(p, [](std::ostream& o) { o << "new"; });
  EXPECT_EQ(slurp(p), "new");
}

TEST_F(FaultTest, EveryFailureLegLeavesDestinationUntouched) {
  const auto p = path("precious.bin");
  vf::util::atomic_write_file(p, [](std::ostream& o) { o << "precious"; });

  const char* error_sites[] = {"atomic_open", "atomic_fsync", "atomic_rename"};
  for (const char* site : error_sites) {
    fault::clear();
    fault::arm(site, {fault::Mode::Error});
    EXPECT_THROW(vf::util::atomic_write_file(
                     p, [](std::ostream& o) { o << "clobber"; }),
                 std::runtime_error)
        << site;
    EXPECT_EQ(slurp(p), "precious") << site;
    EXPECT_EQ(dir_entries().size(), 1u) << site;  // temp cleaned up
  }

  fault::clear();
  fault::arm("atomic_write", {fault::Mode::ShortWrite});
  EXPECT_THROW(vf::util::atomic_write_file(
                   p, [](std::ostream& o) { o << "torn-to-shreds"; }),
               std::runtime_error);
  EXPECT_EQ(slurp(p), "precious");
  EXPECT_EQ(dir_entries().size(), 1u);
}

TEST_F(FaultTest, RetriesRideOutTransientWriteFaults) {
  const auto p = path("retried.bin");
  fault::arm("atomic_fsync", {fault::Mode::Error, /*after=*/0, /*times=*/1});
  vf::util::with_retries(2, 0, [&] {
    vf::util::atomic_write_file(p, [](std::ostream& o) { o << "landed"; });
    return 0;
  });
  EXPECT_EQ(slurp(p), "landed");
}

// ---- with_retries ---------------------------------------------------------

TEST_F(FaultTest, WithRetriesSucceedsAfterTransientErrors) {
  int calls = 0;
  const int got = vf::util::with_retries(3, 0, [&] {
    if (++calls < 3) throw std::runtime_error("transient");
    return 42;
  });
  EXPECT_EQ(got, 42);
  EXPECT_EQ(calls, 3);
}

TEST_F(FaultTest, WithRetriesRethrowsWhenExhausted) {
  int calls = 0;
  EXPECT_THROW(vf::util::with_retries(2, 0,
                                      [&]() -> int {
                                        ++calls;
                                        throw std::runtime_error("persistent");
                                      }),
               std::runtime_error);
  EXPECT_EQ(calls, 2);
}

TEST_F(FaultTest, WithRetriesDoesNotCatchLogicErrors) {
  int calls = 0;
  EXPECT_THROW(vf::util::with_retries(5, 0,
                                      [&]() -> int {
                                        ++calls;
                                        throw std::logic_error("bug");
                                      }),
               std::logic_error);
  EXPECT_EQ(calls, 1);  // programming errors are not transient I/O
}

TEST_F(FaultTest, RetryJitterIsDeterministicPerSeed) {
  vf::util::RetryPolicy policy;
  policy.attempts = 5;
  policy.initial_delay_ms = 100;
  policy.jitter_seed = 42;
  const auto a = vf::util::retry_delays_ms(policy);
  const auto b = vf::util::retry_delays_ms(policy);
  ASSERT_EQ(a.size(), 4u);  // one sleep per retry, none before the first try
  EXPECT_EQ(a, b);          // same seed -> same schedule, reproducible runs

  // Jitter keeps each delay inside [base/2, base] of the doubling ladder.
  int base = policy.initial_delay_ms;
  for (const int d : a) {
    EXPECT_GE(d, base / 2);
    EXPECT_LE(d, base);
    base *= 2;
  }

  policy.jitter_seed = 43;
  EXPECT_NE(vf::util::retry_delays_ms(policy), a);  // seeds decorrelate

  policy.jitter_seed = 0;  // jitter off: the raw exponential ladder
  EXPECT_EQ(vf::util::retry_delays_ms(policy),
            (std::vector<int>{100, 200, 400, 800}));
}

TEST_F(FaultTest, WithRetriesHonoursTheElapsedTimeCap) {
  vf::util::RetryPolicy policy;
  policy.attempts = 100;      // the attempt budget alone would retry forever
  policy.initial_delay_ms = 20;
  policy.max_elapsed_ms = 1;  // but the clock runs out first
  int calls = 0;
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_THROW(vf::util::with_retries(policy,
                                      [&]() -> int {
                                        ++calls;
                                        throw std::runtime_error("down");
                                      }),
               std::runtime_error);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(calls, 100);  // the cap cut the attempt budget short
  EXPECT_GE(calls, 1);
  // The cap is checked before sleeping, so the total stays near the budget
  // instead of overshooting by a full backoff (bound loose for CI noise).
  EXPECT_LT(elapsed, std::chrono::seconds(2));
}

TEST_F(FaultTest, WithRetriesPolicyFormStillRetriesToSuccess) {
  vf::util::RetryPolicy policy;
  policy.attempts = 4;
  policy.initial_delay_ms = 1;
  policy.jitter_seed = 7;
  int calls = 0;
  const int got = vf::util::with_retries(policy, [&] {
    if (++calls < 3) throw std::runtime_error("transient");
    return 7;
  });
  EXPECT_EQ(got, 7);
  EXPECT_EQ(calls, 3);
}

// ---- CRC32 + section framing ----------------------------------------------

TEST_F(FaultTest, Crc32KnownAnswer) {
  // The IEEE 802.3 check value for the ASCII digits "123456789".
  EXPECT_EQ(vf::util::crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(vf::util::crc32("", 0), 0u);
}

TEST_F(FaultTest, Crc32Chains) {
  const std::uint32_t part = vf::util::crc32("12345", 5);
  EXPECT_EQ(vf::util::crc32("6789", 4, part), 0xCBF43926u);
}

TEST_F(FaultTest, CrcSectionRoundTrip) {
  std::ostringstream os;
  vf::util::write_crc_section(os, std::string("payload"));
  std::istringstream is(os.str());
  EXPECT_EQ(vf::util::read_crc_section(is, 1024, "test"), "payload");
  EXPECT_NO_THROW(vf::util::expect_eof(is, "test"));
}

TEST_F(FaultTest, CrcSectionRejectsOversizeBeforeAllocating) {
  std::ostringstream os;
  vf::util::write_crc_section(os, std::string("payload"));
  std::string blob = os.str();
  // Pretend the size field says 2^60 bytes: the reader must reject it
  // against max_size instead of attempting the allocation.
  const std::uint64_t huge = 1ull << 60;
  blob.replace(0, sizeof huge,
               reinterpret_cast<const char*>(&huge), sizeof huge);
  std::istringstream is(blob);
  EXPECT_THROW(vf::util::read_crc_section(is, blob.size(), "test"),
               std::runtime_error);
}

TEST_F(FaultTest, CrcSectionRejectsEveryTruncation) {
  std::ostringstream os;
  vf::util::write_crc_section(os, std::string("payload"));
  const std::string blob = os.str();
  for (std::size_t len = 0; len < blob.size(); ++len) {
    std::istringstream is(blob.substr(0, len));
    EXPECT_THROW(vf::util::read_crc_section(is, len, "test"),
                 std::runtime_error)
        << "truncated to " << len << " bytes";
  }
}

TEST_F(FaultTest, CrcSectionRejectsEveryBitFlip) {
  std::ostringstream os;
  vf::util::write_crc_section(os, std::string("payload"));
  const std::string blob = os.str();
  for (std::size_t byte = 0; byte < blob.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string bad = blob;
      bad[byte] = static_cast<char>(bad[byte] ^ (1 << bit));
      std::istringstream is(bad);
      EXPECT_THROW(vf::util::read_crc_section(is, blob.size(), "test"),
                   std::runtime_error)
          << "flip at byte " << byte << " bit " << bit;
    }
  }
}

TEST_F(FaultTest, ExpectEofRejectsTrailingBytes) {
  std::istringstream trailing("x");
  EXPECT_THROW(vf::util::expect_eof(trailing, "test"), std::runtime_error);
  std::istringstream empty;
  EXPECT_NO_THROW(vf::util::expect_eof(empty, "test"));
}

// ---- ByteWriter / ByteReader ----------------------------------------------

TEST_F(FaultTest, ByteCursorRoundTrip) {
  vf::util::ByteWriter w;
  w.pod(std::uint32_t{7});
  w.pod(3.5);
  w.str("name");
  const std::string buf = w.data();

  vf::util::ByteReader r(buf, "test");
  EXPECT_EQ(r.pod<std::uint32_t>(), 7u);
  EXPECT_EQ(r.pod<double>(), 3.5);
  EXPECT_EQ(r.str(64), "name");
  EXPECT_NO_THROW(r.expect_end());
}

TEST_F(FaultTest, ByteReaderOverrunThrows) {
  const std::string buf(3, 'x');
  vf::util::ByteReader r(buf, "test");
  EXPECT_THROW(r.pod<std::uint64_t>(), std::runtime_error);
}

TEST_F(FaultTest, ByteReaderStrRejectsCorruptLength) {
  vf::util::ByteWriter w;
  w.pod(std::uint32_t{1000});  // claims 1000 bytes...
  w.bytes("abc", 3);           // ...but only 3 follow
  vf::util::ByteReader r(w.data(), "test");
  EXPECT_THROW(r.str(4096), std::runtime_error);

  vf::util::ByteWriter w2;
  w2.str("abc");
  vf::util::ByteReader r2(w2.data(), "test");
  EXPECT_THROW(r2.str(2), std::runtime_error);  // above caller's max_len
}

TEST_F(FaultTest, ByteReaderExpectEndRejectsLeftover) {
  vf::util::ByteWriter w;
  w.pod(std::uint32_t{1});
  w.pod(std::uint32_t{2});
  vf::util::ByteReader r(w.data(), "test");
  (void)r.pod<std::uint32_t>();
  EXPECT_THROW(r.expect_end(), std::runtime_error);
}

}  // namespace
