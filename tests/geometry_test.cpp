// Tests for the exact predicates and the Delaunay tetrahedralization.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "vf/geometry/delaunay.hpp"
#include "vf/geometry/predicates.hpp"
#include "vf/util/rng.hpp"

namespace {

using namespace vf::geometry;
using vf::field::Vec3;

// ----------------------------------------------------------- predicates ---

TEST(Orient3d, KnownSigns) {
  IPoint a{0, 0, 0}, b{1, 0, 0}, c{0, 1, 0};
  EXPECT_GT(orient3d(a, b, c, {0, 0, 1}), 0);
  EXPECT_LT(orient3d(a, b, c, {0, 0, -1}), 0);
  EXPECT_EQ(orient3d(a, b, c, {5, 7, 0}), 0);  // coplanar
}

TEST(Orient3d, SwapAntisymmetry) {
  vf::util::Rng rng(3);
  for (int t = 0; t < 200; ++t) {
    auto rp = [&] {
      return IPoint{static_cast<std::int64_t>(rng.below(1000)) - 500,
                    static_cast<std::int64_t>(rng.below(1000)) - 500,
                    static_cast<std::int64_t>(rng.below(1000)) - 500};
    };
    IPoint a = rp(), b = rp(), c = rp(), d = rp();
    EXPECT_EQ(orient3d(a, b, c, d), -orient3d(b, a, c, d));
    EXPECT_EQ(orient3d(a, b, c, d), -orient3d(a, c, b, d));
    EXPECT_EQ(orient3d(a, b, c, d), -orient3d(a, b, d, c));
  }
}

TEST(Orient3d, ExactAtLargeCoordinates) {
  // Nearly-degenerate slivers at the extreme of the coordinate budget must
  // still be decided exactly.
  IPoint a{-kMaxCoord, -kMaxCoord, -kMaxCoord};
  IPoint b{kMaxCoord, -kMaxCoord, -kMaxCoord};
  IPoint c{-kMaxCoord, kMaxCoord, -kMaxCoord};
  IPoint d{0, 0, -kMaxCoord};
  EXPECT_EQ(orient3d(a, b, c, d), 0);  // exactly coplanar
  d.z += 1;
  EXPECT_NE(orient3d(a, b, c, d), 0);  // one lattice unit resolves it
}

TEST(Orient3dDet, SignConsistentWithPredicate) {
  vf::util::Rng rng(4);
  for (int t = 0; t < 200; ++t) {
    auto rp = [&] {
      return IPoint{static_cast<std::int64_t>(rng.below(2000)) - 1000,
                    static_cast<std::int64_t>(rng.below(2000)) - 1000,
                    static_cast<std::int64_t>(rng.below(2000)) - 1000};
    };
    IPoint a = rp(), b = rp(), c = rp(), d = rp();
    double det = orient3d_det(a, b, c, d);
    int sign = orient3d(a, b, c, d);
    if (sign > 0) {
      EXPECT_GT(det, 0);
    }
    if (sign < 0) {
      EXPECT_LT(det, 0);
    }
    if (sign == 0) {
      EXPECT_EQ(det, 0);
    }
  }
}

TEST(Insphere, KnownConfiguration) {
  // Regular tetrahedron-ish: unit cube corners; circumsphere of
  // (0,0,0),(1000,0,0),(0,1000,0),(0,0,1000) centred at (500,500,500).
  IPoint a{0, 0, 0}, b{1000, 0, 0}, c{0, 1000, 0}, d{0, 0, 1000};
  ASSERT_GT(orient3d(a, b, c, d), 0);
  EXPECT_GT(insphere(a, b, c, d, {500, 500, 500}), 0);   // centre inside
  EXPECT_GT(insphere(a, b, c, d, {100, 100, 100}), 0);
  EXPECT_LT(insphere(a, b, c, d, {2000, 2000, 2000}), 0);  // far outside
  EXPECT_LT(insphere(a, b, c, d, {-800, -800, -800}), 0);
  // A point exactly on the sphere: (1000,1000,0) satisfies the circum-
  // sphere equation (x-500)^2+(y-500)^2+(z-500)^2 = 750000?
  // (500)^2+(500)^2+(500)^2 = 750000 for corner (0,0,0); for (1000,1000,0):
  // 500^2+500^2+500^2 = same. So it lies exactly on the sphere.
  EXPECT_EQ(insphere(a, b, c, d, {1000, 1000, 0}), 0);
}

TEST(Insphere, AgreesWithFloatingCircumsphere) {
  // Property check against an explicit circumcentre computation.
  vf::util::Rng rng(7);
  int tested = 0;
  while (tested < 200) {
    auto rp = [&] {
      return IPoint{static_cast<std::int64_t>(rng.below(4000)),
                    static_cast<std::int64_t>(rng.below(4000)),
                    static_cast<std::int64_t>(rng.below(4000))};
    };
    IPoint a = rp(), b = rp(), c = rp(), d = rp(), e = rp();
    if (orient3d(a, b, c, d) <= 0) continue;
    // Solve for circumcentre with doubles.
    auto solve = [&](const IPoint& p0, const IPoint& p1, const IPoint& p2,
                     const IPoint& p3) -> std::array<double, 4> {
      double ax = static_cast<double>(p0.x), ay = static_cast<double>(p0.y),
             az = static_cast<double>(p0.z);
      double m[3][4];
      const IPoint* ps[3] = {&p1, &p2, &p3};
      for (int i = 0; i < 3; ++i) {
        double px = static_cast<double>(ps[i]->x),
               py = static_cast<double>(ps[i]->y),
               pz = static_cast<double>(ps[i]->z);
        m[i][0] = 2 * (px - ax);
        m[i][1] = 2 * (py - ay);
        m[i][2] = 2 * (pz - az);
        m[i][3] = px * px - ax * ax + py * py - ay * ay + pz * pz - az * az;
      }
      // Gaussian elimination.
      for (int col = 0; col < 3; ++col) {
        int piv = col;
        for (int r = col + 1; r < 3; ++r) {
          if (std::abs(m[r][col]) > std::abs(m[piv][col])) piv = r;
        }
        std::swap(m[piv], m[col]);
        for (int r = col + 1; r < 3; ++r) {
          double f = m[r][col] / m[col][col];
          for (int cc = col; cc < 4; ++cc) m[r][cc] -= f * m[col][cc];
        }
      }
      double z = m[2][3] / m[2][2];
      double y = (m[1][3] - m[1][2] * z) / m[1][1];
      double x = (m[0][3] - m[0][1] * y - m[0][2] * z) / m[0][0];
      double r2 = (x - ax) * (x - ax) + (y - ay) * (y - ay) +
                  (z - az) * (z - az);
      return {x, y, z, r2};
    };
    auto [cx, cy, cz, r2] = solve(a, b, c, d);
    double ex = static_cast<double>(e.x), ey = static_cast<double>(e.y),
           ez = static_cast<double>(e.z);
    double d2 = (ex - cx) * (ex - cx) + (ey - cy) * (ey - cy) +
                (ez - cz) * (ez - cz);
    // Only check when the floating computation is decisively inside/outside.
    double margin = 1e-6 * r2;
    if (std::abs(d2 - r2) < margin) continue;
    int sign = insphere(a, b, c, d, e);
    if (d2 < r2) {
      EXPECT_GT(sign, 0) << "inside point misclassified";
    } else {
      EXPECT_LT(sign, 0) << "outside point misclassified";
    }
    ++tested;
  }
}

TEST(Insphere, PerturbationSensitivity) {
  // Cospherical case resolved by one lattice step.
  IPoint a{0, 0, 0}, b{1000, 0, 0}, c{0, 1000, 0}, d{0, 0, 1000};
  IPoint on{1000, 1000, 0};
  EXPECT_EQ(insphere(a, b, c, d, on), 0);
  EXPECT_LT(insphere(a, b, c, d, {1001, 1000, 0}), 0);
  EXPECT_GT(insphere(a, b, c, d, {999, 1000, 0}), 0);
}

// -------------------------------------------------------------- delaunay ---

std::vector<Vec3> random_points(std::size_t n, std::uint64_t seed) {
  vf::util::Rng rng(seed);
  std::vector<Vec3> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(0, 1), rng.uniform(0, 2), rng.uniform(0, 0.5)});
  }
  return pts;
}

TEST(Delaunay, RejectsEmptyInput) {
  EXPECT_THROW(Delaunay3(std::vector<Vec3>{}), std::invalid_argument);
}

class DelaunayRandom : public ::testing::TestWithParam<int> {};

TEST_P(DelaunayRandom, StructurallyValid) {
  auto pts = random_points(static_cast<std::size_t>(GetParam()),
                           1000 + GetParam());
  Delaunay3 dt(pts);
  EXPECT_EQ(dt.point_count(), pts.size());
  EXPECT_GT(dt.tetrahedron_count(), 0u);
  EXPECT_TRUE(dt.validate(500, 40));
}

INSTANTIATE_TEST_SUITE_P(Sizes, DelaunayRandom,
                         ::testing::Values(1, 2, 3, 4, 5, 10, 50, 500, 5000));

TEST(Delaunay, GridAlignedPointsAreHandled) {
  // Regular-grid samples are the pathological co-spherical case our jitter
  // must break; the result must still validate.
  std::vector<Vec3> pts;
  for (int k = 0; k < 10; ++k)
    for (int j = 0; j < 10; ++j)
      for (int i = 0; i < 10; ++i)
        pts.push_back({i * 0.1, j * 0.1, k * 0.1});
  Delaunay3 dt(pts);
  EXPECT_TRUE(dt.validate(1000, 40));
}

TEST(Delaunay, DuplicatePointsMerged) {
  std::vector<Vec3> pts = random_points(100, 5);
  auto dup = pts;
  dup.insert(dup.end(), pts.begin(), pts.end());  // every point twice
  Delaunay3 dt(dup);
  EXPECT_EQ(dt.point_count(), 200u);
  EXPECT_TRUE(dt.validate(300, 30));
  // Duplicates land within the jitter radius (a couple of lattice cells) of
  // each other; exact collisions are merged onto one vertex.
  for (std::size_t i = 0; i < 100; ++i) {
    auto a = dt.snapped(static_cast<std::uint32_t>(i));
    auto b = dt.snapped(static_cast<std::uint32_t>(i + 100));
    ASSERT_LE(std::abs(a.x - b.x), 2);
    ASSERT_LE(std::abs(a.y - b.y), 2);
    ASSERT_LE(std::abs(a.z - b.z), 2);
  }
}

TEST(Delaunay, LocateInsideHull) {
  auto pts = random_points(2000, 11);
  Delaunay3 dt(pts);
  vf::util::Rng rng(13);
  int in_hull = 0;
  for (int q = 0; q < 500; ++q) {
    Vec3 query{rng.uniform(0.2, 0.8), rng.uniform(0.4, 1.6),
               rng.uniform(0.1, 0.4)};
    auto loc = dt.locate(query);
    ASSERT_GE(loc.tet, 0);
    if (!loc.in_hull) continue;
    ++in_hull;
    double sum = 0;
    for (int j = 0; j < 4; ++j) {
      ASSERT_NE(loc.points[j], LocateResult::kSuperVertex);
      ASSERT_LT(loc.points[j], pts.size());
      ASSERT_GE(loc.weights[j], -1e-9);  // inside => nonnegative weights
      sum += loc.weights[j];
    }
    ASSERT_NEAR(sum, 1.0, 1e-9);
  }
  EXPECT_GT(in_hull, 450);  // interior queries almost always in hull
}

TEST(Delaunay, LocateReproducesLinearFunctions) {
  // Barycentric interpolation over any triangulation reproduces affine
  // functions up to the lattice-snap displacement.
  auto pts = random_points(3000, 17);
  auto f = [](const Vec3& p) { return 2 * p.x - 3 * p.y + 5 * p.z + 1; };
  Delaunay3 dt(pts);
  vf::util::Rng rng(19);
  std::int64_t hint = -1;
  for (int q = 0; q < 500; ++q) {
    Vec3 query{rng.uniform(0.1, 0.9), rng.uniform(0.2, 1.8),
               rng.uniform(0.05, 0.45)};
    auto loc = dt.locate(query, hint);
    hint = loc.tet;
    if (!loc.in_hull) continue;
    double v = 0;
    for (int j = 0; j < 4; ++j) v += loc.weights[j] * f(pts[loc.points[j]]);
    // Tolerance: snap displacement is <= ~2 lattice cells of the bbox.
    ASSERT_NEAR(v, f(query), 2e-3);
  }
}

TEST(Delaunay, LocateAtSamplePointsReturnsThatValueRegion) {
  auto pts = random_points(500, 23);
  Delaunay3 dt(pts);
  for (std::size_t i = 0; i < pts.size(); i += 13) {
    auto loc = dt.locate(pts[i]);
    ASSERT_GE(loc.tet, 0);
    // The sample itself must be a corner of (or adjacent to) the located
    // tet with dominating weight.
    double wmax = 0;
    for (int j = 0; j < 4; ++j) wmax = std::max(wmax, loc.weights[j]);
    EXPECT_GT(wmax, 0.9);
  }
}

TEST(Delaunay, LocateFarOutsideReturnsNotInHull) {
  auto pts = random_points(200, 29);
  Delaunay3 dt(pts);
  auto loc = dt.locate({100.0, 100.0, 100.0});
  EXPECT_FALSE(loc.in_hull);
}

TEST(Delaunay, CollinearInputDoesNotCrash) {
  std::vector<Vec3> pts;
  for (int i = 0; i < 50; ++i) pts.push_back({i * 0.02, 0.0, 0.0});
  Delaunay3 dt(pts);  // jitter lifts them into general position
  EXPECT_TRUE(dt.validate(100, 20));
}

TEST(Delaunay, CoplanarInputDoesNotCrash) {
  std::vector<Vec3> pts;
  for (int j = 0; j < 12; ++j)
    for (int i = 0; i < 12; ++i) pts.push_back({i * 0.1, j * 0.1, 0.0});
  Delaunay3 dt(pts);
  EXPECT_TRUE(dt.validate(200, 20));
}

TEST(Delaunay, TetCountScalesLinearl) {
  // Expected ~6.7 tets per vertex for uniform random points (plus hull
  // effects); sanity-check the count is in a plausible band.
  auto pts = random_points(4000, 31);
  Delaunay3 dt(pts);
  double per_vertex =
      static_cast<double>(dt.tetrahedron_count()) / 4000.0;
  EXPECT_GT(per_vertex, 4.0);
  EXPECT_LT(per_vertex, 9.0);
}

TEST(Delaunay, ClusteredPointsValid) {
  // Two dense clusters with a sparse gap: stresses walk + cavity logic.
  vf::util::Rng rng(37);
  std::vector<Vec3> pts;
  for (int i = 0; i < 1000; ++i) {
    pts.push_back({rng.gaussian(0.2, 0.02), rng.gaussian(0.2, 0.02),
                   rng.gaussian(0.2, 0.02)});
    pts.push_back({rng.gaussian(0.8, 0.02), rng.gaussian(0.8, 0.02),
                   rng.gaussian(0.8, 0.02)});
  }
  Delaunay3 dt(pts);
  EXPECT_TRUE(dt.validate(500, 40));
}

}  // namespace
