// Tests for the visualization substrate: images, transfer functions, the
// raycaster, isosurface extraction, and mesh metrics.

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "vf/vis/image.hpp"
#include "vf/vis/marching_cubes.hpp"
#include "vf/vis/mesh.hpp"
#include "vf/vis/raycast.hpp"
#include "vf/vis/transfer_function.hpp"
#include "vf/util/rng.hpp"

namespace {

using namespace vf::vis;
using vf::field::ScalarField;
using vf::field::UniformGrid3;
using vf::field::Vec3;

// ------------------------------------------------------------------ image ---

TEST(Image, ConstructionAndAccess) {
  Image img(4, 3, {0.5, 0.25, 1.0});
  EXPECT_EQ(img.width(), 4);
  EXPECT_EQ(img.height(), 3);
  EXPECT_DOUBLE_EQ(img.at(3, 2).r, 0.5);
  img.at(1, 1) = {0, 1, 0};
  EXPECT_DOUBLE_EQ(img.at(1, 1).g, 1.0);
  EXPECT_THROW(Image(0, 5), std::invalid_argument);
}

TEST(Image, PpmRoundTripQuantised) {
  auto dir = std::filesystem::temp_directory_path() /
             ("vf_vis_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  Image img(8, 5);
  vf::util::Rng rng(3);
  for (int y = 0; y < 5; ++y) {
    for (int x = 0; x < 8; ++x) {
      img.at(x, y) = {rng.uniform(), rng.uniform(), rng.uniform()};
    }
  }
  auto path = (dir / "a.ppm").string();
  img.write_ppm(path);
  auto back = Image::read_ppm(path);
  ASSERT_EQ(back.width(), 8);
  ASSERT_EQ(back.height(), 5);
  for (int y = 0; y < 5; ++y) {
    for (int x = 0; x < 8; ++x) {
      ASSERT_NEAR(back.at(x, y).r, img.at(x, y).r, 1.0 / 255.0);
      ASSERT_NEAR(back.at(x, y).b, img.at(x, y).b, 1.0 / 255.0);
    }
  }
  std::filesystem::remove_all(dir);
}

TEST(Image, MetricsOnIdenticalImages) {
  Image img(16, 16, {0.3, 0.6, 0.9});
  EXPECT_EQ(image_mse(img, img), 0.0);
  EXPECT_TRUE(std::isinf(image_psnr_db(img, img)));
  EXPECT_NEAR(image_ssim(img, img), 1.0, 1e-9);
}

TEST(Image, MseKnownValue) {
  Image a(2, 1, {0, 0, 0});
  Image b(2, 1, {0.5, 0.5, 0.5});
  EXPECT_DOUBLE_EQ(image_mse(a, b), 0.25);
  EXPECT_NEAR(image_psnr_db(a, b), 10.0 * std::log10(4.0), 1e-9);
}

TEST(Image, SsimPenalisesNoise) {
  Image clean(32, 32);
  vf::util::Rng rng(5);
  for (int y = 0; y < 32; ++y) {
    for (int x = 0; x < 32; ++x) {
      double v = 0.5 + 0.3 * std::sin(x * 0.4) * std::cos(y * 0.3);
      clean.at(x, y) = {v, v, v};
    }
  }
  Image noisy = clean;
  for (int y = 0; y < 32; ++y) {
    for (int x = 0; x < 32; ++x) {
      double n = 0.15 * rng.gaussian();
      noisy.at(x, y).r += n;
      noisy.at(x, y).g += n;
      noisy.at(x, y).b += n;
    }
  }
  EXPECT_LT(image_ssim(clean, noisy), 0.9);
}

TEST(Image, MetricsSizeMismatchThrows) {
  Image a(4, 4), b(5, 4);
  EXPECT_THROW(image_mse(a, b), std::invalid_argument);
  EXPECT_THROW(image_ssim(a, b), std::invalid_argument);
}

// --------------------------------------------------------- transfer func ---

TEST(TransferFunction, InterpolatesControlPoints) {
  TransferFunction tf({{0.0, {1, 0, 0}, 0.0}, {1.0, {0, 0, 1}, 10.0}});
  EXPECT_DOUBLE_EQ(tf.color(0.0).r, 1.0);
  EXPECT_DOUBLE_EQ(tf.color(1.0).b, 1.0);
  EXPECT_NEAR(tf.color(0.5).r, 0.5, 1e-12);
  EXPECT_NEAR(tf.color(0.5).b, 0.5, 1e-12);
  EXPECT_NEAR(tf.opacity(0.25), 2.5, 1e-12);
}

TEST(TransferFunction, ClampsOutsideRange) {
  TransferFunction tf({{0.0, {1, 0, 0}, 1.0}, {1.0, {0, 1, 0}, 3.0}});
  EXPECT_DOUBLE_EQ(tf.color(-5.0).r, 1.0);
  EXPECT_DOUBLE_EQ(tf.color(9.0).g, 1.0);
  EXPECT_DOUBLE_EQ(tf.opacity(-5.0), 1.0);
  EXPECT_DOUBLE_EQ(tf.opacity(9.0), 3.0);
}

TEST(TransferFunction, UnsortedInputHandled) {
  TransferFunction tf({{1.0, {0, 0, 1}, 2.0}, {0.0, {1, 0, 0}, 0.0}});
  EXPECT_DOUBLE_EQ(tf.color(0.0).r, 1.0);  // sorted internally
  EXPECT_DOUBLE_EQ(tf.opacity(1.0), 2.0);
}

TEST(TransferFunction, EmptyThrows) {
  EXPECT_THROW(TransferFunction({}), std::invalid_argument);
}

TEST(TransferFunction, BandIsLocalised) {
  auto tf = TransferFunction::band(0.5, 0.05, {1, 1, 0});
  EXPECT_GT(tf.opacity(0.5), tf.opacity(0.4));
  EXPECT_EQ(tf.opacity(0.2), 0.0);
  EXPECT_EQ(tf.opacity(0.8), 0.0);
}

// --------------------------------------------------------------- raycast ---

TEST(Raycast, TransparentVolumeShowsBackground) {
  ScalarField f(UniformGrid3({8, 8, 8}, {0, 0, 0}, {1, 1, 1}));
  TransferFunction tf({{0.0, {1, 0, 0}, 0.0}});  // zero opacity everywhere
  RenderOptions opt;
  opt.width = 16;
  opt.height = 16;
  opt.background = {0.2, 0.4, 0.6};
  auto img = render(f, tf, opt);
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) {
      ASSERT_NEAR(img.at(x, y).r, 0.2, 1e-9);
      ASSERT_NEAR(img.at(x, y).b, 0.6, 1e-9);
    }
  }
}

TEST(Raycast, OpaqueVolumeShowsVolumeColor) {
  ScalarField f(UniformGrid3({8, 8, 8}, {0, 0, 0}, {1, 1, 1}));
  for (std::int64_t i = 0; i < f.size(); ++i) f[i] = 1.0;
  TransferFunction tf({{1.0, {0.9, 0.1, 0.1}, 1000.0}});  // near-opaque
  RenderOptions opt;
  opt.width = 8;
  opt.height = 8;
  opt.shading = 0.0;
  auto img = render(f, tf, opt);
  EXPECT_NEAR(img.at(4, 4).r, 0.9, 0.02);
  EXPECT_NEAR(img.at(4, 4).g, 0.1, 0.02);
}

TEST(Raycast, OutputDimensionsAndDeterminism) {
  ScalarField f(UniformGrid3({10, 12, 6}, {0, 0, 0}, {1, 1, 1}));
  f.fill([](const Vec3& p) { return std::sin(p.x) + p.y * 0.1; });
  auto tf = TransferFunction::cool_warm(-1, 2);
  RenderOptions opt;
  opt.width = 33;
  opt.height = 17;
  auto a = render(f, tf, opt);
  auto b = render(f, tf, opt);
  EXPECT_EQ(a.width(), 33);
  EXPECT_EQ(a.height(), 17);
  for (int y = 0; y < 17; ++y) {
    for (int x = 0; x < 33; ++x) {
      ASSERT_EQ(a.at(x, y).r, b.at(x, y).r);
    }
  }
}

TEST(Raycast, DifferentAxesSeeDifferentStructure) {
  // A field varying only along x renders flat when viewed along x but
  // striped when viewed along z.
  ScalarField f(UniformGrid3({16, 16, 16}, {0, 0, 0}, {1, 1, 1}));
  f.fill([](const Vec3& p) { return p.x < 7.5 ? 0.0 : 1.0; });
  auto tf = TransferFunction::cool_warm(0, 1, 2.0);
  RenderOptions opt;
  opt.width = 32;
  opt.height = 32;
  opt.axis = ViewAxis::Z;
  auto along_z = render(f, tf, opt);
  // Left and right halves of the image differ when looking along z.
  double left = along_z.at(4, 16).r, right = along_z.at(28, 16).r;
  EXPECT_GT(std::abs(left - right), 0.05);
}

// -------------------------------------------------------------- isosurface --

ScalarField sphere_field(int n, double radius) {
  // Signed distance to a sphere centred in the domain.
  ScalarField f(UniformGrid3({n, n, n}, {0, 0, 0}, {1, 1, 1}));
  double c = (n - 1) / 2.0;
  f.fill([c, radius](const Vec3& p) {
    return std::sqrt((p.x - c) * (p.x - c) + (p.y - c) * (p.y - c) +
                     (p.z - c) * (p.z - c)) -
           radius;
  });
  return f;
}

TEST(Isosurface, SphereAreaMatchesAnalytic) {
  const double radius = 10.0;
  auto f = sphere_field(32, radius);
  auto mesh = extract_isosurface(f, 0.0);
  ASSERT_FALSE(mesh.empty());
  double expected = 4.0 * M_PI * radius * radius;
  EXPECT_NEAR(mesh.surface_area(), expected, expected * 0.05);
}

TEST(Isosurface, VerticesLieOnIsosurfaceOfLinearField) {
  // For a linear field the edge interpolation is exact, so every vertex
  // must satisfy f(v) == iso to machine precision.
  ScalarField f(UniformGrid3({10, 10, 10}, {0, 0, 0}, {1, 1, 1}));
  f.fill([](const Vec3& p) { return 2 * p.x - p.y + 0.5 * p.z; });
  auto mesh = extract_isosurface(f, 7.25);
  ASSERT_FALSE(mesh.empty());
  for (const auto& v : mesh.vertices) {
    ASSERT_NEAR(2 * v.x - v.y + 0.5 * v.z, 7.25, 1e-9);
  }
}

TEST(Isosurface, PlaneAreaMatchesCrossSection) {
  // Isosurface of f = x at x = 4.5 inside a 10^3 unit grid: a 9x9 plane.
  ScalarField f(UniformGrid3({10, 10, 10}, {0, 0, 0}, {1, 1, 1}));
  f.fill([](const Vec3& p) { return p.x; });
  auto mesh = extract_isosurface(f, 4.5);
  EXPECT_NEAR(mesh.surface_area(), 81.0, 0.5);
}

TEST(Isosurface, EmptyWhenIsoOutsideRange) {
  auto f = sphere_field(16, 5.0);
  EXPECT_TRUE(extract_isosurface(f, 1e6).empty());
  EXPECT_TRUE(extract_isosurface(f, -1e6).empty());
}

TEST(Isosurface, VerticesAreWelded) {
  auto f = sphere_field(24, 8.0);
  auto mesh = extract_isosurface(f, 0.0);
  // A welded closed surface has far fewer vertices than 3 * triangles.
  EXPECT_LT(mesh.vertices.size(), mesh.triangles.size() * 3 / 2);
  // Every index valid.
  for (const auto& t : mesh.triangles) {
    for (auto idx : t) ASSERT_LT(idx, mesh.vertices.size());
  }
}

TEST(Isosurface, BoundsInsideGrid) {
  auto f = sphere_field(20, 6.0);
  auto mesh = extract_isosurface(f, 0.0);
  auto mb = mesh.bounds();
  auto gb = f.grid().bounds();
  EXPECT_GE(mb.min.x, gb.min.x - 1e-9);
  EXPECT_LE(mb.max.x, gb.max.x + 1e-9);
}

// ------------------------------------------------------------------ mesh ---

TEST(Mesh, PointTriangleDistanceRegions) {
  Vec3 a{0, 0, 0}, b{2, 0, 0}, c{0, 2, 0};
  // Above the interior: perpendicular distance.
  EXPECT_NEAR(point_triangle_distance({0.5, 0.5, 3}, a, b, c), 3.0, 1e-12);
  // Closest to vertex a.
  EXPECT_NEAR(point_triangle_distance({-1, -1, 0}, a, b, c), std::sqrt(2.0),
              1e-12);
  // Closest to edge ab.
  EXPECT_NEAR(point_triangle_distance({1, -2, 0}, a, b, c), 2.0, 1e-12);
  // On the triangle: zero.
  EXPECT_NEAR(point_triangle_distance({0.25, 0.25, 0}, a, b, c), 0.0, 1e-12);
  // Closest to the hypotenuse edge bc.
  EXPECT_NEAR(point_triangle_distance({2, 2, 0}, a, b, c), std::sqrt(2.0),
              1e-12);
}

TEST(Mesh, ObjWriterProducesValidCounts) {
  auto f = sphere_field(16, 5.0);
  auto mesh = extract_isosurface(f, 0.0);
  auto dir = std::filesystem::temp_directory_path() /
             ("vf_mesh_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  auto path = (dir / "m.obj").string();
  mesh.write_obj(path);
  // Count lines of each type.
  std::ifstream in(path);
  std::string line;
  std::size_t nv = 0, nf = 0;
  while (std::getline(in, line)) {
    if (line.rfind("v ", 0) == 0) ++nv;
    if (line.rfind("f ", 0) == 0) ++nf;
  }
  EXPECT_EQ(nv, mesh.vertices.size());
  EXPECT_EQ(nf, mesh.triangles.size());
  std::filesystem::remove_all(dir);
}

TEST(Mesh, DistanceOfIdenticalMeshesIsZero) {
  auto f = sphere_field(20, 6.0);
  auto mesh = extract_isosurface(f, 0.0);
  auto d = mesh_distance(mesh, mesh, 500);
  EXPECT_NEAR(d.mean, 0.0, 1e-9);
  EXPECT_NEAR(d.max, 0.0, 1e-9);
}

TEST(Mesh, DistanceDetectsRadialOffset) {
  // Spheres of radius 8 and 9: surface distance ~1 everywhere.
  auto ma = extract_isosurface(sphere_field(32, 8.0), 0.0);
  auto mb = extract_isosurface(sphere_field(32, 9.0), 0.0);
  auto d = mesh_distance(ma, mb, 800);
  EXPECT_NEAR(d.mean, 1.0, 0.15);
}

TEST(Mesh, DistanceEmptyThrows) {
  TriangleMesh empty;
  auto mesh = extract_isosurface(sphere_field(12, 4.0), 0.0);
  EXPECT_THROW(mesh_distance(empty, mesh), std::invalid_argument);
  EXPECT_THROW(mesh_distance(mesh, empty), std::invalid_argument);
}

}  // namespace
