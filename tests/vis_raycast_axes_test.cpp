// Additional raycaster coverage: every view axis, step-size convergence,
// shading toggle, and early-ray termination consistency.

#include <gtest/gtest.h>

#include <cmath>

#include "vf/vis/raycast.hpp"

namespace {

using namespace vf::vis;
using vf::field::ScalarField;
using vf::field::UniformGrid3;
using vf::field::Vec3;

ScalarField gradient_field() {
  // Value rises along x only.
  ScalarField f(UniformGrid3({16, 16, 16}, {0, 0, 0}, {1, 1, 1}));
  f.fill([](const Vec3& p) { return p.x / 15.0; });
  return f;
}

double mean_luma(const Image& img) {
  double acc = 0;
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      const auto& p = img.at(x, y);
      acc += (p.r + p.g + p.b) / 3.0;
    }
  }
  return acc / (img.width() * img.height());
}

TEST(RaycastAxes, AllThreeAxesRender) {
  auto f = gradient_field();
  auto tf = TransferFunction::cool_warm(0, 1, 3.0);
  for (auto axis : {ViewAxis::X, ViewAxis::Y, ViewAxis::Z}) {
    RenderOptions opt;
    opt.axis = axis;
    opt.width = 24;
    opt.height = 24;
    auto img = render(f, tf, opt);
    EXPECT_EQ(img.width(), 24);
    double m = mean_luma(img);
    EXPECT_GT(m, 0.0);
    EXPECT_LT(m, 1.0);
  }
}

TEST(RaycastAxes, XAxisIntegratesOutTheGradient) {
  // Looking along x, every ray passes through the full value ramp, so the
  // image should be nearly uniform; looking along z, the ramp is visible
  // as horizontal variation. Compare column-to-column contrast.
  auto f = gradient_field();
  auto tf = TransferFunction::cool_warm(0, 1, 2.0);
  auto contrast = [&](ViewAxis axis) {
    RenderOptions opt;
    opt.axis = axis;
    opt.width = 24;
    opt.height = 24;
    opt.shading = 0.0;
    auto img = render(f, tf, opt);
    double lo = 1e9, hi = -1e9;
    for (int x = 0; x < 24; ++x) {
      double col = 0;
      for (int y = 0; y < 24; ++y) col += img.at(x, y).r;
      lo = std::min(lo, col);
      hi = std::max(hi, col);
    }
    return hi - lo;
  };
  EXPECT_GT(contrast(ViewAxis::Z), contrast(ViewAxis::X) * 3.0);
}

TEST(RaycastAxes, SmallerStepsConverge) {
  auto f = gradient_field();
  auto tf = TransferFunction::cool_warm(0, 1, 5.0);
  RenderOptions coarse, fine, finer;
  coarse.step_scale = 1.0;
  fine.step_scale = 0.25;
  finer.step_scale = 0.125;
  coarse.width = fine.width = finer.width = 16;
  coarse.height = fine.height = finer.height = 16;
  auto img_c = render(f, tf, coarse);
  auto img_f = render(f, tf, fine);
  auto img_ff = render(f, tf, finer);
  // Successive refinements get closer together (Riemann-sum convergence).
  EXPECT_LT(image_mse(img_f, img_ff), image_mse(img_c, img_f) + 1e-12);
}

TEST(RaycastAxes, ShadingDarkensGradientRegions) {
  auto f = gradient_field();
  auto tf = TransferFunction::cool_warm(0, 1, 5.0);
  RenderOptions flat, shaded;
  flat.shading = 0.0;
  shaded.shading = 0.8;
  flat.width = shaded.width = 16;
  flat.height = shaded.height = 16;
  auto img_flat = render(f, tf, flat);
  auto img_shaded = render(f, tf, shaded);
  EXPECT_LE(mean_luma(img_shaded), mean_luma(img_flat) + 1e-12);
}

}  // namespace
