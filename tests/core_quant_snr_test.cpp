// SNR-regression guardrail for the quantized inference path (paper metric:
// reconstruction SNR in dB, Table I). For each dataset stand-in a model is
// trained once; the fp64 reconstruction sets the baseline and every
// quantized policy must land within a fixed SNR delta of it. A codec or
// scale bug costs tens of dB and trips these bounds immediately, so
// quantization can never silently degrade reconstruction quality.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "vf/core/batch_reconstruct.hpp"
#include "vf/core/fcnn.hpp"
#include "vf/data/registry.hpp"
#include "vf/field/metrics.hpp"
#include "vf/nn/quant.hpp"
#include "vf/sampling/samplers.hpp"

namespace {

using vf::core::BatchReconstructor;
using vf::core::FcnnConfig;
using vf::core::FcnnModel;
using vf::core::FcnnReconstructor;
using vf::core::ReconstructOptions;
using vf::field::ScalarField;
using vf::nn::QuantPolicy;
using vf::sampling::ImportanceSampler;
using vf::sampling::SampleCloud;

/// Maximum SNR the fp16 path may give up against fp64. One binary16
/// rounding is ~2^-11 relative — far below model error — so the observed
/// delta is typically < 0.1 dB.
constexpr double kFp16DeltaDb = 0.5;
/// Int8's per-tensor weight grid is coarser; allow more but still catch
/// broken scales (which cost tens of dB).
constexpr double kInt8DeltaDb = 3.0;

struct Guardrail {
  ScalarField truth;
  SampleCloud cloud;
  FcnnModel model;
};

Guardrail make_guardrail(const std::string& dataset) {
  auto ds = vf::data::make_dataset(dataset);
  Guardrail g{ds->generate({16, 16, 8}, 10.0), SampleCloud{}, FcnnModel{}};
  FcnnConfig cfg;
  cfg.hidden = {48, 24};
  cfg.epochs = 150;
  cfg.max_train_rows = 6000;
  cfg.train_fractions = {0.05};
  ImportanceSampler sampler;
  g.model = pretrain(g.truth, sampler, cfg).model;
  g.cloud = sampler.sample(g.truth, 0.05, 21);
  return g;
}

double snr_with_policy(const Guardrail& g, QuantPolicy policy) {
  ReconstructOptions opts;
  opts.quant = policy;
  BatchReconstructor rec(g.model.clone(), opts);
  ScalarField out = rec.reconstruct(g.cloud, g.truth.grid());
  return vf::field::snr_db(g.truth, out);
}

class QuantSnrGuardrail : public ::testing::TestWithParam<std::string> {};

TEST_P(QuantSnrGuardrail, QuantizedSnrStaysWithinDeltaOfFp64) {
  const Guardrail g = make_guardrail(GetParam());
  const double base = snr_with_policy(g, QuantPolicy::None);
  const double fp32 = snr_with_policy(g, QuantPolicy::Fp32);
  const double fp16 = snr_with_policy(g, QuantPolicy::Fp16);
  const double int8 = snr_with_policy(g, QuantPolicy::Int8);

  // The reconstruction must be meaningful at all (a broken pipeline gives
  // SNR near or below 0 dB) before deltas are worth comparing.
  ASSERT_GT(base, 3.0) << "fp64 baseline reconstruction is broken";
  EXPECT_GE(fp32, base - 0.1)
      << "fp32 SNR " << fp32 << " dB vs fp64 " << base << " dB";
  EXPECT_GE(fp16, base - kFp16DeltaDb)
      << "fp16 SNR " << fp16 << " dB vs fp64 " << base << " dB";
  EXPECT_GE(int8, base - kInt8DeltaDb)
      << "int8 SNR " << int8 << " dB vs fp64 " << base << " dB";
}

INSTANTIATE_TEST_SUITE_P(Datasets, QuantSnrGuardrail,
                         ::testing::Values("hurricane", "combustion",
                                           "ionization"));

TEST(QuantSnrGuardrail2, FullMatrixPathHonoursQuantToo) {
  const Guardrail g = make_guardrail("hurricane");
  ReconstructOptions opts;
  opts.quant = QuantPolicy::Fp16;
  FcnnReconstructor full(g.model.clone(), opts);
  BatchReconstructor stream(g.model.clone(), opts);
  ScalarField a = full.reconstruct(g.cloud, g.truth.grid());
  ScalarField b = stream.reconstruct(g.cloud, g.truth.grid());
  const double snr_a = vf::field::snr_db(g.truth, a);
  const double snr_b = vf::field::snr_db(g.truth, b);
  // Both engines run the same quantized forward; their quality must agree.
  EXPECT_NEAR(snr_a, snr_b, 0.5);
  EXPECT_EQ(stream.quant_policy(), QuantPolicy::Fp16);
}

}  // namespace
