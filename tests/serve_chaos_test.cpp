// Chaos soak for the serving stack (DESIGN.md §12): open-loop producers
// hammer a Service while the model_read and serve_infer failpoints inject
// storms of load and inference faults, the registry churns under a
// one-model LRU cap, and tiny circuit-breaker backoffs force rapid
// open/half-open/close cycling. The suite asserts the request-lifecycle
// contract, not throughput:
//
//   - no crash, no hang (every future resolves; CTest enforces the bound);
//   - exactly one terminal answer per accepted request — a broken promise
//     (std::future_error) anywhere is a failure;
//   - the error rate is bounded: faults degrade requests to the classical
//     fallback, they do not fail them;
//   - drain mid-storm leaves zero orphaned promises;
//   - the breaker opens under the storm and closes once the fault clears.
//
// The lock-order detector is armed in Log mode throughout, and the chaos
// CTest label runs this under ASan and TSan with VF_FAULT_* / VF_LOCK_ORDER
// armed from the environment (.github/workflows/correctness.yml).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <future>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "vf/core/fcnn.hpp"
#include "vf/core/model.hpp"
#include "vf/obs/obs.hpp"
#include "vf/serve/service.hpp"
#include "vf/util/fault.hpp"
#include "vf/util/lock_order.hpp"

namespace {

namespace fs = std::filesystem;
namespace fault = vf::util::fault;
namespace lockorder = vf::util::lockorder;
using namespace std::chrono_literals;
using vf::field::Vec3;
using vf::sampling::SampleCloud;
using vf::serve::BreakerState;
using vf::serve::PointResponse;
using vf::serve::Service;
using vf::serve::ServiceOptions;
using vf::serve::Status;

vf::core::FcnnModel tiny_model(unsigned seed) {
  vf::core::FcnnModel model;
  model.net = vf::nn::Network::mlp(
      static_cast<std::size_t>(vf::core::kFeatureDim), {16, 8},
      static_cast<std::size_t>(vf::core::kTargetDimScalar), seed);
  model.in_norm.mean.assign(vf::core::kFeatureDim, 0.0);
  model.in_norm.stddev.assign(vf::core::kFeatureDim, 1.0);
  model.out_norm.mean.assign(vf::core::kTargetDimScalar, 0.0);
  model.out_norm.stddev.assign(vf::core::kTargetDimScalar, 1.0);
  model.with_gradients = false;
  model.dataset = "chaos-test";
  return model;
}

SampleCloud test_cloud() {
  std::vector<Vec3> points;
  std::vector<double> values;
  for (int i = 0; i < 6; ++i) {
    for (int j = 0; j < 6; ++j) {
      for (int k = 0; k < 3; ++k) {
        Vec3 p{static_cast<double>(i), static_cast<double>(j),
               static_cast<double>(k)};
        points.push_back(p);
        values.push_back(std::sin(0.3 * p.x) + 0.2 * p.y - 0.1 * p.z);
      }
    }
  }
  return SampleCloud(points, values);
}

/// Chaos options: small everything — a 1-model registry under two live
/// keys evicts on nearly every cross-key batch, millisecond breaker
/// backoffs cycle open/half-open/close inside the soak, and a short
/// coalescing window keeps batches flowing.
ServiceOptions chaos_options() {
  ServiceOptions opts;
  opts.workers = 3;
  opts.batch_deadline = 200us;
  opts.batch_max_points = 32;  // small batches: more registry traffic
  opts.queue_max = 512;
  opts.registry.max_models = 1;
  opts.registry.breaker_threshold = 2;
  opts.registry.breaker_backoff = 2ms;
  opts.registry.breaker_backoff_max = 20ms;
  return opts;
}

/// One harvested request outcome.
struct Outcome {
  std::uint64_t ok = 0;         ///< served (model or classical fallback)
  std::uint64_t fallback = 0;   ///< of ok: classical fallback
  std::uint64_t expired = 0;    ///< deadline_exceeded
  std::uint64_t draining = 0;   ///< drain-shed
  std::uint64_t failed = 0;     ///< exception (never future_error)
  [[nodiscard]] std::uint64_t total() const {
    return ok + expired + draining + failed;
  }
};

/// get() every future, classifying terminal answers. A broken promise is
/// an immediate test failure: it means a request was orphaned.
Outcome harvest(std::vector<std::future<PointResponse>>& futures) {
  Outcome out;
  for (auto& f : futures) {
    try {
      const PointResponse resp = f.get();
      switch (resp.status) {
        case Status::Ok:
          ++out.ok;
          if (!resp.fallback.empty()) ++out.fallback;
          break;
        case Status::DeadlineExceeded:
          ++out.expired;
          break;
        case Status::Draining:
          ++out.draining;
          break;
        default:
          ADD_FAILURE() << "unexpected terminal status "
                        << static_cast<int>(resp.status);
      }
    } catch (const std::future_error&) {
      ADD_FAILURE() << "orphaned promise: request never answered";
    } catch (const std::exception&) {
      ++out.failed;  // an honest failure is a terminal answer too
    }
  }
  return out;
}

class ServeChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("vf_serve_chaos_" + std::string(::testing::UnitTest::GetInstance()
                                                ->current_test_info()
                                                ->name()));
    fs::create_directories(dir_);
    fault::clear();  // each case arms its own storm
    lockorder::reset();
    lockorder::set_action(lockorder::Action::Log);
    lockorder::set_enabled(true);
  }
  void TearDown() override {
    EXPECT_EQ(lockorder::cycle_count(), 0u);
    for (const auto& report : lockorder::cycle_reports()) {
      ADD_FAILURE() << report;
    }
    lockorder::set_enabled(false);
    lockorder::reset();
    fault::clear();
    fault::reload_env();  // restore any env-armed sites for later suites
    fs::remove_all(dir_);
  }

  std::string save_model(const std::string& name, unsigned seed) {
    const std::string path = (dir_ / (name + ".vfmd")).string();
    tiny_model(seed).save(path);
    return path;
  }

  fs::path dir_;
};

// The headline soak: producers race a fault storm that hits both failure
// domains (model load + inference) while the 1-model LRU cap churns the
// registry. Every accepted request must come back with exactly one
// terminal answer, and the storm must degrade requests — not fail them.
TEST_F(ServeChaosTest, SurvivesAFaultStormWithExactlyOneAnswerPerRequest) {
  // Finite fault bursts early in the soak. Both session keys resolve at
  // least once, so arming model_read from its second hit guarantees the
  // load-failure domain fires however aggressively the batches coalesce;
  // recovery afterwards is part of what the soak asserts.
  fault::arm("model_read", {fault::Mode::Error, /*after=*/1, /*times=*/2});
  fault::arm("serve_infer", {fault::Mode::Error, /*after=*/2, /*times=*/3});

  Service service(chaos_options());
  service.add_session("a", test_cloud(), save_model("a", 1));
  service.add_session("b", test_cloud(), save_model("b", 2));

  constexpr int kProducers = 4;
  constexpr int kQueriesPerProducer = 60;
  std::atomic<std::uint64_t> accepted{0};
  std::vector<std::vector<std::future<PointResponse>>> futures(kProducers);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      auto& mine = futures[static_cast<std::size_t>(p)];
      mine.reserve(kQueriesPerProducer);
      for (int i = 0; i < kQueriesPerProducer; ++i) {
        const char* key = (p + i) % 2 == 0 ? "a" : "b";
        // Every 7th request carries a tight-but-feasible deadline so the
        // expiry paths stay exercised under the storm.
        auto f = i % 7 == 6
                     ? service.submit(key, {{1.0 + i * 0.01, 2.0, 1.0}},
                                      std::chrono::steady_clock::now() + 2ms)
                     : service.submit(key, {{1.0 + i * 0.01, 2.0, 1.0}});
        if (f) {
          accepted.fetch_add(1, std::memory_order_relaxed);
          mine.push_back(std::move(*f));
        }
        // open-loop: shed requests are simply dropped by the producer
      }
    });
  }
  for (auto& t : producers) t.join();

  Outcome total;
  for (auto& mine : futures) {
    const Outcome o = harvest(mine);
    total.ok += o.ok;
    total.fallback += o.fallback;
    total.expired += o.expired;
    total.draining += o.draining;
    total.failed += o.failed;
  }

  // Exactly one terminal answer per accepted request.
  EXPECT_EQ(total.total(), accepted.load());
  EXPECT_EQ(total.draining, 0u);  // nobody called drain
  // The storm bends the service, it does not break it: most requests are
  // served, and faults surface as classical fallbacks, not errors.
  EXPECT_GT(total.ok, accepted.load() / 2);
  EXPECT_EQ(total.failed, 0u);

  const auto stats = service.stats();
  EXPECT_EQ(stats.accepted, accepted.load());
  // The storm actually fired: load failures and fallbacks are visible.
  EXPECT_GT(stats.registry.load_failures, 0u);
  EXPECT_GT(stats.fallback_batches, 0u);
}

// Drain mid-storm: begin_drain + a tight budget while producers are still
// pushing and faults are still firing. The contract: zero orphaned
// promises — everything already admitted resolves Ok/expired/Draining, and
// post-drain submits are refused, not queued into the void.
TEST_F(ServeChaosTest, DrainMidStormLeavesZeroOrphanedPromises) {
  fault::arm("model_read", {fault::Mode::Error, /*after=*/2, /*times=*/2});
  fault::arm("serve_infer", {fault::Mode::Error, /*after=*/4, /*times=*/2});

  Service service(chaos_options());
  service.add_session("a", test_cloud(), save_model("a", 1));
  service.add_session("b", test_cloud(), save_model("b", 2));

  constexpr int kProducers = 4;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> rejected{0};
  std::vector<std::vector<std::future<PointResponse>>> futures(kProducers);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      auto& mine = futures[static_cast<std::size_t>(p)];
      for (int i = 0; !stop.load(std::memory_order_relaxed); ++i) {
        auto f = service.submit((p + i) % 2 == 0 ? "a" : "b",
                                {{1.0 + i * 0.01, 2.0, 1.0}});
        if (f) {
          accepted.fetch_add(1, std::memory_order_relaxed);
          mine.push_back(std::move(*f));
        } else if (service.draining()) {
          rejected.fetch_add(1, std::memory_order_relaxed);
          break;  // admission is closed for good
        }
      }
    });
  }

  std::this_thread::sleep_for(20ms);  // let the storm build a backlog
  const auto shed_before = vf::obs::counter("serve.drain.budget_shed").value();
  const bool in_budget = service.drain(50ms);
  stop.store(true);
  for (auto& t : producers) t.join();

  Outcome total;
  for (auto& mine : futures) {
    const Outcome o = harvest(mine);
    total.ok += o.ok;
    total.expired += o.expired;
    total.draining += o.draining;
    total.failed += o.failed;
  }
  // Every accepted request got its one terminal answer — none orphaned,
  // whether the drain made its budget or had to shed.
  EXPECT_EQ(total.total(), accepted.load());
  EXPECT_EQ(total.failed, 0u);
  if (!in_budget) {
    // A blown budget sheds whatever is *still queued* at the deadline as
    // Draining. That backlog can legitimately be empty — the workers may
    // hold the last batches past the deadline with nothing left behind
    // them — so tie the assertion to the shed counter, not the timeout.
    EXPECT_EQ(total.draining,
              static_cast<std::uint64_t>(
                  vf::obs::counter("serve.drain.budget_shed").value() -
                  shed_before));
  }
  EXPECT_EQ(service.queue_depth(), 0u);
  // A refused submit surfaces as a drain reject (draining check) or a shed
  // (queue already shut down when the producer raced past the check) —
  // either way it was counted, never silently dropped.
  const auto stats = service.stats();
  EXPECT_GE(stats.drain_rejects + stats.shed, rejected.load());
}

// Breaker lifecycle under chaos: a persistent load fault opens the
// breaker (visible in stats and snapshots, served classically meanwhile);
// once the fault clears, the half-open probe closes it and full-fidelity
// answers resume.
TEST_F(ServeChaosTest, BreakerOpensUnderFaultsAndRecoversWhenTheyClear) {
  fault::arm("model_read", {fault::Mode::Error, /*after=*/0, /*times=*/-1});

  // A wider backoff window than the soak default so the back-to-back
  // queries below reliably land inside it (fast-fail, not probe) even
  // under sanitizer slowdown.
  ServiceOptions opts = chaos_options();
  opts.registry.breaker_backoff = 100ms;
  opts.registry.breaker_backoff_max = 500ms;
  Service service(opts);
  service.add_session("a", test_cloud(), save_model("a", 1));

  // Enough sequential queries to blow through breaker_threshold=2: the
  // breaker opens and later batches fast-fail the resolve (no disk I/O)
  // while still serving classically.
  for (int i = 0; i < 6; ++i) {
    const auto resp = service.query("a", {{1.0, 2.0, 1.0}});
    EXPECT_EQ(resp.status, Status::Ok);
    EXPECT_EQ(resp.fallback, "classical");
  }
  auto stats = service.stats();
  EXPECT_GT(stats.registry.breaker_opens, 0u);
  EXPECT_GT(stats.registry.breaker_fast_fails, 0u);
  EXPECT_EQ(service.registry().breaker("a").state, BreakerState::Open);

  // The fault clears. After the (tiny) backoff the next resolve probes,
  // succeeds, and closes the breaker — full-fidelity serving resumes.
  fault::clear();
  const auto give_up = std::chrono::steady_clock::now() + 5s;
  bool recovered = false;
  while (std::chrono::steady_clock::now() < give_up) {
    const auto resp = service.query("a", {{1.0, 2.0, 1.0}});
    EXPECT_EQ(resp.status, Status::Ok);
    if (resp.fallback.empty()) {
      recovered = true;
      break;
    }
    std::this_thread::sleep_for(5ms);
  }
  EXPECT_TRUE(recovered) << "breaker never closed after the fault cleared";
  EXPECT_EQ(service.registry().breaker("a").state, BreakerState::Closed);
  EXPECT_EQ(service.stats().registry.open_breakers, 0u);
}

}  // namespace
