// Unit coverage for the in-situ pipeline's pure pieces: the
// SimulationDriver's emission contract (stride, exhaustion, mid-stream
// drift injection), the DriftMonitor's refinetune -> fallback -> recover
// ladder, and the sampling::make_sampler factory the pipeline and vfctl
// share.

#include <memory>
#include <stdexcept>

#include <gtest/gtest.h>

#include "vf/pipeline/drift.hpp"
#include "vf/pipeline/driver.hpp"
#include "vf/sampling/samplers.hpp"

namespace {

using vf::pipeline::DriftAction;
using vf::pipeline::DriftMonitor;
using vf::pipeline::DriftOptions;
using vf::pipeline::DriverOptions;
using vf::pipeline::SimulationDriver;

TEST(SimulationDriverTest, EmitsMaxStepsThenExhausts) {
  DriverOptions opt;
  opt.dataset = "ionization";
  opt.dims = {8, 8, 4};
  opt.t0 = 2.0;
  opt.stride = 0.5;
  opt.max_steps = 3;
  SimulationDriver driver(opt);

  auto s0 = driver.next();
  auto s1 = driver.next();
  auto s2 = driver.next();
  ASSERT_TRUE(s0 && s1 && s2);
  EXPECT_EQ(s0->index, 0);
  EXPECT_EQ(s2->index, 2);
  EXPECT_DOUBLE_EQ(s0->t, 2.0);
  EXPECT_DOUBLE_EQ(s1->t, 2.5);
  EXPECT_DOUBLE_EQ(s2->t, 3.0);
  EXPECT_EQ(s0->truth.grid().dims().nx, 8);
  EXPECT_EQ(driver.emitted(), 3);
  EXPECT_FALSE(driver.next().has_value());
  EXPECT_EQ(driver.emitted(), 3);
}

TEST(SimulationDriverTest, ZeroMaxStepsIsUnbounded) {
  DriverOptions opt;
  opt.dims = {4, 4, 2};
  opt.max_steps = 0;
  SimulationDriver driver(opt);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(driver.next().has_value());
  }
}

TEST(SimulationDriverTest, SetStrideOnlyChangesFutureAdvances) {
  DriverOptions opt;
  opt.dims = {4, 4, 2};
  opt.stride = 1.0;
  opt.max_steps = 4;
  SimulationDriver driver(opt);
  ASSERT_DOUBLE_EQ(driver.next()->t, 0.0);
  ASSERT_DOUBLE_EQ(driver.next()->t, 1.0);
  driver.set_stride(10.0);  // the injected-drift hook
  // The step after the change was already scheduled at the old stride; the
  // jump lands on the advance that follows it.
  EXPECT_DOUBLE_EQ(driver.next()->t, 2.0);
  EXPECT_DOUBLE_EQ(driver.next()->t, 12.0);
}

TEST(SimulationDriverTest, UnknownDatasetThrows) {
  DriverOptions opt;
  opt.dataset = "no-such-dataset";
  EXPECT_THROW(SimulationDriver{opt}, std::invalid_argument);
}

TEST(SimulationDriverTest, NullInjectedDatasetThrows) {
  EXPECT_THROW(SimulationDriver(nullptr, DriverOptions{}),
               std::invalid_argument);
}

TEST(SimulationDriverTest, TinyDimsThrow) {
  DriverOptions opt;
  opt.dims = {1, 4, 4};
  EXPECT_THROW(SimulationDriver{opt}, std::invalid_argument);
}

// ---------------------------------------------------------------------------
// DriftMonitor ladder.

TEST(DriftMonitorTest, DisabledFloorNeverActs) {
  DriftMonitor mon(DriftOptions{/*floor_snr_db=*/0.0, /*hysteresis_db=*/1.0});
  EXPECT_EQ(mon.observe(0, -50.0, -60.0), DriftAction::None);
  EXPECT_EQ(mon.observe(1, -80.0, -60.0), DriftAction::None);
  EXPECT_FALSE(mon.fallen_back());
  EXPECT_EQ(mon.refinetunes(), 0);
}

TEST(DriftMonitorTest, HealthyStepsPassThrough) {
  DriftMonitor mon(DriftOptions{/*floor_snr_db=*/10.0});
  EXPECT_EQ(mon.observe(0, 15.0, 5.0), DriftAction::None);
  EXPECT_EQ(mon.observe(1, 12.0, 5.0), DriftAction::None);
  EXPECT_DOUBLE_EQ(mon.last_model_snr_db(), 12.0);
  EXPECT_DOUBLE_EQ(mon.last_classical_snr_db(), 5.0);
}

TEST(DriftMonitorTest, RefinetuneThenFallbackOnSameStep) {
  DriftMonitor mon(DriftOptions{/*floor_snr_db=*/10.0});
  // First sub-floor score buys a re-finetune; the re-scored result for the
  // SAME step failing again is what degrades the pipeline to classical.
  EXPECT_EQ(mon.observe(3, 6.0, 4.0), DriftAction::Refinetune);
  EXPECT_FALSE(mon.fallen_back());
  EXPECT_EQ(mon.observe(3, 7.0, 4.0), DriftAction::Fallback);
  EXPECT_TRUE(mon.fallen_back());
  EXPECT_EQ(mon.refinetunes(), 1);
  EXPECT_EQ(mon.fallbacks(), 1);
}

TEST(DriftMonitorTest, RefinetuneThatClearsTheFloorStaysOnModel) {
  DriftMonitor mon(DriftOptions{/*floor_snr_db=*/10.0});
  EXPECT_EQ(mon.observe(2, 8.0, 4.0), DriftAction::Refinetune);
  // The extra epochs rescued the step: no fallback.
  EXPECT_EQ(mon.observe(2, 11.0, 4.0), DriftAction::None);
  EXPECT_FALSE(mon.fallen_back());
}

TEST(DriftMonitorTest, RecoveryNeedsHysteresisMargin) {
  DriftMonitor mon(DriftOptions{/*floor_snr_db=*/10.0,
                                /*hysteresis_db=*/2.0});
  EXPECT_EQ(mon.observe(1, 5.0, 4.0), DriftAction::Refinetune);
  EXPECT_EQ(mon.observe(1, 5.5, 4.0), DriftAction::Fallback);
  // Above the floor but inside the hysteresis band: stay classical so an
  // SNR oscillating around the floor doesn't flap the served session.
  EXPECT_EQ(mon.observe(2, 11.0, 4.0), DriftAction::None);
  EXPECT_TRUE(mon.fallen_back());
  EXPECT_EQ(mon.observe(3, 12.5, 4.0), DriftAction::Recover);
  EXPECT_FALSE(mon.fallen_back());
  EXPECT_EQ(mon.recoveries(), 1);
}

TEST(DriftMonitorTest, FallenBackStepsBelowFloorStayQuiet) {
  DriftMonitor mon(DriftOptions{/*floor_snr_db=*/10.0});
  EXPECT_EQ(mon.observe(1, 5.0, 4.0), DriftAction::Refinetune);
  EXPECT_EQ(mon.observe(1, 5.0, 4.0), DriftAction::Fallback);
  // Already classical: further bad steps neither refinetune nor re-fallback.
  EXPECT_EQ(mon.observe(2, 4.0, 4.0), DriftAction::None);
  EXPECT_EQ(mon.observe(3, 3.0, 4.0), DriftAction::None);
  EXPECT_EQ(mon.fallbacks(), 1);
  EXPECT_EQ(mon.refinetunes(), 1);
}

TEST(DriftMonitorTest, RuntimeFloorOverride) {
  DriftMonitor mon(DriftOptions{/*floor_snr_db=*/0.0});
  EXPECT_EQ(mon.observe(0, 15.0, 5.0), DriftAction::None);
  mon.set_floor_snr_db(20.0);
  EXPECT_DOUBLE_EQ(mon.floor_snr_db(), 20.0);
  EXPECT_EQ(mon.observe(1, 15.0, 5.0), DriftAction::Refinetune);
}

TEST(DriftMonitorTest, ActionNames) {
  EXPECT_STREQ(vf::pipeline::drift_action_name(DriftAction::None), "none");
  EXPECT_STREQ(vf::pipeline::drift_action_name(DriftAction::Refinetune),
               "refinetune");
  EXPECT_STREQ(vf::pipeline::drift_action_name(DriftAction::Fallback),
               "fallback");
  EXPECT_STREQ(vf::pipeline::drift_action_name(DriftAction::Recover),
               "recover");
}

// ---------------------------------------------------------------------------
// Sampler factory.

TEST(SamplerFactoryTest, ResolvesTheStatelessSamplers) {
  for (const char* name : {"importance", "random", "stratified"}) {
    auto sampler = vf::sampling::make_sampler(name);
    ASSERT_NE(sampler, nullptr) << name;
  }
}

TEST(SamplerFactoryTest, UnknownNameThrows) {
  EXPECT_THROW((void)vf::sampling::make_sampler("temporal_delta"),
               std::invalid_argument);
  EXPECT_THROW((void)vf::sampling::make_sampler(""), std::invalid_argument);
}

}  // namespace
