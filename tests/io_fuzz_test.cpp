// Corruption fuzzing for the crash-safe binary formats.
//
// The v2 formats (VFNN networks, VFB fields, VFMD models) frame every
// variable-length payload with a size + CRC32, so the contract under test is
// absolute: a file truncated at ANY byte, carrying ANY single-bit flip, or
// followed by ANY trailing garbage must be rejected with std::runtime_error
// — never undefined behaviour, never a silently corrupt object. The sweeps
// below are exhaustive (every truncation length, every bit of every byte),
// which the suite can afford because the fixtures are tiny; the suite runs
// under ASan/UBSan via the `sanitize` label, so an out-of-bounds parse of a
// corrupt header would be caught even if it failed to throw.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>
#include <unistd.h>

#include "vf/core/model.hpp"
#include "vf/field/native_io.hpp"
#include "vf/nn/serialize.hpp"
#include "vf/util/atomic_io.hpp"

namespace {

namespace fs = std::filesystem;

class IoFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("vf_fuzz_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  fs::path dir_;
};

std::string slurp(const std::string& p) {
  std::ifstream in(p, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void spew(const std::string& p, const std::string& bytes) {
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Assert that `load(path)` throws std::runtime_error for the truncation of
/// `blob` to every length, for every single-bit flip, and for appended
/// trailing garbage.
template <typename LoadFn>
void fuzz_blob(const std::string& blob, const std::string& p,
               const LoadFn& load) {
  // Sanity: the pristine bytes load.
  spew(p, blob);
  EXPECT_NO_THROW(load(p));

  for (std::size_t len = 0; len < blob.size(); ++len) {
    spew(p, blob.substr(0, len));
    EXPECT_THROW(load(p), std::runtime_error) << "truncated to " << len
                                              << " of " << blob.size();
  }

  for (std::size_t byte = 0; byte < blob.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string bad = blob;
      bad[byte] = static_cast<char>(bad[byte] ^ (1 << bit));
      spew(p, bad);
      EXPECT_THROW(load(p), std::runtime_error)
          << "flip at byte " << byte << " bit " << bit;
    }
  }

  spew(p, blob + '\0');
  EXPECT_THROW(load(p), std::runtime_error) << "one trailing byte";
  spew(p, blob + "trailing garbage");
  EXPECT_THROW(load(p), std::runtime_error) << "trailing garbage";

  // Leave the pristine file behind for any follow-up assertions.
  spew(p, blob);
}

vf::field::ScalarField small_field() {
  vf::field::UniformGrid3 grid({5, 4, 3}, {0, 0, 0}, {0.5, 0.5, 0.5});
  vf::field::ScalarField f(grid, "fuzz");
  for (std::int64_t i = 0; i < f.size(); ++i) {
    f[i] = 0.25 * static_cast<double>(i) - 7.0;
  }
  return f;
}

// ---- VFNN (network) -------------------------------------------------------

TEST_F(IoFuzzTest, NetworkFileRejectsAllCorruption) {
  const auto net = vf::nn::Network::mlp(4, {6, 5}, 2, /*seed=*/7);
  const auto p = path("net.vfnn");
  vf::nn::save_network(net, p);
  fuzz_blob(slurp(p), path("net_fuzz.vfnn"),
            [](const std::string& f) { (void)vf::nn::load_network(f); });
}

TEST_F(IoFuzzTest, DenseTailFileRejectsAllCorruption) {
  const auto net = vf::nn::Network::mlp(4, {6, 5}, 2, /*seed=*/7);
  const auto p = path("tail.vfnt");
  vf::nn::save_dense_tail(net, 2, p);
  auto target = vf::nn::Network::mlp(4, {6, 5}, 2, /*seed=*/8);
  fuzz_blob(slurp(p), path("tail_fuzz.vfnt"), [&](const std::string& f) {
    vf::nn::load_dense_tail(target, 2, f);
  });
}

TEST_F(IoFuzzTest, MissingNetworkFileThrows) {
  EXPECT_THROW((void)vf::nn::load_network(path("does_not_exist.vfnn")),
               std::runtime_error);
}

// ---- VFB (native field) ---------------------------------------------------

TEST_F(IoFuzzTest, NativeFieldRejectsAllCorruption) {
  const auto f = small_field();
  const auto p = path("field.vfb");
  vf::field::write_native(f, p);
  fuzz_blob(slurp(p), path("field_fuzz.vfb"),
            [](const std::string& q) { (void)vf::field::read_native(q); });

  // The pristine file round-trips bit-exactly.
  const auto back = vf::field::read_native(path("field_fuzz.vfb"));
  ASSERT_EQ(back.size(), f.size());
  for (std::int64_t i = 0; i < f.size(); ++i) EXPECT_EQ(back[i], f[i]);
}

TEST_F(IoFuzzTest, LegacyNativeHeaderIsBoundCheckedBeforeAllocation) {
  // Hand-craft a legacy VFB1 file whose header claims a petabyte-scale grid.
  // read_native must reject it against the actual file size instead of
  // attempting the allocation.
  vf::util::ByteWriter w;
  w.bytes("VFB1", 4);
  w.pod(std::int32_t{1000000});
  w.pod(std::int32_t{1000000});
  w.pod(std::int32_t{1000});
  for (int i = 0; i < 6; ++i) w.pod(0.0);  // origin + spacing
  w.str("huge");
  w.bytes("\0\0\0\0\0\0\0\0", 8);  // one lonely value
  const auto p = path("huge.vfb");
  spew(p, w.data());
  EXPECT_THROW((void)vf::field::read_native(p), std::runtime_error);
}

TEST_F(IoFuzzTest, LegacyNativeFileStillLoads) {
  // A well-formed legacy VFB1 file remains readable, and must be consumed
  // exactly: a trailing byte is rejected.
  const auto f = small_field();
  vf::util::ByteWriter w;
  w.bytes("VFB1", 4);
  w.pod(static_cast<std::int32_t>(f.grid().dims().nx));
  w.pod(static_cast<std::int32_t>(f.grid().dims().ny));
  w.pod(static_cast<std::int32_t>(f.grid().dims().nz));
  w.pod(f.grid().origin().x);
  w.pod(f.grid().origin().y);
  w.pod(f.grid().origin().z);
  w.pod(f.grid().spacing().x);
  w.pod(f.grid().spacing().y);
  w.pod(f.grid().spacing().z);
  w.str(f.name());
  w.bytes(f.values().data(),
          static_cast<std::size_t>(f.size()) * sizeof(double));

  const auto p = path("legacy.vfb");
  spew(p, w.data());
  const auto back = vf::field::read_native(p);
  ASSERT_EQ(back.size(), f.size());
  EXPECT_EQ(back.name(), f.name());
  for (std::int64_t i = 0; i < f.size(); ++i) EXPECT_EQ(back[i], f[i]);

  spew(p, w.data() + '\0');
  EXPECT_THROW((void)vf::field::read_native(p), std::runtime_error);
}

// ---- VFMD (full model) ----------------------------------------------------

TEST_F(IoFuzzTest, ModelFileRejectsEveryTruncationAndTrailingGarbage) {
  vf::core::FcnnModel model;
  model.net = vf::nn::Network::mlp(23, {8}, 4, /*seed=*/3);
  model.in_norm.mean.assign(23, 0.5);
  model.in_norm.stddev.assign(23, 2.0);
  model.out_norm.mean.assign(4, -1.0);
  model.out_norm.stddev.assign(4, 3.0);
  model.with_gradients = true;
  model.dataset = "fuzz";
  model.trained_timestep = 1.5;

  const auto p = path("model.vfmd");
  model.save(p);
  const std::string blob = slurp(p);
  const auto q = path("model_fuzz.vfmd");

  spew(q, blob);
  EXPECT_NO_THROW((void)vf::core::FcnnModel::load(q));

  for (std::size_t len = 0; len < blob.size(); ++len) {
    spew(q, blob.substr(0, len));
    EXPECT_THROW((void)vf::core::FcnnModel::load(q), std::runtime_error)
        << "truncated to " << len << " of " << blob.size();
  }

  spew(q, blob + "x");
  EXPECT_THROW((void)vf::core::FcnnModel::load(q), std::runtime_error);
}

}  // namespace
