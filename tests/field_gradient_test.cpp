// Tests for finite-difference gradients (training targets for the FCNN).

#include <gtest/gtest.h>

#include <cmath>

#include "vf/field/gradient.hpp"

namespace {

using vf::field::compute_gradient;
using vf::field::gradient_at;
using vf::field::ScalarField;
using vf::field::UniformGrid3;
using vf::field::Vec3;

TEST(Gradient, LinearFieldExactEverywhere) {
  // Central AND one-sided differences are exact for affine fields, so the
  // boundary stencils must also be exact here.
  ScalarField f(UniformGrid3({9, 7, 5}, {0, 0, 0}, {0.5, 0.25, 2.0}));
  f.fill([](const Vec3& p) { return 3 * p.x - 2 * p.y + 7 * p.z + 1; });
  auto g = compute_gradient(f);
  for (std::int64_t i = 0; i < f.size(); ++i) {
    ASSERT_NEAR(g.dx[i], 3.0, 1e-10);
    ASSERT_NEAR(g.dy[i], -2.0, 1e-10);
    ASSERT_NEAR(g.dz[i], 7.0, 1e-10);
  }
}

TEST(Gradient, QuadraticExactInInterior) {
  // Central differences are exact for quadratics in the interior.
  ScalarField f(UniformGrid3({9, 9, 9}, {0, 0, 0}, {1, 1, 1}));
  f.fill([](const Vec3& p) { return p.x * p.x + 2 * p.y * p.y - p.z * p.z; });
  auto g = compute_gradient(f);
  const auto& grid = f.grid();
  for (int k = 1; k < 8; ++k) {
    for (int j = 1; j < 8; ++j) {
      for (int i = 1; i < 8; ++i) {
        std::int64_t idx = grid.index(i, j, k);
        ASSERT_NEAR(g.dx[idx], 2.0 * i, 1e-10);
        ASSERT_NEAR(g.dy[idx], 4.0 * j, 1e-10);
        ASSERT_NEAR(g.dz[idx], -2.0 * k, 1e-10);
      }
    }
  }
}

TEST(Gradient, SpacingAware) {
  // Same values, doubled spacing -> halved gradients.
  auto make = [](double h) {
    ScalarField f(UniformGrid3({6, 6, 6}, {0, 0, 0}, {h, h, h}));
    f.fill([](const Vec3& p) { return p.x; });
    return f;
  };
  auto g1 = compute_gradient(make(1.0));
  auto g2 = compute_gradient(make(2.0));
  EXPECT_NEAR(g1.dx[10], 1.0, 1e-12);
  EXPECT_NEAR(g2.dx[10], 1.0, 1e-12);  // physical derivative unchanged
}

TEST(Gradient, SmoothFieldConvergence) {
  // Halving h should shrink interior central-difference error ~4x.
  auto err_for = [](int n) {
    double h = 2.0 * M_PI / (n - 1);
    ScalarField f(UniformGrid3({n, 3, 3}, {0, 0, 0}, {h, 1, 1}));
    f.fill([](const Vec3& p) { return std::sin(p.x); });
    auto g = compute_gradient(f);
    double worst = 0.0;
    for (int i = 1; i < n - 1; ++i) {
      double x = i * h;
      worst = std::max(worst,
                       std::abs(g.dx[f.grid().index(i, 1, 1)] - std::cos(x)));
    }
    return worst;
  };
  double e1 = err_for(33);
  double e2 = err_for(65);
  EXPECT_LT(e2, e1 / 3.0);
}

TEST(Gradient, SingleLayerAxisIsZero) {
  // nz == 1: no z-neighbours exist, derivative must be reported as 0.
  ScalarField f(UniformGrid3({5, 5, 1}, {0, 0, 0}, {1, 1, 1}));
  f.fill([](const Vec3& p) { return p.x + p.y; });
  auto g = compute_gradient(f);
  for (std::int64_t i = 0; i < f.size(); ++i) {
    ASSERT_EQ(g.dz[i], 0.0);
  }
}

TEST(Gradient, PointwiseMatchesFieldwise) {
  ScalarField f(UniformGrid3({7, 6, 5}, {0, 0, 0}, {1, 1.5, 0.5}));
  f.fill([](const Vec3& p) { return std::cos(p.x) * p.y + p.z * p.z; });
  auto g = compute_gradient(f);
  const auto& grid = f.grid();
  for (int k = 0; k < 5; ++k) {
    for (int j = 0; j < 6; ++j) {
      for (int i = 0; i < 7; ++i) {
        auto pg = gradient_at(f, i, j, k);
        std::int64_t idx = grid.index(i, j, k);
        ASSERT_DOUBLE_EQ(pg[0], g.dx[idx]);
        ASSERT_DOUBLE_EQ(pg[1], g.dy[idx]);
        ASSERT_DOUBLE_EQ(pg[2], g.dz[idx]);
      }
    }
  }
}

TEST(Gradient, OutputFieldsNamed) {
  ScalarField f(UniformGrid3({3, 3, 3}, {0, 0, 0}, {1, 1, 1}), "p");
  auto g = compute_gradient(f);
  EXPECT_EQ(g.dx.name(), "p_dx");
  EXPECT_EQ(g.dy.name(), "p_dy");
  EXPECT_EQ(g.dz.name(), "p_dz");
}

}  // namespace
