// VFW1 binary wire codec: request/response round-trips across every verb,
// codec negotiation (sniff_codec), and the framing fuzz suite — every
// truncation prefix, single-bit flips over the whole frame, oversize
// length fields, bad magic, CRC damage, and well-framed-but-invalid
// payloads (Bad keeps the connection; Corrupt drops it). Runs in the
// faults lane because a hostile byte stream is an injected fault.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "vf/serve/wire.hpp"
#include "vf/util/atomic_io.hpp"

namespace {

namespace wire = vf::serve::wire;
using vf::serve::Status;
using wire::CodecKind;
using wire::FrameStatus;
using wire::Verb;

wire::Request query_request() {
  wire::Request req;
  req.id = 42;
  req.key = "t7";
  req.points = {{0.1, 0.2, 0.3}, {1.5, -2.5, 3.25}, {-0.75, 0.0, 9.5}};
  req.deadline_ms = 250.0;
  return req;
}

/// Re-stamp the trailing CRC so a deliberately mutated payload stays
/// well-framed (tests the semantic layer, not the checksum).
void fix_crc(std::string& frame) {
  ASSERT_GE(frame.size(), 12u);
  const std::uint32_t crc =
      vf::util::crc32(frame.data() + 8, frame.size() - 12);
  std::memcpy(frame.data() + frame.size() - 4, &crc, 4);
}

// --- round-trips ------------------------------------------------------------

TEST(BinaryWire, QueryRequestRoundTripsExactly) {
  const wire::Request req = query_request();
  const std::string frame = wire::encode_request_frame(req);

  wire::Request out;
  std::string error;
  std::size_t consumed = 0;
  ASSERT_EQ(wire::decode_request_frame(frame, consumed, out, error),
            FrameStatus::Ok)
      << error;
  EXPECT_EQ(consumed, frame.size());
  EXPECT_EQ(out.id, req.id);
  EXPECT_EQ(out.key, req.key);
  EXPECT_EQ(out.cmd, req.cmd);
  EXPECT_EQ(out.deadline_ms, req.deadline_ms);
  ASSERT_EQ(out.points.size(), req.points.size());
  for (std::size_t i = 0; i < req.points.size(); ++i) {
    EXPECT_EQ(out.points[i].x, req.points[i].x);
    EXPECT_EQ(out.points[i].y, req.points[i].y);
    EXPECT_EQ(out.points[i].z, req.points[i].z);
  }
}

TEST(BinaryWire, ControlVerbsRoundTrip) {
  for (const char* cmd : {"stats", "health", "ready", "shutdown"}) {
    wire::Request req;
    req.id = 9;
    req.cmd = cmd;
    const std::string frame = wire::encode_request_frame(req);
    wire::Request out;
    std::string error;
    std::size_t consumed = 0;
    ASSERT_EQ(wire::decode_request_frame(frame, consumed, out, error),
              FrameStatus::Ok)
        << cmd << ": " << error;
    EXPECT_EQ(out.cmd, cmd);
    EXPECT_EQ(out.id, 9);
    EXPECT_TRUE(out.points.empty());
  }
}

TEST(BinaryWire, UnmappedCmdThrowsAtEncodeTime) {
  wire::Request req;
  req.cmd = "frobnicate";
  EXPECT_THROW((void)wire::encode_request_frame(req), std::invalid_argument);
}

TEST(BinaryWire, QueryResponseRoundTripsValuesAndFlags) {
  wire::Response resp;
  resp.id = 42;
  resp.verb = Verb::Query;
  resp.status = Status::Ok;
  resp.values = {1014.25, -3.5, 0.0};
  resp.degraded = 1;
  resp.batch_points = 128;
  resp.fallback_classical = true;

  const std::string frame = wire::encode_response_frame(resp);
  wire::Response out;
  std::string error;
  std::size_t consumed = 0;
  ASSERT_EQ(wire::decode_response_frame(frame, consumed, out, error),
            FrameStatus::Ok)
      << error;
  EXPECT_EQ(consumed, frame.size());
  EXPECT_EQ(out.id, resp.id);
  EXPECT_EQ(out.verb, resp.verb);
  EXPECT_EQ(out.status, resp.status);
  EXPECT_EQ(out.values, resp.values);
  EXPECT_EQ(out.degraded, resp.degraded);
  EXPECT_EQ(out.batch_points, resp.batch_points);
  EXPECT_TRUE(out.fallback_classical);
}

TEST(BinaryWire, StatusAndJsonBodyResponsesRoundTrip) {
  wire::Response resp =
      wire::make_status_response(7, Verb::Ready, Status::Draining, "bye");
  resp.json_body = "{\"id\": 7, \"ready\": false}";
  const std::string frame = wire::encode_response_frame(resp);
  wire::Response out;
  std::string error;
  std::size_t consumed = 0;
  ASSERT_EQ(wire::decode_response_frame(frame, consumed, out, error),
            FrameStatus::Ok)
      << error;
  EXPECT_EQ(out.status, Status::Draining);
  EXPECT_EQ(out.message, "bye");
  EXPECT_EQ(out.json_body, resp.json_body);
}

TEST(BinaryWire, BackToBackFramesDecodeSequentially) {
  const std::string a = wire::encode_request_frame(query_request());
  wire::Request ping;
  ping.id = 2;
  ping.cmd = "health";
  const std::string b = wire::encode_request_frame(ping);
  std::string buf = a + b;

  wire::Request out;
  std::string error;
  std::size_t consumed = 0;
  ASSERT_EQ(wire::decode_request_frame(buf, consumed, out, error),
            FrameStatus::Ok);
  EXPECT_EQ(consumed, a.size());
  EXPECT_EQ(out.id, 42);
  buf.erase(0, consumed);
  ASSERT_EQ(wire::decode_request_frame(buf, consumed, out, error),
            FrameStatus::Ok);
  EXPECT_EQ(consumed, b.size());
  EXPECT_EQ(out.cmd, "health");
}

// --- negotiation ------------------------------------------------------------

TEST(BinaryWire, SniffNegotiatesPerFirstBytes) {
  EXPECT_EQ(wire::sniff_codec(""), CodecKind::Unknown);
  EXPECT_EQ(wire::sniff_codec("V"), CodecKind::Unknown);
  EXPECT_EQ(wire::sniff_codec("VF"), CodecKind::Unknown);
  EXPECT_EQ(wire::sniff_codec("VFW"), CodecKind::Unknown);
  EXPECT_EQ(wire::sniff_codec("VFW1"), CodecKind::Binary);
  EXPECT_EQ(wire::sniff_codec("VFW1\x10\x00"), CodecKind::Binary);
  EXPECT_EQ(wire::sniff_codec("{\"id\": 1}"), CodecKind::Ndjson);
  EXPECT_EQ(wire::sniff_codec("VX"), CodecKind::Ndjson);
  EXPECT_EQ(wire::sniff_codec("VFWx"), CodecKind::Ndjson);
}

// --- framing fuzz -----------------------------------------------------------

TEST(BinaryWireFuzz, EveryTruncationPrefixAsksForMoreBytes) {
  const std::string frame = wire::encode_request_frame(query_request());
  for (std::size_t len = 0; len < frame.size(); ++len) {
    wire::Request out;
    std::string error;
    std::size_t consumed = 0;
    const auto st = wire::decode_request_frame(
        std::string_view(frame.data(), len), consumed, out, error);
    EXPECT_EQ(st, FrameStatus::NeedMore) << "prefix length " << len;
    EXPECT_EQ(consumed, 0u) << "prefix length " << len;
  }
}

TEST(BinaryWireFuzz, SingleBitFlipsNeverDecodeAsAValidFrame) {
  const std::string frame = wire::encode_request_frame(query_request());
  for (std::size_t byte = 0; byte < frame.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = frame;
      mutated[byte] = static_cast<char>(
          static_cast<unsigned char>(mutated[byte]) ^ (1u << bit));
      wire::Request out;
      std::string error;
      std::size_t consumed = 0;
      const auto st =
          wire::decode_request_frame(mutated, consumed, out, error);
      // A flipped frame may look incomplete (length grew) or corrupt
      // (magic/CRC damage) — it must never decode as Ok, and only a
      // CRC-valid reinterpretation could even reach Bad (the CRC spans
      // the whole payload, so a payload/CRC flip cannot).
      EXPECT_NE(st, FrameStatus::Ok) << "byte " << byte << " bit " << bit;
      if (st == FrameStatus::Corrupt || st == FrameStatus::NeedMore) {
        EXPECT_EQ(consumed, 0u);
      }
    }
  }
}

TEST(BinaryWireFuzz, BadMagicIsConnectionFatal) {
  std::string frame = wire::encode_request_frame(query_request());
  frame[0] = 'X';
  wire::Request out;
  std::string error;
  std::size_t consumed = 0;
  EXPECT_EQ(wire::decode_request_frame(frame, consumed, out, error),
            FrameStatus::Corrupt);
  EXPECT_EQ(consumed, 0u);
  EXPECT_FALSE(error.empty());
}

TEST(BinaryWireFuzz, OversizeLengthFieldIsRejectedBeforeAllocation) {
  std::string frame = wire::encode_request_frame(query_request());
  const std::uint32_t huge = 1u << 30;  // > kBinaryMaxPayload
  std::memcpy(frame.data() + 4, &huge, 4);
  wire::Request out;
  std::string error;
  std::size_t consumed = 0;
  EXPECT_EQ(wire::decode_request_frame(frame, consumed, out, error),
            FrameStatus::Corrupt);
  EXPECT_EQ(consumed, 0u);
}

TEST(BinaryWireFuzz, CrcDamageIsConnectionFatal) {
  std::string frame = wire::encode_request_frame(query_request());
  frame[frame.size() - 1] = static_cast<char>(
      static_cast<unsigned char>(frame[frame.size() - 1]) ^ 0xFF);
  wire::Request out;
  std::string error;
  std::size_t consumed = 0;
  EXPECT_EQ(wire::decode_request_frame(frame, consumed, out, error),
            FrameStatus::Corrupt);
}

TEST(BinaryWireFuzz, UnknownVerbIsBadButKeepsTheConnection) {
  std::string frame = wire::encode_request_frame(query_request());
  frame[8] = static_cast<char>(0x7F);  // verb byte, no such enumerator
  fix_crc(frame);
  wire::Request out;
  std::string error;
  std::size_t consumed = 0;
  EXPECT_EQ(wire::decode_request_frame(frame, consumed, out, error),
            FrameStatus::Bad);
  // Bad consumes the frame (the stream stays parseable) and keeps the id
  // so the bad_request answer can be correlated.
  EXPECT_EQ(consumed, frame.size());
  EXPECT_EQ(out.id, 42);
  EXPECT_FALSE(error.empty());
}

TEST(BinaryWireFuzz, EmptyQueryIsBadNotCorrupt) {
  wire::Request req;
  req.id = 5;  // a query with zero points is well-framed but unserviceable
  const std::string frame = wire::encode_request_frame(req);
  wire::Request out;
  std::string error;
  std::size_t consumed = 0;
  EXPECT_EQ(wire::decode_request_frame(frame, consumed, out, error),
            FrameStatus::Bad);
  EXPECT_EQ(consumed, frame.size());
  EXPECT_EQ(out.id, 5);
}

TEST(BinaryWireFuzz, MixedCodecBufferDecodesFramesThenGoesCorruptOnJson) {
  // A binary client must not survive an ndjson line spliced into its
  // stream: the frame decoder sees bad magic and reports Corrupt.
  const std::string frame = wire::encode_request_frame(query_request());
  std::string buf = frame + "{\"id\": 1, \"cmd\": \"stats\"}\n";
  wire::Request out;
  std::string error;
  std::size_t consumed = 0;
  ASSERT_EQ(wire::decode_request_frame(buf, consumed, out, error),
            FrameStatus::Ok);
  buf.erase(0, consumed);
  EXPECT_EQ(wire::decode_request_frame(buf, consumed, out, error),
            FrameStatus::Corrupt);
}

TEST(BinaryWireFuzz, ResponseDecoderRejectsUnknownStatusByte) {
  wire::Response resp = wire::make_status_response(3, Verb::Query, Status::Ok);
  std::string frame = wire::encode_response_frame(resp);
  frame[9] = static_cast<char>(0x70);  // status byte past every enumerator
  // Re-stamp the CRC: the damage is semantic, not framing.
  const std::uint32_t crc =
      vf::util::crc32(frame.data() + 8, frame.size() - 12);
  std::memcpy(frame.data() + frame.size() - 4, &crc, 4);
  wire::Response out;
  std::string error;
  std::size_t consumed = 0;
  EXPECT_EQ(wire::decode_response_frame(frame, consumed, out, error),
            FrameStatus::Corrupt);
}

}  // namespace
