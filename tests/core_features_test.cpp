// Tests for the FCNN feature engineering (23-dim vectors, normalisation,
// training targets).

#include <gtest/gtest.h>

#include <cmath>

#include "vf/core/features.hpp"
#include "vf/field/gradient.hpp"
#include "vf/spatial/brute_force.hpp"
#include "vf/util/rng.hpp"

namespace {

using namespace vf::core;
using vf::field::ScalarField;
using vf::field::UniformGrid3;
using vf::field::Vec3;
using vf::nn::Matrix;
using vf::sampling::SampleCloud;

ScalarField test_field() {
  ScalarField f(UniformGrid3({14, 12, 8}, {0, 0, 0}, {1, 1, 1}), "t");
  f.fill([](const Vec3& p) {
    return std::sin(0.4 * p.x) + 0.3 * p.y * p.y - 0.2 * p.z;
  });
  return f;
}

Matrix features_at(const SampleCloud& cloud, const std::vector<Vec3>& points) {
  FeatureRequest req;
  req.cloud = &cloud;
  req.points = &points;
  return extract_features(req);
}

Matrix features_on_grid(const SampleCloud& cloud, const UniformGrid3& grid,
                        const std::vector<std::int64_t>& idx) {
  FeatureRequest req;
  req.cloud = &cloud;
  req.grid = &grid;
  req.indices = &idx;
  return extract_features(req);
}

TEST(Constants, MatchPaperLayout) {
  EXPECT_EQ(kNeighbors, 5);
  EXPECT_EQ(kFeatureDim, 23);
  EXPECT_EQ(kTargetDimGrad, 4);
  EXPECT_EQ(kTargetDimScalar, 1);
}

TEST(Features, LayoutHoldsFiveNearestThenQuery) {
  auto f = test_field();
  // A small deterministic cloud.
  std::vector<std::int64_t> kept;
  for (std::int64_t i = 0; i < f.size(); i += 17) kept.push_back(i);
  SampleCloud cloud(f, kept);

  std::vector<Vec3> queries = {{3.3, 4.4, 2.2}, {10.0, 2.0, 6.0}};
  Matrix X = features_at(cloud, queries);
  ASSERT_EQ(X.rows(), 2u);
  ASSERT_EQ(X.cols(), 23u);

  for (std::size_t q = 0; q < queries.size(); ++q) {
    auto want = vf::spatial::brute_force_knn(cloud.points(), queries[q], 5);
    const double* row = X.row(q);
    for (int j = 0; j < 5; ++j) {
      // Neighbour j occupies columns 4j..4j+3 as (x, y, z, value); distance
      // order must match brute force (ties may resolve to a different but
      // equidistant sample).
      Vec3 p{row[4 * j], row[4 * j + 1], row[4 * j + 2]};
      double d2 = (p - queries[q]).norm2();
      ASSERT_DOUBLE_EQ(d2, want[static_cast<std::size_t>(j)].dist2);
      // The stored (position, value) pair must correspond to a real sample.
      bool found = false;
      for (std::size_t s = 0; s < cloud.size(); ++s) {
        if (cloud.points()[s] == p && cloud.values()[s] == row[4 * j + 3]) {
          found = true;
          break;
        }
      }
      ASSERT_TRUE(found) << "neighbour " << j << " not a sample";
    }
    // Final three columns: the query position itself.
    ASSERT_DOUBLE_EQ(row[20], queries[q].x);
    ASSERT_DOUBLE_EQ(row[21], queries[q].y);
    ASSERT_DOUBLE_EQ(row[22], queries[q].z);
  }
}

TEST(Features, IndexOverloadMatchesPositions) {
  auto f = test_field();
  std::vector<std::int64_t> kept;
  for (std::int64_t i = 0; i < f.size(); i += 11) kept.push_back(i);
  SampleCloud cloud(f, kept);

  std::vector<std::int64_t> idx = {5, 100, 777};
  Matrix a = features_on_grid(cloud, f.grid(), idx);
  std::vector<Vec3> pos;
  for (auto i : idx) pos.push_back(f.grid().position(i));
  Matrix b = features_at(cloud, pos);
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.data()[i], b.data()[i]);
  }
}

TEST(Features, TooSmallCloudThrows) {
  auto f = test_field();
  SampleCloud cloud(f, {0, 1, 2});  // 3 < kNeighbors
  EXPECT_THROW(features_at(cloud, {{1, 1, 1}}), std::invalid_argument);
}

TEST(Features, RequestValidatesSourceAndQueryShape) {
  auto f = test_field();
  std::vector<std::int64_t> kept;
  for (std::int64_t i = 0; i < f.size(); i += 11) kept.push_back(i);
  SampleCloud cloud(f, kept);
  std::vector<Vec3> pts = {{1, 1, 1}};
  std::vector<std::int64_t> idx = {5};

  FeatureRequest no_source;
  no_source.points = &pts;
  EXPECT_THROW(extract_features(no_source), std::invalid_argument);

  FeatureRequest no_query;
  no_query.cloud = &cloud;
  EXPECT_THROW(extract_features(no_query), std::invalid_argument);

  FeatureRequest both_queries;
  both_queries.cloud = &cloud;
  both_queries.points = &pts;
  both_queries.grid = &f.grid();
  both_queries.indices = &idx;
  EXPECT_THROW(extract_features(both_queries), std::invalid_argument);
}

// The pre-FeatureRequest overloads are deprecated but must keep working for
// one release; pin them to the new entry point bit-for-bit.
TEST(Features, DeprecatedOverloadsMatchFeatureRequest) {
  auto f = test_field();
  std::vector<std::int64_t> kept;
  for (std::int64_t i = 0; i < f.size(); i += 13) kept.push_back(i);
  SampleCloud cloud(f, kept);
  std::vector<Vec3> pts = {{2.5, 3.5, 1.5}, {9.0, 4.0, 5.0}};
  std::vector<std::int64_t> idx = {4, 321, 650};

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  Matrix old_pts = extract_features(cloud, pts);
  Matrix old_idx = extract_features(cloud, f.grid(), idx);
#pragma GCC diagnostic pop

  Matrix new_pts = features_at(cloud, pts);
  Matrix new_idx = features_on_grid(cloud, f.grid(), idx);
  ASSERT_EQ(old_pts.size(), new_pts.size());
  for (std::size_t i = 0; i < old_pts.size(); ++i) {
    ASSERT_EQ(old_pts.data()[i], new_pts.data()[i]);
  }
  ASSERT_EQ(old_idx.size(), new_idx.size());
  for (std::size_t i = 0; i < old_idx.size(); ++i) {
    ASSERT_EQ(old_idx.data()[i], new_idx.data()[i]);
  }
}

TEST(Targets, ScalarOnly) {
  auto f = test_field();
  std::vector<std::int64_t> idx = {0, 7, 42};
  Matrix Y = extract_targets(f, idx, /*with_gradients=*/false);
  ASSERT_EQ(Y.rows(), 3u);
  ASSERT_EQ(Y.cols(), 1u);
  for (std::size_t i = 0; i < idx.size(); ++i) {
    ASSERT_DOUBLE_EQ(Y(i, 0), f[idx[i]]);
  }
}

TEST(Targets, WithGradientsMatchesFiniteDifferences) {
  auto f = test_field();
  std::vector<std::int64_t> idx = {100, 500, 900};
  Matrix Y = extract_targets(f, idx, /*with_gradients=*/true);
  ASSERT_EQ(Y.cols(), 4u);
  for (std::size_t i = 0; i < idx.size(); ++i) {
    auto [gi, gj, gk] = f.grid().ijk(idx[i]);
    auto g = vf::field::gradient_at(f, gi, gj, gk);
    ASSERT_DOUBLE_EQ(Y(i, 0), f[idx[i]]);
    ASSERT_DOUBLE_EQ(Y(i, 1), g[0]);
    ASSERT_DOUBLE_EQ(Y(i, 2), g[1]);
    ASSERT_DOUBLE_EQ(Y(i, 3), g[2]);
  }
}

TEST(Normalizer, FitComputesColumnStats) {
  Matrix m(4, 2);
  m(0, 0) = 1; m(1, 0) = 2; m(2, 0) = 3; m(3, 0) = 4;
  m(0, 1) = 10; m(1, 1) = 10; m(2, 1) = 10; m(3, 1) = 10;
  auto n = Normalizer::fit(m);
  EXPECT_DOUBLE_EQ(n.mean[0], 2.5);
  EXPECT_NEAR(n.stddev[0], std::sqrt(1.25), 1e-12);
  EXPECT_DOUBLE_EQ(n.mean[1], 10.0);
  EXPECT_DOUBLE_EQ(n.stddev[1], 1.0);  // constant column floored to 1
}

TEST(Normalizer, ApplyInvertRoundTrip) {
  vf::util::Rng rng(5);
  Matrix m(50, 7);
  for (auto& v : m.data()) v = rng.uniform(-100, 100);
  auto orig = m;
  auto n = Normalizer::fit(m);
  n.apply(m);
  // After z-scoring, every column has ~zero mean and ~unit variance.
  for (std::size_t c = 0; c < m.cols(); ++c) {
    double mean = 0;
    for (std::size_t r = 0; r < m.rows(); ++r) mean += m(r, c);
    mean /= static_cast<double>(m.rows());
    ASSERT_NEAR(mean, 0.0, 1e-9);
  }
  n.invert(m);
  for (std::size_t i = 0; i < m.size(); ++i) {
    ASSERT_NEAR(m.data()[i], orig.data()[i], 1e-9);
  }
}

TEST(Normalizer, EmptyMatrixThrows) {
  Matrix empty(0, 3);
  EXPECT_THROW(Normalizer::fit(empty), std::invalid_argument);
}

TEST(Normalizer, ColumnMismatchThrows) {
  Matrix m(5, 3);
  auto n = Normalizer::fit(m);
  Matrix other(5, 4);
  EXPECT_THROW(n.apply(other), std::invalid_argument);
  EXPECT_THROW(n.invert(other), std::invalid_argument);
}

TEST(Features, DeterministicAcrossCalls) {
  auto f = test_field();
  std::vector<std::int64_t> kept;
  for (std::int64_t i = 0; i < f.size(); i += 9) kept.push_back(i);
  SampleCloud cloud(f, kept);
  std::vector<std::int64_t> idx;
  for (std::int64_t i = 3; i < f.size(); i += 31) idx.push_back(i);
  Matrix a = features_on_grid(cloud, f.grid(), idx);
  Matrix b = features_on_grid(cloud, f.grid(), idx);
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.data()[i], b.data()[i]);
  }
}

TEST(Features, GridHashIndexMatchesKdTree) {
  // The SoA batched path must assemble identical rows whichever
  // NeighborIndex backs the k-NN queries.
  auto f = test_field();
  std::vector<std::int64_t> kept;
  for (std::int64_t i = 0; i < f.size(); i += 7) kept.push_back(i);
  SampleCloud cloud(f, kept);

  std::vector<Vec3> queries;
  vf::util::Rng rng(64);
  for (int i = 0; i < 300; ++i) {
    queries.push_back({rng.uniform(0, 13), rng.uniform(0, 11),
                       rng.uniform(0, 7)});
  }

  auto kd = vf::spatial::build_index(cloud.points(),
                                     vf::spatial::IndexKind::KdTree);
  auto gh = vf::spatial::build_index(cloud.points(),
                                     vf::spatial::IndexKind::GridHash);
  Matrix a, b;
  extract_features_into(*kd, cloud.values(), queries.data(), queries.size(),
                        a);
  extract_features_into(*gh, cloud.values(), queries.data(), queries.size(),
                        b);
  ASSERT_EQ(a.rows(), b.rows());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.data()[i], b.data()[i]) << "flat element " << i;
  }
}

TEST(Features, ScratchReuseDoesNotChangeRowsOrAllocatePerCall) {
  auto f = test_field();
  std::vector<std::int64_t> kept;
  for (std::int64_t i = 0; i < f.size(); i += 11) kept.push_back(i);
  SampleCloud cloud(f, kept);
  auto index = vf::spatial::build_index(cloud.points(),
                                        vf::spatial::IndexKind::GridHash);

  std::vector<Vec3> queries;
  vf::util::Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    queries.push_back({rng.uniform(0, 13), rng.uniform(0, 11),
                       rng.uniform(0, 7)});
  }

  FeatureScratch scratch;
  Matrix a, b;
  extract_features_into(*index, cloud.values(), queries.data(),
                        queries.size(), a, scratch);
  const std::size_t warm = scratch.element_count();
  EXPECT_GT(warm, 0u);
  extract_features_into(*index, cloud.values(), queries.data(),
                        queries.size(), b, scratch);
  // Warm scratch must be reused, not regrown, on a same-shape call...
  EXPECT_EQ(scratch.element_count(), warm);
  // ...and reuse must not perturb the assembled rows.
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.data()[i], b.data()[i]);
  }
}

}  // namespace
